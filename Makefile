# Build/verify entry points. `make check` is the full pre-commit gate.

GO ?= go

.PHONY: all build test race vet fmt lint-metrics check verify conformance chaos chaos-nodes chaos-triple bench bench-obs bench-gate bench-correct bench-parallel bench-baseline race-obs monitor-soak clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with concurrency (plus everything
# else — the repo is small enough).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint-metrics checks the emitted metric surface against the committed
# catalog (docs/METRICS.json): every metric name + label key set in the
# code must be declared, every declared entry must still be emitted,
# and every label key must be in the bounded taxonomy. After changing
# instrumentation, regenerate with `go run ./cmd/metriclint -write`.
lint-metrics:
	$(GO) run ./cmd/metriclint

check: vet fmt lint-metrics test race

# verify is the CI gate (see .github/workflows/verify.yml): the same
# stages as check plus the registry conformance matrix, named separately
# so CI and local habits can diverge later without repurposing either.
verify: vet fmt lint-metrics test race conformance

# conformance runs the registry-driven matrices explicitly and verbosely:
# the codetest battery and the full shard round-trip for every registered
# code at every advertised (k, p) shape. Redundant with `test` except for
# -count=1 — CI wants these exercised even when cached — and for the
# legible per-code subtest listing when something breaks.
conformance:
	$(GO) test -count=1 -run 'TestConformanceMatrix|TestCodeMatrixRoundTrip' \
		./internal/codes ./internal/shard

# chaos is the extended fault-injection soak (~30s): thousands of seeded
# fault schedules through encode/decode/repair. Every failure reproduces
# from the seed printed in the test log.
chaos:
	CHAOS_SCHEDULES=3000 $(GO) test -count=1 -run TestChaosSoak -v ./internal/shard/

# chaos-nodes is the node-level fault-domain soak: seeded whole-node
# outage / flapping-membership / hung-node schedules for every
# registered code on spread placement. Outage-only schedules that spare
# the manifest's node MUST decode byte-identically (the RAID-6 contract
# at node granularity); everything else must end in a typed error.
chaos-nodes:
	CHAOS_NODE_SCHEDULES=500 $(GO) test -count=1 -run TestChaosNodesSoak -v ./internal/shard/

# chaos-triple is the triple-fault soak: seeded schedules mixing
# whole-node outages with disk-level shard deletions and silent
# corruption — at most three failures per schedule, the rs3 parity
# budget — so every decode must be byte-identical and every repair must
# heal the set back to a clean verify. Reproduces from the logged seed.
chaos-triple:
	CHAOS_TRIPLE_SCHEDULES=600 $(GO) test -count=1 -run TestChaosTripleSoak -v ./internal/shard/

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# Emit artifacts/BENCH_obs.json: the metric snapshot of a deterministic
# instrumented workload (XOR-per-bit rates, span accounting).
# -count=1 defeats the test cache: the artifact is written by TestMain,
# which does not run when the result is served from cache.
bench-obs:
	BENCH_OBS_JSON=artifacts/BENCH_obs.json $(GO) test -count=1 -run TestObservedWorkloadDeterministic .

# Perf-regression gate: measure the core coding hot paths and fail on any
# exact-XOR-count increase or a >15% calibrated throughput regression
# against the checked-in baseline. BENCH_GATE_TOL overrides the tolerance.
bench-gate:
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_core.json

# Focused gate on the single-column correction hot path: the streamed
# CorrectColumn carries its own tightened ns/op band in the baseline
# (tol_ns_frac), so a correct-path regression fails here even when it
# would squeak under the gate-wide tolerance.
bench-correct:
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_core.json -only liberation/correct

# Intra-stripe parallel-encode scaling check: asserts >= 2x at 4 workers
# on a >= 64 MiB stripe. Needs >= 4 real CPUs and a quiet machine; on
# smaller hosts the test measures and logs without asserting.
bench-parallel:
	BENCH_PARALLEL=1 $(GO) test -count=1 -run TestEncodeShardedSpeedup -v ./internal/pipeline/

# Regenerate the bench-gate baseline (run on a quiet machine, then commit).
bench-baseline:
	$(GO) run ./cmd/benchgate -baseline artifacts/BENCH_core.json -write

# Race-detector pass focused on the observability surfaces: concurrent
# flight-recorder scrapes, event-log writes, traced degraded decodes,
# monitoring-plane scrapes while the sampler ticks, and the node
# fault-domain layer (gated stores, breakers, hedged reads).
race-obs:
	$(GO) test -race -count=1 -run 'Trace|Flight|LogJSON|Concurrent|EventLog|Node|Breaker|Hedge|Timeout' \
		./internal/obs ./internal/shard ./internal/monitor ./cmd/raidcli ./cmd/raidmon \
		./internal/store ./internal/store/nodestore

# monitor-soak is the monitoring-plane gate: a seeded faultstore chaos
# schedule over repeated decodes must drive an alert through the full
# ok -> pending -> firing -> resolved ladder and return the health
# verdict to healthy. Deterministic (fake clock, seeded faults); every
# failure reproduces exactly.
monitor-soak:
	$(GO) test -count=1 -run 'TestMonitorChaosSoak|TestAlertLadderEndToEnd' -v ./internal/monitor/

clean:
	$(GO) clean ./...
