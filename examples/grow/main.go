// Online growth: the scalability property that motivates fixed-p
// deployments (Section III, case (b)). With p held constant, a new data
// disk joins the array as one of the all-zero phantom columns becoming
// real — the existing parities remain valid without touching a single
// byte, and the new disk is then populated with ordinary small writes.
// EVENODD and RDP pay growing encode/decode complexity as p-k grows;
// Liberation's stays flat (Figures 6 and 8).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/codes"
	"repro/internal/core"
)

// growable is what this walkthrough needs beyond core.Code: parity
// verification and small writes. The registry hands back a core.Code;
// optional capabilities are discovered by assertion, exactly as the
// production layers do.
type growable interface {
	core.Updater
	Verify(s *core.Stripe) (bool, error)
}

func main() {
	const p = 31 // sized for the largest array we anticipate
	const elem = 1024

	// Day 0: four data disks.
	small, err := codes.New("liberation", 4, p)
	if err != nil {
		log.Fatal(err)
	}
	stripe := core.NewStripe(4, p, elem)
	stripe.FillRandom(rand.New(rand.NewSource(1)))
	if err := small.Encode(stripe, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=4 array encoded (p=%d)\n", p)

	// Day 1: a fifth disk arrives. Reinterpret the same stripe as k=5 by
	// splicing in an all-zero strip where phantom column 4 used to be.
	// No parity is recomputed.
	bigCode, err := codes.New("liberation", 5, p)
	if err != nil {
		log.Fatal(err)
	}
	big := bigCode.(growable)
	grown := &core.Stripe{K: 5, W: p, ElemSize: elem, Strips: [][]byte{
		stripe.Strips[0], stripe.Strips[1], stripe.Strips[2], stripe.Strips[3],
		make([]byte, p*elem), // the new disk, zero-filled
		stripe.Strips[4],     // P, untouched
		stripe.Strips[5],     // Q, untouched
	}}
	ok, err := big.Verify(grown)
	if err != nil || !ok {
		log.Fatalf("parities invalid after growth (ok=%v err=%v)", ok, err)
	}
	fmt.Println("k=5 view verified: existing P and Q are already correct")

	// Populate the new disk with small writes; each touches only 2 (or 3)
	// parity elements.
	rng := rand.New(rand.NewSource(2))
	old := make([]byte, elem)
	touched := 0
	for row := 0; row < p; row++ {
		copy(old, grown.Elem(4, row))
		rng.Read(grown.Elem(4, row))
		n, err := big.Update(grown, 4, row, old, nil)
		if err != nil {
			log.Fatal(err)
		}
		touched += n
	}
	fmt.Printf("new disk filled via %d small writes (%d parity element updates)\n", p, touched)

	ok, err = big.Verify(grown)
	if err != nil || !ok {
		log.Fatal("parities invalid after filling the new disk")
	}

	// And the grown array still survives any double failure.
	ref := grown.Clone()
	grown.ZeroStrip(4)
	grown.ZeroStrip(0)
	if err := big.Decode(grown, []int{0, 4}, nil); err != nil {
		log.Fatal(err)
	}
	if !grown.Equal(ref) {
		log.Fatal("decode after growth failed")
	}
	fmt.Println("double-failure decode on the grown array: OK")
}
