// Small-write comparison: the workload that motivates the Liberation
// codes. Databases and data-intensive systems issue element-sized writes;
// every such write must also update parity, and the number of parity
// elements touched (the update complexity) directly controls small-write
// latency and SSD wear. Liberation attains the lower bound of 2;
// EVENODD and RDP average about 3.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/raidsim"
)

func main() {
	const (
		k        = 10
		elemSize = 4096 // one SSD page per element
		stripes  = 16
		writes   = 2000
	)
	available := map[string]core.Code{}
	for _, name := range []string{"liberation", "evenodd", "rdp"} {
		if c, err := codes.New(name, k, 0); err == nil {
			available[name] = c
		}
	}

	fmt.Printf("workload: %d random %dB (element-aligned) writes on a k=%d array\n\n",
		writes, elemSize, k)
	fmt.Printf("%-12s %16s %18s %14s\n",
		"code", "parity elements", "bytes to media", "write amp")
	for _, name := range []string{"liberation", "evenodd", "rdp"} {
		code, ok := available[name]
		if !ok {
			log.Fatalf("code %s unavailable", name)
		}
		array, err := raidsim.New(code, elemSize, stripes)
		if err != nil {
			log.Fatal(err)
		}
		// Pre-fill.
		if err := array.Write(0, make([]byte, array.Capacity())); err != nil {
			log.Fatal(err)
		}
		array.Stats = raidsim.Stats{}

		rng := rand.New(rand.NewSource(1))
		buf := make([]byte, elemSize)
		elems := array.Capacity() / elemSize
		for i := 0; i < writes; i++ {
			rng.Read(buf)
			if err := array.Write(rng.Intn(elems)*elemSize, buf); err != nil {
				log.Fatal(err)
			}
		}
		parityElems := array.Stats.ParityElemWrites
		dataBytes := uint64(writes) * elemSize
		mediaBytes := dataBytes + parityElems*uint64(elemSize)
		fmt.Printf("%-12s %16d %18d %14.2f\n",
			name, parityElems, mediaBytes, float64(mediaBytes)/float64(dataBytes))
	}
	fmt.Println("\nwrite amp = (data + parity bytes hitting media) / data bytes;")
	fmt.Println("liberation's ~3.0 is the RAID-6 floor (1 data + 2 parity).")
}
