// Quickstart: encode a stripe with the optimal Liberation algorithms,
// lose two data strips, and decode them back — while watching the XOR
// counts hit the bounds the paper proves.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/codes"
	"repro/internal/core"
)

func main() {
	// A RAID-6 array with k=6 data disks. Passing p=0 lets the registry
	// pick the smallest usable odd prime (p=7), giving a 7x9 array of
	// elements per stripe.
	code, err := codes.New("liberation", 6, 0)
	if err != nil {
		log.Fatal(err)
	}
	k := code.K()
	p, _ := codes.Prime(code)
	fmt.Printf("code: %s (stripe = %d data strips + P + Q, %d elements each)\n",
		code.Name(), k, code.W())

	// Build a stripe of 4KB elements and fill the data strips.
	stripe := core.NewStripe(k, code.W(), 4096)
	stripe.FillRandom(rand.New(rand.NewSource(42)))
	original := stripe.Clone()

	// Encode, counting element XORs. Algorithm 1 reaches the theoretical
	// lower bound of k-1 XORs per parity element: exactly 2p(k-1) XORs.
	var ops core.Ops
	if err := code.Encode(stripe, &ops); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encode: %d XORs (lower bound %d)\n", ops.XORs, 2*p*(k-1))

	// Lose two data strips — the hard case — and decode with Algorithms
	// 2-4 (syndromes with common-expression reuse + zigzag retrieval).
	stripe.ZeroStrip(1)
	stripe.ZeroStrip(4)
	ops.Reset()
	if err := code.Decode(stripe, []int{1, 4}, &ops); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decode strips {1,4}: %d XORs (lower bound %d)\n", ops.XORs, 2*p*(k-1))

	if !stripe.EqualData(original) {
		log.Fatal("reconstruction mismatch")
	}
	fmt.Println("data reconstructed bit-for-bit")

	// Small writes: updating one element touches exactly 2 parity
	// elements (3 for the one extra element per column) — the update
	// optimality that motivates Liberation codes.
	old := append([]byte(nil), stripe.Elem(2, 3)...)
	stripe.Elem(2, 3)[0] ^= 0xff
	n, err := code.(core.Updater).Update(stripe, 2, 3, old, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("small write at (2,3): %d parity elements updated\n", n)
}
