// Durability: the quantitative version of the paper's opening argument.
// We measure the real rebuild (decode) throughput of the Liberation code
// on this machine, feed it into a Monte-Carlo failure/rebuild model, and
// compare the 5-year data-loss probability of RAID-5 and RAID-6 arrays
// built from large SATA disks — the configuration in which UREs during an
// unprotected rebuild make RAID-5 untenable.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/benchutil"
	"repro/internal/codes"
	"repro/internal/reliability"
)

func main() {
	const k = 10
	code, err := codes.New("liberation", k, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Measure this machine's reconstruction throughput; a rebuild in a
	// real array is further limited by disk bandwidth, so cap it.
	gbps := benchutil.MeasureDecode(code, 4096, benchutil.Options{
		MinTime: 150 * time.Millisecond, MaxPatterns: 8, Rounds: 2,
	})
	rebuildMBps := gbps * 1000
	if rebuildMBps > 250 {
		rebuildMBps = 250 // disk-limited, not XOR-limited
	}
	fmt.Printf("measured decode throughput: %.2f GB/s -> rebuild at %.0f MB/s (disk-capped)\n",
		gbps, rebuildMBps)

	params := reliability.Params{
		Disks:        k + 2,
		DiskTB:       16,
		MTTFHours:    1.2e6,
		RebuildMBps:  rebuildMBps,
		UREPerBit:    1e-14, // SATA class
		MissionYears: 5,
	}
	fmt.Printf("array: %d x %.0f TB disks, MTTF %.1fM hours, rebuild %.1f hours\n",
		params.Disks, params.DiskTB, params.MTTFHours/1e6, params.RebuildHours())

	const trials = 20000
	raid5, raid6, err := reliability.CompareRAID5(params, trials, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5-year data-loss probability (%d Monte-Carlo trials):\n", trials)
	fmt.Printf("  RAID-5: %6.3f%%  (%d losses: %d by URE during rebuild, %d by second failure)\n",
		100*raid5.LossProbability(), raid5.Losses, raid5.LossByURE, raid5.LossByDisks)
	fmt.Printf("  RAID-6: %6.3f%%  (%d losses)\n",
		100*raid6.LossProbability(), raid6.Losses)
	if raid6.Losses == 0 {
		fmt.Println("\nRAID-6 survived every trial: this is why it is displacing RAID-5.")
	}
}
