// Degraded array walkthrough: a simulated 10-disk RAID-6 array survives a
// double disk failure — reads keep working through on-the-fly
// reconstruction, and a rebuild restores full redundancy.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/codes"
	"repro/internal/raidsim"
)

func main() {
	code, err := codes.New("liberation", 8, 0) // 8 data disks + P + Q
	if err != nil {
		log.Fatal(err)
	}
	array, err := raidsim.New(code, 4096, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %d disks, %.1f MB usable\n",
		array.NumDisks(), float64(array.Capacity())/(1<<20))

	// Store a dataset.
	rng := rand.New(rand.NewSource(7))
	dataset := make([]byte, array.Capacity())
	rng.Read(dataset)
	if err := array.Write(0, dataset); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset written")

	// Disk 3 dies; then, during the rebuild window, disk 7 dies too —
	// the exact scenario RAID-6 exists for.
	for _, d := range []int{3, 7} {
		if err := array.FailDisk(d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("disk %d failed\n", d)
	}

	// Every read still succeeds, served by Algorithm 4 reconstructions.
	got := make([]byte, 1<<20)
	if err := array.Read(12345, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, dataset[12345:12345+len(got)]) {
		log.Fatal("degraded read returned wrong data")
	}
	fmt.Printf("degraded 1 MB read OK (%d stripes reconstructed so far)\n",
		array.Stats.DegradedReads)

	// Writes keep working too.
	patch := make([]byte, 100_000)
	rng.Read(patch)
	if err := array.Write(777, patch); err != nil {
		log.Fatal(err)
	}
	copy(dataset[777:], patch)
	fmt.Println("degraded 100 KB write OK")

	// Replacement disks arrive; rebuild.
	if err := array.Rebuild(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuild complete: %d stripes reconstructed, %d XOR block ops total\n",
		array.Stats.StripesRebuilt, array.Stats.Ops.XORs)

	full := make([]byte, array.Capacity())
	if err := array.Read(0, full); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(full, dataset) {
		log.Fatal("dataset damaged")
	}
	fmt.Println("full dataset verified bit-for-bit")
}
