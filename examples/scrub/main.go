// Scrubbing walkthrough: silent data corruption — bit rot that no disk
// reports — is injected into a healthy array and then located, attributed
// to the right disk, and repaired using the paper's single-column error
// correction.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/codes"
	"repro/internal/raidsim"
)

func main() {
	code, err := codes.New("liberation", 6, 7)
	if err != nil {
		log.Fatal(err)
	}
	array, err := raidsim.New(code, 1024, 16)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	dataset := make([]byte, array.Capacity())
	rng.Read(dataset)
	if err := array.Write(0, dataset); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array of %d disks written (%d KB)\n",
		array.NumDisks(), array.Capacity()>>10)

	// Corrupt three different disks in three different stripes — the
	// kind of damage a latent-sector-error scrub pass must catch. Note
	// no disk reports an error: the data is simply wrong.
	stripBytes := code.W() * array.ElemSize()
	type hit struct{ disk, stripe int }
	hits := []hit{{1, 2}, {4, 9}, {7, 14}}
	for _, h := range hits {
		if err := array.CorruptDisk(h.disk, h.stripe*stripBytes+33, 8, 0xa5); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("injected silent corruption: disk %d, stripe %d\n", h.disk, h.stripe)
	}

	// Scrub: recompute parities per stripe, localize the inconsistent
	// column from the row/anti-diagonal discrepancy pattern, repair it.
	results, err := array.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("scrub: stripe %2d -> repaired disk %d (logical strip %d)\n",
			r.Stripe, r.Disk, r.Strip)
	}
	if len(results) != len(hits) {
		log.Fatalf("scrub repaired %d stripes, want %d", len(results), len(hits))
	}

	// The array must be byte-identical to the original dataset again.
	got := make([]byte, array.Capacity())
	if err := array.Read(0, got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, dataset) {
		log.Fatal("data still corrupt after scrub")
	}
	fmt.Println("all corruption repaired; dataset verified bit-for-bit")

	// A second scrub pass confirms a clean array.
	results, err = array.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second scrub pass: %d findings (array clean)\n", len(results))
}
