// Ablation benchmarks for the design choices DESIGN.md calls out: what
// each ingredient of the paper's result is worth in isolation.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitmatrix"
	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/liberation"
	"repro/internal/xorblk"
)

// BenchmarkAblationPairReuse isolates the paper's central idea: encoding
// with common-expression (pair) reuse vs. evaluating equations (1) and
// (2) directly. The XOR saving is (k-1)/(2p(k-1)) small, but the naive
// path also touches more memory.
func BenchmarkAblationPairReuse(b *testing.B) {
	c, err := liberation.New(10, 11)
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewStripe(10, 11, 4096)
	s.FillRandom(rand.New(rand.NewSource(1)))
	b.Run("naive-equations", func(b *testing.B) {
		b.SetBytes(int64(s.DataSize()))
		for i := 0; i < b.N; i++ {
			if err := c.EncodeNaive(s, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("algorithm1-pair-reuse", func(b *testing.B) {
		b.SetBytes(int64(s.DataSize()))
		for i := 0; i < b.N; i++ {
			if err := c.Encode(s, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDecodeScheduling isolates what the original decoder
// pays for: per-call matrix inversion + scheduling (lazy, as Jerasure's
// schedule_decode does and as the paper benchmarks) vs. memoized
// schedules vs. the matrix-free optimal decoder.
func BenchmarkAblationDecodeScheduling(b *testing.B) {
	const k, p = 11, 11
	erased := []int{2, 7}
	run := func(b *testing.B, code core.Code) {
		s := core.NewStripe(k, p, 4096)
		s.FillRandom(rand.New(rand.NewSource(2)))
		if err := code.Encode(s, nil); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(s.DataSize()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := code.Decode(s, erased, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("original-lazy", func(b *testing.B) {
		c, _ := liberation.NewOriginal(k, p)
		run(b, c)
	})
	b.Run("original-cached", func(b *testing.B) {
		c, _ := liberation.NewOriginal(k, p)
		c.CacheDecodeSchedules = true
		run(b, c)
	})
	b.Run("optimal-matrix-free", func(b *testing.B) {
		c, _ := liberation.New(k, p)
		run(b, c)
	})
}

// BenchmarkAblationSmartVsDumbSchedule compares Jerasure's two schedule
// generators on the Liberation decoding matrix: from-scratch rows vs.
// incremental reuse (both cached, so only XOR volume differs).
func BenchmarkAblationSmartVsDumbSchedule(b *testing.B) {
	const k, p = 11, 11
	lib, _ := liberation.New(k, p)
	for _, mode := range []struct {
		name string
		dec  bitmatrix.Scheduling
	}{{"dumb", bitmatrix.Dumb}, {"smart", bitmatrix.Smart}} {
		c, err := bitmatrix.NewCode("liberation-"+mode.name, k, p,
			lib.Generator(), bitmatrix.Dumb, mode.dec)
		if err != nil {
			b.Fatal(err)
		}
		c.CacheDecodeSchedules = true
		sch, err := c.DecodeSchedule([]int{2, 7})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/xors=%d", mode.name, sch.XORCount()), func(b *testing.B) {
			s := core.NewStripe(k, p, 4096)
			s.FillRandom(rand.New(rand.NewSource(3)))
			if err := c.Encode(s, nil); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(s.DataSize()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Decode(s, []int{2, 7}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFusedXor measures what schedule fusion buys at the
// kernel level: one fused three-source accumulation vs. three separate
// passes over the same destination block.
func BenchmarkAblationFusedXor(b *testing.B) {
	for _, size := range []int{4096, 1 << 16} {
		dst := make([]byte, size)
		a := make([]byte, size)
		c := make([]byte, size)
		d := make([]byte, size)
		b.Run(fmt.Sprintf("three-passes/size=%dKB", size/1024), func(b *testing.B) {
			b.SetBytes(3 * int64(size))
			for i := 0; i < b.N; i++ {
				xorblk.XorInto(dst, a)
				xorblk.XorInto(dst, c)
				xorblk.XorInto(dst, d)
			}
		})
		b.Run(fmt.Sprintf("fused/size=%dKB", size/1024), func(b *testing.B) {
			b.SetBytes(3 * int64(size))
			for i := 0; i < b.N; i++ {
				xorblk.XorInto3(dst, a, c, d)
			}
		})
	}
}

// BenchmarkAblationCodeFamilies puts the Liberation optimal encoder next
// to Cauchy Reed-Solomon (Jerasure's other family, no prime constraint)
// at the same k.
func BenchmarkAblationCodeFamilies(b *testing.B) {
	const k = 10
	lib, _ := liberation.NewAuto(k)
	cauchy, err := crs.New(k)
	if err != nil {
		b.Fatal(err)
	}
	for _, cu := range []core.Code{lib, cauchy} {
		s := core.NewStripe(cu.K(), cu.W(), 4096)
		s.FillRandom(rand.New(rand.NewSource(4)))
		b.Run(cu.Name(), func(b *testing.B) {
			b.SetBytes(int64(s.DataSize()))
			for i := 0; i < b.N; i++ {
				if err := cu.Encode(s, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
