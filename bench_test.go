// Benchmarks regenerating the measured side of every table and figure in
// the paper's evaluation (Section IV). The XOR-count figures (5-8) are
// deterministic and asserted exactly by unit tests; the benchmarks here
// time the corresponding real work so ns/op and MB/s expose the same
// comparisons the paper plots. Run with:
//
//	go test -bench=. -benchmem
//
// and regenerate the paper-formatted tables with cmd/libbench.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/evenodd"
	"repro/internal/liberation"
	"repro/internal/raidsim"
	"repro/internal/rdp"
	"repro/internal/rs"
)

// mustCode builds one of the compared codes or fails the benchmark.
func mustCode(b *testing.B, name string, k, p int) core.Code {
	b.Helper()
	var c core.Code
	var err error
	switch name {
	case "liberation-optimal":
		c, err = liberation.New(k, p)
	case "liberation-original":
		c, err = liberation.NewOriginal(k, p)
	case "evenodd":
		c, err = evenodd.New(k, p)
	case "rdp":
		c, err = rdp.New(k, p)
	case "rs":
		c, err = rs.New(k)
	default:
		b.Fatalf("unknown code %q", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func encodedStripe(b *testing.B, c core.Code, elemSize int) *core.Stripe {
	b.Helper()
	s := core.NewStripe(c.K(), c.W(), elemSize)
	s.FillRandom(rand.New(rand.NewSource(1)))
	if err := c.Encode(s, nil); err != nil {
		b.Fatal(err)
	}
	return s
}

func benchEncode(b *testing.B, c core.Code, elemSize int) {
	s := encodedStripe(b, c, elemSize)
	b.SetBytes(int64(s.DataSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecode(b *testing.B, c core.Code, elemSize int, erased []int) {
	s := encodedStripe(b, c, elemSize)
	b.SetBytes(int64(s.DataSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decode(s, erased, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Encode times one stripe encoding for each code in Table I
// at k=10 (p=11), 4KB elements.
func BenchmarkTable1Encode(b *testing.B) {
	for _, name := range []string{"evenodd", "rdp", "liberation-original", "liberation-optimal", "rs"} {
		k, p := 10, 11
		b.Run(name, func(b *testing.B) {
			benchEncode(b, mustCode(b, name, k, p), 4096)
		})
	}
}

// BenchmarkTable1Update times a small write (the update-complexity row of
// Table I) for the three array codes.
func BenchmarkTable1Update(b *testing.B) {
	for _, name := range []string{"evenodd", "rdp", "liberation-optimal"} {
		b.Run(name, func(b *testing.B) {
			c := mustCode(b, name, 10, 11)
			u, ok := c.(core.Updater)
			if !ok {
				b.Fatal("code does not support updates")
			}
			s := encodedStripe(b, c, 4096)
			old := append([]byte(nil), s.Elem(3, 1)...)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Elem(3, 1)[0] ^= 0xff
				if _, err := u.Update(s, 3, 1, old, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5Encode / BenchmarkFig6Encode: encoding work for the four
// compared codes, p varying with k (Fig 5) and p=31 (Fig 6).
func BenchmarkFig5Encode(b *testing.B) {
	for _, name := range []string{"evenodd", "rdp", "liberation-original", "liberation-optimal"} {
		for _, k := range []int{4, 8, 16} {
			p := core.NextOddPrime(k)
			if name == "rdp" {
				p = core.NextOddPrime(k + 1)
			}
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				benchEncode(b, mustCode(b, name, k, p), 4096)
			})
		}
	}
}

func BenchmarkFig6Encode(b *testing.B) {
	for _, name := range []string{"evenodd", "rdp", "liberation-original", "liberation-optimal"} {
		for _, k := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/k=%d/p=31", name, k), func(b *testing.B) {
				benchEncode(b, mustCode(b, name, k, 31), 4096)
			})
		}
	}
}

// BenchmarkFig7Decode / BenchmarkFig8Decode: double-data-erasure decoding
// work, p varying with k (Fig 7) and p=31 (Fig 8).
func BenchmarkFig7Decode(b *testing.B) {
	for _, name := range []string{"evenodd", "rdp", "liberation-original", "liberation-optimal"} {
		for _, k := range []int{4, 8, 16} {
			p := core.NextOddPrime(k)
			if name == "rdp" {
				p = core.NextOddPrime(k + 1)
			}
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				benchDecode(b, mustCode(b, name, k, p), 4096, []int{0, k / 2})
			})
		}
	}
}

func BenchmarkFig8Decode(b *testing.B) {
	for _, name := range []string{"evenodd", "rdp", "liberation-original", "liberation-optimal"} {
		for _, k := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/k=%d/p=31", name, k), func(b *testing.B) {
				benchDecode(b, mustCode(b, name, k, 31), 4096, []int{0, k / 2})
			})
		}
	}
}

// BenchmarkFig9Encode: encoding throughput against element size for
// p = 5, 7, 11 (original vs optimal), reproducing Figure 9's sweep.
func BenchmarkFig9Encode(b *testing.B) {
	for _, p := range []int{5, 7, 11} {
		for logSize := 12; logSize <= 16; logSize++ {
			for _, name := range []string{"liberation-original", "liberation-optimal"} {
				b.Run(fmt.Sprintf("p=%d/elem=%dKB/%s", p, 1<<(logSize-10), name), func(b *testing.B) {
					benchEncode(b, mustCode(b, name, p, p), 1<<logSize)
				})
			}
		}
	}
}

// BenchmarkFig10Encode / BenchmarkFig11Encode: encoding throughput vs k,
// original vs optimal, at 4KB and 8KB elements.
func BenchmarkFig10Encode(b *testing.B) {
	for _, elem := range []int{4096, 8192} {
		for _, k := range []int{4, 10, 16, 22} {
			p := core.NextOddPrime(k)
			for _, name := range []string{"liberation-original", "liberation-optimal"} {
				b.Run(fmt.Sprintf("elem=%dKB/k=%d/%s", elem/1024, k, name), func(b *testing.B) {
					benchEncode(b, mustCode(b, name, k, p), elem)
				})
			}
		}
	}
}

func BenchmarkFig11Encode(b *testing.B) {
	for _, elem := range []int{4096, 8192} {
		for _, k := range []int{4, 16} {
			for _, name := range []string{"liberation-original", "liberation-optimal"} {
				b.Run(fmt.Sprintf("elem=%dKB/k=%d/p=31/%s", elem/1024, k, name), func(b *testing.B) {
					benchEncode(b, mustCode(b, name, k, 31), elem)
				})
			}
		}
	}
}

// BenchmarkFig12Decode / BenchmarkFig13Decode: decoding throughput vs k.
// The original decoder rebuilds its decoding matrix and schedule on every
// call (as Jerasure's lazy scheduling does) — the overhead the paper's
// "at most 155%" speedup comes from.
func BenchmarkFig12Decode(b *testing.B) {
	for _, elem := range []int{4096, 8192} {
		for _, k := range []int{5, 11, 17} {
			p := core.NextOddPrime(k)
			for _, name := range []string{"liberation-original", "liberation-optimal"} {
				b.Run(fmt.Sprintf("elem=%dKB/k=%d/%s", elem/1024, k, name), func(b *testing.B) {
					benchDecode(b, mustCode(b, name, k, p), elem, []int{1, k - 1})
				})
			}
		}
	}
}

func BenchmarkFig13Decode(b *testing.B) {
	for _, elem := range []int{4096, 8192} {
		for _, k := range []int{5, 17} {
			for _, name := range []string{"liberation-original", "liberation-optimal"} {
				b.Run(fmt.Sprintf("elem=%dKB/k=%d/p=31/%s", elem/1024, k, name), func(b *testing.B) {
					benchDecode(b, mustCode(b, name, k, 31), elem, []int{1, k - 1})
				})
			}
		}
	}
}

// BenchmarkScrub times the single-column error correction pass (Section
// III's silent-corruption repair) over one stripe.
func BenchmarkScrub(b *testing.B) {
	c, err := liberation.New(10, 11)
	if err != nil {
		b.Fatal(err)
	}
	s := encodedStripe(b, c, 4096)
	s.Strips[3][100] ^= 0x5a
	b.SetBytes(int64(s.DataSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := c.CorrectColumn(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		if col != liberation.CleanColumn {
			s.Strips[3][100] ^= 0x5a // re-corrupt for the next round
		}
	}
}

// BenchmarkDegradedRead compares healthy and two-failure reads on the
// simulated array — the user-visible cost the decoder's speed determines.
func BenchmarkDegradedRead(b *testing.B) {
	code, err := liberation.NewAuto(8)
	if err != nil {
		b.Fatal(err)
	}
	newArray := func(b *testing.B, fail bool) *raidsim.Array {
		b.Helper()
		a, err := raidsim.New(code, 4096, 16)
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, a.Capacity())
		rand.New(rand.NewSource(1)).Read(data)
		if err := a.Write(0, data); err != nil {
			b.Fatal(err)
		}
		if fail {
			if err := a.FailDisk(0); err != nil {
				b.Fatal(err)
			}
			if err := a.FailDisk(4); err != nil {
				b.Fatal(err)
			}
		}
		return a
	}
	buf := make([]byte, 1<<20)
	for _, mode := range []struct {
		name string
		fail bool
	}{{"healthy", false}, {"two-disks-down", true}} {
		b.Run(mode.name, func(b *testing.B) {
			a := newArray(b, mode.fail)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.Read(0, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRebuild times a whole-array rebuild after a double failure —
// the window the durability model cares about.
func BenchmarkRebuild(b *testing.B) {
	code, err := liberation.NewAuto(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, err := raidsim.New(code, 4096, 16)
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, a.Capacity())
		rand.New(rand.NewSource(2)).Read(data)
		if err := a.Write(0, data); err != nil {
			b.Fatal(err)
		}
		if err := a.FailDisk(1); err != nil {
			b.Fatal(err)
		}
		if err := a.FailDisk(6); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(a.Capacity()))
		b.StartTimer()
		if err := a.Rebuild(); err != nil {
			b.Fatal(err)
		}
	}
}
