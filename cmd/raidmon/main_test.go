package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func testConfig() config {
	return config{
		codeName: "liberation", k: 5, p: 5, elem: 16, stripes: 8,
		workload: "random-small", seed: 7,
	}
}

// TestServesLiveMetrics drives the workload far enough to trigger the
// fault episodes, then exercises every HTTP surface the monitor exposes.
func TestServesLiveMetrics(t *testing.T) {
	m, err := newMonitor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ { // crosses the rebuild (20) and scrub (50) episodes
		if err := m.runStep(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}

	srv := httptest.NewServer(m.mux)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	// Prometheus exposition by default.
	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q not Prometheus text", ctype)
	}
	for _, want := range []string{
		"raid_write_seconds_bucket",
		"raid_write_xors",
		"liberation_encode_calls",
		"raid_rebuild_progress",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// JSON snapshot with reassembled span families.
	code, body, ctype = get("/metrics?format=json")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metrics?format=json: status %d, type %q", code, ctype)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]float64
		Spans    map[string]struct {
			Calls uint64  `json:"calls"`
			XORs  uint64  `json:"xors"`
			Ratio float64 `json:"xors_per_unit"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if snap.Spans["raid.write"].Calls == 0 {
		t.Error("no raid.write spans in JSON snapshot")
	}
	if snap.Spans["liberation.encode"].Ratio != 4 { // k-1 for k=5
		t.Errorf("encode xors_per_unit = %v, want 4", snap.Spans["liberation.encode"].Ratio)
	}
	if snap.Counters["raid.stripes_rebuilt"] == 0 {
		t.Error("fault episode did not rebuild any stripes")
	}
	if snap.Counters["raid.scrub_repairs"] == 0 {
		t.Error("scrub episode did not repair the injected corruption")
	}
	if snap.Gauges["raid.rebuild.progress"] != 1 {
		t.Errorf("rebuild progress %v, want 1", snap.Gauges["raid.rebuild.progress"])
	}

	// Human-readable front page and health probe.
	if code, body, _ = get("/"); code != http.StatusOK || !strings.Contains(body, "raidmon:") {
		t.Errorf("/ status %d body %q...", code, body[:min(len(body), 60)])
	}
	if code, _, _ = get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz status %d", code)
	}
	if code, _, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _, _ = get("/nonexistent"); code != http.StatusNotFound {
		t.Errorf("/nonexistent status %d, want 404", code)
	}
}

// TestFlightEndpoint drives the workload across both fault episodes and
// checks /debug/flight serves their causal traces: episode spans with
// step/disk attributes, filterable by trace ID.
func TestFlightEndpoint(t *testing.T) {
	m, err := newMonitor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := m.runStep(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	srv := httptest.NewServer(m.mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Size   int `json:"size"`
		Total  int `json:"total"`
		Events []struct {
			Trace string         `json:"trace"`
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/flight JSON: %v", err)
	}
	names := make(map[string]int)
	traces := make(map[string]bool)
	for _, ev := range dump.Events {
		names[ev.Name]++
		traces[ev.Trace] = true
	}
	for _, want := range []string{"raid.episode.rebuild", "raid.disk_failed",
		"raid.rebuilt", "raid.episode.scrub", "raid.corrupt", "raid.scrub"} {
		if names[want] == 0 {
			t.Errorf("/debug/flight missing %q events (have %v)", want, names)
		}
	}
	// 60 steps: three rebuild episodes (20, 40, 60) and one scrub (50) —
	// four distinct traces.
	if len(traces) != 4 {
		t.Errorf("flight holds %d traces, want 4", len(traces))
	}

	// Trace filtering: one trace's events only.
	var one string
	for tr := range traces {
		one = tr
		break
	}
	resp2, err := http.Get(srv.URL + "/debug/flight?trace=" + one)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) == 0 {
		t.Fatalf("trace filter %q returned nothing", one)
	}
	for _, ev := range dump.Events {
		if ev.Trace != one {
			t.Errorf("filtered dump leaked trace %q (want %q)", ev.Trace, one)
		}
	}
}

// TestConcurrentScrapes runs the workload driver — and its episode
// traces writing into the flight recorder — while /metrics and
// /debug/flight are scraped concurrently. Under -race this pins the
// tear-safety contract: scrapes during active writes must return
// internally consistent JSON, never a torn record.
func TestConcurrentScrapes(t *testing.T) {
	m, err := newMonitor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.mux)
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/debug/flight", "/metrics?format=json", "/debug/flight?n=8"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d err %v", path, resp.StatusCode, err)
					return
				}
				if strings.HasPrefix(path, "/debug/flight") {
					var dump struct {
						Events []json.RawMessage `json:"events"`
					}
					if err := json.Unmarshal(body, &dump); err != nil {
						t.Errorf("%s: torn/invalid JSON: %v", path, err)
						return
					}
				}
			}
		}(path)
	}
	for i := 0; i < 120; i++ { // several episodes under live scraping
		if err := m.runStep(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()
	if m.flight.Total() == 0 {
		t.Error("no flight events recorded during the run")
	}
}

// TestMonitorConfigErrors checks flag validation surfaces as errors.
func TestMonitorConfigErrors(t *testing.T) {
	bad := testConfig()
	bad.workload = "bogus"
	if _, err := newMonitor(bad); err == nil {
		t.Error("unknown workload accepted")
	}
	bad = testConfig()
	bad.codeName = "nope"
	if _, err := newMonitor(bad); err == nil {
		t.Error("unknown code accepted")
	}
	bad = testConfig()
	bad.writeSize = 1 << 30
	if _, err := newMonitor(bad); err == nil {
		t.Error("oversized write accepted")
	}
}
