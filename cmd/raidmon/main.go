// Command raidmon runs a simulated RAID-6 array under a continuous
// synthetic workload and exports the full observability surface of the
// stack over HTTP while it runs:
//
//	/metrics        Prometheus text (default) or ?format=json / ?format=text
//	/healthz        liveness probe
//	/debug/pprof/   Go runtime profiling
//	/debug/flight   flight-recorder ring: the last N causal events
//	                (?trace=<hex> filters one trace, ?n= caps the tail)
//	/api/v1/query   time-series ring store (?metric=, &fn=range|rate|increase|avg|max|last, &window=)
//	/api/v1/alerts  rule-engine state: every alert with its transitions and trace
//	/api/v1/health  array health verdict with per-target reasons
//
// The built-in alert rules (used when -rules is not given) cover the
// whole degradation ladder, including the node fault-domain layer: a
// critical node-down rule on the nodestore.nodes_down gauge and a
// warning on open per-node circuit breakers (store.breaker.open).
//
// The workload driver alternates write traffic with fault episodes —
// disk failures, degraded reads, rebuilds, silent corruption, scrubs —
// so every metric family the coding and array layers emit (span
// latencies, XOR counters, rebuild progress, scrub repairs by disk) is
// live and moving.
//
// Usage:
//
//	raidmon [-addr :8080] [-code liberation] [-k 8] [-p 0] [-elem 1024]
//	        [-stripes 64] [-workload zipf-small] [-write-size 0]
//	        [-duration 0] [-seed 1] [-flight 256]
//	        [-sample-interval 1s] [-rules alerts.json] [-window 600]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/codes"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/raidsim"
	"repro/internal/workload"
)

type config struct {
	codeName  string
	k, p      int
	elem      int
	stripes   int
	workload  string
	writeSize int
	seed      int64
	flight    int           // flight-recorder ring size (0 = default)
	interval  time.Duration // monitor sampling interval (0 = default)
	rules     string        // alert rules + SLOs file ("" = built-in defaults)
	window    int           // time-series ring size in samples (0 = default)
}

// server owns the array, its registry, and the HTTP surface. The
// workload driver (step) is single-threaded — the array is not safe for
// concurrent mutation — while the HTTP handlers only read the registry,
// which is.
type server struct {
	cfg    config
	arr    *raidsim.Array
	reg    *obs.Registry
	tracer *obs.Tracer
	flight *obs.FlightRecorder
	mon    *monitor.Monitor
	mux    *http.ServeMux
	rng    *rand.Rand
	next   func() int // workload offset generator
	buf    []byte
	step   int
}

func newMonitor(cfg config) (*server, error) {
	code, err := codes.New(cfg.codeName, cfg.k, cfg.p)
	if err != nil {
		return nil, err
	}
	arr, err := raidsim.New(code, cfg.elem, cfg.stripes)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	arr.Instrument(reg)

	flight := obs.NewFlightRecorder(cfg.flight)
	m := &server{
		cfg:    cfg,
		arr:    arr,
		reg:    reg,
		tracer: obs.NewTracer(flight),
		flight: flight,
		rng:    rand.New(rand.NewSource(cfg.seed)),
	}
	size := cfg.writeSize
	if size <= 0 {
		size = cfg.elem
	}
	m.buf = make([]byte, size)
	elems := arr.Capacity() / cfg.elem
	span := elems - size/cfg.elem
	if span < 1 {
		return nil, fmt.Errorf("raidmon: write size %d exceeds capacity %d", size, arr.Capacity())
	}
	switch cfg.workload {
	case "sequential":
		cur := 0
		m.next = func() int {
			off := cur
			if off+size > arr.Capacity() {
				off = 0
			}
			cur = off + size
			return off
		}
	case "random-small":
		m.next = func() int { return m.rng.Intn(span) * cfg.elem }
	case "zipf-small":
		z := rand.NewZipf(m.rng, 1.2, 1, uint64(span-1))
		m.next = func() int { return int(z.Uint64()) * cfg.elem }
	default:
		return nil, fmt.Errorf("raidmon: unknown workload %q (want %s, %s or %s)",
			cfg.workload, workload.Sequential, workload.RandomSmall, workload.ZipfSmall)
	}

	// Pre-fill the array with one full sequential write so the
	// full-stripe encode path (and its span) is live from the start.
	fill := make([]byte, arr.Capacity())
	m.rng.Read(fill)
	if err := arr.Write(0, fill); err != nil {
		return nil, err
	}

	// The monitoring plane: sample the registry on an interval, evaluate
	// alert rules, and serve queries, alerts, and health over /api/v1.
	rules := monitor.DefaultRules()
	var slos []monitor.SLO
	if cfg.rules != "" {
		if rules, slos, err = monitor.LoadDoc(cfg.rules); err != nil {
			return nil, err
		}
	}
	m.mon, err = monitor.New(monitor.Config{
		Registry: reg,
		Interval: cfg.interval,
		Window:   cfg.window,
		Rules:    rules,
		SLOs:     slos,
		Tracer:   m.tracer,
		Runtime:  true,
	})
	if err != nil {
		return nil, err
	}

	m.mux = obs.NewMux(reg)
	m.mux.Handle("/debug/flight", obs.FlightHandler(flight))
	m.mon.Register(m.mux)
	m.mux.HandleFunc("/", m.handleIndex)
	return m, nil
}

// handleIndex serves a small human-readable front page: the array shape
// plus the current text snapshot.
func (m *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "raidmon: %d-disk array, %d stripes, %dB elements, workload %s\n\n",
		m.arr.NumDisks(), m.cfg.stripes, m.cfg.elem, m.cfg.workload)
	m.reg.Snapshot().WriteText(w)
}

// runStep advances the simulation: a burst of workload writes and reads,
// and periodically a fault episode (every 20th step a fail+rebuild,
// every 50th a corrupt+scrub). Returns the first error encountered.
func (m *server) runStep() error {
	for i := 0; i < 32; i++ {
		m.rng.Read(m.buf)
		if err := m.arr.Write(m.next(), m.buf); err != nil {
			return err
		}
	}
	rd := make([]byte, len(m.buf))
	if err := m.arr.Read(m.next(), rd); err != nil {
		return err
	}
	m.step++
	switch {
	case m.step%50 == 0:
		if err := m.scrubEpisode(); err != nil {
			return err
		}
	case m.step%20 == 0:
		if err := m.rebuildEpisode(rd); err != nil {
			return err
		}
	}
	return nil
}

// scrubEpisode injects silent corruption and scrubs it out, under one
// causal trace: the corruption and the scrub's repair count land in the
// flight recorder as children of a raid.episode.scrub span.
func (m *server) scrubEpisode() (err error) {
	victim := m.rng.Intn(m.arr.NumDisks())
	ctx, sp := obs.StartOp(context.Background(), m.tracer, m.reg, "raid.episode.scrub",
		slog.Int("step", m.step), slog.Int("disk", victim))
	defer func() { sp.End(err) }()
	off := m.rng.Intn(m.cfg.elem)
	if err = m.arr.CorruptDisk(victim, off, 4, 0x5a); err != nil {
		return err
	}
	obs.Emit(ctx, slog.LevelWarn, "raid.corrupt",
		slog.Int("disk", victim), slog.Int("offset", off), slog.Int("bytes", 4))
	results, err := m.arr.Scrub()
	if err != nil {
		return err
	}
	obs.Emit(ctx, slog.LevelInfo, "raid.scrub", slog.Int("repaired", len(results)))
	return nil
}

// rebuildEpisode fails a disk, serves a degraded read, and rebuilds —
// one trace per episode, so /debug/flight?trace= replays the whole
// failure story.
func (m *server) rebuildEpisode(rd []byte) (err error) {
	victim := m.rng.Intn(m.arr.NumDisks())
	ctx, sp := obs.StartOp(context.Background(), m.tracer, m.reg, "raid.episode.rebuild",
		slog.Int("step", m.step), slog.Int("disk", victim))
	defer func() { sp.End(err) }()
	if err = m.arr.FailDisk(victim); err != nil {
		return err
	}
	obs.Emit(ctx, slog.LevelWarn, "raid.disk_failed", slog.Int("disk", victim))
	// A degraded read before the rebuild keeps that counter moving.
	if err = m.arr.Read(0, rd); err != nil {
		return err
	}
	obs.Emit(ctx, slog.LevelInfo, "raid.degraded_read", slog.Int("bytes", len(rd)))
	if err = m.arr.Rebuild(); err != nil {
		return err
	}
	obs.Emit(ctx, slog.LevelInfo, "raid.rebuilt", slog.Int("disk", victim))
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		codeName = flag.String("code", codes.Default, "erasure code: "+strings.Join(codes.Names(), ", "))
		k        = flag.Int("k", 8, "data disks")
		p        = flag.Int("p", 0, "prime parameter (0 = smallest usable; ignored for rs)")
		elem     = flag.Int("elem", 1024, "element size in bytes")
		stripes  = flag.Int("stripes", 64, "stripes in the array")
		wl       = flag.String("workload", "zipf-small", "workload: sequential, random-small, zipf-small")
		wsize    = flag.Int("write-size", 0, "bytes per write (0 = one element)")
		duration = flag.Duration("duration", 0, "stop after this long (0 = run until killed)")
		seed     = flag.Int64("seed", 1, "workload seed")
		flight   = flag.Int("flight", obs.DefaultFlightSize, "flight-recorder ring size (events)")
		interval = flag.Duration("sample-interval", monitor.DefaultInterval, "monitoring plane sampling interval")
		rules    = flag.String("rules", "", "alert rules + SLOs JSON file (default: built-in rules)")
		window   = flag.Int("window", monitor.DefaultWindow, "time-series ring size in samples")
	)
	flag.Parse()

	m, err := newMonitor(config{
		codeName: *codeName, k: *k, p: *p, elem: *elem, stripes: *stripes,
		workload: *wl, writeSize: *wsize, seed: *seed, flight: *flight,
		interval: *interval, rules: *rules, window: *window,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.mon.Run(ctx)

	go func() {
		log.Printf("raidmon: serving /metrics and /debug/pprof on %s", *addr)
		if err := http.ListenAndServe(*addr, m.mux); err != nil {
			log.Fatal(err)
		}
	}()

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	for {
		if err := m.runStep(); err != nil {
			log.Fatal(err)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			snap := m.reg.Snapshot()
			snap.WriteText(os.Stdout)
			return
		}
	}
}
