package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/monitor"
)

// TestAPIEndpoints drives the workload with the monitoring plane
// sampling after every step and checks the /api/v1 surface: query over a
// live counter, the alert list (built-in default rules), and a health
// verdict that reflects the fault episodes the driver injects.
func TestAPIEndpoints(t *testing.T) {
	m, err := newMonitor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ { // crosses rebuild (20, 40, 60) and scrub (50) episodes
		if err := m.runStep(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		m.mon.Tick()
	}
	srv := httptest.NewServer(m.mux)
	defer srv.Close()

	getJSON := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK && out != nil {
			if err := json.Unmarshal(body, out); err != nil {
				t.Fatalf("GET %s: bad JSON %v\n%s", path, err, body)
			}
		}
		return resp.StatusCode
	}

	// The scrub episodes moved raid.scrub_repairs; the time-series store
	// sampled it every step.
	var qr monitor.QueryResponse
	if code := getJSON("/api/v1/query?metric=raid.scrub_repairs&fn=increase&window=10m", &qr); code != http.StatusOK {
		t.Fatalf("/api/v1/query: status %d", code)
	}
	if qr.Value == nil || *qr.Value == 0 {
		t.Errorf("scrub repair increase = %v, want > 0", qr.Value)
	}
	// The runtime sampler feeds Go metrics into the same store.
	if code := getJSON("/api/v1/query?metric=go.goroutines&fn=last", &qr); code != http.StatusOK {
		t.Fatalf("go.goroutines query: status %d", code)
	}
	if qr.Value == nil || *qr.Value < 1 {
		t.Errorf("go.goroutines = %v, want >= 1", qr.Value)
	}

	var ar monitor.AlertsResponse
	getJSON("/api/v1/alerts", &ar)
	if len(ar.Alerts) != len(monitor.DefaultRules()) {
		t.Errorf("alerts endpoint lists %d rules, want the %d defaults",
			len(ar.Alerts), len(monitor.DefaultRules()))
	}

	var h monitor.Health
	getJSON("/api/v1/health", &h)
	// The driver injected corruption and served degraded reads inside the
	// health window, so the verdict must not be healthy — and the reasons
	// must name the counters.
	if h.Verdict == monitor.Healthy {
		t.Errorf("health = %v after fault episodes, want degraded or worse (%+v)", h.Verdict, h.Reasons)
	}
	if len(h.Reasons) == 0 {
		t.Error("health verdict carries no reasons")
	}
	for _, r := range h.Reasons {
		if r.Metric == "" {
			t.Errorf("reason %+v does not name a metric", r)
		}
	}
}

// TestRulesFileFlag: a -rules file replaces the built-in defaults, and a
// broken one fails startup.
func TestRulesFileFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "alerts.json")
	rules := `{"rules": [{"name": "scrubs", "metric": "raid.scrub_repairs",
		"kind": "threshold", "op": ">", "value": 0, "window": "5m", "severity": "critical"}]}`
	if err := os.WriteFile(path, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.rules = path
	m, err := newMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.mon.Alerts(); len(got) != 1 || got[0].Rule.Name != "scrubs" {
		t.Fatalf("rules file produced alerts %+v, want the one scrubs rule", got)
	}

	if err := os.WriteFile(path, []byte(`{"rules": [{"name": ""}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newMonitor(cfg); err == nil {
		t.Error("invalid rules file accepted")
	}
	cfg.rules = filepath.Join(dir, "missing.json")
	if _, err := newMonitor(cfg); err == nil {
		t.Error("missing rules file accepted")
	}
}

// TestConcurrentAPIScrapes hammers the /api/v1 endpoints while the
// workload driver runs and the monitor ticks — under -race this pins the
// scrape-while-sampling contract on the full raidmon mux.
func TestConcurrentAPIScrapes(t *testing.T) {
	m, err := newMonitor(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.mux)
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{
		"/api/v1/health",
		"/api/v1/alerts",
		"/api/v1/query?metric=raid.scrub_repairs&fn=rate&window=30s",
		"/metrics?format=json",
	} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				if resp.StatusCode == http.StatusOK {
					var v map[string]any
					if err := json.Unmarshal(body, &v); err != nil {
						t.Errorf("%s: torn JSON: %v", path, err)
						return
					}
				}
			}
		}(path)
	}
	for i := 0; i < 120; i++ {
		if err := m.runStep(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		m.mon.Tick()
	}
	close(done)
	wg.Wait()
	if m.mon.Store().Rounds() != 120 {
		t.Errorf("monitor sampled %d rounds, want 120", m.mon.Store().Rounds())
	}
}
