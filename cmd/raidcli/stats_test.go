package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	r.Close()
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput: %s", runErr, out[:n])
	}
	return string(out[:n])
}

// TestStatsFlag checks the -stats summaries of encode, decode, and
// repair. Timing fields vary run to run, so the assertions cover the
// deterministic parts: span names, call/XOR accounting, and the
// XORs-per-parity-element rate pinned at the paper's k-1 bound.
func TestStatsFlag(t *testing.T) {
	dir := t.TempDir()
	blob := filepath.Join(dir, "data.bin")
	payload := make([]byte, 7000)
	rand.New(rand.NewSource(4)).Read(payload)
	if err := os.WriteFile(blob, payload, 0o644); err != nil {
		t.Fatal(err)
	}

	out := capture(t, func() error {
		return run("encode", []string{"-k", "4", "-elem", "64", "-out", dir, "-stats", blob})
	})
	for _, want := range []string{
		"--- stats ---",
		"liberation.encode",
		"xors/unit=3.000", // exactly k-1 for k=4
		"(lower bound k-1 = 3)",
		"shard.encode",
		"p50=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encode -stats output missing %q:\n%s", want, out)
		}
	}

	manifest := filepath.Join(dir, "data.bin.manifest.json")

	// Parallel encode reports the pool span too.
	out = capture(t, func() error {
		return run("encode", []string{"-k", "4", "-elem", "64", "-out", dir, "-workers", "2", "-stats", blob})
	})
	if !strings.Contains(out, "pipeline.encode") {
		t.Errorf("parallel encode -stats missing pipeline span:\n%s", out)
	}

	// Lose a shard: decode and repair must show decode spans.
	if err := os.Remove(filepath.Join(dir, "data.bin.shard.d01")); err != nil {
		t.Fatal(err)
	}
	recovered := filepath.Join(dir, "recovered.bin")
	out = capture(t, func() error {
		return run("decode", []string{"-out", recovered, "-stats", manifest})
	})
	for _, want := range []string{"--- stats ---", "liberation.decode", "shard.decode"} {
		if !strings.Contains(out, want) {
			t.Errorf("decode -stats output missing %q:\n%s", want, out)
		}
	}
	got, err := os.ReadFile(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Error("recovered file differs from original")
	}

	out = capture(t, func() error {
		return run("repair", []string{"-stats", manifest})
	})
	for _, want := range []string{"repaired shards [1]", "liberation.decode", "shard.repair"} {
		if !strings.Contains(out, want) {
			t.Errorf("repair -stats output missing %q:\n%s", want, out)
		}
	}

	// Without -stats, no summary appears.
	out = capture(t, func() error {
		return run("decode", []string{"-out", recovered, "-stats=false", manifest})
	})
	if strings.Contains(out, "--- stats ---") {
		t.Errorf("stats printed without -stats:\n%s", out)
	}
}
