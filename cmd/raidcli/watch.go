package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"time"

	"repro/internal/monitor"
)

// cmdWatch polls a running raidmon's monitoring plane and renders the
// health verdict and alert states as plain text — the operator's
// at-a-glance view of an array, built on the same /api/v1 endpoints a
// dashboard would scrape.
//
//	raidcli watch -url http://host:8080 [-interval 2s] [-n 0]
//
// -n bounds the number of polls (0 = until killed). The final poll's
// verdict decides the exit code: healthy exits 0, degraded or critical
// exits 1, so a scripted `raidcli watch -n 1` is a health probe.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	base := fs.String("url", "http://localhost:8080", "raidmon base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	n := fs.Int("n", 0, "number of polls (0 = until killed)")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return usagef("watch: %v", err)
	}
	if fs.NArg() != 0 {
		return usagef("watch takes no positional arguments")
	}
	if _, err := url.Parse(*base); err != nil {
		return usagef("watch: bad -url: %v", err)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var last monitor.Verdict
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		h, err := watchRound(client, *base, os.Stdout)
		if err != nil {
			return err
		}
		last = h
	}
	if last != monitor.Healthy {
		return fmt.Errorf("array is %s", last)
	}
	return nil
}

// watchRound performs one poll: fetch health and alerts, render both.
func watchRound(client *http.Client, base string, w io.Writer) (monitor.Verdict, error) {
	var h monitor.Health
	if err := getAPI(client, base+"/api/v1/health", &h); err != nil {
		return monitor.Healthy, err
	}
	var ar monitor.AlertsResponse
	if err := getAPI(client, base+"/api/v1/alerts", &ar); err != nil {
		return monitor.Healthy, err
	}

	fmt.Fprintf(w, "%s  health: %s  (%d firing, %d pending)\n",
		h.At.Format(time.RFC3339), h.Verdict, h.Firing, h.Pending)
	writeTargetTable(w, h, ar)
	for _, r := range h.Reasons {
		fmt.Fprintf(w, "  - [%s] %s: %s\n", r.Severity, r.Target, r.Detail)
	}
	for _, a := range ar.Alerts {
		if a.State == monitor.StateOK {
			continue
		}
		on := a.Rule.Metric
		if a.Target != "" {
			on += " [" + a.Target + "]"
		}
		fmt.Fprintf(w, "  ! %s %s on %s (value %.4g, since %s, trace %s)\n",
			a.Rule.Name, a.State, on, a.Value,
			a.Since.Format(time.RFC3339), a.Trace)
	}
	return h.Verdict, nil
}

// writeTargetTable renders the per-node/per-disk drill-down: one row per
// labeled health target (everything except the array-wide rollup), with
// its verdict, how many alerts are firing against it, and the first
// reason indicting it. Quiet targets the scorer knows about still get a
// row, so a 4-node table shows 4 rows with one degraded, not just the
// problem child.
func writeTargetTable(w io.Writer, h monitor.Health, ar monitor.AlertsResponse) {
	targets := make([]string, 0, len(h.Targets))
	for name := range h.Targets {
		if name != "array" {
			targets = append(targets, name)
		}
	}
	if len(targets) == 0 {
		return
	}
	sort.Strings(targets)
	firing := map[string]int{}
	for _, a := range ar.Alerts {
		if a.State == monitor.StateFiring && a.Target != "" {
			firing[a.Target]++
		}
	}
	why := map[string]string{}
	for _, r := range h.Reasons {
		if _, seen := why[r.Target]; !seen {
			why[r.Target] = r.Detail
		}
	}
	fmt.Fprintf(w, "  %-12s %-10s %-7s %s\n", "target", "state", "alerts", "why")
	for _, name := range targets {
		alerts := "-"
		if n := firing[name]; n > 0 {
			alerts = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(w, "  %-12s %-10s %-7s %s\n", name, h.Targets[name], alerts, why[name])
	}
}

// getAPI fetches one JSON endpoint into out.
func getAPI(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("watch: %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch: %s: status %d", url, resp.StatusCode)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("watch: %s: bad JSON: %w", url, err)
	}
	return nil
}
