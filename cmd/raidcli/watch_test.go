package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/obs"
)

// watchServer serves a real monitoring plane over httptest: a registry,
// a monitor with one threshold rule, manually ticked.
func watchServer(t *testing.T) (*httptest.Server, *obs.Registry, *monitor.Monitor, func()) {
	t.Helper()
	reg := obs.NewRegistry()
	now := time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)
	mon, err := monitor.New(monitor.Config{
		Registry: reg,
		Window:   32,
		Rules: []monitor.Rule{{
			Name: "quarantines", Metric: "shard.quarantine.total",
			Kind: monitor.RuleThreshold, Op: ">", Value: 0,
			Window: monitor.Duration(time.Minute), Severity: monitor.SeverityCritical,
		}},
		Tracer: obs.NewTracer(obs.NewFlightRecorder(32)),
		Now:    func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := func() {
		mon.Tick()
		now = now.Add(time.Second)
	}
	mux := http.NewServeMux()
	mon.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, reg, mon, tick
}

// TestWatchHealthy: one poll of a quiet array prints a healthy line and
// exits 0.
func TestWatchHealthy(t *testing.T) {
	srv, _, _, tick := watchServer(t)
	tick()

	var buf bytes.Buffer
	client := srv.Client()
	v, err := watchRound(client, srv.URL, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != monitor.Healthy {
		t.Errorf("verdict = %v, want healthy", v)
	}
	if out := buf.String(); !bytes.Contains([]byte(out), []byte("health: healthy")) {
		t.Errorf("watch output %q missing healthy line", out)
	}

	// The full subcommand path: -n 1 against a healthy array exits clean.
	if err := run("watch", []string{"-url", srv.URL, "-n", "1"}); err != nil {
		t.Errorf("watch -n 1 on healthy array: %v", err)
	}
}

// TestWatchDegraded: a firing alert renders the alert line, the reasons,
// and makes the subcommand exit non-zero — the health-probe contract.
func TestWatchDegraded(t *testing.T) {
	srv, reg, _, tick := watchServer(t)
	tick()
	reg.Count("shard.quarantine.total", 2)
	tick()

	var buf bytes.Buffer
	v, err := watchRound(srv.Client(), srv.URL, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != monitor.Critical {
		t.Fatalf("verdict = %v, want critical (output %s)", v, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"health: critical",
		"quarantines firing",
		"shard.quarantine.total",
		"trace ",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}

	err = run("watch", []string{"-url", srv.URL, "-n", "2", "-interval", "1ms"})
	if err == nil {
		t.Fatal("watch on a critical array exited clean, want failure")
	}
	if exitCode(err) != exitFail {
		t.Errorf("exit code = %d, want %d", exitCode(err), exitFail)
	}
}

// TestWatchUsageAndErrors: flag misuse exits 64, unreachable or broken
// servers exit 1.
func TestWatchUsageAndErrors(t *testing.T) {
	if err := run("watch", []string{"-bogus"}); exitCode(err) != exitUsage {
		t.Errorf("bad flag: exit %d, want %d", exitCode(err), exitUsage)
	}
	if err := run("watch", []string{"extra"}); exitCode(err) != exitUsage {
		t.Errorf("positional arg: exit %d, want %d", exitCode(err), exitUsage)
	}

	down := httptest.NewServer(http.NotFoundHandler())
	down.Close()
	if err := run("watch", []string{"-url", down.URL, "-n", "1"}); exitCode(err) != exitFail {
		t.Errorf("dead server: exit %d, want %d", exitCode(err), exitFail)
	}

	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer broken.Close()
	if err := run("watch", []string{"-url", broken.URL, "-n", "1"}); exitCode(err) != exitFail {
		t.Errorf("bad JSON: exit %d, want %d", exitCode(err), exitFail)
	}
}

// TestWatchDrillDown: labeled per-node movement renders the drill-down
// table with one row per target, and targeted alerts attach to their
// row. The exit-code contract is unchanged: a degraded node fails the
// probe.
func TestWatchDrillDown(t *testing.T) {
	srv, reg, _, tick := watchServer(t)
	tick()
	reg.CountWith("store.hedge.fired", 3, obs.L("node", "1"))
	reg.CountWith("raid.scrub.repairs", 1, obs.L("disk", "2"))
	tick()

	var buf bytes.Buffer
	v, err := watchRound(srv.Client(), srv.URL, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != monitor.Degraded {
		t.Fatalf("verdict = %v, want degraded (output %s)", v, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"target", "state", // table header
		"node.1", "disk.2", "degraded",
		"hedged reads",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("drill-down output missing %q:\n%s", want, out)
		}
	}

	err = run("watch", []string{"-url", srv.URL, "-n", "1"})
	if exitCode(err) != exitFail {
		t.Errorf("degraded node: exit %d, want %d", exitCode(err), exitFail)
	}
}
