package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestCLIRoundTrip drives encode -> damage -> decode -> repair through the
// real subcommand entry points.
func TestCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	blob := filepath.Join(dir, "blob.bin")
	content := make([]byte, 50_000)
	rand.New(rand.NewSource(1)).Read(content)
	if err := os.WriteFile(blob, content, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run("encode", []string{"-k", "4", "-elem", "512", "-out", dir, "-workers", "2", blob}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	manifest := filepath.Join(dir, "blob.bin.manifest.json")
	if err := run("info", []string{manifest}); err != nil {
		t.Fatalf("info: %v", err)
	}

	// Lose a data shard, corrupt the P shard.
	if err := os.Remove(filepath.Join(dir, "blob.bin.shard.d02")); err != nil {
		t.Fatal(err)
	}
	pShard := filepath.Join(dir, "blob.bin.shard.p")
	b, err := os.ReadFile(pShard)
	if err != nil {
		t.Fatal(err)
	}
	b[10] ^= 0xff
	if err := os.WriteFile(pShard, b, 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "recovered.bin")
	if err := run("decode", []string{"-out", out, manifest}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("recovered file differs from the original")
	}

	if err := run("repair", []string{manifest}); err != nil {
		t.Fatalf("repair: %v", err)
	}
	// Everything healthy now: a second repair is a no-op and all shards
	// verify.
	if err := run("repair", []string{manifest}); err != nil {
		t.Fatalf("second repair: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run("bogus", nil); err != errUsage {
		t.Errorf("unknown subcommand gave %v", err)
	}
	if err := run("encode", []string{"-k", "4"}); err == nil {
		t.Error("encode without a file accepted")
	}
	if err := run("decode", []string{filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Error("decode with missing manifest accepted")
	}
	if err := run("repair", []string{}); err == nil {
		t.Error("repair without manifest accepted")
	}
	if err := run("info", []string{filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Error("info with missing manifest accepted")
	}
}
