package main

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// encodeCLIFixture writes a random blob and encodes it through the real
// subcommand, returning the blob content and the manifest path.
func encodeCLIFixture(t *testing.T, dir string, size int) ([]byte, string) {
	t.Helper()
	blob := filepath.Join(dir, "blob.bin")
	content := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(content)
	if err := os.WriteFile(blob, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("encode", []string{"-k", "4", "-elem", "512", "-out", dir, "-workers", "2", blob}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return content, filepath.Join(dir, "blob.bin.manifest.json")
}

// TestCLIRoundTrip drives encode -> damage -> decode -> repair through the
// real subcommand entry points.
func TestCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	content, manifest := encodeCLIFixture(t, dir, 50_000)
	if err := run("info", []string{manifest}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := run("verify", []string{manifest}); err != nil {
		t.Fatalf("verify clean: %v", err)
	}

	// Lose a data shard, corrupt the P shard.
	if err := os.Remove(filepath.Join(dir, "blob.bin.shard.d02")); err != nil {
		t.Fatal(err)
	}
	pShard := filepath.Join(dir, "blob.bin.shard.p")
	b, err := os.ReadFile(pShard)
	if err != nil {
		t.Fatal(err)
	}
	b[10] ^= 0xff
	if err := os.WriteFile(pShard, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// Degraded but recoverable: verify warns yet succeeds (exit 0).
	if err := run("verify", []string{manifest}); err != nil {
		t.Fatalf("verify degraded: %v", err)
	}

	out := filepath.Join(dir, "recovered.bin")
	if err := run("decode", []string{"-out", out, manifest}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("recovered file differs from the original")
	}

	if err := run("repair", []string{manifest}); err != nil {
		t.Fatalf("repair: %v", err)
	}
	// Everything healthy now: a second repair is a no-op and all shards
	// verify.
	if err := run("repair", []string{manifest}); err != nil {
		t.Fatalf("second repair: %v", err)
	}
	if err := run("verify", []string{manifest}); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run("bogus", nil); err != errUsage {
		t.Errorf("unknown subcommand gave %v", err)
	}
	if err := run("encode", []string{"-k", "4"}); err == nil {
		t.Error("encode without a file accepted")
	}
	if err := run("decode", []string{filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Error("decode with missing manifest accepted")
	}
	if err := run("repair", []string{}); err == nil {
		t.Error("repair without manifest accepted")
	}
	if err := run("info", []string{filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Error("info with missing manifest accepted")
	}
}

// TestCLIExitCodes pins the exit-code contract: 0 for clean and
// recovered-degraded runs, 2 for unrecoverable sets, 64 for usage
// errors, 1 otherwise.
func TestCLIExitCodes(t *testing.T) {
	if got := realMain(nil); got != exitUsage {
		t.Errorf("no args: exit %d, want %d", got, exitUsage)
	}
	if got := realMain([]string{"bogus"}); got != exitUsage {
		t.Errorf("bad subcommand: exit %d, want %d", got, exitUsage)
	}
	if got := realMain([]string{"decode", "-no-such-flag", "x"}); got != exitUsage {
		t.Errorf("bad flag: exit %d, want %d", got, exitUsage)
	}
	if got := realMain([]string{"decode", filepath.Join(t.TempDir(), "absent.json")}); got != exitFail {
		t.Errorf("missing manifest: exit %d, want %d", got, exitFail)
	}

	dir := t.TempDir()
	_, manifest := encodeCLIFixture(t, dir, 20_000)

	// One shard down: decode recovers in degraded mode and exits 0.
	if err := os.Remove(filepath.Join(dir, "blob.bin.shard.d01")); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "recovered.bin")
	if got := realMain([]string{"decode", "-out", out, manifest}); got != exitOK {
		t.Errorf("degraded decode: exit %d, want %d", got, exitOK)
	}

	// Three shards down: unrecoverable, exit 2, and no partial output
	// file left behind.
	for _, name := range []string{"blob.bin.shard.d02", "blob.bin.shard.p"} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	os.Remove(out)
	if got := realMain([]string{"decode", "-out", out, manifest}); got != exitUnrecoverable {
		t.Errorf("unrecoverable decode: exit %d, want %d", got, exitUnrecoverable)
	}
	if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("partial output left behind after failed decode: %v", err)
	}
	if got := realMain([]string{"verify", manifest}); got != exitUnrecoverable {
		t.Errorf("unrecoverable verify: exit %d, want %d", got, exitUnrecoverable)
	}
}

// TestCLIChaosGate checks that fault injection stays behind the
// environment opt-in: without RAIDCLI_CHAOS the flags are a usage error;
// with it, a seeded profile runs the whole pipeline.
func TestCLIChaosGate(t *testing.T) {
	dir := t.TempDir()
	content, manifest := encodeCLIFixture(t, dir, 20_000)

	if err := run("decode", []string{"-fault-profile", "latency", manifest}); exitCode(err) != exitUsage {
		t.Errorf("ungated -fault-profile: err %v (exit %d), want usage error", err, exitCode(err))
	}

	t.Setenv("RAIDCLI_CHAOS", "1")
	if err := run("decode", []string{"-fault-profile", "no-such-profile", manifest}); exitCode(err) != exitUsage {
		t.Errorf("unknown profile: err %v, want usage error", err)
	}
	out := filepath.Join(dir, "recovered.bin")
	if err := run("decode",
		[]string{"-fault-profile", "bitrot", "-fault-seed", "7", "-retries", "4", "-retry-backoff", "100us",
			"-out", out, manifest}); err != nil {
		t.Fatalf("chaos decode: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("chaos decode produced wrong bytes")
	}
}

// TestCLINodesGate checks the node fault-domain flags stay behind the
// environment opt-in, and that a gated multi-node encode/decode round
// trip under a whole-node outage schedule recovers the original bytes.
func TestCLINodesGate(t *testing.T) {
	dir := t.TempDir()
	content, manifest := encodeCLIFixture(t, dir, 20_000)

	if err := run("decode", []string{"-nodes", "6", manifest}); exitCode(err) != exitUsage {
		t.Errorf("ungated -nodes: err %v (exit %d), want usage error", err, exitCode(err))
	}
	if err := run("decode", []string{"-node-fault-profile", "outage", manifest}); exitCode(err) != exitUsage {
		t.Errorf("-node-fault-profile without -nodes: err %v, want usage error", err)
	}

	t.Setenv("RAIDCLI_CHAOS", "1")
	if err := run("decode", []string{"-nodes", "6", "-node-fault-profile", "no-such", manifest}); exitCode(err) != exitUsage {
		t.Errorf("unknown node profile: err %v, want usage error", err)
	}

	// Re-encode on 6 nodes so the manifest records spread placement,
	// then decode under a seeded single-node outage: one node holds one
	// shard, so the decode must still be byte-identical.
	blob := filepath.Join(dir, "blob.bin")
	if err := run("encode", []string{"-k", "4", "-elem", "512", "-out", dir, "-nodes", "6", blob}); err != nil {
		t.Fatalf("multi-node encode: %v", err)
	}
	out := filepath.Join(dir, "recovered.bin")
	if err := run("decode",
		[]string{"-nodes", "6", "-node-fault-profile", "outage", "-fault-seed", "3",
			"-out", out, manifest}); err != nil {
		t.Fatalf("node-outage decode: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("node-outage decode produced wrong bytes")
	}
}
