package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var tracePattern = regexp.MustCompile(`(?m)^trace: ([0-9a-f]{16})$`)

// captureBoth runs fn with both stdout and stderr redirected.
func captureBoth(t *testing.T, fn func() error) (stdout, stderr string) {
	t.Helper()
	oldErr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	stdout = capture(t, fn)
	w.Close()
	os.Stderr = oldErr
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return stdout, string(buf[:n])
}

func traceFixture(t *testing.T) (dir, blob, manifest string) {
	t.Helper()
	dir = t.TempDir()
	blob = filepath.Join(dir, "data.bin")
	payload := make([]byte, 7000)
	rand.New(rand.NewSource(9)).Read(payload)
	if err := os.WriteFile(blob, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	capture(t, func() error {
		return run("encode", []string{"-k", "4", "-elem", "64", "-out", dir, blob})
	})
	return dir, blob, filepath.Join(dir, "data.bin.manifest.json")
}

// TestTraceIDPrinted checks the trace-surfacing contract: -stats prints
// the operation's trace ID for encode/decode/repair, and verify prints
// it unconditionally.
func TestTraceIDPrinted(t *testing.T) {
	dir, blob, manifest := traceFixture(t)

	out := capture(t, func() error {
		return run("encode", []string{"-k", "4", "-elem", "64", "-out", dir, "-stats", blob})
	})
	if !tracePattern.MatchString(out) {
		t.Errorf("encode -stats did not print a trace ID:\n%s", out)
	}

	out = capture(t, func() error {
		return run("decode", []string{"-out", filepath.Join(dir, "rec.bin"), "-stats", manifest})
	})
	if !tracePattern.MatchString(out) {
		t.Errorf("decode -stats did not print a trace ID:\n%s", out)
	}

	// verify: always, with no flags at all.
	out = capture(t, func() error {
		return run("verify", []string{manifest})
	})
	if !tracePattern.MatchString(out) {
		t.Errorf("verify did not print a trace ID:\n%s", out)
	}

	// Without -stats or -log-json, decode stays quiet about the trace.
	out = capture(t, func() error {
		return run("decode", []string{"-out", filepath.Join(dir, "rec2.bin"), manifest})
	})
	if tracePattern.MatchString(out) {
		t.Errorf("decode printed a trace ID without -stats/-log-json:\n%s", out)
	}
}

// TestLogJSON runs a degraded decode under -log-json and checks the
// stderr stream is JSON lines carrying the causal record — the probe's
// findings, the quarantine, the heals — all correlated to the trace ID
// printed on stdout.
func TestLogJSON(t *testing.T) {
	dir, _, manifest := traceFixture(t)

	// Corrupt one shard so the decode is genuinely degraded.
	shardPath := filepath.Join(dir, "data.bin.shard.d01")
	b, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if err := os.WriteFile(shardPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	stdout, stderr := captureBoth(t, func() error {
		return run("decode", []string{"-out", filepath.Join(dir, "rec.bin"), "-log-json", manifest})
	})
	match := tracePattern.FindStringSubmatch(stdout)
	if match == nil {
		t.Fatalf("decode -log-json did not print a trace ID:\n%s", stdout)
	}
	trace := match[1]

	names := make(map[string]int)
	for _, line := range strings.Split(stderr, "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // the degraded-mode warning shares stderr
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if rec["trace"] != trace {
			t.Errorf("log line %v in trace %v, want %v", rec["msg"], rec["trace"], trace)
		}
		names[rec["msg"].(string)]++
	}
	for _, want := range []string{"raidcli.decode", "shard.decode", "shard.probe",
		"shard.unhealthy", "shard.quarantine"} {
		if names[want] == 0 {
			t.Errorf("event log missing %q lines (have %v)", want, names)
		}
	}
}
