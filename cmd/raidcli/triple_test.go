package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestCLITripleParity drives the rs3 family end to end through the real
// subcommands: encode with the -m cross-check, lose three shards at once
// (including an r-numbered extra parity), decode byte-identically, then
// repair and verify back to healthy.
func TestCLITripleParity(t *testing.T) {
	dir := t.TempDir()
	blob := filepath.Join(dir, "blob.bin")
	content := make([]byte, 30_000)
	rand.New(rand.NewSource(9)).Read(content)
	if err := os.WriteFile(blob, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("encode",
		[]string{"-k", "4", "-code", "rs3", "-m", "3", "-elem", "512", "-out", dir, blob}); err != nil {
		t.Fatalf("encode rs3: %v", err)
	}
	manifest := filepath.Join(dir, "blob.bin.manifest.json")
	if err := run("info", []string{"-m", "3", manifest}); err != nil {
		t.Fatalf("info: %v", err)
	}

	// Lose the full parity budget: two data shards plus the third parity.
	for _, name := range []string{"blob.bin.shard.d00", "blob.bin.shard.d02", "blob.bin.shard.r04"} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	out := filepath.Join(dir, "recovered.bin")
	if err := run("decode", []string{"-m", "3", "-out", out, manifest}); err != nil {
		t.Fatalf("triple-loss decode: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("triple-loss decode produced wrong bytes")
	}
	if err := run("repair", []string{manifest}); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if err := run("verify", []string{manifest}); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}

	// A fourth loss exceeds the budget: exit 2.
	for _, name := range []string{"blob.bin.shard.d00", "blob.bin.shard.d01",
		"blob.bin.shard.d03", "blob.bin.shard.p"} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	if got := realMain([]string{"decode", "-out", out, manifest}); got != exitUnrecoverable {
		t.Errorf("4-shard loss: exit %d, want %d", got, exitUnrecoverable)
	}
}

// TestCLIParityCountCrossChecks pins the -m contract: a mismatch against
// the chosen family on encode, or against the manifest on recovery, is a
// usage error (exit 64) caught before any shard I/O.
func TestCLIParityCountCrossChecks(t *testing.T) {
	dir := t.TempDir()
	blob := filepath.Join(dir, "blob.bin")
	if err := os.WriteFile(blob, []byte("short and sweet"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The default family has two parities, not three.
	if got := realMain([]string{"encode", "-k", "3", "-m", "3", "-out", dir, blob}); got != exitUsage {
		t.Errorf("encode -m 3 against a RAID-6 family: exit %d, want %d", got, exitUsage)
	}
	// rs3 has three, not two.
	if got := realMain([]string{"encode", "-k", "3", "-code", "rs3", "-m", "2", "-out", dir, blob}); got != exitUsage {
		t.Errorf("encode -code rs3 -m 2: exit %d, want %d", got, exitUsage)
	}

	if err := run("encode", []string{"-k", "3", "-m", "2", "-elem", "256", "-out", dir, blob}); err != nil {
		t.Fatalf("encode with a correct -m: %v", err)
	}
	manifest := filepath.Join(dir, "blob.bin.manifest.json")
	for _, cmd := range []string{"decode", "repair", "verify", "info"} {
		if got := realMain([]string{cmd, "-m", "3", manifest}); got != exitUsage {
			t.Errorf("%s -m 3 against an m=2 manifest: exit %d, want %d", cmd, got, exitUsage)
		}
	}
	if err := run("verify", []string{"-m", "2", manifest}); err != nil {
		t.Fatalf("verify with the matching -m: %v", err)
	}
}
