// Command raidcli encodes files into erasure-coded shard sets and
// recovers them with up to m shards missing or silently corrupted —
// two for the RAID-6 families, three for the rs3 triple-parity code.
// The erasure code is selected by registry name (-code
// liberation|rdp|evenodd|rs3|...); -m cross-checks the family's parity
// count. Recovery reads the code from the manifest, where -code, -p,
// and -m act as cross-checks.
//
// Usage:
//
//	raidcli encode -k 6 [-code liberation] [-p 7] [-m M] [-elem 4096] [-out DIR] [-workers N] [-batch N] FILE
//	raidcli decode [-out FILE] [-code NAME] [-heal] [-workers N] [-batch N] MANIFEST
//	raidcli repair [-code NAME] [-workers N] [-batch N] MANIFEST
//	raidcli verify [-code NAME] MANIFEST
//	raidcli info [-code NAME] MANIFEST
//	raidcli watch [-url http://localhost:8080] [-interval 2s] [-n 0]
//
// Watch polls a running raidmon's monitoring plane (/api/v1/health and
// /api/v1/alerts) and renders the array health verdict, its reasons,
// and any pending or firing alerts as plain text. With -n 1 it doubles
// as a scripted health probe: healthy exits 0, anything else exits 1.
//
// Encode, decode, repair, and verify all take -retries and
// -retry-backoff to bound the transient-I/O retry loop. With
// RAIDCLI_CHAOS set in the environment they additionally accept
// -fault-profile and -fault-seed, which route every byte of I/O through
// the seeded fault injector, and -nodes/-node-fault-profile, which
// spread the shards over N simulated nodes (placement recorded in the
// manifest) with per-node circuit breakers, hedged reads, and seeded
// whole-node outage/flap/latency schedules — testing facilities,
// refused without the environment opt-in.
//
// Every operation runs under a causal trace: -log-json streams the
// event log (retries, quarantines, heals, injected faults) as JSON
// lines on stderr, and -stats or -log-json print the trace ID; verify
// always prints it.
//
// Exit codes: 0 on success (including decodes that recovered in degraded
// mode, which warn on stderr), 1 on ordinary failure, 2 when the shard
// set is unrecoverable, 64 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/codes"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/store/faultstore"
	"repro/internal/store/nodestore"
)

// Exit codes: sysexits-style 64 for usage, 2 for an unrecoverable shard
// set (so scripts can tell "try another copy" from "operator error").
const (
	exitOK            = 0
	exitFail          = 1
	exitUnrecoverable = 2
	exitUsage         = 64
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	if len(args) < 1 {
		usage()
		return exitUsage
	}
	err := run(args[0], args[1:])
	if errors.Is(err, errUsage) {
		usage()
		return exitUsage
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "raidcli:", err)
	}
	return exitCode(err)
}

// exitCode maps a subcommand error to the CLI's exit-code contract.
func exitCode(err error) int {
	var unrec *shard.UnrecoverableError
	var use *usageError
	switch {
	case err == nil:
		return exitOK
	case errors.As(err, &unrec):
		return exitUnrecoverable
	case errors.As(err, &use):
		return exitUsage
	default:
		return exitFail
	}
}

// errUsage asks main to print the usage text.
var errUsage = fmt.Errorf("unknown subcommand")

// usageError marks bad invocations (flag errors, wrong arity, chaos
// flags without the opt-in) so they exit 64 rather than 1.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// run dispatches one subcommand; split from main so tests can drive the
// CLI in-process.
func run(cmd string, args []string) error {
	switch cmd {
	case "encode":
		return cmdEncode(args)
	case "decode":
		return cmdDecode(args)
	case "repair":
		return cmdRepair(args)
	case "verify":
		return cmdVerify(args)
	case "info":
		return cmdInfo(args)
	case "watch":
		return cmdWatch(args)
	default:
		return errUsage
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  raidcli encode -k K [-code NAME] [-p P] [-m M] [-elem N] [-out DIR] [-workers N] [-batch N] FILE
  raidcli decode [-out FILE] [-code NAME] [-heal] [-workers N] [-batch N] MANIFEST
  raidcli repair [-code NAME] [-workers N] [-batch N] MANIFEST
  raidcli verify [-code NAME] MANIFEST
  raidcli info [-code NAME] MANIFEST
  raidcli watch [-url http://localhost:8080] [-interval 2s] [-n 0]

code selection:
  -code NAME            erasure code by registry name (encode selects, default
                        `+codes.Default+`; recovery cross-checks the manifest).
                        Registered: `+strings.Join(codes.Names(), ", ")+`
  -p P                  prime parameter of the array codes (encode: 0 = smallest
                        usable; recovery cross-checks the manifest)
  -m M                  parity shard count the family must provide (0 = don't
                        check; the name picks the count — RAID-6 families have
                        2, rs3 has 3; recovery cross-checks the manifest)

robustness flags (encode/decode/repair/verify):
  -retries N            transient-I/O retries per operation (default 3)
  -retry-backoff D      base backoff before the first retry (default 1ms)
  -fault-profile NAME   inject faults from a named profile (needs RAIDCLI_CHAOS=1)
  -fault-seed N         seed for the fault schedule (default 1)
  -nodes N              spread shards over N simulated nodes with per-node
                        breakers and hedged reads (needs RAIDCLI_CHAOS=1)
  -node-fault-profile NAME
                        node-level fault schedule: off, outage, outage2,
                        flap, slow, chaos (needs -nodes and RAIDCLI_CHAOS=1)

observability flags (encode/decode/repair/verify):
  -stats                print operation statistics and the trace ID
  -log-json             stream the causal event log as JSON lines on stderr`)
}

// ioFlags are the streaming + robustness flags shared by encode, decode,
// and repair.
type ioFlags struct {
	code           string
	prime          int
	parities       int
	workers, batch int
	stats          bool
	logJSON        bool
	retries        int
	backoff        time.Duration
	faultProfile   string
	faultSeed      int64
	nodes          int
	nodeProfile    string
}

func addIOFlags(fs *flag.FlagSet) *ioFlags {
	f := &ioFlags{}
	addCodeFlags(fs, &f.code, &f.prime, &f.parities)
	fs.IntVar(&f.workers, "workers", 1, "parallel coding workers (0 = all cores)")
	fs.IntVar(&f.batch, "batch", 0, "stripes per streaming batch (0 = default)")
	fs.BoolVar(&f.stats, "stats", false, "print operation statistics")
	fs.BoolVar(&f.logJSON, "log-json", false, "stream the operation's causal event log as JSON lines on stderr")
	fs.IntVar(&f.retries, "retries", 3, "transient-I/O retries per operation (0 disables)")
	fs.DurationVar(&f.backoff, "retry-backoff", time.Millisecond, "base backoff before the first retry")
	fs.StringVar(&f.faultProfile, "fault-profile", "", "fault-injection profile (requires RAIDCLI_CHAOS=1)")
	fs.Int64Var(&f.faultSeed, "fault-seed", 1, "seed for the fault-injection schedule")
	fs.IntVar(&f.nodes, "nodes", 1, "spread shards over N simulated nodes (requires RAIDCLI_CHAOS=1)")
	fs.StringVar(&f.nodeProfile, "node-fault-profile", "", "node-level fault profile (requires -nodes and RAIDCLI_CHAOS=1)")
	return f
}

// addCodeFlags registers the code-selection flags shared by every
// subcommand: encode uses them to pick the code, the recovery commands
// treat them as cross-checks against the manifest.
func addCodeFlags(fs *flag.FlagSet, code *string, prime *int, parities *int) {
	fs.StringVar(code, "code", "", "erasure code by registry name: "+strings.Join(codes.Names(), ", "))
	fs.IntVar(prime, "p", 0, "prime parameter (0 = smallest usable)")
	fs.IntVar(parities, "m", 0, "parity shard count to require of the family (0 = don't check)")
}

// checkManifest cross-checks explicitly given -code/-p flags against a
// loaded manifest, catching an operator pointing the wrong expectation
// at a shard set before any shard I/O happens.
func checkManifest(m *shard.Manifest, code string, prime, parities int) error {
	if code != "" && code != m.Code {
		return usagef("manifest was encoded with code %q, not %q", m.Code, code)
	}
	if prime != 0 && prime != m.P {
		return usagef("manifest was encoded with p=%d, not %d", m.P, prime)
	}
	if parities != 0 && parities != m.M {
		return usagef("manifest was encoded with m=%d parities, not %d", m.M, parities)
	}
	return nil
}

// chaosEnabled reports whether the environment opted into fault
// injection.
func chaosEnabled() bool { return os.Getenv("RAIDCLI_CHAOS") != "" }

// options translates the parsed flags into shard.Options, wiring the
// retry policy and — behind the RAIDCLI_CHAOS gate — the fault injector.
func (f *ioFlags) options() (shard.Options, *obs.Registry, error) {
	workers := f.workers
	if workers == 0 {
		workers = -1 // on the command line 0 means all cores
	}
	var reg *obs.Registry
	if f.stats {
		reg = obs.NewRegistry()
	}
	sinks := []obs.EventSink{obs.NewFlightRecorder(obs.DefaultFlightSize)}
	if f.logJSON {
		sinks = append(sinks, obs.NewEventLog(os.Stderr, slog.LevelInfo))
	}
	opt := shard.Options{
		Workers:      workers,
		BatchStripes: f.batch,
		Registry:     reg,
		Tracer:       obs.NewTracer(sinks...),
		Retry: store.RetryPolicy{
			MaxAttempts: f.retries + 1,
			BaseBackoff: f.backoff,
		},
	}
	if f.faultProfile != "" {
		if !chaosEnabled() {
			return opt, reg, usagef(
				"-fault-profile is a testing facility; set RAIDCLI_CHAOS=1 to enable it")
		}
		cfg, err := faultstore.Profile(f.faultProfile, f.faultSeed)
		if err != nil {
			return opt, reg, usagef("%v (profiles: %v)", err, faultstore.Profiles())
		}
		cfg.Registry = reg
		opt.Store = faultstore.New(store.OS{}, cfg)
	}
	if f.nodeProfile != "" && f.nodes <= 1 {
		return opt, reg, usagef("-node-fault-profile needs -nodes N with N > 1")
	}
	if f.nodes > 1 {
		if !chaosEnabled() {
			return opt, reg, usagef(
				"-nodes is a testing facility; set RAIDCLI_CHAOS=1 to enable it")
		}
		faults, err := nodestore.Profile(f.nodeProfile, f.faultSeed, f.nodes)
		if err != nil {
			return opt, reg, usagef("%v (profiles: %v)", err, nodestore.Profiles())
		}
		opt.Store = nodestore.New(nodestore.Config{
			Nodes:     f.nodes,
			Base:      opt.Store, // faultstore when -fault-profile is also set
			Placement: nodestore.PolicySpread,
			Seed:      f.faultSeed,
			Faults:    faults,
			OpTimeout: 250 * time.Millisecond,
			Hedge:     nodestore.HedgeConfig{Quantile: 0.95},
			Breaker:   nodestore.BreakerConfig{Threshold: 3, Cooldown: time.Second},
			Registry:  reg,
		})
	}
	return opt, reg, nil
}

// traced roots the operation's causal trace: the returned context goes
// into shard.Options.Context so every retry, quarantine, and heal below
// chains onto one trace, and done ends the root span and — under -stats
// or -log-json — prints the trace ID so the operator can correlate the
// run with its event log.
func (f *ioFlags) traced(opt *shard.Options, reg *obs.Registry, name string) (done func(error)) {
	ctx, root := obs.StartOp(context.Background(), opt.Tracer, reg, name)
	opt.Context = ctx
	return func(err error) {
		root.End(err)
		if f.stats || f.logJSON {
			fmt.Printf("trace: %s\n", root.TraceID())
		}
	}
}

// parseFlags runs fs over args, converting flag errors into usage
// errors, and enforces the positional arity.
func parseFlags(fs *flag.FlagSet, args []string, positional int, what string) error {
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return usagef("%s: %v", fs.Name(), err)
	}
	if fs.NArg() != positional {
		return usagef("%s needs exactly %s", fs.Name(), what)
	}
	return nil
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ContinueOnError)
	k := fs.Int("k", 4, "number of data shards")
	elem := fs.Int("elem", 4096, "element size in bytes")
	out := fs.String("out", ".", "output directory")
	iof := addIOFlags(fs)
	if err := parseFlags(fs, args, 1, "one input file"); err != nil {
		return err
	}
	opt, reg, err := iof.options()
	if err != nil {
		return err
	}
	opt.Code = iof.code
	if iof.parities != 0 {
		name := iof.code
		if name == "" {
			name = codes.Default
		}
		info, ok := codes.Lookup(name)
		if !ok {
			return usagef("unknown code %q (registered: %s)", name, strings.Join(codes.Names(), ", "))
		}
		if info.M != iof.parities {
			return usagef("code %q has %d parities, not %d — pick a family with the parity count you need (see -code)",
				name, info.M, iof.parities)
		}
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	done := iof.traced(&opt, reg, "raidcli.encode")
	m, err := shard.EncodeOpts(f, st.Size(), filepath.Base(path), *k, iof.prime, *elem, *out, opt)
	done(err)
	if err != nil {
		return err
	}
	fmt.Printf("encoded %s (%d bytes) as %d+%d shards (%s, p=%d, %d stripes, element %dB) in %s\n",
		m.FileName, m.FileSize, m.K, m.M, m.Code, m.P, m.Stripes, m.ElemSize, *out)
	printStats(os.Stdout, reg, m.K)
	return nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default: recovered.<name>)")
	heal := fs.Bool("heal", false, "scan every stripe for silent corruption while decoding")
	iof := addIOFlags(fs)
	if err := parseFlags(fs, args, 1, "one manifest"); err != nil {
		return err
	}
	opt, reg, err := iof.options()
	if err != nil {
		return err
	}
	opt.Heal = *heal
	manifest := fs.Arg(0)
	m, err := shard.LoadManifest(manifest)
	if err != nil {
		return err
	}
	if err := checkManifest(m, iof.code, iof.prime, iof.parities); err != nil {
		return err
	}
	dest := *out
	if dest == "" {
		dest = "recovered." + m.FileName
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	done := iof.traced(&opt, reg, "raidcli.decode")
	rep, err := shard.DecodeReport(manifest, f, opt)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	done(err)
	if rep != nil {
		for _, st := range rep.Status {
			mark := st.State.String()
			if st.State != shard.StateOK {
				mark += " (reconstructed)"
			}
			fmt.Printf("  shard %-14s %s\n", st.Name, mark)
		}
	}
	if err != nil {
		// Never leave a partial recovery behind for someone to trust.
		os.Remove(dest)
		return err
	}
	if rep.Degraded {
		fmt.Fprintf(os.Stderr,
			"raidcli: warning: recovered in degraded mode (quarantined shards %v, %d stripes corrected, %d attempts)\n",
			rep.Quarantined, rep.Corrections, rep.Attempts)
	}
	fmt.Printf("recovered %d bytes into %s\n", m.FileSize, dest)
	printStats(os.Stdout, reg, m.K)
	return nil
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ContinueOnError)
	iof := addIOFlags(fs)
	if err := parseFlags(fs, args, 1, "one manifest"); err != nil {
		return err
	}
	opt, reg, err := iof.options()
	if err != nil {
		return err
	}
	m, err := shard.LoadManifest(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := checkManifest(m, iof.code, iof.prime, iof.parities); err != nil {
		return err
	}
	done := iof.traced(&opt, reg, "raidcli.repair")
	repaired, err := shard.RepairOpts(fs.Arg(0), opt)
	done(err)
	if err != nil {
		return err
	}
	if len(repaired) == 0 {
		fmt.Println("all shards healthy")
	} else {
		fmt.Printf("repaired shards %v\n", repaired)
	}
	printStats(os.Stdout, reg, m.K)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	iof := addIOFlags(fs)
	if err := parseFlags(fs, args, 1, "one manifest"); err != nil {
		return err
	}
	opt, reg, err := iof.options()
	if err != nil {
		return err
	}
	if m, merr := shard.LoadManifest(fs.Arg(0)); merr == nil {
		if err := checkManifest(m, iof.code, iof.prime, iof.parities); err != nil {
			return err
		}
	}
	ctx, root := obs.StartOp(context.Background(), opt.Tracer, reg, "raidcli.verify")
	opt.Context = ctx
	err = shard.Verify(fs.Arg(0), opt)
	root.End(err)
	// Verify always names its trace: a health check's ID is the handle
	// an operator quotes when escalating.
	fmt.Printf("trace: %s\n", root.TraceID())
	var deg *shard.DegradedError
	if errors.As(err, &deg) {
		for _, st := range deg.Status {
			fmt.Printf("  shard %-14s %s\n", st.Name, st.State)
		}
		fmt.Fprintf(os.Stderr, "raidcli: warning: %v\n", err)
		return nil // still recoverable: exit 0 with the warning
	}
	if err != nil {
		return err
	}
	fmt.Println("all shards healthy")
	printStats(os.Stdout, reg, 0)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	var codeName string
	var prime, parities int
	addCodeFlags(fs, &codeName, &prime, &parities)
	if err := parseFlags(fs, args, 1, "one manifest"); err != nil {
		return err
	}
	m, err := shard.LoadManifest(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := checkManifest(m, codeName, prime, parities); err != nil {
		return err
	}
	desc := ""
	if info, ok := codes.Lookup(m.Code); ok {
		desc = " — " + info.Description
	}
	fmt.Printf("file:      %s (%d bytes)\n", m.FileName, m.FileSize)
	fmt.Printf("code:      %s k=%d p=%d w=%d m=%d (tolerates any %d lost shards)%s\n",
		m.Code, m.K, m.P, m.W, m.M, m.M, desc)
	fmt.Printf("layout:    %d stripes, %dB elements, %d shards\n", m.Stripes, m.ElemSize, m.NumShards())
	for i := 0; i < m.NumShards(); i++ {
		fmt.Printf("  %-16s crc32=%08x\n", m.ShardName(i), m.Checksums[i])
	}
	return nil
}

// printStats renders the -stats summary: one line per span with element
// operations, the XORs-per-unit rate (for the encode span, XORs per
// parity element, directly comparable to the paper's k-1 lower bound),
// and latency percentiles. A nil registry prints nothing.
func printStats(w io.Writer, reg *obs.Registry, k int) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap.Spans))
	for n := range snap.Spans {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "--- stats ---")
	for _, n := range names {
		st := snap.Spans[n]
		fmt.Fprintf(w, "%-18s calls=%d xors=%d copies=%d", n, st.Calls, st.XORs, st.Copies)
		if st.Units > 0 {
			fmt.Fprintf(w, " xors/unit=%.3f", st.XORsPerUnit)
			if strings.HasSuffix(n, ".encode") && k > 1 {
				fmt.Fprintf(w, " (lower bound k-1 = %d)", k-1)
			}
		}
		if st.Latency.Count > 0 {
			fmt.Fprintf(w, " p50=%s p99=%s", fmtSeconds(st.Latency.P50), fmtSeconds(st.Latency.P99))
		}
		if st.BytesPerSec > 0 {
			fmt.Fprintf(w, " %.1f MB/s", st.BytesPerSec/1e6)
		}
		fmt.Fprintln(w)
	}
}

// fmtSeconds renders a float64 second count as a duration string.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(100 * time.Nanosecond).String()
}
