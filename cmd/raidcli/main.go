// Command raidcli encodes files into RAID-6 Liberation shard sets and
// recovers them with up to two shards missing or silently corrupted.
//
// Usage:
//
//	raidcli encode -k 6 [-p 7] [-elem 4096] [-out DIR] [-workers N] [-batch N] FILE
//	raidcli decode [-out FILE] [-workers N] [-batch N] MANIFEST
//	raidcli repair [-workers N] [-batch N] MANIFEST
//	raidcli info MANIFEST
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	if err := run(os.Args[1], os.Args[2:]); err != nil {
		if err == errUsage {
			usage()
		}
		fmt.Fprintln(os.Stderr, "raidcli:", err)
		os.Exit(1)
	}
}

// errUsage asks main to print the usage text.
var errUsage = fmt.Errorf("unknown subcommand")

// run dispatches one subcommand; split from main so tests can drive the
// CLI in-process.
func run(cmd string, args []string) error {
	switch cmd {
	case "encode":
		return cmdEncode(args)
	case "decode":
		return cmdDecode(args)
	case "repair":
		return cmdRepair(args)
	case "info":
		return cmdInfo(args)
	default:
		return errUsage
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  raidcli encode -k K [-p P] [-elem N] [-out DIR] [-workers N] [-batch N] FILE
  raidcli decode [-out FILE] [-workers N] [-batch N] MANIFEST
  raidcli repair [-workers N] [-batch N] MANIFEST
  raidcli info MANIFEST`)
	os.Exit(2)
}

func cmdEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	k := fs.Int("k", 4, "number of data shards")
	p := fs.Int("p", 0, "prime parameter (0 = smallest usable)")
	elem := fs.Int("elem", 4096, "element size in bytes")
	out := fs.String("out", ".", "output directory")
	workers := fs.Int("workers", 1, "parallel encoding workers (0 = all cores)")
	batch := fs.Int("batch", 0, "stripes per pipeline batch (0 = default)")
	stats := fs.Bool("stats", false, "print operation statistics")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("encode needs exactly one input file")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
	}
	m, err := shard.EncodeOpts(f, st.Size(), filepath.Base(path), *k, *p, *elem, *out,
		streamOptions(*workers, *batch, reg))
	if err != nil {
		return err
	}
	fmt.Printf("encoded %s (%d bytes) as %d+2 shards (p=%d, %d stripes, element %dB) in %s\n",
		m.FileName, m.FileSize, m.K, m.P, m.Stripes, m.ElemSize, *out)
	printStats(os.Stdout, reg, m.K)
	return nil
}

func cmdDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	out := fs.String("out", "", "output file (default: recovered.<name>)")
	workers := fs.Int("workers", 1, "parallel decoding workers (0 = all cores)")
	batch := fs.Int("batch", 0, "stripes per streaming batch (0 = default)")
	stats := fs.Bool("stats", false, "print operation statistics")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("decode needs exactly one manifest")
	}
	manifest := fs.Arg(0)
	m, err := shard.LoadManifest(manifest)
	if err != nil {
		return err
	}
	dest := *out
	if dest == "" {
		dest = "recovered." + m.FileName
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
	}
	status, err := shard.DecodeOpts(manifest, f, streamOptions(*workers, *batch, reg))
	for _, st := range status {
		mark := "ok"
		switch {
		case !st.Present:
			mark = "MISSING (reconstructed)"
		case !st.Valid:
			mark = "CORRUPT (reconstructed)"
		}
		fmt.Printf("  shard %-14s %s\n", st.Name, mark)
	}
	if err != nil {
		return err
	}
	fmt.Printf("recovered %d bytes into %s\n", m.FileSize, dest)
	printStats(os.Stdout, reg, m.K)
	return nil
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	workers := fs.Int("workers", 1, "parallel decoding workers (0 = all cores)")
	batch := fs.Int("batch", 0, "stripes per streaming batch (0 = default)")
	stats := fs.Bool("stats", false, "print operation statistics")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("repair needs exactly one manifest")
	}
	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
	}
	m, err := shard.LoadManifest(fs.Arg(0))
	if err != nil {
		return err
	}
	repaired, err := shard.RepairOpts(fs.Arg(0), streamOptions(*workers, *batch, reg))
	if err != nil {
		return err
	}
	if len(repaired) == 0 {
		fmt.Println("all shards healthy")
	} else {
		fmt.Printf("repaired shards %v\n", repaired)
	}
	printStats(os.Stdout, reg, m.K)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info needs exactly one manifest")
	}
	m, err := shard.LoadManifest(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("file:      %s (%d bytes)\n", m.FileName, m.FileSize)
	fmt.Printf("code:      liberation k=%d p=%d (tolerates any 2 lost shards)\n", m.K, m.P)
	fmt.Printf("layout:    %d stripes, %dB elements, %d shards\n", m.Stripes, m.ElemSize, m.K+2)
	for i := 0; i < m.K+2; i++ {
		fmt.Printf("  %-16s crc32=%08x\n", m.ShardName(i), m.Checksums[i])
	}
	return nil
}

// streamOptions translates the CLI's -workers/-batch flags into shard
// streaming options: on the command line 0 workers means all cores
// (1, the default, codes in-line).
func streamOptions(workers, batch int, reg *obs.Registry) shard.Options {
	if workers == 0 {
		workers = -1
	}
	return shard.Options{Workers: workers, BatchStripes: batch, Registry: reg}
}

// printStats renders the -stats summary: one line per span with element
// operations, the XORs-per-unit rate (for the encode span, XORs per
// parity element, directly comparable to the paper's k-1 lower bound),
// and latency percentiles. A nil registry prints nothing.
func printStats(w io.Writer, reg *obs.Registry, k int) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap.Spans))
	for n := range snap.Spans {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "--- stats ---")
	for _, n := range names {
		st := snap.Spans[n]
		fmt.Fprintf(w, "%-18s calls=%d xors=%d copies=%d", n, st.Calls, st.XORs, st.Copies)
		if st.Units > 0 {
			fmt.Fprintf(w, " xors/unit=%.3f", st.XORsPerUnit)
			if n == "liberation.encode" {
				fmt.Fprintf(w, " (lower bound k-1 = %d)", k-1)
			}
		}
		if st.Latency.Count > 0 {
			fmt.Fprintf(w, " p50=%s p99=%s", fmtSeconds(st.Latency.P50), fmtSeconds(st.Latency.P99))
		}
		if st.BytesPerSec > 0 {
			fmt.Fprintf(w, " %.1f MB/s", st.BytesPerSec/1e6)
		}
		fmt.Fprintln(w)
	}
}

// fmtSeconds renders a float64 second count as a duration string.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(100 * time.Nanosecond).String()
}
