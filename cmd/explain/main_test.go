package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/liberation"
)

// TestListingsMatchLibrary checks that the CLI's output is exactly the
// library's ExplainEncode/ExplainDecode output for the paper's example.
func TestListingsMatchLibrary(t *testing.T) {
	c, err := liberation.New(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	var enc strings.Builder
	c.ExplainEncode(&enc)
	if !strings.Contains(enc.String(), "40 XORs = 2p(k-1)") {
		t.Errorf("encode listing header: %q", firstLine(enc.String()))
	}
	var dec strings.Builder
	if err := c.ExplainDecode(&dec, 1, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dec.String(), "41 XORs; lower bound 40") {
		t.Errorf("decode listing header: %q", firstLine(dec.String()))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestMainSmoke runs the built binary once if the go tool is available;
// skipped otherwise (the library paths above cover the logic).
func TestMainSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	if os.Getenv("GOCACHE") == "" && os.Getenv("HOME") == "" {
		t.Skip("no build cache available")
	}
	cmd := exec.Command("go", "run", ".", "-p", "3")
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "k=3 p=3") {
		t.Errorf("unexpected output:\n%s", out)
	}
}
