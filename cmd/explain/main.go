// Command explain prints the optimal Liberation encoding or decoding as a
// step-by-step operation listing in the paper's b[i][j] notation — the
// same presentation as the worked p=5 example in Sections III-B and
// III-C, but generated from the executable schedules for any (k, p).
//
// Usage:
//
//	explain -p 5                 # encoding steps for k=p=5 (paper's example)
//	explain -k 4 -p 7 -erase 1,3 # decoding steps for an erasure pattern
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/codes"
)

// explainer is the schedule-listing capability of the optimal Liberation
// code; the registry hands back a core.Code, so explain discovers it the
// same way the production stack discovers optional capabilities.
type explainer interface {
	ExplainEncode(w io.Writer)
	ExplainDecode(w io.Writer, l, r int) error
}

func main() {
	var (
		k     = flag.Int("k", 0, "data columns (default: p)")
		p     = flag.Int("p", 5, "prime parameter")
		erase = flag.String("erase", "", "two data columns to decode, e.g. 1,3 (default: explain encoding)")
	)
	flag.Parse()
	if *k == 0 {
		*k = *p
	}
	c, err := codes.New("liberation", *k, *p)
	if err != nil {
		log.Fatal(err)
	}
	code := c.(explainer)
	if *erase == "" {
		code.ExplainEncode(os.Stdout)
		return
	}
	var l, r int
	if _, err := fmt.Sscanf(strings.ReplaceAll(*erase, " ", ""), "%d,%d", &l, &r); err != nil {
		log.Fatalf("bad -erase %q: want L,R", *erase)
	}
	if err := code.ExplainDecode(os.Stdout, l, r); err != nil {
		log.Fatal(err)
	}
}
