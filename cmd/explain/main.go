// Command explain prints the optimal Liberation encoding or decoding as a
// step-by-step operation listing in the paper's b[i][j] notation — the
// same presentation as the worked p=5 example in Sections III-B and
// III-C, but generated from the executable schedules for any (k, p).
//
// Usage:
//
//	explain -p 5                 # encoding steps for k=p=5 (paper's example)
//	explain -k 4 -p 7 -erase 1,3 # decoding steps for an erasure pattern
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/liberation"
)

func main() {
	var (
		k     = flag.Int("k", 0, "data columns (default: p)")
		p     = flag.Int("p", 5, "prime parameter")
		erase = flag.String("erase", "", "two data columns to decode, e.g. 1,3 (default: explain encoding)")
	)
	flag.Parse()
	if *k == 0 {
		*k = *p
	}
	code, err := liberation.New(*k, *p)
	if err != nil {
		log.Fatal(err)
	}
	if *erase == "" {
		code.ExplainEncode(os.Stdout)
		return
	}
	var l, r int
	if _, err := fmt.Sscanf(strings.ReplaceAll(*erase, " ", ""), "%d,%d", &l, &r); err != nil {
		log.Fatalf("bad -erase %q: want L,R", *erase)
	}
	if err := code.ExplainDecode(os.Stdout, l, r); err != nil {
		log.Fatal(err)
	}
}
