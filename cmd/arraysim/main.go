// Command arraysim runs a scripted RAID-6 array simulation: it writes a
// workload, kills disks, serves degraded reads, rebuilds, injects silent
// corruption and scrubs it away, then prints the operation statistics —
// a narrative tour of everything the coding layer provides.
//
// Usage:
//
//	arraysim [-code liberation|evenodd|rdp|rs|crs|liberation-original] [-k 8] [-p 0] [-elem 4096]
//	         [-stripes 64] [-seed 1]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/raidsim"
	"repro/internal/workload"
)

func main() {
	var (
		codeName = flag.String("code", codes.Default, "erasure code: "+strings.Join(codes.Names(), ", "))
		k        = flag.Int("k", 8, "data disks")
		p        = flag.Int("p", 0, "prime parameter (0 = smallest usable; ignored for rs)")
		elem     = flag.Int("elem", 4096, "element size in bytes")
		stripes  = flag.Int("stripes", 64, "stripes in the array")
		seed     = flag.Int64("seed", 1, "workload seed")
		layout   = flag.String("layout", "left-symmetric", "parity placement: left-symmetric, right-asymmetric, dedicated")
		wl       = flag.String("workload", "", "optional extra workload phase: sequential, random-small, zipf-small")
		wlOps    = flag.Int("workload-ops", 2000, "operations for the workload phase")
	)
	flag.Parse()

	code, err := codes.New(*codeName, *k, *p)
	if err != nil {
		log.Fatal(err)
	}
	a, err := raidsim.New(code, *elem, *stripes)
	if err != nil {
		log.Fatal(err)
	}
	switch *layout {
	case "left-symmetric":
	case "right-asymmetric":
		must(a.SetLayout(raidsim.RightAsymmetric))
	case "dedicated":
		must(a.SetLayout(raidsim.DedicatedParity))
	default:
		log.Fatalf("unknown layout %q", *layout)
	}
	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("array: %s, %d disks, %d stripes, %dB elements, %d MB capacity\n",
		code.Name(), a.NumDisks(), *stripes, *elem, a.Capacity()>>20)

	// 1. Fill with a random workload.
	data := make([]byte, a.Capacity())
	rng.Read(data)
	must(a.Write(0, data))
	fmt.Printf("wrote %d MB (%d full-stripe encodes)\n",
		len(data)>>20, a.Stats.StripeEncodes)

	// 2. Small writes.
	for i := 0; i < 100; i++ {
		patch := make([]byte, 1+rng.Intn(2**elem))
		rng.Read(patch)
		off := rng.Intn(a.Capacity() - len(patch))
		must(a.Write(off, patch))
		copy(data[off:], patch)
	}
	fmt.Printf("100 random small writes: %d element updates, %d parity elements rewritten\n",
		a.Stats.SmallWrites, a.Stats.ParityElemWrites)

	// 3. Double disk failure + degraded read.
	d1, d2 := rng.Intn(a.NumDisks()), 0
	for d2 = rng.Intn(a.NumDisks()); d2 == d1; d2 = rng.Intn(a.NumDisks()) {
	}
	must(a.FailDisk(d1))
	must(a.FailDisk(d2))
	fmt.Printf("failed disks %d and %d\n", d1, d2)
	got := make([]byte, len(data))
	must(a.Read(0, got))
	verify(got, data, "degraded read")
	fmt.Printf("degraded full read OK (%d stripe reconstructions)\n", a.Stats.DegradedReads)

	// 4. Rebuild.
	must(a.Rebuild())
	fmt.Printf("rebuilt %d stripes onto replacement disks\n", a.Stats.StripesRebuilt)
	must(a.Read(0, got))
	verify(got, data, "post-rebuild read")

	// 5. Silent corruption + scrub (localized repair needs the code's
	// single-column error correction capability).
	victim := rng.Intn(a.NumDisks())
	must(a.CorruptDisk(victim, rng.Intn(*stripes*code.W()**elem-16), 16, 0x5a))
	fmt.Printf("silently corrupted 16 bytes on disk %d\n", victim)
	results, err := a.Scrub()
	must(err)
	for _, r := range results {
		if r.Strip >= 0 {
			fmt.Printf("scrub: stripe %d repaired (disk %d, strip %d)\n", r.Stripe, r.Disk, r.Strip)
		} else {
			fmt.Printf("scrub: stripe %d corrupt (not localizable with %s)\n", r.Stripe, code.Name())
		}
	}
	must(a.Read(0, got))
	if _, localizable := code.(core.ColumnCorrector); localizable {
		verify(got, data, "post-scrub read")
	}

	// 6. Optional workload phase with throughput/write-amp reporting.
	if *wl != "" {
		var kind workload.Kind
		switch *wl {
		case "sequential":
			kind = workload.Sequential
		case "random-small":
			kind = workload.RandomSmall
		case "zipf-small":
			kind = workload.ZipfSmall
		default:
			log.Fatalf("unknown workload %q", *wl)
		}
		res, err := workload.Run(a, workload.Spec{Kind: kind, Ops: *wlOps, Seed: *seed})
		must(err)
		fmt.Printf("\nworkload %s: %d ops, %.1f MB/s, write amplification %.2f\n",
			kind, *wlOps, res.DataMBps(), res.WriteAmplification(*elem))
	}

	fmt.Printf("\ntotals: %d XOR block ops, %d copies (parity layout: %s, distribution %v)\n",
		a.Stats.Ops.XORs, a.Stats.Ops.Copies, a.Layout(), a.ParityDistribution())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func verify(got, want []byte, what string) {
	if !bytes.Equal(got, want) {
		log.Fatalf("%s returned wrong data", what)
	}
}
