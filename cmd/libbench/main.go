// Command libbench regenerates the paper's evaluation artifacts: Table I,
// the XOR-complexity figures (5-8) and the throughput figures (9-13).
//
// Usage:
//
//	libbench -all                 # everything (takes a few minutes)
//	libbench -fig 7               # one figure
//	libbench -table1              # Table I
//	libbench -fig 10 -elem 8192   # a throughput figure at 8KB elements
//	libbench -all -csv out/       # also write plotting-ready CSV files
//	libbench -all -quick          # fast smoke pass with short timings
//
// XOR-count figures are exact and deterministic; throughput figures are
// machine-dependent and reproduce the paper's relative claims (optimal >=
// original everywhere, with the decoding gap growing with k).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/benchutil"
	"repro/internal/complexity"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to regenerate: 5..13, 'update', or 'all'")
		table1  = flag.Bool("table1", false, "regenerate Table I")
		all     = flag.Bool("all", false, "regenerate every table and figure")
		quick   = flag.Bool("quick", false, "short timings / reduced sweeps (smoke test)")
		elem    = flag.Int("elem", 4096, "element size in bytes for throughput figures")
		fixedP  = flag.Int("p", 31, "fixed prime for figures 6, 8, 11, 13")
		minTime = flag.Duration("mintime", 100*time.Millisecond, "minimum time per throughput point")
		csvDir  = flag.String("csv", "", "directory to also write per-figure CSV files into")
	)
	flag.Parse()

	opt := benchutil.DefaultOptions()
	opt.MinTime = *minTime
	ksVary := rangeInts(2, 22)
	ksFixed := rangeInts(2, 23)
	ksThroughput := []int{4, 6, 8, 10, 12, 14, 16, 18, 20, 22}
	ksDecode := []int{5, 8, 11, 14, 17, 20, 23, 26, 29}
	if *quick {
		opt = benchutil.Quick()
		ksVary = []int{2, 4, 8, 12}
		ksFixed = []int{2, 8, 16, 23}
		ksThroughput = []int{4, 8, 12}
		ksDecode = []int{5, 11, 17}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	emitC := func(name string, f complexity.Figure) {
		fmt.Println(f.Render())
		writeCSV(name, f.CSV())
	}
	emitT := func(name string, f benchutil.ThroughputFigure) {
		fmt.Println(f.Render())
		writeCSV(name, f.CSV())
	}

	want := func(id string) bool {
		return *all || *fig == "all" || *fig == id
	}
	ran := false

	if *table1 || *all {
		ran = true
		fmt.Println(complexity.RenderTableI(complexity.TableI(10, 11), 10, 11))
		fmt.Println(complexity.RenderTableI(complexity.TableI(20, 23), 20, 23))
	}
	if want("5") {
		ran = true
		emitC("fig5", complexity.EncodingFigure(ksVary, 0))
	}
	if want("6") {
		ran = true
		emitC("fig6", complexity.EncodingFigure(ksFixed, *fixedP))
	}
	if want("7") {
		ran = true
		emitC("fig7", complexity.DecodingFigure(ksVary, 0))
	}
	if want("8") {
		ran = true
		emitC("fig8", complexity.DecodingFigure(ksFixed, *fixedP))
	}
	if want("update") {
		ran = true
		emitC("update", complexity.UpdateFigure(ksVary, 0))
	}
	if want("9") {
		ran = true
		for _, p := range []int{5, 7, 11} {
			emitT(fmt.Sprintf("fig9-p%d", p), benchutil.ElementSizeFigure(p, opt))
		}
	}
	sweep := *all || *fig == "all"
	if want("10") {
		ran = true
		for _, es := range elemSizes(*elem, sweep) {
			emitT(fmt.Sprintf("fig10-%dk", es/1024),
				benchutil.EncodeFigure(ksThroughput, 0, es, opt))
		}
	}
	if want("11") {
		ran = true
		for _, es := range elemSizes(*elem, sweep) {
			emitT(fmt.Sprintf("fig11-%dk", es/1024),
				benchutil.EncodeFigure(ksThroughput, *fixedP, es, opt))
		}
	}
	if want("12") {
		ran = true
		for _, es := range elemSizes(*elem, sweep) {
			emitT(fmt.Sprintf("fig12-%dk", es/1024),
				benchutil.DecodeFigure(ksDecode, 0, es, opt))
		}
	}
	if want("13") {
		ran = true
		for _, es := range elemSizes(*elem, sweep) {
			emitT(fmt.Sprintf("fig13-%dk", es/1024),
				benchutil.DecodeFigure(ksDecode, *fixedP, es, opt))
		}
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "nothing selected; use -all, -table1 or -fig N\n\n")
		flag.Usage()
		os.Exit(2)
	}
}

// elemSizes returns the element sizes to sweep: the paper reports
// throughput figures at both 4KB and 8KB, so -all runs both.
func elemSizes(flagValue int, both bool) []int {
	if !both {
		return []int{flagValue}
	}
	return []int{4096, 8192}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}
