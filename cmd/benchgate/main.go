// Command benchgate is the perf-regression gate for the core coding hot
// paths (see `make bench-gate`). It measures the gated workloads —
// Liberation encode, two-erasure decode, single-column correction — and
// compares exact XOR counts and calibrated timing against the checked-in
// baseline artifact. Any XOR-count increase fails; timing may drift up to
// the tolerance after the machines' raw XOR-kernel throughputs cancel.
//
// Usage:
//
//	benchgate [-baseline artifacts/BENCH_core.json] [-tol 0.15]
//	          [-benchtime 1s] [-out current.json] [-write] [-only substr]
//
// -write regenerates the baseline from this machine instead of comparing;
// -out additionally saves the current report (for CI artifacts); -only
// gates just the benches whose name contains the substring (see `make
// bench-correct`) — it never filters a -write. The tolerance default can
// be overridden with the BENCH_GATE_TOL environment variable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchutil"
)

func filterBenches(benches []benchutil.CoreBench, substr string) []benchutil.CoreBench {
	var kept []benchutil.CoreBench
	for _, b := range benches {
		if strings.Contains(b.Name, substr) {
			kept = append(kept, b)
		}
	}
	return kept
}

func defaultTol() float64 {
	if env := os.Getenv("BENCH_GATE_TOL"); env != "" {
		if v, err := strconv.ParseFloat(env, 64); err == nil && v > 0 {
			return v
		}
		fmt.Fprintf(os.Stderr, "benchgate: ignoring bad BENCH_GATE_TOL=%q\n", env)
	}
	return 0.15
}

func main() {
	var (
		baseline  = flag.String("baseline", "artifacts/BENCH_core.json", "baseline report to gate against")
		out       = flag.String("out", "", "also write the current report here")
		write     = flag.Bool("write", false, "write the baseline from this run instead of comparing")
		tol       = flag.Float64("tol", defaultTol(), "allowed fractional ns/op growth after calibration")
		benchtime = flag.Duration("benchtime", time.Second, "minimum measurement time per bench")
		only      = flag.String("only", "", "gate only benches whose name contains this substring")
	)
	flag.Parse()

	cur, err := benchutil.RunCoreReport(*benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("calibration: %.0f MB/s raw XOR (%s, %s)\n", cur.CalibMBPerSec, cur.GoVersion, cur.GOARCH)
	for _, b := range cur.Benches {
		fmt.Printf("%-44s %10.0f ns/op %9.1f MB/s %8d xors  %.2f xors/unit\n",
			b.Name, b.NsPerOp, b.MBPerSec, b.XORs, b.XORsPerUnit)
	}
	if *out != "" {
		if err := benchutil.WriteCoreJSON(*out, cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
	}
	if *write {
		if err := benchutil.WriteCoreJSON(*baseline, cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("baseline written: %s\n", *baseline)
		return
	}

	base, err := benchutil.LoadCoreJSON(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v (run with -write to create the baseline)\n", err)
		os.Exit(1)
	}
	if *only != "" {
		// Filter both sides so CompareCore neither gates the other benches
		// nor flags them as missing.
		base.Benches = filterBenches(base.Benches, *only)
		cur.Benches = filterBenches(cur.Benches, *only)
		if len(base.Benches) == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: -only %q matches no baseline bench\n", *only)
			os.Exit(1)
		}
	}
	violations := benchutil.CompareCore(base, cur, *tol)
	if len(violations) == 0 {
		fmt.Printf("bench-gate: PASS against %s (tol %.0f%%)\n", *baseline, *tol*100)
		return
	}
	fmt.Fprintf(os.Stderr, "bench-gate: FAIL against %s (tol %.0f%%)\n", *baseline, *tol*100)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	os.Exit(1)
}
