// Command metriclint statically checks that every metric the codebase
// emits is declared in the committed catalog (docs/METRICS.json), and
// that every catalog entry still corresponds to an emission — the two
// directions that keep dashboards, alert rules, and the label taxonomy
// honest as the code moves.
//
// The scanner is a pure go/ast pass (no type checking, no build): it
// recognizes the obs registry's emitting methods (Count, CounterWith,
// Observe, StartSpan, ...) by selector name in files that import the
// obs package, resolves metric-name arguments through string literals,
// package constants, local assignments, and literal concatenation, and
// propagates through repo-local helper functions whose name parameter
// flows into an emit call (e.g. pipeline's runPool, raidsim's
// countDisk) — so a call like EncodeAllReport(...) is charged with the
// pipeline.encode span family even though the literal lives two frames
// up.
//
// Checks:
//
//   - every emitted (name, type, label-key-set) matches a catalog entry
//     (exact name or prefix* wildcard);
//   - every catalog entry without a "dynamic" exemption matches at
//     least one emission (no stale entries);
//   - every label key, in code and catalog, is in the catalog's
//     label_keys taxonomy (bounded cardinality starts with bounded
//     keys);
//   - metric names built from expressions the scanner cannot resolve
//     are errors unless the file is listed in exempt_files (the obs
//     runtime's own plumbing).
//
// Usage:
//
//	metriclint [-root .] [-catalog docs/METRICS.json] [-write]
//
// -write regenerates the catalog's metrics list from the scan, keeping
// dynamic-exempt entries and still-live prefix wildcards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

const obsImportPath = "repro/internal/obs"

// metricNameRe bounds what a resolved name must look like to count as a
// metric: lowercase dotted words. Anything else (stray short strings
// that happen to reach a method named like an emitter) is ignored.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

// Entry is one catalog row: an exact metric name or a prefix wildcard,
// its type (counter, gauge, histogram, or span — span covers the whole
// <name>.seconds/.calls/... family), and its label key set. Dynamic
// holds a human reason when the scanner cannot see the emission (e.g.
// the obs runtime emits it internally) — such entries are exempt from
// the staleness check.
type Entry struct {
	Name    string   `json:"name,omitempty"`
	Prefix  string   `json:"prefix,omitempty"`
	Type    string   `json:"type"`
	Labels  []string `json:"labels,omitempty"`
	Dynamic string   `json:"dynamic,omitempty"`
}

// Catalog is the committed metric surface: the label-key taxonomy, the
// files whose unresolvable names are tolerated, and the metrics list.
type Catalog struct {
	LabelKeys   []string `json:"label_keys"`
	ExemptFiles []string `json:"exempt_files,omitempty"`
	Metrics     []Entry  `json:"metrics"`
}

// emission is one statically-discovered metric emission.
type emission struct {
	name   string
	kind   string // counter | gauge | histogram | span
	labels []string
	pos    string
}

func (e emission) key() string {
	return e.kind + " " + e.name + "{" + strings.Join(e.labels, ",") + "}"
}

// dynSite is an emit call whose metric name the scanner could not
// resolve to a literal. prefix holds the longest resolvable leading
// literal (e.g. "monitor.transition." from "monitor.transition."+to),
// which a dynamic-exempt prefix entry in the catalog can cover.
type dynSite struct {
	file   string
	pos    string
	expr   string
	prefix string
	kind   string
}

// shape describes how a function emits: the argument index its metric
// name arrives at, literal prefix/suffix wrapped around it, the metric
// type, and label keys attached inside the body.
type shape struct {
	argIdx int
	prefix string
	suffix string
	kind   string
	labels string // comma-joined sorted keys (comparable)
}

// builtins maps the obs registry's emitting method names to their
// shapes. StartSpan/StartOp root a span family.
var builtins = map[string]shape{
	"Count":         {0, "", "", "counter", ""},
	"Counter":       {0, "", "", "counter", ""},
	"CountWith":     {0, "", "", "counter", ""},
	"CounterWith":   {0, "", "", "counter", ""},
	"Gauge":         {0, "", "", "gauge", ""},
	"SetGauge":      {0, "", "", "gauge", ""},
	"GaugeWith":     {0, "", "", "gauge", ""},
	"SetGaugeWith":  {0, "", "", "gauge", ""},
	"AddGaugeWith":  {0, "", "", "gauge", ""},
	"Histogram":     {0, "", "", "histogram", ""},
	"Observe":       {0, "", "", "histogram", ""},
	"HistogramWith": {0, "", "", "histogram", ""},
	"ObserveWith":   {0, "", "", "histogram", ""},
	"StartSpan":     {1, "", "", "span", ""},
	"StartOp":       {3, "", "", "span", ""},
}

// scanner holds one repository scan.
type scanner struct {
	fset    *token.FileSet
	files   map[string]*ast.File         // rel path -> parsed file
	hasObs  map[string]bool              // rel path -> imports obs (or is obs)
	consts  map[string]map[string]string // pkg dir -> const name -> value
	helpers map[string][]shape           // bare func name -> emit shapes
}

// scan parses every non-test .go file under root and runs the helper
// fixpoint, returning the discovered emissions and dynamic sites.
func scan(root string) ([]emission, []dynSite, error) {
	s := &scanner{
		fset:    token.NewFileSet(),
		files:   map[string]*ast.File{},
		hasObs:  map[string]bool{},
		consts:  map[string]map[string]string{},
		helpers: map[string][]shape{},
	}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "vendor" || name == "testdata" || name == "artifacts" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(s.fset, path, nil, 0)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		s.files[rel] = f
		s.hasObs[rel] = importsObs(f) || strings.Contains(rel, "internal/obs/")
		dir := filepath.ToSlash(filepath.Dir(rel))
		if s.consts[dir] == nil {
			s.consts[dir] = map[string]string{}
		}
		collectConsts(f, s.consts[dir])
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Fixpoint: each pass may discover helper functions whose callers
	// only resolve on the next pass (runPool -> forEach -> the API).
	var emissions map[string]emission
	var dynamic []dynSite
	for {
		before := s.helperCount()
		emissions = map[string]emission{}
		dynamic = nil
		for rel, f := range s.files {
			s.scanFile(rel, f, emissions, &dynamic)
		}
		if s.helperCount() == before {
			break
		}
	}

	out := make([]emission, 0, len(emissions))
	for _, e := range emissions {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	sort.Slice(dynamic, func(i, j int) bool { return dynamic[i].pos < dynamic[j].pos })
	return out, dynamic, nil
}

func (s *scanner) helperCount() int {
	n := 0
	for _, hs := range s.helpers {
		n += len(hs)
	}
	return n
}

func importsObs(f *ast.File) bool {
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == obsImportPath {
			return true
		}
	}
	return false
}

// collectConsts records package-level `const X = "literal"` declarations.
func collectConsts(f *ast.File, into map[string]string) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != len(vs.Values) {
				continue
			}
			for i, id := range vs.Names {
				if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if v, err := strconv.Unquote(lit.Value); err == nil {
						into[id.Name] = v
					}
				}
			}
		}
	}
}

// fnScope is the per-function resolution context: string parameters by
// argument position, local string literals, and local label variables.
type fnScope struct {
	params map[string]int    // string param name -> arg index
	strs   map[string]string // local var -> literal value
	labels map[string]string // local var -> label key (from obs.L/Li)
	consts map[string]string // package consts
}

func newScope(fd *ast.FuncDecl, consts map[string]string) *fnScope {
	sc := &fnScope{params: map[string]int{}, strs: map[string]string{},
		labels: map[string]string{}, consts: consts}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			isString := false
			if id, ok := field.Type.(*ast.Ident); ok && id.Name == "string" {
				isString = true
			}
			for _, name := range field.Names {
				if isString {
					sc.params[name.Name] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	// Local assignments: x := "lit", l := obs.L("key", ...).
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if lit, ok := as.Rhs[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if v, err := strconv.Unquote(lit.Value); err == nil {
					sc.strs[id.Name] = v
				}
				continue
			}
			if key, ok := labelKeyOf(as.Rhs[i], sc); ok {
				sc.labels[id.Name] = key
			}
		}
		return true
	})
	return sc
}

// labelKeyOf recognizes obs.L("key", v) / obs.Li("key", v) expressions.
func labelKeyOf(e ast.Expr, sc *fnScope) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return "", false
	}
	name := calleeName(call)
	if name != "L" && name != "Li" {
		return "", false
	}
	return resolveString(call.Args[0], sc)
}

// calleeName returns the bare name of a call's target (last selector
// component), or "".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// stdlibRecv reports calls like strings.Count(...) whose receiver is a
// well-known stdlib package, never a metrics registry.
func stdlibRecv(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch id.Name {
	case "strings", "bytes", "sort", "fmt", "strconv", "utf8", "unicode",
		"filepath", "path", "time", "math", "os", "json", "flag":
		return true
	}
	return false
}

// resolveString resolves an expression to a compile-time string through
// literals, local assignments, package consts, and concatenation.
func resolveString(e ast.Expr, sc *fnScope) (string, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		return s, err == nil
	case *ast.Ident:
		if s, ok := sc.strs[v.Name]; ok {
			return s, true
		}
		if s, ok := sc.consts[v.Name]; ok {
			return s, true
		}
		return "", false
	case *ast.ParenExpr:
		return resolveString(v.X, sc)
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		l, ok1 := resolveString(v.X, sc)
		r, ok2 := resolveString(v.Y, sc)
		if ok1 && ok2 {
			return l + r, true
		}
		return "", false
	}
	return "", false
}

// paramConcat matches the helper-forwarding forms: a string parameter
// wrapped in resolvable literal concatenation on either side — name,
// name+".suffix", "prefix."+name, "prefix."+name+".suffix". Returns
// the parameter's argument index and the literal wrapping.
func paramConcat(e ast.Expr, sc *fnScope) (argIdx int, prefix, suffix string, ok bool) {
	switch v := e.(type) {
	case *ast.Ident:
		idx, isParam := sc.params[v.Name]
		return idx, "", "", isParam
	case *ast.ParenExpr:
		return paramConcat(v.X, sc)
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return 0, "", "", false
		}
		if l, lok := resolveString(v.X, sc); lok {
			if idx, p, s, pok := paramConcat(v.Y, sc); pok {
				return idx, l + p, s, true
			}
			return 0, "", "", false
		}
		if idx, p, s, pok := paramConcat(v.X, sc); pok {
			if r, rok := resolveString(v.Y, sc); rok {
				return idx, p, s + r, true
			}
		}
	}
	return 0, "", "", false
}

// looksStringy reports expressions that are almost certainly building a
// metric name the scanner cannot resolve: concatenations involving a
// string literal, or identifiers declared as strings in scope.
func looksStringy(e ast.Expr, sc *fnScope) bool {
	switch v := e.(type) {
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return false
		}
		_, lok := resolveString(v.X, sc)
		_, rok := resolveString(v.Y, sc)
		return lok || rok || looksStringy(v.X, sc) || looksStringy(v.Y, sc)
	case *ast.Ident:
		_, isParam := sc.params[v.Name]
		_, isLocal := sc.strs[v.Name]
		return isParam || isLocal
	case *ast.ParenExpr:
		return looksStringy(v.X, sc)
	}
	return false
}

// literalPrefix returns the longest resolvable leading literal of a
// concatenation ("monitor.transition." from "monitor.transition."+to).
func literalPrefix(e ast.Expr, sc *fnScope) string {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return literalPrefix(v.X, sc)
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return ""
		}
		if l, ok := resolveString(v.X, sc); ok {
			return l + literalPrefix(v.Y, sc)
		}
		return literalPrefix(v.X, sc)
	}
	return ""
}

// callLabels extracts label keys attached at a call site: inline
// obs.L/Li arguments and local label variables.
func callLabels(call *ast.CallExpr, sc *fnScope) []string {
	var keys []string
	for _, a := range call.Args {
		if key, ok := labelKeyOf(a, sc); ok {
			keys = append(keys, key)
			continue
		}
		if id, ok := a.(*ast.Ident); ok {
			if key, ok := sc.labels[id.Name]; ok {
				keys = append(keys, key)
			}
		}
	}
	return keys
}

func joinKeys(keys []string) string {
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func splitKeys(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func mergeKeys(a string, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, k := range append(splitKeys(a), b...) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// scanFile walks one file's functions, recording emissions, dynamic
// sites, and newly-discovered helper shapes.
func (s *scanner) scanFile(rel string, f *ast.File, emissions map[string]emission, dynamic *[]dynSite) {
	dir := filepath.ToSlash(filepath.Dir(rel))
	consts := s.consts[dir]
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sc := newScope(fd, consts)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			var shapes []shape
			if b, isBuiltin := builtins[name]; isBuiltin {
				if s.hasObs[rel] && !stdlibRecv(call) {
					shapes = []shape{b}
				}
			} else if hs, isHelper := s.helpers[name]; isHelper {
				shapes = hs
			}
			for _, sh := range shapes {
				if sh.argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[sh.argIdx]
				if val, ok := resolveString(arg, sc); ok {
					full := sh.prefix + val + sh.suffix
					if !metricNameRe.MatchString(full) {
						continue
					}
					e := emission{
						name:   full,
						kind:   sh.kind,
						labels: mergeKeys(sh.labels, callLabels(call, sc)),
						pos:    s.fset.Position(call.Pos()).String(),
					}
					if _, dup := emissions[e.key()]; !dup {
						emissions[e.key()] = e
					}
					continue
				}
				if idx, pre, suf, ok := paramConcat(arg, sc); ok {
					ns := shape{argIdx: idx, prefix: sh.prefix + pre, suffix: suf + sh.suffix,
						kind:   sh.kind,
						labels: joinKeys(mergeKeys(sh.labels, callLabels(call, sc)))}
					s.addHelper(fd.Name.Name, ns)
					continue
				}
				if looksStringy(arg, sc) {
					*dynamic = append(*dynamic, dynSite{
						file:   rel,
						pos:    s.fset.Position(call.Pos()).String(),
						expr:   types_ExprString(arg),
						prefix: sh.prefix + literalPrefix(arg, sc),
						kind:   sh.kind,
					})
				}
			}
			return true
		})
	}
}

// types_ExprString renders an expression compactly for diagnostics.
func types_ExprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.BasicLit:
		return v.Value
	case *ast.BinaryExpr:
		return types_ExprString(v.X) + "+" + types_ExprString(v.Y)
	case *ast.SelectorExpr:
		return types_ExprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return types_ExprString(v.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + types_ExprString(v.X) + ")"
	}
	return "<expr>"
}

// addHelper registers fn as an emitter with the given shape, ignoring
// names that are already builtin emitters and exact duplicates.
func (s *scanner) addHelper(fn string, sh shape) {
	if _, isBuiltin := builtins[fn]; isBuiltin {
		return
	}
	for _, have := range s.helpers[fn] {
		if have == sh {
			return
		}
	}
	s.helpers[fn] = append(s.helpers[fn], sh)
}

// matches reports whether catalog entry c covers emission e.
func matches(c Entry, e emission) bool {
	if c.Type != e.kind {
		return false
	}
	switch {
	case c.Name != "":
		if c.Name != e.name {
			return false
		}
	case c.Prefix != "":
		if !strings.HasPrefix(e.name, c.Prefix) {
			return false
		}
	default:
		return false
	}
	// A prefix wildcard with no declared labels covers any label set;
	// exact entries (and labeled wildcards) must match exactly.
	if c.Prefix != "" && c.Labels == nil {
		return true
	}
	return joinKeys(append([]string(nil), c.Labels...)) == joinKeys(append([]string(nil), e.labels...))
}

// lint runs every check, returning one message per violation.
func lint(emissions []emission, dynamic []dynSite, cat Catalog) []string {
	var errs []string
	allowed := map[string]bool{}
	for _, k := range cat.LabelKeys {
		allowed[k] = true
	}
	exempt := map[string]bool{}
	for _, f := range cat.ExemptFiles {
		exempt[f] = true
	}

	dynCovered := func(d dynSite) bool {
		if exempt[d.file] {
			return true
		}
		for _, c := range cat.Metrics {
			if c.Dynamic != "" && c.Prefix != "" && c.Type == d.kind &&
				strings.HasPrefix(d.prefix, c.Prefix) {
				return true
			}
		}
		return false
	}
	for _, d := range dynamic {
		if !dynCovered(d) {
			errs = append(errs, fmt.Sprintf(
				"%s: metric name %q is not statically resolvable (declare a dynamic prefix entry in the catalog, or exempt the file)",
				d.pos, d.expr))
		}
	}
	for _, e := range emissions {
		for _, k := range e.labels {
			if !allowed[k] {
				errs = append(errs, fmt.Sprintf(
					"%s: label key %q on %s is outside the taxonomy %v",
					e.pos, k, e.name, cat.LabelKeys))
			}
		}
		found := false
		for _, c := range cat.Metrics {
			if matches(c, e) {
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, fmt.Sprintf(
				"%s: %s %s{%s} is emitted but not in the catalog (run metriclint -write)",
				e.pos, e.kind, e.name, strings.Join(e.labels, ",")))
		}
	}
	for _, c := range cat.Metrics {
		if c.Dynamic != "" {
			continue
		}
		for _, k := range c.Labels {
			if !allowed[k] {
				errs = append(errs, fmt.Sprintf(
					"catalog: entry %s%s declares label key %q outside the taxonomy %v",
					c.Name, c.Prefix, k, cat.LabelKeys))
			}
		}
		live := false
		for _, e := range emissions {
			if matches(c, e) {
				live = true
				break
			}
		}
		if !live {
			name := c.Name
			if name == "" {
				name = c.Prefix + "*"
			}
			errs = append(errs, fmt.Sprintf(
				"catalog: %s %s{%s} has no emission in the code (stale entry — delete it or mark it dynamic)",
				c.Type, name, strings.Join(c.Labels, ",")))
		}
	}
	return errs
}

// regenerate rebuilds the metrics list from a scan: dynamic entries and
// still-live wildcards survive, everything else is regenerated exactly.
func regenerate(emissions []emission, cat Catalog) Catalog {
	var kept []Entry
	for _, c := range cat.Metrics {
		if c.Dynamic != "" {
			kept = append(kept, c)
			continue
		}
		if c.Prefix != "" {
			for _, e := range emissions {
				if matches(c, e) {
					kept = append(kept, c)
					break
				}
			}
		}
	}
	covered := func(e emission) bool {
		for _, c := range kept {
			if matches(c, e) {
				return true
			}
		}
		return false
	}
	seen := map[string]bool{}
	for _, e := range emissions {
		if covered(e) || seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		kept = append(kept, Entry{Name: e.name, Type: e.kind, Labels: e.labels})
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Name+kept[i].Prefix, kept[j].Name+kept[j].Prefix
		if a != b {
			return a < b
		}
		return strings.Join(kept[i].Labels, ",") < strings.Join(kept[j].Labels, ",")
	})
	cat.Metrics = kept
	return cat
}

func main() {
	root := flag.String("root", ".", "repository root to scan")
	catalogPath := flag.String("catalog", "docs/METRICS.json", "metric catalog (relative to -root unless absolute)")
	write := flag.Bool("write", false, "regenerate the catalog's metrics list from the scan")
	flag.Parse()

	path := *catalogPath
	if !filepath.IsAbs(path) {
		path = filepath.Join(*root, path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(2)
	}
	var cat Catalog
	if err := json.Unmarshal(raw, &cat); err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %s: %v\n", path, err)
		os.Exit(2)
	}

	emissions, dynamic, err := scan(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(2)
	}

	if *write {
		out := regenerate(emissions, cat)
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("metriclint: wrote %d entries to %s\n", len(out.Metrics), path)
		// Fall through to lint with the regenerated catalog: dynamic
		// sites and taxonomy violations are not fixable by -write.
		cat = out
	}

	errs := lint(emissions, dynamic, cat)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "metriclint: %s\n", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d emissions match %d catalog entries\n",
		len(emissions), len(cat.Metrics))
}
