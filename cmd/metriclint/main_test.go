package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a fake repo for the scanner.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const obsHeader = `package x

import "repro/internal/obs"

var _ = obs.L
`

func findEmission(es []emission, name, kind string) (emission, bool) {
	for _, e := range es {
		if e.name == name && e.kind == kind {
			return e, true
		}
	}
	return emission{}, false
}

// TestScanResolution covers the name-resolution ladder: literals,
// package consts, locals, concatenation, inline and variable labels.
func TestScanResolution(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": obsHeader + `
const totalName = "svc.ops.total"

func emit(reg *obs.Registry, node int) {
	reg.Count("svc.reads.total", 1)
	reg.Count(totalName, 1)
	local := "svc.writes.total"
	reg.Count(local, 1)
	reg.Observe("svc.lat"+".seconds", nil, 0.1)
	reg.CountWith("svc.by_node.total", 1, obs.Li("node", node))
	l := obs.L("disk", "3")
	reg.CounterWith("svc.by_disk.total", l)
	reg.SetGauge("svc.depth", 1)
}
`,
	})
	es, dyn, err := scan(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != 0 {
		t.Fatalf("dynamic sites %+v, want none", dyn)
	}
	for _, want := range []struct{ name, kind, labels string }{
		{"svc.reads.total", "counter", ""},
		{"svc.ops.total", "counter", ""},
		{"svc.writes.total", "counter", ""},
		{"svc.lat.seconds", "histogram", ""},
		{"svc.by_node.total", "counter", "node"},
		{"svc.by_disk.total", "counter", "disk"},
		{"svc.depth", "gauge", ""},
	} {
		e, ok := findEmission(es, want.name, want.kind)
		if !ok {
			t.Errorf("missing %s %s in %+v", want.kind, want.name, es)
			continue
		}
		if got := strings.Join(e.labels, ","); got != want.labels {
			t.Errorf("%s labels = %q, want %q", want.name, got, want.labels)
		}
	}
}

// TestScanHelperPropagation: a name parameter flowing through two
// helper frames (with a suffix concat and a body label) still resolves
// at the outermost literal call, and StartSpan roots a span family.
func TestScanHelperPropagation(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/p.go": obsHeader + `
func inner(reg *obs.Registry, name string, w int) {
	reg.Count(name+".cancelled", 1)
	reg.ObserveWith(name+".stripes", nil, 1, obs.Li("worker", w))
	obs.StartSpan(reg, name)
}

func outer(reg *obs.Registry, name string) {
	inner(reg, name, 0)
}

func API(reg *obs.Registry) {
	outer(reg, "pool.encode")
}
`,
	})
	es, dyn, err := scan(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != 0 {
		t.Fatalf("dynamic sites %+v, want none", dyn)
	}
	if _, ok := findEmission(es, "pool.encode.cancelled", "counter"); !ok {
		t.Errorf("missing propagated counter pool.encode.cancelled: %+v", es)
	}
	if e, ok := findEmission(es, "pool.encode.stripes", "histogram"); !ok || strings.Join(e.labels, ",") != "worker" {
		t.Errorf("propagated histogram = %+v, %v; want worker label", e, ok)
	}
	if _, ok := findEmission(es, "pool.encode", "span"); !ok {
		t.Errorf("missing span family pool.encode: %+v", es)
	}
}

// TestScanGuards: test files are skipped, stdlib selector collisions
// (strings.Count) are not emissions, files without the obs import are
// ignored for builtin calls, and unresolvable names become dynamic
// sites carrying their literal prefix.
func TestScanGuards(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a_test.go": obsHeader + `
func emit(reg *obs.Registry) { reg.Count("test.only.total", 1) }
`,
		"a/noobs.go": `package x

type fake struct{}

func (fake) Count(string, int) {}

func f(r fake) { r.Count("no.obs.import", 1) }
`,
		"a/std.go": `package x

import (
	"strings"

	"repro/internal/obs"
)

func g(reg *obs.Registry, s string) int {
	reg.Count("real.metric.total", 1)
	return strings.Count(s, "a.b")
}
`,
		"a/dyn.go": obsHeader + `
func h(reg *obs.Registry, state string) {
	reg.Count("svc.transition."+state, 1)
}

func caller(reg *obs.Registry) { h(reg, "firing") }
`,
	})
	es, dyn, err := scan(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"test.only.total", "no.obs.import", "a.b"} {
		for _, kind := range []string{"counter", "gauge", "histogram"} {
			if _, ok := findEmission(es, banned, kind); ok {
				t.Errorf("%s leaked into emissions", banned)
			}
		}
	}
	// h's name argument is a non-name parameter concat: the helper path
	// resolves caller's literal... but "svc.transition.firing" comes via
	// propagation (state is a string param), so it's an emission, not a
	// dynamic site.
	if _, ok := findEmission(es, "svc.transition.firing", "counter"); !ok {
		t.Errorf("missing propagated svc.transition.firing: %+v", es)
	}
	_ = dyn
}

// TestScanDynamicSite: a name concatenated from a field (no param, no
// literal resolution) is reported with its literal prefix and kind.
func TestScanDynamicSite(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": obsHeader + `
type s struct{ kind fmtStringer }

type fmtStringer interface{ String() string }

func (v s) emit(reg *obs.Registry) {
	reg.Count("svc.injected."+v.kind.String(), 1)
}
`,
	})
	_, dyn, err := scan(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != 1 {
		t.Fatalf("dynamic sites = %+v, want exactly 1", dyn)
	}
	if dyn[0].prefix != "svc.injected." || dyn[0].kind != "counter" {
		t.Errorf("site = %+v, want prefix svc.injected. kind counter", dyn[0])
	}
}

func testCatalog() Catalog {
	return Catalog{
		LabelKeys: []string{"node", "op"},
		Metrics: []Entry{
			{Name: "svc.reads.total", Type: "counter"},
			{Name: "svc.by_node.total", Type: "counter", Labels: []string{"node"}},
			{Prefix: "go.", Type: "gauge"},
			{Name: "lib.internal.total", Type: "counter", Dynamic: "emitted by the runtime"},
			{Prefix: "svc.injected.", Type: "counter", Dynamic: "suffix is the fault kind"},
		},
	}
}

// TestLintDirections: both directions of the catalog check, the label
// taxonomy, wildcard matching, and dynamic-site coverage.
func TestLintDirections(t *testing.T) {
	em := func(name, kind string, labels ...string) emission {
		return emission{name: name, kind: kind, labels: labels, pos: name + ":1"}
	}
	cat := testCatalog()

	// Clean: every emission cataloged, every non-dynamic entry live.
	clean := []emission{
		em("svc.reads.total", "counter"),
		em("svc.by_node.total", "counter", "node"),
		em("go.heap.bytes", "gauge"),
	}
	if errs := lint(clean, nil, cat); len(errs) != 0 {
		t.Fatalf("clean lint errors: %v", errs)
	}

	// Uncataloged emission.
	errs := lint(append(clean, em("svc.rogue.total", "counter")), nil, cat)
	if len(errs) != 1 || !strings.Contains(errs[0], "svc.rogue.total") {
		t.Errorf("rogue emission errors = %v", errs)
	}

	// Label-set mismatch is an uncataloged emission too.
	errs = lint(append(clean, em("svc.reads.total", "counter", "op")), nil, cat)
	if len(errs) != 1 || !strings.Contains(errs[0], "svc.reads.total{op}") {
		t.Errorf("label mismatch errors = %v", errs)
	}

	// Stale entry: drop the go.* emission, the wildcard goes stale.
	errs = lint(clean[:2], nil, cat)
	if len(errs) != 1 || !strings.Contains(errs[0], "go.*") || !strings.Contains(errs[0], "stale") {
		t.Errorf("stale entry errors = %v", errs)
	}

	// Taxonomy: a label key outside label_keys fails even if cataloged.
	badCat := testCatalog()
	badCat.Metrics = append(badCat.Metrics, Entry{Name: "svc.hot.total", Type: "counter", Labels: []string{"user"}})
	errs = lint(append(clean, em("svc.hot.total", "counter", "user")), nil, badCat)
	var taxonomy int
	for _, e := range errs {
		if strings.Contains(e, `"user"`) {
			taxonomy++
		}
	}
	if taxonomy != 2 { // once for the emission, once for the entry
		t.Errorf("taxonomy errors = %v, want 2 mentioning user", errs)
	}

	// Dynamic sites: covered by the dynamic prefix entry vs not.
	covered := dynSite{file: "a/a.go", pos: "a/a.go:5", expr: `"svc.injected."+k`, prefix: "svc.injected.", kind: "counter"}
	if errs := lint(clean, []dynSite{covered}, cat); len(errs) != 0 {
		t.Errorf("covered dynamic site errors = %v", errs)
	}
	rogue := dynSite{file: "a/b.go", pos: "a/b.go:9", expr: "prefix+x", prefix: "other.", kind: "counter"}
	if errs := lint(clean, []dynSite{rogue}, cat); len(errs) != 1 {
		t.Errorf("uncovered dynamic site errors = %v", errs)
	}
	// Exempt file: the same site passes when its file is exempt.
	exCat := testCatalog()
	exCat.ExemptFiles = []string{"a/b.go"}
	if errs := lint(clean, []dynSite{rogue}, exCat); len(errs) != 0 {
		t.Errorf("exempt-file dynamic site errors = %v", errs)
	}
}

// TestRegenerate: -write keeps dynamic entries and live wildcards,
// regenerates exact entries, and drops stale ones; the result lints
// clean against the same emissions.
func TestRegenerate(t *testing.T) {
	cat := testCatalog()
	cat.Metrics = append(cat.Metrics, Entry{Name: "svc.stale.total", Type: "counter"})
	ems := []emission{
		{name: "svc.reads.total", kind: "counter", pos: "p:1"},
		{name: "svc.new.total", kind: "counter", labels: []string{"op"}, pos: "p:2"},
		{name: "go.heap.bytes", kind: "gauge", pos: "p:3"},
	}
	out := regenerate(ems, cat)
	if errs := lint(ems, nil, out); len(errs) != 0 {
		t.Fatalf("regenerated catalog lints dirty: %v", errs)
	}
	var names []string
	for _, m := range out.Metrics {
		names = append(names, m.Name+m.Prefix)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"svc.new.total", "go.", "lib.internal.total", "svc.injected."} {
		if !strings.Contains(joined, want) {
			t.Errorf("regenerated catalog missing %s: %v", want, names)
		}
	}
	if strings.Contains(joined, "svc.stale.total") {
		t.Errorf("regenerated catalog kept stale entry: %v", names)
	}
	for _, m := range out.Metrics {
		if m.Name == "go.heap.bytes" {
			t.Errorf("exact entry emitted for wildcard-covered go.heap.bytes")
		}
	}
}

// TestRealCatalogIsClean is the self-test the Makefile target relies
// on: the committed catalog must match the repository scan exactly.
func TestRealCatalogIsClean(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "docs/METRICS.json")); err != nil {
		t.Skip("repo catalog not found")
	}
	raw, err := os.ReadFile(filepath.Join(root, "docs/METRICS.json"))
	if err != nil {
		t.Fatal(err)
	}
	var cat Catalog
	if err := json.Unmarshal(raw, &cat); err != nil {
		t.Fatal(err)
	}
	es, dyn, err := scan(root)
	if err != nil {
		t.Fatal(err)
	}
	if errs := lint(es, dyn, cat); len(errs) != 0 {
		t.Errorf("committed catalog out of sync:\n%s", strings.Join(errs, "\n"))
	}
	if len(es) == 0 {
		t.Error("repo scan found no emissions")
	}
}
