// Package codetest is a conformance battery for core.Code
// implementations: any erasure code in this repository (and any future
// one) must encode deterministically, behave linearly over GF(2), map
// zero data to zero parity, survive every erasure pattern of up to M
// strips, fully overwrite whatever garbage sits in erased strips, and —
// when it supports small writes — keep parity consistent under random
// updates. Each code package runs this battery from a one-line test.
package codetest

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/xorblk"
)

// Run executes the full conformance battery against the code.
func Run(t *testing.T, code core.Code) {
	t.Helper()
	t.Run("deterministic", func(t *testing.T) { deterministic(t, code) })
	t.Run("linear", func(t *testing.T) { linear(t, code) })
	t.Run("zero", func(t *testing.T) { zero(t, code) })
	t.Run("erasures", func(t *testing.T) { erasures(t, code) })
	t.Run("garbage-tolerant", func(t *testing.T) { garbage(t, code) })
	t.Run("rejects-overload", func(t *testing.T) { overload(t, code) })
	if u, ok := code.(core.Updater); ok {
		t.Run("updates", func(t *testing.T) { updates(t, code, u) })
	}
}

func freshStripe(code core.Code, seed int64) *core.Stripe {
	s := core.NewStripeFor(code, 16)
	s.FillRandom(rand.New(rand.NewSource(seed)))
	return s
}

func deterministic(t *testing.T, code core.Code) {
	a := freshStripe(code, 1)
	b := a.Clone()
	if err := code.Encode(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := code.Encode(b, nil); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("two encodings of identical data differ")
	}
	// Re-encoding an already encoded stripe must be idempotent.
	c := a.Clone()
	if err := code.Encode(c, nil); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(c) {
		t.Error("re-encoding changed the parities")
	}
}

func linear(t *testing.T, code core.Code) {
	a := freshStripe(code, 2)
	b := freshStripe(code, 3)
	sum := core.NewStripeFor(code, 16)
	for col := 0; col < code.K(); col++ {
		xorblk.Xor(sum.Strips[col], a.Strips[col], b.Strips[col])
	}
	for _, s := range []*core.Stripe{a, b, sum} {
		if err := code.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	for col := code.K(); col < code.K()+code.M(); col++ {
		want := make([]byte, len(sum.Strips[col]))
		xorblk.Xor(want, a.Strips[col], b.Strips[col])
		if string(want) != string(sum.Strips[col]) {
			t.Errorf("parity strip %d is not linear", col)
		}
	}
}

func zero(t *testing.T, code core.Code) {
	s := core.NewStripeFor(code, 16)
	for i := 0; i < code.M(); i++ { // pre-existing garbage in every parity
		rand.New(rand.NewSource(4 + int64(i))).Read(s.Strips[code.K()+i])
	}
	if err := code.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < code.M(); i++ {
		if !xorblk.IsZero(s.Strips[code.K()+i]) {
			t.Errorf("zero data produced nonzero parity strip %d", code.K()+i)
		}
	}
}

func erasures(t *testing.T, code core.Code) {
	orig := freshStripe(code, 6)
	if err := code.Encode(orig, nil); err != nil {
		t.Fatal(err)
	}
	// Every erasure pattern of size 1..M — the complete set a code with M
	// parities must survive (singles and pairs for RAID-6, plus every
	// triple for an m=3 family, and so on).
	for _, erased := range core.ErasureSubsets(code.K()+code.M(), code.M()) {
		s := orig.Clone()
		for _, e := range erased {
			s.ZeroStrip(e)
		}
		if err := code.Decode(s, erased, nil); err != nil {
			t.Fatalf("erased %v: %v", erased, err)
		}
		if !s.Equal(orig) {
			t.Errorf("erased %v: stripe not restored", erased)
		}
	}
}

func garbage(t *testing.T, code core.Code) {
	// Erased strips may contain arbitrary bytes, not just zeros.
	orig := freshStripe(code, 7)
	if err := code.Encode(orig, nil); err != nil {
		t.Fatal(err)
	}
	s := orig.Clone()
	erased := []int{0}
	if code.M() >= 2 { // a data strip plus the last parity, budget permitting
		erased = append(erased, code.K()+code.M()-1)
	}
	for i, e := range erased {
		rand.New(rand.NewSource(8 + int64(i))).Read(s.Strips[e])
	}
	if err := code.Decode(s, erased, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(orig) {
		t.Error("decode assumed zeroed erasure buffers")
	}
}

func overload(t *testing.T, code core.Code) {
	s := freshStripe(code, 10)
	tooMany := make([]int, code.M()+1)
	for i := range tooMany {
		tooMany[i] = i
	}
	if err := code.Decode(s, tooMany, nil); err == nil {
		t.Errorf("%d erasures accepted (code tolerates %d)", len(tooMany), code.M())
	}
	if err := code.Decode(s, []int{-1}, nil); err == nil {
		t.Error("negative strip index accepted")
	}
	if err := code.Decode(s, []int{code.K() + code.M()}, nil); err == nil {
		t.Error("out-of-range strip index accepted")
	}
}

func updates(t *testing.T, code core.Code, u core.Updater) {
	s := freshStripe(code, 11)
	if err := code.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		col := rng.Intn(code.K())
		row := rng.Intn(code.W())
		old := append([]byte(nil), s.Elem(col, row)...)
		rng.Read(s.Elem(col, row))
		if _, err := u.Update(s, col, row, old, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := s.Clone()
	if err := code.Encode(want, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(want) {
		t.Error("parities inconsistent after a run of small writes")
	}
}
