package pipeline

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// shardAlign is the boundary shard splits are rounded to: a cache line,
// so no two workers ever write the same line (false sharing) and every
// shard's destination stays word-aligned for the xorblk kernels.
const shardAlign = 64

// minShardBytes is the smallest element range worth a goroutine; below
// roughly a page of per-element work the fork/join overhead beats the
// parallelism.
const minShardBytes = 4096

// EncodeSharded encodes one stripe by splitting its element byte-range
// across workers — intra-stripe parallelism, the complement of
// EncodeAll's cross-stripe fan-out. Every element operation of an XOR
// array code acts byte-wise, so bytes [lo, hi) of every element form an
// independent sub-problem; each worker runs the code's full schedule on
// an ElemRange view, and one large request scales across cores instead
// of serializing on a single schedule run.
//
// The code must implement core.ElemwiseEncoder (liberation, the
// bit-matrix originals, rdp, evenodd); strip-granular codes and stripes
// too small to split fall back to a plain single-threaded Encode, so the
// call is always safe. Per-shard op counts are summed into ops: the
// logical schedule is unchanged, but each of its element operations is
// executed once per shard, so a w-way split reports w times the element
// ops of a plain encode over elements 1/w the size — the same bytes
// touched, at shard granularity. Callers gating exact XOR counts (the
// bench gate) measure the unsharded path.
func EncodeSharded(code core.Code, s *core.Stripe, ops *core.Ops, cfg Config) (Report, error) {
	n := cfg.workers()
	if lim := s.ElemSize / minShardBytes; n > lim {
		n = lim
	}
	if _, ok := code.(core.ElemwiseEncoder); !ok || n < 2 {
		start := time.Now()
		err := code.Encode(s, ops)
		rep := Report{Workers: 1, Stripes: 1, PerWorker: []int{1}, Elapsed: time.Since(start)}
		return rep, err
	}

	// Cache-line-aligned boundaries; the last shard absorbs the tail.
	chunk := (s.ElemSize/n + shardAlign - 1) / shardAlign * shardAlign
	var bounds []int
	for lo := 0; lo < s.ElemSize; lo += chunk {
		bounds = append(bounds, lo)
	}
	n = len(bounds)

	start := time.Now()
	sp := obs.StartSpan(cfg.Registry, "pipeline.encode_sharded")
	rep := Report{Workers: n, PerWorker: make([]int, n)}
	partial := make([]core.Ops, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := bounds[w]
			hi := s.ElemSize
			if w+1 < n {
				hi = bounds[w+1]
			}
			errs[w] = code.Encode(s.ElemRange(lo, hi), &partial[w])
			rep.PerWorker[w] = 1
		}(w)
	}
	wg.Wait()
	var total core.Ops
	var err error
	for w := range partial {
		total.Add(partial[w])
		if errs[w] != nil && err == nil {
			err = errs[w]
		}
	}
	rep.Stripes = 1
	rep.Elapsed = time.Since(start)
	ops.Add(total)
	sp.Bytes(s.DataSize()).Units(n).Ops(total).End(err)
	return rep, err
}
