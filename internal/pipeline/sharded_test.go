package pipeline

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/codes"
	"repro/internal/core"
)

// TestEncodeShardedMatchesPlain runs the sharded encoder against every
// registered code family (elemwise ones shard, strip-granular ones fall
// back) and requires bit-identical parities to a plain Encode.
func TestEncodeShardedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, name := range codes.Names() {
		info, _ := codes.Lookup(name)
		sh := info.TestShapes[0]
		code, err := codes.New(name, sh.K, sh.P)
		if err != nil {
			t.Fatal(err)
		}
		for _, elem := range []int{1024, 8192, 12352} { // below, at, and past the shard threshold
			want := core.NewStripeFor(code, elem)
			want.FillRandom(rng)
			got := want.Clone()
			if err := code.Encode(want, nil); err != nil {
				t.Fatal(err)
			}
			var ops core.Ops
			rep, err := EncodeSharded(code, got, &ops, Config{Workers: 4})
			if err != nil {
				t.Fatalf("%s elem=%d: %v", name, elem, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s elem=%d: sharded encode diverges (workers=%d)", name, elem, rep.Workers)
			}
			if _, elemwise := code.(core.ElemwiseEncoder); !elemwise && rep.Workers != 1 {
				t.Errorf("%s: strip-granular code did not fall back (workers=%d)", name, rep.Workers)
			}
			if elem >= 8192 {
				if _, elemwise := code.(core.ElemwiseEncoder); elemwise && rep.Workers < 2 {
					t.Errorf("%s elem=%d: expected a real split, got %d worker(s)", name, elem, rep.Workers)
				}
			}
			if ops.XORs == 0 {
				t.Errorf("%s elem=%d: no ops accounted", name, elem)
			}
		}
	}
}

// TestElemRangeViews pins the ElemRange contract the sharded encoder
// relies on: views alias the parent, cover disjoint byte ranges of every
// element, and reassemble to the full element.
func TestElemRangeViews(t *testing.T) {
	s := core.NewStripe(3, 5, 256)
	s.FillRandom(rand.New(rand.NewSource(22)))
	lo, hi := 64, 192
	v := s.ElemRange(lo, hi)
	if v.K != s.K || v.W != s.W || v.ElemSize != hi-lo {
		t.Fatalf("view shape: K=%d W=%d elem=%d", v.K, v.W, v.ElemSize)
	}
	for col := 0; col < s.K+2; col++ {
		for row := 0; row < s.W; row++ {
			parent := s.Elem(col, row)
			view := v.Elem(col, row)
			if &view[0] != &parent[lo] {
				t.Fatalf("view (%d,%d) does not alias parent", col, row)
			}
		}
	}
	// A nested view of a view addresses the same bytes.
	vv := v.ElemRange(32, 64)
	if &vv.Elem(1, 2)[0] != &s.Elem(1, 2)[lo+32] {
		t.Fatal("nested view misaddressed")
	}
}

// TestEncodeShardedSpeedup demonstrates the intra-stripe scaling claim:
// on a multi-core machine, 4 workers on a >= 64 MiB stripe must beat one
// worker by >= 2x. The measurement needs real parallel hardware and a
// quiet machine, so it only asserts when BENCH_PARALLEL=1 is set and at
// least 4 CPUs are available; otherwise it measures, logs, and skips the
// assertion. `make bench-parallel` runs it in asserting mode.
func TestEncodeShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	assert := os.Getenv("BENCH_PARALLEL") == "1"
	if assert && runtime.NumCPU() < 4 {
		t.Skipf("BENCH_PARALLEL=1 but only %d CPU(s); need 4", runtime.NumCPU())
	}
	if !assert && runtime.NumCPU() < 2 {
		t.Skipf("single-CPU machine; nothing to measure")
	}

	code, err := codes.New("liberation", 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	// 8 data strips x 11 elements x 768 KiB = 66 MiB of data.
	elem := 768 * 1024
	s := core.NewStripe(8, 11, elem)
	s.FillRandom(rand.New(rand.NewSource(23)))

	run := func(workers int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			if _, err := EncodeSharded(code, s, nil, Config{Workers: workers}); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	run(1) // warm-up: schedules compiled, pages faulted in
	t1 := run(1)
	t4 := run(4)
	speedup := float64(t1) / float64(t4)
	t.Logf("64MiB-stripe encode: 1 worker %v, 4 workers %v, speedup %.2fx", t1, t4, speedup)
	if assert && speedup < 2 {
		t.Errorf("speedup %.2fx < 2x at 4 workers (1w=%v 4w=%v)", speedup, t1, t4)
	}
}

func BenchmarkEncodeSharded(b *testing.B) {
	code, err := codes.New("liberation", 8, 11)
	if err != nil {
		b.Fatal(err)
	}
	elem := 768 * 1024
	s := core.NewStripe(8, 11, elem)
	s.FillRandom(rand.New(rand.NewSource(24)))
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(s.DataSize()))
			for i := 0; i < b.N; i++ {
				if _, err := EncodeSharded(code, s, nil, Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
