package pipeline

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/liberation"
)

func TestEncodeAllMatchesSequential(t *testing.T) {
	code, _ := liberation.New(6, 7)
	rng := rand.New(rand.NewSource(1))
	const n = 37
	parallel := make([]*core.Stripe, n)
	serial := make([]*core.Stripe, n)
	for i := range parallel {
		s := core.NewStripe(6, 7, 64)
		s.FillRandom(rng)
		parallel[i] = s
		serial[i] = s.Clone()
	}
	var opsP, opsS core.Ops
	if err := EncodeAll(code, parallel, &opsP, Config{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeAll(code, serial, &opsS, Config{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	for i := range parallel {
		if !parallel[i].Equal(serial[i]) {
			t.Fatalf("stripe %d differs between parallel and serial encode", i)
		}
	}
	if opsP.XORs != opsS.XORs {
		t.Errorf("parallel counted %d XORs, serial %d", opsP.XORs, opsS.XORs)
	}
	if want := uint64(n * code.EncodeXORs()); opsS.XORs != want {
		t.Errorf("total XORs %d, want %d", opsS.XORs, want)
	}
}

func TestDecodeAllRebuild(t *testing.T) {
	code, _ := liberation.New(5, 5)
	rng := rand.New(rand.NewSource(2))
	const n = 23
	stripes := make([]*core.Stripe, n)
	refs := make([]*core.Stripe, n)
	for i := range stripes {
		s := core.NewStripe(5, 5, 32)
		s.FillRandom(rng)
		if err := code.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		refs[i] = s.Clone()
		s.ZeroStrip(1)
		s.ZeroStrip(3)
		stripes[i] = s
	}
	if err := DecodeAll(code, stripes, []int{1, 3}, nil, Config{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	for i := range stripes {
		if !stripes[i].Equal(refs[i]) {
			t.Fatalf("stripe %d not rebuilt correctly", i)
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	code, _ := liberation.New(4, 5)
	stripes := []*core.Stripe{
		core.NewStripe(4, 5, 8),
		core.NewStripe(3, 5, 8), // wrong shape: must surface as an error
		core.NewStripe(4, 5, 8),
		core.NewStripe(4, 5, 8),
	}
	if err := EncodeAll(code, stripes, nil, Config{Workers: 2}); err == nil {
		t.Error("shape error was swallowed")
	}
	if err := EncodeAll(code, stripes, nil, Config{Workers: 1}); err == nil {
		t.Error("shape error was swallowed (serial)")
	}
}

func TestSplitBuffer(t *testing.T) {
	code, _ := liberation.New(3, 3)
	data := make([]byte, 3*3*16*2+5) // two full stripes + ragged tail
	rand.New(rand.NewSource(3)).Read(data)
	stripes := SplitBuffer(code, 16, data)
	if len(stripes) != 3 {
		t.Fatalf("got %d stripes, want 3", len(stripes))
	}
	// Reassemble and compare (with zero padding at the end).
	var reassembled []byte
	for _, s := range stripes {
		for t := 0; t < s.K; t++ {
			reassembled = append(reassembled, s.Strips[t]...)
		}
	}
	for i, b := range data {
		if reassembled[i] != b {
			t.Fatalf("byte %d differs", i)
		}
	}
	for _, b := range reassembled[len(data):] {
		if b != 0 {
			t.Fatal("padding not zeroed")
		}
	}
	if got := len(SplitBuffer(code, 16, nil)); got != 1 {
		t.Errorf("empty buffer gave %d stripes, want 1", got)
	}
}

// TestQueueWaitVsShutdownWait pins the split between the two idle-time
// metrics: a producer tail after the last stripe (EOF probing, manifest
// writing, a slow upstream reader closing) is teardown and must land in
// ShutdownWait, while waits that end with a stripe being received are
// genuine dispatch stalls and must land in QueueWait. Folding the final
// channel-close wait into QueueWait — the old behavior — inflated it by
// up to Workers×(producer tail).
func TestQueueWaitVsShutdownWait(t *testing.T) {
	nop := func(*core.Stripe, *core.Ops) error { return nil }
	const tail = 150 * time.Millisecond

	// Producer tail after the last send: workers sit in their final wait
	// until the feed returns and the queue closes.
	rep, err := runPool("pipeline.encode", 2, Config{}, nil,
		func(work chan<- *core.Stripe, stop *atomic.Bool) {
			work <- core.NewStripe(3, 3, 8)
			work <- core.NewStripe(3, 3, 8)
			time.Sleep(tail)
		}, nop)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stripes != 2 {
		t.Fatalf("processed %d stripes, want 2", rep.Stripes)
	}
	// Both workers idle through the tail: the sum must see most of 2×tail.
	if rep.ShutdownWait < tail {
		t.Errorf("ShutdownWait = %v, want >= %v (producer tail not attributed)", rep.ShutdownWait, tail)
	}
	if rep.QueueWait > tail/2 {
		t.Errorf("QueueWait = %v; producer tail leaked into queue wait", rep.QueueWait)
	}

	// Slow producer between stripes: that wait ends with a received
	// stripe, so it is queue wait, not shutdown wait.
	rep, err = runPool("pipeline.encode", 1, Config{}, nil,
		func(work chan<- *core.Stripe, stop *atomic.Bool) {
			work <- core.NewStripe(3, 3, 8)
			time.Sleep(tail)
			work <- core.NewStripe(3, 3, 8)
		}, nop)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueueWait < tail*2/3 {
		t.Errorf("QueueWait = %v, want >= %v (slow producer not attributed)", rep.QueueWait, tail*2/3)
	}
	if rep.ShutdownWait > tail/2 {
		t.Errorf("ShutdownWait = %v; dispatch stall misattributed to shutdown", rep.ShutdownWait)
	}
}

func BenchmarkEncodeAllWorkers(b *testing.B) {
	code, _ := liberation.New(10, 11)
	for _, workers := range []int{1, 2, 4} {
		stripes := make([]*core.Stripe, 64)
		for i := range stripes {
			s := core.NewStripe(10, 11, 4096)
			s.FillRandom(rand.New(rand.NewSource(int64(i))))
			stripes[i] = s
		}
		bytes := int64(len(stripes) * stripes[0].DataSize())
		b.Run(benchName(workers), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				if err := EncodeAll(code, stripes, nil, Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(workers int) string {
	return "workers=" + string(rune('0'+workers))
}
