package pipeline

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/liberation"
	"repro/internal/obs"
)

// TestContextCancellation checks that a cancelled Config.Context stops
// the pool, surfaces the typed context.Canceled error, and attributes
// the cancellation in the causal trace (pipeline.worker.cancel events
// plus the bulk span ending with the error) rather than losing it in a
// counter.
func TestContextCancellation(t *testing.T) {
	code, _ := liberation.New(4, 5)
	stripes := make([]*core.Stripe, 64)
	for i := range stripes {
		stripes[i] = core.NewStripe(4, 5, 32)
	}

	rec := obs.NewFlightRecorder(256)
	tr := obs.NewTracer(rec)
	tr.Seed(0)
	reg := obs.NewRegistry()
	ctx, root := obs.StartOp(context.Background(), tr, reg, "bulk")

	// Cancel after the first few stripes encode: the fn itself trips
	// the cancellation, so workers observe a dead context mid-queue.
	cctx, cancel := context.WithCancel(ctx)
	done := 0
	wrapped := func(s *core.Stripe, o *core.Ops) error {
		if done++; done >= 3 {
			cancel()
		}
		return code.Encode(s, o)
	}
	rep, err := forEach("pipeline.encode", stripes, Config{
		Workers: 2, Registry: reg, Context: cctx,
	}, nil, wrapped)
	root.End(err)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Stripes >= len(stripes) {
		t.Errorf("cancellation processed all %d stripes", rep.Stripes)
	}

	events := rec.Snapshot()
	var cancels int
	for _, ev := range events {
		if ev.Name == "pipeline.worker.cancel" {
			cancels++
			if ev.Err != context.Canceled.Error() {
				t.Errorf("cancel event err = %q, want %q", ev.Err, context.Canceled)
			}
			if _, ok := ev.Attrs["worker"]; !ok {
				t.Errorf("cancel event lacks worker attribution: %+v", ev)
			}
			if ev.Trace != root.TraceID().String() {
				t.Errorf("cancel event trace %q, want %q", ev.Trace, root.TraceID())
			}
		}
	}
	if cancels == 0 {
		t.Error("no pipeline.worker.cancel events recorded")
	}
	if got := reg.Counter("pipeline.encode.cancelled").Value(); got == 0 {
		t.Error("pipeline.encode.cancelled counter not bumped")
	}
	// The bulk span itself must end with the typed error.
	last := events[len(events)-1]
	if last.Name != "bulk" || last.Err == "" {
		t.Errorf("root span event = %+v, want bulk with error", last)
	}
}

// TestContextCancellationSerial covers the single-worker path.
func TestContextCancellationSerial(t *testing.T) {
	code, _ := liberation.New(4, 5)
	stripes := make([]*core.Stripe, 16)
	for i := range stripes {
		stripes[i] = core.NewStripe(4, 5, 32)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := 0
	fn := func(s *core.Stripe, o *core.Ops) error {
		if done++; done == 2 {
			cancel()
		}
		return code.Encode(s, o)
	}
	rep, err := forEach("pipeline.encode", stripes, Config{Workers: 1, Context: ctx}, nil, fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Stripes == 0 || rep.Stripes >= len(stripes) {
		t.Errorf("stripes processed = %d, want partial progress", rep.Stripes)
	}
}
