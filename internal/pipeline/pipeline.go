// Package pipeline parallelizes bulk coding work across stripes. One
// stripe's encode or decode is inherently sequential (the zig-zag chain
// carries a dependency), but a large write or a full rebuild spans many
// independent stripes, which is exactly the parallelism a multi-core
// storage server exploits. The pool here is a fixed set of workers pulling
// stripe indices from a channel — no locks on the data path, since every
// stripe touches disjoint memory and the Code implementations are safe
// for concurrent use.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Config controls a bulk operation.
type Config struct {
	// Workers is the number of concurrent goroutines (0 = GOMAXPROCS).
	Workers int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// EncodeAll encodes every stripe with the given code, in parallel.
// Per-stripe XOR counts are accumulated into ops (which may be nil).
func EncodeAll(code core.Code, stripes []*core.Stripe, ops *core.Ops, cfg Config) error {
	return forEach(stripes, cfg, ops, func(s *core.Stripe, o *core.Ops) error {
		return code.Encode(s, o)
	})
}

// DecodeAll reconstructs the same erased strips in every stripe, in
// parallel — the shape of a whole-disk rebuild.
func DecodeAll(code core.Code, stripes []*core.Stripe, erased []int, ops *core.Ops, cfg Config) error {
	return forEach(stripes, cfg, ops, func(s *core.Stripe, o *core.Ops) error {
		return code.Decode(s, erased, o)
	})
}

// forEach fans the stripes out over the worker pool. Each worker keeps a
// private Ops and the totals are merged at the end, so counting adds no
// contention.
func forEach(stripes []*core.Stripe, cfg Config, ops *core.Ops,
	fn func(*core.Stripe, *core.Ops) error) error {
	n := cfg.workers()
	if n > len(stripes) {
		n = len(stripes)
	}
	if n <= 1 {
		for _, s := range stripes {
			if err := fn(s, ops); err != nil {
				return err
			}
		}
		return nil
	}
	work := make(chan *core.Stripe)
	errCh := make(chan error, n)
	partial := make([]core.Ops, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			failed := false
			for s := range work {
				if failed {
					continue // keep draining so the producer never blocks
				}
				if err := fn(s, &partial[w]); err != nil {
					select {
					case errCh <- err:
					default:
					}
					failed = true
				}
			}
		}(w)
	}
	for _, s := range stripes {
		work <- s
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errCh:
		return fmt.Errorf("pipeline: %w", err)
	default:
	}
	for w := range partial {
		ops.Add(partial[w])
	}
	return nil
}

// SplitBuffer carves a contiguous data buffer into stripes for the given
// code and element size, copying the data into the stripes' data strips.
// The final stripe is zero-padded. It is the standard preparation step
// for EncodeAll over a large write.
func SplitBuffer(code core.Code, elemSize int, data []byte) []*core.Stripe {
	k, w := code.K(), code.W()
	perStripe := k * w * elemSize
	n := (len(data) + perStripe - 1) / perStripe
	if n == 0 {
		n = 1
	}
	stripes := make([]*core.Stripe, n)
	for i := range stripes {
		s := core.NewStripe(k, w, elemSize)
		off := i * perStripe
		for t := 0; t < k; t++ {
			lo := off + t*w*elemSize
			if lo >= len(data) {
				break
			}
			copy(s.Strips[t], data[lo:])
		}
		stripes[i] = s
	}
	return stripes
}
