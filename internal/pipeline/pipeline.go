// Package pipeline parallelizes bulk coding work across stripes. One
// stripe's encode or decode is inherently sequential (the zig-zag chain
// carries a dependency), but a large write or a full rebuild spans many
// independent stripes, which is exactly the parallelism a multi-core
// storage server exploits. The pool here is a fixed set of workers pulling
// stripe indices from a channel — no locks on the data path, since every
// stripe touches disjoint memory and the Code implementations are safe
// for concurrent use.
package pipeline

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config controls a bulk operation.
type Config struct {
	// Workers is the number of concurrent goroutines (0 = GOMAXPROCS).
	Workers int
	// Registry, when non-nil, receives a span per bulk call
	// (pipeline.encode / pipeline.decode) plus queue-wait and
	// stripes-per-worker histograms.
	Registry *obs.Registry
	// Context cancels the bulk operation between stripes: the producer
	// stops feeding, each worker drains the queue without processing,
	// and the call returns ctx.Err(). When the context carries an
	// active trace, every worker's early exit is attributed with a
	// pipeline.worker.cancel event carrying the typed cancellation
	// cause, and the bulk span ends with that error — cancellation is
	// causally visible, not just a counter bump. Nil means no
	// cancellation.
	Context context.Context
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) context() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// Report describes how a bulk operation actually ran: how the stripes
// were spread over the pool and how long workers sat idle waiting for
// the producer. On error, Stripes counts the work completed before the
// pool shut down — the cancellation guarantee is that no stripe starts
// processing after the first error is raised.
type Report struct {
	Workers   int   // pool size actually used
	Stripes   int   // stripes successfully processed
	PerWorker []int // stripes processed by each worker (len == Workers)
	// QueueWait is the total time workers spent blocked on the work
	// queue waiting for a stripe they then received, summed over the
	// pool. High values relative to Elapsed*Workers mean the producer
	// or a straggler stripe is the bottleneck, not the pool.
	QueueWait time.Duration
	// ShutdownWait is the total time workers spent in their final wait —
	// blocked on the queue between finishing their last stripe and the
	// producer closing it — summed over the pool. It used to be folded
	// into QueueWait, inflating that metric by up to Workers×(producer
	// tail); it is pure teardown cost, not a dispatch bottleneck.
	ShutdownWait time.Duration
	Elapsed      time.Duration
}

// EncodeAll encodes every stripe with the given code, in parallel.
// Per-stripe XOR counts are accumulated into ops (which may be nil).
func EncodeAll(code core.Code, stripes []*core.Stripe, ops *core.Ops, cfg Config) error {
	_, err := EncodeAllReport(code, stripes, ops, cfg)
	return err
}

// EncodeAllReport is EncodeAll plus the pool's execution Report.
func EncodeAllReport(code core.Code, stripes []*core.Stripe, ops *core.Ops, cfg Config) (Report, error) {
	return forEach("pipeline.encode", stripes, cfg, ops, func(s *core.Stripe, o *core.Ops) error {
		return code.Encode(s, o)
	})
}

// DecodeAll reconstructs the same erased strips in every stripe, in
// parallel — the shape of a whole-disk rebuild.
func DecodeAll(code core.Code, stripes []*core.Stripe, erased []int, ops *core.Ops, cfg Config) error {
	_, err := DecodeAllReport(code, stripes, erased, ops, cfg)
	return err
}

// DecodeAllReport is DecodeAll plus the pool's execution Report.
func DecodeAllReport(code core.Code, stripes []*core.Stripe, erased []int, ops *core.Ops, cfg Config) (Report, error) {
	return forEach("pipeline.decode", stripes, cfg, ops, func(s *core.Stripe, o *core.Ops) error {
		return code.Decode(s, erased, o)
	})
}

// forEach fans the stripes out over the worker pool. Each worker keeps a
// private Ops and the totals are merged at the end, so counting adds no
// contention. The first error cancels the remaining work: the producer
// stops feeding and every worker skips (but keeps draining) whatever is
// already queued, so no stripe begins processing after the error.
func forEach(name string, stripes []*core.Stripe, cfg Config, ops *core.Ops,
	fn func(*core.Stripe, *core.Ops) error) (Report, error) {
	n := cfg.workers()
	if n > len(stripes) {
		n = len(stripes)
	}
	if n < 1 {
		n = 1
	}
	ctx := cfg.context()
	feed := func(work chan<- *core.Stripe, stop *atomic.Bool) {
		for _, s := range stripes {
			if stop.Load() || ctx.Err() != nil {
				return
			}
			work <- s
		}
	}
	return runPool(name, n, cfg, ops, feed, fn)
}

// runPool runs n workers over the stripes produced by feed, which sends
// on the work channel until it has no more stripes (or stop is set) and
// then returns; runPool closes the channel. Worker idle time is split
// into QueueWait (waits that ended with a stripe) and ShutdownWait (each
// worker's final wait, ended by the channel closing).
func runPool(name string, n int, cfg Config, ops *core.Ops,
	feed func(chan<- *core.Stripe, *atomic.Bool),
	fn func(*core.Stripe, *core.Ops) error) (Report, error) {
	start := time.Now()
	ctx := cfg.context()
	rep := Report{Workers: n, PerWorker: make([]int, n)}
	sp := obs.StartSpan(cfg.Registry, name)
	var total core.Ops
	bytes := 0
	// cancelled attributes one worker's early exit to the context's
	// typed cancellation cause (context.Canceled, DeadlineExceeded).
	cancelled := func(worker, done int) {
		cfg.Registry.Count(name+".cancelled", 1)
		obs.EmitErr(ctx, slog.LevelInfo, "pipeline.worker.cancel", ctx.Err(),
			slog.Int("worker", worker), slog.Int("stripes_done", done))
	}
	finish := func(err error) (Report, error) {
		if err == nil {
			err = ctx.Err()
		}
		rep.Elapsed = time.Since(start)
		ops.Add(total)
		sp.Bytes(bytes).Units(rep.Stripes).Ops(total).End(err)
		if cfg.Registry != nil {
			cfg.Registry.Observe(name+".queue_wait.seconds", obs.LatencyBuckets,
				rep.QueueWait.Seconds())
			cfg.Registry.Observe(name+".shutdown_wait.seconds", obs.LatencyBuckets,
				rep.ShutdownWait.Seconds())
			for w, c := range rep.PerWorker {
				// Per-worker children; the family aggregate keeps the bare
				// pipeline.worker.stripes distribution across all workers.
				cfg.Registry.ObserveWith("pipeline.worker.stripes", obs.SizeBuckets,
					float64(c), obs.Li("worker", w))
			}
		}
		if err != nil {
			return rep, fmt.Errorf("pipeline: %w", err)
		}
		return rep, nil
	}

	if n == 1 {
		var stop atomic.Bool
		work := make(chan *core.Stripe)
		go func() {
			feed(work, &stop)
			close(work)
		}()
		var err error
		for {
			t0 := time.Now()
			s, ok := <-work
			if !ok {
				rep.ShutdownWait += time.Since(t0)
				if ctx.Err() != nil {
					cancelled(0, rep.Stripes)
				}
				break
			}
			rep.QueueWait += time.Since(t0)
			if ctx.Err() != nil {
				stop.Store(true)
				cancelled(0, rep.Stripes)
				for range work { // drain so feed never blocks
				}
				break
			}
			if err = fn(s, &total); err != nil {
				stop.Store(true)
				obs.EmitErr(ctx, slog.LevelError, "pipeline.worker.error", err,
					slog.Int("worker", 0), slog.Int("stripes_done", rep.Stripes))
				for range work { // drain so feed never blocks
				}
				break
			}
			bytes += s.DataSize()
			rep.Stripes++
			rep.PerWorker[0]++
		}
		return finish(err)
	}

	var stop atomic.Bool
	work := make(chan *core.Stripe)
	errCh := make(chan error, n)
	partial := make([]core.Ops, n)
	perWorker := rep.PerWorker
	waits := make([]time.Duration, n)
	tailWaits := make([]time.Duration, n)
	bytesW := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			noted := false // cancellation attributed at most once per worker
			for {
				t0 := time.Now()
				s, ok := <-work
				if !ok {
					tailWaits[w] += time.Since(t0)
					if ctx.Err() != nil && !noted {
						cancelled(w, perWorker[w])
					}
					return
				}
				waits[w] += time.Since(t0)
				if ctx.Err() != nil {
					stop.Store(true)
					if !noted {
						noted = true
						cancelled(w, perWorker[w])
					}
					continue // drain so the producer never blocks
				}
				if stop.Load() {
					continue // drain so the producer never blocks
				}
				if err := fn(s, &partial[w]); err != nil {
					stop.Store(true)
					obs.EmitErr(ctx, slog.LevelError, "pipeline.worker.error", err,
						slog.Int("worker", w), slog.Int("stripes_done", perWorker[w]))
					select {
					case errCh <- err:
					default:
					}
					continue
				}
				perWorker[w]++
				bytesW[w] += s.DataSize()
			}
		}(w)
	}
	feed(work, &stop)
	close(work)
	wg.Wait()
	for w := range partial {
		total.Add(partial[w])
		rep.Stripes += perWorker[w]
		rep.QueueWait += waits[w]
		rep.ShutdownWait += tailWaits[w]
		bytes += bytesW[w]
	}
	select {
	case err := <-errCh:
		return finish(err)
	default:
	}
	return finish(nil)
}

// SplitBuffer carves a contiguous data buffer into stripes for the given
// code and element size, copying the data into the stripes' data strips.
// The final stripe is zero-padded. It is the standard preparation step
// for EncodeAll over a large write.
//
// The stripes come from the process-wide stripe pool
// (core.SharedStripePool); callers that are done with them can hand them
// back via ReleaseStripes so steady-state bulk traffic allocates nothing
// per stripe. Releasing is optional — unreleased stripes are ordinary
// garbage.
func SplitBuffer(code core.Code, elemSize int, data []byte) []*core.Stripe {
	k, w := code.K(), code.W()
	pool := core.SharedStripePool(k, code.M(), w, elemSize)
	perStripe := k * w * elemSize
	n := (len(data) + perStripe - 1) / perStripe
	if n == 0 {
		n = 1
	}
	stripes := make([]*core.Stripe, n)
	for i := range stripes {
		s := pool.Get()
		off := i * perStripe
		for t := 0; t < k; t++ {
			lo := off + t*w*elemSize
			if lo >= len(data) {
				break
			}
			copy(s.Strips[t], data[lo:])
		}
		stripes[i] = s
	}
	return stripes
}

// ReleaseStripes returns stripes (e.g. from SplitBuffer) to the shared
// stripe pool. The caller must not touch them afterwards.
func ReleaseStripes(stripes []*core.Stripe) {
	for _, s := range stripes {
		if s != nil {
			core.SharedStripePool(s.K, s.M(), s.W, s.ElemSize).Put(s)
		}
	}
}
