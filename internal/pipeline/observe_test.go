package pipeline

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/liberation"
	"repro/internal/obs"
)

// TestCancellationStopsWork proves the error-aggregation fix: after the
// first worker errors, no further stripe begins processing. The erroring
// call signals the in-flight calls (which may legitimately finish) and
// every later stripe must be skipped, so with 4 workers and 400 stripes
// the call count stays within a handful of the pool size instead of
// running the whole batch.
func TestCancellationStopsWork(t *testing.T) {
	const n = 400
	const workers = 4
	stripes := make([]*core.Stripe, n)
	for i := range stripes {
		stripes[i] = core.NewStripe(3, 3, 8)
	}

	var calls atomic.Int64
	errSeen := make(chan struct{})
	boom := errors.New("boom")
	rep, err := forEach("pipeline.encode", stripes, Config{Workers: workers}, nil,
		func(s *core.Stripe, o *core.Ops) error {
			calls.Add(1)
			if s == stripes[0] {
				close(errSeen)
				return boom
			}
			<-errSeen // hold in-flight calls until the error is raised
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// At error time at most workers-1 calls are in flight, and each
	// worker may begin one more before observing the stop flag.
	if got := calls.Load(); got > 2*workers {
		t.Errorf("%d stripes entered processing after an error (pool=%d); cancellation is broken",
			got, workers)
	}
	if rep.Stripes >= n/2 {
		t.Errorf("report claims %d processed stripes out of %d despite early error", rep.Stripes, n)
	}
}

// TestReportAccounting checks the per-worker counts, totals, and the
// parallel/serial agreement of the Report-returning API.
func TestReportAccounting(t *testing.T) {
	code, _ := liberation.New(5, 5)
	rng := rand.New(rand.NewSource(11))
	const n = 53
	stripes := make([]*core.Stripe, n)
	for i := range stripes {
		s := core.NewStripe(5, 5, 64)
		s.FillRandom(rng)
		stripes[i] = s
	}
	var ops core.Ops
	rep, err := EncodeAllReport(code, stripes, &ops, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 4 || len(rep.PerWorker) != 4 {
		t.Fatalf("report workers = %d / %d entries, want 4", rep.Workers, len(rep.PerWorker))
	}
	sum := 0
	for _, c := range rep.PerWorker {
		sum += c
	}
	if sum != n || rep.Stripes != n {
		t.Errorf("per-worker sum %d, Stripes %d, want %d", sum, rep.Stripes, n)
	}
	if rep.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
	if want := uint64(n * code.EncodeXORs()); ops.XORs != want {
		t.Errorf("ops.XORs = %d, want %d", ops.XORs, want)
	}

	// Rebuild path: report plus correctness.
	refs := make([]*core.Stripe, n)
	for i, s := range stripes {
		refs[i] = s.Clone()
		s.ZeroStrip(0)
		s.ZeroStrip(2)
	}
	rep, err = DecodeAllReport(code, stripes, []int{0, 2}, nil, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stripes != n {
		t.Errorf("decode report processed %d, want %d", rep.Stripes, n)
	}
	for i := range stripes {
		if !stripes[i].Equal(refs[i]) {
			t.Fatalf("stripe %d not rebuilt", i)
		}
	}

	// Serial path reports through the same structure.
	rep, err = EncodeAllReport(code, stripes, nil, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 1 || rep.PerWorker[0] != n {
		t.Errorf("serial report %+v, want all %d stripes on worker 0", rep, n)
	}
}

// TestPipelineObsSpans checks the registry wiring: bulk calls produce
// pipeline.encode spans whose XOR counters match the core.Ops totals,
// and Snapshot() can be read concurrently with running pools (this is
// the -race acceptance test for the pipeline package).
func TestPipelineObsSpans(t *testing.T) {
	code, _ := liberation.New(4, 5)
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(5))
	const n = 40
	stripes := make([]*core.Stripe, n)
	for i := range stripes {
		s := core.NewStripe(4, 5, 32)
		s.FillRandom(rng)
		stripes[i] = s
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = reg.Snapshot()
				}
			}
		}()
	}

	var ops core.Ops
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if _, err := EncodeAllReport(code, stripes, &ops, Config{Workers: 4, Registry: reg}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	snap := reg.Snapshot()
	st, ok := snap.Spans["pipeline.encode"]
	if !ok {
		t.Fatal("no pipeline.encode span recorded")
	}
	if st.Calls != rounds {
		t.Errorf("span calls = %d, want %d", st.Calls, rounds)
	}
	if st.XORs != ops.XORs {
		t.Errorf("span XORs %d != ops %d", st.XORs, ops.XORs)
	}
	if st.Units != uint64(rounds*n) {
		t.Errorf("span units %d, want %d stripes", st.Units, rounds*n)
	}
	if _, ok := snap.Histograms["pipeline.encode.queue_wait.seconds"]; !ok {
		t.Error("queue-wait histogram missing")
	}
	if _, ok := snap.Histograms["pipeline.encode.shutdown_wait.seconds"]; !ok {
		t.Error("shutdown-wait histogram missing")
	}
	if h, ok := snap.Histograms["pipeline.worker.stripes"]; !ok || h.Count == 0 {
		t.Error("per-worker stripes histogram missing or empty")
	}
}
