package xorblk

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// refXor is the obvious byte-loop reference.
func refXor(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

func TestXorAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 200; n++ {
		a := make([]byte, n)
		b := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		dst := make([]byte, n)
		Xor(dst, a, b)
		if !bytes.Equal(dst, refXor(a, b)) {
			t.Fatalf("Xor wrong at n=%d", n)
		}
		acc := append([]byte(nil), a...)
		XorInto(acc, b)
		if !bytes.Equal(acc, refXor(a, b)) {
			t.Fatalf("XorInto wrong at n=%d", n)
		}
	}
}

func TestXorAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]byte, 100)
	b := make([]byte, 100)
	rng.Read(a)
	rng.Read(b)
	want := refXor(a, b)
	dst := append([]byte(nil), a...)
	Xor(dst, dst, b) // dst aliases a
	if !bytes.Equal(dst, want) {
		t.Error("Xor with dst==a wrong")
	}
	dst = append([]byte(nil), b...)
	Xor(dst, a, dst) // dst aliases b
	if !bytes.Equal(dst, want) {
		t.Error("Xor with dst==b wrong")
	}
}

func TestXorProperties(t *testing.T) {
	// Self-inverse: (a ^ b) ^ b == a, for arbitrary slices.
	if err := quick.Check(func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		acc := append([]byte(nil), a...)
		XorInto(acc, b)
		XorInto(acc, b)
		return bytes.Equal(acc, a)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestXorMany(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	srcs := make([][]byte, 5)
	want := make([]byte, 77)
	for i := range srcs {
		srcs[i] = make([]byte, 77)
		rng.Read(srcs[i])
		for j := range want {
			want[j] ^= srcs[i][j]
		}
	}
	dst := make([]byte, 77)
	XorMany(dst, srcs...)
	if !bytes.Equal(dst, want) {
		t.Error("XorMany wrong")
	}
}

// TestRaggedAndMisaligned pins the head/tail split: every kernel must
// agree with the byte-loop reference for element sizes that are not word
// multiples (1, 7, 31, 4097, ...) and for buffers whose first byte is not
// 8-byte aligned — the shapes where a broken head/tail handoff silently
// corrupts or drops bytes.
func TestRaggedAndMisaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 7, 8, 9, 15, 31, 32, 33, 63, 100, 1023, 4097} {
		for off := 0; off < 8; off++ {
			// Carve buffers at byte offset off of a larger backing so the
			// kernels see genuinely misaligned heads.
			carve := func() []byte {
				b := make([]byte, n+16)
				rng.Read(b)
				return b[off : off+n : off+n]
			}
			dst0, a, b, c, d := carve(), carve(), carve(), carve(), carve()

			want := append([]byte(nil), dst0...)
			got := append(make([]byte, off), dst0...)[off:]
			for i := 0; i < n; i++ {
				want[i] = a[i] ^ b[i]
			}
			Xor(got, a, b)
			if !bytes.Equal(got, want) {
				t.Fatalf("Xor wrong at n=%d off=%d", n, off)
			}

			check := func(name string, nsrc int, fn func(dst []byte)) {
				want := append([]byte(nil), dst0...)
				srcs := [][]byte{a, b, c, d}
				for i := 0; i < n; i++ {
					for _, s := range srcs[:nsrc] {
						want[i] ^= s[i]
					}
				}
				got := append(make([]byte, off), dst0...)[off:]
				fn(got)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s wrong at n=%d off=%d", name, n, off)
				}
			}
			check("XorInto", 1, func(dst []byte) { XorInto(dst, a) })
			check("XorInto2", 2, func(dst []byte) { XorInto2(dst, a, b) })
			check("XorInto3", 3, func(dst []byte) { XorInto3(dst, a, b, c) })
			check("XorInto4", 4, func(dst []byte) { XorInto4(dst, a, b, c, d) })
			check("XorMany", 4, func(dst []byte) {
				tmp := make([]byte, n)
				XorMany(tmp, dst, a, b, c, d)
				copy(dst, tmp)
			})
		}
	}
}

func TestXorInto4(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{0, 7, 8, 16, 33, 100, 4097} {
		d0 := make([]byte, n)
		a := make([]byte, n)
		b := make([]byte, n)
		c := make([]byte, n)
		d := make([]byte, n)
		for _, s := range [][]byte{d0, a, b, c, d} {
			rng.Read(s)
		}
		want := append([]byte(nil), d0...)
		XorInto(want, a)
		XorInto(want, b)
		XorInto(want, c)
		XorInto(want, d)
		got := append([]byte(nil), d0...)
		XorInto4(got, a, b, c, d)
		if !bytes.Equal(got, want) {
			t.Fatalf("XorInto4 wrong at n=%d", n)
		}
	}
}

func TestIsZero(t *testing.T) {
	for n := 0; n < 64; n++ {
		b := make([]byte, n)
		if !IsZero(b) {
			t.Fatalf("IsZero(zeros[%d]) = false", n)
		}
		if n > 0 {
			for pos := 0; pos < n; pos++ {
				b[pos] = 1
				if IsZero(b) {
					t.Fatalf("IsZero missed byte at %d/%d", pos, n)
				}
				b[pos] = 0
			}
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	XorInto(make([]byte, 4), make([]byte, 5))
}

func BenchmarkXorInto4K(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		XorInto(dst, src)
	}
}

func BenchmarkXorInto64K(b *testing.B) {
	dst := make([]byte, 65536)
	src := make([]byte, 65536)
	b.SetBytes(65536)
	for i := 0; i < b.N; i++ {
		XorInto(dst, src)
	}
}

// BenchmarkXorIntoMulti proves the fused kernels keep parity with the
// XorInto main loop: each sub-benchmark accounts bytes per source
// accumulated, so MB/s is directly comparable across XorInto, XorInto2,
// and XorInto3 (the fused kernels should be at least as fast — they
// touch dst once instead of per source).
func BenchmarkXorIntoMulti(b *testing.B) {
	for _, size := range []int{4096, 65536} {
		dst := make([]byte, size)
		a := make([]byte, size)
		c := make([]byte, size)
		d := make([]byte, size)
		b.Run(fmt.Sprintf("XorInto/size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				XorInto(dst, a)
			}
		})
		b.Run(fmt.Sprintf("XorInto2/size=%d", size), func(b *testing.B) {
			b.SetBytes(2 * int64(size))
			for i := 0; i < b.N; i++ {
				XorInto2(dst, a, c)
			}
		})
		b.Run(fmt.Sprintf("XorInto3/size=%d", size), func(b *testing.B) {
			b.SetBytes(3 * int64(size))
			for i := 0; i < b.N; i++ {
				XorInto3(dst, a, c, d)
			}
		})
	}
}

func TestXorIntoMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 7, 8, 33, 100} {
		a := make([]byte, n)
		b := make([]byte, n)
		c := make([]byte, n)
		d0 := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		rng.Read(c)
		rng.Read(d0)

		want := append([]byte(nil), d0...)
		XorInto(want, a)
		XorInto(want, b)
		got := append([]byte(nil), d0...)
		XorInto2(got, a, b)
		if !bytes.Equal(got, want) {
			t.Fatalf("XorInto2 wrong at n=%d", n)
		}

		XorInto(want, c)
		got = append([]byte(nil), d0...)
		XorInto3(got, a, b, c)
		if !bytes.Equal(got, want) {
			t.Fatalf("XorInto3 wrong at n=%d", n)
		}
	}
}
