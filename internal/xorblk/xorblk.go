// Package xorblk provides word-oriented XOR kernels for erasure coding.
//
// All RAID-6 array codes in this repository perform their arithmetic as
// XORs of fixed-size byte blocks ("elements" in the paper's terminology:
// one element is a machine-word multiple, typically a 4KB or 8KB block, so
// that 8*elemSize codewords are encoded in parallel by each block XOR).
// The kernels here are the only place data bytes are actually touched;
// everything above them manipulates element indices.
//
// The kernels process 8-byte words via encoding/binary (which the compiler
// lowers to single loads/stores on little-endian machines) with a 4-way
// unrolled main loop, and fall back to byte-at-a-time for ragged tails.
package xorblk

import (
	"encoding/binary"
)

// Xor sets dst = a ^ b. All three slices must have the same length and may
// not partially overlap (dst == a or dst == b is allowed).
func Xor(dst, a, b []byte) {
	n := len(dst)
	if len(a) != n || len(b) != n {
		panic("xorblk: length mismatch")
	}
	i := 0
	for ; i+32 <= n; i += 32 {
		w0 := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
		w1 := binary.LittleEndian.Uint64(a[i+8:]) ^ binary.LittleEndian.Uint64(b[i+8:])
		w2 := binary.LittleEndian.Uint64(a[i+16:]) ^ binary.LittleEndian.Uint64(b[i+16:])
		w3 := binary.LittleEndian.Uint64(a[i+24:]) ^ binary.LittleEndian.Uint64(b[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// XorInto sets dst ^= src. Both slices must have the same length.
func XorInto(dst, src []byte) {
	n := len(dst)
	if len(src) != n {
		panic("xorblk: length mismatch")
	}
	i := 0
	for ; i+32 <= n; i += 32 {
		w0 := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		w1 := binary.LittleEndian.Uint64(dst[i+8:]) ^ binary.LittleEndian.Uint64(src[i+8:])
		w2 := binary.LittleEndian.Uint64(dst[i+16:]) ^ binary.LittleEndian.Uint64(src[i+16:])
		w3 := binary.LittleEndian.Uint64(dst[i+24:]) ^ binary.LittleEndian.Uint64(src[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XorMany sets dst = srcs[0] ^ srcs[1] ^ ... ^ srcs[len-1].
// It requires at least one source. Sources must all match len(dst).
func XorMany(dst []byte, srcs ...[]byte) {
	if len(srcs) == 0 {
		panic("xorblk: XorMany requires at least one source")
	}
	copy(dst, srcs[0])
	for _, s := range srcs[1:] {
		XorInto(dst, s)
	}
}

// IsZero reports whether every byte of b is zero.
func IsZero(b []byte) bool {
	i := 0
	n := len(b)
	var acc uint64
	for ; i+8 <= n; i += 8 {
		acc |= binary.LittleEndian.Uint64(b[i:])
	}
	for ; i < n; i++ {
		acc |= uint64(b[i])
	}
	return acc == 0
}

// XorInto2 sets dst ^= a ^ b in a single pass over dst.
func XorInto2(dst, a, b []byte) {
	n := len(dst)
	if len(a) != n || len(b) != n {
		panic("xorblk: length mismatch")
	}
	i := 0
	for ; i+32 <= n; i += 32 {
		w0 := binary.LittleEndian.Uint64(dst[i:]) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:])
		w1 := binary.LittleEndian.Uint64(dst[i+8:]) ^
			binary.LittleEndian.Uint64(a[i+8:]) ^
			binary.LittleEndian.Uint64(b[i+8:])
		w2 := binary.LittleEndian.Uint64(dst[i+16:]) ^
			binary.LittleEndian.Uint64(a[i+16:]) ^
			binary.LittleEndian.Uint64(b[i+16:])
		w3 := binary.LittleEndian.Uint64(dst[i+24:]) ^
			binary.LittleEndian.Uint64(a[i+24:]) ^
			binary.LittleEndian.Uint64(b[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i]
	}
}

// XorInto3 sets dst ^= a ^ b ^ c in a single pass over dst.
func XorInto3(dst, a, b, c []byte) {
	n := len(dst)
	if len(a) != n || len(b) != n || len(c) != n {
		panic("xorblk: length mismatch")
	}
	i := 0
	for ; i+32 <= n; i += 32 {
		w0 := binary.LittleEndian.Uint64(dst[i:]) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:]) ^
			binary.LittleEndian.Uint64(c[i:])
		w1 := binary.LittleEndian.Uint64(dst[i+8:]) ^
			binary.LittleEndian.Uint64(a[i+8:]) ^
			binary.LittleEndian.Uint64(b[i+8:]) ^
			binary.LittleEndian.Uint64(c[i+8:])
		w2 := binary.LittleEndian.Uint64(dst[i+16:]) ^
			binary.LittleEndian.Uint64(a[i+16:]) ^
			binary.LittleEndian.Uint64(b[i+16:]) ^
			binary.LittleEndian.Uint64(c[i+16:])
		w3 := binary.LittleEndian.Uint64(dst[i+24:]) ^
			binary.LittleEndian.Uint64(a[i+24:]) ^
			binary.LittleEndian.Uint64(b[i+24:]) ^
			binary.LittleEndian.Uint64(c[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i]
	}
}
