// Package xorblk provides word-oriented XOR kernels for erasure coding.
//
// All RAID-6 array codes in this repository perform their arithmetic as
// XORs of fixed-size byte blocks ("elements" in the paper's terminology:
// one element is a machine-word multiple, typically a 4KB or 8KB block, so
// that 8*elemSize codewords are encoded in parallel by each block XOR).
// The kernels here are the only place data bytes are actually touched;
// everything above them manipulates element indices.
//
// Every kernel uses the same alignment-aware head/body/tail split: the
// bytes before the destination's first 8-byte-aligned address are handled
// byte-wise, the aligned body runs through a 4-way unrolled loop of 8-byte
// words via encoding/binary (which the compiler lowers to single
// loads/stores on little-endian machines), and the ragged tail — at most 7
// bytes once the head is aligned — finishes byte-wise. Aligning on the
// destination keeps the stores (the expensive half of a read-modify-write
// XOR) on word boundaries even when callers slice mid-element, e.g. the
// element-range views behind the stripe-sharded parallel encoder.
package xorblk

import (
	"encoding/binary"
	"unsafe"
)

// align8 returns the number of leading bytes of b before its first
// 8-byte-aligned address, capped at len(b). XORing exactly these bytes
// byte-wise lets the wide loops run on aligned destination words.
func align8(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	h := int(-uintptr(unsafe.Pointer(&b[0])) & 7)
	if h > len(b) {
		h = len(b)
	}
	return h
}

// Xor sets dst = a ^ b. All three slices must have the same length and may
// not partially overlap (dst == a or dst == b is allowed).
func Xor(dst, a, b []byte) {
	n := len(dst)
	if len(a) != n || len(b) != n {
		panic("xorblk: length mismatch")
	}
	head := align8(dst)
	for i := 0; i < head; i++ {
		dst[i] = a[i] ^ b[i]
	}
	i := head
	for ; i+32 <= n; i += 32 {
		w0 := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
		w1 := binary.LittleEndian.Uint64(a[i+8:]) ^ binary.LittleEndian.Uint64(b[i+8:])
		w2 := binary.LittleEndian.Uint64(a[i+16:]) ^ binary.LittleEndian.Uint64(b[i+16:])
		w3 := binary.LittleEndian.Uint64(a[i+24:]) ^ binary.LittleEndian.Uint64(b[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// XorInto sets dst ^= src. Both slices must have the same length.
func XorInto(dst, src []byte) {
	n := len(dst)
	if len(src) != n {
		panic("xorblk: length mismatch")
	}
	head := align8(dst)
	for i := 0; i < head; i++ {
		dst[i] ^= src[i]
	}
	i := head
	for ; i+32 <= n; i += 32 {
		w0 := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		w1 := binary.LittleEndian.Uint64(dst[i+8:]) ^ binary.LittleEndian.Uint64(src[i+8:])
		w2 := binary.LittleEndian.Uint64(dst[i+16:]) ^ binary.LittleEndian.Uint64(src[i+16:])
		w3 := binary.LittleEndian.Uint64(dst[i+24:]) ^ binary.LittleEndian.Uint64(src[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XorMany sets dst = srcs[0] ^ srcs[1] ^ ... ^ srcs[len-1].
// It requires at least one source. Sources must all match len(dst).
func XorMany(dst []byte, srcs ...[]byte) {
	if len(srcs) == 0 {
		panic("xorblk: XorMany requires at least one source")
	}
	copy(dst, srcs[0])
	i := 1
	for ; i+4 <= len(srcs); i += 4 {
		XorInto4(dst, srcs[i], srcs[i+1], srcs[i+2], srcs[i+3])
	}
	switch len(srcs) - i {
	case 3:
		XorInto3(dst, srcs[i], srcs[i+1], srcs[i+2])
	case 2:
		XorInto2(dst, srcs[i], srcs[i+1])
	case 1:
		XorInto(dst, srcs[i])
	}
}

// IsZero reports whether every byte of b is zero.
func IsZero(b []byte) bool {
	i := 0
	n := len(b)
	var acc uint64
	for ; i+8 <= n; i += 8 {
		acc |= binary.LittleEndian.Uint64(b[i:])
	}
	for ; i < n; i++ {
		acc |= uint64(b[i])
	}
	return acc == 0
}

// XorInto2 sets dst ^= a ^ b in a single pass over dst.
func XorInto2(dst, a, b []byte) {
	n := len(dst)
	if len(a) != n || len(b) != n {
		panic("xorblk: length mismatch")
	}
	head := align8(dst)
	for i := 0; i < head; i++ {
		dst[i] ^= a[i] ^ b[i]
	}
	i := head
	for ; i+32 <= n; i += 32 {
		w0 := binary.LittleEndian.Uint64(dst[i:]) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:])
		w1 := binary.LittleEndian.Uint64(dst[i+8:]) ^
			binary.LittleEndian.Uint64(a[i+8:]) ^
			binary.LittleEndian.Uint64(b[i+8:])
		w2 := binary.LittleEndian.Uint64(dst[i+16:]) ^
			binary.LittleEndian.Uint64(a[i+16:]) ^
			binary.LittleEndian.Uint64(b[i+16:])
		w3 := binary.LittleEndian.Uint64(dst[i+24:]) ^
			binary.LittleEndian.Uint64(a[i+24:]) ^
			binary.LittleEndian.Uint64(b[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i]
	}
}

// XorInto3 sets dst ^= a ^ b ^ c in a single pass over dst.
func XorInto3(dst, a, b, c []byte) {
	n := len(dst)
	if len(a) != n || len(b) != n || len(c) != n {
		panic("xorblk: length mismatch")
	}
	head := align8(dst)
	for i := 0; i < head; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i]
	}
	i := head
	for ; i+32 <= n; i += 32 {
		w0 := binary.LittleEndian.Uint64(dst[i:]) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:]) ^
			binary.LittleEndian.Uint64(c[i:])
		w1 := binary.LittleEndian.Uint64(dst[i+8:]) ^
			binary.LittleEndian.Uint64(a[i+8:]) ^
			binary.LittleEndian.Uint64(b[i+8:]) ^
			binary.LittleEndian.Uint64(c[i+8:])
		w2 := binary.LittleEndian.Uint64(dst[i+16:]) ^
			binary.LittleEndian.Uint64(a[i+16:]) ^
			binary.LittleEndian.Uint64(b[i+16:]) ^
			binary.LittleEndian.Uint64(c[i+16:])
		w3 := binary.LittleEndian.Uint64(dst[i+24:]) ^
			binary.LittleEndian.Uint64(a[i+24:]) ^
			binary.LittleEndian.Uint64(b[i+24:]) ^
			binary.LittleEndian.Uint64(c[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
		binary.LittleEndian.PutUint64(dst[i+16:], w2)
		binary.LittleEndian.PutUint64(dst[i+24:], w3)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i]
	}
}

// XorInto4 sets dst ^= a ^ b ^ c ^ d in a single pass over dst. Four
// sources is the sweet spot for the fused schedules: dst travels through
// the cache once per four accumulations, and the 2-way unrolled body keeps
// ten live streams without spilling on amd64.
func XorInto4(dst, a, b, c, d []byte) {
	n := len(dst)
	if len(a) != n || len(b) != n || len(c) != n || len(d) != n {
		panic("xorblk: length mismatch")
	}
	head := align8(dst)
	for i := 0; i < head; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i]
	}
	i := head
	for ; i+16 <= n; i += 16 {
		w0 := binary.LittleEndian.Uint64(dst[i:]) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:]) ^
			binary.LittleEndian.Uint64(c[i:]) ^
			binary.LittleEndian.Uint64(d[i:])
		w1 := binary.LittleEndian.Uint64(dst[i+8:]) ^
			binary.LittleEndian.Uint64(a[i+8:]) ^
			binary.LittleEndian.Uint64(b[i+8:]) ^
			binary.LittleEndian.Uint64(c[i+8:]) ^
			binary.LittleEndian.Uint64(d[i+8:])
		binary.LittleEndian.PutUint64(dst[i:], w0)
		binary.LittleEndian.PutUint64(dst[i+8:], w1)
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^
				binary.LittleEndian.Uint64(a[i:])^
				binary.LittleEndian.Uint64(b[i:])^
				binary.LittleEndian.Uint64(c[i:])^
				binary.LittleEndian.Uint64(d[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i]
	}
}
