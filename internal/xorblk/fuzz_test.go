package xorblk

import (
	"bytes"
	"testing"
)

// FuzzKernels cross-checks every kernel against the byte-loop reference on
// fuzzer-chosen contents, length, and head misalignment. The seed corpus
// (inline adds plus testdata/fuzz) covers the historical trouble spots:
// non-word lengths, 8/32-byte boundaries, and misaligned heads. `go test`
// always runs the seeds, so the corpus doubles as a regression suite; `go
// test -fuzz=FuzzKernels ./internal/xorblk` explores further.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xa5}, 7), uint8(3))
	f.Add(bytes.Repeat([]byte{0x5a}, 8), uint8(7))
	f.Add(bytes.Repeat([]byte{0x11}, 31), uint8(1))
	f.Add(bytes.Repeat([]byte{0x22}, 33), uint8(5))
	f.Add(bytes.Repeat([]byte{0x33}, 100), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, off uint8) {
		// Split the fuzz input into five equal slices sharing one backing,
		// offset by off&7 so the heads are misaligned.
		o := int(off & 7)
		n := len(data) / 5
		backing := make([]byte, o+5*n)
		copy(backing[o:], data[:5*n])
		at := func(i int) []byte { return backing[o+i*n : o+(i+1)*n : o+(i+1)*n] }
		dst, a, b, c, d := at(0), at(1), at(2), at(3), at(4)

		ref := func(nsrc int) []byte {
			out := append([]byte(nil), dst...)
			for i := 0; i < n; i++ {
				srcs := [][]byte{a, b, c, d}
				for _, s := range srcs[:nsrc] {
					out[i] ^= s[i]
				}
			}
			return out
		}
		run := func(name string, want []byte, fn func(got []byte)) {
			got := append([]byte(nil), dst...)
			fn(got)
			if !bytes.Equal(got, want) {
				t.Errorf("%s diverges from reference (n=%d off=%d)", name, n, o)
			}
		}
		run("XorInto", ref(1), func(got []byte) { XorInto(got, a) })
		run("XorInto2", ref(2), func(got []byte) { XorInto2(got, a, b) })
		run("XorInto3", ref(3), func(got []byte) { XorInto3(got, a, b, c) })
		run("XorInto4", ref(4), func(got []byte) { XorInto4(got, a, b, c, d) })
		run("Xor", ref(1), func(got []byte) { Xor(got, got, a) })
		run("XorMany", ref(4), func(got []byte) {
			tmp := make([]byte, n)
			XorMany(tmp, got, a, b, c, d)
			copy(got, tmp)
		})
		if gotZero := IsZero(dst); gotZero != bytes.Equal(dst, make([]byte, n)) {
			t.Errorf("IsZero wrong (n=%d)", n)
		}
	})
}
