// Package crs implements Cauchy Reed-Solomon RAID-6 coding — the other
// major code family Jerasure provides and the one Plank's FAST'08 paper
// benchmarks the Liberation codes against. A Cauchy matrix over GF(2^8)
// is projected to a bit matrix (each field element becomes a w x w binary
// block whose column c holds the bits of e * 2^c), after which all
// encoding and decoding runs on the same schedule machinery as the
// original Liberation implementation. Unlike the array codes, CRS has no
// prime-number constraint: any k up to 254 works with w = 8.
package crs

import (
	"fmt"

	"repro/internal/bitmatrix"
	"repro/internal/gf"
)

// W is the bit width of the projected field elements (GF(2^8)).
const W = 8

// Generator returns the 2W x kW Cauchy generator bit matrix for k data
// strips and 2 parity strips. The Cauchy matrix uses x_i = i for the
// parity rows and y_j = 2 + j for the data columns, so all x_i + y_j are
// nonzero and distinct.
func Generator(k int) (*bitmatrix.Matrix, error) {
	if k < 1 || k > 254 {
		return nil, fmt.Errorf("crs: need 1 <= k <= 254, got %d", k)
	}
	m := bitmatrix.New(2*W, k*W)
	for i := 0; i < 2; i++ {
		for j := 0; j < k; j++ {
			e := gf.Inv(byte(i) ^ byte(2+j)) // the Cauchy element 1/(x_i + y_j)
			// Project e into an 8x8 bit block: column c is e * 2^c.
			col := e
			for c := 0; c < W; c++ {
				for r := 0; r < W; r++ {
					if col&(1<<r) != 0 {
						m.Set(i*W+r, j*W+c, true)
					}
				}
				col = gf.Mul(col, 2)
			}
		}
	}
	return m, nil
}

// New returns a schedule-driven Cauchy Reed-Solomon RAID-6 code with k
// data strips, using smart scheduling for both directions (Jerasure's
// default for CRS).
func New(k int) (*bitmatrix.Code, error) {
	gen, err := Generator(k)
	if err != nil {
		return nil, err
	}
	return bitmatrix.NewCode(fmt.Sprintf("crs(k=%d)", k), k, W, gen,
		bitmatrix.Smart, bitmatrix.Smart)
}
