package crs_test

import (
	"testing"

	"repro/internal/codetest"
	"repro/internal/crs"
)

func TestConformance(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10} {
		c, err := crs.New(k)
		if err != nil {
			t.Fatal(err)
		}
		c.CacheDecodeSchedules = true
		t.Run(c.Name(), func(t *testing.T) { codetest.Run(t, c) })
	}
}
