package crs

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gf"
)

func TestIsMDS(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8, 13} {
		c, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CheckMDS(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestEncodeMatchesFieldArithmetic(t *testing.T) {
	// The bit-matrix encoding must agree with direct GF(2^8) evaluation
	// of the Cauchy system: parity_i = sum_j 1/(x_i + y_j) * D_j, where
	// each strip is W bytes (one byte per bit-row, element size 1).
	for _, k := range []int{2, 4, 7} {
		c, _ := New(k)
		s := core.NewStripe(k, W, 1)
		rng := rand.New(rand.NewSource(int64(k)))
		s.FillRandom(rng)
		if err := c.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		// A strip of W single-byte elements encodes 8 interleaved
		// codewords; codeword b consists of bit b of each element. Check
		// every codeword against field arithmetic.
		for bit := 0; bit < 8; bit++ {
			word := func(col int) byte {
				var v byte
				for r := 0; r < W; r++ {
					if s.Elem(col, r)[0]&(1<<bit) != 0 {
						v |= 1 << r
					}
				}
				return v
			}
			for i := 0; i < 2; i++ {
				var want byte
				for j := 0; j < k; j++ {
					want ^= gf.Mul(gf.Inv(byte(i)^byte(2+j)), word(j))
				}
				if got := word(k + i); got != want {
					t.Errorf("k=%d bit=%d parity %d: got %02x want %02x",
						k, bit, i, got, want)
				}
			}
		}
	}
}

func TestDecodeAllPatterns(t *testing.T) {
	for _, k := range []int{2, 5, 9} {
		c, _ := New(k)
		c.CacheDecodeSchedules = true
		orig := core.NewStripe(k, W, 16)
		orig.FillRandom(rand.New(rand.NewSource(int64(3 * k))))
		if err := c.Encode(orig, nil); err != nil {
			t.Fatal(err)
		}
		for _, pat := range core.ErasurePairs(k + 2) {
			s := orig.Clone()
			rand.New(rand.NewSource(9)).Read(s.Strips[pat[0]])
			rand.New(rand.NewSource(10)).Read(s.Strips[pat[1]])
			if err := c.Decode(s, pat[:], nil); err != nil {
				t.Fatalf("k=%d erased=%v: %v", k, pat, err)
			}
			if !s.Equal(orig) {
				t.Errorf("k=%d erased=%v: decode failed", k, pat)
			}
		}
	}
}

func TestBadParams(t *testing.T) {
	for _, k := range []int{0, -1, 255} {
		if _, err := New(k); err == nil {
			t.Errorf("New(%d) succeeded", k)
		}
	}
}
