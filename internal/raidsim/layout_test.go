package raidsim

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/liberation"
)

func TestLayoutsRoundTrip(t *testing.T) {
	for _, layout := range []Layout{LeftSymmetric, RightAsymmetric, DedicatedParity} {
		code, _ := liberation.New(5, 5)
		a, err := New(code, 32, 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SetLayout(layout); err != nil {
			t.Fatal(err)
		}
		if a.Layout() != layout {
			t.Fatalf("layout not set")
		}
		rng := rand.New(rand.NewSource(int64(layout)))
		data := make([]byte, a.Capacity())
		rng.Read(data)
		if err := a.Write(0, data); err != nil {
			t.Fatal(err)
		}
		// Fail two disks, read degraded, rebuild, verify.
		if err := a.FailDisk(1); err != nil {
			t.Fatal(err)
		}
		if err := a.FailDisk(5); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := a.Read(0, got); err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%v: degraded read wrong", layout)
		}
		if err := a.Rebuild(); err != nil {
			t.Fatal(err)
		}
		if err := a.Read(0, got); err != nil || !bytes.Equal(got, data) {
			t.Errorf("%v: post-rebuild read wrong", layout)
		}
	}
}

func TestParityDistribution(t *testing.T) {
	code, _ := liberation.New(5, 5)
	// 14 stripes over 7 disks: rotating layouts give each disk exactly
	// 14*2/7 = 4 parity strips; dedicated gives 14 each to the last two.
	a, _ := New(code, 8, 14)
	for _, tc := range []struct {
		layout Layout
		check  func([]int) bool
	}{
		{LeftSymmetric, func(d []int) bool {
			for _, n := range d {
				if n != 4 {
					return false
				}
			}
			return true
		}},
		{RightAsymmetric, func(d []int) bool {
			total := 0
			for _, n := range d {
				total += n
			}
			return total == 28
		}},
		{DedicatedParity, func(d []int) bool {
			return d[5] == 14 && d[6] == 14 && d[0] == 0
		}},
	} {
		if err := a.SetLayout(tc.layout); err != nil {
			t.Fatal(err)
		}
		dist := a.ParityDistribution()
		if !tc.check(dist) {
			t.Errorf("%v: parity distribution %v", tc.layout, dist)
		}
	}
	if err := a.SetLayout(Layout(99)); err == nil {
		t.Error("bogus layout accepted")
	}
	if Layout(99).String() == "" || LeftSymmetric.String() != "left-symmetric" {
		t.Error("Layout.String broken")
	}
}
