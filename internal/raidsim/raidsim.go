// Package raidsim is an in-memory disk-array simulator built on the
// erasure codes in this repository. It provides the system-level behaviors
// the paper's motivation appeals to: striped reads and writes with
// rotating parity placement, small writes with incremental parity updates
// (where the Liberation codes' update-optimality shows up as bytes not
// written), degraded reads under up to m disk failures (m being the
// code's parity count — two for the RAID-6 families, three for the
// triple-parity RS family), full rebuilds, and scrubbing that detects
// and repairs silent single-strip corruption.
//
// Disks are byte buffers; an element is the unit of disk access (a sector
// or an SSD page), a strip is W elements, and each stripe holds K data
// strips plus the code's m parity strips, placed with left-symmetric
// rotation so parity traffic spreads across all spindles.
package raidsim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// Errors returned by the array.
var (
	ErrTooManyFailures = errors.New("raidsim: more disks failed than the code tolerates")
	ErrOutOfRange      = errors.New("raidsim: I/O beyond array capacity")
	ErrDiskState       = errors.New("raidsim: invalid disk state for operation")
)

// Stats accumulates the array's operation counters.
type Stats struct {
	StripeEncodes    uint64 // full-stripe parity computations
	SmallWrites      uint64 // element-granularity read-modify-writes
	ParityElemWrites uint64 // parity elements rewritten by small writes
	DegradedReads    uint64 // stripe reads served through reconstruction
	StripesRebuilt   uint64
	ScrubRepairs     uint64
	Ops              core.Ops // XOR/copy counts across all operations
}

// Array is a simulated disk array.
type Array struct {
	code      core.Code
	updater   core.Updater         // non-nil when the code supports small writes
	corrector core.ColumnCorrector // non-nil when scrubbing can localize errors
	k, m, w   int
	n         int // k + m disks
	elemSize  int
	stripes   int

	disks  [][]byte
	failed []bool
	layout Layout

	obs *obs.Registry // optional metrics sink (see Instrument)

	Stats Stats
}

// New builds an array over the given code with the given element size and
// stripe count. Total data capacity is stripes * K * W * elemSize bytes.
func New(code core.Code, elemSize, stripes int) (*Array, error) {
	if elemSize < 1 || stripes < 1 {
		return nil, fmt.Errorf("%w: elemSize=%d stripes=%d", core.ErrParams, elemSize, stripes)
	}
	a := &Array{
		code:     code,
		k:        code.K(),
		m:        code.M(),
		w:        code.W(),
		n:        code.K() + code.M(),
		elemSize: elemSize,
		stripes:  stripes,
	}
	a.updater, _ = code.(core.Updater)
	a.corrector, _ = code.(core.ColumnCorrector)
	stripBytes := a.w * elemSize
	a.disks = make([][]byte, a.n)
	for i := range a.disks {
		a.disks[i] = make([]byte, stripes*stripBytes)
	}
	a.failed = make([]bool, a.n)
	return a, nil
}

// Capacity returns the usable data bytes of the array.
func (a *Array) Capacity() int { return a.stripes * a.k * a.w * a.elemSize }

// NumDisks returns K+M.
func (a *Array) NumDisks() int { return a.n }

// ElemSize returns the element size in bytes.
func (a *Array) ElemSize() int { return a.elemSize }

// diskFor returns the disk holding logical strip (0..K+M-1, the parity
// strips last: K = P, K+1 = Q for the RAID-6 codes) of the given stripe
// under the configured layout.
func (a *Array) diskFor(stripe, strip int) int {
	return a.layout.place(stripe, strip, a.n)
}

// strip returns the byte slice of the given logical strip of a stripe.
func (a *Array) strip(stripe, strip int) []byte {
	d := a.diskFor(stripe, strip)
	off := stripe * a.w * a.elemSize
	return a.disks[d][off : off+a.w*a.elemSize : off+a.w*a.elemSize]
}

// view materializes a stripe as a core.Stripe whose strips alias the disk
// buffers (no copying).
func (a *Array) view(stripe int) *core.Stripe {
	s := &core.Stripe{K: a.k, W: a.w, ElemSize: a.elemSize, Strips: make([][]byte, a.n)}
	for t := 0; t < a.n; t++ {
		s.Strips[t] = a.strip(stripe, t)
	}
	return s
}

// failedStrips returns the logical strips of a stripe that live on failed
// disks.
func (a *Array) failedStrips(stripe int) []int {
	var out []int
	for t := 0; t < a.n; t++ {
		if a.failed[a.diskFor(stripe, t)] {
			out = append(out, t)
		}
	}
	return out
}

// numFailed returns the count of failed disks.
func (a *Array) numFailed() int {
	n := 0
	for _, f := range a.failed {
		if f {
			n++
		}
	}
	return n
}

// locate maps a logical data offset to (stripe, strip, element row, byte
// offset inside the element).
func (a *Array) locate(off int) (stripe, strip, row, inElem int) {
	perStripe := a.k * a.w * a.elemSize
	stripe = off / perStripe
	rem := off % perStripe
	strip = rem / (a.w * a.elemSize)
	rem %= a.w * a.elemSize
	row = rem / a.elemSize
	inElem = rem % a.elemSize
	return
}

// FailDisk marks a disk as failed and destroys its contents. At most m
// disks (the code's parity count) may be failed at a time.
func (a *Array) FailDisk(d int) error {
	if d < 0 || d >= a.n {
		return fmt.Errorf("%w: disk %d", core.ErrParams, d)
	}
	if a.failed[d] {
		return nil
	}
	if a.numFailed() >= a.m {
		return ErrTooManyFailures
	}
	a.failed[d] = true
	for i := range a.disks[d] {
		a.disks[d][i] = 0xee // garbage, never trusted while failed
	}
	return nil
}

// Rebuild reconstructs the contents of all failed disks onto fresh media
// and returns them to service.
func (a *Array) Rebuild() error {
	if a.numFailed() == 0 {
		return nil
	}
	sp := a.span("raid.rebuild")
	rebuilt := 0
	a.obs.SetGauge("raid.rebuild.progress", 0)
	for stripe := 0; stripe < a.stripes; stripe++ {
		erased := a.failedStrips(stripe)
		if len(erased) == 0 {
			continue
		}
		if err := a.code.Decode(a.view(stripe), erased, &a.Stats.Ops); err != nil {
			sp.end(a, rebuilt*a.k*a.w*a.elemSize, err)
			return fmt.Errorf("raidsim: rebuilding stripe %d: %w", stripe, err)
		}
		a.Stats.StripesRebuilt++
		a.count("raid.stripes_rebuilt", 1)
		rebuilt++
		a.obs.SetGauge("raid.rebuild.progress", float64(stripe+1)/float64(a.stripes))
	}
	for d := range a.failed {
		a.failed[d] = false
	}
	a.obs.SetGauge("raid.rebuild.progress", 1)
	sp.end(a, rebuilt*a.k*a.w*a.elemSize, nil)
	return nil
}

// ReplaceDisk swaps in a blank disk for a failed one and reconstructs only
// that disk's strips.
func (a *Array) ReplaceDisk(d int) error {
	if d < 0 || d >= a.n {
		return fmt.Errorf("%w: disk %d", core.ErrParams, d)
	}
	if !a.failed[d] {
		return fmt.Errorf("%w: disk %d is not failed", ErrDiskState, d)
	}
	sp := a.span("raid.rebuild")
	a.obs.SetGauge("raid.rebuild.progress", 0)
	for stripe := 0; stripe < a.stripes; stripe++ {
		erased := a.failedStrips(stripe)
		if err := a.code.Decode(a.view(stripe), erased, &a.Stats.Ops); err != nil {
			sp.end(a, stripe*a.k*a.w*a.elemSize, err)
			return fmt.Errorf("raidsim: rebuilding stripe %d: %w", stripe, err)
		}
		a.Stats.StripesRebuilt++
		a.count("raid.stripes_rebuilt", 1)
		a.obs.SetGauge("raid.rebuild.progress", float64(stripe+1)/float64(a.stripes))
	}
	a.failed[d] = false
	sp.end(a, a.stripes*a.k*a.w*a.elemSize, nil)
	return nil
}
