package raidsim_test

import (
	"bytes"
	"fmt"

	"repro/internal/liberation"
	"repro/internal/raidsim"
)

// A complete array lifecycle: write, double failure, degraded read,
// rebuild.
func Example() {
	code, _ := liberation.New(4, 5)
	array, _ := raidsim.New(code, 16, 4)

	data := bytes.Repeat([]byte("raid6!"), array.Capacity()/6+1)[:array.Capacity()]
	_ = array.Write(0, data)

	_ = array.FailDisk(0)
	_ = array.FailDisk(3)
	got := make([]byte, 12)
	_ = array.Read(0, got)
	fmt.Printf("degraded read: %s\n", got)

	_ = array.Rebuild()
	full := make([]byte, array.Capacity())
	_ = array.Read(0, full)
	fmt.Printf("intact after rebuild: %v\n", bytes.Equal(full, data))
	// Output:
	// degraded read: raid6!raid6!
	// intact after rebuild: true
}

// Scrubbing finds and repairs silent corruption, attributing it to the
// right disk.
func ExampleArray_Scrub() {
	code, _ := liberation.New(4, 5)
	array, _ := raidsim.New(code, 16, 2)
	_ = array.Write(0, make([]byte, array.Capacity()))

	_ = array.CorruptDisk(2, 5, 3, 0xff)
	results, _ := array.Scrub()
	for _, r := range results {
		fmt.Printf("stripe %d repaired on disk %d\n", r.Stripe, r.Disk)
	}
	results, _ = array.Scrub()
	fmt.Printf("clean after repair: %v\n", len(results) == 0)
	// Output:
	// stripe 0 repaired on disk 2
	// clean after repair: true
}
