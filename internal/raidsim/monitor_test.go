package raidsim_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/codes"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/raidsim"
)

// TestMonitorObservesScrub wires an instrumented array into the
// monitoring plane: injected corruption scrubbed out must fire a scrub
// alert, indict the corrupted disk in the per-disk health targets, and
// resolve once the repairs age out of the rule window. The array is the
// signal source; the clock and every transition are deterministic.
func TestMonitorObservesScrub(t *testing.T) {
	code, err := codes.New("liberation", 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := raidsim.New(code, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	arr.Instrument(reg)

	now := time.Date(2026, 8, 8, 6, 0, 0, 0, time.UTC)
	mon, err := monitor.New(monitor.Config{
		Registry: reg,
		Window:   64,
		Rules: []monitor.Rule{{
			Name: "scrub-repairs", Metric: "raid.scrub_repairs",
			Kind: monitor.RuleThreshold, Op: ">", Value: 0,
			Window: monitor.Duration(5 * time.Second), Severity: monitor.SeverityWarning,
		}},
		Tracer:       obs.NewTracer(obs.NewFlightRecorder(64)),
		Now:          func() time.Time { return now },
		HealthWindow: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := func() []monitor.Transition {
		tr := mon.Tick()
		now = now.Add(time.Second)
		return tr
	}

	buf := make([]byte, arr.Capacity())
	if err := arr.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if tr := tick(); len(tr) != 0 {
		t.Fatalf("quiet tick transitioned: %+v", tr)
	}

	// Corrupt disk 2, scrub it clean: raid.scrub_repairs and the
	// per-disk counter move.
	const victim = 2
	if err := arr.CorruptDisk(victim, 0, 4, 0x5a); err != nil {
		t.Fatal(err)
	}
	results, err := arr.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("scrub repaired nothing")
	}

	tr := tick()
	// For is zero: the rule passes through pending and fires in the same
	// round.
	states := make([]string, len(tr))
	for i, x := range tr {
		states[i] = x.To
	}
	if got := strings.Join(states, " "); got != "pending firing" {
		t.Fatalf("post-scrub transitions = %q, want \"pending firing\"", got)
	}

	h := mon.Health()
	if h.Verdict != monitor.Degraded {
		t.Fatalf("health = %v, want degraded (%+v)", h.Verdict, h.Reasons)
	}
	if got := h.Targets["disk.2"]; got != monitor.Degraded {
		t.Errorf("disk.2 target = %v, want degraded (targets %v)", got, h.Targets)
	}
	found := false
	for _, r := range h.Reasons {
		if r.Target == "disk.2" && strings.Contains(r.Metric, `raid.scrub.repairs{disk="2"}`) {
			found = true
		}
	}
	if !found {
		t.Errorf("no reason indicting disk.2 in %+v", h.Reasons)
	}

	// The repairs age out of the 5s rule window → resolved, healthy.
	var resolved bool
	for i := 0; i < 10 && !resolved; i++ {
		for _, x := range tick() {
			resolved = resolved || x.To == "resolved"
		}
	}
	if !resolved {
		t.Fatal("scrub alert never resolved after the repairs aged out")
	}
	if h := mon.Health(); h.Verdict != monitor.Healthy {
		t.Errorf("post-resolution health = %v (%+v), want healthy", h.Verdict, h.Reasons)
	}
}
