package raidsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// Instrument attaches a metrics registry to the array. Every subsequent
// Read/Write/Rebuild/Scrub records a span (raid.read, raid.write,
// raid.rebuild, raid.scrub) carrying latency, bytes, and the element-
// operation counts of the coding work it triggered; the array-level
// event counters (degraded reads, small writes, scrub repairs by disk)
// and the raid.rebuild.progress gauge update live. When the underlying
// code is obs.Observable it is instrumented with the same registry, so
// the per-algorithm spans (liberation.encode, rdp.decode, ...) nest
// alongside. Pass nil to detach.
func (a *Array) Instrument(reg *obs.Registry) {
	a.obs = reg
	if o, ok := a.code.(obs.Observable); ok {
		o.Instrument(reg)
	}
}

// Registry returns the metrics sink attached with Instrument (nil when
// uninstrumented).
func (a *Array) Registry() *obs.Registry { return a.obs }

// Metrics captures the current metric state. Safe on an uninstrumented
// array (returns an empty snapshot).
func (a *Array) Metrics() obs.Snapshot { return a.obs.Snapshot() }

// span starts an observation of one array operation, remembering the
// ops counter position so only the coding work of this call is billed
// to it.
func (a *Array) span(name string) *arraySpan {
	if a.obs == nil {
		return nil
	}
	return &arraySpan{sp: obs.StartSpan(a.obs, name), before: a.Stats.Ops}
}

type arraySpan struct {
	sp     *obs.Span
	before core.Ops
}

// end closes the span, attributing the ops delta since span() and the
// given payload size.
func (s *arraySpan) end(a *Array, bytes int, err error) {
	if s == nil {
		return
	}
	delta := a.Stats.Ops
	delta.XORs -= s.before.XORs
	delta.Copies -= s.before.Copies
	delta.Zeros -= s.before.Zeros
	s.sp.Bytes(bytes).Units(1).Ops(delta).End(err)
}

// count bumps a named event counter (no-op when uninstrumented).
func (a *Array) count(name string, n uint64) {
	a.obs.Count(name, n)
}

// countDisk bumps a disk-labeled event counter: the snapshot renders
// the child as name{disk="N"}, the family total under the bare name,
// and the legacy dotted alias name.disk.N for old dashboards.
func (a *Array) countDisk(name string, disk int, n uint64) {
	a.obs.CountWith(name, n, obs.Li("disk", disk))
}

// scrubRepairCounter names the flat compatibility alias of the per-disk
// scrub repair series (the child itself is raid.scrub.repairs{disk=N}).
func scrubRepairCounter(disk int) string {
	return fmt.Sprintf("raid.scrub.repairs.disk.%d", disk)
}
