package raidsim

import (
	"fmt"

	"repro/internal/core"
)

// Read copies len(p) data bytes starting at logical offset off into p.
// Stripes touched by failed disks are served through reconstruction
// (degraded reads) without modifying the array.
func (a *Array) Read(off int, p []byte) error {
	if off < 0 || off+len(p) > a.Capacity() {
		return ErrOutOfRange
	}
	if a.numFailed() > a.m {
		return ErrTooManyFailures
	}
	sp, total := a.span("raid.read"), len(p)
	defer func() { sp.end(a, total, nil) }()
	for len(p) > 0 {
		stripe, strip, row, inElem := a.locate(off)
		stripData := a.stripData(stripe)
		pos := strip*a.w*a.elemSize + row*a.elemSize + inElem
		n := copy(p, stripData[pos:])
		p = p[n:]
		off += n
	}
	return nil
}

// stripData returns the stripe's data region as one contiguous-looking
// slice; if any strip of the stripe lives on a failed disk, the stripe is
// reconstructed into scratch first.
func (a *Array) stripData(stripe int) []byte {
	erased := a.failedStrips(stripe)
	out := make([]byte, a.k*a.w*a.elemSize)
	if len(erased) == 0 {
		for t := 0; t < a.k; t++ {
			copy(out[t*a.w*a.elemSize:], a.strip(stripe, t))
		}
		return out
	}
	// Degraded: reconstruct into a scratch stripe.
	a.Stats.DegradedReads++
	a.count("raid.degraded_reads", 1)
	scratch := core.NewStripeM(a.k, a.m, a.w, a.elemSize)
	for t := 0; t < a.n; t++ {
		copy(scratch.Strips[t], a.strip(stripe, t))
	}
	if err := a.code.Decode(scratch, erased, &a.Stats.Ops); err != nil {
		panic(fmt.Sprintf("raidsim: degraded read of stripe %d: %v", stripe, err))
	}
	for t := 0; t < a.k; t++ {
		copy(out[t*a.w*a.elemSize:], scratch.Strips[t])
	}
	return out
}

// Write stores len(p) data bytes at logical offset off, maintaining
// parity. Full-stripe spans are re-encoded (one StripeEncode); partial
// spans become element-granularity small writes, using the code's
// incremental Update when available. Writing to an array with failed
// disks re-encodes the affected stripes (write-degraded mode).
func (a *Array) Write(off int, p []byte) error {
	if off < 0 || off+len(p) > a.Capacity() {
		return ErrOutOfRange
	}
	sp, total := a.span("raid.write"), len(p)
	if a.numFailed() > 0 {
		err := a.writeDegraded(off, p)
		sp.end(a, total, err)
		return err
	}
	var err error
	defer func() { sp.end(a, total, err) }()
	perStripe := a.k * a.w * a.elemSize
	for len(p) > 0 {
		stripe := off / perStripe
		stripeOff := off % perStripe
		n := perStripe - stripeOff
		if n > len(p) {
			n = len(p)
		}
		if stripeOff == 0 && n == perStripe {
			a.writeFullStripe(stripe, p[:n])
		} else if err = a.writePartial(stripe, stripeOff, p[:n]); err != nil {
			return err
		}
		p = p[n:]
		off += n
	}
	return nil
}

func (a *Array) writeFullStripe(stripe int, data []byte) {
	for t := 0; t < a.k; t++ {
		copy(a.strip(stripe, t), data[t*a.w*a.elemSize:])
	}
	if err := a.code.Encode(a.view(stripe), &a.Stats.Ops); err != nil {
		panic(fmt.Sprintf("raidsim: encode stripe %d: %v", stripe, err))
	}
	a.Stats.StripeEncodes++
	a.count("raid.stripe_encodes", 1)
}

// writePartial performs element-granularity read-modify-writes within one
// stripe.
func (a *Array) writePartial(stripe, stripeOff int, data []byte) error {
	view := a.view(stripe)
	old := make([]byte, a.elemSize)
	for len(data) > 0 {
		strip := stripeOff / (a.w * a.elemSize)
		rem := stripeOff % (a.w * a.elemSize)
		row := rem / a.elemSize
		inElem := rem % a.elemSize
		n := a.elemSize - inElem
		if n > len(data) {
			n = len(data)
		}
		elem := view.Elem(strip, row)
		copy(old, elem)
		copy(elem[inElem:], data[:n])
		a.Stats.SmallWrites++
		a.count("raid.small_writes", 1)
		if a.updater != nil {
			touched, err := a.updater.Update(view, strip, row, old, &a.Stats.Ops)
			if err != nil {
				return err
			}
			a.Stats.ParityElemWrites += uint64(touched)
			a.count("raid.parity_elem_writes", uint64(touched))
		} else {
			if err := a.code.Encode(view, &a.Stats.Ops); err != nil {
				return err
			}
			a.Stats.StripeEncodes++
			a.count("raid.stripe_encodes", 1)
			a.Stats.ParityElemWrites += uint64(a.m * a.w)
			a.count("raid.parity_elem_writes", uint64(a.m*a.w))
		}
		data = data[n:]
		stripeOff += n
	}
	return nil
}

// writeDegraded handles writes while disks are failed: affected stripes
// are reconstructed, patched, and re-encoded; strips on failed disks are
// left untouched (they will be rebuilt when the disk is replaced).
func (a *Array) writeDegraded(off int, p []byte) error {
	perStripe := a.k * a.w * a.elemSize
	for len(p) > 0 {
		stripe := off / perStripe
		stripeOff := off % perStripe
		n := perStripe - stripeOff
		if n > len(p) {
			n = len(p)
		}
		erased := a.failedStrips(stripe)
		scratch := core.NewStripeM(a.k, a.m, a.w, a.elemSize)
		for t := 0; t < a.n; t++ {
			copy(scratch.Strips[t], a.strip(stripe, t))
		}
		if len(erased) > 0 {
			if err := a.code.Decode(scratch, erased, &a.Stats.Ops); err != nil {
				return fmt.Errorf("raidsim: degraded write stripe %d: %w", stripe, err)
			}
			a.Stats.DegradedReads++
			a.count("raid.degraded_reads", 1)
		}
		// Patch the data region and re-encode.
		for i := 0; i < n; i++ {
			pos := stripeOff + i
			strip := pos / (a.w * a.elemSize)
			scratch.Strips[strip][pos%(a.w*a.elemSize)] = p[i]
		}
		if err := a.code.Encode(scratch, &a.Stats.Ops); err != nil {
			return err
		}
		a.Stats.StripeEncodes++
		a.count("raid.stripe_encodes", 1)
		for t := 0; t < a.n; t++ {
			if !a.failed[a.diskFor(stripe, t)] {
				copy(a.strip(stripe, t), scratch.Strips[t])
			}
		}
		p = p[n:]
		off += n
	}
	return nil
}

// CorruptDisk flips bytes of a healthy disk in place — the silent data
// corruption that scrubbing exists to catch. Test/demo hook.
func (a *Array) CorruptDisk(d, off, n int, mask byte) error {
	if d < 0 || d >= a.n || a.failed[d] {
		return fmt.Errorf("%w: disk %d", ErrDiskState, d)
	}
	if off < 0 || off+n > len(a.disks[d]) {
		return ErrOutOfRange
	}
	for i := 0; i < n; i++ {
		a.disks[d][off+i] ^= mask
	}
	return nil
}

// ScrubResult reports one stripe repair.
type ScrubResult struct {
	Stripe int
	Disk   int
	Strip  int // logical strip index that was repaired
}

// Scrub verifies every stripe and repairs single-strip corruption when
// the code supports localization (the core.ColumnCorrector capability,
// i.e. the paper's single-column error correction). It returns the
// repairs made; stripes whose corruption cannot be localized are
// reported with Strip == -1 and left untouched.
func (a *Array) Scrub() ([]ScrubResult, error) {
	if a.numFailed() > 0 {
		return nil, fmt.Errorf("%w: scrub requires all disks online", ErrDiskState)
	}
	sp := a.span("raid.scrub")
	var results []ScrubResult
	var scrubErr error
	defer func() { sp.end(a, a.stripes*a.k*a.w*a.elemSize, scrubErr) }()
	for stripe := 0; stripe < a.stripes; stripe++ {
		view := a.view(stripe)
		if a.corrector != nil {
			col, err := a.corrector.CorrectColumn(view, &a.Stats.Ops)
			if err != nil {
				results = append(results, ScrubResult{Stripe: stripe, Disk: -1, Strip: -1})
				continue
			}
			if col != core.CleanColumn {
				a.Stats.ScrubRepairs++
				disk := a.diskFor(stripe, col)
				a.count("raid.scrub_repairs", 1)
				a.countDisk("raid.scrub.repairs", disk, 1)
				results = append(results, ScrubResult{
					Stripe: stripe, Disk: disk, Strip: col})
			}
			continue
		}
		// Generic codes: detect by re-encoding into scratch and comparing.
		scratch := view.Clone()
		if err := a.code.Encode(scratch, &a.Stats.Ops); err != nil {
			scrubErr = err
			return results, err
		}
		clean := true
		for t := a.k; t < a.n; t++ {
			if string(scratch.Strips[t]) != string(view.Strips[t]) {
				clean = false
			}
		}
		if !clean {
			results = append(results, ScrubResult{Stripe: stripe, Disk: -1, Strip: -1})
		}
	}
	return results, nil
}
