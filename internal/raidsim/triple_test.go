package raidsim

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/rs"
)

// TestTripleFailureRoundTrip drives a triple-parity rs array through the
// full failure ladder: write, fail three disks (data and parity mixed),
// read degraded byte-identically, refuse a fourth failure, rebuild, and
// survive degraded writes with all three parities down.
func TestTripleFailureRoundTrip(t *testing.T) {
	code, err := rs.NewM(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(code, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumDisks() != 7 {
		t.Fatalf("k=4 m=3 array has %d disks, want 7", a.NumDisks())
	}
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, a.Capacity())
	rng.Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{0, 2, 5} {
		if err := a.FailDisk(d); err != nil {
			t.Fatalf("FailDisk(%d): %v", d, err)
		}
	}
	got := make([]byte, len(data))
	if err := a.Read(0, got); err != nil {
		t.Fatalf("triple-degraded read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("triple-degraded read corrupted data")
	}
	if err := a.FailDisk(6); err != ErrTooManyFailures {
		t.Errorf("fourth failure gave %v, want ErrTooManyFailures", err)
	}

	// Writes while triple-degraded must land correctly after rebuild.
	patch := make([]byte, 200)
	rng.Read(patch)
	if err := a.Write(51, patch); err != nil {
		t.Fatalf("triple-degraded write: %v", err)
	}
	copy(data[51:], patch)
	if err := a.Rebuild(); err != nil {
		t.Fatalf("rebuild of three disks: %v", err)
	}
	before := a.Stats.DegradedReads
	if err := a.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data wrong after triple rebuild")
	}
	if a.Stats.DegradedReads != before {
		t.Error("reads still degraded after rebuild")
	}
}

// TestTripleScrubDetects checks the scrub path on an m=3 array: rs is
// not a column corrector, so scrub detects the inconsistent stripe
// without localizing it; failing the corrupted disk and rebuilding then
// restores the array through the erasure path.
func TestTripleScrubDetects(t *testing.T) {
	code, err := rs.NewM(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(code, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, a.Capacity())
	rng.Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.CorruptDisk(3, 5, 2, 0xff); err != nil {
		t.Fatal(err)
	}
	results, err := a.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("scrub missed the corrupted stripe")
	}
	for _, r := range results {
		if r.Strip != -1 {
			t.Errorf("generic scrub claimed to localize strip %d", r.Strip)
		}
	}
	// The operator's next move: fail the suspect disk and rebuild it
	// through the erasure path.
	if err := a.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := a.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("fail + rebuild did not restore the corrupted disk")
	}
}
