package raidsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/liberation"
	"repro/internal/obs"
)

// newTestRegistry attaches a fresh registry to the array.
func newTestRegistry(a *Array) *obs.Registry {
	reg := obs.NewRegistry()
	a.Instrument(reg)
	return reg
}

// TestMetricsMatchStats drives the full operation mix and checks that
// the registry's counters agree exactly with the legacy Stats struct,
// that the array spans carry the coding work, and that the rebuild
// progress gauge completes at 1.
func TestMetricsMatchStats(t *testing.T) {
	code, err := liberation.New(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(code, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	newTestRegistry(a)

	rng := rand.New(rand.NewSource(3))
	data := make([]byte, a.Capacity())
	rng.Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	patch := make([]byte, 50)
	rng.Read(patch)
	if err := a.Write(21, patch); err != nil { // small writes
		t.Fatal(err)
	}
	copy(data[21:], patch)

	if err := a.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := a.Read(0, got); err != nil { // degraded reads
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read mismatch")
	}
	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}

	if err := a.CorruptDisk(1, 5, 3, 0xa5); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Scrub(); err != nil {
		t.Fatal(err)
	}

	snap := a.Metrics()
	check := func(name string, want uint64) {
		t.Helper()
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d (Stats agreement)", name, got, want)
		}
	}
	check("raid.stripe_encodes", a.Stats.StripeEncodes)
	check("raid.small_writes", a.Stats.SmallWrites)
	check("raid.parity_elem_writes", a.Stats.ParityElemWrites)
	check("raid.degraded_reads", a.Stats.DegradedReads)
	check("raid.stripes_rebuilt", a.Stats.StripesRebuilt)
	check("raid.scrub_repairs", a.Stats.ScrubRepairs)
	if a.Stats.DegradedReads == 0 || a.Stats.SmallWrites == 0 || a.Stats.ScrubRepairs == 0 {
		t.Fatalf("workload did not exercise all paths: %+v", a.Stats)
	}

	// Per-disk scrub repair attribution: exactly the corrupted disk.
	repairs := uint64(0)
	for d := 0; d < a.NumDisks(); d++ {
		repairs += snap.Counters[fmt.Sprintf("raid.scrub.repairs.disk.%d", d)]
	}
	if repairs != a.Stats.ScrubRepairs {
		t.Errorf("per-disk scrub repairs sum %d, want %d", repairs, a.Stats.ScrubRepairs)
	}
	if snap.Counters["raid.scrub.repairs.disk.1"] == 0 {
		t.Error("repair not attributed to corrupted disk 1")
	}

	if g := snap.Gauges["raid.rebuild.progress"]; g != 1 {
		t.Errorf("rebuild progress gauge = %v, want 1", g)
	}

	// Spans exist and the coding layers nest under the same registry.
	for _, name := range []string{"raid.read", "raid.write", "raid.rebuild", "raid.scrub"} {
		st, ok := snap.Spans[name]
		if !ok || st.Calls == 0 {
			t.Errorf("span %s missing from snapshot", name)
			continue
		}
		if name != "raid.read" && st.XORs == 0 {
			t.Errorf("span %s recorded no XOR work", name)
		}
	}
	for _, name := range []string{"liberation.encode", "liberation.decode", "liberation.update", "liberation.correct"} {
		if st, ok := snap.Spans[name]; !ok || st.Calls == 0 {
			t.Errorf("nested span %s missing — Instrument should reach the code", name)
		}
	}
}

// TestMetricsConcurrentReaders runs array traffic while other goroutines
// snapshot and render the registry — the -race acceptance test for this
// package. The array itself is single-writer (as documented); only the
// registry is shared.
func TestMetricsConcurrentReaders(t *testing.T) {
	code, err := liberation.New(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(code, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(a)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink bytes.Buffer
			for {
				select {
				case <-done:
					return
				default:
					snap := reg.Snapshot()
					sink.Reset()
					snap.WriteText(&sink)
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(9))
	buf := make([]byte, a.Capacity())
	rng.Read(buf)
	for i := 0; i < 30; i++ {
		if err := a.Write(0, buf); err != nil {
			t.Fatal(err)
		}
		if err := a.Write(13, buf[:40]); err != nil {
			t.Fatal(err)
		}
		if err := a.Read(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	if st := a.Metrics().Spans["raid.write"]; st.Calls != 60 {
		t.Errorf("raid.write calls = %d, want 60", st.Calls)
	}
}

// TestUninstrumentedArrayIsUnaffected checks the nil-registry path: all
// operations work, Metrics() returns an empty snapshot, and no metric
// machinery is reachable.
func TestUninstrumentedArrayIsUnaffected(t *testing.T) {
	code, err := liberation.New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(code, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Registry() != nil {
		t.Fatal("fresh array should have no registry")
	}
	buf := make([]byte, a.Capacity())
	if err := a.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := a.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	snap := a.Metrics()
	if len(snap.Spans) != 0 || len(snap.Counters) != 0 {
		t.Errorf("uninstrumented snapshot not empty: %+v", snap)
	}
}
