package raidsim

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/liberation"
)

// TestModelBasedRandomOps runs long random operation sequences against
// the array and a plain byte-slice model in lockstep: writes of random
// sizes/offsets, reads, disk failures, rebuilds, silent corruption plus
// scrubs. At every read the array must agree with the model byte for
// byte — a stateful property test of the whole system.
func TestModelBasedRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		code, err := liberation.New(5, 7)
		if err != nil {
			t.Fatal(err)
		}
		a, err := New(code, 32, 6)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		model := make([]byte, a.Capacity())

		// Initial fill.
		rng.Read(model)
		if err := a.Write(0, model); err != nil {
			t.Fatal(err)
		}

		checkRead := func() {
			t.Helper()
			off := rng.Intn(a.Capacity())
			n := 1 + rng.Intn(a.Capacity()-off)
			got := make([]byte, n)
			if err := a.Read(off, got); err != nil {
				t.Fatalf("seed %d: read(%d,%d): %v", seed, off, n, err)
			}
			if !bytes.Equal(got, model[off:off+n]) {
				t.Fatalf("seed %d: read(%d,%d) diverges from model", seed, off, n)
			}
		}

		for op := 0; op < 300; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // write
				off := rng.Intn(a.Capacity())
				n := 1 + rng.Intn(minInt(500, a.Capacity()-off))
				buf := make([]byte, n)
				rng.Read(buf)
				if err := a.Write(off, buf); err != nil {
					t.Fatalf("seed %d op %d: write: %v", seed, op, err)
				}
				copy(model[off:], buf)
			case 4, 5, 6: // read
				checkRead()
			case 7: // fail a disk (if capacity for failure remains)
				d := rng.Intn(a.NumDisks())
				err := a.FailDisk(d)
				if err != nil && err != ErrTooManyFailures {
					t.Fatalf("seed %d: fail disk: %v", seed, err)
				}
			case 8: // rebuild everything
				if err := a.Rebuild(); err != nil {
					t.Fatalf("seed %d: rebuild: %v", seed, err)
				}
			case 9: // silent corruption + scrub (healthy arrays only)
				if a.numFailed() > 0 {
					continue
				}
				d := rng.Intn(a.NumDisks())
				off := rng.Intn(len(a.disks[d]) - 4)
				if err := a.CorruptDisk(d, off, 4, 0x99); err != nil {
					t.Fatalf("seed %d: corrupt: %v", seed, err)
				}
				if _, err := a.Scrub(); err != nil {
					t.Fatalf("seed %d: scrub: %v", seed, err)
				}
				checkRead()
			}
		}
		// Final integrity pass.
		if err := a.Rebuild(); err != nil {
			t.Fatal(err)
		}
		full := make([]byte, a.Capacity())
		if err := a.Read(0, full); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(full, model) {
			t.Fatalf("seed %d: final state diverges from model", seed)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
