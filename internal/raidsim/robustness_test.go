package raidsim

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/liberation"
	"repro/internal/obs"
)

func allLayouts() []Layout {
	return []Layout{LeftSymmetric, RightAsymmetric, DedicatedParity}
}

func newLiberationArray(t *testing.T, layout Layout) *Array {
	t.Helper()
	lib, err := liberation.New(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(lib, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetLayout(layout); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestWriteDegradedBothParityFailed exercises the hardest degraded-write
// case: for a chosen stripe, the two disks carrying its P and Q strips
// are both down, so the write can update no parity for that stripe at
// all. The data must still land, reads must stay correct throughout, and
// after rebuild the parity must be consistent again (a scrub finds
// nothing to repair).
func TestWriteDegradedBothParityFailed(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			a := newLiberationArray(t, layout)
			rng := rand.New(rand.NewSource(11))
			data := make([]byte, a.Capacity())
			rng.Read(data)
			if err := a.Write(0, data); err != nil {
				t.Fatal(err)
			}

			// Take down exactly the disks holding stripe 0's parity.
			pDisk := a.diskFor(0, a.k)
			qDisk := a.diskFor(0, a.k+1)
			for _, d := range []int{pDisk, qDisk} {
				if err := a.FailDisk(d); err != nil {
					t.Fatal(err)
				}
			}

			// Overwrite data spanning stripe 0 and into stripe 1.
			perStripe := a.k * a.w * a.ElemSize()
			patch := make([]byte, perStripe+perStripe/2)
			rng.Read(patch)
			if err := a.Write(0, patch); err != nil {
				t.Fatalf("degraded write with both parity strips failed: %v", err)
			}
			copy(data, patch)

			got := make([]byte, len(data))
			if err := a.Read(0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("degraded read after parity-less write returned wrong data")
			}

			if err := a.Rebuild(); err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			if err := a.Read(0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("read after rebuild returned wrong data")
			}
			// Parity must be fully consistent again: nothing to scrub.
			results, err := a.Scrub()
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if len(results) != 0 {
				t.Errorf("scrub after rebuild found %d inconsistencies, want 0", len(results))
			}
		})
	}
}

// TestScrubRepairsCorruptionEveryLayout corrupts one strip per stripe on
// a single disk in every layout and checks that Scrub localizes and
// repairs each hit, that the data survives, and that the repairs are
// billed to the right per-disk counter.
func TestScrubRepairsCorruptionEveryLayout(t *testing.T) {
	for _, layout := range allLayouts() {
		t.Run(layout.String(), func(t *testing.T) {
			a := newLiberationArray(t, layout)
			reg := obs.NewRegistry()
			a.Instrument(reg)
			rng := rand.New(rand.NewSource(13))
			data := make([]byte, a.Capacity())
			rng.Read(data)
			if err := a.Write(0, data); err != nil {
				t.Fatal(err)
			}

			// Silently corrupt disk `victim` inside two different stripes —
			// one column per stripe, which CorrectColumn can localize.
			const victim = 2
			stripBytes := a.w * a.ElemSize()
			for _, stripe := range []int{0, 2} {
				if err := a.CorruptDisk(victim, stripe*stripBytes, 3, 0x5a); err != nil {
					t.Fatal(err)
				}
			}

			results, err := a.Scrub()
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if len(results) != 2 {
				t.Fatalf("scrub made %d repairs, want 2: %+v", len(results), results)
			}
			for _, r := range results {
				if r.Disk != victim || r.Strip < 0 {
					t.Errorf("repair %+v not localized to disk %d", r, victim)
				}
			}
			if got := a.Metrics().Counters[scrubRepairCounter(victim)]; got != 2 {
				t.Errorf("%s = %d, want 2", scrubRepairCounter(victim), got)
			}
			if got := a.Metrics().Counters["raid.scrub_repairs"]; got != 2 {
				t.Errorf("raid.scrub_repairs = %d, want 2", got)
			}

			// The corruption must be fully healed: contents intact and a
			// second scrub finds nothing.
			got := make([]byte, len(data))
			if err := a.Read(0, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("data corrupted after scrub repair")
			}
			again, err := a.Scrub()
			if err != nil {
				t.Fatal(err)
			}
			if len(again) != 0 {
				t.Errorf("second scrub found %d issues, want 0", len(again))
			}
			if got := a.Metrics().Counters[scrubRepairCounter(victim)]; got != 2 {
				t.Errorf("per-disk counter moved on a clean scrub: %d, want still 2", got)
			}
		})
	}
}

// TestCorruptDiskValidation pins the corruption hook's argument checks
// so chaos drivers fail fast instead of corrupting the wrong disk.
func TestCorruptDiskValidation(t *testing.T) {
	a := newLiberationArray(t, LeftSymmetric)
	if err := a.CorruptDisk(-1, 0, 1, 0xff); err == nil {
		t.Error("negative disk accepted")
	}
	if err := a.CorruptDisk(0, -1, 1, 0xff); err == nil {
		t.Error("negative offset accepted")
	}
	if err := a.CorruptDisk(0, 0, 1<<30, 0xff); err == nil {
		t.Error("out-of-range length accepted")
	}
	if err := a.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	if err := a.CorruptDisk(3, 0, 1, 0xff); err == nil {
		t.Error("corrupting a failed disk accepted")
	}
}
