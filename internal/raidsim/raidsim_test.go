package raidsim

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/evenodd"
	"repro/internal/liberation"
	"repro/internal/rdp"
	"repro/internal/rs"
)

func codesUnderTest(t *testing.T) map[string]core.Code {
	t.Helper()
	lib, err := liberation.New(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	eo, err := evenodd.New(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := rdp.New(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rs.New(6)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]core.Code{"liberation": lib, "evenodd": eo, "rdp": rd, "rs": r}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for name, code := range codesUnderTest(t) {
		a, err := New(code, 32, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		data := make([]byte, a.Capacity())
		rng.Read(data)
		if err := a.Write(0, data); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := make([]byte, len(data))
		if err := a.Read(0, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s: read-back mismatch", name)
		}
		// Unaligned partial overwrite.
		patch := make([]byte, 100)
		rng.Read(patch)
		off := 37
		if err := a.Write(off, patch); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		copy(data[off:], patch)
		if err := a.Read(0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s: partial write broke contents", name)
		}
	}
}

func TestDegradedReadAndRebuild(t *testing.T) {
	for name, code := range codesUnderTest(t) {
		a, _ := New(code, 16, 3)
		rng := rand.New(rand.NewSource(2))
		data := make([]byte, a.Capacity())
		rng.Read(data)
		if err := a.Write(0, data); err != nil {
			t.Fatal(err)
		}
		// Fail two disks: reads must still return the data.
		if err := a.FailDisk(0); err != nil {
			t.Fatal(err)
		}
		if err := a.FailDisk(2); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := a.Read(0, got); err != nil {
			t.Fatalf("%s: degraded read: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s: degraded read corrupted data", name)
		}
		if a.Stats.DegradedReads == 0 {
			t.Errorf("%s: degraded reads not counted", name)
		}
		// A third failure must be refused.
		if err := a.FailDisk(4); err != ErrTooManyFailures {
			t.Errorf("%s: third failure gave %v", name, err)
		}
		// Rebuild and verify clean reads.
		if err := a.Rebuild(); err != nil {
			t.Fatalf("%s: rebuild: %v", name, err)
		}
		before := a.Stats.DegradedReads
		if err := a.Read(0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s: data wrong after rebuild", name)
		}
		if a.Stats.DegradedReads != before {
			t.Errorf("%s: reads still degraded after rebuild", name)
		}
	}
}

func TestDegradedWrite(t *testing.T) {
	lib, _ := liberation.New(4, 5)
	a, _ := New(lib, 16, 8)
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, a.Capacity())
	rng.Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	patch := make([]byte, 333)
	rng.Read(patch)
	if err := a.Write(1000, patch); err != nil {
		t.Fatal(err)
	}
	copy(data[1000:], patch)
	got := make([]byte, len(data))
	if err := a.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("degraded write lost data")
	}
	if err := a.ReplaceDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := a.ReplaceDisk(1); err == nil {
		t.Error("replacing a healthy disk should fail")
	}
	if err := a.Read(0, got); err != nil || !bytes.Equal(got, data) {
		t.Error("data wrong after disk replacement")
	}
}

func TestSmallWriteUpdateCounters(t *testing.T) {
	lib, _ := liberation.New(5, 5)
	a, _ := New(lib, 16, 2)
	data := make([]byte, a.Capacity())
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	a.Stats = Stats{}
	// One element-sized write at an element boundary: exactly one small
	// write touching 2 (or 3 for extra elements) parity elements.
	patch := bytes.Repeat([]byte{0xaa}, 16)
	if err := a.Write(0, patch); err != nil {
		t.Fatal(err)
	}
	if a.Stats.SmallWrites != 1 {
		t.Errorf("small writes = %d, want 1", a.Stats.SmallWrites)
	}
	if a.Stats.ParityElemWrites < 2 || a.Stats.ParityElemWrites > 3 {
		t.Errorf("parity element writes = %d, want 2..3", a.Stats.ParityElemWrites)
	}
	if a.Stats.StripeEncodes != 0 {
		t.Errorf("small write triggered %d full encodes", a.Stats.StripeEncodes)
	}
}

func TestScrubRepairsSilentCorruption(t *testing.T) {
	lib, _ := liberation.New(5, 5)
	a, _ := New(lib, 16, 4)
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, a.Capacity())
	rng.Read(data)
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	// Corrupt one disk inside stripe 2 (any strip role works).
	if err := a.CorruptDisk(3, 2*5*16+7, 5, 0x3c); err != nil {
		t.Fatal(err)
	}
	results, err := a.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Stripe != 2 || results[0].Disk != 3 {
		t.Fatalf("scrub results = %+v", results)
	}
	// After repair the array must be fully clean.
	results, err = a.Scrub()
	if err != nil || len(results) != 0 {
		t.Fatalf("second scrub found %v (err=%v)", results, err)
	}
	got := make([]byte, len(data))
	if err := a.Read(0, got); err != nil || !bytes.Equal(got, data) {
		t.Error("data wrong after scrub repair")
	}
}

func TestScrubGenericDetection(t *testing.T) {
	// Codes without column localization still detect corruption.
	eo, _ := evenodd.New(4, 5)
	a, _ := New(eo, 16, 2)
	data := make([]byte, a.Capacity())
	if err := a.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.CorruptDisk(0, 0, 1, 0xff); err != nil {
		t.Fatal(err)
	}
	results, err := a.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Strip != -1 {
		t.Fatalf("generic scrub results = %+v", results)
	}
}

func TestBoundsChecking(t *testing.T) {
	lib, _ := liberation.New(3, 3)
	a, _ := New(lib, 8, 1)
	buf := make([]byte, 10)
	if err := a.Read(a.Capacity()-5, buf); err != ErrOutOfRange {
		t.Error("read past end not rejected")
	}
	if err := a.Write(-1, buf); err != ErrOutOfRange {
		t.Error("negative write offset not rejected")
	}
	if err := a.FailDisk(99); err == nil {
		t.Error("bad disk id not rejected")
	}
}
