package raidsim

import "fmt"

// Layout maps a stripe's logical strips (0..K-1 data, then the M parity
// strips: K = P, K+1 = Q for the RAID-6 codes) onto physical disks.
// Rotating layouts spread parity traffic — and the small-write parity
// updates the Liberation codes minimize — across all spindles; the
// dedicated layout (RAID-4 style) concentrates it on the last M disks,
// which is simpler but turns them into hot spots.
type Layout int

const (
	// LeftSymmetric rotates strips so that parity moves one disk left
	// every stripe (the common software-RAID default).
	LeftSymmetric Layout = iota
	// RightAsymmetric rotates parity right while keeping data order.
	RightAsymmetric
	// DedicatedParity pins the parity strips to the last M disks
	// (RAID-4 style).
	DedicatedParity
)

func (l Layout) String() string {
	switch l {
	case LeftSymmetric:
		return "left-symmetric"
	case RightAsymmetric:
		return "right-asymmetric"
	case DedicatedParity:
		return "dedicated-parity"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// place returns the disk for logical strip `strip` of `stripe` under the
// layout, over n disks.
func (l Layout) place(stripe, strip, n int) int {
	switch l {
	case LeftSymmetric:
		return (strip + stripe) % n
	case RightAsymmetric:
		return (strip + n - stripe%n) % n
	case DedicatedParity:
		return strip
	default:
		panic("raidsim: unknown layout")
	}
}

// SetLayout selects the parity placement. It must be called before any
// data is written (the array does not re-shuffle existing strips).
func (a *Array) SetLayout(l Layout) error {
	if l != LeftSymmetric && l != RightAsymmetric && l != DedicatedParity {
		return fmt.Errorf("%w: layout %d", ErrDiskState, int(l))
	}
	a.layout = l
	return nil
}

// Layout returns the current parity placement.
func (a *Array) Layout() Layout { return a.layout }

// ParityDistribution returns, per disk, how many stripes place a parity
// strip on that disk — the hot-spot profile of the layout.
func (a *Array) ParityDistribution() []int {
	out := make([]int, a.n)
	for stripe := 0; stripe < a.stripes; stripe++ {
		for t := a.k; t < a.n; t++ {
			out[a.diskFor(stripe, t)]++
		}
	}
	return out
}
