package bitmatrix

import (
	"math/bits"

	"repro/internal/core"
)

// OpKind distinguishes the three element operations a schedule can emit.
type OpKind uint8

const (
	// OpCopy sets dst = src. Copies are free in the XOR cost model.
	OpCopy OpKind = iota
	// OpXor sets dst ^= src.
	OpXor
	// OpZero clears dst (only emitted for degenerate all-zero rows).
	OpZero
)

// Op is one element operation. Columns index strips of a stripe
// (0..K-1 data, K = P, K+1 = Q); rows index elements within a strip.
type Op struct {
	Kind           OpKind
	SrcCol, SrcRow int
	DstCol, DstRow int
}

// Schedule is an ordered list of element operations, the direct analogue of
// a Jerasure "schedule" ({op, from id, from bit, to id, to bit} tuples).
type Schedule []Op

// Run executes the schedule against a stripe, counting through ops.
func (sch Schedule) Run(s *core.Stripe, ops *core.Ops) {
	for _, op := range sch {
		dst := s.Elem(op.DstCol, op.DstRow)
		switch op.Kind {
		case OpCopy:
			ops.Copy(dst, s.Elem(op.SrcCol, op.SrcRow))
		case OpXor:
			ops.XorInto(dst, s.Elem(op.SrcCol, op.SrcRow))
		case OpZero:
			ops.Zero(dst)
		}
	}
}

// XORCount returns the number of OpXor entries — the schedule's cost in the
// paper's model.
func (sch Schedule) XORCount() int {
	n := 0
	for _, op := range sch {
		if op.Kind == OpXor {
			n++
		}
	}
	return n
}

// bitRef resolves a matrix column index (a "device bit") to a strip column
// and an element row, given the per-strip height w and a device mapping.
type bitRef struct{ col, row int }

// target describes one output bit a schedule must produce.
type target struct {
	col, row int // destination element
	mrow     int // row of the matrix describing it
}

// DumbSchedule converts matrix rows into a from-scratch schedule: each
// output row is computed by copying its first operand and XOR-ing the rest,
// exactly like jerasure_dumb_bitmatrix_to_schedule. The matrix has one row
// per output bit; column j*w+b of the matrix refers to bit b of source
// device devs[j]. Output bit i is written to element outs[i].
func DumbSchedule(m *Matrix, w int, devs []int, outs []bitRef) Schedule {
	if m.C != len(devs)*w || m.R != len(outs) {
		panic("bitmatrix: schedule shape mismatch")
	}
	var sch Schedule
	for i := 0; i < m.R; i++ {
		idx := m.RowIndices(i)
		if len(idx) == 0 {
			sch = append(sch, Op{Kind: OpZero, DstCol: outs[i].col, DstRow: outs[i].row})
			continue
		}
		for n, j := range idx {
			kind := OpXor
			if n == 0 {
				kind = OpCopy
			}
			sch = append(sch, Op{
				Kind:   kind,
				SrcCol: devs[j/w], SrcRow: j % w,
				DstCol: outs[i].col, DstRow: outs[i].row,
			})
		}
	}
	return sch
}

// SmartSchedule converts matrix rows into an incremental schedule in the
// spirit of jerasure_smart_bitmatrix_to_schedule / the bit-matrix
// scheduling of the Liberation paper (Plank, FAST'08): an output row may
// be computed from scratch (ones-1 XORs after an initial copy) or by
// copying an already-computed output row and XOR-ing the Hamming
// difference. Outputs are produced in a greedy nearest-neighbour order —
// start from the sparsest row, then repeatedly emit the row that is
// cheapest given everything computed so far — which is what lets the
// dense rows of an inverted decoding matrix ride on their chain
// predecessors. This scheduling is what gives the "original" Liberation
// decoder its characteristic 10-20%-above-optimal XOR count.
func SmartSchedule(m *Matrix, w int, devs []int, outs []bitRef) Schedule {
	if m.C != len(devs)*w || m.R != len(outs) {
		panic("bitmatrix: schedule shape mismatch")
	}
	n := m.R
	var sch Schedule
	done := make([]bool, n)
	// cost[i] is the cheapest known way to produce row i right now;
	// base[i] is the already-computed row to diff against (-1 = scratch).
	cost := make([]int, n)
	base := make([]int, n)
	for i := 0; i < n; i++ {
		cost[i] = m.RowOnes(i) - 1
		base[i] = -1
	}
	for produced := 0; produced < n; produced++ {
		// Pick the cheapest pending row.
		pick := -1
		for i := 0; i < n; i++ {
			if !done[i] && (pick < 0 || cost[i] < cost[pick]) {
				pick = i
			}
		}
		dst := outs[pick]
		if m.RowOnes(pick) == 0 {
			sch = append(sch, Op{Kind: OpZero, DstCol: dst.col, DstRow: dst.row})
		} else if base[pick] < 0 {
			for nth, j := range m.RowIndices(pick) {
				kind := OpXor
				if nth == 0 {
					kind = OpCopy
				}
				sch = append(sch, Op{Kind: kind,
					SrcCol: devs[j/w], SrcRow: j % w,
					DstCol: dst.col, DstRow: dst.row})
			}
		} else {
			src := outs[base[pick]]
			sch = append(sch, Op{Kind: OpCopy,
				SrcCol: src.col, SrcRow: src.row,
				DstCol: dst.col, DstRow: dst.row})
			a, b := m.row(pick), m.row(base[pick])
			for wi := range a {
				diff := a[wi] ^ b[wi]
				for diff != 0 {
					bit := wi*64 + bits.TrailingZeros64(diff)
					diff &= diff - 1
					sch = append(sch, Op{Kind: OpXor,
						SrcCol: devs[bit/w], SrcRow: bit % w,
						DstCol: dst.col, DstRow: dst.row})
				}
			}
		}
		done[pick] = true
		// The newly produced row may be a cheaper base for pending rows.
		for i := 0; i < n; i++ {
			if !done[i] {
				if d := RowDistance(m, i, m, pick); d < cost[i] {
					cost[i], base[i] = d, pick
				}
			}
		}
	}
	return sch
}
