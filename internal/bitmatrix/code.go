package bitmatrix

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Scheduling selects how matrices are turned into XOR schedules.
type Scheduling int

const (
	// Dumb computes every output bit from scratch.
	Dumb Scheduling = iota
	// Smart reuses previously computed outputs (Jerasure's smart
	// scheduling); this is what the original Liberation implementation
	// uses for decoding.
	Smart
)

// Code is a generic systematic XOR erasure code driven by a generator
// bit-matrix, equivalent to Jerasure's schedule-based encode/decode path.
// It serves both as the paper's "original" Liberation implementation (when
// given the Liberation generator) and as a correctness oracle for every
// other code in the repository.
type Code struct {
	name string
	k, w int
	gen  *Matrix // 2w x kw generator: rows = P bits then Q bits

	enc Scheduling
	dec Scheduling

	// CacheDecodeSchedules controls whether decoding matrices and
	// schedules are memoized per erasure pattern. Jerasure's
	// schedule-based decode path rebuilds them on every call ("lazy"
	// scheduling); the paper attributes part of the original decoder's
	// slowness to exactly this per-call matrix work, so benchmarks that
	// reproduce the paper leave this false. Tests and the ablation bench
	// flip it on.
	CacheDecodeSchedules bool

	// LazyEncodeSchedule, when set, rebuilds the encode schedule on every
	// Encode call, mirroring the per-call scheduling work of the Jerasure
	// test harness the paper benchmarks against. The throughput figures
	// (10 and 11) compare against this mode; leave it false to amortize
	// the schedule like a long-lived encoder would.
	LazyEncodeSchedule bool

	encSched Schedule
	encFast  FusedSchedule
	decMu    sync.Mutex
	decCache map[[2]int]FusedSchedule

	obs        *obs.Registry // optional metrics sink (see Instrument)
	spanPrefix string        // name up to the parameter list, e.g. "liberation-orig"
}

// NewCode builds a schedule-based code from a generator matrix. The
// generator must be 2w x kw: row i describes parity bit (i/w, i%w), with
// matrix column j*w+b referring to data bit b of data strip j.
func NewCode(name string, k, w int, gen *Matrix, enc, dec Scheduling) (*Code, error) {
	if gen.R != 2*w || gen.C != k*w {
		return nil, fmt.Errorf("bitmatrix: generator is %dx%d, want %dx%d",
			gen.R, gen.C, 2*w, k*w)
	}
	c := &Code{name: name, k: k, w: w, gen: gen, enc: enc, dec: dec,
		decCache: make(map[[2]int]FusedSchedule)}
	c.spanPrefix = name
	if i := strings.IndexByte(name, '('); i >= 0 {
		c.spanPrefix = name[:i]
	}
	c.encSched = c.buildEncodeSchedule()
	c.encFast = c.encSched.Fuse()
	return c, nil
}

func (c *Code) Name() string { return c.name }
func (c *Code) K() int       { return c.k }
func (c *Code) W() int       { return c.w }

// M returns 2: the bit-matrix codes here (liberation-original, CRS) are
// RAID-6 generators with 2w rows.
func (c *Code) M() int { return 2 }

// ElemwiseEncode marks the code for stripe-sharded encoding: the
// schedule runners address the stripe only through Elem (see
// core.ElemwiseEncoder).
func (c *Code) ElemwiseEncode() {}

// Generator returns the code's generator matrix (not a copy).
func (c *Code) Generator() *Matrix { return c.gen }

// EncodeXORs returns the exact XOR cost of one stripe encoding.
func (c *Code) EncodeXORs() int { return c.encSched.XORCount() }

func (c *Code) buildEncodeSchedule() Schedule {
	devs := make([]int, c.k)
	for j := range devs {
		devs[j] = j
	}
	outs := make([]bitRef, 2*c.w)
	for i := range outs {
		outs[i] = bitRef{col: c.k + i/c.w, row: i % c.w}
	}
	if c.enc == Smart {
		return SmartSchedule(c.gen, c.w, devs, outs)
	}
	return DumbSchedule(c.gen, c.w, devs, outs)
}

// Encode computes the parity strips by running the encode schedule.
func (c *Code) Encode(s *core.Stripe, ops *core.Ops) error {
	return obs.Observed(c.obs, c.spanPrefix+".encode", s.DataSize(), 2*c.w, ops,
		func(o *core.Ops) error { return c.encode(s, o) })
}

func (c *Code) encode(s *core.Stripe, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.w); err != nil {
		return err
	}
	if c.LazyEncodeSchedule {
		// Rebuild and run the plain schedule each call, as Jerasure's
		// timing harness does.
		c.buildEncodeSchedule().Run(s, ops)
		return nil
	}
	c.encFast.Run(s, ops)
	return nil
}

// Decode reconstructs up to two erased strips.
func (c *Code) Decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	return obs.Observed(c.obs, c.spanPrefix+".decode", s.DataSize(), len(erased)*c.w, ops,
		func(o *core.Ops) error { return c.decode(s, erased, o) })
}

func (c *Code) decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.w); err != nil {
		return err
	}
	if len(erased) == 0 {
		return nil
	}
	if len(erased) > 2 {
		return core.ErrTooManyErasures
	}
	key := erasureKey(erased)
	for _, e := range erased {
		if e < 0 || e >= c.k+2 {
			return fmt.Errorf("bitmatrix: erased column %d out of range", e)
		}
	}
	if !c.CacheDecodeSchedules {
		// Lazy (Jerasure) semantics: derive and run the plain schedule on
		// every call.
		sch, err := c.DecodeSchedule(erased)
		if err != nil {
			return err
		}
		sch.Run(s, ops)
		return nil
	}
	c.decMu.Lock()
	fused, ok := c.decCache[key]
	c.decMu.Unlock()
	if !ok {
		sch, err := c.DecodeSchedule(erased)
		if err != nil {
			return err
		}
		fused = sch.Fuse()
		c.decMu.Lock()
		c.decCache[key] = fused
		c.decMu.Unlock()
	}
	fused.Run(s, ops)
	return nil
}

func erasureKey(erased []int) [2]int {
	key := [2]int{-1, -1}
	copy(key[:], erased)
	if len(erased) == 2 && key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	return key
}

// DecodeSchedule builds the schedule that reconstructs the given erased
// strips: erased data strips are recovered by inverting the surviving
// sub-system (jerasure_make_decoding_bitmatrix) and scheduling the result;
// erased parity strips are then re-encoded from the repaired data.
func (c *Code) DecodeSchedule(erased []int) (Schedule, error) {
	isErased := make(map[int]bool, len(erased))
	for _, e := range erased {
		isErased[e] = true
	}
	var dataLost, parityLost []int
	for _, e := range erased {
		if e < c.k {
			dataLost = append(dataLost, e)
		} else {
			parityLost = append(parityLost, e)
		}
	}
	sort.Ints(dataLost)
	sort.Ints(parityLost)

	var sch Schedule
	if len(dataLost) > 0 {
		dm, devs, err := c.decodeMatrix(dataLost, isErased)
		if err != nil {
			return nil, err
		}
		outs := make([]bitRef, 0, len(dataLost)*c.w)
		for _, d := range dataLost {
			for b := 0; b < c.w; b++ {
				outs = append(outs, bitRef{col: d, row: b})
			}
		}
		if c.dec == Smart {
			sch = append(sch, SmartSchedule(dm, c.w, devs, outs)...)
		} else {
			sch = append(sch, DumbSchedule(dm, c.w, devs, outs)...)
		}
	}
	// Re-encode lost parity strips from (now complete) data.
	for _, pcol := range parityLost {
		base := (pcol - c.k) * c.w
		rows := make([]int, c.w)
		for b := 0; b < c.w; b++ {
			rows[b] = base + b
		}
		sub := c.gen.SelectRows(rows)
		devs := make([]int, c.k)
		for j := range devs {
			devs[j] = j
		}
		outs := make([]bitRef, c.w)
		for b := 0; b < c.w; b++ {
			outs[b] = bitRef{col: pcol, row: b}
		}
		if c.dec == Smart {
			sch = append(sch, SmartSchedule(sub, c.w, devs, outs)...)
		} else {
			sch = append(sch, DumbSchedule(sub, c.w, devs, outs)...)
		}
	}
	return sch, nil
}

// decodeMatrix returns the matrix expressing every bit of the lost data
// strips as an XOR of surviving device bits, together with the device list
// mapping matrix column blocks to strip columns.
func (c *Code) decodeMatrix(dataLost []int, isErased map[int]bool) (*Matrix, []int, error) {
	// Choose k surviving devices: surviving data strips first (their rows
	// are identity rows, which keeps the system sparse), then parities.
	devs := make([]int, 0, c.k)
	for j := 0; j < c.k+2 && len(devs) < c.k; j++ {
		if !isErased[j] {
			devs = append(devs, j)
		}
	}
	if len(devs) < c.k {
		return nil, nil, core.ErrTooManyErasures
	}
	// Build the kw x kw system A: row block per chosen device.
	a := New(c.k*c.w, c.k*c.w)
	for bi, dev := range devs {
		for b := 0; b < c.w; b++ {
			dst := bi*c.w + b
			if dev < c.k {
				a.Set(dst, dev*c.w+b, true) // identity row of a data device
			} else {
				a.CopyRowFrom(dst, c.gen, (dev-c.k)*c.w+b)
			}
		}
	}
	inv, err := a.Invert()
	if err != nil {
		return nil, nil, fmt.Errorf("bitmatrix: erasure pattern %v not decodable: %w", dataLost, err)
	}
	// Rows of inv for the lost data bits give them as combos of chosen
	// device bits.
	rows := make([]int, 0, len(dataLost)*c.w)
	for _, d := range dataLost {
		for b := 0; b < c.w; b++ {
			rows = append(rows, d*c.w+b)
		}
	}
	return inv.SelectRows(rows), devs, nil
}

// CheckMDS verifies that every one- and two-column erasure pattern is
// decodable, i.e. the generator describes an MDS code. Used by tests.
func (c *Code) CheckMDS() error {
	for _, pair := range core.ErasurePairs(c.k + 2) {
		if _, err := c.DecodeSchedule(pair[:]); err != nil {
			return fmt.Errorf("pattern %v: %w", pair, err)
		}
	}
	for e := 0; e < c.k+2; e++ {
		if _, err := c.DecodeSchedule([]int{e}); err != nil {
			return fmt.Errorf("pattern [%d]: %w", e, err)
		}
	}
	return nil
}
