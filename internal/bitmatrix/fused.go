package bitmatrix

import "repro/internal/core"

// FusedOp is one element operation with up to four XOR sources folded
// into a single pass over the destination. Fusing consecutive
// accumulations into the same element cuts the number of times the
// destination block travels through the cache to roughly a quarter, which
// is where most of an XOR code's time goes at 4-8KB elements.
type FusedOp struct {
	Kind           OpKind
	DstCol, DstRow int
	// Srcs holds the (col, row) sources: exactly one for OpCopy, one to
	// four for OpXor, none for OpZero.
	Srcs [][2]int
}

// FusedSchedule is a Schedule compiled for execution.
type FusedSchedule []FusedOp

// Fuse groups consecutive XOR accumulations into the same destination
// into multi-source operations (up to four sources each, the widest
// xorblk kernel). The operation semantics — and the XOR counts reported
// through core.Ops — are unchanged.
func (sch Schedule) Fuse() FusedSchedule {
	out := make(FusedSchedule, 0, len(sch))
	for i := 0; i < len(sch); {
		op := sch[i]
		if op.Kind != OpXor {
			f := FusedOp{Kind: op.Kind, DstCol: op.DstCol, DstRow: op.DstRow}
			if op.Kind == OpCopy {
				f.Srcs = [][2]int{{op.SrcCol, op.SrcRow}}
			}
			out = append(out, f)
			i++
			continue
		}
		f := FusedOp{Kind: OpXor, DstCol: op.DstCol, DstRow: op.DstRow}
		for i < len(sch) && len(f.Srcs) < 4 {
			next := sch[i]
			if next.Kind != OpXor || next.DstCol != f.DstCol || next.DstRow != f.DstRow {
				break
			}
			f.Srcs = append(f.Srcs, [2]int{next.SrcCol, next.SrcRow})
			i++
		}
		out = append(out, f)
	}
	return out
}

// Run executes the fused schedule against a stripe.
func (fs FusedSchedule) Run(s *core.Stripe, ops *core.Ops) {
	for _, op := range fs {
		dst := s.Elem(op.DstCol, op.DstRow)
		switch op.Kind {
		case OpCopy:
			ops.Copy(dst, s.Elem(op.Srcs[0][0], op.Srcs[0][1]))
		case OpZero:
			ops.Zero(dst)
		case OpXor:
			switch len(op.Srcs) {
			case 1:
				ops.XorInto(dst, s.Elem(op.Srcs[0][0], op.Srcs[0][1]))
			case 2:
				ops.XorInto2(dst,
					s.Elem(op.Srcs[0][0], op.Srcs[0][1]),
					s.Elem(op.Srcs[1][0], op.Srcs[1][1]))
			case 3:
				ops.XorInto3(dst,
					s.Elem(op.Srcs[0][0], op.Srcs[0][1]),
					s.Elem(op.Srcs[1][0], op.Srcs[1][1]),
					s.Elem(op.Srcs[2][0], op.Srcs[2][1]))
			case 4:
				ops.XorInto4(dst,
					s.Elem(op.Srcs[0][0], op.Srcs[0][1]),
					s.Elem(op.Srcs[1][0], op.Srcs[1][1]),
					s.Elem(op.Srcs[2][0], op.Srcs[2][1]),
					s.Elem(op.Srcs[3][0], op.Srcs[3][1]))
			}
		}
	}
}

// XORCount returns the number of XOR accumulations the fused schedule
// performs (identical to the unfused schedule's count).
func (fs FusedSchedule) XORCount() int {
	n := 0
	for _, op := range fs {
		if op.Kind == OpXor {
			n += len(op.Srcs)
		}
	}
	return n
}
