package bitmatrix

import "repro/internal/obs"

// Instrument attaches a metrics registry to the code: from then on every
// Encode and Decode records a span — latency, bytes processed, work
// units, and the exact core.Ops element counts — under span names
// derived from the code's name with the parameter list stripped, e.g.
// liberation-orig.encode or crs.decode. A nil registry detaches.
func (c *Code) Instrument(reg *obs.Registry) { c.obs = reg }

// Registry returns the attached metrics registry (nil when detached).
func (c *Code) Registry() *obs.Registry { return c.obs }
