package bitmatrix

import (
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Intn(2) == 1 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

func TestGetSetFlip(t *testing.T) {
	m := New(3, 130) // spans three words per row
	m.Set(1, 0, true)
	m.Set(1, 64, true)
	m.Set(1, 129, true)
	if !m.Get(1, 0) || !m.Get(1, 64) || !m.Get(1, 129) || m.Get(1, 1) {
		t.Fatal("Get/Set broken across word boundaries")
	}
	if m.RowOnes(1) != 3 || m.Ones() != 3 {
		t.Fatal("counting broken")
	}
	m.Flip(1, 64)
	if m.Get(1, 64) || m.RowOnes(1) != 2 {
		t.Fatal("Flip broken")
	}
	idx := m.RowIndices(1)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 129 {
		t.Fatalf("RowIndices = %v", idx)
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 16, 33, 64, 100} {
		// Build a random invertible matrix by multiplying elementary ops
		// into the identity.
		m := Identity(n)
		for step := 0; step < 4*n; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				m.XorRows(i, j)
			}
			m.SwapRows(rng.Intn(n), rng.Intn(n))
		}
		inv, err := m.Invert()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !m.Mul(inv).Equal(Identity(n)) || !inv.Mul(m).Equal(Identity(n)) {
			t.Fatalf("n=%d: inverse wrong", n)
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := New(3, 3)
	m.Set(0, 0, true)
	m.Set(1, 1, true)
	m.Set(2, 0, true) // row 2 duplicates row 0
	m.Set(2, 1, true) // ... plus row 1
	m.XorRows(2, 0)
	m.XorRows(2, 1)
	if _, err := m.Invert(); err == nil {
		t.Error("inverted a singular matrix")
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 7, 9)
	v := make([]bool, 9)
	for i := range v {
		v[i] = rng.Intn(2) == 1
	}
	// Represent v as a 9x1 matrix and compare.
	vm := New(9, 1)
	for i, b := range v {
		vm.Set(i, 0, b)
	}
	want := a.Mul(vm)
	got := a.MulVec(v)
	for i := range got {
		if got[i] != want.Get(i, 0) {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
}

func TestRowDistanceAndStack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 4, 70)
	b := randomMatrix(rng, 3, 70)
	st := VStack(a, b)
	if st.R != 7 || st.C != 70 {
		t.Fatal("VStack shape wrong")
	}
	for i := 0; i < 4; i++ {
		if RowDistance(st, i, a, i) != 0 {
			t.Fatal("VStack copied rows wrong (a part)")
		}
	}
	for i := 0; i < 3; i++ {
		if RowDistance(st, 4+i, b, i) != 0 {
			t.Fatal("VStack copied rows wrong (b part)")
		}
	}
	sel := st.SelectRows([]int{6, 0})
	if RowDistance(sel, 0, b, 2) != 0 || RowDistance(sel, 1, a, 0) != 0 {
		t.Fatal("SelectRows wrong")
	}
}

func TestStringRendering(t *testing.T) {
	m := New(2, 3)
	m.Set(0, 1, true)
	m.Set(1, 2, true)
	if m.String() != "010\n001\n" {
		t.Fatalf("String() = %q", m.String())
	}
}

func TestMulPropertiesQuick(t *testing.T) {
	// Associativity of matrix multiplication over GF(2) on random small
	// matrices, via testing/quick-style randomized sweeps.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(12)
		q := 1 + rng.Intn(12)
		r := 1 + rng.Intn(12)
		a := randomMatrix(rng, n, m)
		b := randomMatrix(rng, m, q)
		c := randomMatrix(rng, q, r)
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			t.Fatalf("(AB)C != A(BC) at trial %d", trial)
		}
	}
}

func TestIdentityIsNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 9, 13)
	if !Identity(9).Mul(a).Equal(a) || !a.Mul(Identity(13)).Equal(a) {
		t.Error("identity is not neutral for Mul")
	}
}
