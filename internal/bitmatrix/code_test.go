package bitmatrix

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// toyGenerator builds the Liberation generator over a w x (w+2) array
// (w an odd prime, k <= w): row parity, anti-diagonal parity, and the
// extra bits that make the construction MDS. It is duplicated here (the
// liberation package imports bitmatrix) purely as schedule-test input.
func toyGenerator(k, w int) *Matrix {
	mod := func(x int) int { return ((x % w) + w) % w }
	m := New(2*w, k*w)
	for i := 0; i < w; i++ {
		for j := 0; j < k; j++ {
			m.Set(i, j*w+i, true)
			m.Set(w+i, j*w+mod(i+j), true)
		}
		if i != 0 {
			if ecol := mod(-2 * i); ecol < k {
				m.Set(w+i, ecol*w+mod(-i-1), true)
			}
		}
	}
	return m
}

func TestDumbVsSmartSameResult(t *testing.T) {
	k, w := 2, 5
	gen := toyGenerator(k, w)
	dumb, err := NewCode("toy-dumb", k, w, gen, Dumb, Dumb)
	if err != nil {
		t.Fatal(err)
	}
	smart, err := NewCode("toy-smart", k, w, gen, Smart, Smart)
	if err != nil {
		t.Fatal(err)
	}
	s1 := core.NewStripe(k, w, 16)
	s1.FillRandom(rand.New(rand.NewSource(1)))
	s2 := s1.Clone()
	if err := dumb.Encode(s1, nil); err != nil {
		t.Fatal(err)
	}
	if err := smart.Encode(s2, nil); err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Error("smart scheduling changed the encoding result")
	}
	if smart.EncodeXORs() > dumb.EncodeXORs() {
		t.Errorf("smart encode (%d XORs) costs more than dumb (%d)",
			smart.EncodeXORs(), dumb.EncodeXORs())
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	k, w := 2, 5
	gen := toyGenerator(k, w)
	c, err := NewCode("toy", k, w, gen, Dumb, Smart)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckMDS(); err != nil {
		t.Fatalf("toy code not MDS: %v", err)
	}
	orig := core.NewStripe(k, w, 8)
	orig.FillRandom(rand.New(rand.NewSource(2)))
	if err := c.Encode(orig, nil); err != nil {
		t.Fatal(err)
	}
	for _, pat := range core.ErasurePairs(k + 2) {
		s := orig.Clone()
		rand.New(rand.NewSource(3)).Read(s.Strips[pat[0]])
		rand.New(rand.NewSource(4)).Read(s.Strips[pat[1]])
		if err := c.Decode(s, pat[:], nil); err != nil {
			t.Fatalf("erased %v: %v", pat, err)
		}
		if !s.Equal(orig) {
			t.Errorf("erased %v: decode failed", pat)
		}
	}
}

func TestDecodeScheduleCaching(t *testing.T) {
	k, w := 2, 3
	c, err := NewCode("toy", k, w, toyGenerator(k, w), Dumb, Smart)
	if err != nil {
		t.Fatal(err)
	}
	c.CacheDecodeSchedules = true
	orig := core.NewStripe(k, w, 8)
	orig.FillRandom(rand.New(rand.NewSource(5)))
	if err := c.Encode(orig, nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		s := orig.Clone()
		s.ZeroStrip(0)
		s.ZeroStrip(1)
		if err := c.Decode(s, []int{0, 1}, nil); err != nil {
			t.Fatal(err)
		}
		if !s.Equal(orig) {
			t.Fatalf("round %d: cached decode failed", round)
		}
	}
	if len(c.decCache) != 1 {
		t.Errorf("cache has %d entries, want 1", len(c.decCache))
	}
}

func TestDecodeErrors(t *testing.T) {
	k, w := 2, 3
	c, _ := NewCode("toy", k, w, toyGenerator(k, w), Dumb, Smart)
	s := core.NewStripe(k, w, 8)
	if err := c.Decode(s, []int{0, 1, 2}, nil); err == nil {
		t.Error("accepted 3 erasures")
	}
	if err := c.Decode(s, []int{9}, nil); err == nil {
		t.Error("accepted out-of-range erasure")
	}
	if err := c.Decode(s, nil, nil); err != nil {
		t.Errorf("empty erasure list should be a no-op: %v", err)
	}
	bad := core.NewStripe(k+1, w, 8)
	if err := c.Decode(bad, []int{0}, nil); err == nil {
		t.Error("accepted mis-shaped stripe")
	}
	if err := c.Encode(bad, nil); err == nil {
		t.Error("encode accepted mis-shaped stripe")
	}
}

func TestNewCodeShapeValidation(t *testing.T) {
	if _, err := NewCode("bad", 2, 5, New(3, 10), Dumb, Dumb); err == nil {
		t.Error("NewCode accepted a wrong-shaped generator")
	}
}

func TestScheduleXORCount(t *testing.T) {
	k, w := 3, 5
	gen := toyGenerator(k, w)
	c, _ := NewCode("toy", k, w, gen, Dumb, Dumb)
	// Dumb encode XOR count == ones(gen) - rows(gen).
	want := gen.Ones() - gen.R
	if got := c.EncodeXORs(); got != want {
		t.Errorf("dumb encode XORs = %d, want %d", got, want)
	}
	var ops core.Ops
	s := core.NewStripe(k, w, 8)
	if err := c.Encode(s, &ops); err != nil {
		t.Fatal(err)
	}
	if int(ops.XORs) != want {
		t.Errorf("executed XORs = %d, want %d", ops.XORs, want)
	}
}

func TestFusedScheduleEquivalence(t *testing.T) {
	k, w := 5, 5
	gen := toyGenerator(k, w)
	c, err := NewCode("toy", k, w, gen, Dumb, Smart)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := c.DecodeSchedule([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	fused := sch.Fuse()
	if fused.XORCount() != sch.XORCount() {
		t.Fatalf("fused XOR count %d != %d", fused.XORCount(), sch.XORCount())
	}
	// Run both on identical stripes and compare every strip.
	orig := core.NewStripe(k, w, 16)
	orig.FillRandom(rand.New(rand.NewSource(6)))
	if err := c.Encode(orig, nil); err != nil {
		t.Fatal(err)
	}
	a := orig.Clone()
	b := orig.Clone()
	a.ZeroStrip(0)
	a.ZeroStrip(2)
	b.ZeroStrip(0)
	b.ZeroStrip(2)
	var opsA, opsB core.Ops
	sch.Run(a, &opsA)
	fused.Run(b, &opsB)
	if !a.Equal(b) {
		t.Error("fused execution diverges from plain execution")
	}
	if opsA.XORs != opsB.XORs {
		t.Errorf("counted XORs differ: %d vs %d", opsA.XORs, opsB.XORs)
	}
}
