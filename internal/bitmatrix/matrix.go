// Package bitmatrix re-implements the bit-matrix erasure-coding machinery
// of the Jerasure library (Plank et al., CS-08-627): GF(2) matrices,
// Gauss-Jordan inversion, conversion of matrices into XOR schedules (both
// "dumb" row-at-a-time schedules and "smart" incremental schedules), and a
// schedule executor that runs over stripes of byte-block elements.
//
// The paper's "original" Liberation encoder and decoder are exactly this
// machinery applied to the Liberation generator matrix; the same machinery
// doubles as a correctness oracle for every other code in the repository
// (any XOR code can be expressed as a generator bit-matrix).
package bitmatrix

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// ErrSingular is returned when a matrix has no inverse over GF(2) — for a
// generator matrix this means the erasure pattern is not decodable.
var ErrSingular = errors.New("bitmatrix: matrix is singular")

// Matrix is a dense bit matrix over GF(2), stored row-major as 64-bit words.
type Matrix struct {
	R, C int
	wpr  int // words per row
	bits []uint64
}

// New returns a zero R x C matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("bitmatrix: negative dimension")
	}
	wpr := (c + 63) / 64
	return &Matrix{R: r, C: c, wpr: wpr, bits: make([]uint64, r*wpr)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// Get returns the bit at (i, j).
func (m *Matrix) Get(i, j int) bool {
	return m.bits[i*m.wpr+j/64]&(1<<(uint(j)&63)) != 0
}

// Set assigns the bit at (i, j).
func (m *Matrix) Set(i, j int, v bool) {
	w := &m.bits[i*m.wpr+j/64]
	mask := uint64(1) << (uint(j) & 63)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// Flip toggles the bit at (i, j).
func (m *Matrix) Flip(i, j int) {
	m.bits[i*m.wpr+j/64] ^= 1 << (uint(j) & 63)
}

// row returns the word slice backing row i.
func (m *Matrix) row(i int) []uint64 { return m.bits[i*m.wpr : (i+1)*m.wpr] }

// RowOnes returns the number of set bits in row i.
func (m *Matrix) RowOnes(i int) int {
	n := 0
	for _, w := range m.row(i) {
		n += bits.OnesCount64(w)
	}
	return n
}

// Ones returns the total number of set bits.
func (m *Matrix) Ones() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// RowIndices returns the column indices of the set bits in row i, ascending.
func (m *Matrix) RowIndices(i int) []int {
	out := make([]int, 0, m.RowOnes(i))
	for wi, w := range m.row(i) {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// RowDistance returns the Hamming distance between rows i of m and j of o.
// The matrices must have equal column counts.
func RowDistance(m *Matrix, i int, o *Matrix, j int) int {
	if m.C != o.C {
		panic("bitmatrix: column mismatch")
	}
	a, b := m.row(i), o.row(j)
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] ^ b[w])
	}
	return n
}

// XorRows sets row dst ^= row src (both in m).
func (m *Matrix) XorRows(dst, src int) {
	d, s := m.row(dst), m.row(src)
	for w := range d {
		d[w] ^= s[w]
	}
}

// SwapRows exchanges two rows.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	a, b := m.row(i), m.row(j)
	for w := range a {
		a[w], b[w] = b[w], a[w]
	}
}

// CopyRowFrom copies row src of o into row dst of m.
func (m *Matrix) CopyRowFrom(dst int, o *Matrix, src int) {
	copy(m.row(dst), o.row(src))
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.R, m.C)
	copy(c.bits, m.bits)
	return c
}

// Equal reports whether two matrices are identical.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.R != o.R || m.C != o.C {
		return false
	}
	for i := range m.bits {
		if m.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Mul returns m * o over GF(2). m.C must equal o.R.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.C != o.R {
		panic(fmt.Sprintf("bitmatrix: mul shape %dx%d * %dx%d", m.R, m.C, o.R, o.C))
	}
	out := New(m.R, o.C)
	for i := 0; i < m.R; i++ {
		dst := out.row(i)
		for _, j := range m.RowIndices(i) {
			src := o.row(j)
			for w := range dst {
				dst[w] ^= src[w]
			}
		}
	}
	return out
}

// MulVec multiplies m by a bit vector (given as []bool of length m.C) and
// returns the resulting vector of length m.R. Used by tests as an oracle.
func (m *Matrix) MulVec(v []bool) []bool {
	if len(v) != m.C {
		panic("bitmatrix: vector length mismatch")
	}
	out := make([]bool, m.R)
	for i := 0; i < m.R; i++ {
		acc := false
		for _, j := range m.RowIndices(i) {
			acc = acc != v[j]
		}
		out[i] = acc
	}
	return out
}

// Invert returns the inverse of a square matrix over GF(2), or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.R != m.C {
		return nil, fmt.Errorf("bitmatrix: cannot invert %dx%d matrix", m.R, m.C)
	}
	n := m.R
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		a.SwapRows(col, pivot)
		inv.SwapRows(col, pivot)
		for r := 0; r < n; r++ {
			if r != col && a.Get(r, col) {
				a.XorRows(r, col)
				inv.XorRows(r, col)
			}
		}
	}
	return inv, nil
}

// VStack returns the matrix whose rows are m's rows followed by o's rows.
func VStack(m, o *Matrix) *Matrix {
	if m.C != o.C {
		panic("bitmatrix: vstack column mismatch")
	}
	out := New(m.R+o.R, m.C)
	for i := 0; i < m.R; i++ {
		out.CopyRowFrom(i, m, i)
	}
	for i := 0; i < o.R; i++ {
		out.CopyRowFrom(m.R+i, o, i)
	}
	return out
}

// SelectRows returns a new matrix made of the given rows of m, in order.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	out := New(len(rows), m.C)
	for i, r := range rows {
		out.CopyRowFrom(i, m, r)
	}
	return out
}

// String renders the matrix as 0/1 text, one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if m.Get(i, j) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
