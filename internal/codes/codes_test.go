package codes_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/codes"
	"repro/internal/codetest"
	"repro/internal/core"
	"repro/internal/obs"
)

func TestRegistryEnumeration(t *testing.T) {
	names := codes.Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"crs", "evenodd", "liberation", "liberation-original", "rdp", "rs", "rs3"} {
		if !codes.Known(want) {
			t.Errorf("Known(%q) = false", want)
		}
	}
	if !codes.Known(codes.Default) {
		t.Errorf("default code %q is not registered", codes.Default)
	}
	infos := codes.All()
	if len(infos) != len(names) {
		t.Fatalf("All() has %d entries, Names() has %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
		if len(info.TestShapes) == 0 {
			t.Errorf("%s: no test shapes — the conformance matrix would skip it", info.Name)
		}
		if info.M < 2 {
			t.Errorf("%s: registry advertises M = %d", info.Name, info.M)
		}
		got, ok := codes.Lookup(info.Name)
		if !ok || got != info {
			t.Errorf("Lookup(%q) did not return the registry entry", info.Name)
		}
	}
}

func TestUnknownName(t *testing.T) {
	_, err := codes.New("tornado", 4, 5)
	if !errors.Is(err, codes.ErrUnknown) {
		t.Fatalf("New(tornado) error = %v, want ErrUnknown", err)
	}
	// The one shared message must name the offender and list what exists.
	if msg := err.Error(); !strings.Contains(msg, `"tornado"`) || !strings.Contains(msg, "liberation") {
		t.Errorf("unhelpful unknown-code error: %q", msg)
	}
	if _, ok := codes.Lookup("tornado"); ok {
		t.Error("Lookup(tornado) succeeded")
	}
	if codes.Known("tornado") {
		t.Error("Known(tornado) = true")
	}
}

func TestNoPrimeRejectsP(t *testing.T) {
	for _, name := range []string{"rs", "crs"} {
		if _, err := codes.New(name, 4, 5); !errors.Is(err, core.ErrParams) {
			t.Errorf("New(%s, k=4, p=5) error = %v, want ErrParams (family takes no prime)", name, err)
		}
		if _, err := codes.New(name, 4, 0); err != nil {
			t.Errorf("New(%s, k=4, p=0): %v", name, err)
		}
	}
}

func TestPrime(t *testing.T) {
	code, err := codes.New("liberation", 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := codes.Prime(code); !ok || p != 7 {
		t.Errorf("auto-selected prime = %d, %v; want 7, true", p, ok)
	}
	rs, err := codes.New("rs", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := codes.Prime(rs); ok {
		t.Errorf("rs reports a prime (%d); it has none", p)
	}
}

func TestShapesConstruct(t *testing.T) {
	for _, info := range codes.All() {
		for _, sh := range info.TestShapes {
			code, err := codes.New(info.Name, sh.K, sh.P)
			if err != nil {
				t.Errorf("%s k=%d p=%d: %v", info.Name, sh.K, sh.P, err)
				continue
			}
			if code.K() != sh.K {
				t.Errorf("%s k=%d p=%d: code.K() = %d", info.Name, sh.K, sh.P, code.K())
			}
			if code.M() != info.M {
				t.Errorf("%s k=%d p=%d: code.M() = %d, registry says %d",
					info.Name, sh.K, sh.P, code.M(), info.M)
			}
			// Codes that expose their prime must report the one requested.
			// (The bitmatrix-scheduled families don't expose one; the
			// layers that need it record the request instead.)
			if p, ok := codes.Prime(code); ok && sh.P != 0 && p != sh.P {
				t.Errorf("%s k=%d p=%d: resolved prime %d", info.Name, sh.K, sh.P, p)
			}
			if code.W() <= 0 {
				t.Errorf("%s k=%d p=%d: W = %d", info.Name, sh.K, sh.P, code.W())
			}
		}
	}
}

func TestNewObserved(t *testing.T) {
	reg := obs.NewRegistry()
	code, err := codes.NewObserved("liberation", 3, 5, reg)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStripe(code.K(), code.W(), 16)
	if err := code.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Spans["liberation.encode"].Calls == 0 {
		t.Errorf("no liberation.encode span recorded; spans = %v", snap.Spans)
	}
	// A nil registry must still construct a working, uninstrumented code.
	if _, err := codes.NewObserved("rs", 3, 0, nil); err != nil {
		t.Errorf("NewObserved with nil registry: %v", err)
	}
}

// TestConformanceMatrix runs the full codetest battery over every
// registered code at every advertised shape — the registry is the single
// enumeration point, so a newly registered family is conformance-tested
// (and capability-probed) with zero new test code.
func TestConformanceMatrix(t *testing.T) {
	for _, info := range codes.All() {
		for _, sh := range info.TestShapes {
			code, err := codes.New(info.Name, sh.K, sh.P)
			if err != nil {
				t.Fatalf("%s k=%d p=%d: %v", info.Name, sh.K, sh.P, err)
			}
			t.Run(fmt.Sprintf("%s/k=%d,p=%d", info.Name, sh.K, sh.P), func(t *testing.T) {
				codetest.Run(t, code)
			})
		}
	}
}

// TestLiberationShapesMirror keeps the hardcoded copy of the liberation
// test shapes in internal/liberation/correct_oracle_test.go (which cannot
// import this package without a cycle) honest: if the registry's shape
// list changes, this test names the file to update.
func TestLiberationShapesMirror(t *testing.T) {
	info, ok := codes.Lookup("liberation")
	if !ok {
		t.Fatal("liberation not registered")
	}
	mirror := [][2]int{{3, 5}, {5, 5}, {6, 7}, {8, 11}, {4, 5}}
	if len(info.TestShapes) != len(mirror) {
		t.Fatalf("liberation TestShapes changed (%d entries, mirror has %d): update liberationShapes in internal/liberation/correct_oracle_test.go",
			len(info.TestShapes), len(mirror))
	}
	for i, sh := range info.TestShapes {
		p := sh.P
		if p == 0 {
			p = core.NextOddPrime(max(sh.K, 2))
		}
		if sh.K != mirror[i][0] || p != mirror[i][1] {
			t.Errorf("shape %d: registry (k=%d,p=%d) != mirror (k=%d,p=%d): update liberationShapes in internal/liberation/correct_oracle_test.go",
				i, sh.K, p, mirror[i][0], mirror[i][1])
		}
	}
}
