// Package codes is the central registry of the erasure codes in
// this repository. Every layer of the production stack — the streaming
// shard data path, the array simulator, the CLIs, and the benchmark
// harnesses — resolves a code by name through this package instead of
// constructing a concrete implementation, so the whole
// encode/decode/heal/observe machinery is code-agnostic and a new code
// family becomes available everywhere by registering one entry here.
//
// A registry entry maps a name ("liberation", "rdp", "evenodd", ...)
// plus the parameters k (data strips) and p (the prime parameter of the
// array codes; 0 selects the smallest usable prime) to a constructed
// core.Code. Entries also enumerate a spread of valid (k, p) shapes so
// tests and benches can run conformance matrices over every registered
// code without knowing any family's parameter constraints.
//
// Capabilities beyond plain encode/decode are discovered at runtime via
// interface assertions, never by name: core.Updater (small writes),
// core.ColumnCorrector (silent-error localization), and obs.Observable
// (metrics instrumentation).
package codes

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/evenodd"
	"repro/internal/liberation"
	"repro/internal/obs"
	"repro/internal/rdp"
	"repro/internal/rs"
)

// Default is the code name layers fall back to when none is configured —
// the paper's own code, and what every pre-registry manifest and CLI
// default used.
const Default = "liberation"

// ErrUnknown marks a lookup of a name no code is registered under. It is
// the one shared "unknown code" error: every layer that resolves names
// (shard manifests, CLI flags, bench harnesses) reports it identically.
var ErrUnknown = errors.New("codes: unknown code")

// Shape is one valid (k, p) parameter combination of a code, used to
// drive test and bench matrices. P is 0 for codes without a prime
// parameter (or to select it automatically).
type Shape struct {
	K int
	P int
}

// Info describes one registered code family.
type Info struct {
	// Name is the registry key, e.g. "liberation" or "rdp".
	Name string
	// Description is a one-line summary for CLI help text.
	Description string
	// UsesPrime reports whether the code takes the prime parameter p.
	// Codes with UsesPrime false reject a nonzero p outright rather than
	// silently ignoring it.
	UsesPrime bool
	// TestShapes is a spread of valid (k, p) combinations covering the
	// family's parameter space (smallest usable, k == limit, auto-p, a
	// mid-size array). Conformance and round-trip matrices iterate it.
	TestShapes []Shape
	// M is the family's parity count (its erasure tolerance); the RAID-6
	// families have M = 2, which register() fills in when left zero.
	M int

	build func(k, p int) (core.Code, error)
}

// New constructs the code with the given parameters, validating that p
// is meaningful for this family.
func (i *Info) New(k, p int) (core.Code, error) {
	if !i.UsesPrime && p != 0 {
		return nil, fmt.Errorf("%w: code %q takes no prime parameter (got p=%d)",
			core.ErrParams, i.Name, p)
	}
	return i.build(k, p)
}

var registry = make(map[string]*Info)

func register(info *Info) {
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("codes: duplicate registration of %q", info.Name))
	}
	if info.M == 0 {
		info.M = 2
	}
	registry[info.Name] = info
}

func init() {
	register(&Info{
		Name:        "liberation",
		Description: "Liberation code with the paper's optimal algorithms (W = p)",
		UsesPrime:   true,
		TestShapes:  []Shape{{K: 3, P: 5}, {K: 5, P: 5}, {K: 6, P: 7}, {K: 8, P: 11}, {K: 4, P: 0}},
		build: func(k, p int) (core.Code, error) {
			if p == 0 {
				return liberation.NewAuto(k)
			}
			return liberation.New(k, p)
		},
	})
	register(&Info{
		Name:        "liberation-original",
		Description: "Liberation code on Jerasure-style bit-matrix schedules",
		UsesPrime:   true,
		TestShapes:  []Shape{{K: 3, P: 5}, {K: 6, P: 7}},
		build: func(k, p int) (core.Code, error) {
			if p == 0 {
				return liberation.NewOriginalAuto(k)
			}
			return liberation.NewOriginal(k, p)
		},
	})
	register(&Info{
		Name:        "rdp",
		Description: "Row-Diagonal Parity code (W = p-1, k <= p-1)",
		UsesPrime:   true,
		TestShapes:  []Shape{{K: 3, P: 5}, {K: 4, P: 5}, {K: 6, P: 7}, {K: 8, P: 0}},
		build: func(k, p int) (core.Code, error) {
			if p == 0 {
				return rdp.NewAuto(k)
			}
			return rdp.New(k, p)
		},
	})
	register(&Info{
		Name:        "evenodd",
		Description: "EVENODD code (W = p-1, k <= p)",
		UsesPrime:   true,
		TestShapes:  []Shape{{K: 3, P: 5}, {K: 5, P: 5}, {K: 6, P: 7}, {K: 8, P: 0}},
		build: func(k, p int) (core.Code, error) {
			if p == 0 {
				return evenodd.NewAuto(k)
			}
			return evenodd.New(k, p)
		},
	})
	register(&Info{
		Name:        "rs",
		Description: "Reed-Solomon P+Q over GF(2^8) (W = 1, no prime)",
		UsesPrime:   false,
		TestShapes:  []Shape{{K: 3}, {K: 8}},
		build: func(k, _ int) (core.Code, error) {
			return rs.New(k)
		},
	})
	register(&Info{
		Name:        "rs3",
		Description: "Triple-parity Reed-Solomon over GF(2^8) (W = 1, tolerates any 3 erasures)",
		UsesPrime:   false,
		M:           3,
		TestShapes:  []Shape{{K: 3}, {K: 6}},
		build: func(k, _ int) (core.Code, error) {
			return rs.NewM(k, 3)
		},
	})
	register(&Info{
		Name:        "crs",
		Description: "Cauchy Reed-Solomon on bit-matrix schedules (W = 8, no prime)",
		UsesPrime:   false,
		TestShapes:  []Shape{{K: 3}, {K: 6}},
		build: func(k, _ int) (core.Code, error) {
			return crs.New(k)
		},
	})
}

// Lookup returns the registry entry for name.
func Lookup(name string) (*Info, bool) {
	info, ok := registry[name]
	return info, ok
}

// Known reports whether name is registered.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// Names returns the registered code names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns every registry entry, sorted by name — the enumeration
// behind test and bench matrices.
func All() []*Info {
	infos := make([]*Info, 0, len(registry))
	for _, name := range Names() {
		infos = append(infos, registry[name])
	}
	return infos
}

// New resolves name and constructs the code with the given parameters.
// Unknown names fail with ErrUnknown and the list of registered codes.
func New(name string, k, p int) (core.Code, error) {
	info, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %s)",
			ErrUnknown, name, strings.Join(Names(), ", "))
	}
	return info.New(k, p)
}

// NewObserved is New plus metrics: when the constructed code is
// obs.Observable the registry is attached, so per-operation spans land
// wherever the calling layer reports.
func NewObserved(name string, k, p int, reg *obs.Registry) (core.Code, error) {
	code, err := New(name, k, p)
	if err != nil {
		return nil, err
	}
	obs.InstrumentCode(code, reg)
	return code, nil
}

// Prime extracts the resolved prime parameter from a constructed code
// (useful when it was built with p = 0, i.e. auto-selected). The second
// result is false for codes that don't expose one — the families without
// a prime parameter, and the bitmatrix-scheduled codes, whose geometry
// is fully described by W; layers that persist parameters record the
// requested p for those.
func Prime(code core.Code) (int, bool) {
	type primed interface{ P() int }
	if c, ok := code.(primed); ok {
		return c.P(), true
	}
	return 0, false
}
