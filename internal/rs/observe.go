package rs

import "repro/internal/obs"

// Instrument attaches a metrics registry to the code: from then on every
// Encode and Decode records a span — latency, bytes processed, work
// units, and the exact core.Ops element counts — under the span names
// rs.encode and rs.decode. (GF(2^8) multiplications on the Q path are
// not element XORs and are not counted in Ops.) A nil registry detaches.
func (c *Code) Instrument(reg *obs.Registry) { c.obs = reg }

// Registry returns the attached metrics registry (nil when detached).
func (c *Code) Registry() *obs.Registry { return c.obs }
