package rs_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/codetest"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rs"
)

// TestMConformance runs the full battery over a spread of (k, m) shapes,
// including single-parity and deep-parity corners the registry's rs3
// entry doesn't reach. The battery enumerates every erasure subset of
// size <= m, so this is the MDS proof for each shape. (The k+m = 256
// field-limit shape is exercised separately in TestMFieldLimit — the
// full subset enumeration at that width would be millions of decodes.)
func TestMConformance(t *testing.T) {
	for _, sh := range [][2]int{{1, 1}, {1, 3}, {2, 2}, {3, 3}, {5, 3}, {6, 4}, {10, 6}} {
		c, err := rs.NewM(sh[0], sh[1])
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name(), func(t *testing.T) { codetest.Run(t, c) })
	}
}

func TestMCrossDecodeWithPQ(t *testing.T) {
	// The m=2 generalized code and the P+Q baseline use different
	// generators, so their parities differ — but both must recover the
	// same data from the same double-data loss. Start from one stripe,
	// encode under each code, lose the same two data strips, and require
	// both decodes to restore identical data.
	const k = 6
	pq, err := rs.New(k)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := rs.NewM(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewStripeFor(pq, 32)
	a.FillRandom(rand.New(rand.NewSource(1)))
	b := a.Clone()
	for s, c := range map[*core.Stripe]core.Code{a: pq, b: m2} {
		if err := c.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		s.ZeroStrip(0)
		s.ZeroStrip(3)
		if err := c.Decode(s, []int{0, 3}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !a.EqualData(b) {
		t.Error("the two constructions recovered different data from the same loss")
	}
}

func TestMRejectsBadShapes(t *testing.T) {
	for _, sh := range [][2]int{{0, 2}, {3, 0}, {-1, 2}, {255, 2}, {200, 57}} {
		if _, err := rs.NewM(sh[0], sh[1]); !errors.Is(err, core.ErrParams) {
			t.Errorf("NewM(%d, %d) error = %v, want ErrParams", sh[0], sh[1], err)
		}
	}
	if _, err := rs.NewM(253, 3); err != nil {
		t.Errorf("NewM(253, 3) (k+m = 256, the field limit): %v", err)
	}
}

// TestMFieldLimit spot-checks the widest constructible code, k+m = 256:
// a triple data loss and a mixed data/parity loss, rather than the full
// subset sweep the conformance battery would run.
func TestMFieldLimit(t *testing.T) {
	c, err := rs.NewM(253, 3)
	if err != nil {
		t.Fatal(err)
	}
	orig := core.NewStripeFor(c, 8)
	orig.FillRandom(rand.New(rand.NewSource(5)))
	if err := c.Encode(orig, nil); err != nil {
		t.Fatal(err)
	}
	for _, erased := range [][]int{{0, 100, 252}, {7, 253, 255}} {
		s := orig.Clone()
		for _, e := range erased {
			s.ZeroStrip(e)
		}
		if err := c.Decode(s, erased, nil); err != nil {
			t.Fatalf("erased %v: %v", erased, err)
		}
		if !s.Equal(orig) {
			t.Errorf("erased %v: stripe not restored", erased)
		}
	}
}

func TestMDecodeDuplicatesAndOverload(t *testing.T) {
	c, err := rs.NewM(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	orig := core.NewStripeFor(c, 16)
	orig.FillRandom(rand.New(rand.NewSource(2)))
	if err := c.Encode(orig, nil); err != nil {
		t.Fatal(err)
	}
	// Duplicated indices must be deduped, not counted against the budget.
	s := orig.Clone()
	s.ZeroStrip(0)
	s.ZeroStrip(5)
	if err := c.Decode(s, []int{0, 5, 0, 5, 5}, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(orig) {
		t.Error("decode with duplicated erasure indices did not restore the stripe")
	}
	// Four distinct losses exceed m = 3.
	if err := c.Decode(orig.Clone(), []int{0, 1, 2, 3}, nil); !errors.Is(err, core.ErrTooManyErasures) {
		t.Errorf("4 erasures: %v, want ErrTooManyErasures", err)
	}
}

func TestMObserved(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := rs.NewM(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Instrument(reg)
	if c.Registry() != reg {
		t.Fatal("Registry() did not return the attached registry")
	}
	s := core.NewStripeFor(c, 16)
	s.FillRandom(rand.New(rand.NewSource(3)))
	if err := c.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	s.ZeroStrip(0)
	if err := c.Decode(s, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Spans["rsm.encode"].Calls != 1 || snap.Spans["rsm.decode"].Calls != 1 {
		t.Errorf("spans not recorded: %v", snap.Spans)
	}
}

func TestMOpsAccounting(t *testing.T) {
	// Per parity: one multiply-into (a copy) plus k-1 multiply-accumulates
	// (one element XOR each). GF multiplies themselves are not XORs.
	const k, m = 5, 3
	c, err := rs.NewM(k, m)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStripeFor(c, 8)
	s.FillRandom(rand.New(rand.NewSource(4)))
	var ops core.Ops
	if err := c.Encode(s, &ops); err != nil {
		t.Fatal(err)
	}
	if ops.XORs != m*(k-1) || ops.Copies != m {
		t.Errorf("encode ops = %v, want %d XORs, %d copies", &ops, m*(k-1), m)
	}
}
