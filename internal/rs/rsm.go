package rs

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/obs"
)

// MCode is the generalized Reed-Solomon code with k data strips and m
// parity strips over GF(2^8), tolerating any m erasures. Each strip is a
// single element (W = 1), like the P+Q baseline; the parity rows come
// from a systematic Vandermonde generator (gf.RSParityMatrix), so the
// code is MDS for every k+m <= 256. With m = 2 it is algebraically
// equivalent to Code but pays general multiplications on the P row too;
// its reason to exist is m >= 3, the first family in the registry that
// survives a triple fault.
type MCode struct {
	k, m   int
	parity [][]byte // m×k parity submatrix of the systematic generator

	obs *obs.Registry // optional metrics sink (see Instrument)
}

// NewM returns the generalized RS code with k data strips and m parities
// (k >= 1, m >= 1, k+m <= 256).
func NewM(k, m int) (*MCode, error) {
	if k < 1 || m < 1 || k+m > 256 {
		return nil, fmt.Errorf("%w: need k >= 1, m >= 1, k+m <= 256, got k=%d m=%d",
			core.ErrParams, k, m)
	}
	parity, err := gf.RSParityMatrix(k, m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", core.ErrParams, err)
	}
	return &MCode{k: k, m: m, parity: parity}, nil
}

func (c *MCode) Name() string { return fmt.Sprintf("rs(k=%d,m=%d)", c.k, c.m) }
func (c *MCode) K() int       { return c.k }

// M returns the parity count the code was built with.
func (c *MCode) M() int { return c.m }

// W returns 1: RS strips are single elements.
func (c *MCode) W() int { return 1 }

// Instrument attaches a metrics registry: every Encode and Decode then
// records an rsm.encode / rsm.decode span. A nil registry detaches.
// (GF(2^8) multiplications are not element XORs and are not counted in
// Ops; the XOR half of each multiply-accumulate is, as on the P+Q
// code's Q path.)
func (c *MCode) Instrument(reg *obs.Registry) { c.obs = reg }

// Registry returns the attached metrics registry (nil when detached).
func (c *MCode) Registry() *obs.Registry { return c.obs }

// Encode computes the m parity strips: parity i is the data vector dotted
// with row i of the parity matrix.
func (c *MCode) Encode(s *core.Stripe, ops *core.Ops) error {
	return obs.Observed(c.obs, "rsm.encode", s.DataSize(), c.m, ops,
		func(o *core.Ops) error { return c.encode(s, o) })
}

func (c *MCode) encode(s *core.Stripe, ops *core.Ops) error {
	if err := s.CheckShape(c.k, c.m, 1); err != nil {
		return err
	}
	for i := 0; i < c.m; i++ {
		c.encodeParity(s, i, ops)
	}
	return nil
}

// encodeParity recomputes parity strip i (0 <= i < m) from the data. The
// first term is a multiply-into (counted as a copy), each further term a
// multiply-accumulate (its XOR half counted as one element XOR).
func (c *MCode) encodeParity(s *core.Stripe, i int, ops *core.Ops) {
	row, dst := c.parity[i], s.Strips[c.k+i]
	gf.MulSlice(dst, s.Strips[0], row[0])
	ops.Add(core.Ops{Copies: 1})
	for j := 1; j < c.k; j++ {
		gf.MulXorSlice(dst, s.Strips[j], row[j])
		ops.Add(core.Ops{XORs: 1})
	}
}

// Decode reconstructs up to m erased strips: pick k surviving rows of the
// systematic generator (unit rows for data, parity rows for parities),
// invert that k×k system, and rebuild the lost data as survivor
// combinations; lost parities are then re-encoded from the full data.
// Any k survivors suffice — the generator is MDS by construction.
func (c *MCode) Decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	return obs.Observed(c.obs, "rsm.decode", s.DataSize(), len(erased), ops,
		func(o *core.Ops) error { return c.decode(s, erased, o) })
}

func (c *MCode) decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	if err := s.CheckShape(c.k, c.m, 1); err != nil {
		return err
	}
	k, m, n := c.k, c.m, c.k+c.m
	lost := make([]int, 0, len(erased))
	seen := make(map[int]bool, len(erased))
	for _, e := range erased {
		if e < 0 || e >= n {
			return fmt.Errorf("%w: erased=%v", core.ErrParams, erased)
		}
		if !seen[e] {
			seen[e] = true
			lost = append(lost, e)
		}
	}
	if len(lost) > m {
		return core.ErrTooManyErasures
	}
	sort.Ints(lost)

	var lostData, lostParity []int
	for _, e := range lost {
		if e < k {
			lostData = append(lostData, e)
		} else {
			lostParity = append(lostParity, e)
		}
	}
	if len(lostData) > 0 {
		// The k×k survivor system: row r states that survivor strip
		// ys[r] is generator row B[r] applied to the data vector.
		rows := make([][]byte, 0, k)
		ys := make([][]byte, 0, k)
		for i := 0; i < n && len(rows) < k; i++ {
			if seen[i] {
				continue
			}
			var row []byte
			if i < k {
				row = make([]byte, k)
				row[i] = 1
			} else {
				row = c.parity[i-k]
			}
			rows = append(rows, row)
			ys = append(ys, s.Strips[i])
		}
		inv, err := gf.InvertMatrix(rows)
		if err != nil {
			// Unreachable for an MDS generator; surface it rather than
			// writing garbage if the tables are ever miscomputed.
			return fmt.Errorf("rs: survivor matrix not invertible: %w", err)
		}
		for _, d := range lostData {
			dst := s.Strips[d]
			gf.MulSlice(dst, ys[0], inv[d][0])
			ops.Add(core.Ops{Copies: 1})
			for r := 1; r < k; r++ {
				gf.MulXorSlice(dst, ys[r], inv[d][r])
				ops.Add(core.Ops{XORs: 1})
			}
		}
	}
	for _, e := range lostParity {
		c.encodeParity(s, e-k, ops)
	}
	return nil
}

// Update patches all m parities after an in-place change of the data
// element at (col, row): parity i absorbs parity[i][col] * delta.
func (c *MCode) Update(s *core.Stripe, col, row int, oldElem []byte, ops *core.Ops) (int, error) {
	if err := s.CheckShape(c.k, c.m, 1); err != nil {
		return 0, err
	}
	if col < 0 || col >= c.k || row != 0 {
		return 0, fmt.Errorf("%w: update at (%d,%d)", core.ErrParams, col, row)
	}
	cur := s.Strips[col]
	if len(oldElem) != len(cur) {
		return 0, fmt.Errorf("%w: old element is %d bytes, strip is %d",
			core.ErrParams, len(oldElem), len(cur))
	}
	delta := make([]byte, len(cur))
	for i := range delta {
		delta[i] = oldElem[i] ^ cur[i]
	}
	for i := 0; i < c.m; i++ {
		gf.MulXorSlice(s.Strips[c.k+i], delta, c.parity[i][col])
		ops.Add(core.Ops{XORs: 1})
	}
	return c.m, nil
}
