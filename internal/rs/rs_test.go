package rs

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestDecodeAllPatterns(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8, 16, 64, 255} {
		c, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		orig := core.NewStripe(k, 1, 64)
		orig.FillRandom(rand.New(rand.NewSource(int64(k))))
		if err := c.Encode(orig, nil); err != nil {
			t.Fatal(err)
		}
		patterns := core.ErasurePairs(k + 2)
		if k > 16 {
			patterns = patterns[:200] // keep the 255-strip sweep bounded
		}
		for e := 0; e < k+2; e++ {
			patterns = append(patterns, [2]int{e, e})
		}
		for _, pat := range patterns {
			s := orig.Clone()
			erased := []int{pat[0], pat[1]}
			if pat[0] == pat[1] {
				erased = erased[:1]
			}
			for _, e := range erased {
				rand.New(rand.NewSource(1)).Read(s.Strips[e])
			}
			if err := c.Decode(s, erased, nil); err != nil {
				t.Fatalf("k=%d erased=%v: %v", k, erased, err)
			}
			if !s.Equal(orig) {
				t.Errorf("k=%d erased=%v: decode failed", k, erased)
			}
		}
	}
}

func TestRejectsBadParams(t *testing.T) {
	for _, k := range []int{0, -1, 256, 1000} {
		if _, err := New(k); err == nil {
			t.Errorf("New(%d) succeeded, want error", k)
		}
	}
}

func TestQIsNotP(t *testing.T) {
	// Q must differ from P for k >= 2 on non-uniform data (a classic
	// implementation bug is Q degenerating into a second XOR parity).
	c, _ := New(4)
	s := core.NewStripe(4, 1, 16)
	s.Strips[0][0] = 1
	s.Strips[1][0] = 2
	if err := c.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	if string(s.Strips[4]) == string(s.Strips[5]) {
		t.Error("P and Q are identical on asymmetric data")
	}
}
