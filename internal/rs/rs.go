// Package rs implements the conventional Reed-Solomon P+Q RAID-6 scheme
// over GF(2^8) — the Linux-RAID-6 style baseline the paper's introduction
// contrasts the XOR-based array codes with. Each strip is a single element
// (W = 1):
//
//	P = XOR_j D_j
//	Q = XOR_j g^j * D_j        (g = 2, the field generator)
//
// Unlike the array codes it tolerates any two erasures with k up to 255,
// at the cost of finite-field multiplications on the Q path.
package rs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/obs"
)

// Code is a Reed-Solomon P+Q RAID-6 instance with k data strips.
type Code struct {
	k int

	obs *obs.Registry // optional metrics sink (see Instrument)
}

// New returns the RS P+Q code for k data strips (1 <= k <= 255).
func New(k int) (*Code, error) {
	if k < 1 || k > 255 {
		return nil, fmt.Errorf("%w: need 1 <= k <= 255, got k=%d", core.ErrParams, k)
	}
	return &Code{k: k}, nil
}

func (c *Code) Name() string { return fmt.Sprintf("rs(k=%d)", c.k) }
func (c *Code) K() int       { return c.k }

// M returns 2: the classic P+Q code has two parities (see NewM for the
// generalized multi-parity construction).
func (c *Code) M() int { return 2 }

// W returns 1: RS strips are single elements.
func (c *Code) W() int { return 1 }

// Encode computes P and Q. Q uses the Horner scheme
// Q = ((D_{k-1} * g + D_{k-2}) * g + ...) so that the hot loop is one
// doubling plus one XOR per data strip, as in the Linux implementation.
func (c *Code) Encode(s *core.Stripe, ops *core.Ops) error {
	return obs.Observed(c.obs, "rs.encode", s.DataSize(), 2, ops,
		func(o *core.Ops) error { return c.encode(s, o) })
}

func (c *Code) encode(s *core.Stripe, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, 1); err != nil {
		return err
	}
	k := c.k
	pe, qe := s.Strips[k], s.Strips[k+1]
	ops.Copy(pe, s.Strips[k-1])
	ops.Copy(qe, s.Strips[k-1])
	for j := k - 2; j >= 0; j-- {
		ops.XorInto(pe, s.Strips[j])
		gf.Mul2Slice(qe, qe)
		ops.XorInto(qe, s.Strips[j])
	}
	return nil
}

// Decode reconstructs up to two erased strips with the standard RAID-6
// algebra: P syndromes for the XOR side, Q syndromes divided by the
// appropriate powers of g for the Q side, and the two-data-failure case
// solved from the 2x2 Vandermonde system.
func (c *Code) Decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	return obs.Observed(c.obs, "rs.decode", s.DataSize(), len(erased), ops,
		func(o *core.Ops) error { return c.decode(s, erased, o) })
}

func (c *Code) decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, 1); err != nil {
		return err
	}
	k := c.k
	switch len(erased) {
	case 0:
		return nil
	case 1:
		return c.decodeOne(s, erased[0], ops)
	case 2:
		a, b := erased[0], erased[1]
		if a > b {
			a, b = b, a
		}
		if a < 0 || b > k+1 {
			return fmt.Errorf("%w: erased=%v", core.ErrParams, erased)
		}
		if a == b {
			return c.decodeOne(s, a, ops)
		}
		switch {
		case a >= k: // P and Q
			return c.encode(s, ops)
		case b == k: // data + P: recover data from Q, then P
			c.recoverViaQ(s, a, ops)
			return c.encodeP(s, ops)
		case b == k+1: // data + Q: recover data from P, then Q
			c.recoverViaP(s, a, ops)
			return c.encodeQ(s, ops)
		default: // two data strips
			return c.decodeTwoData(s, a, b, ops)
		}
	default:
		return core.ErrTooManyErasures
	}
}

func (c *Code) decodeOne(s *core.Stripe, e int, ops *core.Ops) error {
	switch {
	case e == c.k:
		return c.encodeP(s, ops)
	case e == c.k+1:
		return c.encodeQ(s, ops)
	case e >= 0 && e < c.k:
		c.recoverViaP(s, e, ops)
		return nil
	default:
		return fmt.Errorf("%w: erased=%d", core.ErrParams, e)
	}
}

func (c *Code) encodeP(s *core.Stripe, ops *core.Ops) error {
	pe := s.Strips[c.k]
	ops.Copy(pe, s.Strips[0])
	for j := 1; j < c.k; j++ {
		ops.XorInto(pe, s.Strips[j])
	}
	return nil
}

func (c *Code) encodeQ(s *core.Stripe, ops *core.Ops) error {
	qe := s.Strips[c.k+1]
	ops.Copy(qe, s.Strips[c.k-1])
	for j := c.k - 2; j >= 0; j-- {
		gf.Mul2Slice(qe, qe)
		ops.XorInto(qe, s.Strips[j])
	}
	return nil
}

func (c *Code) recoverViaP(s *core.Stripe, d int, ops *core.Ops) {
	de := s.Strips[d]
	ops.Copy(de, s.Strips[c.k])
	for j := 0; j < c.k; j++ {
		if j != d {
			ops.XorInto(de, s.Strips[j])
		}
	}
}

// recoverViaQ rebuilds data strip d from Q alone:
// D_d = (Q ^ XOR_{j!=d} g^j D_j) * g^{-d}.
func (c *Code) recoverViaQ(s *core.Stripe, d int, ops *core.Ops) {
	de := s.Strips[d]
	ops.Copy(de, s.Strips[c.k+1])
	for j := 0; j < c.k; j++ {
		if j != d {
			gf.MulXorSlice(de, s.Strips[j], gf.Exp(j))
		}
	}
	gf.MulSlice(de, de, gf.Inv(gf.Exp(d)))
}

// decodeTwoData solves the two-data-failure system
//
//	D_a ^ D_b                 = Psyn
//	g^a * D_a ^ g^b * D_b     = Qsyn
//
// giving D_b = (Qsyn ^ g^a * Psyn) / (g^a ^ g^b) and D_a = Psyn ^ D_b.
func (c *Code) decodeTwoData(s *core.Stripe, a, b int, ops *core.Ops) error {
	k := c.k
	n := s.ElemSize
	psyn := make([]byte, n)
	qsyn := make([]byte, n)
	ops.Copy(psyn, s.Strips[k])
	ops.Copy(qsyn, s.Strips[k+1])
	for j := 0; j < k; j++ {
		if j == a || j == b {
			continue
		}
		ops.XorInto(psyn, s.Strips[j])
		gf.MulXorSlice(qsyn, s.Strips[j], gf.Exp(j))
	}
	denom := gf.Inv(gf.Exp(a) ^ gf.Exp(b))
	db := s.Strips[b]
	gf.MulSlice(db, psyn, gf.Exp(a))
	ops.XorInto(db, qsyn)
	gf.MulSlice(db, db, denom)
	da := s.Strips[a]
	ops.Copy(da, psyn)
	ops.XorInto(da, db)
	return nil
}
