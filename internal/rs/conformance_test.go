package rs_test

import (
	"testing"

	"repro/internal/codetest"
	"repro/internal/rs"
)

func TestConformance(t *testing.T) {
	for _, k := range []int{1, 2, 5, 12, 40} {
		c, err := rs.New(k)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name(), func(t *testing.T) { codetest.Run(t, c) })
	}
}
