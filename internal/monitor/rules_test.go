package monitor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// trans summarizes a transition list as "rule:to" strings for compact
// assertions.
func trans(ts []Transition) []string {
	out := make([]string, len(ts))
	for i, tr := range ts {
		out[i] = tr.Rule + ":" + tr.To
	}
	return out
}

func wantTrans(t *testing.T, got []Transition, want ...string) {
	t.Helper()
	g := strings.Join(trans(got), " ")
	w := strings.Join(want, " ")
	if g != w {
		t.Errorf("transitions = [%s], want [%s]", g, w)
	}
}

// TestRuleLifecycle drives one rate rule through the full
// ok → pending → firing → resolved ladder with a fake clock.
func TestRuleLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(64)
	c := newClock()
	flight := obs.NewFlightRecorder(64)
	eng, err := NewEngine([]Rule{{
		Name: "retry-burn", Metric: "shard.retry.total",
		Kind: RuleRate, Op: ">", Value: 0.1,
		Window: Duration(4 * time.Second), For: Duration(2 * time.Second),
		Severity: SeverityWarning,
	}}, obs.NewTracer(flight), reg)
	if err != nil {
		t.Fatal(err)
	}

	tick := func() []Transition {
		sample(ts, reg, c)
		out := eng.Eval(ts, c.Now())
		c.Advance(time.Second)
		return out
	}

	// Quiet rounds: nothing moves.
	wantTrans(t, tick())
	wantTrans(t, tick())

	// A retry burst: rate over 4s jumps above 0.1 → pending.
	reg.Count("shard.retry.total", 4)
	wantTrans(t, tick(), "retry-burn:pending")
	if a := eng.Alerts()[0]; a.State != StatePending || a.Trace == "" {
		t.Fatalf("alert after pending = %+v, want pending with a trace", a)
	}

	// Condition still true but For not yet elapsed.
	wantTrans(t, tick())

	// 2s after pending: fires.
	got := tick()
	wantTrans(t, got, "retry-burn:firing")
	if got[0].Trace == "" || got[0].Trace != eng.Alerts()[0].Trace {
		t.Errorf("firing transition trace %q != alert trace %q", got[0].Trace, eng.Alerts()[0].Trace)
	}
	if v := reg.Gauge("monitor.alerts.firing").Value(); v != 1 {
		t.Errorf("monitor.alerts.firing = %g, want 1", v)
	}

	// The burst ages out of the 4s window → resolved.
	var resolved []Transition
	for i := 0; i < 6 && len(resolved) == 0; i++ {
		resolved = tick()
	}
	wantTrans(t, resolved, "retry-burn:resolved")
	a := eng.Alerts()[0]
	if a.State != StateOK || a.ResolvedAt.IsZero() {
		t.Fatalf("alert after resolve = %+v, want ok with ResolvedAt", a)
	}
	if v := reg.Gauge("monitor.alerts.firing").Value(); v != 0 {
		t.Errorf("monitor.alerts.firing = %g, want 0", v)
	}

	// The whole episode is one trace in the flight recorder: pending,
	// firing, resolved, and the root monitor.alert span.
	events := flight.Tail(0, 0)
	byName := map[string]string{}
	for _, ev := range events {
		byName[ev.Name] = ev.Trace
	}
	for _, name := range []string{"monitor.alert.pending", "monitor.alert.firing",
		"monitor.alert.resolved", "monitor.alert"} {
		if byName[name] == "" {
			t.Fatalf("flight recorder missing %s (have %v)", name, byName)
		}
		if byName[name] != byName["monitor.alert"] {
			t.Errorf("%s trace %s not correlated with episode root %s",
				name, byName[name], byName["monitor.alert"])
		}
	}
	if tc := reg.Counter("monitor.transitions.total").Value(); tc != 3 {
		t.Errorf("monitor.transitions.total = %d, want 3", tc)
	}
}

// TestPendingCancel: a condition that clears before For elapses goes
// back to ok (not resolved) and the episode trace ends.
func TestPendingCancel(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(64)
	c := newClock()
	eng, err := NewEngine([]Rule{{
		Name: "q", Metric: "shard.quarantine.total",
		Kind: RuleThreshold, Op: ">", Value: 0,
		Window: Duration(2 * time.Second), For: Duration(10 * time.Second),
	}}, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	tick := func() []Transition {
		sample(ts, reg, c)
		out := eng.Eval(ts, c.Now())
		c.Advance(time.Second)
		return out
	}
	tick()
	reg.Count("shard.quarantine.total", 1)
	wantTrans(t, tick(), "q:pending")
	// The quarantine ages out of the 2s window long before For (10s).
	var cleared []Transition
	for i := 0; i < 4 && len(cleared) == 0; i++ {
		cleared = tick()
	}
	wantTrans(t, cleared, "q:ok")
	if a := eng.Alerts()[0]; a.State != StateOK || !a.FiredAt.IsZero() {
		t.Errorf("alert = %+v, want ok that never fired", a)
	}
}

// TestForZeroFiresThroughPending: For == 0 emits pending and firing in
// the same round — the ladder is never skipped.
func TestForZeroFiresThroughPending(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	eng, _ := NewEngine([]Rule{{
		Name: "g", Metric: "depth", Kind: RuleThreshold, Op: ">=", Value: 5,
	}}, nil, reg)
	reg.SetGauge("depth", 7)
	sample(ts, reg, c)
	wantTrans(t, eng.Eval(ts, c.Now()), "g:pending", "g:firing")
}

// TestThresholdGaugeAgg: gauge threshold rules honor the agg selector.
func TestThresholdGaugeAgg(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	for _, v := range []float64{10, 2} {
		reg.SetGauge("depth", v)
		sample(ts, reg, c)
		c.Advance(time.Second)
	}
	now := c.Now()
	// last = 2 (below), max = 10 (above).
	last, _ := evalValue(ts, Rule{Metric: "depth", Kind: RuleThreshold}, nil, now)
	max, _ := evalValue(ts, Rule{Metric: "depth", Kind: RuleThreshold,
		Agg: "max", Window: Duration(time.Minute)}, nil, now)
	if last != 2 || max != 10 {
		t.Errorf("last=%g max=%g, want 2 and 10", last, max)
	}
}

// TestMissingMetricStaysOK: a rule over a series that never appears
// evaluates false forever.
func TestMissingMetricStaysOK(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	eng, _ := NewEngine([]Rule{{Name: "ghost", Metric: "no.such.metric", Op: "<", Value: 100}}, nil, reg)
	for i := 0; i < 3; i++ {
		sample(ts, reg, c)
		if got := eng.Eval(ts, c.Now()); len(got) != 0 {
			t.Fatalf("round %d: transitions %v for a missing metric", i, trans(got))
		}
		c.Advance(time.Second)
	}
}

// TestRuleValidation rejects malformed rules at engine construction.
func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{},          // no name
		{Name: "x"}, // no metric
		{Name: "x", Metric: "m", Kind: "bogus"},
		{Name: "x", Metric: "m", Kind: RuleRate}, // rate without window
		{Name: "x", Metric: "m", Op: "~"},
		{Name: "x", Metric: "m", Agg: "median"},
		{Name: "x", Metric: "m", Severity: "fatal"},
	}
	for i, r := range bad {
		if _, err := NewEngine([]Rule{r}, nil, nil); err == nil {
			t.Errorf("bad rule %d accepted: %+v", i, r)
		}
	}
	if _, err := NewEngine([]Rule{
		{Name: "dup", Metric: "m"}, {Name: "dup", Metric: "m2"},
	}, nil, nil); err == nil {
		t.Error("duplicate rule names accepted")
	}
	if _, err := NewEngine(DefaultRules(), nil, nil); err != nil {
		t.Errorf("DefaultRules rejected: %v", err)
	}
}

// TestParseRules covers both accepted document shapes and the duration
// forms.
func TestParseRules(t *testing.T) {
	doc := `{"rules": [
	  {"name": "a", "metric": "m.total", "kind": "rate", "op": ">",
	   "value": 0.5, "window": "30s", "for": "10s", "severity": "critical"}
	]}`
	rules, err := ParseRules(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Window != Duration(30*time.Second) ||
		rules[0].For != Duration(10*time.Second) {
		t.Fatalf("parsed %+v", rules)
	}
	bare := `[{"name": "b", "metric": "m", "value": 1, "window": 5000000000}]`
	rules, err = ParseRules(strings.NewReader(bare))
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Window != Duration(5*time.Second) {
		t.Errorf("numeric window = %v, want 5s", time.Duration(rules[0].Window))
	}
	if _, err := ParseRules(strings.NewReader(`[{"name":"", "metric":"m"}]`)); err == nil {
		t.Error("invalid rule in document accepted")
	}
	if _, err := ParseRules(strings.NewReader(`{"rules": [{"window": "eternal"}]}`)); err == nil {
		t.Error("bad duration accepted")
	}
}

// TestParseDoc: one file carries both halves of the declarative
// alerting surface — threshold/rate rules and SLOs — and the parsed
// SLOs survive the round trip into CompileSLOs.
func TestParseDoc(t *testing.T) {
	doc := `{
	  "rules": [{"name": "a", "metric": "m.total", "kind": "threshold",
	    "op": ">", "value": 0, "window": "30s", "severity": "warning"}],
	  "slos": [{"name": "node-latency", "metric": "store.node.seconds",
	    "threshold": 0.05, "objective": 0.99, "by": "node",
	    "fast_window": "8s", "fast_short": "2s"}]
	}`
	rules, slos, err := ParseDoc(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || len(slos) != 1 {
		t.Fatalf("parsed %d rules, %d slos; want 1 and 1", len(rules), len(slos))
	}
	if slos[0].By != "node" || slos[0].FastWindow != Duration(8*time.Second) {
		t.Fatalf("parsed SLO %+v", slos[0])
	}
	compiled, bases, err := CompileSLOs(slos)
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled) != 2 {
		t.Fatalf("compiled %d rules from 1 SLO, want a fast/slow burn pair", len(compiled))
	}
	found := false
	for _, b := range bases {
		if b == "store.node.seconds" {
			found = true
		}
	}
	if !found {
		t.Errorf("TrackBuckets bases %v missing the SLO's histogram", bases)
	}
	// An SLO error surfaces at compile time, not parse time.
	bad := `{"slos": [{"name": "x", "metric": "m", "objective": 2}]}`
	if _, slos, err = ParseDoc(strings.NewReader(bad)); err != nil {
		t.Fatalf("parse rejected what compile should: %v", err)
	}
	if _, _, err := CompileSLOs(slos); err == nil {
		t.Error("objective 2 compiled")
	}
}

// TestNodeDownAlert: the shipped node-down default rule fires critical
// as soon as the nodestore reports a node out of the membership, and
// resolves when the node comes back.
func TestNodeDownAlert(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(64)
	c := newClock()
	var rules []Rule
	for _, r := range DefaultRules() {
		if r.Name == "node-down" {
			rules = append(rules, r)
		}
	}
	if len(rules) != 1 {
		t.Fatalf("DefaultRules is missing the node-down rule")
	}
	if rules[0].Severity != SeverityCritical {
		t.Fatalf("node-down severity = %q, want critical", rules[0].Severity)
	}
	eng, err := NewEngine(rules, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	tick := func() []Transition {
		sample(ts, reg, c)
		out := eng.Eval(ts, c.Now())
		c.Advance(time.Second)
		return out
	}

	wantTrans(t, tick()) // all nodes up: quiet

	reg.SetGauge("nodestore.nodes_down", 2)
	got := tick()
	if len(got) == 0 || got[len(got)-1].To != "firing" {
		t.Fatalf("transitions with 2 nodes down = %v, want a firing node-down alert", trans(got))
	}

	reg.SetGauge("nodestore.nodes_down", 0)
	got = tick()
	if len(got) != 1 || got[0].To != "resolved" {
		t.Fatalf("transitions after recovery = %v, want node-down resolved", trans(got))
	}
}
