// Package monitor is the stack's monitoring plane: it turns the
// point-in-time metrics registry of package obs into time series,
// alerts, and a health verdict.
//
// A Monitor samples an obs.Registry on a fixed interval into a
// fixed-window ring time-series store (counters as per-interval deltas,
// so windowed rates are exact; gauges and histogram count/sum pairs as
// point samples), evaluates declarative alert rules — threshold and
// rate/burn-rate forms with For-duration hysteresis — through the
// ok → pending → firing → resolved lifecycle, and folds alert state
// plus the shard engine's degradation-ladder counters into a
// healthy/degraded/critical verdict with human-readable reasons.
//
// Every alert episode is one causal trace: the pending, firing, and
// resolved transitions are emitted as typed events through the obs
// trace layer, so a firing alert correlates with the event log and the
// flight recorder by trace ID. The clock is injectable, which makes the
// whole plane deterministic under test: a seeded chaos run plus manual
// Tick calls replays an exact alert history.
package monitor

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultInterval is the sampling interval used when Config.Interval is
// non-positive.
const DefaultInterval = time.Second

// Config assembles a Monitor.
type Config struct {
	// Registry is the metrics source sampled every tick. Required.
	Registry *obs.Registry
	// Interval is the sampling period (DefaultInterval when <= 0). It is
	// also the cadence Run ticks at.
	Interval time.Duration
	// Window is the per-series sample capacity (DefaultWindow when <= 0).
	Window int
	// Rules are the alert rules evaluated after every sample.
	Rules []Rule
	// SLOs are declarative objectives compiled into multi-window
	// burn-rate rules appended after Rules; latency objectives register
	// their histograms for per-bucket series tracking automatically.
	SLOs []SLO
	// Tracer receives the alert transition events (optional).
	Tracer *obs.Tracer
	// Now is the clock (time.Now when nil); tests inject a fake.
	Now func() time.Time
	// HealthWindow is how far back the health scorer looks for counter
	// movement (default 10 × Interval).
	HealthWindow time.Duration
	// Runtime, when true, samples the Go runtime (heap, GC pauses,
	// goroutines) into Registry before every tick, so the process's own
	// health is part of the series and the Prometheus export.
	Runtime bool
}

func (c Config) interval() time.Duration {
	if c.Interval <= 0 {
		return DefaultInterval
	}
	return c.Interval
}

func (c Config) healthWindow() time.Duration {
	if c.HealthWindow > 0 {
		return c.HealthWindow
	}
	return 10 * c.interval()
}

// A Monitor owns the sampling loop: registry → time-series store → rule
// engine → health verdict. Tick is the one unit of work; Run repeats it
// on the configured interval. All query surfaces (Store, Alerts, Health,
// and the HTTP handlers) are safe to call while ticking.
type Monitor struct {
	cfg     Config
	ts      *TSStore
	eng     *Engine
	runtime *obs.RuntimeSampler

	mu      sync.Mutex // serializes ticks; guards lastNow
	lastNow time.Time
}

// New validates the rules, compiles the SLOs, and assembles a monitor.
func New(cfg Config) (*Monitor, error) {
	rules := cfg.Rules
	sloRules, trackBases, err := CompileSLOs(cfg.SLOs)
	if err != nil {
		return nil, err
	}
	rules = append(append([]Rule{}, rules...), sloRules...)
	eng, err := NewEngine(rules, cfg.Tracer, cfg.Registry)
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		cfg: cfg,
		ts:  NewTSStore(cfg.Window),
		eng: eng,
	}
	m.ts.TrackBuckets(trackBases...)
	if cfg.Runtime {
		m.runtime = obs.NewRuntimeSampler(cfg.Registry)
	}
	return m, nil
}

func (m *Monitor) now() time.Time {
	if m.cfg.Now != nil {
		return m.cfg.Now()
	}
	return time.Now()
}

// Interval returns the effective sampling interval.
func (m *Monitor) Interval() time.Duration { return m.cfg.interval() }

// Store exposes the time-series store for queries.
func (m *Monitor) Store() *TSStore { return m.ts }

// Alerts returns the current state of every rule.
func (m *Monitor) Alerts() []Alert { return m.eng.Alerts() }

// Tick performs one monitoring round: sample the runtime (if enabled)
// and the registry into the store, then evaluate the rules. It returns
// the alert transitions the round caused.
func (m *Monitor) Tick() []Transition {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.runtime.Sample()
	m.ts.Ingest(now, m.cfg.Registry.Snapshot())
	m.lastNow = now
	return m.eng.Eval(m.ts, now)
}

// Health scores the array as of the last completed tick (or "now" if
// nothing has been sampled yet), so concurrent scrapes see a verdict
// consistent with the sampled data.
func (m *Monitor) Health() Health {
	m.mu.Lock()
	at := m.lastNow
	m.mu.Unlock()
	if at.IsZero() {
		at = m.now()
	}
	return Score(m.ts, m.eng.Alerts(), m.cfg.healthWindow(), at)
}

// Run ticks on the configured interval until ctx is cancelled. The
// first tick happens one interval after Run starts; call Tick first for
// an immediate sample.
func (m *Monitor) Run(ctx context.Context) {
	t := time.NewTicker(m.cfg.interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Tick()
		}
	}
}
