package monitor

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// The query layer: range fetches and windowed aggregations over the
// store's series. Windows are half-open (now-window, now] — a sample
// taken exactly at the window's left edge is excluded, so back-to-back
// windows partition the stream.

// Range returns the named series' samples with from < T <= to, oldest
// first. A zero from means "since forever", a zero to means "until now".
// ok is false when the series does not exist.
func (ts *TSStore) Range(name string, from, to time.Time) (points []Point, kind Kind, ok bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	s := ts.series[name]
	if s == nil {
		return nil, 0, false
	}
	for _, p := range s.points() {
		if !from.IsZero() && !p.T.After(from) {
			continue
		}
		if !to.IsZero() && p.T.After(to) {
			continue
		}
		points = append(points, p)
	}
	return points, s.kind, true
}

// Last returns the newest sample of the named series.
func (ts *TSStore) Last(name string) (Point, bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	s := ts.series[name]
	if s == nil || s.n == 0 {
		return Point{}, false
	}
	i := s.next - 1
	if i < 0 {
		i += len(s.buf)
	}
	return s.buf[i], true
}

// window resolves the samples of (now-window, now]; a non-positive
// window means "just the newest sample".
func (ts *TSStore) windowPoints(name string, window time.Duration, now time.Time) ([]Point, Kind, bool) {
	if window <= 0 {
		p, ok := ts.Last(name)
		if !ok {
			return nil, 0, false
		}
		kind, _ := ts.Kind(name)
		return []Point{p}, kind, true
	}
	return ts.Range(name, now.Add(-window), now)
}

// Increase returns the growth of the named series over (now-window, now]:
// for counters the exact sum of the per-interval deltas, for gauges the
// difference between the newest and oldest in-window samples. ok is false
// when the series does not exist or holds no in-window samples.
func (ts *TSStore) Increase(name string, window time.Duration, now time.Time) (float64, bool) {
	pts, kind, ok := ts.windowPoints(name, window, now)
	if !ok || len(pts) == 0 {
		return 0, false
	}
	if kind == KindGauge {
		return pts[len(pts)-1].V - pts[0].V, true
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.V
	}
	return sum, true
}

// Rate returns the per-second rate of the named series over the window:
// Increase divided by the window length. A non-positive window returns
// the newest sample divided by nothing — callers should pass a real
// window; Rate falls back to Increase's semantics with a 1s divisor.
func (ts *TSStore) Rate(name string, window time.Duration, now time.Time) (float64, bool) {
	inc, ok := ts.Increase(name, window, now)
	if !ok {
		return 0, false
	}
	secs := window.Seconds()
	if secs <= 0 {
		secs = 1
	}
	return inc / secs, true
}

// Avg returns the mean of the in-window samples (for counters: the mean
// per-interval delta).
func (ts *TSStore) Avg(name string, window time.Duration, now time.Time) (float64, bool) {
	pts, _, ok := ts.windowPoints(name, window, now)
	if !ok || len(pts) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.V
	}
	return sum / float64(len(pts)), true
}

// Select returns the sorted canonical names of the labeled children of
// base whose label sets contain every label in match (an empty or nil
// match selects every child). The bare aggregate series and dotted
// flat-name aliases are never selected — only true `base{...}` children —
// so summing over a selection cannot double-bill an event.
func (ts *TSStore) Select(base string, match []obs.Label) []string {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	var out []string
	for name := range ts.series {
		b, labels := obs.SplitSeries(name)
		if b != base || len(labels) == 0 {
			continue
		}
		if obs.HasLabels(labels, match) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// LabelValues returns the sorted distinct values the given label key
// takes across base's children.
func (ts *TSStore) LabelValues(base, key string) []string {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	seen := map[string]bool{}
	for name := range ts.series {
		b, labels := obs.SplitSeries(name)
		if b != base {
			continue
		}
		for _, l := range labels {
			if l.Key == key {
				seen[l.Value] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// IncreaseMatched returns the summed Increase over (now-window, now] of
// the series selected by (base, match). A nil match queries exactly the
// named series (which may itself be a canonical labeled name); a
// non-empty match sums across the matching labeled children. ok is false
// when nothing matched or no matched series held in-window samples.
func (ts *TSStore) IncreaseMatched(base string, match []obs.Label, window time.Duration, now time.Time) (float64, bool) {
	if len(match) == 0 {
		return ts.Increase(base, window, now)
	}
	sum, any := 0.0, false
	for _, name := range ts.Select(base, match) {
		if v, ok := ts.Increase(name, window, now); ok {
			sum += v
			any = true
		}
	}
	return sum, any
}

// RateMatched is IncreaseMatched divided by the window length in seconds.
func (ts *TSStore) RateMatched(base string, match []obs.Label, window time.Duration, now time.Time) (float64, bool) {
	inc, ok := ts.IncreaseMatched(base, match, window, now)
	if !ok {
		return 0, false
	}
	secs := window.Seconds()
	if secs <= 0 {
		secs = 1
	}
	return inc / secs, true
}

// Max returns the largest in-window sample.
func (ts *TSStore) Max(name string, window time.Duration, now time.Time) (float64, bool) {
	pts, _, ok := ts.windowPoints(name, window, now)
	if !ok || len(pts) == 0 {
		return 0, false
	}
	max := pts[0].V
	for _, p := range pts[1:] {
		if p.V > max {
			max = p.V
		}
	}
	return max, true
}
