package monitor

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestHealthHealthy: no alerts, no counter movement → healthy, no
// reasons.
func TestHealthHealthy(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	reg.Count("shard.retry.total", 0)
	sample(ts, reg, c)
	h := Score(ts, nil, time.Minute, c.Now())
	if h.Verdict != Healthy || len(h.Reasons) != 0 {
		t.Errorf("health = %+v, want healthy with no reasons", h)
	}
	if h.Targets["array"] != Healthy {
		t.Errorf("array target = %v, want healthy", h.Targets["array"])
	}
}

// TestHealthDegradedFromLadder: movement on a degradation-ladder
// counter degrades the verdict and names the counter in the reason.
func TestHealthDegradedFromLadder(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	sample(ts, reg, c)
	c.Advance(time.Second)
	reg.Count("shard.quarantine.total", 2)
	reg.Count("faultstore.injected.total", 5)
	sample(ts, reg, c)
	h := Score(ts, nil, time.Minute, c.Now())
	if h.Verdict != Degraded {
		t.Fatalf("verdict = %v, want degraded", h.Verdict)
	}
	var named []string
	for _, r := range h.Reasons {
		named = append(named, r.Metric)
		if !strings.Contains(r.Detail, r.Metric) {
			t.Errorf("reason detail %q does not name its metric %q", r.Detail, r.Metric)
		}
	}
	joined := strings.Join(named, " ")
	for _, want := range []string{"shard.quarantine.total", "faultstore.injected.total"} {
		if !strings.Contains(joined, want) {
			t.Errorf("reasons %v missing %s", named, want)
		}
	}
}

// TestHealthCriticalFromLadder: retry exhaustion is critical.
func TestHealthCriticalFromLadder(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	sample(ts, reg, c)
	c.Advance(time.Second)
	reg.Count("shard.retry.exhausted", 1)
	sample(ts, reg, c)
	h := Score(ts, nil, time.Minute, c.Now())
	if h.Verdict != Critical {
		t.Errorf("verdict = %v, want critical", h.Verdict)
	}
}

// TestHealthFromAlerts: firing alerts set the verdict by severity;
// pending alerts count but do not change it.
func TestHealthFromAlerts(t *testing.T) {
	warn := []Alert{{Rule: Rule{Name: "w", Metric: "m", Severity: SeverityWarning}, State: StateFiring}}
	h := Score(nil, warn, time.Minute, time.Now())
	if h.Verdict != Degraded || h.Firing != 1 {
		t.Errorf("warning firing → %v (firing %d), want degraded/1", h.Verdict, h.Firing)
	}
	crit := []Alert{{Rule: Rule{Name: "c", Metric: "m", Severity: SeverityCritical}, State: StateFiring}}
	if h = Score(nil, crit, time.Minute, time.Now()); h.Verdict != Critical {
		t.Errorf("critical firing → %v, want critical", h.Verdict)
	}
	pend := []Alert{{Rule: Rule{Name: "p", Metric: "m"}, State: StatePending}}
	if h = Score(nil, pend, time.Minute, time.Now()); h.Verdict != Healthy || h.Pending != 1 {
		t.Errorf("pending → %v (pending %d), want healthy/1", h.Verdict, h.Pending)
	}
}

// TestHealthPerDiskTargets: per-disk scrub repair counters indict their
// disk, and the array inherits the worst target verdict.
func TestHealthPerDiskTargets(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	sample(ts, reg, c)
	c.Advance(time.Second)
	reg.CountWith("raid.scrub.repairs", 4, obs.L("disk", "3"))
	sample(ts, reg, c)
	h := Score(ts, nil, time.Minute, c.Now())
	if h.Targets["disk.3"] != Degraded {
		t.Errorf("disk.3 target = %v, want degraded (targets %v)", h.Targets["disk.3"], h.Targets)
	}
	if h.Targets["array"] != Degraded || h.Verdict != Degraded {
		t.Errorf("array = %v verdict = %v, want degraded", h.Targets["array"], h.Verdict)
	}
	found := false
	for _, r := range h.Reasons {
		if r.Target == "disk.3" && strings.Contains(r.Detail, `raid.scrub.repairs{disk="3"}`) {
			found = true
		}
	}
	if !found {
		t.Errorf("no per-disk reason in %+v", h.Reasons)
	}
}

// TestHealthPerNodeTargets: labeled nodestore counters indict their
// node, and a firing alert with a Target indicts that target instead of
// the array.
func TestHealthPerNodeTargets(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	sample(ts, reg, c)
	c.Advance(time.Second)
	reg.CountWith("store.hedge.fired", 2, obs.L("node", "1"))
	reg.CountWith("store.breaker.open.total", 1, obs.L("node", "2"))
	sample(ts, reg, c)
	alerts := []Alert{{
		Rule:   Rule{Name: "lat-fast-burn", Metric: "store.node.seconds.count", Severity: SeverityCritical},
		State:  StateFiring,
		Target: "node.3",
	}}
	h := Score(ts, alerts, time.Minute, c.Now())
	if h.Targets["node.1"] != Degraded {
		t.Errorf("node.1 = %v, want degraded (hedges)", h.Targets["node.1"])
	}
	if h.Targets["node.2"] != Critical {
		t.Errorf("node.2 = %v, want critical (breaker)", h.Targets["node.2"])
	}
	if h.Targets["node.3"] != Critical {
		t.Errorf("node.3 = %v, want critical (targeted alert)", h.Targets["node.3"])
	}
	if h.Verdict != Critical || h.Targets["array"] != Critical {
		t.Errorf("verdict = %v array = %v, want critical", h.Verdict, h.Targets["array"])
	}
}

// TestHealthOldMovementAgesOut: counter movement outside the window no
// longer degrades.
func TestHealthOldMovementAgesOut(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(64)
	c := newClock()
	sample(ts, reg, c)
	c.Advance(time.Second)
	reg.Count("shard.quarantine.total", 1)
	sample(ts, reg, c)
	if h := Score(ts, nil, 10*time.Second, c.Now()); h.Verdict != Degraded {
		t.Fatalf("fresh movement → %v, want degraded", h.Verdict)
	}
	for i := 0; i < 15; i++ {
		c.Advance(time.Second)
		sample(ts, reg, c)
	}
	if h := Score(ts, nil, 10*time.Second, c.Now()); h.Verdict != Healthy {
		t.Errorf("aged movement → %v (%+v), want healthy", h.Verdict, h.Reasons)
	}
}
