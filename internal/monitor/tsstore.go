package monitor

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Kind classifies a time series by how its samples were derived from the
// registry.
type Kind uint8

const (
	// KindCounter series hold per-interval deltas of a monotonically
	// increasing registry counter (or of a histogram's count/sum), so
	// windowed rates are exact: rate = Σ deltas / window.
	KindCounter Kind = iota
	// KindGauge series hold point samples of a registry gauge.
	KindGauge
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "unknown"
	}
}

// A Point is one sample of one series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// series is one metric's fixed-capacity ring of samples plus the state
// needed to turn cumulative counters into deltas. Delta and reset
// clamping state is per series — a labeled child resets independently of
// its siblings and of the family aggregate.
type series struct {
	kind     Kind
	lastRaw  float64 // counters: last cumulative value sampled
	buf      []Point // ring storage
	n        int     // samples currently held
	next     int     // ring write cursor
	lastSeen uint64  // ingest round that last sampled this series
}

func (s *series) push(p Point) {
	s.buf[s.next] = p
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
}

// points returns the held samples oldest-first (a copy).
func (s *series) points() []Point {
	out := make([]Point, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

// TSStore is a fixed-window in-memory time-series store over an
// obs.Registry: each Ingest turns one registry snapshot into one sample
// per metric, keeping the last Window samples per series in a ring.
// Counters (and histogram count/sum pairs, stored as <name>.count and
// <name>.sum) are recorded as per-interval deltas — a windowed rate is
// then exact, not an interpolation — while gauges are point samples.
//
// All methods are safe for concurrent use; Ingest is serialized against
// the query side by a RWMutex, so a scrape never observes a half-written
// sampling round.
type TSStore struct {
	mu      sync.RWMutex
	window  int
	series  map[string]*series
	rounds  uint64
	last    time.Time
	buckets map[string]bool // histogram bases tracked as per-bucket series
}

// DefaultWindow is the per-series sample capacity used when NewTSStore is
// given a non-positive window: 10 minutes of 1-second samples.
const DefaultWindow = 600

// NewTSStore returns a store keeping the last window samples per series
// (DefaultWindow when window <= 0).
func NewTSStore(window int) *TSStore {
	if window <= 0 {
		window = DefaultWindow
	}
	return &TSStore{window: window, series: make(map[string]*series), buckets: make(map[string]bool)}
}

// TrackBuckets marks histogram base names whose per-bucket cumulative
// counts should be ingested as counter-delta series named
// <base>.le.<bound>{labels} — the raw material of latency SLOs (the
// windowed increase of a bucket series is "good events under the
// threshold"). Only explicitly tracked histograms pay the extra series;
// the SLO compiler registers its objectives' histograms automatically.
func (ts *TSStore) TrackBuckets(bases ...string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, b := range bases {
		ts.buckets[b] = true
	}
}

// Window returns the per-series sample capacity.
func (ts *TSStore) Window() int { return ts.window }

// Rounds returns the number of sampling rounds ingested so far.
func (ts *TSStore) Rounds() uint64 {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.rounds
}

// LastSample returns the timestamp of the most recent sampling round
// (zero before the first).
func (ts *TSStore) LastSample() time.Time {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.last
}

// Ingest records one sampling round taken at now from snap. Counters are
// stored as deltas against the previous round (a first observation or a
// counter reset contributes the full value), gauges as point samples,
// and each histogram as two counter-delta series, <name>.count and
// <name>.sum (labeled histogram children keep their label set terminal:
// h{node="3"} samples into h.count{node="3"}). Histograms whose base was
// registered with TrackBuckets additionally sample every cumulative
// bucket as <name>.le.<bound>{labels}.
//
// A labeled series that disappears from the snapshot (an evicted or
// reset label set) is dropped from the store once it has been absent for
// a full window of rounds, so dead label sets do not hold ring memory
// forever.
func (ts *TSStore) Ingest(now time.Time, snap obs.Snapshot) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.rounds++
	ts.last = now
	for name, v := range snap.Counters {
		ts.pushCounter(name, now, float64(v))
	}
	for name, v := range snap.Gauges {
		ts.pushGauge(name, now, v)
	}
	for name, h := range snap.Histograms {
		ts.pushCounter(obs.SeriesSuffix(name, ".count"), now, float64(h.Count))
		ts.pushCounter(obs.SeriesSuffix(name, ".sum"), now, h.Sum)
		if base, _ := obs.SplitSeries(name); ts.buckets[base] {
			cum := uint64(0)
			for i, n := range h.Counts {
				cum += n
				if i < len(h.Bounds) {
					ts.pushCounter(obs.SeriesSuffix(name, ".le."+obs.BoundLabel(h.Bounds[i])),
						now, float64(cum))
				}
			}
		}
	}
	ts.evictLocked()
}

// evictLocked drops series that have not been sampled for a full window
// of rounds: their rings hold only stale points no query window can
// reach, and keeping them would grow the store by one dead ring per
// retired label set.
func (ts *TSStore) evictLocked() {
	if ts.rounds < uint64(ts.window) {
		return
	}
	cutoff := ts.rounds - uint64(ts.window)
	for name, s := range ts.series {
		if s.lastSeen <= cutoff {
			delete(ts.series, name)
		}
	}
}

func (ts *TSStore) getOrCreate(name string, kind Kind) *series {
	s := ts.series[name]
	if s == nil {
		s = &series{kind: kind, buf: make([]Point, ts.window)}
		ts.series[name] = s
	}
	s.lastSeen = ts.rounds
	return s
}

func (ts *TSStore) pushCounter(name string, now time.Time, raw float64) {
	s := ts.getOrCreate(name, KindCounter)
	delta := raw - s.lastRaw
	if delta < 0 {
		// The counter reset (process restart behind a shared registry
		// name); count the post-reset value rather than a negative delta.
		delta = raw
	}
	s.lastRaw = raw
	s.push(Point{T: now, V: delta})
}

func (ts *TSStore) pushGauge(name string, now time.Time, v float64) {
	s := ts.getOrCreate(name, KindGauge)
	s.push(Point{T: now, V: v})
}

// Names returns the sorted names of every series held.
func (ts *TSStore) Names() []string {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]string, 0, len(ts.series))
	for name := range ts.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Kind returns the kind of the named series; ok is false when the series
// does not exist.
func (ts *TSStore) Kind(name string) (Kind, bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	s := ts.series[name]
	if s == nil {
		return 0, false
	}
	return s.kind, true
}
