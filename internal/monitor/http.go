package monitor

import (
	"encoding/json"
	"net/http"
	"time"
)

// The monitoring plane's HTTP surface, mounted under /api/v1:
//
//	/api/v1/query   one series: range fetch or windowed aggregation
//	/api/v1/alerts  every rule's current state
//	/api/v1/health  the current health verdict with reasons
//
// Everything is JSON; queries are safe to run while the monitor ticks.

// QueryResponse is the /api/v1/query payload: Points for fn=range,
// Value for the scalar aggregations.
type QueryResponse struct {
	Metric string   `json:"metric"`
	Kind   string   `json:"kind"`
	Fn     string   `json:"fn"`
	Window Duration `json:"window,omitempty"`
	Points []Point  `json:"points,omitempty"`
	Value  *float64 `json:"value,omitempty"`
}

// AlertsResponse is the /api/v1/alerts payload.
type AlertsResponse struct {
	Alerts  []Alert `json:"alerts"`
	Firing  int     `json:"firing"`
	Pending int     `json:"pending"`
}

// Register mounts the API endpoints onto mux.
func (m *Monitor) Register(mux *http.ServeMux) {
	mux.Handle("/api/v1/query", m.QueryHandler())
	mux.Handle("/api/v1/alerts", m.AlertsHandler())
	mux.Handle("/api/v1/health", m.HealthHandler())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// QueryHandler serves one series per request:
//
//	?metric=NAME            required: the series name
//	&fn=range|rate|increase|avg|max|last   default range
//	&window=30s             aggregation window (scalar fns; also caps range)
//
// Unknown metrics return 404 so a dashboard can distinguish "no such
// series" from "series at zero".
func (m *Monitor) QueryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		name := req.URL.Query().Get("metric")
		if name == "" {
			http.Error(w, "missing ?metric=", http.StatusBadRequest)
			return
		}
		fn := req.URL.Query().Get("fn")
		if fn == "" {
			fn = "range"
		}
		var window time.Duration
		if ws := req.URL.Query().Get("window"); ws != "" {
			var err error
			if window, err = time.ParseDuration(ws); err != nil {
				http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		kind, exists := m.ts.Kind(name)
		if !exists {
			http.Error(w, "unknown metric "+name, http.StatusNotFound)
			return
		}
		now := m.ts.LastSample()
		resp := QueryResponse{Metric: name, Kind: kind.String(), Fn: fn, Window: Duration(window)}
		scalar := func(v float64, ok bool) {
			if ok {
				resp.Value = &v
			}
		}
		switch fn {
		case "range":
			var from time.Time
			if window > 0 {
				from = now.Add(-window)
			}
			pts, _, _ := m.ts.Range(name, from, time.Time{})
			if pts == nil {
				pts = []Point{}
			}
			resp.Points = pts
		case "rate":
			scalar(m.ts.Rate(name, window, now))
		case "increase":
			scalar(m.ts.Increase(name, window, now))
		case "avg":
			scalar(m.ts.Avg(name, window, now))
		case "max":
			scalar(m.ts.Max(name, window, now))
		case "last":
			if p, ok := m.ts.Last(name); ok {
				resp.Value = &p.V
			}
		default:
			http.Error(w, "unknown fn "+fn, http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
}

// AlertsHandler serves every rule's current state.
func (m *Monitor) AlertsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		alerts := m.Alerts()
		resp := AlertsResponse{Alerts: alerts}
		for _, a := range alerts {
			switch a.State {
			case StateFiring:
				resp.Firing++
			case StatePending:
				resp.Pending++
			}
		}
		writeJSON(w, resp)
	})
}

// HealthHandler serves the current health verdict.
func (m *Monitor) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, m.Health())
	})
}
