package monitor

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// The monitoring plane's HTTP surface, mounted under /api/v1:
//
//	/api/v1/query   one series: range fetch or windowed aggregation
//	/api/v1/alerts  every rule's current state
//	/api/v1/health  the current health verdict with reasons
//
// Everything is JSON; queries are safe to run while the monitor ticks.

// QueryResponse is the /api/v1/query payload: Points for fn=range,
// Value for the scalar aggregations, Groups for ?by= group-by queries.
// Series lists the canonical labeled series a ?label= selector resolved
// to.
type QueryResponse struct {
	Metric string             `json:"metric"`
	Kind   string             `json:"kind"`
	Fn     string             `json:"fn"`
	Window Duration           `json:"window,omitempty"`
	Points []Point            `json:"points,omitempty"`
	Value  *float64           `json:"value,omitempty"`
	Series []string           `json:"series,omitempty"`
	Groups map[string]float64 `json:"groups,omitempty"`
}

// AlertsResponse is the /api/v1/alerts payload.
type AlertsResponse struct {
	Alerts  []Alert `json:"alerts"`
	Firing  int     `json:"firing"`
	Pending int     `json:"pending"`
}

// Register mounts the API endpoints onto mux.
func (m *Monitor) Register(mux *http.ServeMux) {
	mux.Handle("/api/v1/query", m.QueryHandler())
	mux.Handle("/api/v1/alerts", m.AlertsHandler())
	mux.Handle("/api/v1/health", m.HealthHandler())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// QueryHandler serves one query per request:
//
//	?metric=NAME            required: the series (or labeled family) name
//	&fn=range|rate|increase|avg|max|last   default range
//	&window=30s             aggregation window (scalar fns; also caps range)
//	&label=key=value        repeatable: select labeled children of metric
//	&by=key                 group a scalar fn by one label key
//
// A ?label= selector that resolves to exactly one child behaves as if
// that child's canonical name had been queried directly; a selector
// matching several children supports the summable fns (rate, increase)
// across them. Unknown metrics — and label selectors matching no live
// series — return 404 so a dashboard can distinguish "no such series"
// from "series at zero".
func (m *Monitor) QueryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		name := q.Get("metric")
		if name == "" {
			http.Error(w, "missing ?metric=", http.StatusBadRequest)
			return
		}
		fn := q.Get("fn")
		if fn == "" {
			fn = "range"
		}
		var window time.Duration
		if ws := q.Get("window"); ws != "" {
			var err error
			if window, err = time.ParseDuration(ws); err != nil {
				http.Error(w, "bad window: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		var match []obs.Label
		for _, lp := range q["label"] {
			k, v, ok := strings.Cut(lp, "=")
			if !ok || k == "" {
				http.Error(w, "bad label selector "+lp+" (want key=value)", http.StatusBadRequest)
				return
			}
			match = append(match, obs.L(k, v))
		}
		now := m.ts.LastSample()

		if by := q.Get("by"); by != "" {
			m.serveGroupBy(w, name, fn, by, match, window, now)
			return
		}

		resp := QueryResponse{Metric: name, Fn: fn, Window: Duration(window)}
		if len(match) > 0 {
			sel := m.ts.Select(name, match)
			if len(sel) == 0 {
				http.Error(w, "no series of "+name+" match the label selector", http.StatusNotFound)
				return
			}
			resp.Series = sel
			if len(sel) == 1 {
				name = sel[0] // unique child: fall through to the single-series path
			} else {
				switch fn {
				case "rate":
					if v, ok := m.ts.RateMatched(name, match, window, now); ok {
						resp.Value = &v
					}
				case "increase":
					if v, ok := m.ts.IncreaseMatched(name, match, window, now); ok {
						resp.Value = &v
					}
				default:
					http.Error(w, "fn "+fn+" needs a unique series; selector matched "+
						"several (use fn=rate|increase or &by=)", http.StatusBadRequest)
					return
				}
				kind, _ := m.ts.Kind(sel[0])
				resp.Kind = kind.String()
				writeJSON(w, resp)
				return
			}
		}

		kind, exists := m.ts.Kind(name)
		if !exists {
			http.Error(w, "unknown metric "+name, http.StatusNotFound)
			return
		}
		resp.Metric = name
		resp.Kind = kind.String()
		scalar := func(v float64, ok bool) {
			if ok {
				resp.Value = &v
			}
		}
		switch fn {
		case "range":
			var from time.Time
			if window > 0 {
				from = now.Add(-window)
			}
			pts, _, _ := m.ts.Range(name, from, time.Time{})
			if pts == nil {
				pts = []Point{}
			}
			resp.Points = pts
		case "rate":
			scalar(m.ts.Rate(name, window, now))
		case "increase":
			scalar(m.ts.Increase(name, window, now))
		case "avg":
			scalar(m.ts.Avg(name, window, now))
		case "max":
			scalar(m.ts.Max(name, window, now))
		case "last":
			if p, ok := m.ts.Last(name); ok {
				resp.Value = &p.V
			}
		default:
			http.Error(w, "unknown fn "+fn, http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
}

// serveGroupBy answers ?by=key queries: one scalar per value the key
// takes across the metric's labeled children (scoped by any additional
// ?label= selectors).
func (m *Monitor) serveGroupBy(w http.ResponseWriter, name, fn, by string, match []obs.Label, window time.Duration, now time.Time) {
	vals := m.ts.LabelValues(name, by)
	if len(vals) == 0 {
		http.Error(w, "metric "+name+" has no series labeled by "+by, http.StatusNotFound)
		return
	}
	resp := QueryResponse{Metric: name, Kind: KindCounter.String(), Fn: fn,
		Window: Duration(window), Groups: map[string]float64{}}
	for _, v := range vals {
		sel := append(append([]obs.Label{}, match...), obs.L(by, v))
		var val float64
		var ok bool
		switch fn {
		case "rate":
			val, ok = m.ts.RateMatched(name, sel, window, now)
		case "increase", "range", "": // range degrades to increase under by=
			val, ok = m.ts.IncreaseMatched(name, sel, window, now)
			resp.Fn = "increase"
		default:
			http.Error(w, "fn "+fn+" does not support &by= (use rate or increase)", http.StatusBadRequest)
			return
		}
		if ok {
			resp.Groups[v] = val
		}
	}
	if len(resp.Groups) == 0 {
		http.Error(w, "no series of "+name+" match the label selector", http.StatusNotFound)
		return
	}
	writeJSON(w, resp)
}

// AlertsHandler serves every rule's current state.
func (m *Monitor) AlertsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		alerts := m.Alerts()
		resp := AlertsResponse{Alerts: alerts}
		for _, a := range alerts {
			switch a.State {
			case StateFiring:
				resp.Firing++
			case StatePending:
				resp.Pending++
			}
		}
		writeJSON(w, resp)
	})
}

// HealthHandler serves the current health verdict.
func (m *Monitor) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, m.Health())
	})
}
