package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// A Duration is a time.Duration that marshals as a parseable string
// ("30s", "5m") and unmarshals from either that form or a plain number
// of nanoseconds, so rule files stay human-writable.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("monitor: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	ns, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("monitor: bad duration %s: %w", b, err)
	}
	*d = Duration(ns)
	return nil
}

// Rule kinds: how the rule turns its metric's series into the value
// compared against Value.
const (
	// KindThreshold compares the windowed increase of a counter (or the
	// newest sample of a gauge; Window > 0 aggregates gauges with Agg).
	RuleThreshold = "threshold"
	// KindRate compares the per-second rate of a counter over Window —
	// the burn-rate form.
	RuleRate = "rate"
	// RuleBurnRate compares an SLO burn rate: the fraction of the error
	// budget being consumed per unit budget, computed from a good/total
	// (or bad/total) counter pair. The rule's value is
	// min(burn(Window), burn(ShortWindow)) — the multi-window form, which
	// only triggers while the budget is burning both recently and
	// persistently.
	RuleBurnRate = "burnrate"
)

// Rule severities, in escalation order.
const (
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// A Rule declares one alert condition over one series.
type Rule struct {
	// Name identifies the alert in transitions, events, and the API.
	Name string `json:"name"`
	// Metric names the series evaluated (a registry counter or gauge
	// name, or a histogram's derived <name>.count / <name>.sum series).
	Metric string `json:"metric"`
	// Kind is RuleThreshold (windowed increase / gauge level) or
	// RuleRate (per-second burn rate). Empty means RuleThreshold.
	Kind string `json:"kind,omitempty"`
	// Op compares the evaluated value against Value: one of > >= < <= ==
	// != (default >).
	Op string `json:"op,omitempty"`
	// Value is the comparison threshold.
	Value float64 `json:"value"`
	// Window is the aggregation window (0 = newest sample only).
	Window Duration `json:"window,omitempty"`
	// For is the hysteresis hold: the condition must stay true this long
	// after entering pending before the alert fires. 0 fires immediately
	// (the pending transition is still emitted).
	For Duration `json:"for,omitempty"`
	// Agg selects the gauge aggregation for threshold rules with a
	// window: "last" (default), "avg", or "max". Counters always sum
	// their deltas.
	Agg string `json:"agg,omitempty"`
	// Severity is SeverityWarning (default) or SeverityCritical; it sets
	// the event level of the firing transition and the health verdict a
	// firing alert implies.
	Severity string `json:"severity,omitempty"`

	// By fans the rule out per label value: the rule is evaluated once
	// for every value the By key takes across the metric's labeled
	// children, each with its own alert lifecycle and a Target of
	// "<By>.<value>" (e.g. "node.3"). New label values are discovered on
	// every evaluation round.
	By string `json:"by,omitempty"`

	// Burn-rate rules (Kind == RuleBurnRate) derive their value from a
	// counter pair instead of Metric: Total names the total-events series
	// and either Good (events within objective) or Bad (events violating
	// it) names the numerator's complement. Budget is the error budget as
	// a fraction (1 - objective); ShortWindow is the fast window of the
	// multi-window form (0 = long window only). Value is then the burn
	// factor threshold: budget consumption per unit budget.
	Good        string   `json:"good,omitempty"`
	Bad         string   `json:"bad,omitempty"`
	Total       string   `json:"total,omitempty"`
	Budget      float64  `json:"budget,omitempty"`
	ShortWindow Duration `json:"short_window,omitempty"`
}

func (r Rule) severity() string {
	if r.Severity == "" {
		return SeverityWarning
	}
	return r.Severity
}

func (r Rule) kind() string {
	if r.Kind == "" {
		return RuleThreshold
	}
	return r.Kind
}

func (r Rule) op() string {
	if r.Op == "" {
		return ">"
	}
	return r.Op
}

// discoveryMetric is the series whose label values enumerate a By
// rule's targets.
func (r Rule) discoveryMetric() string {
	if r.kind() == RuleBurnRate {
		return r.Total
	}
	return r.Metric
}

func (r Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("monitor: rule without a name")
	}
	switch r.kind() {
	case RuleThreshold, RuleRate:
		if r.Metric == "" {
			return fmt.Errorf("monitor: rule %q names no metric", r.Name)
		}
	case RuleBurnRate:
		if r.Total == "" {
			return fmt.Errorf("monitor: burnrate rule %q names no total series", r.Name)
		}
		if (r.Good == "") == (r.Bad == "") {
			return fmt.Errorf("monitor: burnrate rule %q needs exactly one of good or bad", r.Name)
		}
		if r.Budget <= 0 || r.Budget >= 1 {
			return fmt.Errorf("monitor: burnrate rule %q needs a budget in (0, 1), got %g",
				r.Name, r.Budget)
		}
		if r.Window <= 0 {
			return fmt.Errorf("monitor: burnrate rule %q needs a window", r.Name)
		}
		if r.ShortWindow < 0 || r.ShortWindow >= r.Window {
			return fmt.Errorf("monitor: burnrate rule %q short window must sit inside the window", r.Name)
		}
	default:
		return fmt.Errorf("monitor: rule %q has unknown kind %q (want %s, %s or %s)",
			r.Name, r.Kind, RuleThreshold, RuleRate, RuleBurnRate)
	}
	if r.kind() == RuleRate && r.Window <= 0 {
		return fmt.Errorf("monitor: rate rule %q needs a window", r.Name)
	}
	switch r.op() {
	case ">", ">=", "<", "<=", "==", "!=":
	default:
		return fmt.Errorf("monitor: rule %q has unknown op %q", r.Name, r.Op)
	}
	switch r.Agg {
	case "", "last", "avg", "max":
	default:
		return fmt.Errorf("monitor: rule %q has unknown agg %q (want last, avg or max)",
			r.Name, r.Agg)
	}
	switch r.severity() {
	case SeverityWarning, SeverityCritical:
	default:
		return fmt.Errorf("monitor: rule %q has unknown severity %q (want %s or %s)",
			r.Name, r.Severity, SeverityWarning, SeverityCritical)
	}
	return nil
}

// ParseRules reads a JSON rules document: either a bare array of rules
// or an object {"rules": [...]}. Any "slos" key is ignored; use
// ParseDoc to read both halves.
func ParseRules(r io.Reader) ([]Rule, error) {
	rules, _, err := ParseDoc(r)
	return rules, err
}

// ParseDoc reads the full declarative alerting document: either a bare
// array of rules, or an object {"rules": [...], "slos": [...]} where
// each SLO compiles into its burn-rate rule pair at monitor.New time.
// Rules are validated here; SLO validation happens at compile time so
// hand-built monitor.Config{SLOs: ...} goes through the same checks.
func ParseDoc(r io.Reader) ([]Rule, []SLO, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	var rules []Rule
	var slos []SLO
	if err := json.Unmarshal(data, &rules); err != nil {
		var doc struct {
			Rules []Rule `json:"rules"`
			SLOs  []SLO  `json:"slos"`
		}
		if derr := json.Unmarshal(data, &doc); derr != nil {
			return nil, nil, fmt.Errorf("monitor: parsing rules: %w", err)
		}
		rules, slos = doc.Rules, doc.SLOs
	}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, nil, err
		}
	}
	return rules, slos, nil
}

// LoadRules reads a rules file (see ParseRules).
func LoadRules(path string) ([]Rule, error) {
	rules, _, err := LoadDoc(path)
	return rules, err
}

// LoadDoc reads a rules-and-SLOs file (see ParseDoc).
func LoadDoc(path string) ([]Rule, []SLO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ParseDoc(f)
}

// State is an alert's position in its lifecycle.
type State int

const (
	StateOK State = iota
	StatePending
	StateFiring
)

func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "ok":
		*s = StateOK
	case "pending":
		*s = StatePending
	case "firing":
		*s = StateFiring
	default:
		return fmt.Errorf("monitor: unknown alert state %q", name)
	}
	return nil
}

// A Transition is one alert state change. To is the state entered —
// "pending", "firing", "resolved" (firing → ok) or "ok" (pending → ok,
// the condition cleared before For elapsed).
type Transition struct {
	Rule  string    `json:"rule"`
	From  string    `json:"from"`
	To    string    `json:"to"`
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
	Trace string    `json:"trace,omitempty"`
	// Target is the fan-out target of a By rule ("node.3"); empty for
	// array-wide rules.
	Target string `json:"target,omitempty"`
}

// An Alert is the queryable state of one rule.
type Alert struct {
	Rule  Rule  `json:"rule"`
	State State `json:"state"`
	// Value is the rule's most recently evaluated value.
	Value float64 `json:"value"`
	// Since is when the current state was entered (zero while ok and
	// never triggered).
	Since time.Time `json:"since,omitempty"`
	// FiredAt / ResolvedAt bracket the most recent firing episode.
	FiredAt    time.Time `json:"fired_at,omitempty"`
	ResolvedAt time.Time `json:"resolved_at,omitempty"`
	// Trace is the causal trace ID of the current (or, after resolution,
	// the last) alert episode: every transition event of the episode
	// carries it, so the flight recorder replays the alert's history.
	Trace string `json:"trace,omitempty"`
	// Transitions counts lifetime state changes of this rule.
	Transitions uint64 `json:"transitions"`
	// Target is the fan-out target this alert instance watches ("node.3"
	// for a By rule); empty for array-wide rules. Health scoring indicts
	// the target instead of the whole array.
	Target string `json:"target,omitempty"`
}

// alertState is the engine's mutable per-rule state. The episode trace
// is rooted when the rule leaves ok and ended when it returns there, so
// one alert episode — pending, firing, and the resolution — is one
// causally-correlated trace.
type alertState struct {
	rule        Rule
	target      string      // "node.3" for By-rule children, "" otherwise
	labels      []obs.Label // label selector pinning the child's series
	state       State
	since       time.Time
	value       float64
	firedAt     time.Time
	resolvedAt  time.Time
	transitions uint64

	ctx   context.Context
	span  *obs.SpanCtx
	trace string
}

// ruleStates is one configured rule's alert state: a single lifecycle
// for array-wide rules, one lazily-discovered lifecycle per label value
// for By rules.
type ruleStates struct {
	rule     Rule
	solo     *alertState            // By == ""
	kids     map[string]*alertState // By != "": label value -> state
	kidOrder []string               // discovery order, for stable output
}

// Engine evaluates a fixed rule set against a TSStore, driving each
// rule's ok → pending → firing → resolved lifecycle and emitting every
// transition as a typed event into the trace layer (and as
// monitor.transition.* counters into the registry). Eval is serialized
// by the engine's lock; Alerts may be called concurrently.
type Engine struct {
	mu     sync.Mutex
	rules  []*ruleStates
	tracer *obs.Tracer
	reg    *obs.Registry
}

// NewEngine validates the rules and builds an engine over them.
// Transition events are fanned out to tracer's sinks; reg (optional)
// receives monitor.transition.* counters and the monitor.alerts.firing
// gauge.
func NewEngine(rules []Rule, tracer *obs.Tracer, reg *obs.Registry) (*Engine, error) {
	e := &Engine{tracer: tracer, reg: reg}
	seen := make(map[string]bool, len(rules))
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("monitor: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		rs := &ruleStates{rule: r}
		if r.By == "" {
			rs.solo = &alertState{rule: r}
		} else {
			rs.kids = make(map[string]*alertState)
		}
		e.rules = append(e.rules, rs)
	}
	return e, nil
}

// seriesFor resolves the concrete series name a (possibly fanned-out)
// state evaluates: the bare name for array-wide rules, the canonical
// labeled child for By children.
func seriesFor(base string, labels []obs.Label) string {
	return obs.SeriesName(base, labels)
}

// evalValue resolves a state's comparison value from the store. ok is
// false when the series has no usable samples (the condition is then
// treated as false).
func evalValue(ts *TSStore, r Rule, labels []obs.Label, now time.Time) (float64, bool) {
	window := time.Duration(r.Window)
	if r.kind() == RuleBurnRate {
		return evalBurn(ts, r, labels, now)
	}
	name := seriesFor(r.Metric, labels)
	if r.kind() == RuleRate {
		return ts.Rate(name, window, now)
	}
	kind, exists := ts.Kind(name)
	if !exists {
		return 0, false
	}
	if kind == KindGauge {
		switch r.Agg {
		case "avg":
			return ts.Avg(name, window, now)
		case "max":
			return ts.Max(name, window, now)
		default:
			p, ok := ts.Last(name)
			return p.V, ok
		}
	}
	return ts.Increase(name, window, now)
}

// evalBurn computes a burn-rate rule's value: budget consumption per
// unit budget over the long window, clamped by the short window when one
// is configured — min(burnLong, burnShort) only exceeds the threshold
// while the burn is both persistent and still happening.
func evalBurn(ts *TSStore, r Rule, labels []obs.Label, now time.Time) (float64, bool) {
	long, ok := burnOver(ts, r, labels, time.Duration(r.Window), now)
	if !ok {
		return 0, false
	}
	if r.ShortWindow <= 0 {
		return long, true
	}
	short, ok := burnOver(ts, r, labels, time.Duration(r.ShortWindow), now)
	if !ok {
		short = 0 // no recent events: nothing is burning right now
	}
	if short < long {
		return short, true
	}
	return long, true
}

// burnOver is the burn rate over one window: (bad events / total
// events) / budget. ok is false when the total series has no in-window
// movement — an idle service consumes no budget.
func burnOver(ts *TSStore, r Rule, labels []obs.Label, window time.Duration, now time.Time) (float64, bool) {
	total, ok := ts.Increase(seriesFor(r.Total, labels), window, now)
	if !ok || total <= 0 {
		return 0, false
	}
	var bad float64
	if r.Bad != "" {
		// A bad-events series that does not exist yet means zero bad events.
		bad, _ = ts.Increase(seriesFor(r.Bad, labels), window, now)
	} else {
		good, _ := ts.Increase(seriesFor(r.Good, labels), window, now)
		bad = total - good
	}
	if bad < 0 {
		bad = 0
	}
	return (bad / total) / r.Budget, true
}

func compare(v float64, op string, threshold float64) bool {
	switch op {
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	case "==":
		return v == threshold
	case "!=":
		return v != threshold
	default:
		return false
	}
}

// Eval runs one evaluation round at now and returns the transitions it
// caused, in rule order (By-rule children in discovery order within
// their rule). A rule whose For has already been satisfied when it
// first triggers still passes through pending: both transitions are
// emitted in the same round.
func (e *Engine) Eval(ts *TSStore, now time.Time) []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Transition
	firing := 0
	for _, rs := range e.rules {
		for _, st := range rs.statesAt(ts) {
			out = e.evalState(st, ts, now, out)
			if st.state == StateFiring {
				firing++
			}
		}
	}
	if e.reg != nil {
		e.reg.SetGauge("monitor.alerts.firing", float64(firing))
	}
	return out
}

// statesAt returns the rule's live alert states, discovering new By
// targets from the store's current label values. A target once seen
// keeps its state even if its series is later evicted — the alert then
// resolves through the normal no-data path rather than vanishing.
func (rs *ruleStates) statesAt(ts *TSStore) []*alertState {
	if rs.rule.By == "" {
		return []*alertState{rs.solo}
	}
	for _, v := range ts.LabelValues(rs.rule.discoveryMetric(), rs.rule.By) {
		if rs.kids[v] == nil {
			rs.kids[v] = &alertState{
				rule:   rs.rule,
				target: rs.rule.By + "." + v,
				labels: []obs.Label{obs.L(rs.rule.By, v)},
			}
			rs.kidOrder = append(rs.kidOrder, v)
		}
	}
	out := make([]*alertState, 0, len(rs.kidOrder))
	for _, v := range rs.kidOrder {
		out = append(out, rs.kids[v])
	}
	return out
}

// evalState drives one alert lifecycle through one round.
func (e *Engine) evalState(st *alertState, ts *TSStore, now time.Time, out []Transition) []Transition {
	v, ok := evalValue(ts, st.rule, st.labels, now)
	cond := ok && compare(v, st.rule.op(), st.rule.Value)
	st.value = v
	switch st.state {
	case StateOK:
		if cond {
			e.beginEpisode(st)
			out = append(out, e.transition(st, StatePending, "pending", now, v))
			if now.Sub(st.since) >= time.Duration(st.rule.For) {
				out = append(out, e.transition(st, StateFiring, "firing", now, v))
			}
		}
	case StatePending:
		if !cond {
			out = append(out, e.transition(st, StateOK, "ok", now, v))
			e.endEpisode(st, now)
		} else if now.Sub(st.since) >= time.Duration(st.rule.For) {
			out = append(out, e.transition(st, StateFiring, "firing", now, v))
		}
	case StateFiring:
		if !cond {
			out = append(out, e.transition(st, StateOK, "resolved", now, v))
			e.endEpisode(st, now)
		}
	}
	return out
}

// beginEpisode roots the alert episode's trace: subsequent transition
// events chain onto it until the episode ends.
func (e *Engine) beginEpisode(st *alertState) {
	ctx, span := obs.StartOp(context.Background(), e.tracer, e.reg, "monitor.alert",
		slog.String("rule", st.rule.Name),
		slog.String("metric", st.rule.Metric),
		slog.String("target", st.target),
		slog.String("severity", st.rule.severity()))
	st.ctx, st.span = ctx, span
	st.trace = span.TraceID().String()
}

// endEpisode closes the episode's root span. A resolved episode keeps
// its trace ID on the alert state so operators can still correlate it.
func (e *Engine) endEpisode(st *alertState, now time.Time) {
	if st.span != nil {
		st.span.End(nil)
	}
	st.ctx, st.span = nil, nil
	st.resolvedAt = now
}

// transition moves st to state, emitting the typed event and counters.
func (e *Engine) transition(st *alertState, state State, to string, now time.Time, v float64) Transition {
	from := st.state.String()
	st.state = state
	st.since = now
	st.transitions++
	if to == "firing" {
		st.firedAt = now
	}
	level := slog.LevelInfo
	switch {
	case to == "firing" && st.rule.severity() == SeverityCritical:
		level = slog.LevelError
	case to == "firing" || to == "pending":
		level = slog.LevelWarn
	}
	obs.Emit(st.ctx, level, "monitor.alert."+to,
		slog.String("rule", st.rule.Name),
		slog.String("metric", st.rule.Metric),
		slog.String("target", st.target),
		slog.String("severity", st.rule.severity()),
		slog.String("from", from),
		slog.Float64("value", v))
	e.reg.Count("monitor.transitions.total", 1)
	e.reg.Count("monitor.transition."+to, 1)
	return Transition{
		Rule: st.rule.Name, From: from, To: to, At: now, Value: v, Trace: st.trace,
		Target: st.target,
	}
}

// Alerts returns the current state of every alert lifecycle, in rule
// order; a By rule contributes one alert per discovered target.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.rules))
	for _, rs := range e.rules {
		states := []*alertState{rs.solo}
		if rs.rule.By != "" {
			states = states[:0]
			for _, v := range rs.kidOrder {
				states = append(states, rs.kids[v])
			}
		}
		for _, st := range states {
			out = append(out, Alert{
				Rule:        st.rule,
				State:       st.state,
				Value:       st.value,
				Since:       st.since,
				FiredAt:     st.firedAt,
				ResolvedAt:  st.resolvedAt,
				Trace:       st.trace,
				Transitions: st.transitions,
				Target:      st.target,
			})
		}
	}
	return out
}
