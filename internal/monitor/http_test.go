package monitor

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestMonitor builds a monitor over a live registry with a fake
// clock and one rate rule, ticked manually.
func newTestMonitor(t *testing.T, rules []Rule) (*Monitor, *obs.Registry, *clock) {
	t.Helper()
	reg := obs.NewRegistry()
	c := newClock()
	m, err := New(Config{
		Registry: reg,
		Interval: time.Second,
		Window:   64,
		Rules:    rules,
		Tracer:   obs.NewTracer(obs.NewFlightRecorder(64)),
		Now:      c.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, reg, c
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %v\n%s", path, err, body)
		}
	}
	return resp.StatusCode
}

// TestQueryEndpoint covers every fn plus the error paths.
func TestQueryEndpoint(t *testing.T) {
	m, reg, c := newTestMonitor(t, nil)
	for i := 0; i < 3; i++ {
		reg.Count("io.total", 4)
		reg.SetGauge("depth", float64(i))
		m.Tick()
		c.Advance(time.Second)
	}
	mux := http.NewServeMux()
	m.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var qr QueryResponse
	if code := getJSON(t, srv, "/api/v1/query?metric=io.total", &qr); code != 200 {
		t.Fatalf("range query: status %d", code)
	}
	if qr.Kind != "counter" || qr.Fn != "range" || len(qr.Points) != 3 {
		t.Errorf("range response = %+v, want 3 counter points", qr)
	}
	if qr.Points[0].V != 4 || qr.Points[1].V != 4 {
		t.Errorf("points hold %v, want per-interval deltas of 4", qr.Points)
	}

	if getJSON(t, srv, "/api/v1/query?metric=io.total&fn=rate&window=2s", &qr); qr.Value == nil || *qr.Value != 4 {
		t.Errorf("rate = %v, want 4/s (8 over 2s)", qr.Value)
	}
	if getJSON(t, srv, "/api/v1/query?metric=io.total&fn=increase&window=2s", &qr); *qr.Value != 8 {
		t.Errorf("increase = %v, want 8", *qr.Value)
	}
	if getJSON(t, srv, "/api/v1/query?metric=depth&fn=last", &qr); *qr.Value != 2 {
		t.Errorf("last = %v, want 2", *qr.Value)
	}
	if getJSON(t, srv, "/api/v1/query?metric=depth&fn=max&window=1m", &qr); *qr.Value != 2 {
		t.Errorf("max = %v, want 2", *qr.Value)
	}
	if getJSON(t, srv, "/api/v1/query?metric=depth&fn=avg&window=1m", &qr); *qr.Value != 1 {
		t.Errorf("avg = %v, want 1", *qr.Value)
	}

	if code := getJSON(t, srv, "/api/v1/query", nil); code != 400 {
		t.Errorf("missing metric: status %d, want 400", code)
	}
	if code := getJSON(t, srv, "/api/v1/query?metric=nope", nil); code != 404 {
		t.Errorf("unknown metric: status %d, want 404", code)
	}
	if code := getJSON(t, srv, "/api/v1/query?metric=depth&fn=bogus", nil); code != 400 {
		t.Errorf("unknown fn: status %d, want 400", code)
	}
	if code := getJSON(t, srv, "/api/v1/query?metric=depth&window=never", nil); code != 400 {
		t.Errorf("bad window: status %d, want 400", code)
	}
}

// TestAlertsAndHealthEndpoints drive a rule to firing and check both
// endpoints report it, with the health reasons naming the metric.
func TestAlertsAndHealthEndpoints(t *testing.T) {
	m, reg, c := newTestMonitor(t, []Rule{{
		Name: "q-growth", Metric: "shard.quarantine.total",
		Kind: RuleThreshold, Op: ">", Value: 0,
		Window: Duration(time.Minute), Severity: SeverityCritical,
	}})
	mux := http.NewServeMux()
	m.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	m.Tick()
	c.Advance(time.Second)

	var ar AlertsResponse
	getJSON(t, srv, "/api/v1/alerts", &ar)
	if len(ar.Alerts) != 1 || ar.Alerts[0].State != StateOK || ar.Firing != 0 {
		t.Fatalf("quiet alerts = %+v", ar)
	}
	var h Health
	getJSON(t, srv, "/api/v1/health", &h)
	if h.Verdict != Healthy {
		t.Fatalf("quiet health = %+v", h)
	}

	reg.Count("shard.quarantine.total", 1)
	m.Tick()

	getJSON(t, srv, "/api/v1/alerts", &ar)
	if ar.Firing != 1 || ar.Alerts[0].State != StateFiring || ar.Alerts[0].Trace == "" {
		t.Fatalf("firing alerts = %+v, want one firing with a trace", ar)
	}
	getJSON(t, srv, "/api/v1/health", &h)
	if h.Verdict != Critical {
		t.Fatalf("health verdict = %v, want critical (alert + ladder)", h.Verdict)
	}
	found := false
	for _, r := range h.Reasons {
		if r.Metric == "shard.quarantine.total" {
			found = true
		}
	}
	if !found {
		t.Errorf("health reasons %+v never name shard.quarantine.total", h.Reasons)
	}
}

// TestConcurrentScrapeWhileSampling hammers every API endpoint while
// the monitor ticks and the workload mutates the registry. Under -race
// this pins the locking of the store, engine, and health scorer.
func TestConcurrentScrapeWhileSampling(t *testing.T) {
	m, reg, c := newTestMonitor(t, DefaultRules())
	mux := http.NewServeMux()
	m.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{
		"/api/v1/health",
		"/api/v1/alerts",
		"/api/v1/query?metric=shard.retry.total&fn=rate&window=5s",
		"/api/v1/query?metric=shard.retry.total",
	} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := srv.Client().Get(srv.URL + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				if resp.StatusCode == http.StatusOK {
					var v map[string]any
					if err := json.Unmarshal(body, &v); err != nil {
						t.Errorf("%s: torn JSON: %v", path, err)
						return
					}
				}
			}
		}(path)
	}

	for i := 0; i < 200; i++ {
		reg.Count("shard.retry.total", uint64(i%3))
		reg.SetGauge("depth", float64(i))
		m.Tick()
		c.Advance(100 * time.Millisecond)
	}
	close(done)
	wg.Wait()
	if m.Store().Rounds() != 200 {
		t.Errorf("rounds = %d, want 200", m.Store().Rounds())
	}
}

// TestMonitorRunLoop: Run ticks on a real ticker until cancelled — the
// one test that uses the wall clock.
func TestMonitorRunLoop(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := New(Config{Registry: reg, Interval: time.Millisecond, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go m.Run(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for m.Store().Rounds() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if m.Store().Rounds() < 3 {
		t.Errorf("run loop ticked %d times in 2s, want >= 3", m.Store().Rounds())
	}
}

// TestQueryLabelSelectors covers ?label= and ?by=: unique-child
// resolution, multi-child summing, group-by, and the 404 on an unknown
// label value.
func TestQueryLabelSelectors(t *testing.T) {
	m, reg, c := newTestMonitor(t, nil)
	for i := 0; i < 3; i++ {
		reg.CountWith("nodestore.down.total", 2, obs.L("node", "1"))
		reg.CountWith("nodestore.down.total", 1, obs.L("node", "3"))
		m.Tick()
		c.Advance(time.Second)
	}
	mux := http.NewServeMux()
	m.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Unique child: behaves like querying the canonical name directly.
	var qr QueryResponse
	if code := getJSON(t, srv, "/api/v1/query?metric=nodestore.down.total&label=node=3&fn=increase&window=2s", &qr); code != 200 {
		t.Fatalf("unique-child query: status %d", code)
	}
	if qr.Value == nil || *qr.Value != 2 {
		t.Errorf("node=3 increase = %v, want 2 (1/s over 2s)", qr.Value)
	}
	if len(qr.Series) != 1 || qr.Series[0] != `nodestore.down.total{node="3"}` {
		t.Errorf("series = %v, want the canonical child", qr.Series)
	}

	// Range through a unique selector returns that child's points.
	if getJSON(t, srv, "/api/v1/query?metric=nodestore.down.total&label=node=1", &qr); len(qr.Points) != 3 || qr.Points[1].V != 2 {
		t.Errorf("labeled range = %+v, want 3 deltas of 2", qr.Points)
	}

	// Multi-child selector sums for the summable fns...
	reg.CountWith("store.io", 4, obs.L("op", "read"), obs.L("node", "1"))
	reg.CountWith("store.io", 6, obs.L("op", "read"), obs.L("node", "3"))
	m.Tick()
	if getJSON(t, srv, "/api/v1/query?metric=store.io&label=op=read&fn=increase&window=2s", &qr); qr.Value == nil || *qr.Value != 10 {
		t.Errorf("summed increase = %v, want 10", qr.Value)
	}
	// ...and rejects ambiguous point fns.
	if code := getJSON(t, srv, "/api/v1/query?metric=store.io&label=op=read&fn=last", nil); code != 400 {
		t.Errorf("ambiguous fn=last: status %d, want 400", code)
	}

	// Group-by: one scalar per label value.
	if code := getJSON(t, srv, "/api/v1/query?metric=nodestore.down.total&by=node&fn=increase&window=2s", &qr); code != 200 {
		t.Fatalf("group-by: status %d", code)
	}
	// Window (t3-2s, t3] holds the rounds at t2 and t3: node=1 moved by
	// 2 in the t2 round and was flat in the extra t3 tick.
	if qr.Groups["1"] != 2 || qr.Groups["3"] != 1 {
		t.Errorf("groups = %v, want 1:2 3:1", qr.Groups)
	}

	// Unknown label value: 404, distinguishable from a zero series.
	if code := getJSON(t, srv, "/api/v1/query?metric=nodestore.down.total&label=node=99", nil); code != 404 {
		t.Errorf("unknown label value: status %d, want 404", code)
	}
	// Malformed selector: 400.
	if code := getJSON(t, srv, "/api/v1/query?metric=nodestore.down.total&label=node", nil); code != 400 {
		t.Errorf("malformed selector: status %d, want 400", code)
	}
	// Group-by on an unlabeled metric: 404.
	reg.Count("plain.total", 1)
	m.Tick()
	if code := getJSON(t, srv, "/api/v1/query?metric=plain.total&by=node", nil); code != 404 {
		t.Errorf("by= on unlabeled metric: status %d, want 404", code)
	}
}
