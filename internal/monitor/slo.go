package monitor

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// An SLO is a declarative service-level objective compiled into
// multi-window burn-rate alert rules (the Google SRE workbook form): a
// fast-burn rule that pages quickly on budget-torching incidents and a
// slow-burn rule that warns on persistent low-grade erosion.
//
// Two shapes are supported:
//
//   - Latency: Metric names a histogram; the objective is that at least
//     Objective of observations complete within Threshold seconds.
//     Threshold must equal one of the histogram's bucket bounds — the
//     compiler derives the good-events series from the store's tracked
//     per-bucket counters (<metric>.le.<bound>) and registers the
//     histogram for bucket tracking automatically.
//
//   - Availability: Total names the total-events counter and exactly one
//     of Good/Bad names its complement; the objective is that at least
//     Objective of events are good.
//
// By fans the objective out per label value (e.g. By: "node" alerts and
// indicts "node.3" instead of the whole array).
type SLO struct {
	// Name roots the compiled rule names: "<name>-fast-burn" and
	// "<name>-slow-burn".
	Name string `json:"name"`

	// Latency objective: histogram base name and bucket-bound threshold.
	Metric    string  `json:"metric,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`

	// Availability objective: explicit counter pair.
	Good  string `json:"good,omitempty"`
	Bad   string `json:"bad,omitempty"`
	Total string `json:"total,omitempty"`

	// Objective is the target good fraction, e.g. 0.99.
	Objective float64 `json:"objective"`

	// By fans the objective out per label value of the given key.
	By string `json:"by,omitempty"`

	// Window overrides of the compiled rules; zero values take the
	// defaults (fast: 2m long / 15s short, slow: 10m long / 1m short —
	// sized for the stack's default 1-second sampling and 10-minute
	// retention).
	FastWindow Duration `json:"fast_window,omitempty"`
	FastShort  Duration `json:"fast_short,omitempty"`
	SlowWindow Duration `json:"slow_window,omitempty"`
	SlowShort  Duration `json:"slow_short,omitempty"`

	// Burn factor thresholds; zero values take 14 (fast) and 3 (slow).
	FastFactor float64 `json:"fast_factor,omitempty"`
	SlowFactor float64 `json:"slow_factor,omitempty"`
}

// Default burn windows and factors for compiled SLO rules.
const (
	DefaultFastWindow = 2 * time.Minute
	DefaultFastShort  = 15 * time.Second
	DefaultSlowWindow = 10 * time.Minute
	DefaultSlowShort  = time.Minute
	DefaultFastFactor = 14
	DefaultSlowFactor = 3
)

func (s SLO) validate() error {
	if s.Name == "" {
		return fmt.Errorf("monitor: SLO without a name")
	}
	if s.Objective <= 0 || s.Objective >= 1 {
		return fmt.Errorf("monitor: SLO %q needs an objective in (0, 1), got %g",
			s.Name, s.Objective)
	}
	latency := s.Metric != ""
	avail := s.Total != ""
	if latency == avail {
		return fmt.Errorf("monitor: SLO %q needs exactly one of metric (latency) or total (availability)",
			s.Name)
	}
	if latency && s.Threshold <= 0 {
		return fmt.Errorf("monitor: latency SLO %q needs a positive threshold", s.Name)
	}
	if avail && (s.Good == "") == (s.Bad == "") {
		return fmt.Errorf("monitor: availability SLO %q needs exactly one of good or bad", s.Name)
	}
	return nil
}

// series resolves the good/bad/total counter series the compiled rules
// evaluate.
func (s SLO) series() (good, bad, total string) {
	if s.Metric != "" {
		return s.Metric + ".le." + obs.BoundLabel(s.Threshold), "", s.Metric + ".count"
	}
	return s.Good, s.Bad, s.Total
}

func orDur(d Duration, def time.Duration) Duration {
	if d > 0 {
		return d
	}
	return Duration(def)
}

func orF(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

// Compile turns the SLO into its fast-burn (critical) and slow-burn
// (warning) rules.
func (s SLO) Compile() ([]Rule, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	good, bad, total := s.series()
	budget := 1 - s.Objective
	base := Rule{
		Kind: RuleBurnRate, Op: ">=",
		Good: good, Bad: bad, Total: total,
		Metric: total, // display/health metric: the objective's event stream
		Budget: budget,
		By:     s.By,
	}
	fast, slow := base, base
	fast.Name = s.Name + "-fast-burn"
	fast.Severity = SeverityCritical
	fast.Value = orF(s.FastFactor, DefaultFastFactor)
	fast.Window = orDur(s.FastWindow, DefaultFastWindow)
	fast.ShortWindow = orDur(s.FastShort, DefaultFastShort)
	slow.Name = s.Name + "-slow-burn"
	slow.Severity = SeverityWarning
	slow.Value = orF(s.SlowFactor, DefaultSlowFactor)
	slow.Window = orDur(s.SlowWindow, DefaultSlowWindow)
	slow.ShortWindow = orDur(s.SlowShort, DefaultSlowShort)
	for _, r := range []Rule{fast, slow} {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	return []Rule{fast, slow}, nil
}

// CompileSLOs compiles every objective and returns the combined rule
// list plus the histogram bases that need per-bucket tracking.
func CompileSLOs(slos []SLO) (rules []Rule, trackBases []string, err error) {
	for _, s := range slos {
		rs, err := s.Compile()
		if err != nil {
			return nil, nil, err
		}
		rules = append(rules, rs...)
		if s.Metric != "" {
			trackBases = append(trackBases, s.Metric)
		}
	}
	return rules, trackBases, nil
}
