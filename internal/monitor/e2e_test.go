package monitor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/store/faultstore"
)

// fakeClock is the injectable clock driving the monitoring plane in
// these tests: every tick is exactly one second, no wall time involved.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time { return c.t }
func (c *fakeClock) Step()          { c.t = c.t.Add(time.Second) }

// encodeBlob encodes a deterministic test file into dir and returns the
// manifest path.
func encodeBlob(t *testing.T, dir string) string {
	t.Helper()
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(42)).Read(data)
	_, err := shard.EncodeOpts(bytes.NewReader(data), int64(len(data)), "blob.bin",
		3, 0, 512, dir, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, shard.ManifestName("blob.bin"))
}

// noSleep is the injected retry pacer: backoff accounting without wall
// time.
func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// TestAlertLadderEndToEnd is the acceptance test for the monitoring
// plane: a seeded fault schedule makes a shard decode retry transient
// I/O errors, the sampled retry counter drives a burn-rate rule through
// ok → pending → firing → resolved on an injectable clock, the health
// verdict degrades with reasons naming the triggering counters, and
// every transition lands in the event log and flight recorder under one
// correlated trace.
func TestAlertLadderEndToEnd(t *testing.T) {
	dir := t.TempDir()
	manifest := encodeBlob(t, dir)

	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	eventLog := obs.NewEventLog(&logBuf, slog.LevelInfo)
	flight := obs.NewFlightRecorder(256)
	tracer := obs.NewTracer(flight, eventLog)
	tracer.Seed(7)

	clock := newFakeClock()
	mon, err := monitor.New(monitor.Config{
		Registry: reg,
		Interval: time.Second,
		Window:   64,
		Rules: []monitor.Rule{{
			Name: "retry-burn", Metric: "shard.retry.total",
			Kind: monitor.RuleRate, Op: ">", Value: 0.1,
			Window:   monitor.Duration(8 * time.Second),
			For:      monitor.Duration(2 * time.Second),
			Severity: monitor.SeverityWarning,
		}},
		Tracer:       tracer,
		Now:          clock.Now,
		HealthWindow: 8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := func() []monitor.Transition {
		out := mon.Tick()
		clock.Step()
		return out
	}

	// Two quiet rounds: everything healthy, nothing pending.
	for i := 0; i < 2; i++ {
		if tr := tick(); len(tr) != 0 {
			t.Fatalf("quiet round %d produced transitions %+v", i, tr)
		}
	}
	if h := mon.Health(); h.Verdict != monitor.Healthy {
		t.Fatalf("quiet health = %+v, want healthy", h)
	}

	// A decode under a seeded fault schedule: the first four shard reads
	// fail transiently, are retried, and the decode succeeds — exactly
	// the "slowly degrading array" signature: correct answers, rising
	// retry counters.
	chaos := faultstore.New(store.OS{}, faultstore.Config{
		Seed:     99,
		Rules:    []faultstore.Rule{{Op: faultstore.OpRead, Kind: faultstore.Transient, Prob: 1, Count: 4, Path: ".shard."}},
		Registry: reg,
	})
	if _, err := shard.DecodeReport(manifest, io.Discard, shard.Options{
		Registry: reg,
		Tracer:   tracer,
		Store:    chaos,
		Retry:    store.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Nanosecond, Sleep: noSleep},
	}); err != nil {
		t.Fatalf("chaos decode failed (should be fully recovered by retries): %v", err)
	}
	if got := reg.Counter("shard.retry.total").Value(); got != 4 {
		t.Fatalf("shard.retry.total = %d, want exactly 4 (seeded schedule)", got)
	}

	// The next sample sees the retry burst: rate 4/8s > 0.1 → pending.
	pend := tick()
	if len(pend) != 1 || pend[0].To != "pending" || pend[0].Rule != "retry-burn" {
		t.Fatalf("post-burst transitions = %+v, want retry-burn:pending", pend)
	}
	trace := pend[0].Trace
	if trace == "" {
		t.Fatal("pending transition carries no trace ID")
	}

	// One second in: still pending (For = 2s).
	if tr := tick(); len(tr) != 0 {
		t.Fatalf("mid-hysteresis transitions = %+v, want none", tr)
	}

	// Two seconds in: fires.
	fire := tick()
	if len(fire) != 1 || fire[0].To != "firing" || fire[0].Trace != trace {
		t.Fatalf("transitions = %+v, want retry-burn:firing on trace %s", fire, trace)
	}

	// While firing: degraded verdict with reasons naming the counters
	// that triggered it.
	h := mon.Health()
	if h.Verdict != monitor.Degraded {
		t.Fatalf("firing health = %v, want degraded (%+v)", h.Verdict, h.Reasons)
	}
	if h.Firing != 1 {
		t.Fatalf("health reports %d firing alerts, want 1", h.Firing)
	}
	var metrics []string
	for _, r := range h.Reasons {
		metrics = append(metrics, r.Metric)
	}
	joined := strings.Join(metrics, " ")
	for _, want := range []string{"shard.retry.total", "faultstore.injected.total"} {
		if !strings.Contains(joined, want) {
			t.Errorf("health reasons name %v, missing %s", metrics, want)
		}
	}

	// The burst ages out of the 8s rate window → resolved.
	var resolved []monitor.Transition
	for i := 0; i < 12 && len(resolved) == 0; i++ {
		resolved = tick()
	}
	if len(resolved) != 1 || resolved[0].To != "resolved" || resolved[0].Trace != trace {
		t.Fatalf("transitions = %+v, want retry-burn:resolved on trace %s", resolved, trace)
	}
	if h := mon.Health(); h.Verdict != monitor.Healthy {
		t.Fatalf("post-resolution health = %v (%+v), want healthy", h.Verdict, h.Reasons)
	}

	// Event log: every transition event is present, trace-correlated
	// with the alert episode.
	wantEvents := map[string]bool{
		"monitor.alert.pending":  false,
		"monitor.alert.firing":   false,
		"monitor.alert.resolved": false,
		"monitor.alert":          false, // the episode root span
	}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event log line not JSON: %v\n%s", err, line)
		}
		name, _ := ev["msg"].(string)
		if _, tracked := wantEvents[name]; !tracked {
			continue
		}
		if ev["trace"] != trace {
			t.Errorf("%s logged on trace %v, want %s", name, ev["trace"], trace)
		}
		if name != "monitor.alert" && ev["rule"] != "retry-burn" {
			t.Errorf("%s carries rule %v, want retry-burn", name, ev["rule"])
		}
		wantEvents[name] = true
	}
	for name, seen := range wantEvents {
		if !seen {
			t.Errorf("event log missing %s", name)
		}
	}

	// Flight recorder: the alert episode replays by trace ID.
	var id obs.TraceID
	if _, err := fmtSscanTrace(trace, &id); err != nil {
		t.Fatal(err)
	}
	if tail := flight.Tail(id, 0); len(tail) < 3 {
		t.Errorf("flight tail for alert trace holds %d events, want >= 3", len(tail))
	}
}

// fmtSscanTrace parses a 16-hex-digit trace ID string.
func fmtSscanTrace(s string, id *obs.TraceID) (int, error) {
	var v uint64
	n, err := fmtSscanHex(s, &v)
	*id = obs.TraceID(v)
	return n, err
}

func fmtSscanHex(s string, v *uint64) (int, error) {
	var parsed uint64
	for _, r := range s {
		parsed <<= 4
		switch {
		case r >= '0' && r <= '9':
			parsed |= uint64(r - '0')
		case r >= 'a' && r <= 'f':
			parsed |= uint64(r-'a') + 10
		default:
			return 0, &strconvError{s}
		}
	}
	*v = parsed
	return len(s), nil
}

type strconvError struct{ s string }

func (e *strconvError) Error() string { return "bad trace id " + e.s }

// TestMonitorChaosSoak is the make monitor-soak gate: a seeded
// faultstore chaos schedule across repeated decodes must drive an alert
// to firing and, once the chaos stops, back to resolved — and the
// health verdict must recover with it. Fully deterministic: fake clock,
// injected retry pacer, seeded fault schedule.
func TestMonitorChaosSoak(t *testing.T) {
	dir := t.TempDir()
	manifest := encodeBlob(t, dir)

	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(512)
	tracer := obs.NewTracer(flight)
	tracer.Seed(11)
	clock := newFakeClock()
	mon, err := monitor.New(monitor.Config{
		Registry: reg,
		Interval: time.Second,
		Window:   128,
		Rules: []monitor.Rule{{
			Name: "injected-faults", Metric: "faultstore.injected.total",
			Kind: monitor.RuleRate, Op: ">", Value: 0.05,
			Window:   monitor.Duration(10 * time.Second),
			For:      monitor.Duration(3 * time.Second),
			Severity: monitor.SeverityCritical,
		}},
		Tracer:       tracer,
		Now:          clock.Now,
		HealthWindow: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	chaos := faultstore.New(store.OS{}, faultstore.Config{
		Seed: 1234,
		Rules: []faultstore.Rule{
			{Op: faultstore.OpRead, Kind: faultstore.Transient, Prob: 0.15},
		},
		Registry: reg,
	})
	decode := func(st store.Store) {
		t.Helper()
		if _, err := shard.DecodeReport(manifest, io.Discard, shard.Options{
			Registry: reg,
			Store:    st,
			Retry:    store.RetryPolicy{MaxAttempts: 20, BaseBackoff: time.Nanosecond, Sleep: noSleep},
		}); err != nil {
			t.Fatalf("soak decode failed: %v", err)
		}
	}

	var seq []string
	soak := func(rounds int, st store.Store) {
		for i := 0; i < rounds; i++ {
			if st != nil {
				decode(st)
			}
			for _, tr := range mon.Tick() {
				seq = append(seq, tr.To)
			}
			clock.Step()
		}
	}

	soak(3, nil)   // quiet warm-up
	soak(6, chaos) // chaos: every round decodes under the fault schedule
	if got := strings.Join(seq, " "); got != "pending firing" {
		t.Fatalf("chaos phase transitions = %q, want \"pending firing\"", got)
	}
	if h := mon.Health(); h.Verdict != monitor.Critical {
		t.Fatalf("chaos health = %v, want critical (critical rule firing)", h.Verdict)
	}

	soak(15, nil) // chaos stops; the burst ages out of every window
	if got := strings.Join(seq, " "); got != "pending firing resolved" {
		t.Fatalf("full soak transitions = %q, want \"pending firing resolved\"", got)
	}
	if h := mon.Health(); h.Verdict != monitor.Healthy {
		t.Fatalf("post-soak health = %v (%+v), want healthy", h.Verdict, h.Reasons)
	}
	if flight.Total() == 0 {
		t.Error("soak recorded no flight events")
	}
}

// TestTransitionEventLogStable: the monitor's transition events render
// byte-identically across two identical runs (modulo timestamps) — the
// EventLog key-order guarantee extends to the new event family.
func TestTransitionEventLogStable(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(obs.NewEventLog(&buf, slog.LevelInfo))
		tracer.Seed(5)
		clock := newFakeClock()
		mon, err := monitor.New(monitor.Config{
			Registry: reg,
			Window:   16,
			Rules: []monitor.Rule{{
				Name: "r", Metric: "c.total", Kind: monitor.RuleThreshold,
				Op: ">", Value: 0, Window: monitor.Duration(2 * time.Second),
			}},
			Tracer: tracer,
			Now:    clock.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		mon.Tick()
		clock.Step()
		reg.Count("c.total", 3)
		mon.Tick() // pending + firing
		clock.Step()
		mon.Tick()
		clock.Step()
		mon.Tick() // resolved once the increase ages out
		// Strip the wall-clock timestamp and duration fields, which
		// legitimately differ between runs; everything else must not.
		var out []string
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			i := strings.Index(line, `"msg"`)
			if i < 0 {
				t.Fatalf("log line without msg: %s", line)
			}
			stable := line[i:]
			if j := strings.Index(stable, `"dur"`); j >= 0 {
				stable = stable[:j]
			}
			out = append(out, stable)
		}
		return strings.Join(out, "\n")
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("transition event log not byte-stable across identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "monitor.alert.firing") || !strings.Contains(a, "monitor.alert.resolved") {
		t.Errorf("log missing transition events:\n%s", a)
	}
}
