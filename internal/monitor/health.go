package monitor

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Verdict is the health scorer's per-target conclusion.
type Verdict int

const (
	Healthy Verdict = iota
	Degraded
	Critical
)

func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

func (v Verdict) MarshalJSON() ([]byte, error) { return json.Marshal(v.String()) }

func (v *Verdict) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "healthy":
		*v = Healthy
	case "degraded":
		*v = Degraded
	case "critical":
		*v = Critical
	default:
		return fmt.Errorf("monitor: unknown verdict %q", name)
	}
	return nil
}

// A Reason is one human-readable contribution to a verdict, naming the
// metric (or alert) that triggered it and the target it indicts.
type Reason struct {
	Target   string  `json:"target"`           // "array" or "disk.N"
	Severity Verdict `json:"severity"`         // Degraded or Critical
	Metric   string  `json:"metric,omitempty"` // triggering series or rule metric
	Detail   string  `json:"detail"`
}

// Health is one evaluation of the array's condition: the overall
// verdict, the reasons behind it, per-target sub-verdicts, and the alert
// totals it folded in.
type Health struct {
	Verdict Verdict            `json:"verdict"`
	At      time.Time          `json:"at"`
	Window  Duration           `json:"window"`
	Reasons []Reason           `json:"reasons"`
	Targets map[string]Verdict `json:"targets,omitempty"`
	Firing  int                `json:"alerts_firing"`
	Pending int                `json:"alerts_pending"`
}

// healthSignal is one built-in degradation-ladder counter the scorer
// watches: any windowed increase contributes a reason at the given
// severity, independent of the configured alert rules.
type healthSignal struct {
	metric   string
	severity Verdict
	what     string
}

// healthSignals is the degradation ladder in metric form, ordered from
// creeping trouble to data-loss-adjacent. The retry/quarantine/rung
// counters come from the shard engine, faultstore.injected.* from the
// chaos layer, the nodestore/hedge/breaker counters from the node
// fault-domain layer, and the scrub counters from raidsim.
var healthSignals = []healthSignal{
	{"shard.retry.total", Degraded, "transient I/O retries"},
	{"shard.quarantine.total", Degraded, "shard quarantines"},
	{"shard.rung.skip.total", Degraded, "degradation-ladder rungs skipped"},
	{"shard.correct_column.total", Degraded, "silent-corruption column corrections"},
	{"faultstore.injected.total", Degraded, "injected faults"},
	{"raid.scrub_repairs", Degraded, "scrub corruption repairs"},
	{"raid.degraded_reads", Degraded, "degraded reads"},
	{"nodestore.down.total", Degraded, "operations refused by down nodes"},
	{"nodestore.replaced.total", Degraded, "shards re-placed onto spare nodes"},
	{"store.hedge.fired", Degraded, "hedged reads fired against slow nodes"},
	{"store.breaker.open.total", Critical, "node circuit breakers tripped"},
	{"shard.retry.exhausted", Critical, "retry budgets exhausted"},
	{"shard.correct_column.failed", Critical, "failed column corrections"},
	{"shard.decode.errors", Critical, "decode failures"},
	{"shard.repair.errors", Critical, "repair failures"},
}

// labeledSignal is one labeled counter family whose per-child movement
// indicts the child's target: an increase on base{key="V"} becomes a
// reason (and sub-verdict) for target "key.V" instead of the whole
// array.
type labeledSignal struct {
	base     string
	key      string
	severity Verdict
	what     string
}

// labeledSignals is the per-target half of the degradation ladder. The
// emitters attach the disk/node label at the source, so the scorer
// never parses series names — it selects children by label key.
var labeledSignals = []labeledSignal{
	{"raid.scrub.repairs", "disk", Degraded, "scrub corruption repairs"},
	{"nodestore.down.total", "node", Degraded, "operations refused by a down node"},
	{"nodestore.timeout.total", "node", Degraded, "node deadline timeouts"},
	{"store.hedge.fired", "node", Degraded, "hedged reads fired against a slow node"},
	{"nodestore.replaced.total", "node", Degraded, "shards re-placed off a node"},
	{"store.breaker.open.total", "node", Critical, "node circuit breaker tripped"},
}

// Score folds the alert states and the degradation-ladder counters into
// a verdict as of now, looking back window for counter movement. The
// policy: any firing critical alert, or any movement on a critical
// ladder counter, is Critical; any firing warning alert or movement on a
// degraded ladder counter is Degraded; otherwise Healthy. Pending alerts
// never change the verdict — that is what the pending state is for.
func Score(ts *TSStore, alerts []Alert, window time.Duration, now time.Time) Health {
	h := Health{
		Verdict: Healthy,
		At:      now,
		Window:  Duration(window),
		Reasons: []Reason{},
		Targets: map[string]Verdict{"array": Healthy},
	}
	addReason := func(r Reason) {
		h.Reasons = append(h.Reasons, r)
		if r.Severity > h.Targets[r.Target] {
			h.Targets[r.Target] = r.Severity
		}
		if r.Target != "array" && r.Severity > h.Targets["array"] {
			h.Targets["array"] = r.Severity
		}
		if r.Severity > h.Verdict {
			h.Verdict = r.Severity
		}
	}

	for _, a := range alerts {
		switch a.State {
		case StateFiring:
			h.Firing++
			sev := Degraded
			if a.Rule.severity() == SeverityCritical {
				sev = Critical
			}
			target := a.Target
			if target == "" {
				target = "array"
			}
			addReason(Reason{
				Target:   target,
				Severity: sev,
				Metric:   a.Rule.Metric,
				Detail: fmt.Sprintf("alert %s firing on %s: %s %s %s %g (value %.4g, since %s)",
					a.Rule.Name, target, a.Rule.Metric, a.Rule.kind(), a.Rule.op(), a.Rule.Value,
					a.Value, a.Since.Format(time.RFC3339)),
			})
		case StatePending:
			h.Pending++
		}
	}

	if ts != nil {
		for _, sig := range healthSignals {
			inc, ok := ts.Increase(sig.metric, window, now)
			if !ok || inc <= 0 {
				continue
			}
			addReason(Reason{
				Target:   "array",
				Severity: sig.severity,
				Metric:   sig.metric,
				Detail: fmt.Sprintf("%s: %s rose by %g in the last %s",
					sig.what, sig.metric, inc, window),
			})
		}
		for _, sig := range labeledSignals {
			for _, name := range ts.Select(sig.base, nil) {
				_, labels := obs.SplitSeries(name)
				value := ""
				for _, l := range labels {
					if l.Key == sig.key {
						value = l.Value
					}
				}
				if value == "" {
					continue
				}
				inc, ok := ts.Increase(name, window, now)
				if !ok || inc <= 0 {
					continue
				}
				addReason(Reason{
					Target:   sig.key + "." + value,
					Severity: sig.severity,
					Metric:   name,
					Detail: fmt.Sprintf("%s: %s rose by %g in the last %s",
						sig.what, name, inc, window),
				})
			}
		}
	}
	return h
}
