package monitor

import "time"

// DefaultRules is a conservative built-in rule set covering the stack's
// degradation ladder, used by raidmon when no -rules file is given. The
// windows assume roughly 1-second sampling; a rule over a metric the
// process never emits simply stays ok.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "shard-retry-burn", Metric: "shard.retry.total",
			Kind: RuleRate, Op: ">", Value: 0.5,
			Window: Duration(30 * time.Second), For: Duration(10 * time.Second),
			Severity: SeverityWarning,
		},
		{
			Name: "shard-quarantine", Metric: "shard.quarantine.total",
			Kind: RuleThreshold, Op: ">", Value: 0,
			Window: Duration(5 * time.Minute), Severity: SeverityWarning,
		},
		{
			Name: "retry-exhausted", Metric: "shard.retry.exhausted",
			Kind: RuleThreshold, Op: ">", Value: 0,
			Window: Duration(5 * time.Minute), Severity: SeverityCritical,
		},
		{
			Name: "scrub-repairs", Metric: "raid.scrub_repairs",
			Kind: RuleThreshold, Op: ">", Value: 2,
			Window: Duration(5 * time.Minute), For: Duration(5 * time.Second),
			Severity: SeverityWarning,
		},
		{
			Name: "degraded-reads", Metric: "raid.degraded_reads",
			Kind: RuleRate, Op: ">", Value: 1,
			Window: Duration(30 * time.Second), For: Duration(10 * time.Second),
			Severity: SeverityWarning,
		},
		{
			Name: "node-down", Metric: "nodestore.nodes_down",
			Kind: RuleThreshold, Op: ">", Value: 0,
			Severity: SeverityCritical,
		},
		{
			Name: "breaker-open", Metric: "store.breaker.open",
			Kind: RuleThreshold, Op: ">", Value: 0,
			Window: Duration(5 * time.Minute), Severity: SeverityWarning,
		},
		{
			Name: "goroutine-leak", Metric: "go.goroutines",
			Kind: RuleThreshold, Op: ">", Value: 10000,
			Severity: SeverityCritical,
		},
	}
}
