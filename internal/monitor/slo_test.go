package monitor

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSLOCompile: a latency SLO compiles into the fast/slow multi-window
// burn-rate rule pair over the histogram's bucket and count series.
func TestSLOCompile(t *testing.T) {
	rules, track, err := CompileSLOs([]SLO{{
		Name: "read-latency", Metric: "store.node.seconds",
		Threshold: 0.05, Objective: 0.99, By: "node",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("compiled %d rules, want 2", len(rules))
	}
	fast, slow := rules[0], rules[1]
	if fast.Name != "read-latency-fast-burn" || fast.Severity != SeverityCritical {
		t.Errorf("fast rule = %+v", fast)
	}
	if slow.Name != "read-latency-slow-burn" || slow.Severity != SeverityWarning {
		t.Errorf("slow rule = %+v", slow)
	}
	if fast.Good != "store.node.seconds.le.0.05" || fast.Total != "store.node.seconds.count" {
		t.Errorf("series = %q / %q", fast.Good, fast.Total)
	}
	if math.Abs(fast.Budget-0.01) > 1e-9 || fast.By != "node" || fast.Kind != RuleBurnRate {
		t.Errorf("fast rule params = %+v", fast)
	}
	if fast.Value != DefaultFastFactor || slow.Value != DefaultSlowFactor {
		t.Errorf("factors = %g / %g", fast.Value, slow.Value)
	}
	if len(track) != 1 || track[0] != "store.node.seconds" {
		t.Errorf("tracked bases = %v", track)
	}
}

func TestSLOValidate(t *testing.T) {
	bad := []SLO{
		{Name: "", Metric: "m", Threshold: 1, Objective: 0.9},
		{Name: "x", Metric: "m", Threshold: 1, Objective: 1.5},
		{Name: "x", Metric: "m", Threshold: 1, Total: "t", Good: "g", Objective: 0.9},
		{Name: "x", Objective: 0.9},
		{Name: "x", Metric: "m", Objective: 0.9},                     // no threshold
		{Name: "x", Total: "t", Objective: 0.9},                      // neither good nor bad
		{Name: "x", Total: "t", Good: "g", Bad: "b", Objective: 0.9}, // both
	}
	for i, s := range bad {
		if _, err := s.Compile(); err == nil {
			t.Errorf("case %d: SLO %+v compiled, want error", i, s)
		}
	}
}

// TestBurnRateByTarget drives a per-node burn-rate rule end to end on
// synthetic series: only the slow node's target fires, and the alert
// carries Target "node.1".
func TestBurnRateByTarget(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(64)
	c := newClock()
	rule := Rule{
		Name: "lat-burn", Kind: RuleBurnRate, Op: ">=",
		Good: "lat.le.0.05", Total: "lat.count",
		Budget: 0.01, Value: 10,
		Window: Duration(20 * time.Second), ShortWindow: Duration(5 * time.Second),
		By: "node",
	}
	eng, err := NewEngine([]Rule{rule}, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 is healthy (all observations under the bound); node 1 sends
	// half its observations over the bound: burn = 0.5/0.01 = 50 >= 10.
	var total0, good0, total1, good1 uint64
	for i := 0; i < 30; i++ {
		total0 += 10
		good0 += 10
		total1 += 10
		good1 += 5
		ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{
			`lat.count{node="0"}`:   total0,
			`lat.le.0.05{node="0"}`: good0,
			`lat.count{node="1"}`:   total1,
			`lat.le.0.05{node="1"}`: good1,
		}})
		eng.Eval(ts, c.Now())
		c.Advance(time.Second)
	}
	alerts := eng.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %d, want one per discovered node", len(alerts))
	}
	byTarget := map[string]Alert{}
	for _, a := range alerts {
		byTarget[a.Target] = a
	}
	if a := byTarget["node.1"]; a.State != StateFiring {
		t.Errorf("node.1 = %v (value %g), want firing", a.State, a.Value)
	}
	if a := byTarget["node.0"]; a.State != StateOK {
		t.Errorf("node.0 = %v (value %g), want ok", a.State, a.Value)
	}

	// Node 1 recovers: the short window stops burning first, min() drops
	// below the factor, and the alert resolves while the long window is
	// still polluted.
	resolvedAt := -1
	for i := 0; i < 10; i++ {
		total1 += 10
		good1 += 10
		total0 += 10
		good0 += 10
		ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{
			`lat.count{node="0"}`:   total0,
			`lat.le.0.05{node="0"}`: good0,
			`lat.count{node="1"}`:   total1,
			`lat.le.0.05{node="1"}`: good1,
		}})
		for _, tr := range eng.Eval(ts, c.Now()) {
			if tr.Target == "node.1" && tr.To == "resolved" {
				resolvedAt = i
			}
		}
		c.Advance(time.Second)
	}
	if resolvedAt < 0 {
		t.Error("node.1 burn alert never resolved after recovery")
	} else if resolvedAt > 6 {
		t.Errorf("short window took %d rounds to release the alert, want <= 6", resolvedAt)
	}
}

// TestBurnRateIdleService: no events in the window means no burn — the
// rule stays ok rather than dividing by zero.
func TestBurnRateIdleService(t *testing.T) {
	ts := NewTSStore(16)
	c := newClock()
	r := Rule{
		Name: "idle", Kind: RuleBurnRate, Op: ">=",
		Bad: "err.total", Total: "req.total",
		Budget: 0.01, Value: 1, Window: Duration(10 * time.Second),
	}
	if err := r.validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := evalValue(ts, r, nil, c.Now()); ok {
		t.Error("burn over an absent total series reported ok")
	}
	// Bad series absent entirely: burn is zero, not an error.
	ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{"req.total": 100}})
	v, ok := evalValue(ts, r, nil, c.Now())
	if !ok || v != 0 {
		t.Errorf("burn with no bad series = %g/%v, want 0/true", v, ok)
	}
}
