package monitor

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// clock is the injectable test clock: Now returns the current instant,
// Advance moves it forward.
type clock struct{ t time.Time }

func newClock() *clock {
	return &clock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}
func (c *clock) Now() time.Time                    { return c.t }
func (c *clock) Advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

// sample ingests the registry's current state at the clock's instant.
func sample(ts *TSStore, reg *obs.Registry, c *clock) {
	ts.Ingest(c.Now(), reg.Snapshot())
}

// TestCounterDeltas: counters land as per-interval deltas, so the
// windowed increase and rate are exact.
func TestCounterDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(16)
	c := newClock()

	reg.Count("x.total", 5)
	sample(ts, reg, c)
	c.Advance(time.Second)
	reg.Count("x.total", 3)
	sample(ts, reg, c)
	c.Advance(time.Second)
	sample(ts, reg, c) // no movement

	kind, ok := ts.Kind("x.total")
	if !ok || kind != KindCounter {
		t.Fatalf("kind = %v/%v, want counter", kind, ok)
	}
	pts, _, _ := ts.Range("x.total", time.Time{}, time.Time{})
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for i, want := range []float64{5, 3, 0} {
		if pts[i].V != want {
			t.Errorf("delta[%d] = %g, want %g", i, pts[i].V, want)
		}
	}
	// The last 2 seconds hold deltas 3 and 0.
	if inc, ok := ts.Increase("x.total", 2*time.Second, c.Now()); !ok || inc != 3 {
		t.Errorf("increase(2s) = %g/%v, want 3", inc, ok)
	}
	if rate, ok := ts.Rate("x.total", 2*time.Second, c.Now()); !ok || rate != 1.5 {
		t.Errorf("rate(2s) = %g/%v, want 1.5", rate, ok)
	}
	// The full window back to before the first sample includes all 8.
	if inc, _ := ts.Increase("x.total", time.Hour, c.Now()); inc != 8 {
		t.Errorf("increase(1h) = %g, want 8", inc)
	}
}

// TestCounterReset: a shrinking counter is treated as a reset and
// contributes its post-reset value, never a negative delta.
func TestCounterReset(t *testing.T) {
	ts := NewTSStore(8)
	c := newClock()
	ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{"c": 10}})
	c.Advance(time.Second)
	ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{"c": 2}})
	pts, _, _ := ts.Range("c", time.Time{}, time.Time{})
	if len(pts) != 2 || pts[1].V != 2 {
		t.Errorf("post-reset delta = %+v, want 2", pts)
	}
}

// TestGaugeSamples: gauges are point samples; Last/Avg/Max aggregate
// the raw values and the gauge Increase is newest-minus-oldest.
func TestGaugeSamples(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(16)
	c := newClock()
	for _, v := range []float64{1, 5, 3} {
		reg.SetGauge("depth", v)
		sample(ts, reg, c)
		c.Advance(time.Second)
	}
	now := c.Now()
	if p, ok := ts.Last("depth"); !ok || p.V != 3 {
		t.Errorf("last = %+v/%v, want 3", p, ok)
	}
	if avg, _ := ts.Avg("depth", time.Minute, now); avg != 3 {
		t.Errorf("avg = %g, want 3", avg)
	}
	if max, _ := ts.Max("depth", time.Minute, now); max != 5 {
		t.Errorf("max = %g, want 5", max)
	}
	if inc, _ := ts.Increase("depth", time.Minute, now); inc != 2 {
		t.Errorf("gauge increase = %g, want 2 (3-1)", inc)
	}
}

// TestHistogramSeries: a histogram becomes .count and .sum delta series.
func TestHistogramSeries(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	reg.Observe("lat", obs.LatencyBuckets, 0.5)
	reg.Observe("lat", obs.LatencyBuckets, 1.5)
	sample(ts, reg, c)
	if inc, ok := ts.Increase("lat.count", time.Minute, c.Now()); !ok || inc != 2 {
		t.Errorf("lat.count increase = %g/%v, want 2", inc, ok)
	}
	if inc, ok := ts.Increase("lat.sum", time.Minute, c.Now()); !ok || inc != 2.0 {
		t.Errorf("lat.sum increase = %g/%v, want 2.0", inc, ok)
	}
}

// TestRingEviction: the store holds exactly window samples per series,
// evicting oldest-first.
func TestRingEviction(t *testing.T) {
	ts := NewTSStore(4)
	c := newClock()
	for i := 1; i <= 10; i++ {
		ts.Ingest(c.Now(), obs.Snapshot{Gauges: map[string]float64{"g": float64(i)}})
		c.Advance(time.Second)
	}
	pts, _, _ := ts.Range("g", time.Time{}, time.Time{})
	if len(pts) != 4 {
		t.Fatalf("ring holds %d, want 4", len(pts))
	}
	for i, want := range []float64{7, 8, 9, 10} {
		if pts[i].V != want {
			t.Errorf("pts[%d] = %g, want %g (oldest-first)", i, pts[i].V, want)
		}
	}
	if ts.Rounds() != 10 {
		t.Errorf("rounds = %d, want 10", ts.Rounds())
	}
}

// TestUnknownSeries: queries on absent series report !ok, never panic.
func TestUnknownSeries(t *testing.T) {
	ts := NewTSStore(4)
	if _, ok := ts.Last("nope"); ok {
		t.Error("Last on absent series reported ok")
	}
	if _, ok := ts.Increase("nope", time.Second, time.Now()); ok {
		t.Error("Increase on absent series reported ok")
	}
	if pts, _, ok := ts.Range("nope", time.Time{}, time.Time{}); ok || pts != nil {
		t.Error("Range on absent series reported ok")
	}
}

// TestLabeledCounterResetPerChild: delta/reset clamping state is per
// labeled child — one node's restart must not corrupt its siblings'
// deltas or the family aggregate.
func TestLabeledCounterResetPerChild(t *testing.T) {
	ts := NewTSStore(8)
	c := newClock()
	n1 := `nodestore.down.total{node="1"}`
	n2 := `nodestore.down.total{node="2"}`
	ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{n1: 10, n2: 4}})
	c.Advance(time.Second)
	// node=1 resets to 3; node=2 keeps climbing.
	ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{n1: 3, n2: 6}})
	pts1, _, _ := ts.Range(n1, time.Time{}, time.Time{})
	if pts1[1].V != 3 {
		t.Errorf("node=1 post-reset delta = %g, want clamped 3", pts1[1].V)
	}
	pts2, _, _ := ts.Range(n2, time.Time{}, time.Time{})
	if pts2[1].V != 2 {
		t.Errorf("node=2 delta = %g, want 2 (unaffected by sibling reset)", pts2[1].V)
	}
}

// TestDeadLabelSetEviction: a labeled child that stops appearing in
// snapshots is dropped after a full window of absent rounds; live
// siblings stay.
func TestDeadLabelSetEviction(t *testing.T) {
	ts := NewTSStore(4)
	c := newClock()
	dead := `m{node="9"}`
	live := `m{node="1"}`
	ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{dead: 1, live: 1}})
	for i := 0; i < 6; i++ {
		c.Advance(time.Second)
		ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{live: uint64(2 + i)}})
	}
	if _, ok := ts.Kind(dead); ok {
		t.Errorf("dead label set %s survived %d absent rounds (window 4)", dead, 6)
	}
	if _, ok := ts.Kind(live); !ok {
		t.Error("live series evicted")
	}
}

// TestTrackBuckets: tracked histogram bases grow per-bucket cumulative
// series usable as SLO good-event counters; untracked bases do not.
func TestTrackBuckets(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	ts.TrackBuckets("lat")
	c := newClock()
	bounds := []float64{0.01, 0.1}
	reg.ObserveWith("lat", bounds, 0.005, obs.L("node", "3"))
	reg.ObserveWith("lat", bounds, 0.05, obs.L("node", "3"))
	reg.Observe("other.lat", bounds, 0.005)
	sample(ts, reg, c)

	if inc, ok := ts.Increase(`lat.le.0.01{node="3"}`, time.Minute, c.Now()); !ok || inc != 1 {
		t.Errorf("lat.le.0.01 child = %g/%v, want 1", inc, ok)
	}
	if inc, ok := ts.Increase(`lat.le.0.1{node="3"}`, time.Minute, c.Now()); !ok || inc != 2 {
		t.Errorf("lat.le.0.1 child = %g/%v, want cumulative 2", inc, ok)
	}
	// Aggregate histogram (bare base) is tracked too.
	if inc, ok := ts.Increase("lat.le.0.1", time.Minute, c.Now()); !ok || inc != 2 {
		t.Errorf("lat.le.0.1 aggregate = %g/%v, want 2", inc, ok)
	}
	if _, ok := ts.Kind("other.lat.le.0.01"); ok {
		t.Error("untracked histogram grew bucket series")
	}
	// .count/.sum keep the label set terminal.
	if inc, ok := ts.Increase(`lat.count{node="3"}`, time.Minute, c.Now()); !ok || inc != 2 {
		t.Errorf(`lat.count{node="3"} = %g/%v, want 2`, inc, ok)
	}
}

// TestSelectAndLabelValues: selector primitives pick labeled children
// only — never the bare aggregate or dotted flat aliases.
func TestSelectAndLabelValues(t *testing.T) {
	ts := NewTSStore(8)
	c := newClock()
	ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{
		"m":                  7, // aggregate
		"m.node.1":           3, // flat alias
		`m{node="1"}`:        3,
		`m{node="2"}`:        4,
		`m{node="2",op="r"}`: 1,
	}})
	got := ts.Select("m", nil)
	if len(got) != 3 {
		t.Fatalf("Select(m) = %v, want 3 children", got)
	}
	one := ts.Select("m", []obs.Label{obs.L("node", "2")})
	if len(one) != 2 {
		t.Errorf("Select(node=2) = %v, want 2", one)
	}
	vals := ts.LabelValues("m", "node")
	if len(vals) != 2 || vals[0] != "1" || vals[1] != "2" {
		t.Errorf("LabelValues = %v, want [1 2]", vals)
	}
	if inc, ok := ts.IncreaseMatched("m", []obs.Label{obs.L("node", "2")}, time.Minute, c.Now()); !ok || inc != 5 {
		t.Errorf("IncreaseMatched(node=2) = %g/%v, want 5", inc, ok)
	}
	// nil match: exact name only (the aggregate here).
	if inc, ok := ts.IncreaseMatched("m", nil, time.Minute, c.Now()); !ok || inc != 7 {
		t.Errorf("IncreaseMatched(nil) = %g/%v, want 7", inc, ok)
	}
	if _, ok := ts.IncreaseMatched("m", []obs.Label{obs.L("node", "99")}, time.Minute, c.Now()); ok {
		t.Error("IncreaseMatched on unknown label value reported ok")
	}
}
