package monitor

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// clock is the injectable test clock: Now returns the current instant,
// Advance moves it forward.
type clock struct{ t time.Time }

func newClock() *clock {
	return &clock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}
func (c *clock) Now() time.Time                    { return c.t }
func (c *clock) Advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

// sample ingests the registry's current state at the clock's instant.
func sample(ts *TSStore, reg *obs.Registry, c *clock) {
	ts.Ingest(c.Now(), reg.Snapshot())
}

// TestCounterDeltas: counters land as per-interval deltas, so the
// windowed increase and rate are exact.
func TestCounterDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(16)
	c := newClock()

	reg.Count("x.total", 5)
	sample(ts, reg, c)
	c.Advance(time.Second)
	reg.Count("x.total", 3)
	sample(ts, reg, c)
	c.Advance(time.Second)
	sample(ts, reg, c) // no movement

	kind, ok := ts.Kind("x.total")
	if !ok || kind != KindCounter {
		t.Fatalf("kind = %v/%v, want counter", kind, ok)
	}
	pts, _, _ := ts.Range("x.total", time.Time{}, time.Time{})
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for i, want := range []float64{5, 3, 0} {
		if pts[i].V != want {
			t.Errorf("delta[%d] = %g, want %g", i, pts[i].V, want)
		}
	}
	// The last 2 seconds hold deltas 3 and 0.
	if inc, ok := ts.Increase("x.total", 2*time.Second, c.Now()); !ok || inc != 3 {
		t.Errorf("increase(2s) = %g/%v, want 3", inc, ok)
	}
	if rate, ok := ts.Rate("x.total", 2*time.Second, c.Now()); !ok || rate != 1.5 {
		t.Errorf("rate(2s) = %g/%v, want 1.5", rate, ok)
	}
	// The full window back to before the first sample includes all 8.
	if inc, _ := ts.Increase("x.total", time.Hour, c.Now()); inc != 8 {
		t.Errorf("increase(1h) = %g, want 8", inc)
	}
}

// TestCounterReset: a shrinking counter is treated as a reset and
// contributes its post-reset value, never a negative delta.
func TestCounterReset(t *testing.T) {
	ts := NewTSStore(8)
	c := newClock()
	ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{"c": 10}})
	c.Advance(time.Second)
	ts.Ingest(c.Now(), obs.Snapshot{Counters: map[string]uint64{"c": 2}})
	pts, _, _ := ts.Range("c", time.Time{}, time.Time{})
	if len(pts) != 2 || pts[1].V != 2 {
		t.Errorf("post-reset delta = %+v, want 2", pts)
	}
}

// TestGaugeSamples: gauges are point samples; Last/Avg/Max aggregate
// the raw values and the gauge Increase is newest-minus-oldest.
func TestGaugeSamples(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(16)
	c := newClock()
	for _, v := range []float64{1, 5, 3} {
		reg.SetGauge("depth", v)
		sample(ts, reg, c)
		c.Advance(time.Second)
	}
	now := c.Now()
	if p, ok := ts.Last("depth"); !ok || p.V != 3 {
		t.Errorf("last = %+v/%v, want 3", p, ok)
	}
	if avg, _ := ts.Avg("depth", time.Minute, now); avg != 3 {
		t.Errorf("avg = %g, want 3", avg)
	}
	if max, _ := ts.Max("depth", time.Minute, now); max != 5 {
		t.Errorf("max = %g, want 5", max)
	}
	if inc, _ := ts.Increase("depth", time.Minute, now); inc != 2 {
		t.Errorf("gauge increase = %g, want 2 (3-1)", inc)
	}
}

// TestHistogramSeries: a histogram becomes .count and .sum delta series.
func TestHistogramSeries(t *testing.T) {
	reg := obs.NewRegistry()
	ts := NewTSStore(8)
	c := newClock()
	reg.Observe("lat", obs.LatencyBuckets, 0.5)
	reg.Observe("lat", obs.LatencyBuckets, 1.5)
	sample(ts, reg, c)
	if inc, ok := ts.Increase("lat.count", time.Minute, c.Now()); !ok || inc != 2 {
		t.Errorf("lat.count increase = %g/%v, want 2", inc, ok)
	}
	if inc, ok := ts.Increase("lat.sum", time.Minute, c.Now()); !ok || inc != 2.0 {
		t.Errorf("lat.sum increase = %g/%v, want 2.0", inc, ok)
	}
}

// TestRingEviction: the store holds exactly window samples per series,
// evicting oldest-first.
func TestRingEviction(t *testing.T) {
	ts := NewTSStore(4)
	c := newClock()
	for i := 1; i <= 10; i++ {
		ts.Ingest(c.Now(), obs.Snapshot{Gauges: map[string]float64{"g": float64(i)}})
		c.Advance(time.Second)
	}
	pts, _, _ := ts.Range("g", time.Time{}, time.Time{})
	if len(pts) != 4 {
		t.Fatalf("ring holds %d, want 4", len(pts))
	}
	for i, want := range []float64{7, 8, 9, 10} {
		if pts[i].V != want {
			t.Errorf("pts[%d] = %g, want %g (oldest-first)", i, pts[i].V, want)
		}
	}
	if ts.Rounds() != 10 {
		t.Errorf("rounds = %d, want 10", ts.Rounds())
	}
}

// TestUnknownSeries: queries on absent series report !ok, never panic.
func TestUnknownSeries(t *testing.T) {
	ts := NewTSStore(4)
	if _, ok := ts.Last("nope"); ok {
		t.Error("Last on absent series reported ok")
	}
	if _, ok := ts.Increase("nope", time.Second, time.Now()); ok {
		t.Error("Increase on absent series reported ok")
	}
	if pts, _, ok := ts.Range("nope", time.Time{}, time.Time{}); ok || pts != nil {
		t.Error("Range on absent series reported ok")
	}
}
