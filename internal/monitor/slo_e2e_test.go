package monitor_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/store/nodestore"
)

// quietStore succeeds at everything without touching a filesystem, so
// the SLO e2e test exercises only the node fault model and the
// monitoring plane above it.
type quietStore struct{}

func (quietStore) Open(string) (store.File, error)   { return quietFile{}, nil }
func (quietStore) Create(string) (store.File, error) { return quietFile{}, nil }
func (quietStore) Rename(_, _ string) error          { return nil }
func (quietStore) Remove(string) error               { return nil }

type quietFile struct{}

func (quietFile) ReadAt(b []byte, _ int64) (int, error)  { return len(b), nil }
func (quietFile) WriteAt(b []byte, _ int64) (int, error) { return len(b), nil }
func (quietFile) Size() (int64, error)                   { return 0, nil }
func (quietFile) Sync() error                            { return nil }
func (quietFile) Close() error                           { return nil }

// TestSLOBurnRateEndToEnd is the acceptance test for dimensional
// metrics: a seeded latency fault makes exactly one node of a
// three-node store slow, and the per-node labeled series must carry
// that fact through every layer — the registry's labeled histogram
// children, the Prometheus exposition, the query API's label
// selectors, the compiled burn-rate rules' per-target fan-out, and the
// health verdict's per-node targets — before the fault schedule ends
// and everything resolves. Fully deterministic: fake clock, injected
// sleep, op-indexed fault schedule.
func TestSLOBurnRateEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()

	// Node 1 serves its first 20 ops 100ms slow; nodes 0 and 2 are
	// instant throughout. The SLO below says 99% of ops should finish
	// within 50ms, so while the fault is live node 1 burns error budget
	// at 100x — far beyond the fast-burn factor of 14.
	const slowNode = 1
	ns := nodestore.New(nodestore.Config{
		Nodes:    3,
		Base:     quietStore{},
		Registry: reg,
		Sleep:    noSleep,
		Now:      clock.Now,
		Faults: []nodestore.NodeFault{{
			Node: slowNode, Kind: nodestore.LatencyFault,
			Delay: 100 * time.Millisecond, For: 20,
		}},
	})
	paths := []string{"blob.0", "blob.1", "blob.2"}
	for i, p := range paths {
		ns.Assign(p, i)
	}

	tracer := obs.NewTracer(obs.NewFlightRecorder(256))
	tracer.Seed(21)
	mon, err := monitor.New(monitor.Config{
		Registry:     reg,
		Interval:     time.Second,
		Window:       64,
		Now:          clock.Now,
		Tracer:       tracer,
		HealthWindow: 16 * time.Second,
		SLOs: []monitor.SLO{{
			Name:      "node-latency",
			Metric:    "store.node.seconds",
			Threshold: 0.05, // a LatencyBuckets bound
			Objective: 0.99,
			By:        "node",
			// Windows shrunk to the test's 1-second cadence.
			FastWindow: monitor.Duration(8 * time.Second),
			FastShort:  monitor.Duration(2 * time.Second),
			SlowWindow: monitor.Duration(20 * time.Second),
			SlowShort:  monitor.Duration(4 * time.Second),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// One round = one op against every node, then a sampling tick.
	var transitions []monitor.Transition
	round := func() {
		t.Helper()
		for _, p := range paths {
			f, err := ns.Open(p)
			if err != nil {
				t.Fatalf("open %s: %v", p, err)
			}
			f.Close()
		}
		transitions = append(transitions, mon.Tick()...)
		clock.Step()
	}
	seek := func(rule, to, target string, within int) monitor.Transition {
		t.Helper()
		for i := 0; i < within; i++ {
			for _, tr := range transitions {
				if tr.Rule == rule && tr.To == to && tr.Target == target {
					return tr
				}
			}
			round()
		}
		t.Fatalf("no %s:%s on %s within %d rounds (transitions %+v)",
			rule, to, target, within, transitions)
		return monitor.Transition{}
	}

	// Phase 1: the fault is live. The fast-burn rule must fire against
	// node.1 specifically — never against the healthy nodes.
	fire := seek("node-latency-fast-burn", "firing", "node.1", 12)
	if fire.Trace == "" {
		t.Error("firing transition carries no trace ID")
	}
	for _, tr := range transitions {
		if tr.Target != "" && tr.Target != "node.1" {
			t.Errorf("transition %+v indicts %s; only node.1 is slow", tr, tr.Target)
		}
	}

	// The alert list attributes the burn to the node, at critical.
	var fastBurn *monitor.Alert
	for i, a := range mon.Alerts() {
		if a.Rule.Name == "node-latency-fast-burn" && a.Target == "node.1" {
			fastBurn = &mon.Alerts()[i]
		}
	}
	if fastBurn == nil || fastBurn.State != monitor.StateFiring {
		t.Fatalf("alerts = %+v, want node-latency-fast-burn firing on node.1", mon.Alerts())
	}
	if fastBurn.Rule.Severity != monitor.SeverityCritical {
		t.Errorf("fast-burn severity = %v, want critical", fastBurn.Rule.Severity)
	}

	// Health: the per-node target is critical, the quiet nodes are not
	// indicted, and at least one reason names the slow node.
	h := mon.Health()
	if h.Verdict != monitor.Critical {
		t.Fatalf("health = %v (%+v), want critical while fast-burn fires", h.Verdict, h.Reasons)
	}
	if got := h.Targets["node.1"]; got != monitor.Critical {
		t.Errorf("Targets[node.1] = %v, want critical (targets %+v)", got, h.Targets)
	}
	for _, quiet := range []string{"node.0", "node.2"} {
		if v, ok := h.Targets[quiet]; ok && v != monitor.Healthy {
			t.Errorf("Targets[%s] = %v; the quiet node must not be indicted", quiet, v)
		}
	}
	var hit bool
	for _, r := range h.Reasons {
		if r.Target == "node.1" {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no health reason targets node.1: %+v", h.Reasons)
	}

	// The Prometheus exposition renders the labeled histogram children
	// with proper brace syntax — the slow node's observations live in a
	// per-node series, not a flattened name.
	var prom bytes.Buffer
	reg.Snapshot().WritePrometheus(&prom)
	for _, want := range []string{
		`store_node_seconds_bucket{node="1",le="0.05"}`,
		`store_node_seconds_count{node="1"}`,
		`store_node_seconds_count{node="0"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus exposition missing %s", want)
		}
	}

	// The query API resolves the same series through label selectors:
	// the slow node's op count is reachable by node=1, and a group-by
	// fans the family out per node.
	mux := http.NewServeMux()
	mon.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	get := func(path string) (int, monitor.QueryResponse) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr monitor.QueryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				t.Fatalf("%s: bad JSON: %v", path, err)
			}
		}
		return resp.StatusCode, qr
	}
	code, qr := get("/api/v1/query?metric=store.node.seconds.count&label=node=1&fn=increase&window=8s")
	if code != http.StatusOK || qr.Value == nil || *qr.Value <= 0 {
		t.Errorf("labeled selector query: status %d value %v, want 200 and > 0", code, qr.Value)
	}
	code, qr = get("/api/v1/query?metric=store.node.seconds.count&by=node&fn=increase&window=8s")
	if code != http.StatusOK || len(qr.Groups) != 3 {
		t.Errorf("group-by query: status %d groups %+v, want 200 with 3 nodes", code, qr.Groups)
	}
	if code, _ := get("/api/v1/query?metric=store.node.seconds.count&label=node=9"); code != http.StatusNotFound {
		t.Errorf("unknown node selector: status %d, want 404", code)
	}

	// Phase 2: the fault schedule ends (node 1 has served its 20 slow
	// ops), good events keep flowing, and both burn windows drain. The
	// fast-burn alert must resolve on the same target and health must
	// recover — seeded chaos, full lifecycle.
	seek("node-latency-fast-burn", "resolved", "node.1", 40)
	for i := 0; i < 30 && mon.Health().Verdict != monitor.Healthy; i++ {
		round()
	}
	if h := mon.Health(); h.Verdict != monitor.Healthy {
		t.Fatalf("post-recovery health = %v (%+v), want healthy", h.Verdict, h.Reasons)
	}
	for _, a := range mon.Alerts() {
		if a.State != monitor.StateOK {
			t.Errorf("post-recovery alert still %s: %+v", a.State, a)
		}
	}
}

// TestSLOBurnRateDeterministic re-runs a compressed version of the
// chaos schedule twice and requires identical transition sequences —
// the whole labeled pipeline (fault schedule, histogram children,
// burn-rate evaluation, per-target fan-out) is seed-stable.
func TestSLOBurnRateDeterministic(t *testing.T) {
	run := func() string {
		reg := obs.NewRegistry()
		clock := newFakeClock()
		ns := nodestore.New(nodestore.Config{
			Nodes: 2, Base: quietStore{}, Registry: reg,
			Sleep: noSleep, Now: clock.Now, Seed: 17,
			Faults: []nodestore.NodeFault{{
				Node: 0, Kind: nodestore.LatencyFault,
				Delay: 200 * time.Millisecond, For: 6,
			}},
		})
		ns.Assign("a", 0)
		ns.Assign("b", 1)
		mon, err := monitor.New(monitor.Config{
			Registry: reg, Interval: time.Second, Window: 32, Now: clock.Now,
			SLOs: []monitor.SLO{{
				Name: "lat", Metric: "store.node.seconds",
				Threshold: 0.1, Objective: 0.95, By: "node",
				FastWindow: monitor.Duration(4 * time.Second),
				FastShort:  monitor.Duration(time.Second),
				SlowWindow: monitor.Duration(8 * time.Second),
				SlowShort:  monitor.Duration(2 * time.Second),
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var seq []string
		for i := 0; i < 24; i++ {
			for _, p := range []string{"a", "b"} {
				f, err := ns.Open(p)
				if err != nil {
					t.Fatal(err)
				}
				f.Close()
			}
			for _, tr := range mon.Tick() {
				seq = append(seq, fmt.Sprintf("%d:%s:%s:%s", i, tr.Rule, tr.To, tr.Target))
			}
			clock.Step()
		}
		return strings.Join(seq, "\n")
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("transition sequence not seed-stable:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "lat-fast-burn:firing:node.0") {
		t.Errorf("compressed schedule never fired on node.0:\n%s", a)
	}
	if !strings.Contains(a, "lat-fast-burn:resolved:node.0") {
		t.Errorf("compressed schedule never resolved:\n%s", a)
	}
}
