package rdp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// Decode reconstructs up to two erased strips. Because RDP's diagonals
// cover the P column, both (data, data) and (data, P) double erasures run
// the same two-sided zigzag over the math array; only erasures involving
// Q need re-encoding of the diagonal parity.
func (c *Code) Decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	return obs.Observed(c.obs, "rdp.decode", s.DataSize(), len(erased)*(c.p-1), ops,
		func(o *core.Ops) error { return c.decode(s, erased, o) })
}

func (c *Code) decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.p-1); err != nil {
		return err
	}
	switch len(erased) {
	case 0:
		return nil
	case 1:
		return c.decodeOne(s, erased[0], ops)
	case 2:
		a, b := erased[0], erased[1]
		if a > b {
			a, b = b, a
		}
		if a < 0 || b > c.k+1 {
			return fmt.Errorf("%w: erased=%v", core.ErrParams, erased)
		}
		if a == b {
			return c.decodeOne(s, a, ops)
		}
		switch {
		case a >= c.k: // P and Q
			return c.encode(s, ops)
		case b == c.k: // data + P: same zigzag, with math column p-1
			return c.decodeMathPair(s, a, c.p-1, ops)
		case b == c.k+1: // data + Q
			c.recoverDataViaP(s, a, ops)
			return c.encodeQ(s, ops)
		default:
			return c.decodeMathPair(s, a, b, ops)
		}
	default:
		return core.ErrTooManyErasures
	}
}

func (c *Code) decodeOne(s *core.Stripe, e int, ops *core.Ops) error {
	switch {
	case e == c.k:
		return c.encodeP(s, ops)
	case e == c.k+1:
		return c.encodeQ(s, ops)
	case e >= 0 && e < c.k:
		c.recoverDataViaP(s, e, ops)
		return nil
	default:
		return fmt.Errorf("%w: erased=%d", core.ErrParams, e)
	}
}

func (c *Code) recoverDataViaP(s *core.Stripe, d int, ops *core.Ops) {
	for i := 0; i < c.p-1; i++ {
		de := s.Elem(d, i)
		ops.Copy(de, s.Elem(c.k, i))
		for j := 0; j < c.k; j++ {
			if j != d {
				ops.XorInto(de, s.Elem(j, i))
			}
		}
	}
}

// decodeMathPair rebuilds two erased math-array columns l < r (either data
// columns or, for r = p-1, the P column) with the two-sided zigzag: row
// constraints tie the two columns together, diagonal constraints advance
// the chain, and the two imaginary cells provide the entry points.
func (c *Code) decodeMathPair(s *core.Stripe, l, r int, ops *core.Ops) error {
	p := c.p
	elemSize := s.ElemSize
	lStrip := c.mathStrip(l)
	rStrip := c.mathStrip(r)
	if lStrip < 0 || rStrip < 0 {
		return fmt.Errorf("%w: math columns %d,%d", core.ErrParams, l, r)
	}

	// Row syndromes into the l strip: XOR of the surviving row members
	// (all math columns except l and r; the P column is a member too).
	for i := 0; i < p-1; i++ {
		le := s.Elem(lStrip, i)
		acc := false
		for y := 0; y < p; y++ {
			if y == l || y == r {
				continue
			}
			col := c.mathStrip(y)
			if col < 0 {
				continue
			}
			if acc {
				ops.XorInto(le, s.Elem(col, i))
			} else {
				ops.Copy(le, s.Elem(col, i))
				acc = true
			}
		}
		if !acc {
			ops.Zero(le)
		}
	}

	// Diagonal syndromes.
	qsyn := make([][]byte, p-1)
	backing := make([]byte, (p-1)*elemSize)
	for d := range qsyn {
		qsyn[d], backing = backing[:elemSize:elemSize], backing[elemSize:]
		ops.Copy(qsyn[d], s.Elem(c.k+1, d))
		for y := 0; y < p; y++ {
			if y == l || y == r {
				continue
			}
			col := c.mathStrip(y)
			if col < 0 {
				continue
			}
			if row := c.mod(d - y); row != p-1 {
				ops.XorInto(qsyn[d], s.Elem(col, row))
			}
		}
	}

	// Chain 1: start at the diagonal whose column-r cell is imaginary.
	for d := c.mod(r - 1); d != p-1; {
		rowL := c.mod(d - l)
		if rowL == p-1 {
			break
		}
		re := s.Elem(rStrip, rowL)
		ops.Xor(re, s.Elem(lStrip, rowL), qsyn[d])
		ops.Copy(s.Elem(lStrip, rowL), qsyn[d])
		d2 := c.mod(rowL + r)
		if d2 == p-1 {
			break
		}
		ops.XorInto(qsyn[d2], re)
		d = d2
	}
	// Chain 2: start at the diagonal whose column-l cell is imaginary.
	for d := c.mod(l - 1); d != p-1; {
		rowR := c.mod(d - r)
		if rowR == p-1 {
			break
		}
		ops.Copy(s.Elem(rStrip, rowR), qsyn[d])
		ops.XorInto(s.Elem(lStrip, rowR), s.Elem(rStrip, rowR))
		d2 := c.mod(rowR + l)
		if d2 == p-1 {
			break
		}
		ops.XorInto(qsyn[d2], s.Elem(lStrip, rowR))
		d = d2
	}
	return nil
}
