package rdp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xorblk"
)

// Update applies a small write at (col, row) with incremental parity
// maintenance. A data element touches its row parity, usually its own
// diagonal parity, and — because RDP's diagonals cover the P column — the
// diagonal parity of the P cell it just changed: ~3 parity updates on
// average (Table I).
func (c *Code) Update(s *core.Stripe, col, row int, oldElem []byte, ops *core.Ops) (int, error) {
	if c.obs == nil {
		return c.update(s, col, row, oldElem, ops)
	}
	sp := obs.StartSpan(c.obs, "rdp.update")
	var local core.Ops
	touched, err := c.update(s, col, row, oldElem, &local)
	ops.Add(local)
	sp.Bytes(s.ElemSize).Units(touched).Ops(local).End(err)
	return touched, err
}

func (c *Code) update(s *core.Stripe, col, row int, oldElem []byte, ops *core.Ops) (int, error) {
	if err := s.CheckShape(c.k, 2, c.p-1); err != nil {
		return 0, err
	}
	if col < 0 || col >= c.k || row < 0 || row >= c.p-1 {
		return 0, fmt.Errorf("%w: update at (%d,%d)", core.ErrParams, col, row)
	}
	delta := make([]byte, s.ElemSize)
	ops.Xor(delta, oldElem, s.Elem(col, row))
	if xorblk.IsZero(delta) {
		return 0, nil
	}
	touched := 0
	ops.XorInto(s.Elem(c.k, row), delta)
	touched++
	// The element's own diagonal (absent for the missing diagonal).
	if d := c.mod(row + col); d != c.p-1 {
		ops.XorInto(s.Elem(c.k+1, d), delta)
		touched++
	}
	// The changed P cell sits on diagonal <row + p-1> = <row - 1>.
	if d := c.mod(row - 1); d != c.p-1 {
		ops.XorInto(s.Elem(c.k+1, d), delta)
		touched++
	}
	return touched, nil
}

var _ core.Updater = (*Code)(nil)
