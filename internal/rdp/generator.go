package rdp

import (
	"fmt"

	"repro/internal/bitmatrix"
)

// Generator returns the RDP generator bit-matrix (2(p-1) x k(p-1)): rows
// 0..p-2 describe P, rows p-1.. describe Q with the P-column contribution
// expanded into its data terms.
func (c *Code) Generator() *bitmatrix.Matrix {
	p, k := c.p, c.k
	w := p - 1
	m := bitmatrix.New(2*w, k*w)
	for i := 0; i < w; i++ {
		for j := 0; j < k; j++ {
			m.Set(i, j*w+i, true)
		}
	}
	for d := 0; d < w; d++ {
		for j := 0; j < k; j++ {
			if row := c.mod(d - j); row != p-1 {
				m.Flip(w+d, j*w+row)
			}
		}
		// P-column cell of diagonal d expands to the data cells of its row.
		if row := c.mod(d + 1); row != p-1 {
			for j := 0; j < k; j++ {
				m.Flip(w+d, j*w+row)
			}
		}
	}
	return m
}

// NewBitmatrix returns a schedule-driven oracle implementation.
func NewBitmatrix(k, p int) (*bitmatrix.Code, error) {
	c, err := New(k, p)
	if err != nil {
		return nil, err
	}
	return bitmatrix.NewCode(
		fmt.Sprintf("rdp-bitmatrix(k=%d,p=%d)", k, p),
		k, p-1, c.Generator(), bitmatrix.Dumb, bitmatrix.Smart)
}
