// Package rdp implements the Row-Diagonal Parity codes (Corbett et al.,
// FAST'04), the second baseline RAID-6 array code in the paper's XOR
// complexity comparison (Figures 5-8, Table I).
//
// An RDP codeword is a (p-1) x (p+1) array, p prime: columns 0..p-2 carry
// data (phantom zeros beyond k), column p-1 is the row parity P, and the
// diagonal parity Q covers the data *and* P columns:
//
//	P[i] = XOR_j b[i][j]
//	Q[d] = XOR of the cells on diagonal d = {(x,y): x+y = d mod p},
//	       y ranging over data columns and the P column, for d != p-1.
//
// Because Q protects P, RDP reaches the k-1 encoding lower bound when
// k = p-1, and a (data, P) double erasure decodes with the very same
// zigzag as a (data, data) erasure.
package rdp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// Code is an RDP code instance with k data strips over a (p-1) x (p+1)
// array (plus the Q strip).
type Code struct {
	k int
	p int

	obs *obs.Registry // optional metrics sink (see Instrument)
}

// New returns the RDP code with k data strips and prime parameter p.
// Requires p an odd prime and 1 <= k <= p-1.
func New(k, p int) (*Code, error) {
	if !core.IsPrime(p) || p == 2 {
		return nil, fmt.Errorf("%w: p=%d is not an odd prime", core.ErrParams, p)
	}
	if k < 1 || k > p-1 {
		return nil, fmt.Errorf("%w: need 1 <= k <= p-1, got k=%d p=%d", core.ErrParams, k, p)
	}
	return &Code{k: k, p: p}, nil
}

// NewAuto returns the RDP code with the smallest usable prime (p >= k+1,
// the paper's "p varying with k" configuration for RDP).
func NewAuto(k int) (*Code, error) {
	p := core.NextOddPrime(k + 1)
	return New(k, p)
}

func (c *Code) Name() string { return fmt.Sprintf("rdp(k=%d,p=%d)", c.k, c.p) }
func (c *Code) K() int       { return c.k }

// M returns 2: RDP is a RAID-6 (two-parity) code.
func (c *Code) M() int { return 2 }

// P returns the prime parameter.
func (c *Code) P() int { return c.p }

// W returns the column height, p-1 for RDP.
func (c *Code) W() int { return c.p - 1 }

// ElemwiseEncode marks the code for stripe-sharded encoding: Encode
// addresses the stripe only through Elem (see core.ElemwiseEncoder).
func (c *Code) ElemwiseEncode() {}

func (c *Code) mod(x int) int { return core.Mod(x, c.p) }

// mathStrip maps a math-array column (0..p-1) to a strip index, or -1 for
// phantom columns. Math column p-1 is the P strip.
func (c *Code) mathStrip(y int) int {
	switch {
	case y < c.k:
		return y
	case y == c.p-1:
		return c.k
	default:
		return -1
	}
}

// Encode computes P (row sums over data) and then Q (diagonal sums over
// data and P).
func (c *Code) Encode(s *core.Stripe, ops *core.Ops) error {
	return obs.Observed(c.obs, "rdp.encode", s.DataSize(), 2*(c.p-1), ops,
		func(o *core.Ops) error { return c.encode(s, o) })
}

func (c *Code) encode(s *core.Stripe, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.p-1); err != nil {
		return err
	}
	if err := c.encodeP(s, ops); err != nil {
		return err
	}
	return c.encodeQ(s, ops)
}

func (c *Code) encodeP(s *core.Stripe, ops *core.Ops) error {
	for i := 0; i < c.p-1; i++ {
		pe := s.Elem(c.k, i)
		ops.Copy(pe, s.Elem(0, i))
		j := 1
		for ; j+4 <= c.k; j += 4 {
			ops.XorInto4(pe, s.Elem(j, i), s.Elem(j+1, i), s.Elem(j+2, i), s.Elem(j+3, i))
		}
		switch c.k - j {
		case 3:
			ops.XorInto3(pe, s.Elem(j, i), s.Elem(j+1, i), s.Elem(j+2, i))
		case 2:
			ops.XorInto2(pe, s.Elem(j, i), s.Elem(j+1, i))
		case 1:
			ops.XorInto(pe, s.Elem(j, i))
		}
	}
	return nil
}

// encodeQ computes the diagonal parity from the data and P strips. The
// per-diagonal contributions are gathered into batches of four and run
// through the fused kernels, so qe crosses the cache once per four
// accumulations; the counted XORs are identical to the one-at-a-time
// loop.
func (c *Code) encodeQ(s *core.Stripe, ops *core.Ops) error {
	p, k := c.p, c.k
	for d := 0; d < p-1; d++ {
		qe := s.Elem(k+1, d)
		acc := false
		var buf [4][]byte
		nb := 0
		flush := func() {
			switch nb {
			case 4:
				ops.XorInto4(qe, buf[0], buf[1], buf[2], buf[3])
			case 3:
				ops.XorInto3(qe, buf[0], buf[1], buf[2])
			case 2:
				ops.XorInto2(qe, buf[0], buf[1])
			case 1:
				ops.XorInto(qe, buf[0])
			}
			nb = 0
		}
		add := func(col, row int) {
			if !acc {
				ops.Copy(qe, s.Elem(col, row))
				acc = true
				return
			}
			buf[nb] = s.Elem(col, row)
			nb++
			if nb == 4 {
				flush()
			}
		}
		for j := 0; j < k; j++ {
			if row := c.mod(d - j); row != p-1 {
				add(j, row)
			}
		}
		if row := c.mod(d + 1); row != p-1 {
			add(k, row) // the P-column cell of diagonal d
		}
		flush()
		if !acc {
			ops.Zero(qe)
		}
	}
	return nil
}
