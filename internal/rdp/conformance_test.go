package rdp_test

import (
	"testing"

	"repro/internal/codetest"
	"repro/internal/rdp"
)

func TestConformance(t *testing.T) {
	for _, sh := range [][2]int{{1, 3}, {3, 5}, {4, 5}, {6, 7}, {8, 11}} {
		c, err := rdp.New(sh[0], sh[1])
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name(), func(t *testing.T) { codetest.Run(t, c) })
	}
}
