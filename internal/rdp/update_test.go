package rdp

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestUpdateMatchesReencode(t *testing.T) {
	for _, sh := range [][2]int{{3, 5}, {4, 5}, {7, 11}} {
		k, p := sh[0], sh[1]
		c, _ := New(k, p)
		rng := rand.New(rand.NewSource(int64(k * p)))
		s := core.NewStripe(k, p-1, 16)
		s.FillRandom(rng)
		if err := c.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			col := rng.Intn(k)
			row := rng.Intn(p - 1)
			old := append([]byte(nil), s.Elem(col, row)...)
			rng.Read(s.Elem(col, row))
			if _, err := c.Update(s, col, row, old, nil); err != nil {
				t.Fatal(err)
			}
			want := s.Clone()
			if err := c.Encode(want, nil); err != nil {
				t.Fatal(err)
			}
			if !s.Equal(want) {
				t.Fatalf("k=%d p=%d trial %d: parities wrong after update", k, p, trial)
			}
		}
	}
}

func TestUpdateComplexityNearThree(t *testing.T) {
	// Table I: RDP update complexity ~3 (row parity + own diagonal + the
	// P cell's diagonal).
	k, p := 6, 7
	c, _ := New(k, p)
	s := core.NewStripe(k, p-1, 8)
	if err := c.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	total := 0
	for col := 0; col < k; col++ {
		for row := 0; row < p-1; row++ {
			old := append([]byte(nil), s.Elem(col, row)...)
			s.Elem(col, row)[0] ^= 0xff
			n, err := c.Update(s, col, row, old, nil)
			if err != nil {
				t.Fatal(err)
			}
			total += n
		}
	}
	avg := float64(total) / float64(k*(p-1))
	if avg < 2.5 || avg > 3.2 {
		t.Errorf("average update complexity %.3f, want ~3", avg)
	}
}
