package liberation

import (
	"strings"
	"testing"
)

func TestExplainEncodePaperExample(t *testing.T) {
	c, _ := New(5, 5)
	var sb strings.Builder
	c.ExplainEncode(&sb)
	out := sb.String()
	// The four common expressions of Section III-B, steps 1)-4): each pair
	// lands in its P row and is copied into its Q constraint.
	for _, want := range []string{
		"40 XORs",
		"P[0]      <- b[0][1] ^ b[0][2]",
		"P[1]      <- b[1][3] ^ b[1][4]",
		"P[2]      <- b[2][0] ^ b[2][1]",
		"P[3]      <- b[3][2] ^ b[3][3]",
		"Q[4]      <- P[0]",
		"Q[3]      <- P[1]",
		"Q[2]      <- P[2]",
		"Q[1]      <- P[3]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encode explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainDecode(t *testing.T) {
	c, _ := New(5, 5)
	var sb strings.Builder
	if err := c.ExplainDecode(&sb, 3, 1); err != nil { // order-insensitive
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "columns 1 and 3") || !strings.Contains(out, "41 XORs") {
		t.Errorf("decode explanation header wrong:\n%s", out)
	}
	if err := c.ExplainDecode(&sb, 2, 2); err == nil {
		t.Error("accepted identical columns")
	}
	if err := c.ExplainDecode(&sb, 0, 9); err == nil {
		t.Error("accepted out-of-range column")
	}
}
