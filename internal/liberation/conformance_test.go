package liberation_test

import (
	"testing"

	"repro/internal/codetest"
	"repro/internal/liberation"
)

func TestConformance(t *testing.T) {
	for _, sh := range [][2]int{{1, 3}, {2, 3}, {4, 5}, {7, 7}, {6, 11}, {13, 13}} {
		c, err := liberation.New(sh[0], sh[1])
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name(), func(t *testing.T) { codetest.Run(t, c) })
	}
}

func TestConformanceOriginal(t *testing.T) {
	for _, sh := range [][2]int{{2, 3}, {4, 5}, {7, 7}} {
		c, err := liberation.NewOriginal(sh[0], sh[1])
		if err != nil {
			t.Fatal(err)
		}
		c.CacheDecodeSchedules = true
		t.Run(c.Name(), func(t *testing.T) { codetest.Run(t, c) })
	}
}
