package liberation_test

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/liberation"
)

// Encode a stripe, lose two data strips, decode them back.
func Example() {
	code, _ := liberation.NewAuto(4) // 4 data disks -> p = 5
	stripe := core.NewStripe(code.K(), code.W(), 8)
	copy(stripe.Strips[0], []byte("the liberation codes are"))
	copy(stripe.Strips[1], []byte("xor-based mds array code"))
	copy(stripe.Strips[2], []byte("with optimal update cost"))
	copy(stripe.Strips[3], []byte("for raid-6 disk arrays!!"))

	var ops core.Ops
	_ = code.Encode(stripe, &ops)
	fmt.Printf("encoded with %d XORs (bound %d)\n", ops.XORs, code.EncodeXORs())

	stripe.ZeroStrip(0)
	stripe.ZeroStrip(2)
	_ = code.Decode(stripe, []int{0, 2}, nil)
	fmt.Printf("%s\n", stripe.Strips[0][:24])
	fmt.Printf("%s\n", stripe.Strips[2][:24])
	// Output:
	// encoded with 30 XORs (bound 30)
	// the liberation codes are
	// with optimal update cost
}

// Small writes touch exactly two parity elements (three for the one
// extra element per column).
func ExampleCode_Update() {
	code, _ := liberation.New(4, 5)
	stripe := core.NewStripe(4, 5, 8)
	_ = code.Encode(stripe, nil)

	old := append([]byte(nil), stripe.Elem(2, 1)...)
	copy(stripe.Elem(2, 1), []byte("newdata!"))
	touched, _ := code.Update(stripe, 2, 1, old, nil)
	ok, _ := code.Verify(stripe)
	fmt.Printf("parity elements updated: %d, stripe consistent: %v\n", touched, ok)
	// Output: parity elements updated: 2, stripe consistent: true
}

// Silent corruption is located by column and repaired.
func ExampleCode_CorrectColumn() {
	code, _ := liberation.New(4, 5)
	stripe := core.NewStripe(4, 5, 8)
	copy(stripe.Strips[1], []byte("important data on disk 1"))
	_ = code.Encode(stripe, nil)

	stripe.Strips[1][3] ^= 0xff // bit rot, unreported by the disk
	fixed, _ := code.CorrectColumn(stripe, nil)
	fmt.Printf("repaired strip %d: %s\n", fixed, stripe.Strips[1][:24])
	// Output: repaired strip 1: important data on disk 1
}

// The compiled Algorithm 1 plan, in the paper's notation, for the
// smallest Liberation code.
func ExampleCode_ExplainEncode() {
	code, _ := liberation.New(2, 3)
	code.ExplainEncode(os.Stdout)
	// Output:
	// Optimal encoding, k=2 p=3 (6 XORs = 2p(k-1), the lower bound):
	//   1) P[1]      <- b[1][0] ^ b[1][1]
	//   2) Q[1]      <- P[1]
	//   3) Q[0]      <- b[0][0] ^ b[1][1]
	//   4) Q[1]      <- Q[1] ^ b[2][1]
	//   5) Q[2]      <- b[2][0] ^ b[0][1]
	//   6) P[0]      <- b[0][0] ^ b[0][1]
	//   7) P[2]      <- b[2][0] ^ b[2][1]
}
