package liberation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// testShapes enumerates the (k, p) combinations the unit tests sweep.
func testShapes() [][2]int {
	var shapes [][2]int
	for _, p := range []int{3, 5, 7, 11, 13} {
		for k := 1; k <= p; k++ {
			shapes = append(shapes, [2]int{k, p})
		}
	}
	// A few fixed-p=17 shapes to cover k << p.
	shapes = append(shapes, [2]int{2, 17}, [2]int{5, 17}, [2]int{16, 17})
	return shapes
}

func randStripe(t *testing.T, k, p, elem int, seed int64) *core.Stripe {
	t.Helper()
	s := core.NewStripe(k, p, elem)
	s.FillRandom(rand.New(rand.NewSource(seed)))
	return s
}

func TestEncodeMatchesNaive(t *testing.T) {
	for _, sh := range testShapes() {
		k, p := sh[0], sh[1]
		c, err := New(k, p)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", k, p, err)
		}
		s := randStripe(t, k, p, 16, int64(k*1000+p))
		want := s.Clone()
		if err := c.EncodeNaive(want, nil); err != nil {
			t.Fatalf("naive: %v", err)
		}
		if err := c.Encode(s, nil); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if !s.Equal(want) {
			t.Errorf("k=%d p=%d: optimal encode disagrees with naive encode", k, p)
		}
	}
}

func TestEncodeXORCount(t *testing.T) {
	for _, sh := range testShapes() {
		k, p := sh[0], sh[1]
		c, _ := New(k, p)
		s := randStripe(t, k, p, 8, 42)
		var ops core.Ops
		if err := c.Encode(s, &ops); err != nil {
			t.Fatal(err)
		}
		want := uint64(2 * p * (k - 1))
		if ops.XORs != want {
			t.Errorf("k=%d p=%d: encode used %d XORs, want %d (the lower bound)",
				k, p, ops.XORs, want)
		}
		if got := c.EncodeXORs(); got != int(want) {
			t.Errorf("EncodeXORs()=%d, want %d", got, want)
		}
	}
}

func TestOriginalEncodeMatchesNaive(t *testing.T) {
	for _, sh := range testShapes() {
		k, p := sh[0], sh[1]
		c, _ := New(k, p)
		orig, err := NewOriginal(k, p)
		if err != nil {
			t.Fatalf("NewOriginal(%d,%d): %v", k, p, err)
		}
		s := randStripe(t, k, p, 16, int64(k*77+p))
		want := s.Clone()
		if err := c.EncodeNaive(want, nil); err != nil {
			t.Fatal(err)
		}
		if err := orig.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		if !s.Equal(want) {
			t.Errorf("k=%d p=%d: bitmatrix encode disagrees with naive encode", k, p)
		}
	}
}

func TestOriginalEncodeXORCount(t *testing.T) {
	// Original (dumb bit-matrix) encoding costs 2p(k-1) + (k-1) XORs, the
	// k-1 + (k-1)/2p per-parity-bit figure from Table I.
	for _, sh := range testShapes() {
		k, p := sh[0], sh[1]
		orig, _ := NewOriginal(k, p)
		want := 2*p*(k-1) + (k - 1)
		if got := orig.EncodeXORs(); got != want {
			t.Errorf("k=%d p=%d: original encode %d XORs, want %d", k, p, got, want)
		}
	}
}

func TestGeneratorIsMDS(t *testing.T) {
	for _, sh := range testShapes() {
		k, p := sh[0], sh[1]
		if p > 11 {
			continue // keep the O(p^6) inversion sweep fast
		}
		orig, _ := NewOriginal(k, p)
		if err := orig.CheckMDS(); err != nil {
			t.Errorf("k=%d p=%d: generator not MDS: %v", k, p, err)
		}
	}
}

func TestDecodeAllPatterns(t *testing.T) {
	for _, sh := range testShapes() {
		k, p := sh[0], sh[1]
		c, _ := New(k, p)
		orig := randStripe(t, k, p, 16, int64(k*31+p*7))
		if err := c.Encode(orig, nil); err != nil {
			t.Fatal(err)
		}
		patterns := core.ErasurePairs(k + 2)
		for e := 0; e < k+2; e++ {
			patterns = append(patterns, [2]int{e, e}) // single-erasure cases
		}
		for _, pat := range patterns {
			s := orig.Clone()
			erased := []int{pat[0], pat[1]}
			if pat[0] == pat[1] {
				erased = erased[:1]
			}
			for _, e := range erased {
				rand.New(rand.NewSource(99)).Read(s.Strips[e]) // scribble
			}
			if err := c.Decode(s, erased, nil); err != nil {
				t.Fatalf("k=%d p=%d erased=%v: %v", k, p, erased, err)
			}
			if !s.Equal(orig) {
				t.Errorf("k=%d p=%d erased=%v: decode did not restore the stripe",
					k, p, erased)
			}
		}
	}
}

func TestOriginalDecodeAllPatterns(t *testing.T) {
	for _, sh := range testShapes() {
		k, p := sh[0], sh[1]
		if p > 11 {
			continue
		}
		oc, _ := NewOriginal(k, p)
		oc.CacheDecodeSchedules = true
		orig := randStripe(t, k, p, 16, int64(k*13+p*5))
		if err := oc.Encode(orig, nil); err != nil {
			t.Fatal(err)
		}
		for _, pat := range core.ErasurePairs(k + 2) {
			s := orig.Clone()
			rand.New(rand.NewSource(7)).Read(s.Strips[pat[0]])
			rand.New(rand.NewSource(8)).Read(s.Strips[pat[1]])
			if err := oc.Decode(s, pat[:], nil); err != nil {
				t.Fatalf("k=%d p=%d erased=%v: %v", k, p, pat, err)
			}
			if !s.Equal(orig) {
				t.Errorf("k=%d p=%d erased=%v: bitmatrix decode failed", k, p, pat)
			}
		}
	}
}

func TestPaperExampleXORCounts(t *testing.T) {
	// Section III-B: the p=5 (k=5) encoding uses 40 XORs, 4 per parity
	// bit, the lower bound.
	c, _ := New(5, 5)
	s := randStripe(t, 5, 5, 8, 1)
	var ops core.Ops
	if err := c.Encode(s, &ops); err != nil {
		t.Fatal(err)
	}
	if ops.XORs != 40 {
		t.Errorf("p=5 encode XORs = %d, want 40", ops.XORs)
	}
	// Section III-C decodes columns 1 and 3. The paper counts 39 XORs,
	// but its example syndrome equations drop two known terms (b[2][4]
	// from S^Q_3 and b[1][2] from S^Q_4) that its own Algorithm 3
	// includes; the self-consistent count is 41 (1.025x the 40-XOR lower
	// bound, matching the paper's stated 0-2.5% band). See EXPERIMENTS.md.
	n, err := c.DecodeXORs([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if n != 41 {
		t.Errorf("p=5 decode(1,3) XORs = %d, want 41", n)
	}
}

func TestDecodeComplexityNearOptimal(t *testing.T) {
	// Figures 7/8: averaged over all the possible erasure patterns (as the
	// paper does), the optimal decoder stays within a few percent of the
	// k-1 lower bound. Data-data patterns alone carry the extra cost of
	// summing the starting-point constraint sets (Algorithm 2), so their
	// average is allowed a slightly looser band.
	for _, sh := range testShapes() {
		k, p := sh[0], sh[1]
		if k < 3 {
			continue
		}
		c, _ := New(k, p)
		bound := float64(2 * p * (k - 1))
		dataTotal, dataCnt := 0, 0
		allTotal, allCnt := 0, 0
		for _, pat := range core.ErasurePairs(k + 2) {
			n, err := c.DecodeXORs(pat[:])
			if err != nil {
				t.Fatal(err)
			}
			allTotal += n
			allCnt++
			if pat[1] < k {
				dataTotal += n
				dataCnt++
			}
		}
		dataNorm := float64(dataTotal) / float64(dataCnt) / bound
		allNorm := float64(allTotal) / float64(allCnt) / bound
		// Expected structure of the overhead: data-data patterns pay the
		// starting-point sum (averaging ~p/4 XORs, i.e. 1/(8(k-1))
		// normalized), parity patterns pay the lone-Q recomputation
		// (~(k-1) XORs, i.e. 1/(2p) normalized).
		band := 1.02 + 1.0/(8.0*float64(k-1)) + 0.5/float64(p)
		if allNorm > band {
			t.Errorf("k=%d p=%d: all-pattern decode complexity %.4f exceeds %.4f",
				k, p, allNorm, band)
		}
		if dataNorm > band {
			t.Errorf("k=%d p=%d: data-data decode complexity %.4f exceeds %.4f",
				k, p, dataNorm, band)
		}
		if allNorm < 0.90 {
			t.Errorf("k=%d p=%d: decode complexity %.4f suspiciously low", k, p, allNorm)
		}
	}
}

func TestStartingPointAlgorithm(t *testing.T) {
	// The paper's worked example: p=5, columns 1 and 3 erased. Algorithm 2
	// fails in the (l=1, r=3) orientation and, after swapping, yields
	// starting point b[3][1] = S^P_0 ^ S^P_2 ^ S^Q_2 ^ S^Q_4.
	c, _ := New(5, 5)
	_, _, x := c.startingPoint(1, 3)
	if x != -1 {
		t.Fatalf("startingPoint(1,3) = %d, want -1 (swap required)", x)
	}
	sp, sq, x := c.startingPoint(3, 1)
	if x != 3 {
		t.Fatalf("startingPoint(3,1) x = %d, want 3", x)
	}
	wantSP := map[int]bool{0: true, 2: true}
	wantSQ := map[int]bool{2: true, 4: true}
	if len(sp) != 2 || !wantSP[sp[0]] || !wantSP[sp[1]] {
		t.Errorf("S^P = %v, want {0,2}", sp)
	}
	if len(sq) != 2 || !wantSQ[sq[0]] || !wantSQ[sq[1]] {
		t.Errorf("S^Q = %v, want {2,4}", sq)
	}
}

func TestGeometry(t *testing.T) {
	// Figure 2 (p=5): extra bits sit at (<-i-1>, <-2i>) and the common
	// expressions pair adjacent columns on specific rows.
	c, _ := New(5, 5)
	wantExtra := map[int][2]int{ // constraint i -> (row, col)
		1: {3, 3}, 2: {2, 1}, 3: {1, 4}, 4: {0, 2},
	}
	for i, rc := range wantExtra {
		col := core.Mod(-2*i, 5)
		row := core.Mod(-i-1, 5)
		if row != rc[0] || col != rc[1] {
			t.Errorf("extra bit of Q[%d] at (%d,%d), want (%d,%d)", i, row, col, rc[0], rc[1])
		}
		if c.extraConstraint(col) != i || c.extraRow(col) != row {
			t.Errorf("extraConstraint/extraRow inconsistent for col %d", col)
		}
	}
	// Pairs: (b[2][0],b[2][1]) for row "3"/diag C(=2), (b[0][1],b[0][2])
	// for "1"/E(=4), (b[3][2],b[3][3]) for "4"/B(=1), (b[1][3],b[1][4])
	// for "2"/D(=3).
	wantPairs := map[int][2]int{ // pair j -> (row, constraint)
		1: {2, 2}, 2: {0, 4}, 3: {3, 1}, 4: {1, 3},
	}
	for j, rc := range wantPairs {
		if c.pairRow(j) != rc[0] || c.pairConstraint(j) != rc[1] {
			t.Errorf("pair %d: (row,constraint) = (%d,%d), want (%d,%d)",
				j, c.pairRow(j), c.pairConstraint(j), rc[0], rc[1])
		}
	}
}

func TestDecodeManySeeds(t *testing.T) {
	// Re-run the full erasure sweep for several data seeds on a couple of
	// shapes to guard against coincidental cancellation.
	for seed := int64(0); seed < 5; seed++ {
		for _, sh := range [][2]int{{7, 7}, {5, 11}, {11, 11}} {
			k, p := sh[0], sh[1]
			c, _ := New(k, p)
			orig := randStripe(t, k, p, 8, seed)
			if err := c.Encode(orig, nil); err != nil {
				t.Fatal(err)
			}
			for _, pat := range core.ErasurePairs(k + 2) {
				s := orig.Clone()
				if err := c.Decode(s, pat[:], nil); err != nil {
					t.Fatalf("k=%d p=%d erased=%v seed=%d: %v", k, p, pat, seed, err)
				}
				if !s.Equal(orig) {
					t.Errorf("k=%d p=%d erased=%v seed=%d: wrong reconstruction",
						k, p, pat, seed)
				}
			}
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	cases := [][2]int{{3, 4}, {3, 2}, {5, 9}, {0, 5}, {6, 5}, {-1, 7}}
	for _, kp := range cases {
		if _, err := New(kp[0], kp[1]); err == nil {
			t.Errorf("New(%d,%d) succeeded, want error", kp[0], kp[1])
		}
	}
	for _, k := range []int{1, 2, 3, 10, 23} {
		c, err := NewAuto(k)
		if err != nil {
			t.Fatalf("NewAuto(%d): %v", k, err)
		}
		if c.P() < k || !core.IsPrime(c.P()) {
			t.Errorf("NewAuto(%d) chose p=%d", k, c.P())
		}
	}
}

func ExampleCode_Encode() {
	c, _ := New(4, 5)
	s := core.NewStripe(4, 5, 8)
	s.FillRandom(rand.New(rand.NewSource(1)))
	var ops core.Ops
	_ = c.Encode(s, &ops)
	fmt.Println(ops.XORs == uint64(c.EncodeXORs()))
	// Output: true
}
