package liberation

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/xorblk"
)

// TestEncodeLinearity: XOR codes are linear — encode(a ^ b) must equal
// encode(a) ^ encode(b) strip-wise. Checked by testing/quick over random
// data and shapes.
func TestEncodeLinearity(t *testing.T) {
	shapes := [][2]int{{2, 3}, {4, 5}, {5, 7}, {7, 11}}
	if err := quick.Check(func(seedA, seedB int64, shapeIdx uint8) bool {
		sh := shapes[int(shapeIdx)%len(shapes)]
		k, p := sh[0], sh[1]
		c, err := New(k, p)
		if err != nil {
			return false
		}
		a := core.NewStripe(k, p, 8)
		b := core.NewStripe(k, p, 8)
		a.FillRandom(rand.New(rand.NewSource(seedA)))
		b.FillRandom(rand.New(rand.NewSource(seedB)))
		sum := core.NewStripe(k, p, 8)
		for col := 0; col < k; col++ {
			xorblk.Xor(sum.Strips[col], a.Strips[col], b.Strips[col])
		}
		if c.Encode(a, nil) != nil || c.Encode(b, nil) != nil || c.Encode(sum, nil) != nil {
			return false
		}
		for col := k; col < k+2; col++ {
			want := make([]byte, len(sum.Strips[col]))
			xorblk.Xor(want, a.Strips[col], b.Strips[col])
			if string(want) != string(sum.Strips[col]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestZeroDataZeroParity: the all-zero codeword. Phantom-column logic
// must not leak garbage into parities.
func TestZeroDataZeroParity(t *testing.T) {
	for _, sh := range [][2]int{{1, 3}, {2, 3}, {3, 7}, {6, 13}} {
		c, _ := New(sh[0], sh[1])
		s := core.NewStripe(sh[0], sh[1], 16)
		// Scribble parity strips first: encode must fully overwrite them.
		rand.New(rand.NewSource(1)).Read(s.Strips[sh[0]])
		rand.New(rand.NewSource(2)).Read(s.Strips[sh[0]+1])
		if err := c.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		if !xorblk.IsZero(s.Strips[sh[0]]) || !xorblk.IsZero(s.Strips[sh[0]+1]) {
			t.Errorf("k=%d p=%d: zero data produced nonzero parity", sh[0], sh[1])
		}
	}
}

// TestDecodeRandomizedQuick: random shapes, random erasures, random data —
// decode must restore the stripe.
func TestDecodeRandomizedQuick(t *testing.T) {
	if err := quick.Check(func(seed int64, kRaw, pIdx, e1Raw, e2Raw uint8) bool {
		primes := []int{3, 5, 7, 11, 13, 17}
		p := primes[int(pIdx)%len(primes)]
		k := 2 + int(kRaw)%(p-1) // 2..p
		c, err := New(k, p)
		if err != nil {
			return false
		}
		s := core.NewStripe(k, p, 8)
		s.FillRandom(rand.New(rand.NewSource(seed)))
		if err := c.Encode(s, nil); err != nil {
			return false
		}
		orig := s.Clone()
		e1 := int(e1Raw) % (k + 2)
		e2 := int(e2Raw) % (k + 2)
		erased := []int{e1}
		if e2 != e1 {
			erased = append(erased, e2)
		}
		for _, e := range erased {
			rand.New(rand.NewSource(seed + 1)).Read(s.Strips[e])
		}
		if err := c.Decode(s, erased, nil); err != nil {
			return false
		}
		return s.Equal(orig)
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentEncodeDecode: a single Code value must be safe for
// concurrent use (the compiled plans are built exactly once).
func TestConcurrentEncodeDecode(t *testing.T) {
	c, _ := New(7, 7)
	ref := core.NewStripe(7, 7, 32)
	ref.FillRandom(rand.New(rand.NewSource(3)))
	if err := c.EncodeNaive(ref, nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := ref.Clone()
			if g%2 == 0 {
				if err := c.Encode(s, nil); err != nil {
					errs <- err
					return
				}
			} else {
				l, r := g%7, (g+3)%7
				if l == r {
					r = (r + 1) % 7
				}
				if l > r {
					l, r = r, l
				}
				if err := c.Decode(s, []int{l, r}, nil); err != nil {
					errs <- err
					return
				}
			}
			if !s.Equal(ref) {
				errs <- errMismatch
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent operation corrupted the stripe" }
