package liberation

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/xorblk"
)

// correctColumnOracle is the original clone-based CorrectColumn
// implementation, kept verbatim as the test oracle for the streamed
// rewrite: it re-encodes a full shadow copy of the stripe and diffs the
// parities. Slow and allocation-heavy, but independently derived from the
// defining equations via encodeFull.
func (c *Code) correctColumnOracle(s *core.Stripe, ops *core.Ops) (int, error) {
	if err := s.CheckShape(c.k, 2, c.p); err != nil {
		return 0, err
	}
	p, k := c.p, c.k
	elemSize := s.ElemSize

	expect := s.Clone()
	if err := c.encodeFull(expect, ops); err != nil {
		return 0, err
	}
	dP := make([][]byte, p)
	dQ := make([][]byte, p)
	backing := make([]byte, 2*p*elemSize)
	zeroP, zeroQ := true, true
	for i := 0; i < p; i++ {
		dP[i], backing = backing[:elemSize:elemSize], backing[elemSize:]
		dQ[i], backing = backing[:elemSize:elemSize], backing[elemSize:]
		ops.Xor(dP[i], s.Elem(k, i), expect.Elem(k, i))
		ops.Xor(dQ[i], s.Elem(k+1, i), expect.Elem(k+1, i))
		zeroP = zeroP && xorblk.IsZero(dP[i])
		zeroQ = zeroQ && xorblk.IsZero(dQ[i])
	}
	switch {
	case zeroP && zeroQ:
		return CleanColumn, nil
	case !zeroP && zeroQ:
		ops.Copy(s.Strips[k], expect.Strips[k])
		return k, nil
	case zeroP && !zeroQ:
		ops.Copy(s.Strips[k+1], expect.Strips[k+1])
		return k + 1, nil
	}

	pred := make([]byte, p*elemSize)
	diff := make([]byte, elemSize)
	candidate := CleanColumn
	for col := 0; col < k; col++ {
		for i := range pred {
			pred[i] = 0
		}
		predRow := func(q int) []byte { return pred[q*elemSize : (q+1)*elemSize] }
		for i := 0; i < p; i++ {
			if xorblk.IsZero(dP[i]) {
				continue
			}
			ops.XorInto(predRow(c.mod(i-col)), dP[i])
			if col >= 1 && i == c.extraRow(col) {
				ops.XorInto(predRow(c.extraConstraint(col)), dP[i])
			}
		}
		match := true
		for q := 0; q < p && match; q++ {
			xorblk.Xor(diff, predRow(q), dQ[q])
			match = xorblk.IsZero(diff)
		}
		if match {
			if candidate != CleanColumn {
				return 0, ErrAmbiguousCorruption
			}
			candidate = col
		}
	}
	if candidate == CleanColumn {
		return 0, ErrAmbiguousCorruption
	}
	for i := 0; i < p; i++ {
		ops.XorInto(s.Elem(candidate, i), dP[i])
	}
	return candidate, nil
}

// liberationShapes mirrors the liberation entry of codes.TestShapes with
// the auto-prime entry resolved ({4, 0} -> p = 5); the codes package
// cannot be imported here without a cycle, and TestShapesMirrorsRegistry
// in the codes package keeps this copy honest.
func liberationShapes(t *testing.T) [][2]int {
	t.Helper()
	return [][2]int{{3, 5}, {5, 5}, {6, 7}, {8, 11}, {4, 5}}
}

// TestCorrectColumnMatchesOracle drives the streamed CorrectColumn and
// the clone-based oracle through the clean case and every single-column
// corruption (every column, single- and multi-element error patterns) on
// every registry test shape, and requires identical verdicts and
// identical repaired stripes.
func TestCorrectColumnMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, kp := range liberationShapes(t) {
		k, p := kp[0], kp[1]
		c, err := New(k, p)
		if err != nil {
			t.Fatal(err)
		}
		elem := 16
		base := core.NewStripe(k, p, elem)
		base.FillRandom(rng)
		if err := c.Encode(base, nil); err != nil {
			t.Fatal(err)
		}

		check := func(name string, corrupt func(*core.Stripe)) {
			t.Helper()
			a := base.Clone()
			b := base.Clone()
			corrupt(a)
			corrupt(b)
			colA, errA := c.CorrectColumn(a, nil)
			colB, errB := c.correctColumnOracle(b, nil)
			if (errA == nil) != (errB == nil) || colA != colB {
				t.Fatalf("k=%d p=%d %s: streamed (col=%d err=%v) vs oracle (col=%d err=%v)",
					k, p, name, colA, errA, colB, errB)
			}
			if errA == nil && !a.Equal(b) {
				t.Fatalf("k=%d p=%d %s: repaired stripes diverge", k, p, name)
			}
			if errA == nil && colA != CleanColumn && !a.Equal(base) {
				t.Fatalf("k=%d p=%d %s: repair did not restore the stripe", k, p, name)
			}
		}

		check("clean", func(*core.Stripe) {})
		for col := 0; col < k+2; col++ {
			col := col
			check("single-elem", func(s *core.Stripe) {
				s.Elem(col, rng.Intn(p))[rng.Intn(elem)] ^= byte(1 + rng.Intn(255))
			})
			check("multi-elem", func(s *core.Stripe) {
				for n := 0; n < 3; n++ {
					s.Elem(col, rng.Intn(p))[rng.Intn(elem)] ^= byte(1 + rng.Intn(255))
				}
			})
			check("whole-strip", func(s *core.Stripe) {
				rng.Read(s.Strips[col])
			})
		}
		// Corruption across two columns must be rejected by both.
		if k >= 2 {
			check("two-column", func(s *core.Stripe) {
				s.Elem(0, 0)[0] ^= 0x01
				s.Elem(1, 1)[0] ^= 0x80
			})
		}
	}
}

// TestCorrectColumnRandomizedAgainstOracle is the property test: random
// shapes, random element sizes (including non-word sizes), random
// corruption (possibly none, possibly spanning columns), streamed and
// oracle must agree exactly.
func TestCorrectColumnRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	primes := []int{5, 7, 11, 13}
	for trial := 0; trial < 300; trial++ {
		p := primes[rng.Intn(len(primes))]
		k := 1 + rng.Intn(p)
		elem := []int{1, 7, 16, 31}[rng.Intn(4)]
		c, err := New(k, p)
		if err != nil {
			t.Fatal(err)
		}
		s := core.NewStripe(k, p, elem)
		s.FillRandom(rng)
		if err := c.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		// 0, 1 or 2 corrupted columns with 1..3 flipped elements each.
		ncols := rng.Intn(3)
		cols := rng.Perm(k + 2)[:ncols]
		for _, col := range cols {
			for n := 1 + rng.Intn(3); n > 0; n-- {
				s.Elem(col, rng.Intn(p))[rng.Intn(elem)] ^= byte(1 + rng.Intn(255))
			}
		}
		a, b := s.Clone(), s.Clone()
		colA, errA := c.CorrectColumn(a, nil)
		colB, errB := c.correctColumnOracle(b, nil)
		if (errA == nil) != (errB == nil) || colA != colB {
			t.Fatalf("trial %d (k=%d p=%d elem=%d cols=%v): streamed (col=%d err=%v) vs oracle (col=%d err=%v)",
				trial, k, p, elem, cols, colA, errA, colB, errB)
		}
		if errA == nil && !a.Equal(b) {
			t.Fatalf("trial %d (k=%d p=%d elem=%d cols=%v): repaired stripes diverge",
				trial, k, p, elem, cols)
		}
	}
}

// TestCorrectColumnZeroAllocs pins the steady-state allocation contract:
// after the pooled scratch exists, neither the clean-verify scrub pass
// nor a locate-and-repair cycle may allocate.
func TestCorrectColumnZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is meaningless under -race: the instrumentation allocates and sync.Pool sheds items")
	}
	c, err := New(8, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStripe(8, 11, 1024)
	s.FillRandom(rand.New(rand.NewSource(79)))
	if err := c.Encode(s, nil); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		if col, err := c.CorrectColumn(s, nil); err != nil || col != CleanColumn {
			t.Fatalf("clean verify: col=%d err=%v", col, err)
		}
	}); allocs != 0 {
		t.Errorf("clean verify allocates %.1f/op, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		s.Elem(1, 0)[0] ^= 0xff
		if col, err := c.CorrectColumn(s, nil); err != nil || col != 1 {
			t.Fatalf("repair: col=%d err=%v", col, err)
		}
	}); allocs != 0 {
		t.Errorf("locate+repair allocates %.1f/op, want 0", allocs)
	}
}

// TestCorrectColumnXORCount pins the re-derived cost of the streamed
// correction at the gate shape (k=8, p=11): 183 syndrome XORs for a clean
// verify — p·k for dP plus p·k plus the 7 in-array extra bits for dQ —
// and 193 for the gate's single-element repair (9 locate + 1 repair on
// top of the syndromes). The bench gate pins the same number end to end;
// this test keeps the derivation readable next to the implementation.
func TestCorrectColumnXORCount(t *testing.T) {
	c, err := New(8, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStripe(8, 11, 64)
	s.FillRandom(rand.New(rand.NewSource(80)))
	if err := c.Encode(s, nil); err != nil {
		t.Fatal(err)
	}

	var ops core.Ops
	if col, err := c.CorrectColumn(s, &ops); err != nil || col != CleanColumn {
		t.Fatalf("clean: col=%d err=%v", col, err)
	}
	if want := uint64(183); ops.XORs != want {
		t.Errorf("clean verify XORs = %d, want %d", ops.XORs, want)
	}

	ops.Reset()
	s.Elem(1, 0)[0] ^= 0xff
	if col, err := c.CorrectColumn(s, &ops); err != nil || col != 1 {
		t.Fatalf("repair: col=%d err=%v", col, err)
	}
	if want := uint64(193); ops.XORs != want {
		t.Errorf("locate+repair XORs = %d, want %d", ops.XORs, want)
	}
}
