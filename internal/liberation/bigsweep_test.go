package liberation

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestDecodeBigPrimes runs the full erasure sweep at the largest primes
// the paper's fixed-p configuration uses (p = 23, 29, 31). Skipped in
// -short mode.
func TestDecodeBigPrimes(t *testing.T) {
	if testing.Short() {
		t.Skip("big-prime sweep skipped in -short mode")
	}
	for _, sh := range [][2]int{{23, 23}, {10, 23}, {29, 29}, {23, 31}, {4, 31}} {
		k, p := sh[0], sh[1]
		c, err := New(k, p)
		if err != nil {
			t.Fatal(err)
		}
		orig := core.NewStripe(k, p, 8)
		orig.FillRandom(rand.New(rand.NewSource(int64(k + p))))
		if err := c.Encode(orig, nil); err != nil {
			t.Fatal(err)
		}
		var ops core.Ops
		s := orig.Clone()
		if err := c.Encode(s, &ops); err != nil {
			t.Fatal(err)
		}
		if ops.XORs != uint64(2*p*(k-1)) {
			t.Errorf("k=%d p=%d: encode XORs %d != bound %d", k, p, ops.XORs, 2*p*(k-1))
		}
		for _, pat := range core.ErasurePairs(k + 2) {
			s := orig.Clone()
			rand.New(rand.NewSource(1)).Read(s.Strips[pat[0]])
			rand.New(rand.NewSource(2)).Read(s.Strips[pat[1]])
			if err := c.Decode(s, pat[:], nil); err != nil {
				t.Fatalf("k=%d p=%d erased=%v: %v", k, p, pat, err)
			}
			if !s.Equal(orig) {
				t.Errorf("k=%d p=%d erased=%v: wrong reconstruction", k, p, pat)
			}
		}
	}
}

// TestCorrectColumnBigPrime exercises the scrubber at p=29 for every
// strip. Skipped in -short mode.
func TestCorrectColumnBigPrime(t *testing.T) {
	if testing.Short() {
		t.Skip("big-prime scrub sweep skipped in -short mode")
	}
	c, _ := New(20, 29)
	clean := core.NewStripe(20, 29, 8)
	clean.FillRandom(rand.New(rand.NewSource(77)))
	if err := c.Encode(clean, nil); err != nil {
		t.Fatal(err)
	}
	for col := 0; col < 22; col++ {
		s := clean.Clone()
		s.Strips[col][13] ^= 0x77
		got, err := c.CorrectColumn(s, nil)
		if err != nil {
			t.Fatalf("col %d: %v", col, err)
		}
		if got != col || !s.Equal(clean) {
			t.Errorf("col %d: repaired %d", col, got)
		}
	}
}
