package liberation

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestUpdateMatchesReencode(t *testing.T) {
	for _, sh := range [][2]int{{3, 5}, {5, 5}, {7, 11}, {4, 13}} {
		k, p := sh[0], sh[1]
		c, _ := New(k, p)
		rng := rand.New(rand.NewSource(int64(k + p)))
		s := core.NewStripe(k, p, 16)
		s.FillRandom(rng)
		if err := c.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			col := rng.Intn(k)
			row := rng.Intn(p)
			old := append([]byte(nil), s.Elem(col, row)...)
			rng.Read(s.Elem(col, row))
			if _, err := c.Update(s, col, row, old, nil); err != nil {
				t.Fatal(err)
			}
			if ok, err := c.Verify(s); err != nil || !ok {
				t.Fatalf("k=%d p=%d trial %d: parities wrong after update (err=%v)",
					k, p, trial, err)
			}
		}
	}
}

func TestUpdateComplexityAttainsBound(t *testing.T) {
	// Every element updates exactly 2 parity elements except the k-1
	// extra elements (one per column j >= 1), which update 3: total
	// memberships 2kp + (k-1).
	k, p := 7, 7
	c, _ := New(k, p)
	s := core.NewStripe(k, p, 8)
	if err := c.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	total := 0
	for col := 0; col < k; col++ {
		for row := 0; row < p; row++ {
			old := append([]byte(nil), s.Elem(col, row)...)
			s.Elem(col, row)[0] ^= 0xff
			n, err := c.Update(s, col, row, old, nil)
			if err != nil {
				t.Fatal(err)
			}
			if n != 2 && n != 3 {
				t.Fatalf("update at (%d,%d) touched %d parities", col, row, n)
			}
			total += n
		}
	}
	if want := 2*k*p + (k - 1); total != want {
		t.Errorf("total parity updates %d, want %d", total, want)
	}
}

func TestUpdateNoChange(t *testing.T) {
	c, _ := New(3, 5)
	s := core.NewStripe(3, 5, 8)
	if err := c.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	old := append([]byte(nil), s.Elem(1, 2)...)
	n, err := c.Update(s, 1, 2, old, nil)
	if err != nil || n != 0 {
		t.Errorf("no-op update touched %d parities (err=%v)", n, err)
	}
	if _, err := c.Update(s, 5, 0, old, nil); err == nil {
		t.Error("accepted out-of-range column")
	}
	if _, err := c.Update(s, 0, 0, old[:4], nil); err == nil {
		t.Error("accepted wrong-size old element")
	}
}

func TestCorrectColumn(t *testing.T) {
	for _, sh := range [][2]int{{3, 5}, {5, 5}, {7, 7}, {5, 11}} {
		k, p := sh[0], sh[1]
		c, _ := New(k, p)
		rng := rand.New(rand.NewSource(int64(7*k + p)))
		clean := core.NewStripe(k, p, 16)
		clean.FillRandom(rng)
		if err := c.Encode(clean, nil); err != nil {
			t.Fatal(err)
		}
		// Clean stripe: nothing to fix.
		s := clean.Clone()
		got, err := c.CorrectColumn(s, nil)
		if err != nil || got != CleanColumn {
			t.Fatalf("clean stripe: got %d, %v", got, err)
		}
		// Corrupt each strip (data, P, Q) in turn.
		for col := 0; col < k+2; col++ {
			s := clean.Clone()
			// Flip a few bytes spread over the strip.
			for _, off := range []int{0, len(s.Strips[col]) / 2, len(s.Strips[col]) - 1} {
				s.Strips[col][off] ^= 0x5a
			}
			got, err := c.CorrectColumn(s, nil)
			if err != nil {
				t.Fatalf("k=%d p=%d col=%d: %v", k, p, col, err)
			}
			if got != col {
				t.Errorf("k=%d p=%d: corruption in %d attributed to %d", k, p, col, got)
			}
			if !s.Equal(clean) {
				t.Errorf("k=%d p=%d col=%d: repair incomplete", k, p, col)
			}
		}
		// Two corrupted strips must be refused, not silently "repaired"
		// (with distinct error patterns; identical errors at identical
		// offsets cancel in dP and are beyond any single-column
		// corrector's distance).
		s = clean.Clone()
		s.Strips[0][0] ^= 0x5a
		s.Strips[1][s.ElemSize] ^= 0x33
		if _, err := c.CorrectColumn(s, nil); err == nil {
			t.Errorf("k=%d p=%d: two-column corruption not rejected", k, p)
		}
	}
}

func TestRecoverElement(t *testing.T) {
	c, _ := New(6, 7)
	s := core.NewStripe(6, 7, 16)
	s.FillRandom(rand.New(rand.NewSource(21)))
	if err := c.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 16)
	for col := 0; col < 6; col++ {
		for row := 0; row < 7; row++ {
			var ops core.Ops
			if err := c.RecoverElement(dst, s, col, row, &ops); err != nil {
				t.Fatal(err)
			}
			if string(dst) != string(s.Elem(col, row)) {
				t.Fatalf("element (%d,%d) recovered wrong", col, row)
			}
			if ops.XORs != 5 {
				t.Fatalf("element recovery used %d XORs, want k-1=5", ops.XORs)
			}
		}
	}
	if err := c.RecoverElement(dst, s, 6, 0, nil); err == nil {
		t.Error("parity column accepted")
	}
	if err := c.RecoverElement(dst[:3], s, 0, 0, nil); err == nil {
		t.Error("short dst accepted")
	}
}
