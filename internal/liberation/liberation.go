// Package liberation implements the RAID-6 Liberation codes (Plank,
// FAST'08) together with the optimal encoding and decoding algorithms of
// Huang et al., "Optimal Encoding and Decoding Algorithms for the RAID-6
// Liberation Codes" (IPDPS 2020) — the paper this repository reproduces.
//
// A Liberation codeword is a p x (p+2) array of bits, p an odd prime. The
// first p columns hold data (columns k..p-1 are all-zero "phantom" columns
// when the array has only k data disks), and the last two columns hold the
// P (row) and Q (anti-diagonal) parities:
//
//	P[i] = XOR_{t=0..p-1} b[i][t]                                  (eq. 1)
//	Q[i] = XOR_{t=0..p-1} b[<i+t>][t]  ^  a_i                      (eq. 2)
//	a_i  = b[<-i-1>][<-2i>] for i != 0, and a_0 = 0,
//
// where <x> is x mod p. The a_i term is the "extra" bit that makes the
// code MDS: constraint Q[i] contains, besides its anti-diagonal, the bit
// at the intersection of the (i-1)-th anti-diagonal and the (p-1)-th
// diagonal of slope (p-1)/2.
//
// The package provides three independent implementations of the code:
//
//   - the naive encoder straight from the defining equations (an oracle),
//   - the "original" Jerasure-style implementation driven by the generator
//     bit-matrix and XOR schedules (see Original / Bitmatrix), and
//   - the paper's optimal Algorithms 1-4, which reach the k-1 XORs per
//     parity/missing bit lower bound by extracting and reusing the common
//     expressions shared between the row and anti-diagonal constraints.
//
// In element form, every "bit" below is an ElemSize-byte block, so one
// codeword operation advances 8*ElemSize interleaved binary codewords.
package liberation

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Code is a Liberation code instance with k data columns over a p x (p+2)
// array. It implements core.Code with the paper's optimal algorithms; the
// bit-matrix-scheduled original algorithms are available via Original.
type Code struct {
	k    int
	p    int
	half int // (p-1)/2, the inverse of -2 mod p

	plans planCache // compiled operation sequences (lazy)

	scratch sync.Pool // *correctScratch, reused across CorrectColumn calls

	obs *obs.Registry // optional metrics sink (see Instrument)
}

// New returns the Liberation code with k data strips and prime parameter
// p. Requires p an odd prime and 1 <= k <= p.
func New(k, p int) (*Code, error) {
	if !core.IsPrime(p) || p == 2 {
		return nil, fmt.Errorf("%w: p=%d is not an odd prime", core.ErrParams, p)
	}
	if k < 1 || k > p {
		return nil, fmt.Errorf("%w: need 1 <= k <= p, got k=%d p=%d", core.ErrParams, k, p)
	}
	return &Code{k: k, p: p, half: (p - 1) / 2}, nil
}

// NewAuto returns the Liberation code for k data strips with the smallest
// usable prime, p = the first odd prime >= k. This is the paper's "p
// varying with k" configuration (case (a) in Section III).
func NewAuto(k int) (*Code, error) {
	return New(k, core.NextOddPrime(max(k, 2)))
}

func (c *Code) Name() string { return fmt.Sprintf("liberation(k=%d,p=%d)", c.k, c.p) }
func (c *Code) K() int       { return c.k }

// M returns 2: Liberation is a RAID-6 (two-parity) code.
func (c *Code) M() int { return 2 }

// P returns the prime parameter.
func (c *Code) P() int { return c.p }

// W returns the column height, which equals p for Liberation codes.
func (c *Code) W() int { return c.p }

// ElemwiseEncode marks the code for stripe-sharded encoding: Encode
// addresses the stripe only through Elem, so it runs unchanged on
// core.ElemRange views (see core.ElemwiseEncoder).
func (c *Code) ElemwiseEncode() {}

// mod is <x>: x mod p in 0..p-1.
func (c *Code) mod(x int) int { return core.Mod(x, c.p) }

// --- Geometry of the code (Section III-A of the paper) ---

// extraRow returns the row of the extra bit hosted by column col
// (1 <= col <= p-1): the extra bit of constraint Q[extraConstraint(col)]
// lies at (extraRow(col), col). Column 0 hosts no extra bit.
func (c *Code) extraRow(col int) int { return c.mod((c.p+1)/2*col - 1) }

// extraConstraint returns the index i of the anti-diagonal constraint
// whose extra bit a_i lives in column col = <-2i>.
func (c *Code) extraConstraint(col int) int { return c.mod(c.half * col) }

// pairRow returns the row shared by the common expression of pair j
// (1 <= j <= k-1): E_j = b[pairRow(j)][j-1] ^ b[pairRow(j)][j] is shared
// between row-parity constraint pairRow(j) and anti-diagonal constraint
// pairConstraint(j) (bit (row, j-1) lies on that anti-diagonal, and bit
// (row, j) is its extra bit).
func (c *Code) pairRow(j int) int { return c.extraRow(j) }

// pairConstraint returns the anti-diagonal constraint index served by the
// common expression of pair j.
func (c *Code) pairConstraint(j int) int { return c.extraConstraint(j) }

// pairExists reports whether pair j is a real common expression, i.e. both
// of its columns j-1 and j are data columns of the array.
func (c *Code) pairExists(j int) bool { return j >= 1 && j <= c.k-1 }

// isBitA reports whether element (row, col) is the first member of a pair
// (the bit whose own anti-diagonal is the pair's constraint). It is the
// paper's "<i + (p-1)/2*j> = (p-1)/2 and i != p-1" test, plus the pair
// existence guard that the paper leaves implicit (at col = k-1 the would-be
// pair k involves the phantom column k and does not exist).
func (c *Code) isBitA(row, col int) bool {
	return c.mod(row+c.half*col) == c.half && row != c.p-1 && c.pairExists(col+1)
}

// isBitB reports whether element (row, col) is the second member of a pair
// (the extra bit of the pair's constraint). It is the paper's
// "<i + (p-1)/2*j> = p-1 and i != p-1" test with the existence guard.
func (c *Code) isBitB(row, col int) bool {
	return c.mod(row+c.half*col) == c.p-1 && row != c.p-1 && c.pairExists(col)
}

// --- Naive encoder: the defining equations, used as the test oracle ---

// EncodeNaive computes the parities directly from equations (1) and (2),
// without common-expression reuse. It is deliberately simple and serves as
// the correctness oracle for every other implementation.
func (c *Code) EncodeNaive(s *core.Stripe, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.p); err != nil {
		return err
	}
	p, k := c.p, c.k
	for i := 0; i < p; i++ {
		// P[i] = XOR of row i.
		pe := s.Elem(k, i)
		ops.Copy(pe, s.Elem(0, i))
		for t := 1; t < k; t++ {
			ops.XorInto(pe, s.Elem(t, i))
		}
		// Q[i] = XOR of anti-diagonal i, plus the extra bit.
		qe := s.Elem(k+1, i)
		ops.Copy(qe, s.Elem(0, c.mod(i+0)))
		for t := 1; t < k; t++ {
			ops.XorInto(qe, s.Elem(t, c.mod(i+t)))
		}
		if i != 0 {
			ecol := c.mod(-2 * i)
			if ecol < k {
				ops.XorInto(qe, s.Elem(ecol, c.mod(-i-1)))
			}
		}
	}
	return nil
}

// Verify recomputes both parities of s into scratch space and reports
// whether the stored parities match. Used by tests and the scrubber.
func (c *Code) Verify(s *core.Stripe) (bool, error) {
	scratch := s.Clone()
	if err := c.EncodeNaive(scratch, nil); err != nil {
		return false, err
	}
	for col := c.k; col < c.k+2; col++ {
		if string(scratch.Strips[col]) != string(s.Strips[col]) {
			return false, nil
		}
	}
	return true, nil
}
