package liberation

import (
	"fmt"

	"repro/internal/bitmatrix"
)

// Generator returns the Liberation generator bit-matrix in Jerasure layout:
// a 2p x kp matrix whose row i (i < p) describes P[i] and row p+i
// describes Q[i]; matrix column j*p+b refers to bit b of data column j.
// This is the original bit-matrix presentation of the code from which
// Jerasure derives its encoding and decoding schedules.
func (c *Code) Generator() *bitmatrix.Matrix {
	p, k := c.p, c.k
	m := bitmatrix.New(2*p, k*p)
	for i := 0; i < p; i++ {
		for j := 0; j < k; j++ {
			// P[i] contains b[i][j].
			m.Set(i, j*p+i, true)
			// Q[i] contains the anti-diagonal bit b[<i+j>][j].
			m.Set(p+i, j*p+c.mod(i+j), true)
		}
		// Q[i] additionally contains the extra bit a_i (i != 0).
		if i != 0 {
			ecol := c.mod(-2 * i)
			if ecol < k {
				m.Set(p+i, ecol*p+c.mod(-i-1), true)
			}
		}
	}
	return m
}

// NewOriginal returns the "original" Liberation implementation: the
// generator bit-matrix driven through Jerasure-style schedules — a dumb
// (from scratch) schedule for encoding, which costs 2p(k-1) + (k-1) XORs
// (the k-1 + (k-1)/2p per-parity-bit figure in Table I), and smart
// (incremental) schedules derived from inverted decoding matrices for
// decoding, which cost 10-20% above the lower bound. This is the baseline
// that the paper's measurements compare against.
func NewOriginal(k, p int) (*bitmatrix.Code, error) {
	c, err := New(k, p)
	if err != nil {
		return nil, err
	}
	return bitmatrix.NewCode(
		fmt.Sprintf("liberation-original(k=%d,p=%d)", k, p),
		k, p, c.Generator(), bitmatrix.Dumb, bitmatrix.Smart)
}

// NewOriginalAuto is NewOriginal with p = first odd prime >= k.
func NewOriginalAuto(k int) (*bitmatrix.Code, error) {
	c, err := NewAuto(k)
	if err != nil {
		return nil, err
	}
	return NewOriginal(k, c.P())
}
