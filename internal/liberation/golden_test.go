package liberation

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestGoldenParitiesP3 pins the exact parity bytes of a hand-computed
// p=3, k=3 codeword with 1-byte elements. Data columns (by rows 0..2):
//
//	col0 = [a0 a1 a2] = [0x01 0x02 0x04]
//	col1 = [b0 b1 b2] = [0x08 0x10 0x20]
//	col2 = [c0 c1 c2] = [0x40 0x80 0xff]
//
// Row parity: P[i] = a_i ^ b_i ^ c_i.
// Anti-diagonals (x - y = i mod 3) plus extras a_1 = b[<-2>][<-2>] =
// b[1][1], a_2 = b[<-3>][<-4>] = b[0][2]:
//
//	Q[0] = a0 ^ b1 ^ c2
//	Q[1] = a1 ^ b2 ^ c0 ^ b[1][1](=0x10)
//	Q[2] = a2 ^ b0 ^ c1 ^ b[0][2](=0x40)
func TestGoldenParitiesP3(t *testing.T) {
	c, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStripe(3, 3, 1)
	data := [3][3]byte{ // [col][row]
		{0x01, 0x02, 0x04},
		{0x08, 0x10, 0x20},
		{0x40, 0x80, 0xff},
	}
	for col := range data {
		for row, v := range data[col] {
			s.Elem(col, row)[0] = v
		}
	}
	if err := c.Encode(s, nil); err != nil {
		t.Fatal(err)
	}
	wantP := [3]byte{0x01 ^ 0x08 ^ 0x40, 0x02 ^ 0x10 ^ 0x80, 0x04 ^ 0x20 ^ 0xff}
	wantQ := [3]byte{
		0x01 ^ 0x10 ^ 0xff,
		0x02 ^ 0x20 ^ 0x40 ^ 0x10,
		0x04 ^ 0x08 ^ 0x80 ^ 0x40,
	}
	for i := 0; i < 3; i++ {
		if got := s.Elem(3, i)[0]; got != wantP[i] {
			t.Errorf("P[%d] = %#02x, want %#02x", i, got, wantP[i])
		}
		if got := s.Elem(4, i)[0]; got != wantQ[i] {
			t.Errorf("Q[%d] = %#02x, want %#02x", i, got, wantQ[i])
		}
	}
}

// FuzzDecode feeds arbitrary data bytes and erasure choices through an
// encode/erase/decode round trip on a fixed shape. `go test` runs the
// seed corpus; `go test -fuzz=FuzzDecode` explores further.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0}, uint8(0), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(6))
	f.Add([]byte("liberation codes"), uint8(5), uint8(5))
	c, err := New(5, 5)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte, e1, e2 uint8) {
		s := core.NewStripe(5, 5, 4)
		for i := 0; i < len(data) && i < s.DataSize(); i++ {
			s.Strips[i/(5*4)][i%(5*4)] = data[i]
		}
		if err := c.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		orig := s.Clone()
		a, b := int(e1)%7, int(e2)%7
		erased := []int{a}
		if b != a {
			erased = append(erased, b)
		}
		for _, e := range erased {
			for i := range s.Strips[e] {
				s.Strips[e][i] = 0xcc
			}
		}
		if err := c.Decode(s, erased, nil); err != nil {
			t.Fatal(err)
		}
		if !s.Equal(orig) {
			t.Fatalf("decode(%v) did not restore the stripe", erased)
		}
	})
}

// FuzzCorrectColumn checks that the scrubber either repairs a single
// corrupted strip exactly or reports an error — never silently produces a
// stripe that differs from the original.
func FuzzCorrectColumn(f *testing.F) {
	f.Add(uint8(0), uint8(1), []byte{0xff})
	f.Add(uint8(4), uint8(3), []byte{1, 2, 3})
	c, err := New(4, 5)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, colRaw, offRaw uint8, noise []byte) {
		if len(noise) == 0 {
			return
		}
		s := core.NewStripe(4, 5, 4)
		s.FillRandom(rand.New(rand.NewSource(int64(colRaw)*256 + int64(offRaw))))
		if err := c.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		orig := s.Clone()
		col := int(colRaw) % 6
		strip := s.Strips[col]
		off := int(offRaw) % len(strip)
		changed := false
		for i, b := range noise {
			if b != 0 && off+i < len(strip) {
				strip[off+i] ^= b
				changed = true
			}
		}
		fixed, err := c.CorrectColumn(s, nil)
		if err != nil {
			return // ambiguous is acceptable; silence is not
		}
		if !changed {
			if fixed != CleanColumn {
				t.Fatalf("clean stripe 'repaired' at column %d", fixed)
			}
			return
		}
		if fixed != col {
			t.Fatalf("corruption in %d attributed to %d", col, fixed)
		}
		if !s.Equal(orig) {
			t.Fatal("repair did not restore the stripe")
		}
	})
}
