package liberation

import (
	"bytes"
	"errors"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xorblk"
)

// ErrAmbiguousCorruption is returned when the parity mismatch pattern is
// consistent with more than one corrupted strip (or with none), i.e. the
// corruption is not confined to a single column.
var ErrAmbiguousCorruption = errors.New("liberation: corruption not attributable to a single column")

// CleanColumn is returned by CorrectColumn when no corruption is present.
// It now lives in core (the capability home of core.ColumnCorrector);
// this alias keeps existing callers compiling.
const CleanColumn = core.CleanColumn

// correctScratch is the reusable working set of one CorrectColumn call:
// the syndrome rows dP/dQ, the per-candidate prediction rows, and the
// bookkeeping that keeps the locate phase sparse. It is recycled through
// Code.scratch (a sync.Pool), so steady-state correction — the scrub loop
// and the heal rung hammer it once per stripe — allocates nothing.
type correctScratch struct {
	elemSize int
	dP, dQ   [][]byte // syndrome rows, p each
	pred     [][]byte // predicted dQ rows for the candidate column
	srcs     [][]byte // gather buffer for the fused row XORs
	nzP, nzQ []int    // rows with a nonzero syndrome, in order
	dirty    []int    // pred rows touched by the current candidate
	nzQSet   []bool   // per-row: dQ[row] != 0
	predSet  []bool   // per-row: pred[row] touched (and not yet re-zeroed)
}

// getScratch returns a scratch sized for elemSize, reusing a pooled one
// when the shape matches (the common case: one Code sees one element
// size). Mismatched scratch is dropped, not resized — the pool heals
// itself after one allocation.
func (c *Code) getScratch(elemSize int) *correctScratch {
	if sc, ok := c.scratch.Get().(*correctScratch); ok && sc.elemSize == elemSize {
		return sc
	}
	p := c.p
	sc := &correctScratch{
		elemSize: elemSize,
		dP:       make([][]byte, p),
		dQ:       make([][]byte, p),
		pred:     make([][]byte, p),
		srcs:     make([][]byte, 0, c.k+2),
		nzP:      make([]int, 0, p),
		nzQ:      make([]int, 0, p),
		dirty:    make([]int, 0, 2*p),
		nzQSet:   make([]bool, p),
		predSet:  make([]bool, p),
	}
	backing := make([]byte, 3*p*elemSize)
	carve := func() []byte {
		e := backing[:elemSize:elemSize]
		backing = backing[elemSize:]
		return e
	}
	for i := 0; i < p; i++ {
		sc.dP[i] = carve()
		sc.dQ[i] = carve()
		sc.pred[i] = carve()
	}
	return sc
}

// xorRow sets dst to the XOR of srcs (at least two) through the fused
// kernels, counting len(srcs)-1 XORs — the cost of one syndrome row.
func xorRow(ops *core.Ops, dst []byte, srcs [][]byte) {
	ops.Xor(dst, srcs[0], srcs[1])
	i := 2
	for ; i+4 <= len(srcs); i += 4 {
		ops.XorInto4(dst, srcs[i], srcs[i+1], srcs[i+2], srcs[i+3])
	}
	switch len(srcs) - i {
	case 3:
		ops.XorInto3(dst, srcs[i], srcs[i+1], srcs[i+2])
	case 2:
		ops.XorInto2(dst, srcs[i], srcs[i+1])
	case 1:
		ops.XorInto(dst, srcs[i])
	}
}

// CorrectColumn scans a full stripe (no erasures) for a single silently
// corrupted strip and repairs it in place — the single-column error
// correction the paper provides to protect against silent data
// corruption. It returns the index of the repaired strip, or CleanColumn
// if the parities verify.
//
// The method: form the row discrepancy dP and anti-diagonal discrepancy
// dQ by streaming each syndrome row directly off the live stripe —
// dP[i] is the XOR of data row i with the stored P element, dQ[i] the
// XOR of anti-diagonal i (plus its extra bit) with the stored Q element —
// with no stripe clone and no shadow re-encode. A corrupt P (resp. Q)
// strip shows up as dP != 0, dQ == 0 (resp. the reverse), and is healed
// by folding the discrepancy back into the stored parity. A corrupt data
// strip c turns dP into exactly the per-row error values, whose known
// Q-side memberships (each row's anti-diagonal through column c, plus the
// extra-bit constraint for the extra element of column c) must then
// reproduce dQ; the unique column whose prediction matches is the
// corrupted one, and XORing dP's nonzero rows into it repairs it.
//
// The common scrub case — a clean stripe — costs exactly the 2p syndrome
// rows (2p(k-1)+... XORs of streamed reads) and zero allocations: the
// working set comes from a per-Code pool and no expected stripe is ever
// materialized.
func (c *Code) CorrectColumn(s *core.Stripe, ops *core.Ops) (int, error) {
	if c.obs == nil {
		return c.correctColumn(s, ops)
	}
	sp := obs.StartSpan(c.obs, "liberation.correct")
	var local core.Ops
	col, err := c.correctColumn(s, &local)
	ops.Add(local)
	sp.Bytes(s.DataSize()).Ops(local).End(err)
	return col, err
}

func (c *Code) correctColumn(s *core.Stripe, ops *core.Ops) (int, error) {
	if err := s.CheckShape(c.k, 2, c.p); err != nil {
		return 0, err
	}
	p, k := c.p, c.k
	sc := c.getScratch(s.ElemSize)
	defer c.scratch.Put(sc)

	// Stream both syndromes row by row off the live stripe. The clean
	// case (the overwhelming majority under scrubbing) ends here: both
	// nonzero-row lists stay empty and nothing was allocated or cloned.
	sc.nzP, sc.nzQ = sc.nzP[:0], sc.nzQ[:0]
	for i := 0; i < p; i++ {
		srcs := sc.srcs[:0]
		for t := 0; t < k; t++ {
			srcs = append(srcs, s.Elem(t, i))
		}
		srcs = append(srcs, s.Elem(k, i))
		xorRow(ops, sc.dP[i], srcs)
		if !xorblk.IsZero(sc.dP[i]) {
			sc.nzP = append(sc.nzP, i)
		}

		srcs = srcs[:0]
		for t := 0; t < k; t++ {
			srcs = append(srcs, s.Elem(t, c.mod(i+t)))
		}
		if i != 0 {
			if ecol := c.mod(-2 * i); ecol < k {
				srcs = append(srcs, s.Elem(ecol, c.mod(-i-1)))
			}
		}
		srcs = append(srcs, s.Elem(k+1, i))
		xorRow(ops, sc.dQ[i], srcs)
		nz := !xorblk.IsZero(sc.dQ[i])
		sc.nzQSet[i] = nz
		if nz {
			sc.nzQ = append(sc.nzQ, i)
		}
	}

	switch {
	case len(sc.nzP) == 0 && len(sc.nzQ) == 0:
		return CleanColumn, nil
	case len(sc.nzP) != 0 && len(sc.nzQ) == 0:
		// Only the row parity disagrees: the P strip is corrupt, and dP
		// is exactly its error pattern.
		for _, i := range sc.nzP {
			ops.XorInto(s.Elem(k, i), sc.dP[i])
		}
		return k, nil
	case len(sc.nzP) == 0 && len(sc.nzQ) != 0:
		for _, i := range sc.nzQ {
			ops.XorInto(s.Elem(k+1, i), sc.dQ[i])
		}
		return k + 1, nil
	}

	// Both parities disagree: a data strip is suspect. Predict dQ from dP
	// for each candidate column and look for the unique match. Only the
	// pred rows a candidate actually touches are written and compared;
	// rows left untouched must pair with a zero dQ row (checked through
	// the nonzero set). Dirty rows — including those left by the previous
	// CorrectColumn call on this pooled scratch — are re-zeroed lazily.
	clearDirty := func() {
		for _, q := range sc.dirty {
			clear(sc.pred[q])
			sc.predSet[q] = false
		}
		sc.dirty = sc.dirty[:0]
	}
	clearDirty()
	touch := func(q int, src []byte) {
		if !sc.predSet[q] {
			sc.predSet[q] = true
			sc.dirty = append(sc.dirty, q)
		}
		ops.XorInto(sc.pred[q], src)
	}
	candidate := CleanColumn
	for col := 0; col < k; col++ {
		clearDirty()
		for _, i := range sc.nzP {
			touch(c.mod(i-col), sc.dP[i])
			if col >= 1 && i == c.extraRow(col) {
				touch(c.extraConstraint(col), sc.dP[i])
			}
		}
		match := true
		for _, q := range sc.dirty {
			if !bytes.Equal(sc.pred[q], sc.dQ[q]) {
				match = false
				break
			}
		}
		if match {
			for _, q := range sc.nzQ {
				if !sc.predSet[q] {
					match = false
					break
				}
			}
		}
		if match {
			if candidate != CleanColumn {
				return 0, ErrAmbiguousCorruption
			}
			candidate = col
		}
	}
	if candidate == CleanColumn {
		return 0, ErrAmbiguousCorruption
	}
	for _, i := range sc.nzP {
		ops.XorInto(s.Elem(candidate, i), sc.dP[i])
	}
	return candidate, nil
}
