package liberation

import (
	"errors"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xorblk"
)

// ErrAmbiguousCorruption is returned when the parity mismatch pattern is
// consistent with more than one corrupted strip (or with none), i.e. the
// corruption is not confined to a single column.
var ErrAmbiguousCorruption = errors.New("liberation: corruption not attributable to a single column")

// CleanColumn is returned by CorrectColumn when no corruption is present.
// It now lives in core (the capability home of core.ColumnCorrector);
// this alias keeps existing callers compiling.
const CleanColumn = core.CleanColumn

// CorrectColumn scans a full stripe (no erasures) for a single silently
// corrupted strip and repairs it in place — the single-column error
// correction the paper provides to protect against silent data
// corruption. It returns the index of the repaired strip, or CleanColumn
// if the parities verify.
//
// The method: recompute both parities and form the row discrepancy dP and
// anti-diagonal discrepancy dQ. A corrupt P (resp. Q) strip shows up as
// dP != 0, dQ == 0 (resp. the reverse). A corrupt data strip c turns dP
// into exactly the per-row error values, whose known Q-side memberships
// (each row's anti-diagonal through column c, plus the extra-bit
// constraint for the extra element of column c) must then reproduce dQ;
// the unique column whose prediction matches is the corrupted one.
func (c *Code) CorrectColumn(s *core.Stripe, ops *core.Ops) (int, error) {
	if c.obs == nil {
		return c.correctColumn(s, ops)
	}
	sp := obs.StartSpan(c.obs, "liberation.correct")
	var local core.Ops
	col, err := c.correctColumn(s, &local)
	ops.Add(local)
	sp.Bytes(s.DataSize()).Ops(local).End(err)
	return col, err
}

func (c *Code) correctColumn(s *core.Stripe, ops *core.Ops) (int, error) {
	if err := s.CheckShape(c.k, c.p); err != nil {
		return 0, err
	}
	p, k := c.p, c.k
	elemSize := s.ElemSize

	expect := s.Clone()
	if err := c.encodeFull(expect, ops); err != nil {
		return 0, err
	}
	dP := make([][]byte, p)
	dQ := make([][]byte, p)
	backing := make([]byte, 2*p*elemSize)
	zeroP, zeroQ := true, true
	for i := 0; i < p; i++ {
		dP[i], backing = backing[:elemSize:elemSize], backing[elemSize:]
		dQ[i], backing = backing[:elemSize:elemSize], backing[elemSize:]
		ops.Xor(dP[i], s.Elem(k, i), expect.Elem(k, i))
		ops.Xor(dQ[i], s.Elem(k+1, i), expect.Elem(k+1, i))
		zeroP = zeroP && xorblk.IsZero(dP[i])
		zeroQ = zeroQ && xorblk.IsZero(dQ[i])
	}
	switch {
	case zeroP && zeroQ:
		return CleanColumn, nil
	case !zeroP && zeroQ:
		ops.Copy(s.Strips[k], expect.Strips[k])
		return k, nil
	case zeroP && !zeroQ:
		ops.Copy(s.Strips[k+1], expect.Strips[k+1])
		return k + 1, nil
	}

	// Both parities disagree: a data strip is suspect. Predict dQ from dP
	// for each candidate column and look for the unique match.
	pred := make([]byte, p*elemSize)
	diff := make([]byte, elemSize) // scratch, reused across all k*p comparisons
	candidate := CleanColumn
	for col := 0; col < k; col++ {
		for i := range pred {
			pred[i] = 0
		}
		predRow := func(q int) []byte { return pred[q*elemSize : (q+1)*elemSize] }
		for i := 0; i < p; i++ {
			if xorblk.IsZero(dP[i]) {
				continue
			}
			ops.XorInto(predRow(c.mod(i-col)), dP[i])
			if col >= 1 && i == c.extraRow(col) {
				ops.XorInto(predRow(c.extraConstraint(col)), dP[i])
			}
		}
		match := true
		for q := 0; q < p && match; q++ {
			xorblk.Xor(diff, predRow(q), dQ[q])
			match = xorblk.IsZero(diff)
		}
		if match {
			if candidate != CleanColumn {
				return 0, ErrAmbiguousCorruption
			}
			candidate = col
		}
	}
	if candidate == CleanColumn {
		return 0, ErrAmbiguousCorruption
	}
	for i := 0; i < p; i++ {
		ops.XorInto(s.Elem(candidate, i), dP[i])
	}
	return candidate, nil
}
