package liberation

import (
	"fmt"

	"repro/internal/core"
)

// RecoverElement reconstructs a single data element (col, row) into dst
// when strip col is the only erased strip, reading just the k surviving
// elements of its row constraint instead of decoding the whole strip —
// the fast path a real array uses to serve one degraded sector. It does
// not modify the stripe. Cost: k-1 XORs.
func (c *Code) RecoverElement(dst []byte, s *core.Stripe, col, row int, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.p); err != nil {
		return err
	}
	if col < 0 || col >= c.k || row < 0 || row >= c.p {
		return fmt.Errorf("%w: element (%d,%d)", core.ErrParams, col, row)
	}
	if len(dst) != s.ElemSize {
		return fmt.Errorf("%w: dst is %d bytes, element is %d", core.ErrParams, len(dst), s.ElemSize)
	}
	ops.Copy(dst, s.Elem(c.k, row))
	for t := 0; t < c.k; t++ {
		if t != col {
			ops.XorInto(dst, s.Elem(t, row))
		}
	}
	return nil
}
