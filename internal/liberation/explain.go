package liberation

import (
	"fmt"
	"io"

	"repro/internal/bitmatrix"
)

// ExplainEncode writes the optimal encoding's element-operation sequence
// in the paper's b[i][j] notation, grouping the operations per destination
// the way Section III-B lists steps 1)-14) for p = 5. It is generated
// from the very schedule Encode executes, so the listing is the program.
func (c *Code) ExplainEncode(w io.Writer) {
	c.plans.encOnce.Do(func() { c.plans.enc = c.buildEncodeSchedule() })
	fmt.Fprintf(w, "Optimal encoding, k=%d p=%d (%d XORs = 2p(k-1), the lower bound):\n",
		c.k, c.p, c.plans.enc.XORCount())
	c.explain(w, c.plans.enc)
}

// ExplainDecode writes the optimal two-data-erasure decoding sequence
// (syndromes, starting point, retrieval chain) for erased columns l and r.
func (c *Code) ExplainDecode(w io.Writer, l, r int) error {
	if l > r {
		l, r = r, l
	}
	if l < 0 || r >= c.k || l == r {
		return fmt.Errorf("liberation: explain needs two distinct data columns, got (%d,%d)", l, r)
	}
	sch, err := c.dataPairSchedule(l, r, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Optimal decoding of columns %d and %d, k=%d p=%d (%d XORs; lower bound %d):\n",
		l, r, c.k, c.p, sch.XORCount(), 2*c.p*(c.k-1))
	c.explain(w, sch)
	return nil
}

// explain renders a schedule with one line per destination element,
// merging runs of operations that accumulate into the same element.
func (c *Code) explain(w io.Writer, sch bitmatrix.Schedule) {
	name := func(col, row int) string {
		switch col {
		case c.k:
			return fmt.Sprintf("P[%d]", row)
		case c.k + 1:
			return fmt.Sprintf("Q[%d]", row)
		default:
			return fmt.Sprintf("b[%d][%d]", row, col)
		}
	}
	step := 0
	flush := func(dst string, srcs []string, fromSelf bool) {
		if dst == "" {
			return
		}
		step++
		op := "<-"
		join := ""
		if fromSelf {
			join = dst + " ^ "
		}
		fmt.Fprintf(w, "%3d) %-9s %s %s", step, dst, op, join)
		for i, s := range srcs {
			if i > 0 {
				fmt.Fprint(w, " ^ ")
			}
			fmt.Fprint(w, s)
		}
		fmt.Fprintln(w)
	}
	curDst := ""
	var srcs []string
	fromSelf := false
	for _, op := range sch {
		dst := name(op.DstCol, op.DstRow)
		if dst != curDst {
			flush(curDst, srcs, fromSelf)
			curDst, srcs = dst, srcs[:0]
			fromSelf = op.Kind == bitmatrix.OpXor
		}
		switch op.Kind {
		case bitmatrix.OpZero:
			srcs = append(srcs, "0")
		default:
			srcs = append(srcs, name(op.SrcCol, op.SrcRow))
		}
	}
	flush(curDst, srcs, fromSelf)
}
