package liberation

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// randomStripe builds a deterministic k+2-column stripe with random data.
func randomStripe(k, p, elemSize int, seed int64) *core.Stripe {
	s := core.NewStripe(k, p, elemSize)
	rng := rand.New(rand.NewSource(seed))
	for col := 0; col < k; col++ {
		rng.Read(s.Strips[col])
	}
	return s
}

// TestInstrumentedEncodeMatchesOps is the acceptance check that the span
// counters in Registry.Snapshot() agree bit-for-bit with the core.Ops
// accounting, and that the derived XORs-per-parity-element is exactly the
// paper's k-1 lower bound (Encode performs 2p(k-1) XORs over 2p parity
// elements).
func TestInstrumentedEncodeMatchesOps(t *testing.T) {
	for _, sh := range [][2]int{{5, 5}, {4, 7}, {10, 11}} {
		k, p := sh[0], sh[1]
		c, err := New(k, p)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		c.Instrument(reg)

		const calls = 7
		var ops core.Ops
		s := randomStripe(k, p, 64, 1)
		for n := 0; n < calls; n++ {
			if err := c.Encode(s, &ops); err != nil {
				t.Fatal(err)
			}
		}

		snap := reg.Snapshot()
		st, ok := snap.Spans["liberation.encode"]
		if !ok {
			t.Fatalf("k=%d p=%d: no liberation.encode span in snapshot", k, p)
		}
		if st.Calls != calls {
			t.Errorf("k=%d p=%d: calls = %d, want %d", k, p, st.Calls, calls)
		}
		if st.XORs != ops.XORs {
			t.Errorf("k=%d p=%d: span XORs %d != ops.XORs %d", k, p, st.XORs, ops.XORs)
		}
		if st.Copies != ops.Copies {
			t.Errorf("k=%d p=%d: span Copies %d != ops.Copies %d", k, p, st.Copies, ops.Copies)
		}
		if want := uint64(calls * c.EncodeXORs()); st.XORs != want {
			t.Errorf("k=%d p=%d: span XORs %d, want %d calls x EncodeXORs", k, p, st.XORs, want)
		}
		if want := float64(k - 1); st.XORsPerUnit != want {
			t.Errorf("k=%d p=%d: XORsPerUnit = %v, want exactly k-1 = %v", k, p, st.XORsPerUnit, want)
		}
		if st.Bytes != uint64(calls*s.DataSize()) {
			t.Errorf("k=%d p=%d: span Bytes = %d, want %d", k, p, st.Bytes, calls*s.DataSize())
		}
		if st.Latency.Count != calls {
			t.Errorf("k=%d p=%d: latency count %d != %d", k, p, st.Latency.Count, calls)
		}
		if st.Latency.P50 <= 0 || st.Latency.P99 < st.Latency.P50 {
			t.Errorf("k=%d p=%d: implausible percentiles p50=%v p99=%v",
				k, p, st.Latency.P50, st.Latency.P99)
		}
		if st.BytesPerSec <= 0 {
			t.Errorf("k=%d p=%d: BytesPerSec = %v, want > 0", k, p, st.BytesPerSec)
		}
	}
}

// TestInstrumentedDecodeMatchesOps checks the decode span against the
// closed-form DecodeXORs count for a spread of erasure patterns, and that
// uninstrumented codes never touch a registry.
func TestInstrumentedDecodeMatchesOps(t *testing.T) {
	k, p := 5, 5
	c, err := New(k, p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Instrument(reg)

	patterns := [][]int{{1, 3}, {0, 4}, {2, k}, {k, k + 1}, {0}}
	wantXORs := uint64(0)
	var ops core.Ops
	for _, erased := range patterns {
		s := randomStripe(k, p, 32, 42)
		if err := c.encodeFull(s, nil); err != nil {
			t.Fatal(err)
		}
		golden := s.Clone()
		for _, col := range erased {
			s.ZeroStrip(col)
		}
		if err := c.Decode(s, erased, &ops); err != nil {
			t.Fatalf("decode %v: %v", erased, err)
		}
		if !s.Equal(golden) {
			t.Fatalf("decode %v: stripe mismatch", erased)
		}
		n, err := c.DecodeXORs(erased)
		if err != nil {
			t.Fatal(err)
		}
		wantXORs += uint64(n)
	}

	st := reg.Snapshot().Spans["liberation.decode"]
	if st.Calls != uint64(len(patterns)) {
		t.Errorf("decode calls = %d, want %d", st.Calls, len(patterns))
	}
	if st.XORs != ops.XORs {
		t.Errorf("span XORs %d != ops.XORs %d", st.XORs, ops.XORs)
	}
	if st.XORs != wantXORs {
		t.Errorf("span XORs %d != sum of DecodeXORs %d", st.XORs, wantXORs)
	}
	if st.Errors != 0 {
		t.Errorf("unexpected decode errors counter: %d", st.Errors)
	}
}

// TestInstrumentedUpdateAndCorrect exercises the two remaining spans.
func TestInstrumentedUpdateAndCorrect(t *testing.T) {
	k, p := 4, 5
	c, err := New(k, p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Instrument(reg)
	if c.Registry() != reg {
		t.Fatal("Registry() should return the instrumented sink")
	}

	s := randomStripe(k, p, 16, 7)
	var ops core.Ops
	if err := c.Encode(s, &ops); err != nil {
		t.Fatal(err)
	}

	old := append([]byte(nil), s.Elem(1, 2)...)
	s.Elem(1, 2)[0] ^= 0xff
	touched, err := c.Update(s, 1, 2, old, &ops)
	if err != nil {
		t.Fatal(err)
	}
	if touched == 0 {
		t.Fatal("update should touch parity elements")
	}

	s.Elem(2, 0)[0] ^= 0x55 // silent corruption
	col, err := c.CorrectColumn(s, &ops)
	if err != nil {
		t.Fatal(err)
	}
	if col != 2 {
		t.Fatalf("corrected column %d, want 2", col)
	}

	snap := reg.Snapshot()
	up := snap.Spans["liberation.update"]
	if up.Calls != 1 || up.Units != uint64(touched) {
		t.Errorf("update span calls=%d units=%d, want 1/%d", up.Calls, up.Units, touched)
	}
	cor := snap.Spans["liberation.correct"]
	if cor.Calls != 1 || cor.XORs == 0 {
		t.Errorf("correct span calls=%d xors=%d, want 1 call with XOR work", cor.Calls, cor.XORs)
	}
}

// TestTraceDecode checks the Algorithm 2-4 trace: the zig-zag makes
// exactly p iterations (Algorithm 4 retrieves two elements per step over
// p rows), the traced XOR count equals the executable schedule's, and
// the total stays within the paper's near-optimal envelope — at most the
// 2p(k-1) encoding bound plus one extra XOR per computed syndrome.
func TestTraceDecode(t *testing.T) {
	for _, sh := range [][2]int{{3, 3}, {5, 5}, {5, 7}, {8, 11}, {13, 13}} {
		k, p := sh[0], sh[1]
		c, err := New(k, p)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < k; l++ {
			for r := l + 1; r < k; r++ {
				tr, err := c.TraceDecode(l, r)
				if err != nil {
					t.Fatalf("k=%d p=%d (%d,%d): %v", k, p, l, r, err)
				}
				// L and R record the orientation Algorithm 2 actually
				// chose; Swapped says whether it flipped the canonical pair.
				lo, hi := tr.L, tr.R
				if lo > hi {
					lo, hi = hi, lo
				}
				if tr.K != k || tr.P != p || lo != l || hi != r {
					t.Fatalf("k=%d p=%d (%d,%d): trace header K=%d P=%d L=%d R=%d",
						k, p, l, r, tr.K, tr.P, tr.L, tr.R)
				}
				if tr.Swapped != (tr.L != l) {
					t.Errorf("k=%d p=%d (%d,%d): Swapped=%v inconsistent with L=%d",
						k, p, l, r, tr.Swapped, tr.L)
				}
				if tr.StepCount() != p {
					t.Errorf("k=%d p=%d (%d,%d): %d zig-zag steps, want p=%d",
						k, p, l, r, tr.StepCount(), p)
				}
				want, err := c.DecodeXORs([]int{l, r})
				if err != nil {
					t.Fatal(err)
				}
				if tr.XORs != want {
					t.Errorf("k=%d p=%d (%d,%d): trace XORs %d != DecodeXORs %d",
						k, p, l, r, tr.XORs, want)
				}
				if bound := 2*p*(k-1) + tr.SyndromeSum(); tr.XORs > bound {
					t.Errorf("k=%d p=%d (%d,%d): %d XORs exceeds near-optimal bound %d",
						k, p, l, r, tr.XORs, bound)
				}
				if tr.RowSyndromes == 0 || tr.DiagSyndromes == 0 {
					t.Errorf("k=%d p=%d (%d,%d): syndrome sets not recorded", k, p, l, r)
				}
				// Algorithm 3 reuses exactly the common expressions whose
				// pair of columns survives.
				wantReuse := 0
				for j := 1; j < k; j++ {
					if l != j-1 && l != j && r != j-1 && r != j {
						wantReuse++
					}
				}
				if tr.CommonReuse != wantReuse {
					t.Errorf("k=%d p=%d (%d,%d): CommonReuse=%d, want %d",
						k, p, l, r, tr.CommonReuse, wantReuse)
				}
			}
		}
	}
}

// TestTraceDecodeP5Case pins the paper's worked p=5 example: decoding
// data pair (1,3) costs 41 XORs, 1.025x the 40-XOR encoding bound, and
// the trace shows at least one common-expression reuse.
func TestTraceDecodeP5Case(t *testing.T) {
	c, err := New(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.TraceDecode(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.XORs != 41 {
		t.Errorf("p=5 (1,3): %d XORs, want 41", tr.XORs)
	}
	if tr.StepCount() != 5 {
		t.Errorf("p=5 (1,3): %d steps, want 5", tr.StepCount())
	}
	// Erasing (1,3) touches every adjacent-column pair of k=5, so no
	// common expression survives to reuse; pair (0,4) leaves two.
	if tr.CommonReuse != 0 {
		t.Errorf("p=5 (1,3): CommonReuse=%d, want 0", tr.CommonReuse)
	}
	if tr2, err := c.TraceDecode(0, 4); err != nil {
		t.Fatal(err)
	} else if tr2.CommonReuse != 2 {
		t.Errorf("p=5 (0,4): CommonReuse=%d, want 2", tr2.CommonReuse)
	}
	if s := tr.String(); s == "" || s == "decode-trace(nil)" {
		t.Errorf("trace String() = %q", s)
	}

	if _, err := c.TraceDecode(1, 1); err == nil {
		t.Error("TraceDecode(1,1) should reject a degenerate pair")
	}
	if _, err := c.TraceDecode(-1, 2); err == nil {
		t.Error("TraceDecode(-1,2) should reject out-of-range columns")
	}
}
