package liberation

import (
	"fmt"
	"sync"

	"repro/internal/bitmatrix"
	"repro/internal/core"
)

// planCache holds the compiled, data-independent operation sequences of
// the optimal algorithms. Algorithm 1's flow depends only on (k, p), so
// it is compiled once into a flat op list and executed with the same
// tight runner the bit-matrix schedules use — but, unlike the original
// implementation, the plan is derived directly from the code's geometry
// with no matrix inversion or scheduling search anywhere.
type planCache struct {
	encOnce sync.Once
	enc     bitmatrix.Schedule
	encFast bitmatrix.FusedSchedule

	decMu sync.Mutex
	dec   map[[2]int]bitmatrix.FusedSchedule
}

// Encode computes the P and Q parity strips with the paper's Algorithm 1
// (Optimal Encoding). It first evaluates the k-1 common expressions — for
// each pair of adjacent data columns (j-1, j) there is exactly one row,
// pairRow(j), whose two elements are shared between a row constraint and
// an anti-diagonal constraint — seeds both parity columns with them, and
// then sweeps the data exactly once, skipping the contributions the
// common expressions already cover. The XOR count is exactly 2p(k-1): the
// theoretical lower bound of k-1 XORs per parity bit, for every
// 2 <= k <= p.
func (c *Code) Encode(s *core.Stripe, ops *core.Ops) error {
	if c.obs != nil {
		return c.observed("liberation.encode", s.DataSize(), 2*c.p, ops,
			func(o *core.Ops) error { return c.encodeFull(s, o) })
	}
	return c.encodeFull(s, ops)
}

// encodeFull is Encode without the instrumentation wrapper; internal
// callers (decode's re-encoding cases, the scrubber) use it so nested
// work is attributed to the operation the caller is recording.
func (c *Code) encodeFull(s *core.Stripe, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.p); err != nil {
		return err
	}
	c.plans.encOnce.Do(func() {
		c.plans.enc = c.buildEncodeSchedule()
		c.plans.encFast = c.plans.enc.Fuse()
	})
	c.plans.encFast.Run(s, ops)
	return nil
}

// buildEncodeSchedule compiles Algorithm 1 into element operations. The
// contributions are exactly the paper's (pairs first, then each data
// element into the constraints its pair does not already cover), but the
// plan is emitted grouped by destination element — all of a Q element's
// accumulations, then all of a P element's — which the fused executor
// turns into few multi-source passes with a cache-resident destination.
// The reordering is sound because every grouped source is a data element
// (never written) and the pair seeds are placed before either group; the
// symbolic verifier proves the reordered plan equals the generator map
// for every (k, p).
func (c *Code) buildEncodeSchedule() bitmatrix.Schedule {
	p, k := c.p, c.k
	var sch bitmatrix.Schedule
	accP := make([]bool, p) // which P elements hold a value already
	accQ := make([]bool, p) // which Q elements hold a value already
	addP := func(row, srcCol, srcRow int) {
		kind := bitmatrix.OpXor
		if !accP[row] {
			kind = bitmatrix.OpCopy
			accP[row] = true
		}
		sch = append(sch, bitmatrix.Op{Kind: kind,
			SrcCol: srcCol, SrcRow: srcRow, DstCol: k, DstRow: row})
	}
	addQ := func(qi, srcCol, srcRow int) {
		kind := bitmatrix.OpXor
		if !accQ[qi] {
			kind = bitmatrix.OpCopy
			accQ[qi] = true
		}
		sch = append(sch, bitmatrix.Op{Kind: kind,
			SrcCol: srcCol, SrcRow: srcRow, DstCol: k + 1, DstRow: qi})
	}

	// Lines 1-5: evaluate common expressions. E_j lands in P[pairRow(j)]
	// and is copied into Q[pairConstraint(j)].
	for j := 1; j < k; j++ {
		row := c.pairRow(j)
		addP(row, j-1, row)
		sch = append(sch, bitmatrix.Op{Kind: bitmatrix.OpXor,
			SrcCol: j, SrcRow: row, DstCol: k, DstRow: row})
		addQ(c.pairConstraint(j), k, row)
	}

	// Q elements, one destination at a time. Constraint qi receives the
	// anti-diagonal element (<qi+j>, j) of each column unless that element
	// is a pair's bit A (the expression covers it).
	for qi := 0; qi < p; qi++ {
		for j := 0; j < k; j++ {
			i := c.mod(qi + j)
			if c.isBitA(i, j) {
				continue
			}
			addQ(qi, j, i)
		}
	}

	// P elements, one destination at a time. Bit A contributes via the
	// pair; bit B (the extra bit) skips the row parity likewise.
	for i := 0; i < p; i++ {
		for j := 0; j < k; j++ {
			if c.isBitA(i, j) || c.isBitB(i, j) {
				continue
			}
			addP(i, j, i)
		}
	}
	return sch
}

// EncodeXORs returns the exact number of element XORs Encode performs:
// 2p(k-1), the theoretical lower bound (k-1 per parity bit).
func (c *Code) EncodeXORs() int { return 2 * c.p * (c.k - 1) }

// EncodeSchedule exposes the compiled Algorithm 1 plan (for inspection
// and symbolic verification). The returned schedule is shared; callers
// must not modify it.
func (c *Code) EncodeSchedule() bitmatrix.Schedule {
	c.plans.encOnce.Do(func() {
		c.plans.enc = c.buildEncodeSchedule()
		c.plans.encFast = c.plans.enc.Fuse()
	})
	return c.plans.enc
}

// DataPairSchedule exposes the compiled Algorithms 2-4 plan for the
// two-data-column erasure (l, r).
func (c *Code) DataPairSchedule(l, r int) (bitmatrix.Schedule, error) {
	if l > r {
		l, r = r, l
	}
	if l < 0 || r >= c.k || l == r {
		return nil, fmt.Errorf("%w: data pair (%d,%d)", core.ErrParams, l, r)
	}
	return c.dataPairSchedule(l, r, nil)
}
