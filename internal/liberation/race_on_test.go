//go:build race

package liberation

// raceEnabled reports whether the race detector is instrumenting this
// build. AllocsPerRun is not meaningful under -race: the instrumentation
// itself allocates and sync.Pool deliberately drops items.
const raceEnabled = true
