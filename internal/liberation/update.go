package liberation

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xorblk"
)

// Update applies a small write: the data element at (col, row) has been
// changed in place (oldElem holds its previous contents) and the parities
// are patched incrementally. This is where the Liberation codes' headline
// update-complexity advantage materializes: an ordinary element touches
// exactly 2 parity elements (its row parity and its anti-diagonal
// parity); only the one extra element per column touches 3. The average,
// 2 + (k-1)/(kp), attains the theoretical lower bound of 2 asymptotically
// (Table I), versus ~3 for EVENODD and RDP.
//
// It returns the number of parity elements modified.
func (c *Code) Update(s *core.Stripe, col, row int, oldElem []byte, ops *core.Ops) (int, error) {
	if c.obs == nil {
		return c.update(s, col, row, oldElem, ops)
	}
	sp := obs.StartSpan(c.obs, "liberation.update")
	var local core.Ops
	touched, err := c.update(s, col, row, oldElem, &local)
	ops.Add(local)
	sp.Bytes(s.ElemSize).Units(touched).Ops(local).End(err)
	return touched, err
}

func (c *Code) update(s *core.Stripe, col, row int, oldElem []byte, ops *core.Ops) (int, error) {
	if err := s.CheckShape(c.k, 2, c.p); err != nil {
		return 0, err
	}
	if col < 0 || col >= c.k || row < 0 || row >= c.p {
		return 0, fmt.Errorf("%w: update at (%d,%d)", core.ErrParams, col, row)
	}
	if len(oldElem) != s.ElemSize {
		return 0, fmt.Errorf("%w: old element size %d", core.ErrParams, len(oldElem))
	}
	delta := make([]byte, s.ElemSize)
	ops.Xor(delta, oldElem, s.Elem(col, row))
	if xorblk.IsZero(delta) {
		return 0, nil
	}
	touched := 0
	ops.XorInto(s.Elem(c.k, row), delta)
	touched++
	ops.XorInto(s.Elem(c.k+1, c.mod(row-col)), delta)
	touched++
	if col >= 1 && row == c.extraRow(col) {
		ops.XorInto(s.Elem(c.k+1, c.extraConstraint(col)), delta)
		touched++
	}
	return touched, nil
}

var _ core.Updater = (*Code)(nil)
