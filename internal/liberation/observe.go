package liberation

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// Instrument attaches a metrics registry to the code: from then on every
// Encode, Decode, Update and CorrectColumn records a span — latency,
// bytes processed, work units, and the exact core.Ops element counts —
// under the span names liberation.encode, liberation.decode,
// liberation.update and liberation.correct. The work-unit denominators
// make the paper's normalized metric first-class: an encode span's
// xors-per-unit is XORs per parity element (lower bound k-1), a decode
// span's is XORs per recovered element.
//
// Instrumenting costs one extra Ops merge and a clock read per call and
// is safe for concurrent use (the registry is lock-free on the hot path).
// A nil registry detaches.
func (c *Code) Instrument(reg *obs.Registry) { c.obs = reg }

// Registry returns the attached metrics registry (nil when detached).
func (c *Code) Registry() *obs.Registry { return c.obs }

// observed runs fn with a private Ops, merges the counts into the
// caller's ops, and records the span. bytes and units describe the
// operation's size for throughput and per-unit rates.
func (c *Code) observed(name string, bytes, units int, ops *core.Ops, fn func(*core.Ops) error) error {
	sp := obs.StartSpan(c.obs, name)
	var local core.Ops
	err := fn(&local)
	ops.Add(local)
	sp.Bytes(bytes).Units(units).Ops(local).End(err)
	return err
}
