//go:build !race

package liberation

const raceEnabled = false
