package liberation

import (
	"fmt"
	"sort"

	"repro/internal/bitmatrix"
	"repro/internal/core"
	"repro/internal/obs"
)

// Decode reconstructs up to two erased strips using the paper's optimal
// algorithms. The hard case — two erased data strips — runs Algorithms 2
// (starting point), 3 (syndromes with common-expression reuse) and 4
// (iterative retrieval); the remaining cases reduce to row/diagonal
// recovery plus (partial) re-encoding, as Section III-C notes.
func (c *Code) Decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	if c.obs != nil {
		// Units: erased strips * p elements each — the denominator of the
		// paper's XORs-per-missing-bit metric.
		return c.observed("liberation.decode", s.DataSize(), len(erased)*c.p, ops,
			func(o *core.Ops) error { return c.decode(s, erased, o) })
	}
	return c.decode(s, erased, ops)
}

func (c *Code) decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.p); err != nil {
		return err
	}
	switch len(erased) {
	case 0:
		return nil
	case 1:
		return c.decodeOne(s, erased[0], ops)
	case 2:
		a, b := erased[0], erased[1]
		if a > b {
			a, b = b, a
		}
		if a < 0 || b > c.k+1 {
			return fmt.Errorf("%w: erased=%v", core.ErrParams, erased)
		}
		if a == b {
			return c.decodeOne(s, a, ops)
		}
		switch {
		case a >= c.k: // P and Q
			return c.encodeFull(s, ops)
		case b == c.k: // data + P
			if err := c.recoverDataViaQ(s, a, ops); err != nil {
				return err
			}
			return c.encodeP(s, ops)
		case b == c.k+1: // data + Q
			c.recoverDataViaP(s, a, ops)
			return c.encodeQ(s, ops)
		default: // two data strips: Algorithms 2-4
			return c.decodeDataPair(s, a, b, ops)
		}
	default:
		return core.ErrTooManyErasures
	}
}

func (c *Code) decodeOne(s *core.Stripe, e int, ops *core.Ops) error {
	switch {
	case e == c.k:
		return c.encodeP(s, ops)
	case e == c.k+1:
		return c.encodeQ(s, ops)
	case e >= 0 && e < c.k:
		c.recoverDataViaP(s, e, ops)
		return nil
	default:
		return fmt.Errorf("%w: erased=%d", core.ErrParams, e)
	}
}

// encodeP recomputes the P strip alone: p(k-1) XORs, the optimum.
func (c *Code) encodeP(s *core.Stripe, ops *core.Ops) error {
	for i := 0; i < c.p; i++ {
		pe := s.Elem(c.k, i)
		ops.Copy(pe, s.Elem(0, i))
		for t := 1; t < c.k; t++ {
			ops.XorInto(pe, s.Elem(t, i))
		}
	}
	return nil
}

// encodeQ recomputes the Q strip alone: (p+1)(k-1) XORs — within 1/p of
// the optimum (no common subexpressions with P are available when P is
// not being recomputed).
func (c *Code) encodeQ(s *core.Stripe, ops *core.Ops) error {
	p, k := c.p, c.k
	for i := 0; i < p; i++ {
		qe := s.Elem(k+1, i)
		ops.Copy(qe, s.Elem(0, c.mod(i)))
		for t := 1; t < k; t++ {
			ops.XorInto(qe, s.Elem(t, c.mod(i+t)))
		}
		if i != 0 {
			if ecol := c.mod(-2 * i); ecol < k {
				ops.XorInto(qe, s.Elem(ecol, c.mod(-i-1)))
			}
		}
	}
	return nil
}

// recoverDataViaP rebuilds data strip d from the row constraints:
// k-1 XORs per missing element, the optimum.
func (c *Code) recoverDataViaP(s *core.Stripe, d int, ops *core.Ops) {
	for i := 0; i < c.p; i++ {
		de := s.Elem(d, i)
		ops.Copy(de, s.Elem(c.k, i))
		for t := 0; t < c.k; t++ {
			if t != d {
				ops.XorInto(de, s.Elem(t, i))
			}
		}
	}
}

// recoverDataViaQ rebuilds data strip d from the anti-diagonal constraints
// (used when P is also lost). Column d hosts the extra bit of constraint
// q* = extraConstraint(d); the element at (extraRow(d), d) is recovered
// first through its own anti-diagonal (q*-1), after which every other
// element has a single unknown in its constraint.
func (c *Code) recoverDataViaQ(s *core.Stripe, d int, ops *core.Ops) error {
	p, k := c.p, c.k
	order := make([]int, 0, p)
	if d != 0 {
		order = append(order, c.extraRow(d))
	}
	for x := 0; x < p; x++ {
		if d != 0 && x == c.extraRow(d) {
			continue
		}
		order = append(order, x)
	}
	for _, x := range order {
		q := c.mod(x - d) // the constraint whose diagonal passes through (x, d)
		de := s.Elem(d, x)
		ops.Copy(de, s.Elem(k+1, q))
		for t := 0; t < k; t++ {
			if t == d {
				continue
			}
			ops.XorInto(de, s.Elem(t, c.mod(q+t)))
		}
		// Extra bit of constraint q, if it is a real element.
		if q != 0 {
			ecol := c.mod(-2 * q)
			erow := c.mod(-q - 1)
			if ecol < k && !(ecol == d && erow == x) {
				if ecol == d && erow != c.extraRow(d) {
					return fmt.Errorf("liberation: internal geometry error")
				}
				ops.XorInto(de, s.Elem(ecol, erow))
			}
		}
	}
	return nil
}

// startingPoint implements Algorithm 2: given erased data columns l and r
// (in the current orientation; they need not satisfy l < r after a swap),
// it returns the index sets of the row (sp) and anti-diagonal (sq)
// constraints whose syndromes sum to the starting element b[x][r], or
// x = -1 when the starting point lies in column l and the caller must
// swap.
func (c *Code) startingPoint(l, r int) (sp, sq []int, x int) {
	extraL := c.extraRow(l) // row of column l's extra bit
	extraR := c.extraRow(r)
	specialQL := c.mod(extraL + 1 - l) // anti-diagonal with 3 unknowns via l
	specialQR := c.mod(extraR + 1 - r)
	curQ := c.mod(specialQR - 1 + (r - l))
	sq = []int{specialQR}
	sp = []int{extraR}
	for (curQ != specialQL || l == 0) && curQ != specialQR {
		sq = append(sq, curQ)
		sp = append(sp, c.mod(curQ+r))
		curQ = c.mod(curQ + (r - l))
	}
	if curQ == specialQR {
		x = c.mod(extraR + 1)
	} else {
		x = -1
	}
	return sp, sq, x
}

// appendSyndromeOps compiles Algorithm 3: the row parity syndromes land in
// strip l (element i holds the syndrome of row constraint i) and the
// anti-diagonal syndromes in strip r (element <i+r> holds the syndrome of
// anti-diagonal constraint i). A syndrome XORs the *surviving* members of
// its constraint, excluding members that belong to an unknown common
// expression, and reuses the known common expressions exactly as the
// encoder does. Each reused expression is reported to tr (which may be
// nil).
func (c *Code) appendSyndromeOps(sch bitmatrix.Schedule, l, r int, tr *obs.DecodeTrace) bitmatrix.Schedule {
	p, k := c.p, c.k
	accL := make([]bool, p)
	accR := make([]bool, p)
	xorL := func(i, srcCol, srcRow int) {
		kind := bitmatrix.OpXor
		if !accL[i] {
			kind = bitmatrix.OpCopy
			accL[i] = true
		}
		sch = append(sch, bitmatrix.Op{Kind: kind,
			SrcCol: srcCol, SrcRow: srcRow, DstCol: l, DstRow: i})
	}
	xorR := func(i, srcCol, srcRow int) {
		kind := bitmatrix.OpXor
		if !accR[i] {
			kind = bitmatrix.OpCopy
			accR[i] = true
		}
		sch = append(sch, bitmatrix.Op{Kind: kind,
			SrcCol: srcCol, SrcRow: srcRow, DstCol: r, DstRow: i})
	}

	// Known common expressions (pairs not touching an erased column).
	for j := 1; j < k; j++ {
		if l == j-1 || l == j || r == j-1 || r == j {
			continue
		}
		tr.ReuseHit()
		row := c.pairRow(j)
		xorL(row, j-1, row)
		sch = append(sch, bitmatrix.Op{Kind: bitmatrix.OpXor,
			SrcCol: j, SrcRow: row, DstCol: l, DstRow: row})
		xorR(c.mod(c.pairConstraint(j)+r), l, row)
	}

	// Sweep the surviving data, grouped per destination element (see
	// buildEncodeSchedule for why grouping is sound and fast). Bit A of
	// an existing pair contributes to neither syndrome (if its pair is
	// known the expression already covered it; if unknown, it is excluded
	// by definition). Bit B skips only the row syndrome for the same
	// reason. Each group folds its parity element in as the final source.
	for pos := 0; pos < p; pos++ {
		qi := c.mod(pos - r)
		for j := 0; j < k; j++ {
			if j == l || j == r {
				continue
			}
			i := c.mod(qi + j)
			if c.isBitA(i, j) {
				continue
			}
			xorR(pos, j, i)
		}
		xorR(pos, k+1, qi)
	}
	for i := 0; i < p; i++ {
		for j := 0; j < k; j++ {
			if j == l || j == r || c.isBitA(i, j) || c.isBitB(i, j) {
				continue
			}
			xorL(i, j, i)
		}
		xorL(i, k, i)
	}
	return sch
}

// dataPairSchedule compiles the full optimal decoding of two erased data
// strips (Algorithms 2 + 3 + 4) into element operations. The plan depends
// only on (l, r, k, p) — building it involves no matrix work at all,
// which is exactly the structural advantage the paper claims over the
// bit-matrix-scheduled original decoder. When tr is non-nil, the builder
// records the structured trace of its decisions (starting-point choice,
// syndrome sets, common-expression reuse, every zig-zag step).
func (c *Code) dataPairSchedule(l, r int, tr *obs.DecodeTrace) (bitmatrix.Schedule, error) {
	p := c.p
	// Algorithm 2, trying both orientations and taking the cheaper
	// starting point (the paper's second decoding trick). The flipped
	// orientation is only meaningful when its target column (the original
	// l) hosts an extra bit, i.e. l >= 1.
	sp, sq, x := c.startingPoint(l, r)
	swapped := false
	if l >= 1 {
		if sp2, sq2, x2 := c.startingPoint(r, l); x2 != -1 &&
			(x == -1 || len(sp2)+len(sq2) < len(sp)+len(sq)) {
			l, r = r, l
			sp, sq, x = sp2, sq2, x2
			swapped = true
		}
	}
	if x == -1 {
		return nil, fmt.Errorf("liberation: no starting point for erasure (%d,%d)", r, l)
	}
	if tr != nil {
		tr.L, tr.R, tr.Swapped = l, r, swapped
		tr.StartRow = x
		tr.RowSyndromes, tr.DiagSyndromes = len(sp), len(sq)
	}

	sch := c.appendSyndromeOps(nil, l, r, tr)
	delta := c.mod(r - l)

	// Evaluate the starting element b[x][r] as the sum of the selected
	// syndromes; the syndrome stored at (x, r) itself is the base value.
	for _, i := range sq {
		if pos := c.mod(i + r); pos != x {
			sch = append(sch, bitmatrix.Op{Kind: bitmatrix.OpXor,
				SrcCol: r, SrcRow: pos, DstCol: r, DstRow: x})
		}
	}
	for _, i := range sp {
		sch = append(sch, bitmatrix.Op{Kind: bitmatrix.OpXor,
			SrcCol: l, SrcRow: i, DstCol: r, DstRow: x})
	}

	// Algorithm 4's retrieval loop, alternating row and anti-diagonal
	// constraints. The delta guards are "delta != 1": when delta == 1 the
	// pair between columns l and r has both members missing, so there is
	// no surviving partner to fold in and the plain chain already yields
	// the elements.
	xor := func(dstCol, dstRow, srcCol, srcRow int) {
		sch = append(sch, bitmatrix.Op{Kind: bitmatrix.OpXor,
			SrcCol: srcCol, SrcRow: srcRow, DstCol: dstCol, DstRow: dstRow})
	}
	for t := 0; t < p; t++ {
		var events []string
		event := func(e string) {
			if tr != nil {
				events = append(events, e)
			}
		}
		// Row constraint x: syndrome ^ resolved column-r value.
		xor(l, x, r, x)
		event("row-resolve(l)")
		if c.isBitB(x, r) && delta != 1 {
			// (x, r) is the extra bit of pair r; its surviving partner
			// (x, r-1) was excluded from the row syndrome.
			xor(l, x, r-1, x)
			event("fold-pairB-partner(r)")
		} else if c.isBitA(x, r) {
			// (x, r) currently holds the pair-(r+1) expression; fold in
			// the surviving partner to obtain the element itself.
			xor(r, x, r+1, x)
			event("pairA-resolve(r)")
		}
		if c.isBitB(x, l) {
			// (x, l) currently holds the pair-l expression E. Feed E into
			// the anti-diagonal constraint it participates in (stored at
			// row <x+1+delta> of strip r), then resolve the element.
			xor(r, c.mod(x+1+delta), l, x)
			xor(l, x, l-1, x)
			event("pairB-feed-and-resolve(l)")
		}
		if t < p-1 {
			// Feed the resolved column-l value into the anti-diagonal
			// constraint through (x, l), resolving the next column-r
			// element. When (x, l) is a pair-(l+1) bit A, the value being
			// fed is the pair expression — exactly what that constraint
			// contains.
			xor(r, c.mod(x+delta), l, x)
			event("antidiagonal-feed")
		}
		if c.isBitA(x, l) && delta != 1 {
			// Resolve the pair-(l+1) expression into the element.
			xor(l, x, l+1, x)
			event("pairA-resolve(l)")
		}
		tr.AddStep(t, x, events...)
		x = c.mod(x + delta)
	}
	if tr != nil {
		for _, op := range sch {
			switch op.Kind {
			case bitmatrix.OpXor:
				tr.XORs++
			case bitmatrix.OpCopy:
				tr.Copies++
			}
		}
	}
	return sch, nil
}

// TraceDecode compiles the Algorithm 2-4 plan for the two erased data
// columns (l, r) and returns the structured trace of its construction:
// the starting point Algorithm 2 selected, the syndrome sets, the common
// expressions Algorithm 3 reused, every zig-zag step of Algorithm 4, and
// the plan's exact XOR/copy cost. The trace is data-independent — a
// Decode of the same erasure pattern performs exactly the traced
// operations.
func (c *Code) TraceDecode(l, r int) (*obs.DecodeTrace, error) {
	if l > r {
		l, r = r, l
	}
	if l < 0 || r >= c.k || l == r {
		return nil, fmt.Errorf("%w: data pair (%d,%d)", core.ErrParams, l, r)
	}
	if c.k < 2 {
		return nil, fmt.Errorf("%w: k=%d cannot lose two data strips", core.ErrParams, c.k)
	}
	tr := &obs.DecodeTrace{Code: c.Name(), K: c.k, P: c.p}
	if _, err := c.dataPairSchedule(l, r, tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// decodeDataPair implements Algorithm 4 (Optimal Decoding) for two erased
// data strips: each loop iteration recovers one element of column l via a
// row constraint and resolves one element of column r via an
// anti-diagonal constraint; when the recovered value is an unknown common
// expression rather than a missing element, it is used twice (once to
// feed the next constraint, once — XOR-ed with its surviving pair partner
// — to yield the element itself).
func (c *Code) decodeDataPair(s *core.Stripe, l, r int, ops *core.Ops) error {
	if c.k < 2 {
		return fmt.Errorf("%w: k=%d cannot lose two data strips", core.ErrParams, c.k)
	}
	key := [2]int{l, r}
	c.plans.decMu.Lock()
	if c.plans.dec == nil {
		c.plans.dec = make(map[[2]int]bitmatrix.FusedSchedule)
	}
	sch, ok := c.plans.dec[key]
	c.plans.decMu.Unlock()
	if !ok {
		plain, err := c.dataPairSchedule(l, r, nil)
		if err != nil {
			return err
		}
		sch = plain.Fuse()
		c.plans.decMu.Lock()
		c.plans.dec[key] = sch
		c.plans.decMu.Unlock()
	}
	sch.Run(s, ops)
	return nil
}

// DecodeXORs returns the exact number of element XORs Decode performs for
// the given erasure pattern, by running the algorithm in counting mode on
// a scratch stripe with 8-byte elements.
func (c *Code) DecodeXORs(erased []int) (int, error) {
	s := core.NewStripe(c.k, c.p, 8)
	sorted := append([]int(nil), erased...)
	sort.Ints(sorted)
	var ops core.Ops
	// Use the uninstrumented path: the counting probe is not a real
	// decode and must not show up in the metrics.
	if err := c.decode(s, sorted, &ops); err != nil {
		return 0, err
	}
	return int(ops.XORs), nil
}
