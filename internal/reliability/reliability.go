// Package reliability quantifies the paper's motivation: RAID-6 is
// displacing RAID-5 because, with today's disk capacities and a fairly
// constant per-bit unrecoverable-read-error (URE) rate, the window between
// a disk failure and the end of its rebuild is long enough that a second
// failure — or a single URE while redundancy is exhausted — is no longer
// rare. A continuous-time Monte-Carlo simulation of an array's failure/
// rebuild process estimates the probability of data loss over a mission
// time, for any redundancy level; rebuild speed can be fed from the
// measured decode throughput of the codes in this repository.
package reliability

import (
	"fmt"
	"math"
	"math/rand"
)

// Params describes the simulated array.
type Params struct {
	// Disks is the total number of disks in the array.
	Disks int
	// DiskTB is the capacity of one disk in terabytes.
	DiskTB float64
	// MTTFHours is the mean time to failure of a single disk.
	MTTFHours float64
	// RebuildMBps is the sustained reconstruction rate (from the decode
	// throughput of the erasure code and the disk bandwidth budget).
	RebuildMBps float64
	// UREPerBit is the probability of an unrecoverable read error per bit
	// read (typically 1e-14 for SATA, 1e-15 for enterprise drives).
	UREPerBit float64
	// Redundancy is the number of disk losses the array tolerates:
	// 1 = RAID-5, 2 = RAID-6.
	Redundancy int
	// MissionYears is the simulated operating period.
	MissionYears float64
	// SilentPerDiskHour is the rate of silent-corruption events (bitrot
	// that checksums catch only on read) per disk-hour. Zero disables
	// silent-corruption modelling entirely.
	SilentPerDiskHour float64
	// CorrectionSuccess is the probability that the correction layer
	// (the paper's single-column error correction plus quarantine and
	// retry) heals a silent corruption before it matters. Feed it from
	// observed shard.correct_column.* counters via
	// CorrectionSuccessRatio; zero means no corruption is ever healed.
	CorrectionSuccess float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Disks < 3:
		return fmt.Errorf("reliability: need at least 3 disks, got %d", p.Disks)
	case p.DiskTB <= 0 || p.MTTFHours <= 0 || p.RebuildMBps <= 0:
		return fmt.Errorf("reliability: capacity, MTTF and rebuild rate must be positive")
	case p.UREPerBit < 0:
		return fmt.Errorf("reliability: negative URE rate")
	case p.Redundancy < 1 || p.Redundancy >= p.Disks:
		return fmt.Errorf("reliability: redundancy %d out of range", p.Redundancy)
	case p.MissionYears <= 0:
		return fmt.Errorf("reliability: mission time must be positive")
	case p.SilentPerDiskHour < 0:
		return fmt.Errorf("reliability: negative silent-corruption rate")
	case p.CorrectionSuccess < 0 || p.CorrectionSuccess > 1:
		return fmt.Errorf("reliability: correction success %v outside [0,1]", p.CorrectionSuccess)
	}
	return nil
}

// RebuildHours returns the time to reconstruct one disk.
func (p Params) RebuildHours() float64 {
	bytes := p.DiskTB * 1e12
	return bytes / (p.RebuildMBps * 1e6) / 3600
}

// ureDuringRebuild returns the probability that at least one URE occurs
// while reading the surviving disks to rebuild one disk.
func (p Params) ureDuringRebuild() float64 {
	bitsRead := float64(p.Disks-1) * p.DiskTB * 1e12 * 8
	// 1 - (1-q)^bits, computed stably.
	return -math.Expm1(bitsRead * math.Log1p(-p.UREPerBit))
}

// SilentDuringRebuild returns the probability that an unhealed silent
// corruption strikes one of the surviving disks during a critical
// rebuild (one with zero redundancy left). Corruption events arrive at
// SilentPerDiskHour on each of the Disks-1 survivors for RebuildHours;
// each is healed with probability CorrectionSuccess, so only the
// residue is fatal.
func (p Params) SilentDuringRebuild() float64 {
	exposure := p.SilentPerDiskHour * float64(p.Disks-1) * p.RebuildHours()
	return (1 - p.CorrectionSuccess) * -math.Expm1(-exposure)
}

// CorrectionSuccessRatio converts observed correction counters (e.g.
// shard.correct_column.total and shard.correct_column.failed from a
// decode fleet) into the CorrectionSuccess parameter. With no
// observations it returns 1: no correction has been seen to fail.
func CorrectionSuccessRatio(corrected, failed uint64) float64 {
	if corrected+failed == 0 {
		return 1
	}
	return float64(corrected) / float64(corrected+failed)
}

// Result summarizes a simulation.
type Result struct {
	Params      Params
	Trials      int
	Losses      int
	LossByURE   int // losses where a URE ended an already-critical rebuild
	LossByDisks int // losses from one failure too many
	// LossBySilent counts losses where a silent corruption survived the
	// correction layer during an already-critical rebuild.
	LossBySilent int
}

// LossProbability is the estimated probability of data loss over the
// mission time.
func (r Result) LossProbability() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Losses) / float64(r.Trials)
}

// Simulate runs the Monte-Carlo model. Each trial draws exponential
// failure times for the healthy disks (rate = 1/MTTF each) and services
// rebuilds one at a time; the array dies when more than Redundancy disks
// are simultaneously down, or when a URE strikes during a rebuild that
// has no redundancy left to absorb it.
func Simulate(p Params, trials int, seed int64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if trials < 1 {
		return Result{}, fmt.Errorf("reliability: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	res := Result{Params: p, Trials: trials}
	mission := p.MissionYears * 365.25 * 24
	lambda := 1 / p.MTTFHours
	rebuild := p.RebuildHours()
	pURE := p.ureDuringRebuild()
	pSilent := p.SilentDuringRebuild()

	for trial := 0; trial < trials; trial++ {
		t := 0.0
		failed := 0
		for t < mission {
			// Next failure among healthy disks; next repair completion if
			// any rebuild is in progress (one at a time).
			healthy := p.Disks - failed
			tFail := t + rng.ExpFloat64()/(lambda*float64(healthy))
			tRepair := math.Inf(1)
			if failed > 0 {
				tRepair = t + rebuild
			}
			if tFail < tRepair {
				t = tFail
				failed++
				if failed > p.Redundancy {
					res.Losses++
					res.LossByDisks++
					break
				}
				continue
			}
			// A rebuild completes; if it ran with zero remaining
			// redundancy, a URE — or an unhealed silent corruption — during
			// it is fatal. The silent draw happens only when the rate is
			// armed, so disabling it reproduces the exact rng sequence of
			// the original model.
			t = tRepair
			if failed == p.Redundancy {
				if rng.Float64() < pURE {
					res.Losses++
					res.LossByURE++
					break
				}
				if pSilent > 0 && rng.Float64() < pSilent {
					res.Losses++
					res.LossBySilent++
					break
				}
			}
			failed--
		}
	}
	return res, nil
}

// CompareRAID5 runs the same array at redundancy 1 and 2 and returns both
// results — the quantitative version of the paper's opening argument.
func CompareRAID5(p Params, trials int, seed int64) (raid5, raid6 Result, err error) {
	p5 := p
	p5.Redundancy = 1
	raid5, err = Simulate(p5, trials, seed)
	if err != nil {
		return
	}
	p6 := p
	p6.Redundancy = 2
	raid6, err = Simulate(p6, trials, seed+1)
	return
}
