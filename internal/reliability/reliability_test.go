package reliability

import (
	"math"
	"testing"
)

func baseParams() Params {
	return Params{
		Disks:        12,
		DiskTB:       16,
		MTTFHours:    1.2e6,
		RebuildMBps:  100,
		UREPerBit:    1e-14,
		Redundancy:   2,
		MissionYears: 5,
	}
}

func TestValidate(t *testing.T) {
	good := baseParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Disks = 2 },
		func(p *Params) { p.DiskTB = 0 },
		func(p *Params) { p.MTTFHours = -1 },
		func(p *Params) { p.RebuildMBps = 0 },
		func(p *Params) { p.UREPerBit = -1e-15 },
		func(p *Params) { p.Redundancy = 0 },
		func(p *Params) { p.Redundancy = 12 },
		func(p *Params) { p.MissionYears = 0 },
		func(p *Params) { p.SilentPerDiskHour = -1 },
		func(p *Params) { p.CorrectionSuccess = -0.1 },
		func(p *Params) { p.CorrectionSuccess = 1.1 },
	}
	for i, mutate := range bad {
		p := baseParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
	if _, err := Simulate(baseParams(), 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRebuildHours(t *testing.T) {
	p := baseParams()
	// 16 TB at 100 MB/s = 1.6e5 seconds = ~44.4 hours.
	if got := p.RebuildHours(); math.Abs(got-44.44) > 0.1 {
		t.Errorf("rebuild hours = %.2f, want ~44.4", got)
	}
}

func TestRAID6BeatsRAID5(t *testing.T) {
	// The paper's opening claim, quantified: at modern capacities and URE
	// rates, RAID-5 loses data in a meaningful fraction of missions while
	// RAID-6 survives essentially always.
	r5, r6, err := CompareRAID5(baseParams(), 4000, 42)
	if err != nil {
		t.Fatal(err)
	}
	p5, p6 := r5.LossProbability(), r6.LossProbability()
	if p5 < 0.01 {
		t.Errorf("RAID-5 loss probability %.4f implausibly low for 16TB SATA disks", p5)
	}
	if p6 >= p5/10 {
		t.Errorf("RAID-6 (%.5f) not at least 10x safer than RAID-5 (%.5f)", p6, p5)
	}
	// With SATA-class URE rates, most RAID-5 losses come from UREs during
	// the unprotected rebuild, not from a second whole-disk failure.
	if r5.LossByURE <= r5.LossByDisks {
		t.Errorf("RAID-5 losses: %d by URE vs %d by disk — expected URE-dominated",
			r5.LossByURE, r5.LossByDisks)
	}
}

// TestTripleParityBeatsDouble extends the redundancy ladder one rung:
// with the rs3 family's three-parity budget, the mission loss
// probability drops again relative to RAID-6 under identical disks.
func TestTripleParityBeatsDouble(t *testing.T) {
	p2 := baseParams()
	p2.Redundancy = 2
	r2, err := Simulate(p2, 4000, 42)
	if err != nil {
		t.Fatal(err)
	}
	p3 := baseParams()
	p3.Redundancy = 3
	r3, err := Simulate(p3, 4000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Losses > r2.Losses {
		t.Errorf("triple parity lost more missions than double: %d vs %d", r3.Losses, r2.Losses)
	}
	if r2.Losses > 0 && r3.Losses >= r2.Losses {
		t.Errorf("triple parity no safer than double: %d vs %d losses", r3.Losses, r2.Losses)
	}
}

func TestMonotonicInURE(t *testing.T) {
	p := baseParams()
	p.Redundancy = 1
	p.UREPerBit = 0
	clean, err := Simulate(p, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	p.UREPerBit = 1e-14
	dirty, err := Simulate(p, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Losses <= clean.Losses {
		t.Errorf("URE rate did not increase losses: %d vs %d", dirty.Losses, clean.Losses)
	}
	if clean.LossByURE != 0 {
		t.Errorf("URE losses with zero URE rate: %d", clean.LossByURE)
	}
}

func TestSilentDuringRebuildHandComputed(t *testing.T) {
	// 0.36 TB at 100 MB/s is 3600 s: exactly one rebuild hour. With 10
	// surviving disks at 0.01 silent events per disk-hour the exposure is
	// 0.1 events, and with the correction layer healing 75% of hits:
	//
	//	P = (1 - 0.75) × (1 - e^-0.1)
	p := Params{
		Disks:             11,
		DiskTB:            0.36,
		MTTFHours:         1e6,
		RebuildMBps:       100,
		Redundancy:        2,
		MissionYears:      5,
		SilentPerDiskHour: 0.01,
		CorrectionSuccess: 0.75,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.RebuildHours(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("rebuild hours = %v, want exactly 1", got)
	}
	want := 0.25 * (1 - math.Exp(-0.1))
	if got := p.SilentDuringRebuild(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SilentDuringRebuild = %v, want %v", got, want)
	}
	// Disabled either way, the probability is zero.
	p.CorrectionSuccess = 1
	if got := p.SilentDuringRebuild(); got != 0 {
		t.Errorf("perfect correction: SilentDuringRebuild = %v, want 0", got)
	}
	p.CorrectionSuccess = 0
	p.SilentPerDiskHour = 0
	if got := p.SilentDuringRebuild(); got != 0 {
		t.Errorf("zero rate: SilentDuringRebuild = %v, want 0", got)
	}
}

func TestCorrectionSuccessRatio(t *testing.T) {
	if got := CorrectionSuccessRatio(3, 1); got != 0.75 {
		t.Errorf("ratio(3,1) = %v, want 0.75", got)
	}
	if got := CorrectionSuccessRatio(0, 5); got != 0 {
		t.Errorf("ratio(0,5) = %v, want 0", got)
	}
	if got := CorrectionSuccessRatio(0, 0); got != 1 {
		t.Errorf("ratio(0,0) = %v, want 1 (no observed failures)", got)
	}
}

func TestSilentDisabledPreservesSequence(t *testing.T) {
	// Perfect correction makes the silent term vanish without touching
	// the rng draw sequence: results must be identical to the rate being
	// off entirely, field for field.
	off := baseParams()
	off.Redundancy = 1
	healed := off
	healed.SilentPerDiskHour = 0.05
	healed.CorrectionSuccess = 1
	a, err := Simulate(off, 3000, 17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(healed, 3000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if a.Losses != b.Losses || a.LossByURE != b.LossByURE ||
		a.LossByDisks != b.LossByDisks || b.LossBySilent != 0 {
		t.Errorf("perfect correction changed the simulation: %+v vs %+v", a, b)
	}
}

func TestSilentCorruptionIncreasesLosses(t *testing.T) {
	p := baseParams()
	p.Redundancy = 1
	p.UREPerBit = 0
	clean, err := Simulate(p, 3000, 23)
	if err != nil {
		t.Fatal(err)
	}
	p.SilentPerDiskHour = 0.002 // ~8% fatal per 44h critical rebuild
	p.CorrectionSuccess = 0
	dirty, err := Simulate(p, 3000, 23)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.LossBySilent == 0 {
		t.Error("silent-corruption losses never observed at a high rate")
	}
	if dirty.Losses <= clean.Losses {
		t.Errorf("silent corruption did not increase losses: %d vs %d",
			dirty.Losses, clean.Losses)
	}
	// The correction layer claws most of it back.
	p.CorrectionSuccess = 0.95
	corrected, err := Simulate(p, 3000, 23)
	if err != nil {
		t.Fatal(err)
	}
	if corrected.LossBySilent*2 >= dirty.LossBySilent && dirty.LossBySilent > 20 {
		t.Errorf("95%% correction left %d of %d silent losses",
			corrected.LossBySilent, dirty.LossBySilent)
	}
}

func TestFasterRebuildHelps(t *testing.T) {
	slow := baseParams()
	slow.Redundancy = 1
	slow.RebuildMBps = 25
	fast := slow
	fast.RebuildMBps = 400
	rs, err := Simulate(slow, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Simulate(fast, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rf.LossByDisks >= rs.LossByDisks && rs.LossByDisks > 10 {
		t.Errorf("faster rebuild did not reduce double-failure losses: %d vs %d",
			rf.LossByDisks, rs.LossByDisks)
	}
}
