package reliability

import (
	"math"
	"testing"
)

func baseParams() Params {
	return Params{
		Disks:        12,
		DiskTB:       16,
		MTTFHours:    1.2e6,
		RebuildMBps:  100,
		UREPerBit:    1e-14,
		Redundancy:   2,
		MissionYears: 5,
	}
}

func TestValidate(t *testing.T) {
	good := baseParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Disks = 2 },
		func(p *Params) { p.DiskTB = 0 },
		func(p *Params) { p.MTTFHours = -1 },
		func(p *Params) { p.RebuildMBps = 0 },
		func(p *Params) { p.UREPerBit = -1e-15 },
		func(p *Params) { p.Redundancy = 0 },
		func(p *Params) { p.Redundancy = 12 },
		func(p *Params) { p.MissionYears = 0 },
	}
	for i, mutate := range bad {
		p := baseParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
	if _, err := Simulate(baseParams(), 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRebuildHours(t *testing.T) {
	p := baseParams()
	// 16 TB at 100 MB/s = 1.6e5 seconds = ~44.4 hours.
	if got := p.RebuildHours(); math.Abs(got-44.44) > 0.1 {
		t.Errorf("rebuild hours = %.2f, want ~44.4", got)
	}
}

func TestRAID6BeatsRAID5(t *testing.T) {
	// The paper's opening claim, quantified: at modern capacities and URE
	// rates, RAID-5 loses data in a meaningful fraction of missions while
	// RAID-6 survives essentially always.
	r5, r6, err := CompareRAID5(baseParams(), 4000, 42)
	if err != nil {
		t.Fatal(err)
	}
	p5, p6 := r5.LossProbability(), r6.LossProbability()
	if p5 < 0.01 {
		t.Errorf("RAID-5 loss probability %.4f implausibly low for 16TB SATA disks", p5)
	}
	if p6 >= p5/10 {
		t.Errorf("RAID-6 (%.5f) not at least 10x safer than RAID-5 (%.5f)", p6, p5)
	}
	// With SATA-class URE rates, most RAID-5 losses come from UREs during
	// the unprotected rebuild, not from a second whole-disk failure.
	if r5.LossByURE <= r5.LossByDisks {
		t.Errorf("RAID-5 losses: %d by URE vs %d by disk — expected URE-dominated",
			r5.LossByURE, r5.LossByDisks)
	}
}

func TestMonotonicInURE(t *testing.T) {
	p := baseParams()
	p.Redundancy = 1
	p.UREPerBit = 0
	clean, err := Simulate(p, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	p.UREPerBit = 1e-14
	dirty, err := Simulate(p, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Losses <= clean.Losses {
		t.Errorf("URE rate did not increase losses: %d vs %d", dirty.Losses, clean.Losses)
	}
	if clean.LossByURE != 0 {
		t.Errorf("URE losses with zero URE rate: %d", clean.LossByURE)
	}
}

func TestFasterRebuildHelps(t *testing.T) {
	slow := baseParams()
	slow.Redundancy = 1
	slow.RebuildMBps = 25
	fast := slow
	fast.RebuildMBps = 400
	rs, err := Simulate(slow, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Simulate(fast, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rf.LossByDisks >= rs.LossByDisks && rs.LossByDisks > 10 {
		t.Errorf("faster rebuild did not reduce double-failure losses: %d vs %d",
			rf.LossByDisks, rs.LossByDisks)
	}
}
