package workload

import (
	"testing"

	"repro/internal/evenodd"
	"repro/internal/liberation"
	"repro/internal/raidsim"
)

func newArray(t *testing.T) *raidsim.Array {
	t.Helper()
	code, err := liberation.New(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := raidsim.New(code, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSequentialUsesFullStripeEncodes(t *testing.T) {
	a := newArray(t)
	stripeBytes := 5 * 5 * 64
	res, err := Run(a, Spec{Kind: Sequential, Ops: 16, WriteSize: stripeBytes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SmallWrites != 0 {
		t.Errorf("sequential full-stripe workload did %d small writes", res.SmallWrites)
	}
	if res.StripeEncodes != 16 {
		t.Errorf("stripe encodes = %d, want 16", res.StripeEncodes)
	}
	if res.BytesWritten != int64(16*stripeBytes) {
		t.Errorf("bytes written = %d", res.BytesWritten)
	}
}

func TestRandomSmallWriteAmplification(t *testing.T) {
	a := newArray(t)
	res, err := Run(a, Spec{Kind: RandomSmall, Ops: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SmallWrites != 200 {
		t.Errorf("small writes = %d, want 200", res.SmallWrites)
	}
	// Liberation floor: 1 data + ~2 parity elements per element write.
	wa := res.WriteAmplification(64)
	if wa < 2.9 || wa > 3.3 {
		t.Errorf("write amplification %.3f outside the Liberation band", wa)
	}
}

func TestZipfSkewAndComparison(t *testing.T) {
	a := newArray(t)
	res, err := Run(a, Spec{Kind: ZipfSmall, Ops: 300, Seed: 3, ZipfS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SmallWrites != 300 {
		t.Errorf("zipf small writes = %d, want 300", res.SmallWrites)
	}
	// EVENODD on the same workload must rewrite more parity elements
	// (update complexity ~3 vs ~2).
	eo, err := evenodd.New(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := raidsim.New(eo, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := Run(ea, Spec{Kind: ZipfSmall, Ops: 300, Seed: 3, ZipfS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	perOpLib := float64(res.ParityElemWrites) / 300
	perOpEO := float64(eres.ParityElemWrites) / 300
	if perOpLib >= perOpEO {
		t.Errorf("liberation parity writes/op %.2f not below EVENODD %.2f", perOpLib, perOpEO)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{}
	if r.DataMBps() != 0 || r.WriteAmplification(64) != 0 {
		t.Error("zero-value result helpers must return 0")
	}
	if Sequential.String() != "sequential" || RandomSmall.String() != "random-small" ||
		ZipfSmall.String() != "zipf-small" || Kind(9).String() != "kind(9)" {
		t.Error("Kind.String broken")
	}
	if _, err := Run(newArray(t), Spec{Kind: Kind(9), Ops: 1}); err == nil {
		t.Error("unknown kind accepted")
	}
}
