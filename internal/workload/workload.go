// Package workload generates the synthetic I/O patterns the paper's
// motivation appeals to — full-stripe sequential writes, uniformly random
// small writes, and Zipf-skewed small writes ("the dominant write
// operations in database systems and many big-data and data-intensive
// storage systems") — and replays them against a simulated RAID-6 array,
// reporting the throughput and write-amplification statistics that make
// update complexity visible at the system level.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/raidsim"
)

// Kind selects an access pattern.
type Kind int

const (
	// Sequential issues full-stripe-aligned streaming writes.
	Sequential Kind = iota
	// RandomSmall issues element-aligned writes at uniformly random
	// offsets.
	RandomSmall
	// ZipfSmall issues element-aligned writes with Zipf-skewed hot spots.
	ZipfSmall
)

func (k Kind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case RandomSmall:
		return "random-small"
	case ZipfSmall:
		return "zipf-small"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec describes a workload run.
type Spec struct {
	Kind Kind
	// Ops is the number of write operations to issue.
	Ops int
	// WriteSize is the bytes per operation (element-aligned kinds round
	// it up to whole elements; 0 means one element).
	WriteSize int
	// Seed drives the generator.
	Seed int64
	// ZipfS is the Zipf skew parameter (> 1; default 1.2).
	ZipfS float64
}

// Result reports what a run did and what it cost.
type Result struct {
	Spec             Spec
	Elapsed          time.Duration
	BytesWritten     int64
	ParityElemWrites uint64
	SmallWrites      uint64
	StripeEncodes    uint64
	XORs             uint64
}

// DataMBps returns the data write throughput in MB/s.
func (r Result) DataMBps() float64 {
	s := r.Elapsed.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.BytesWritten) / s / 1e6
}

// WriteAmplification returns (data + parity bytes)/(data bytes) for
// element-aligned workloads; the floor for any RAID-6 code is 3.0.
func (r Result) WriteAmplification(elemSize int) float64 {
	if r.BytesWritten == 0 {
		return 0
	}
	parityBytes := r.ParityElemWrites * uint64(elemSize)
	return float64(uint64(r.BytesWritten)+parityBytes) / float64(r.BytesWritten)
}

// Run replays the workload against the array and returns statistics
// gathered from the array's counters (which are reset first).
func Run(a *raidsim.Array, spec Spec) (Result, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	elem := a.ElemSize()
	size := spec.WriteSize
	if size <= 0 {
		size = elem
	}
	a.Stats = raidsim.Stats{}
	res := Result{Spec: spec}
	buf := make([]byte, size)
	elems := a.Capacity() / elem

	var nextOff func() int
	switch spec.Kind {
	case Sequential:
		cur := 0
		nextOff = func() int {
			off := cur
			if off+size > a.Capacity() {
				off, cur = 0, 0
			}
			cur = off + size
			return off
		}
	case RandomSmall:
		nextOff = func() int { return rng.Intn(elems-size/elem) * elem }
	case ZipfSmall:
		s := spec.ZipfS
		if s <= 1 {
			s = 1.2
		}
		z := rand.NewZipf(rng, s, 1, uint64(elems-size/elem))
		nextOff = func() int { return int(z.Uint64()) * elem }
	default:
		return res, fmt.Errorf("workload: unknown kind %v", spec.Kind)
	}

	start := time.Now()
	for op := 0; op < spec.Ops; op++ {
		rng.Read(buf)
		off := nextOff()
		if err := a.Write(off, buf); err != nil {
			return res, fmt.Errorf("workload: op %d at %d: %w", op, off, err)
		}
		res.BytesWritten += int64(len(buf))
	}
	res.Elapsed = time.Since(start)
	res.ParityElemWrites = a.Stats.ParityElemWrites
	res.SmallWrites = a.Stats.SmallWrites
	res.StripeEncodes = a.Stats.StripeEncodes
	res.XORs = a.Stats.Ops.XORs
	return res, nil
}
