package obs

import (
	"fmt"
	"strings"
)

// DecodeTrace is a structured record of how the paper's optimal decoder
// (Algorithms 2-4) planned the recovery of two erased data columns. The
// plan is data-independent — it depends only on (k, p, l, r) — so the
// trace doubles as a debugging aid for a live decode and as the artifact
// tests use to assert the paper's step-count claims.
type DecodeTrace struct {
	Code string `json:"code"` // code identity, e.g. "liberation(k=5,p=5)"
	K    int    `json:"k"`
	P    int    `json:"p"`

	// L and R are the erased data columns in the orientation Algorithm 2
	// settled on; Swapped reports that the cheaper flipped orientation
	// won (the paper's second decoding trick).
	L       int  `json:"l"`
	R       int  `json:"r"`
	Swapped bool `json:"swapped"`

	// Algorithm 2's starting point: the decoder seeds element (StartRow,
	// R) with the sum of RowSyndromes row syndromes and DiagSyndromes
	// anti-diagonal syndromes.
	StartRow      int `json:"start_row"`
	RowSyndromes  int `json:"row_syndromes"`
	DiagSyndromes int `json:"diag_syndromes"`

	// CommonReuse counts the known common expressions (pairs untouched by
	// the erasure) Algorithm 3 reused while building the syndromes.
	CommonReuse int `json:"common_reuse"`

	// Steps is Algorithm 4's zig-zag retrieval chain, one entry per loop
	// iteration; each iteration recovers one element of column L via a row
	// constraint and resolves one element of column R via an anti-diagonal.
	Steps []TraceStep `json:"steps"`

	// XORs and Copies are the compiled plan's total element operations —
	// the exact cost a Decode with this erasure pattern will report
	// through core.Ops.
	XORs   int `json:"xors"`
	Copies int `json:"copies"`
}

// TraceStep is one iteration of Algorithm 4's retrieval loop.
type TraceStep struct {
	Index int `json:"index"` // 0-based iteration number
	Row   int `json:"row"`   // the row x being resolved this iteration
	// Events names what the iteration did beyond the plain row/diagonal
	// alternation: pair-expression folds and resolutions.
	Events []string `json:"events,omitempty"`
}

// AddStep appends one zig-zag iteration. Nil-safe so the schedule builder
// can trace unconditionally.
func (t *DecodeTrace) AddStep(index, row int, events ...string) {
	if t == nil {
		return
	}
	t.Steps = append(t.Steps, TraceStep{Index: index, Row: row, Events: events})
}

// ReuseHit counts one common-expression reuse. Nil-safe.
func (t *DecodeTrace) ReuseHit() {
	if t != nil {
		t.CommonReuse++
	}
}

// StepCount returns the number of zig-zag iterations (p for a Liberation
// data-pair decode: one column-l element recovered per iteration).
func (t *DecodeTrace) StepCount() int {
	if t == nil {
		return 0
	}
	return len(t.Steps)
}

// SyndromeSum returns the size of the starting-point constraint set —
// the extra XORs the paper's near-optimal decode pays over the 2p(k-1)
// lower bound, before common-expression savings.
func (t *DecodeTrace) SyndromeSum() int {
	if t == nil {
		return 0
	}
	return t.RowSyndromes + t.DiagSyndromes
}

// String renders the trace for humans: header, starting point, then the
// zig-zag chain one step per line.
func (t *DecodeTrace) String() string {
	if t == nil {
		return "decode-trace(nil)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "decode trace: %s erased=(%d,%d)", t.Code, t.L, t.R)
	if t.Swapped {
		b.WriteString(" [orientation swapped]")
	}
	fmt.Fprintf(&b, "\n  starting point: element (%d,%d) = sum of %d row + %d anti-diagonal syndromes\n",
		t.StartRow, t.R, t.RowSyndromes, t.DiagSyndromes)
	fmt.Fprintf(&b, "  common expressions reused: %d\n", t.CommonReuse)
	fmt.Fprintf(&b, "  plan cost: %d XORs, %d copies (lower bound %d)\n",
		t.XORs, t.Copies, 2*t.P*(t.K-1))
	for _, s := range t.Steps {
		fmt.Fprintf(&b, "  step %2d: row %2d", s.Index, s.Row)
		if len(s.Events) > 0 {
			fmt.Fprintf(&b, "  %s", strings.Join(s.Events, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
