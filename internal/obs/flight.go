package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
)

// DefaultFlightSize is the ring capacity used when NewFlightRecorder is
// given a non-positive size.
const DefaultFlightSize = 256

// A FlightRecorder keeps the last N events in a fixed-size in-memory
// ring — the storage equivalent of an aircraft's flight recorder. When
// a recovery fails, the tail of the ring is the causal record of what
// the operation tried (every retry, quarantine, heal, and fallback),
// attached to the typed error and served over /debug/flight, so a
// post-mortem needs no live process and no external log pipeline.
//
// Writes are one short critical section (no allocation); Snapshot copies
// under the same lock, so a reader can never observe a torn record.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	n     int    // records currently held
	next  int    // ring write cursor
	total uint64 // lifetime records, including overwritten ones
}

// NewFlightRecorder returns a recorder holding the last size events
// (DefaultFlightSize if size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{buf: make([]Event, size)}
}

// RecordEvent implements EventSink.
func (r *FlightRecorder) RecordEvent(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// Size returns the ring capacity.
func (r *FlightRecorder) Size() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns the lifetime record count (including overwritten
// events).
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns a consistent oldest-first copy of the ring's
// contents. Safe to call concurrently with writers.
func (r *FlightRecorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Tail returns the recorder's events for one trace (every trace when
// trace is zero), oldest first, keeping only the last max when max > 0.
func (r *FlightRecorder) Tail(trace TraceID, max int) []Event {
	events := r.Snapshot()
	if trace != 0 {
		want := trace.String()
		kept := events[:0]
		for _, ev := range events {
			if ev.Trace == want {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	if max > 0 && len(events) > max {
		events = events[len(events)-max:]
	}
	return events
}

// flightDump is the JSON shape FlightHandler serves.
type flightDump struct {
	Size   int     `json:"size"`
	Total  uint64  `json:"total"`
	Events []Event `json:"events"`
}

// FlightHandler serves the recorder's current contents as indented
// JSON: {"size", "total", "events"}. Query parameters: ?trace=<hex id>
// filters to one trace, ?n=<count> keeps only the newest n events.
func FlightHandler(r *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var trace TraceID
		if t := req.URL.Query().Get("trace"); t != "" {
			id, err := strconv.ParseUint(t, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
				return
			}
			trace = TraceID(id)
		}
		max := 0
		if n := req.URL.Query().Get("n"); n != "" {
			v, err := strconv.Atoi(n)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			max = v
		}
		dump := flightDump{Size: r.Size(), Total: r.Total(), Events: r.Tail(trace, max)}
		if dump.Events == nil {
			dump.Events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(dump)
	})
}
