package obs

import "repro/internal/core"

// Observable is the capability interface for erasure codes (and other
// components) that can attach a metrics registry. It is the typed form
// of what the production stack used to reach through a liberation-only
// downcast: any code that implements it gets per-operation spans in the
// registry the stack runs with.
//
// The interface lives here rather than in core because its method is
// typed on *Registry and obs already depends on core for the Ops
// accounting — core cannot import obs back.
type Observable interface {
	Instrument(reg *Registry)
}

// InstrumentCode attaches reg to code when the code is Observable,
// reporting whether instrumentation took. Nil registries and
// non-Observable codes are no-ops — callers consult the capability, they
// never require it.
func InstrumentCode(code any, reg *Registry) bool {
	o, ok := code.(Observable)
	if !ok || reg == nil {
		return false
	}
	o.Instrument(reg)
	return true
}

// Observed runs fn with a private Ops, merges the counts into the
// caller's ops, and records a span under name carrying latency, bytes,
// work units, and the exact element-operation counts. It is the shared
// span-wrapping helper behind every code package's Instrument support; a
// nil registry runs fn directly with no overhead.
func Observed(reg *Registry, name string, bytes, units int, ops *core.Ops, fn func(*core.Ops) error) error {
	if reg == nil {
		return fn(ops)
	}
	sp := StartSpan(reg, name)
	var local core.Ops
	err := fn(&local)
	ops.Add(local)
	sp.Bytes(bytes).Units(units).Ops(local).End(err)
	return err
}
