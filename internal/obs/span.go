package obs

import (
	"time"

	"repro/internal/core"
)

// A Span measures one operation: wall time, bytes processed, work units
// (parity or recovered elements) and the element-operation counts of
// core.Ops. Ending a span records into the registry under the span's
// name, using the naming convention Snapshot reassembles:
//
//	<name>.seconds  histogram  operation latency
//	<name>.calls    counter    completed operations
//	<name>.errors   counter    operations that returned an error
//	<name>.bytes    counter    data bytes processed
//	<name>.units    counter    work units (e.g. parity elements written)
//	<name>.xors     counter    element XORs (the paper's cost metric)
//	<name>.copies   counter    element copies (free in the cost model)
//	<name>.zeros    counter    element zeroings (memory traffic only)
//
// A span started on a nil registry is a valid no-op, so instrumentation
// can be left in place unconditionally.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
	bytes uint64
	units uint64
	ops   core.Ops
}

// StartSpan begins a span. The returned span records nothing if r is nil.
func StartSpan(r *Registry, name string) *Span {
	s := &Span{reg: r, name: name}
	if r != nil {
		s.start = time.Now()
	}
	return s
}

// Bytes sets the data bytes the operation processed.
func (s *Span) Bytes(n int) *Span {
	if n > 0 {
		s.bytes = uint64(n)
	}
	return s
}

// Units sets the operation's work-unit count — parity elements written for
// an encode, missing elements recovered for a decode — the denominator of
// the paper's XORs-per-bit metric.
func (s *Span) Units(n int) *Span {
	if n > 0 {
		s.units = uint64(n)
	}
	return s
}

// Ops accumulates element-operation counts into the span.
func (s *Span) Ops(o core.Ops) *Span {
	s.ops.Add(o)
	return s
}

// End stops the span and records it; err != nil additionally bumps the
// error counter. It returns the measured duration (zero for no-op spans).
func (s *Span) End(err error) time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	r := s.reg
	r.Histogram(s.name+".seconds", LatencyBuckets).ObserveDuration(d)
	r.Counter(s.name + ".calls").Inc()
	if err != nil {
		r.Counter(s.name + ".errors").Inc()
	}
	if s.bytes > 0 {
		r.Counter(s.name + ".bytes").Add(s.bytes)
	}
	if s.units > 0 {
		r.Counter(s.name + ".units").Add(s.units)
	}
	if s.ops.XORs > 0 {
		r.Counter(s.name + ".xors").Add(s.ops.XORs)
	}
	if s.ops.Copies > 0 {
		r.Counter(s.name + ".copies").Add(s.ops.Copies)
	}
	if s.ops.Zeros > 0 {
		r.Counter(s.name + ".zeros").Add(s.ops.Zeros)
	}
	return d
}
