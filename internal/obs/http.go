package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler that serves the registry's current
// snapshot at the handler's root. The format is chosen per request:
// Prometheus text exposition by default (what a scraper expects),
// indented JSON when the query says ?format=json or the Accept header
// asks for application/json, and the human text report for ?format=text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		format := req.URL.Query().Get("format")
		if format == "" && req.Header.Get("Accept") == "application/json" {
			format = "json"
		}
		switch format {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			if err := snap.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			snap.WritePrometheus(w)
		}
	})
}

// NewMux returns an http.ServeMux preloaded with the standard
// observability surface of a storage server:
//
//	/metrics        registry snapshot (Prometheus text, ?format=json|text)
//	/debug/pprof/*  the Go runtime profiler endpoints
//	/healthz        liveness probe
//
// The caller mounts additional handlers as needed and serves the mux.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}
