package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Label is one dimension of a metric series: a key (from the small
// fixed taxonomy — node, disk, code, op, worker — see docs/METRICS.json)
// and a value drawn from a bounded set (a disk index, a code name).
// Labels are what turn "raid.scrub.repairs.disk.3" string-surgery into a
// first-class series raid.scrub.repairs{disk="3"} that the monitoring
// plane can select, group, and attribute without parsing names.
type Label struct {
	Key   string
	Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Li builds a label with an integer value (the common case: node, disk
// and worker indices).
func Li(key string, v int) Label { return Label{Key: key, Value: strconv.Itoa(v)} }

// DefaultLabelCap is the per-metric cardinality budget: once a metric
// has this many distinct label sets, further sets collapse into an
// "other" child (every value replaced by "other") and each collapsed
// observation increments the obs.labels.dropped counter. The cap keeps a
// mis-labelled emitter (a path or UUID used as a label value) from
// growing the registry, the time-series store, and the exposition
// without bound.
const DefaultLabelCap = 64

// LabelsDroppedCounter is the counter incremented once per observation
// that overflowed a metric's cardinality budget and was collapsed into
// its "other" series.
const LabelsDroppedCounter = "obs.labels.dropped"

// sortLabels orders labels by key (then value) in place — no allocation,
// so the variadic hot path stays allocation-free.
func sortLabels(ls []Label) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && lessLabel(ls[j], ls[j-1]); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

func lessLabel(a, b Label) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Value < b.Value
}

func equalLabels(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HasLabels reports whether labels (sorted or not) contains every label
// in match.
func HasLabels(labels, match []Label) bool {
	for _, m := range match {
		found := false
		for _, l := range labels {
			if l == m {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SeriesName renders the canonical series identity: the bare base name
// when labels is empty, otherwise base{k1="v1",k2="v2"} with keys in
// sorted order. This string is the series' key everywhere downstream —
// the snapshot maps, the time-series store, the query API.
func SeriesName(base string, labels []Label) string {
	if len(labels) == 0 {
		return base
	}
	sorted := append([]Label(nil), labels...)
	sortLabels(sorted)
	var b strings.Builder
	b.Grow(len(base) + 16*len(sorted))
	b.WriteString(base)
	writeLabelSet(&b, sorted)
	return b.String()
}

func writeLabelSet(b *strings.Builder, labels []Label) {
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, `"\`) {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`)
	return r.Replace(v)
}

func unescapeLabelValue(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`)
	return r.Replace(v)
}

// SplitSeries parses a canonical series name back into its base and
// labels. A name without braces returns (name, nil). The inverse of
// SeriesName for well-formed names; a malformed brace section is
// returned un-split.
func SplitSeries(series string) (base string, labels []Label) {
	i := strings.IndexByte(series, '{')
	if i < 0 || !strings.HasSuffix(series, "}") {
		return series, nil
	}
	base = series[:i]
	body := series[i+1 : len(series)-1]
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			return series, nil
		}
		key := body[:eq]
		rest := body[eq+2:]
		end := -1
		for j := 0; j < len(rest); j++ {
			if rest[j] == '\\' {
				j++
				continue
			}
			if rest[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return series, nil
		}
		labels = append(labels, Label{Key: key, Value: unescapeLabelValue(rest[:end])})
		body = rest[end+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
		} else if len(body) > 0 {
			return series, nil
		}
	}
	return base, labels
}

// SeriesSuffix appends a structural suffix to a series name, keeping the
// label set terminal: h{node="3"} + ".count" → h.count{node="3"}. Used
// by the time-series store for the derived histogram series.
func SeriesSuffix(series, suffix string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i] + suffix + series[i:]
	}
	return series + suffix
}

// BoundLabel renders a histogram bucket bound the way the Prometheus
// exposition and the derived .le.<bound> series spell it.
func BoundLabel(v float64) string { return trimFloat(v) }

// family is the interned label-set table of one metric name: a flat
// list scanned under a read lock — cardinality is capped, so the scan is
// short and allocation-free.
type family[M any] struct {
	mu      sync.RWMutex
	entries []famEntry[M]
}

type famEntry[M any] struct {
	labels []Label // sorted
	metric M
}

// find returns the metric for the given sorted label set, allocation-free.
func (f *family[M]) find(labels []Label) (m M, ok bool) {
	f.mu.RLock()
	for i := range f.entries {
		if equalLabels(f.entries[i].labels, labels) {
			m, ok = f.entries[i].metric, true
			break
		}
	}
	f.mu.RUnlock()
	return m, ok
}

// intern returns the metric for the sorted label set, creating it with
// mk on first use. When the family is at the cardinality cap, the set
// collapses into the family's "other" child (same keys, every value
// "other"); collapsed reports that.
func (f *family[M]) intern(labels []Label, cap int, mk func() M) (m M, collapsed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.entries {
		if equalLabels(f.entries[i].labels, labels) {
			return f.entries[i].metric, false
		}
	}
	if len(f.entries) >= cap && !isOtherSet(labels) {
		other := make([]Label, len(labels))
		for i, l := range labels {
			other[i] = Label{Key: l.Key, Value: LabelOther}
		}
		for i := range f.entries {
			if equalLabels(f.entries[i].labels, other) {
				return f.entries[i].metric, true
			}
		}
		m = mk()
		f.entries = append(f.entries, famEntry[M]{labels: other, metric: m})
		return m, true
	}
	cp := make([]Label, len(labels))
	copy(cp, labels)
	m = mk()
	f.entries = append(f.entries, famEntry[M]{labels: cp, metric: m})
	return m, false
}

// LabelOther is the value every label collapses to once a metric
// overflows its cardinality budget.
const LabelOther = "other"

func isOtherSet(labels []Label) bool {
	for _, l := range labels {
		if l.Value != LabelOther {
			return false
		}
	}
	return len(labels) > 0
}

// snapshotEntries copies the family's entry list (metric pointers, label
// slices shared — both are immutable once interned).
func (f *family[M]) snapshotEntries() []famEntry[M] {
	f.mu.RLock()
	out := make([]famEntry[M], len(f.entries))
	copy(out, f.entries)
	f.mu.RUnlock()
	return out
}

// labelCap resolves the registry's per-metric cardinality budget.
func (r *Registry) labelCap() int {
	if r.labelCapacity > 0 {
		return r.labelCapacity
	}
	return DefaultLabelCap
}

// SetLabelCap overrides the per-metric label-set budget (DefaultLabelCap
// when unset or n <= 0). Call before emitters start; the cap is read
// without synchronization on the slow path only.
func (r *Registry) SetLabelCap(n int) {
	if r != nil {
		r.labelCapacity = n
	}
}

// counterFamily returns the labeled-counter family for name, creating it
// on first use.
func (r *Registry) counterFamily(name string) *family[*Counter] {
	r.mu.RLock()
	f := r.cfam[name]
	r.mu.RUnlock()
	if f != nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f = r.cfam[name]; f == nil {
		f = &family[*Counter]{}
		r.cfam[name] = f
	}
	return f
}

func (r *Registry) gaugeFamily(name string) *family[*Gauge] {
	r.mu.RLock()
	f := r.gfam[name]
	r.mu.RUnlock()
	if f != nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f = r.gfam[name]; f == nil {
		f = &family[*Gauge]{}
		r.gfam[name] = f
	}
	return f
}

func (r *Registry) histFamily(name string) *family[*Histogram] {
	r.mu.RLock()
	f := r.hfam[name]
	r.mu.RUnlock()
	if f != nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f = r.hfam[name]; f == nil {
		f = &family[*Histogram]{}
		r.hfam[name] = f
	}
	return f
}

// CounterWith returns the counter child of name for the given label set,
// interning the set on first use. The hit path is allocation-free: the
// variadic slice stays on the caller's stack, labels are sorted in
// place, and the family scan compares without copying. With no labels it
// is Registry.Counter. A nil registry returns nil (all Counter methods
// are nil-safe).
//
// Overflow: once name holds Registry.SetLabelCap distinct sets, new sets
// collapse into the "other" child and each such call increments
// obs.labels.dropped.
func (r *Registry) CounterWith(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		return r.Counter(name)
	}
	sortLabels(labels)
	f := r.counterFamily(name)
	if c, ok := f.find(labels); ok {
		return c
	}
	c, collapsed := f.intern(labels, r.labelCap(), func() *Counter { return &Counter{} })
	if collapsed {
		r.Counter(LabelsDroppedCounter).Inc()
	}
	return c
}

// GaugeWith is CounterWith for gauges.
func (r *Registry) GaugeWith(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		return r.Gauge(name)
	}
	sortLabels(labels)
	f := r.gaugeFamily(name)
	if g, ok := f.find(labels); ok {
		return g
	}
	g, collapsed := f.intern(labels, r.labelCap(), func() *Gauge { return &Gauge{} })
	if collapsed {
		r.Counter(LabelsDroppedCounter).Inc()
	}
	return g
}

// HistogramWith is CounterWith for histograms; bounds apply on first use
// of each child (children of one family should share bounds so the
// family aggregate is well-defined).
func (r *Registry) HistogramWith(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		return r.Histogram(name, bounds)
	}
	sortLabels(labels)
	f := r.histFamily(name)
	if h, ok := f.find(labels); ok {
		return h
	}
	h, collapsed := f.intern(labels, r.labelCap(), func() *Histogram { return newHistogram(bounds) })
	if collapsed {
		r.Counter(LabelsDroppedCounter).Inc()
	}
	return h
}

// CountWith is the nil-safe labeled counter increment.
func (r *Registry) CountWith(name string, n uint64, labels ...Label) {
	if r != nil {
		r.CounterWith(name, labels...).Add(n)
	}
}

// SetGaugeWith is the nil-safe labeled gauge store.
func (r *Registry) SetGaugeWith(name string, v float64, labels ...Label) {
	if r != nil {
		r.GaugeWith(name, labels...).Set(v)
	}
}

// AddGaugeWith is the nil-safe labeled gauge add.
func (r *Registry) AddGaugeWith(name string, d float64, labels ...Label) {
	if r != nil {
		r.GaugeWith(name, labels...).Add(d)
	}
}

// ObserveWith is the nil-safe labeled histogram observation.
func (r *Registry) ObserveWith(name string, bounds []float64, v float64, labels ...Label) {
	if r != nil {
		r.HistogramWith(name, bounds, labels...).Observe(v)
	}
}

// sortedLabelKeys returns the sorted distinct keys of a label set.
func sortedLabelKeys(labels []Label) []string {
	keys := make([]string, 0, len(labels))
	for _, l := range labels {
		keys = append(keys, l.Key)
	}
	sort.Strings(keys)
	return keys
}
