package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Count("enc.calls", 2)
	r.Count("enc.xors", 80)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(url string, hdr map[string]string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", url, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get(srv.URL, nil)
	if !strings.Contains(ct, "version=0.0.4") || !strings.Contains(body, "enc_xors 80") {
		t.Errorf("default format should be prometheus text, got %q:\n%s", ct, body)
	}

	body, ct = get(srv.URL+"?format=json", nil)
	if !strings.Contains(ct, "application/json") {
		t.Errorf("json content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if snap.Spans["enc"].XORs != 80 {
		t.Errorf("json snapshot wrong: %+v", snap.Spans)
	}

	body, _ = get(srv.URL, map[string]string{"Accept": "application/json"})
	if !json.Valid([]byte(body)) {
		t.Error("Accept: application/json must yield JSON")
	}

	body, _ = get(srv.URL+"?format=text", nil)
	if !strings.Contains(body, "enc") {
		t.Errorf("text format missing metrics:\n%s", body)
	}
}

func TestNewMuxSurface(t *testing.T) {
	r := NewRegistry()
	r.Count("x", 1)
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":           "x 1",
		"/healthz":           "ok",
		"/debug/pprof/":      "profiles",
		"/debug/pprof/heap":  "heap",
		"/debug/pprof/block": "block",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
			continue
		}
		if path == "/debug/pprof/heap" || path == "/debug/pprof/block" {
			continue // binary profile; reaching it with 200 is the assertion
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("%s: body missing %q", path, want)
		}
	}
}
