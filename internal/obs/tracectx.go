package obs

import (
	"context"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// This file is the causal half of the observability layer. The metrics
// Span answers "how much, how fast" in aggregate; the types here answer
// "why did THIS operation do what it did": every recovery decision —
// each retry, quarantine, CorrectColumn heal, erasure fallback — becomes
// a child span or event of one request-scoped trace, carried through the
// stack via context.Context and fanned out to pluggable sinks (the JSON
// event log and the flight recorder).

// A TraceID identifies one causally-related operation tree (one decode,
// one repair, one fault episode). Zero means "no trace".
type TraceID uint64

func (id TraceID) String() string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// A SpanID identifies one span within its trace. Zero means "no span"
// (the root span's parent).
type SpanID uint32

func (id SpanID) String() string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%08x", uint32(id))
}

// Attr is a typed event attribute; use the slog constructors
// (slog.String, slog.Int, ...) to build them.
type Attr = slog.Attr

// An Event is one record of the causal stream: a completed span (Dur >
// 0 possible) or a point event (a retry, an injected fault, a
// quarantine decision). Events are plain data — safe to copy, marshal,
// and hold after the trace has moved on.
type Event struct {
	Time   time.Time      `json:"time"`
	Trace  string         `json:"trace"`
	Span   string         `json:"span,omitempty"`
	Parent string         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Level  slog.Level     `json:"level"`
	Dur    time.Duration  `json:"dur_ns,omitempty"`
	Err    string         `json:"err,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// An EventSink receives every event of every trace routed through a
// Tracer. Implementations must be safe for concurrent use.
type EventSink interface {
	RecordEvent(Event)
}

// A Tracer mints trace IDs and fans events out to its sinks. It holds
// no metrics registry: spans carry their own (see StartOp), so causal
// attribution and metric accounting stay independently optional. A nil
// *Tracer is valid and inert.
type Tracer struct {
	sinks []EventSink
	base  uint64
	seq   atomic.Uint64
}

// NewTracer builds a tracer over the given sinks (nil sinks are
// skipped). Trace IDs are unique per process; call Seed for
// reproducible IDs in tests.
func NewTracer(sinks ...EventSink) *Tracer {
	t := &Tracer{base: uint64(time.Now().UnixNano())}
	for _, s := range sinks {
		if s != nil {
			t.sinks = append(t.sinks, s)
		}
	}
	return t
}

// Seed fixes the trace-ID sequence base so tests get deterministic IDs.
func (t *Tracer) Seed(base uint64) { t.base = base }

// Flight returns the tracer's flight recorder sink, if it has one.
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	for _, s := range t.sinks {
		if r, ok := s.(*FlightRecorder); ok {
			return r
		}
	}
	return nil
}

func (t *Tracer) record(ev Event) {
	if t == nil {
		return
	}
	for _, s := range t.sinks {
		s.RecordEvent(ev)
	}
}

// newTrace allocates trace state for one operation tree.
func (t *Tracer) newTrace() *traceState {
	n := t.seq.Add(1)
	// splitmix-style spread so consecutive traces don't share prefixes.
	return &traceState{tracer: t, id: TraceID(t.base ^ (n * 0x9e3779b97f4a7c15))}
}

// traceState is the per-trace shared state: the ID and the span-ID
// allocator. It travels inside every SpanCtx of the trace.
type traceState struct {
	tracer *Tracer
	id     TraceID
	next   atomic.Uint32
}

// ctxKey carries the current *SpanCtx through a context.Context.
type ctxKey struct{}

// A SpanCtx is one node of a trace: it wraps a metrics Span (so ending
// it records the usual <name>.seconds/.calls/.xors families) and, when
// a trace is active, emits a completion Event carrying the span's
// typed attributes to the tracer's sinks. The zero-valued/inert form
// (no trace, no registry) makes every method a no-op, so call sites
// never guard. A SpanCtx is owned by one goroutine; use Emit from
// workers instead of sharing one.
type SpanCtx struct {
	ts     *traceState
	metric *Span
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
}

// StartOp begins a span named name as a child of ctx's current span.
// When ctx carries no trace, a new trace is started on tr — or, if tr
// is nil too, the span is causally inert but still records metrics
// into reg. This is the one entry point the data-path operations use:
// top-level calls root a trace, nested calls chain onto it.
func StartOp(ctx context.Context, tr *Tracer, reg *Registry, name string, attrs ...Attr) (context.Context, *SpanCtx) {
	if ctx == nil {
		ctx = context.Background()
	}
	parent, _ := ctx.Value(ctxKey{}).(*SpanCtx)
	var ts *traceState
	var parentID SpanID
	if parent != nil && parent.ts != nil {
		ts = parent.ts
		parentID = parent.id
	} else if tr != nil {
		ts = tr.newTrace()
	}
	s := &SpanCtx{
		ts:     ts,
		metric: StartSpan(reg, name),
		parent: parentID,
		name:   name,
		attrs:  attrs,
	}
	if ts != nil {
		s.id = SpanID(ts.next.Add(1))
		s.start = time.Now()
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// StartSpanCtx is StartOp without the trace-rooting fallback: a child
// span when ctx has a trace, an inert metrics-only span otherwise.
func StartSpanCtx(ctx context.Context, reg *Registry, name string, attrs ...Attr) (context.Context, *SpanCtx) {
	return StartOp(ctx, nil, reg, name, attrs...)
}

// TraceID returns the span's trace ID (zero when inert).
func (s *SpanCtx) TraceID() TraceID {
	if s == nil || s.ts == nil {
		return 0
	}
	return s.ts.id
}

// Attr appends typed attributes to the span; they are carried on its
// completion event.
func (s *SpanCtx) Attr(attrs ...Attr) *SpanCtx {
	if s != nil && s.ts != nil {
		s.attrs = append(s.attrs, attrs...)
	}
	return s
}

// Bytes sets the metric span's processed-byte count.
func (s *SpanCtx) Bytes(n int) *SpanCtx {
	if s != nil {
		s.metric.Bytes(n)
	}
	return s
}

// Units sets the metric span's work-unit count.
func (s *SpanCtx) Units(n int) *SpanCtx {
	if s != nil {
		s.metric.Units(n)
	}
	return s
}

// Ops accumulates element-operation counts into the metric span.
func (s *SpanCtx) Ops(o core.Ops) *SpanCtx {
	if s != nil {
		s.metric.Ops(o)
	}
	return s
}

// End finishes the span: the metric span records its families, and, if
// a trace is active, the completion event (name, duration, attributes,
// error) reaches every sink. Errors raise the event to slog.LevelError.
func (s *SpanCtx) End(err error) time.Duration {
	if s == nil {
		return 0
	}
	d := s.metric.End(err)
	if s.ts == nil {
		return d
	}
	dur := time.Since(s.start)
	ev := Event{
		Time:   time.Now(),
		Trace:  s.ts.id.String(),
		Span:   s.id.String(),
		Parent: s.parent.String(),
		Name:   s.name,
		Level:  slog.LevelInfo,
		Dur:    dur,
		Attrs:  attrMap(s.attrs),
	}
	if err != nil {
		ev.Level = slog.LevelError
		ev.Err = err.Error()
	}
	s.ts.tracer.record(ev)
	return dur
}

// Emit records a point event as a child of ctx's current span: it gets
// its own span ID (so sinks see it as a zero-duration child span) and
// the current span as parent. A context without an active trace drops
// the event — instrumentation stays unconditional.
func Emit(ctx context.Context, level slog.Level, name string, attrs ...Attr) {
	EmitErr(ctx, level, name, nil, attrs...)
}

// EmitErr is Emit carrying an error cause.
func EmitErr(ctx context.Context, level slog.Level, name string, err error, attrs ...Attr) {
	if ctx == nil {
		return
	}
	sc, _ := ctx.Value(ctxKey{}).(*SpanCtx)
	if sc == nil || sc.ts == nil {
		return
	}
	ts := sc.ts
	ev := Event{
		Time:   time.Now(),
		Trace:  ts.id.String(),
		Span:   SpanID(ts.next.Add(1)).String(),
		Parent: sc.id.String(),
		Name:   name,
		Level:  level,
		Attrs:  attrMap(attrs),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	ts.tracer.record(ev)
}

// ContextTraceID returns the trace ID ctx carries (zero if none).
func ContextTraceID(ctx context.Context) TraceID {
	if ctx == nil {
		return 0
	}
	sc, _ := ctx.Value(ctxKey{}).(*SpanCtx)
	if sc == nil {
		return 0
	}
	return sc.TraceID()
}

// ContextFlight returns the flight recorder of the tracer whose trace
// ctx carries, if both exist.
func ContextFlight(ctx context.Context) *FlightRecorder {
	if ctx == nil {
		return nil
	}
	sc, _ := ctx.Value(ctxKey{}).(*SpanCtx)
	if sc == nil || sc.ts == nil {
		return nil
	}
	return sc.ts.tracer.Flight()
}

// attrMap resolves a typed attribute list into the Event's plain-data
// form.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value.Resolve().Any()
	}
	return m
}
