package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
)

// TestEventLogJSON checks the JSON-lines schema: one object per event,
// trace-correlated, with the typed attributes flattened in.
func TestEventLogJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewEventLog(&buf, slog.LevelInfo))
	tr.Seed(0)

	ctx, sp := StartOp(context.Background(), tr, nil, "shard.decode", slog.Int("k", 4))
	Emit(ctx, slog.LevelWarn, "shard.quarantine", slog.Int("shard", 1), slog.String("state", "corrupt"))
	sp.End(errors.New("degraded"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	var quarantine, decode map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &quarantine); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &decode); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if quarantine["msg"] != "shard.quarantine" || quarantine["level"] != "WARN" {
		t.Errorf("quarantine line = %v", quarantine)
	}
	if quarantine["shard"] != float64(1) || quarantine["state"] != "corrupt" {
		t.Errorf("quarantine attrs missing: %v", quarantine)
	}
	if quarantine["trace"] != sp.TraceID().String() || decode["trace"] != sp.TraceID().String() {
		t.Errorf("events not trace-correlated: %v / %v", quarantine["trace"], decode["trace"])
	}
	if quarantine["parent"] != decode["span"] {
		t.Errorf("quarantine parent %v, want decode span %v", quarantine["parent"], decode["span"])
	}
	if decode["err"] != "degraded" || decode["level"] != "ERROR" {
		t.Errorf("decode line = %v", decode)
	}
	if decode["k"] != float64(4) {
		t.Errorf("decode attrs missing k: %v", decode)
	}
	if _, ok := decode["dur"]; !ok {
		t.Errorf("decode line has no duration: %v", decode)
	}
}

// TestEventLogLevel drops events below the minimum level.
func TestEventLogLevel(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf, slog.LevelWarn)
	log.RecordEvent(Event{Name: "info", Level: slog.LevelInfo})
	log.RecordEvent(Event{Name: "warn", Level: slog.LevelWarn})
	sc := bufio.NewScanner(&buf)
	var names []string
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		names = append(names, m["msg"].(string))
	}
	if len(names) != 1 || names[0] != "warn" {
		t.Errorf("logged %v, want [warn]", names)
	}
}

// TestEventLogDeterministicAttrOrder: equal events render byte-equal
// lines (sorted attribute keys), so logs diff cleanly.
func TestEventLogDeterministicAttrOrder(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		log := NewEventLog(&buf, slog.LevelInfo)
		ev := Event{
			Name: "x", Level: slog.LevelInfo, Trace: "0000000000000001",
			Attrs: map[string]any{"zeta": 1, "alpha": 2, "mid": 3},
		}
		log.RecordEvent(ev)
		// Strip the timestamp, which legitimately differs.
		line := buf.String()
		return line[strings.Index(line, `"msg"`):]
	}
	if a, b := render(), render(); a != b {
		t.Errorf("same event rendered differently:\n%s\n%s", a, b)
	}
}
