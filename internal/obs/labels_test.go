package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestSeriesNameRoundTrip(t *testing.T) {
	cases := []struct {
		base   string
		labels []Label
		want   string
	}{
		{"raid.scrub.repairs", []Label{L("disk", "3")}, `raid.scrub.repairs{disk="3"}`},
		{"x", []Label{L("node", "1"), L("code", "liberation")}, `x{code="liberation",node="1"}`},
		{"plain", nil, "plain"},
		{"esc", []Label{L("op", `a"b\c`)}, `esc{op="a\"b\\c"}`},
	}
	for _, c := range cases {
		got := SeriesName(c.base, c.labels)
		if got != c.want {
			t.Errorf("SeriesName(%q, %v) = %q, want %q", c.base, c.labels, got, c.want)
		}
		base, labels := SplitSeries(got)
		if base != c.base {
			t.Errorf("SplitSeries(%q) base = %q, want %q", got, base, c.base)
		}
		if len(labels) != len(c.labels) {
			t.Fatalf("SplitSeries(%q) labels = %v, want %d labels", got, labels, len(c.labels))
		}
		for _, l := range c.labels {
			if !HasLabels(labels, []Label{l}) {
				t.Errorf("SplitSeries(%q) labels %v missing %v", got, labels, l)
			}
		}
	}
}

func TestSeriesSuffix(t *testing.T) {
	if got := SeriesSuffix(`h{node="3"}`, ".count"); got != `h.count{node="3"}` {
		t.Errorf("SeriesSuffix = %q", got)
	}
	if got := SeriesSuffix("h", ".count"); got != "h.count" {
		t.Errorf("SeriesSuffix = %q", got)
	}
}

func TestLabeledCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.CounterWith("m", L("node", "1"))
	b := r.CounterWith("m", L("node", "1"))
	if a != b {
		t.Fatal("same label set interned twice")
	}
	// Key order must not matter.
	x := r.CounterWith("m", L("node", "1"), L("op", "read"))
	y := r.CounterWith("m", L("op", "read"), L("node", "1"))
	if x != y {
		t.Fatal("label order changed identity")
	}
	if c := r.CounterWith("m", L("node", "2")); c == a || c == x {
		t.Fatal("distinct label sets shared a child")
	}
	// No labels degrades to the plain counter.
	if r.CounterWith("m") != r.Counter("m") {
		t.Fatal("empty label set is not the unlabeled counter")
	}
}

// TestLabeledCounterHotPathAllocs is the satellite guarantee: a labeled
// counter increment with an already-interned label set is allocation
// free — the variadic label slice stays on the stack, lookup compares
// in place.
func TestLabeledCounterHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("hot", L("node", "3")).Inc() // intern
	allocs := testing.AllocsPerRun(1000, func() {
		r.CounterWith("hot", L("node", "3")).Inc()
	})
	if allocs != 0 {
		t.Errorf("labeled counter hot path allocates %.1f/op, want 0", allocs)
	}
	r.HistogramWith("hoth", LatencyBuckets, L("node", "3")).Observe(1e-4)
	allocs = testing.AllocsPerRun(1000, func() {
		r.HistogramWith("hoth", LatencyBuckets, L("node", "3")).Observe(1e-4)
	})
	if allocs != 0 {
		t.Errorf("labeled histogram hot path allocates %.1f/op, want 0", allocs)
	}
}

func TestLabelCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetLabelCap(4)
	for i := 0; i < 4; i++ {
		r.CountWith("capped", 1, Li("node", i))
	}
	if v := r.Counter(LabelsDroppedCounter).Value(); v != 0 {
		t.Fatalf("dropped = %d before overflow", v)
	}
	// Overflow: three observations beyond the cap, two distinct sets.
	r.CountWith("capped", 1, Li("node", 100))
	r.CountWith("capped", 1, Li("node", 101))
	r.CountWith("capped", 1, Li("node", 100))
	if v := r.Counter(LabelsDroppedCounter).Value(); v != 3 {
		t.Fatalf("obs.labels.dropped = %d, want 3", v)
	}
	s := r.Snapshot()
	other := `capped{node="other"}`
	if s.Counters[other] != 3 {
		t.Fatalf("overflow child %s = %d, want 3 (counters: %v)", other, s.Counters[other], s.Counters)
	}
	if _, leaked := s.Counters[`capped{node="100"}`]; leaked {
		t.Fatal("over-cap label set interned its own series")
	}
	// The family aggregate counts everything, collapsed or not.
	if s.Counters["capped"] != 7 {
		t.Fatalf("aggregate capped = %d, want 7", s.Counters["capped"])
	}
	// Interned children stay live past the cap.
	r.CountWith("capped", 1, Li("node", 2))
	if got := r.CounterWith("capped", Li("node", 2)).Value(); got != 2 {
		t.Fatalf("interned child after overflow = %d, want 2", got)
	}
}

func TestSnapshotLabeledRendering(t *testing.T) {
	r := NewRegistry()
	r.CountWith("raid.scrub.repairs", 2, L("disk", "3"))
	r.CountWith("raid.scrub.repairs", 1, L("disk", "5"))
	r.SetGaugeWith("node.down", 1, L("node", "2"))
	r.ObserveWith("op.seconds", LatencyBuckets, 0.002, L("node", "1"))
	r.ObserveWith("op.seconds", LatencyBuckets, 0.004, L("node", "2"))
	s := r.Snapshot()

	// Children under canonical names.
	if s.Counters[`raid.scrub.repairs{disk="3"}`] != 2 {
		t.Errorf("child missing: %v", s.Counters)
	}
	// Family aggregate under the bare name.
	if s.Counters["raid.scrub.repairs"] != 3 {
		t.Errorf("aggregate = %d, want 3", s.Counters["raid.scrub.repairs"])
	}
	// Flat-name compatibility alias (the pre-label spelling).
	if s.Counters["raid.scrub.repairs.disk.3"] != 2 {
		t.Errorf("flat alias missing: %v", s.Counters)
	}
	if s.Gauges[`node.down{node="2"}`] != 1 || s.Gauges["node.down.node.2"] != 1 {
		t.Errorf("gauge rendering: %v", s.Gauges)
	}
	agg := s.Histograms["op.seconds"]
	if agg.Count != 2 || agg.Sum != 0.006 {
		t.Errorf("histogram aggregate = %+v", agg)
	}
	if s.Histograms[`op.seconds{node="1"}`].Count != 1 {
		t.Errorf("histogram child missing: %v", mapsKeys(s.Histograms))
	}
}

// TestSnapshotUnlabeledNameWins: an unlabeled metric that shares a name
// with a labeled family keeps its own value — the aggregate never
// double-bills an emitter that writes both forms.
func TestSnapshotUnlabeledNameWins(t *testing.T) {
	r := NewRegistry()
	r.Count("both", 10)
	r.CountWith("both", 1, L("node", "0"))
	s := r.Snapshot()
	if s.Counters["both"] != 10 {
		t.Errorf("both = %d, want the unlabeled counter's 10", s.Counters["both"])
	}
	if s.Counters[`both{node="0"}`] != 1 {
		t.Errorf("child lost: %v", s.Counters)
	}
}

func TestWritePrometheusLabels(t *testing.T) {
	r := NewRegistry()
	r.CountWith("nodestore.down.total", 4, L("node", "1"))
	r.CountWith("nodestore.down.total", 2, L("node", "3"))
	r.ObserveWith("store.node.seconds", []float64{0.001, 0.01}, 0.002, L("node", "3"))
	var b strings.Builder
	r.Snapshot().WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE nodestore_down_total counter\n",
		"nodestore_down_total 6\n", // aggregate
		`nodestore_down_total{node="1"} 4` + "\n",
		`nodestore_down_total{node="3"} 2` + "\n",
		`store_node_seconds_bucket{node="3",le="0.01"} 1` + "\n",
		`store_node_seconds_sum{node="3"} 0.002` + "\n",
		`store_node_seconds_count{node="3"} 1` + "\n",
		// flat alias for dashboards scraping the dotted spelling
		"nodestore_down_total_node_1 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per metric name.
	if n := strings.Count(out, "# TYPE nodestore_down_total counter"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
	// All samples of a name are contiguous under its TYPE line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	lastBase, seen := "", map[string]bool{}
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# TYPE ") {
			base := strings.Fields(ln)[2]
			if seen[base] {
				t.Errorf("metric %s split across groups", base)
			}
			seen[base] = true
			lastBase = base
			continue
		}
		name := ln[:strings.IndexAny(ln, "{ ")]
		name = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if name != lastBase {
			t.Errorf("sample %q under TYPE %s", ln, lastBase)
		}
	}
}

func mapsKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BenchmarkLabeledCounterHit(b *testing.B) {
	r := NewRegistry()
	r.CounterWith("bench", L("node", "7")).Inc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.CounterWith("bench", L("node", "7")).Inc()
	}
}

var _ = fmt.Sprintf // keep fmt for debug churn
