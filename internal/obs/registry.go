// Package obs is the repository's observability layer: a dependency-free,
// concurrent-safe metrics registry (counters, gauges, fixed-bucket
// histograms with percentile summaries), a span API that ties wall time
// and bytes to the XOR accounting of core.Ops, and a structured decode
// tracer for the paper's Algorithms 2-4.
//
// The paper's entire evaluation rests on two observables — XOR counts
// normalized to the k-1 lower bound (Figures 5-8) and encode/decode wall
// time (Figures 9-13). This package makes both first-class runtime
// metrics, so a running array or bulk pipeline can be watched the way a
// production RAID stack is operated: rebuild progress, degraded-read
// amplification, scrub hit rates, XORs per parity bit.
//
// Everything here is safe for concurrent use: hot-path mutation is one
// atomic add per event, and Snapshot readers never block writers.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing uint64. A nil *Counter (from
// a labeled lookup on a nil registry) is a valid no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a settable float64 (rebuild progress, queue depth, ...). A
// nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the gauge (atomic read-modify-write).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. All methods are safe for concurrent use, and a nil
// *Registry is accepted everywhere as "record nothing".
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Labeled families (see labels.go): one interned label-set table per
	// metric name, each capped at labelCap() distinct sets.
	cfam map[string]*family[*Counter]
	gfam map[string]*family[*Gauge]
	hfam map[string]*family[*Histogram]

	labelCapacity int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		cfam:     make(map[string]*family[*Counter]),
		gfam:     make(map[string]*family[*Gauge]),
		hfam:     make(map[string]*family[*Histogram]),
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Returns nil when r is nil (all Counter methods tolerate that only
// if guarded — use Count for nil-safe increments).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket bounds on first use (later calls reuse the existing
// buckets regardless of the bounds argument). Bounds must be ascending;
// an implicit +Inf bucket is always appended.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Count is a nil-safe counter increment: a no-op when r is nil.
func (r *Registry) Count(name string, n uint64) {
	if r != nil {
		r.Counter(name).Add(n)
	}
}

// SetGauge is a nil-safe gauge store: a no-op when r is nil.
func (r *Registry) SetGauge(name string, v float64) {
	if r != nil {
		r.Gauge(name).Set(v)
	}
}

// Observe is a nil-safe histogram observation using the given bounds on
// first use.
func (r *Registry) Observe(name string, bounds []float64, v float64) {
	if r != nil {
		r.Histogram(name, bounds).Observe(v)
	}
}

// names returns the sorted metric names of one kind (for deterministic
// rendering).
func sortedNames[M any](m map[string]M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
