package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("widgets") != c {
		t.Error("Counter must return the same instance per name")
	}
	g := r.Gauge("depth")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("gauge = %g, want 2", got)
	}
	// Nil-safe helpers.
	var nilReg *Registry
	nilReg.Count("x", 1)
	nilReg.SetGauge("y", 1)
	nilReg.Observe("z", LatencyBuckets, 1)
	if nilReg.Counter("x") != nil {
		t.Error("nil registry must hand out nil counters")
	}
	snap := nilReg.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	// 100 observations uniform over (0, 4]: quantiles should land close to
	// q*4 under linear interpolation.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if math.Abs(s.Sum-202.0) > 1e-9 {
		t.Errorf("sum = %g, want 202", s.Sum)
	}
	if s.Min != 0.04 || s.Max != 4.0 {
		t.Errorf("min/max = %g/%g, want 0.04/4", s.Min, s.Max)
	}
	for q, want := range map[float64]float64{0.5: 2.0, 0.9: 3.6, 0.99: 3.96} {
		if got := s.Quantile(q); math.Abs(got-want) > 0.25 {
			t.Errorf("q%.2f = %g, want ~%g", q, got, want)
		}
	}
	// Overflow bucket: estimates stay within the observed range.
	h.Observe(100)
	s = r.Snapshot().Histograms["lat"]
	if got := s.Quantile(1.0); got != 100 {
		t.Errorf("q1.0 = %g, want the max (100)", got)
	}
	if s.P99 > 100 || s.P50 < s.Min {
		t.Errorf("percentiles escaped the observed range: %+v", s)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e", LatencyBuckets)
	s := r.Snapshot().Histograms["e"]
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Errorf("empty histogram snapshot not zeroed: %+v", s)
	}
	h.Observe(0.003)
	s = r.Snapshot().Histograms["e"]
	if s.Count != 1 || s.Min != 0.003 || s.Max != 0.003 {
		t.Errorf("single observation: %+v", s)
	}
	if got := s.Quantile(0.5); math.Abs(got-0.003) > 1e-9 {
		t.Errorf("q0.5 of single obs = %g, want 0.003", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Count("a.calls", 3)
	r.Count("a.xors", 30)
	r.SetGauge("g", 0.5)
	r.Histogram("a.seconds", LatencyBuckets).Observe(0.001)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.xors"] != 30 || back.Gauges["g"] != 0.5 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if sp, ok := back.Spans["a"]; !ok || sp.Calls != 3 || sp.XORs != 30 {
		t.Errorf("span family not reassembled: %+v", back.Spans)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Count("raid.degraded_reads", 7)
	r.SetGauge("raid.rebuild.progress", 0.25)
	r.Histogram("enc.seconds", []float64{0.001, 0.01}).Observe(0.002)
	var buf bytes.Buffer
	r.Snapshot().WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE raid_degraded_reads counter",
		"raid_degraded_reads 7",
		"# TYPE raid_rebuild_progress gauge",
		"raid_rebuild_progress 0.25",
		"# TYPE enc_seconds histogram",
		`enc_seconds_bucket{le="0.001"} 0`,
		`enc_seconds_bucket{le="0.01"} 1`,
		`enc_seconds_bucket{le="+Inf"} 1`,
		"enc_seconds_sum 0.002",
		"enc_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestTextRenderingDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Count("b.calls", 1)
	r.Count("a.calls", 1)
	r.Count("zz", 5)
	var one, two bytes.Buffer
	r.Snapshot().WriteText(&one)
	r.Snapshot().WriteText(&two)
	if one.String() != two.String() {
		t.Error("text rendering is not deterministic")
	}
	if !strings.Contains(one.String(), "zz") {
		t.Errorf("text rendering missing counter:\n%s", one.String())
	}
}

// TestConcurrentRegistry hammers every metric type from many goroutines
// while other goroutines take snapshots — the scenario the registry
// exists for, and the test `go test -race ./internal/obs` leans on.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot readers run until writers finish.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := r.Snapshot()
					if s.Counters["hits"] > writers*perWriter {
						t.Error("counter overshot")
						return
					}
				}
			}
		}()
	}
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("hits").Inc()
				r.Gauge("level").Set(float64(i))
				r.Histogram("lat", LatencyBuckets).Observe(float64(i%10) * 1e-5)
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["hits"]; got != writers*perWriter {
		t.Errorf("hits = %d, want %d", got, writers*perWriter)
	}
	if got := s.Histograms["lat"].Count; got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}
