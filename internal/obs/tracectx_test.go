package obs

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"testing"
)

// TestSpanCtxParentage checks the causal chain: root → child spans →
// point events all share one trace ID and link parent to child.
func TestSpanCtxParentage(t *testing.T) {
	rec := NewFlightRecorder(64)
	tr := NewTracer(rec)
	tr.Seed(0)

	ctx, root := StartOp(context.Background(), tr, nil, "op.root", slog.String("kind", "test"))
	if root.TraceID() == 0 {
		t.Fatal("root span has no trace ID")
	}
	if got := ContextTraceID(ctx); got != root.TraceID() {
		t.Fatalf("ContextTraceID = %v, want %v", got, root.TraceID())
	}
	cctx, child := StartSpanCtx(ctx, nil, "op.child")
	Emit(cctx, slog.LevelWarn, "op.point", slog.Int("shard", 3))
	child.Attr(slog.Int("stripe", 7)).End(nil)
	root.End(errors.New("boom"))

	events := rec.Snapshot()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(events), events)
	}
	point, childEv, rootEv := events[0], events[1], events[2]
	want := root.TraceID().String()
	for i, ev := range events {
		if ev.Trace != want {
			t.Errorf("event %d trace %q, want %q", i, ev.Trace, want)
		}
	}
	if point.Name != "op.point" || point.Parent != childEv.Span {
		t.Errorf("point event %+v not parented to child span %q", point, childEv.Span)
	}
	if childEv.Parent != rootEv.Span {
		t.Errorf("child parent %q, want root span %q", childEv.Parent, rootEv.Span)
	}
	if rootEv.Parent != "" {
		t.Errorf("root parent %q, want empty", rootEv.Parent)
	}
	if rootEv.Err != "boom" || rootEv.Level != slog.LevelError {
		t.Errorf("root error not recorded: %+v", rootEv)
	}
	if childEv.Attrs["stripe"] != int64(7) {
		t.Errorf("child attrs = %v, want stripe=7", childEv.Attrs)
	}
	if point.Attrs["shard"] != int64(3) {
		t.Errorf("point attrs = %v, want shard=3", point.Attrs)
	}
	if childEv.Dur <= 0 {
		t.Errorf("child span has no duration: %+v", childEv)
	}
}

// TestStartOpRootsOnlyWithoutTrace checks that StartOp chains onto an
// existing trace rather than starting a second one, and that distinct
// top-level operations get distinct trace IDs.
func TestStartOpRootsOnlyWithoutTrace(t *testing.T) {
	tr := NewTracer(NewFlightRecorder(8))
	tr.Seed(0)
	ctx1, sp1 := StartOp(context.Background(), tr, nil, "a")
	_, sp2 := StartOp(ctx1, tr, nil, "b")
	if sp1.TraceID() != sp2.TraceID() {
		t.Errorf("nested StartOp started a new trace: %v vs %v", sp1.TraceID(), sp2.TraceID())
	}
	_, sp3 := StartOp(context.Background(), tr, nil, "c")
	if sp3.TraceID() == sp1.TraceID() {
		t.Error("independent operations share a trace ID")
	}
}

// TestInertSpans checks the no-tracer/no-registry path is a usable
// no-op: metrics still record when only a registry is present, and
// nothing panics when neither is.
func TestInertSpans(t *testing.T) {
	// Neither tracer nor registry.
	ctx, sp := StartOp(context.Background(), nil, nil, "quiet")
	Emit(ctx, slog.LevelInfo, "dropped")
	if sp.TraceID() != 0 {
		t.Error("inert span has a trace ID")
	}
	sp.Attr(slog.Int("x", 1)).Bytes(10).Units(2).End(nil)
	if ContextFlight(ctx) != nil {
		t.Error("inert context has a flight recorder")
	}

	// Registry only: the metric families must land.
	reg := NewRegistry()
	_, sp2 := StartOp(context.Background(), nil, reg, "metric.only")
	sp2.Bytes(100).End(nil)
	if got := reg.Counter("metric.only.calls").Value(); got != 1 {
		t.Errorf("metric.only.calls = %d, want 1", got)
	}

	// Emit on a nil context must not panic.
	Emit(nil, slog.LevelInfo, "nothing") //nolint:staticcheck // deliberate nil
}

// TestContextFlight finds the tracer's recorder through the context.
func TestContextFlight(t *testing.T) {
	rec := NewFlightRecorder(8)
	tr := NewTracer(NewEventLog(io.Discard, slog.LevelInfo), rec)
	ctx, _ := StartOp(context.Background(), tr, nil, "op")
	if got := ContextFlight(ctx); got != rec {
		t.Fatalf("ContextFlight = %p, want %p", got, rec)
	}
	if tr.Flight() != rec {
		t.Fatal("Tracer.Flight did not find the recorder")
	}
}
