package obs

import (
	"strings"
	"testing"
)

func TestDecodeTraceBuilding(t *testing.T) {
	tr := &DecodeTrace{Code: "liberation(k=5,p=5)", K: 5, P: 5, L: 1, R: 3,
		StartRow: 2, RowSyndromes: 1, DiagSyndromes: 2}
	tr.ReuseHit()
	tr.ReuseHit()
	tr.AddStep(0, 2, "row-resolve")
	tr.AddStep(1, 4, "row-resolve", "pairA-resolve(l)")
	if tr.StepCount() != 2 {
		t.Errorf("StepCount = %d, want 2", tr.StepCount())
	}
	if tr.SyndromeSum() != 3 {
		t.Errorf("SyndromeSum = %d, want 3", tr.SyndromeSum())
	}
	if tr.CommonReuse != 2 {
		t.Errorf("CommonReuse = %d, want 2", tr.CommonReuse)
	}
	out := tr.String()
	for _, want := range []string{"liberation(k=5,p=5)", "erased=(1,3)",
		"1 row + 2 anti-diagonal", "step  0", "pairA-resolve(l)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestDecodeTraceNilSafety(t *testing.T) {
	var tr *DecodeTrace
	tr.AddStep(0, 0, "x")
	tr.ReuseHit()
	if tr.StepCount() != 0 || tr.SyndromeSum() != 0 {
		t.Error("nil trace must report zero")
	}
	if tr.String() != "decode-trace(nil)" {
		t.Errorf("nil rendering = %q", tr.String())
	}
}
