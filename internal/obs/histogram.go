package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for operation latencies, in
// seconds: 1-2.5-5 decades from 1µs to 10s. Fine enough to separate a 4KB
// stripe encode (~µs) from a whole-array rebuild (~ms-s), coarse enough
// that a histogram is 23 atomic counters.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// SizeBuckets is the default bucket layout for byte sizes: powers of four
// from 64B to 1GB.
var SizeBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
	256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// A Histogram counts observations into fixed buckets and tracks sum, min
// and max, so snapshots can report both exact totals and estimated
// percentiles. Observation is lock-free: one atomic add for the bucket,
// plus CAS loops for sum/min/max.
type Histogram struct {
	bounds []float64 // ascending upper bounds; counts has one extra +Inf slot
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	min    atomic.Uint64 // float64 bits, +Inf when empty
	max    atomic.Uint64 // float64 bits, -Inf when empty
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// snapshot captures a consistent-enough view (each field atomically; the
// histogram may be mid-update, which can skew a percentile by at most one
// in-flight observation).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Min:    math.Float64frombits(h.min.Load()),
		Max:    math.Float64frombits(h.max.Load()),
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	} else {
		s.Mean = s.Sum / float64(s.Count)
		s.P50 = s.Quantile(0.50)
		s.P90 = s.Quantile(0.90)
		s.P99 = s.Quantile(0.99)
	}
	return s
}

// HistogramSnapshot is a point-in-time view of a histogram, with derived
// percentile estimates.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"` // bucket upper bounds; Counts has one extra +Inf slot
	Counts []uint64  `json:"counts"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket containing the target rank. The first bucket is
// anchored at the observed minimum and the overflow bucket at the
// observed maximum, so estimates never leave the observed range.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, n := range s.Counts {
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			lo := s.Min
			if i > 0 {
				lo = math.Max(s.Bounds[i-1], s.Min)
			}
			hi := s.Max
			if i < len(s.Bounds) {
				hi = math.Min(s.Bounds[i], s.Max)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return s.Max
}
