package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderRing checks wrap-around ordering and the lifetime
// total.
func TestFlightRecorderRing(t *testing.T) {
	rec := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		rec.RecordEvent(Event{Name: fmt.Sprintf("ev-%d", i)})
	}
	events := rec.Snapshot()
	if len(events) != 4 {
		t.Fatalf("snapshot holds %d events, want 4", len(events))
	}
	for i, ev := range events {
		if want := fmt.Sprintf("ev-%d", 6+i); ev.Name != want {
			t.Errorf("event %d = %q, want %q (oldest-first tail)", i, ev.Name, want)
		}
	}
	if rec.Total() != 10 {
		t.Errorf("total = %d, want 10", rec.Total())
	}
}

// TestFlightTailByTrace filters to one trace and bounds the length.
func TestFlightTailByTrace(t *testing.T) {
	rec := NewFlightRecorder(16)
	for i := 0; i < 6; i++ {
		rec.RecordEvent(Event{Name: fmt.Sprintf("a-%d", i), Trace: TraceID(0xaa).String()})
		rec.RecordEvent(Event{Name: fmt.Sprintf("b-%d", i), Trace: TraceID(0xbb).String()})
	}
	tail := rec.Tail(TraceID(0xaa), 2)
	if len(tail) != 2 || tail[0].Name != "a-4" || tail[1].Name != "a-5" {
		t.Errorf("tail = %+v, want [a-4 a-5]", tail)
	}
	if all := rec.Tail(0, 0); len(all) != 12 {
		t.Errorf("unfiltered tail holds %d events, want 12", len(all))
	}
}

// TestFlightRecorderConcurrent is the tear-safety test: many writer
// goroutines stream internally-consistent events while readers snapshot
// continuously. Under -race this proves the ring never hands out a
// half-written record; the consistency check proves no record is
// assembled from two writes.
func TestFlightRecorderConcurrent(t *testing.T) {
	rec := NewFlightRecorder(64)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: snapshot continuously, checking every record's internal
	// consistency (all four correlated fields derive from one (w, i)).
	readerErr := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range rec.Snapshot() {
					if ev.Name == "" {
						continue
					}
					var w, i int
					if _, err := fmt.Sscanf(ev.Name, "ev-%d-%d", &w, &i); err != nil {
						select {
						case readerErr <- fmt.Errorf("unparsable record %+v", ev):
						default:
						}
						return
					}
					wantTrace := TraceID(uint64(w*1000000 + i)).String()
					wantSpan := SpanID(uint32(i + 1)).String()
					if ev.Trace != wantTrace || ev.Span != wantSpan ||
						ev.Attrs["w"] != int64(w) || ev.Attrs["i"] != int64(i) {
						select {
						case readerErr <- fmt.Errorf("torn record: %+v (want w=%d i=%d trace=%s span=%s)",
							ev, w, i, wantTrace, wantSpan):
						default:
						}
						return
					}
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec.RecordEvent(Event{
					Time:  time.Now(),
					Trace: TraceID(uint64(w*1000000 + i)).String(),
					Span:  SpanID(uint32(i + 1)).String(),
					Name:  fmt.Sprintf("ev-%d-%d", w, i),
					Attrs: map[string]any{"w": int64(w), "i": int64(i)},
				})
			}
		}(w)
	}

	// Let the writers run against live readers, then stop the readers
	// and wait for everyone.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}
	if rec.Total() != writers*perWriter {
		t.Errorf("total = %d, want %d", rec.Total(), writers*perWriter)
	}
}

// TestFlightTailConcurrentWrap runs Tail readers against writers
// hammering a ring small enough to wrap continuously. Under -race this
// pins Tail's locking; the assertions pin its contract mid-wrap: a
// trace-filtered tail only ever holds that trace's events, in oldest-
// first order with per-trace sequence numbers strictly increasing, and
// the max bound is respected.
func TestFlightTailConcurrentWrap(t *testing.T) {
	rec := NewFlightRecorder(8) // tiny ring: every writer pass wraps it
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	readerErr := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trace := TraceID(uint64(r + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tail := rec.Tail(trace, 3)
				if len(tail) > 3 {
					readerErr <- fmt.Errorf("Tail(max=3) returned %d events", len(tail))
					return
				}
				lastSeq := -1
				for _, ev := range tail {
					if ev.Trace != trace.String() {
						readerErr <- fmt.Errorf("Tail(%s) leaked event from trace %s", trace, ev.Trace)
						return
					}
					var w, i int
					if _, err := fmt.Sscanf(ev.Name, "ev-%d-%d", &w, &i); err != nil {
						readerErr <- fmt.Errorf("torn record in tail: %+v", ev)
						return
					}
					if i <= lastSeq {
						readerErr <- fmt.Errorf("tail out of order: seq %d after %d", i, lastSeq)
						return
					}
					lastSeq = i
				}
			}
		}(r)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec.RecordEvent(Event{
					Trace: TraceID(uint64(w + 1)).String(),
					Name:  fmt.Sprintf("ev-%d-%d", w+1, i),
				})
			}
		}(w)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}
	if rec.Total() != writers*perWriter {
		t.Errorf("total = %d, want %d", rec.Total(), writers*perWriter)
	}
	// Post-wrap steady state: the ring holds exactly its size, and an
	// unbounded unfiltered Tail matches Snapshot.
	if got := len(rec.Tail(0, 0)); got != 8 {
		t.Errorf("final unfiltered tail holds %d events, want the ring size 8", got)
	}
}

// TestFlightHandler exercises the /debug/flight JSON surface, including
// the trace filter, while a live trace keeps writing.
func TestFlightHandler(t *testing.T) {
	rec := NewFlightRecorder(32)
	tr := NewTracer(rec)
	tr.Seed(0)
	ctx, sp := StartOp(context.Background(), tr, nil, "op.a")
	Emit(ctx, slog.LevelWarn, "op.a.event", slog.Int("shard", 1))
	sp.End(nil)
	_, sp2 := StartOp(context.Background(), tr, nil, "op.b")
	sp2.End(nil)

	srv := httptest.NewServer(FlightHandler(rec))
	defer srv.Close()

	get := func(q string) flightDump {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", q, resp.StatusCode)
		}
		var dump flightDump
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			t.Fatal(err)
		}
		return dump
	}

	dump := get("")
	if dump.Size != 32 || dump.Total != 3 || len(dump.Events) != 3 {
		t.Fatalf("dump = size %d total %d events %d, want 32/3/3", dump.Size, dump.Total, len(dump.Events))
	}
	filtered := get("?trace=" + sp.TraceID().String())
	if len(filtered.Events) != 2 {
		t.Fatalf("trace filter kept %d events, want 2", len(filtered.Events))
	}
	for _, ev := range filtered.Events {
		if ev.Trace != sp.TraceID().String() {
			t.Errorf("filtered event from wrong trace: %+v", ev)
		}
	}
	if last := get("?n=1"); len(last.Events) != 1 || last.Events[0].Name != "op.b" {
		t.Errorf("?n=1 = %+v, want just op.b", last.Events)
	}

	if resp, _ := srv.Client().Get(srv.URL + "?trace=zzz"); resp.StatusCode != 400 {
		t.Errorf("bad trace id: status %d, want 400", resp.StatusCode)
	}
}
