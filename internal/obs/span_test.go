package obs

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestSpanRecordsEverything(t *testing.T) {
	r := NewRegistry()
	ops := core.Ops{XORs: 40, Copies: 10, Zeros: 2}
	sp := StartSpan(r, "encode")
	sp.Bytes(4096).Units(10).Ops(ops)
	if d := sp.End(nil); d <= 0 {
		t.Error("span duration must be positive")
	}
	s := r.Snapshot()
	st, ok := s.Spans["encode"]
	if !ok {
		t.Fatalf("span family missing from snapshot: %+v", s.Counters)
	}
	if st.Calls != 1 || st.Errors != 0 {
		t.Errorf("calls/errors = %d/%d", st.Calls, st.Errors)
	}
	if st.Bytes != 4096 || st.Units != 10 {
		t.Errorf("bytes/units = %d/%d", st.Bytes, st.Units)
	}
	if st.XORs != 40 || st.Copies != 10 || st.Zeros != 2 {
		t.Errorf("ops propagated wrong: %+v", st)
	}
	if st.XORsPerUnit != 4.0 {
		t.Errorf("xors/unit = %g, want 4", st.XORsPerUnit)
	}
	if st.Latency.Count != 1 || st.Latency.Sum <= 0 {
		t.Errorf("latency histogram: %+v", st.Latency)
	}
	if st.BytesPerSec <= 0 {
		t.Errorf("bytes/sec = %g, want > 0", st.BytesPerSec)
	}
}

func TestSpanErrorCounter(t *testing.T) {
	r := NewRegistry()
	StartSpan(r, "op").End(errors.New("boom"))
	StartSpan(r, "op").End(nil)
	st := r.Snapshot().Spans["op"]
	if st.Calls != 2 || st.Errors != 1 {
		t.Errorf("calls/errors = %d/%d, want 2/1", st.Calls, st.Errors)
	}
}

func TestSpanNilRegistryNoop(t *testing.T) {
	sp := StartSpan(nil, "x")
	sp.Bytes(1).Units(1).Ops(core.Ops{XORs: 1})
	if d := sp.End(nil); d != 0 {
		t.Error("nil-registry span must report zero duration")
	}
}

// TestSpanOpsMatchExactly runs a deterministic accumulation and asserts
// the snapshot counters equal the core.Ops totals bit for bit — the
// contract the instrumented coding paths rely on.
func TestSpanOpsMatchExactly(t *testing.T) {
	r := NewRegistry()
	var total core.Ops
	for i := 1; i <= 7; i++ {
		o := core.Ops{XORs: uint64(i * 3), Copies: uint64(i), Zeros: uint64(i % 2)}
		total.Add(o)
		StartSpan(r, "work").Ops(o).Units(i).End(nil)
	}
	st := r.Snapshot().Spans["work"]
	if st.XORs != total.XORs || st.Copies != total.Copies || st.Zeros != total.Zeros {
		t.Errorf("snapshot %+v does not match ops %+v", st, total)
	}
	if st.Units != 28 {
		t.Errorf("units = %d, want 28", st.Units)
	}
}
