package obs

import (
	"runtime"
	"time"
)

// RuntimeSampler feeds Go runtime health — heap occupancy, GC activity
// and pause times, goroutine count — into a registry as ordinary
// metrics, so the process serving the array is observable through the
// same snapshot, Prometheus export, and monitoring plane as the array
// itself. Sample is meant to be called periodically (the monitor ticks
// it); it keeps the cursor needed to bill each GC pause exactly once
// into the pause histogram.
//
// Metrics:
//
//	go.heap.alloc_bytes     gauge     live heap bytes
//	go.heap.sys_bytes       gauge     heap bytes obtained from the OS
//	go.heap.objects         gauge     live objects
//	go.goroutines           gauge     current goroutine count
//	go.gc.total             counter   completed GC cycles
//	go.gc.pause.seconds     histogram stop-the-world pause durations
type RuntimeSampler struct {
	reg       *Registry
	lastNumGC uint32
}

// NewRuntimeSampler returns a sampler writing into reg. A nil registry
// yields an inert sampler; a nil *RuntimeSampler is likewise inert.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	// Start the GC-pause cursor at the current cycle so the first Sample
	// reports only pauses that happen after construction.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &RuntimeSampler{reg: reg, lastNumGC: ms.NumGC}
}

// Sample records one observation of the runtime into the registry.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.SetGauge("go.heap.alloc_bytes", float64(ms.HeapAlloc))
	s.reg.SetGauge("go.heap.sys_bytes", float64(ms.HeapSys))
	s.reg.SetGauge("go.heap.objects", float64(ms.HeapObjects))
	s.reg.SetGauge("go.goroutines", float64(runtime.NumGoroutine()))
	if d := ms.NumGC - s.lastNumGC; d > 0 {
		s.reg.Count("go.gc.total", uint64(d))
		// PauseNs is a 256-entry ring; bill the cycles we have not seen,
		// capped at the ring size when the sampler fell far behind.
		from := s.lastNumGC
		if d > 256 {
			from = ms.NumGC - 256
		}
		h := s.reg.Histogram("go.gc.pause.seconds", LatencyBuckets)
		for c := from; c < ms.NumGC; c++ {
			h.ObserveDuration(time.Duration(ms.PauseNs[(c+255)%256]))
		}
		s.lastNumGC = ms.NumGC
	}
}
