package obs

import (
	"context"
	"io"
	"log/slog"
	"sort"
)

// An EventLog is the structured-log sink: every event at or above its
// level becomes one log/slog record — JSON lines by default — carrying
// the trace/span/parent correlation IDs, the duration, the error, and
// the event's typed attributes. Attribute order is sorted, so the output
// is byte-stable for equal events and greppable by key.
//
// slog's JSONHandler serializes concurrent Handle calls safely, so one
// EventLog can sit behind any number of traces.
type EventLog struct {
	h   slog.Handler
	min slog.Level
}

// NewEventLog returns an event log writing JSON lines to w, dropping
// events below min.
func NewEventLog(w io.Writer, min slog.Level) *EventLog {
	return &EventLog{
		h:   slog.NewJSONHandler(w, &slog.HandlerOptions{Level: min}),
		min: min,
	}
}

// NewEventLogHandler wraps an arbitrary slog.Handler (a text handler, a
// test capture, an application's root logger) as an event sink.
func NewEventLogHandler(h slog.Handler, min slog.Level) *EventLog {
	return &EventLog{h: h, min: min}
}

// RecordEvent implements EventSink.
func (l *EventLog) RecordEvent(ev Event) {
	if l == nil || ev.Level < l.min {
		return
	}
	r := slog.NewRecord(ev.Time, ev.Level, ev.Name, 0)
	r.AddAttrs(slog.String("trace", ev.Trace))
	if ev.Span != "" {
		r.AddAttrs(slog.String("span", ev.Span))
	}
	if ev.Parent != "" {
		r.AddAttrs(slog.String("parent", ev.Parent))
	}
	if ev.Dur > 0 {
		r.AddAttrs(slog.Duration("dur", ev.Dur))
	}
	if ev.Err != "" {
		r.AddAttrs(slog.String("err", ev.Err))
	}
	if len(ev.Attrs) > 0 {
		keys := make([]string, 0, len(ev.Attrs))
		for k := range ev.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r.AddAttrs(slog.Any(k, ev.Attrs[k]))
		}
	}
	l.h.Handle(context.Background(), r)
}
