package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Snapshot is a point-in-time copy of a registry: raw metrics plus the
// per-span summaries derived from the span naming convention. It is
// plain data — safe to marshal, compare, or hold while the registry keeps
// moving.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanStats         `json:"spans,omitempty"`
}

// SpanStats is the derived summary of one span family: the paper's two
// observables (XOR counts and wall time) joined into throughput and
// XORs-per-unit rates.
type SpanStats struct {
	Calls  uint64 `json:"calls"`
	Errors uint64 `json:"errors,omitempty"`
	Bytes  uint64 `json:"bytes,omitempty"`
	Units  uint64 `json:"units,omitempty"`
	XORs   uint64 `json:"xors,omitempty"`
	Copies uint64 `json:"copies,omitempty"`
	Zeros  uint64 `json:"zeros,omitempty"`

	Latency HistogramSnapshot `json:"latency"`

	// BytesPerSec is Bytes divided by the summed in-span wall time.
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
	// XORsPerUnit is XORs/Units — for an encode span, XORs per parity
	// element, directly comparable to the paper's k-1 lower bound.
	XORsPerUnit float64 `json:"xors_per_unit,omitempty"`
}

// Snapshot captures every metric in the registry. Safe to call while
// writers are mutating; a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanStats{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}

	// Reassemble span families: every ".calls" counter roots one.
	for name, calls := range s.Counters {
		base, ok := strings.CutSuffix(name, ".calls")
		if !ok {
			continue
		}
		st := SpanStats{
			Calls:   calls,
			Errors:  s.Counters[base+".errors"],
			Bytes:   s.Counters[base+".bytes"],
			Units:   s.Counters[base+".units"],
			XORs:    s.Counters[base+".xors"],
			Copies:  s.Counters[base+".copies"],
			Zeros:   s.Counters[base+".zeros"],
			Latency: s.Histograms[base+".seconds"],
		}
		if st.Latency.Sum > 0 {
			st.BytesPerSec = float64(st.Bytes) / st.Latency.Sum
		}
		if st.Units > 0 {
			st.XORsPerUnit = float64(st.XORs) / float64(st.Units)
		}
		s.Spans[base] = st
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as a human-readable report with
// deterministic ordering.
func (s Snapshot) WriteText(w io.Writer) {
	if len(s.Spans) > 0 {
		fmt.Fprintln(w, "spans:")
		for _, name := range sortedNames(s.Spans) {
			sp := s.Spans[name]
			fmt.Fprintf(w, "  %-24s calls=%d errors=%d bytes=%d xors=%d copies=%d zeros=%d\n",
				name, sp.Calls, sp.Errors, sp.Bytes, sp.XORs, sp.Copies, sp.Zeros)
			if sp.Latency.Count > 0 {
				fmt.Fprintf(w, "  %-24s latency p50=%s p90=%s p99=%s mean=%s\n",
					"", fmtSeconds(sp.Latency.P50), fmtSeconds(sp.Latency.P90),
					fmtSeconds(sp.Latency.P99), fmtSeconds(sp.Latency.Mean))
			}
			if sp.BytesPerSec > 0 || sp.XORsPerUnit > 0 {
				fmt.Fprintf(w, "  %-24s throughput=%.1f MB/s xors/unit=%.4f\n",
					"", sp.BytesPerSec/1e6, sp.XORsPerUnit)
			}
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedNames(s.Counters) {
			fmt.Fprintf(w, "  %-40s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedNames(s.Gauges) {
			fmt.Fprintf(w, "  %-40s %g\n", name, s.Gauges[name])
		}
	}
}

func fmtSeconds(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.3gs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3gms", v*1e3)
	default:
		return fmt.Sprintf("%.3gµs", v*1e6)
	}
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Metric names have non-alphanumeric runes
// replaced with underscores; histograms emit cumulative _bucket series
// plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) {
	for _, name := range sortedNames(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedNames(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[name])
	}
	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = trimFloat(h.Bounds[i])
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %g\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}

func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
