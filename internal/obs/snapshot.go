package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of a registry: raw metrics plus the
// per-span summaries derived from the span naming convention. It is
// plain data — safe to marshal, compare, or hold while the registry keeps
// moving.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanStats         `json:"spans,omitempty"`
}

// SpanStats is the derived summary of one span family: the paper's two
// observables (XOR counts and wall time) joined into throughput and
// XORs-per-unit rates.
type SpanStats struct {
	Calls  uint64 `json:"calls"`
	Errors uint64 `json:"errors,omitempty"`
	Bytes  uint64 `json:"bytes,omitempty"`
	Units  uint64 `json:"units,omitempty"`
	XORs   uint64 `json:"xors,omitempty"`
	Copies uint64 `json:"copies,omitempty"`
	Zeros  uint64 `json:"zeros,omitempty"`

	Latency HistogramSnapshot `json:"latency"`

	// BytesPerSec is Bytes divided by the summed in-span wall time.
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
	// XORsPerUnit is XORs/Units — for an encode span, XORs per parity
	// element, directly comparable to the paper's k-1 lower bound.
	XORsPerUnit float64 `json:"xors_per_unit,omitempty"`
}

// Snapshot captures every metric in the registry. Safe to call while
// writers are mutating; a nil registry yields an empty snapshot.
//
// Labeled metrics appear three ways, all under the counter/gauge/
// histogram maps keyed by canonical series name (see SeriesName):
//
//   - every child:        raid.scrub.repairs{disk="3"}
//   - the family total:   raid.scrub.repairs — the sum (merge, for
//     histograms) of the children, emitted only when no unlabeled metric
//     already owns the bare name, so a migrated emitter keeps its old
//     aggregate series alive for free;
//   - a flat-name alias for single-label children:
//     raid.scrub.repairs.disk.3 — the pre-label dotted spelling, kept so
//     existing dashboards and committed BENCH_obs series keep resolving.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanStats{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	cfam := make(map[string]*family[*Counter], len(r.cfam))
	for k, v := range r.cfam {
		cfam[k] = v
	}
	gfam := make(map[string]*family[*Gauge], len(r.gfam))
	for k, v := range r.gfam {
		gfam[k] = v
	}
	hfam := make(map[string]*family[*Histogram], len(r.hfam))
	for k, v := range r.hfam {
		hfam[k] = v
	}
	r.mu.RUnlock()

	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}

	for base, f := range cfam {
		entries := f.snapshotEntries()
		if len(entries) == 0 {
			continue
		}
		var total uint64
		for _, e := range entries {
			v := e.metric.Value()
			total += v
			s.Counters[SeriesName(base, e.labels)] = v
			if alias, ok := flatAlias(base, e.labels); ok {
				if _, taken := s.Counters[alias]; !taken {
					s.Counters[alias] = v
				}
			}
		}
		if _, taken := s.Counters[base]; !taken {
			s.Counters[base] = total
		}
	}
	for base, f := range gfam {
		entries := f.snapshotEntries()
		if len(entries) == 0 {
			continue
		}
		var total float64
		for _, e := range entries {
			v := e.metric.Value()
			total += v
			s.Gauges[SeriesName(base, e.labels)] = v
			if alias, ok := flatAlias(base, e.labels); ok {
				if _, taken := s.Gauges[alias]; !taken {
					s.Gauges[alias] = v
				}
			}
		}
		if _, taken := s.Gauges[base]; !taken {
			s.Gauges[base] = total
		}
	}
	for base, f := range hfam {
		entries := f.snapshotEntries()
		if len(entries) == 0 {
			continue
		}
		var agg HistogramSnapshot
		for i, e := range entries {
			hs := e.metric.snapshot()
			if i == 0 {
				agg = hs
			} else {
				agg = mergeHistogramSnapshots(agg, hs)
			}
			s.Histograms[SeriesName(base, e.labels)] = hs
			if alias, ok := flatAlias(base, e.labels); ok {
				if _, taken := s.Histograms[alias]; !taken {
					s.Histograms[alias] = hs
				}
			}
		}
		if _, taken := s.Histograms[base]; !taken {
			s.Histograms[base] = agg
		}
	}

	// Reassemble span families: every ".calls" counter roots one.
	for name, calls := range s.Counters {
		base, ok := strings.CutSuffix(name, ".calls")
		if !ok {
			continue
		}
		st := SpanStats{
			Calls:   calls,
			Errors:  s.Counters[base+".errors"],
			Bytes:   s.Counters[base+".bytes"],
			Units:   s.Counters[base+".units"],
			XORs:    s.Counters[base+".xors"],
			Copies:  s.Counters[base+".copies"],
			Zeros:   s.Counters[base+".zeros"],
			Latency: s.Histograms[base+".seconds"],
		}
		if st.Latency.Sum > 0 {
			st.BytesPerSec = float64(st.Bytes) / st.Latency.Sum
		}
		if st.Units > 0 {
			st.XORsPerUnit = float64(st.XORs) / float64(st.Units)
		}
		s.Spans[base] = st
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as a human-readable report with
// deterministic ordering.
func (s Snapshot) WriteText(w io.Writer) {
	if len(s.Spans) > 0 {
		fmt.Fprintln(w, "spans:")
		for _, name := range sortedNames(s.Spans) {
			sp := s.Spans[name]
			fmt.Fprintf(w, "  %-24s calls=%d errors=%d bytes=%d xors=%d copies=%d zeros=%d\n",
				name, sp.Calls, sp.Errors, sp.Bytes, sp.XORs, sp.Copies, sp.Zeros)
			if sp.Latency.Count > 0 {
				fmt.Fprintf(w, "  %-24s latency p50=%s p90=%s p99=%s mean=%s\n",
					"", fmtSeconds(sp.Latency.P50), fmtSeconds(sp.Latency.P90),
					fmtSeconds(sp.Latency.P99), fmtSeconds(sp.Latency.Mean))
			}
			if sp.BytesPerSec > 0 || sp.XORsPerUnit > 0 {
				fmt.Fprintf(w, "  %-24s throughput=%.1f MB/s xors/unit=%.4f\n",
					"", sp.BytesPerSec/1e6, sp.XORsPerUnit)
			}
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range sortedNames(s.Counters) {
			fmt.Fprintf(w, "  %-40s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, name := range sortedNames(s.Gauges) {
			fmt.Fprintf(w, "  %-40s %g\n", name, s.Gauges[name])
		}
	}
}

// flatAlias spells a single-label child the way the pre-label stack
// did: base.key.value (raid.scrub.repairs{disk="3"} →
// raid.scrub.repairs.disk.3). Multi-label children have no historical
// flat spelling and alias nothing.
func flatAlias(base string, labels []Label) (string, bool) {
	if len(labels) != 1 {
		return "", false
	}
	return base + "." + labels[0].Key + "." + labels[0].Value, true
}

// mergeHistogramSnapshots folds b into a (the family aggregate). The
// children of one family share bucket bounds by construction; on a
// mismatch the merge keeps a unchanged rather than inventing buckets.
func mergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	if len(a.Counts) != len(b.Counts) {
		return a
	}
	out := a
	out.Counts = append([]uint64(nil), a.Counts...)
	for i, n := range b.Counts {
		out.Counts[i] += n
	}
	out.Count = a.Count + b.Count
	out.Sum = a.Sum + b.Sum
	switch {
	case a.Count == 0:
		out.Min, out.Max = b.Min, b.Max
	case b.Count == 0:
		out.Min, out.Max = a.Min, a.Max
	default:
		out.Min = math.Min(a.Min, b.Min)
		out.Max = math.Max(a.Max, b.Max)
	}
	if out.Count > 0 {
		out.Mean = out.Sum / float64(out.Count)
		out.P50 = out.Quantile(0.50)
		out.P90 = out.Quantile(0.90)
		out.P99 = out.Quantile(0.99)
	}
	return out
}

func fmtSeconds(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.3gs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3gms", v*1e3)
	default:
		return fmt.Sprintf("%.3gµs", v*1e6)
	}
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Metric names have non-alphanumeric runes
// replaced with underscores; labeled series render with proper brace
// syntax (metric{node="3",code="liberation"}), grouped so every sample
// of one metric name sits under a single # TYPE line; histograms emit
// cumulative _bucket series plus _sum and _count, with the le label
// merged after the series' own labels.
func (s Snapshot) WritePrometheus(w io.Writer) {
	writeGrouped(w, s.Counters, "counter", func(w io.Writer, pn, labels string, v uint64) {
		fmt.Fprintf(w, "%s%s %d\n", pn, labels, v)
	})
	writeGrouped(w, s.Gauges, "gauge", func(w io.Writer, pn, labels string, v float64) {
		fmt.Fprintf(w, "%s%s %g\n", pn, labels, v)
	})
	writeGrouped(w, s.Histograms, "histogram", func(w io.Writer, pn, labels string, h HistogramSnapshot) {
		cum := uint64(0)
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = trimFloat(h.Bounds[i])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", pn, mergeLE(labels, le), cum)
		}
		fmt.Fprintf(w, "%s_sum%s %g\n", pn, labels, h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", pn, labels, h.Count)
	})
}

// writeGrouped renders one metric map: series are grouped by base name
// (sorted), each group gets one # TYPE line, and within a group the
// unlabeled aggregate renders first, then the children in canonical
// order.
func writeGrouped[V any](w io.Writer, m map[string]V, typ string,
	render func(io.Writer, string, string, V)) {
	for _, base := range groupBases(m) {
		pn := promName(base)
		fmt.Fprintf(w, "# TYPE %s %s\n", pn, typ)
		if v, ok := m[base]; ok {
			render(w, pn, "", v)
		}
		for _, series := range sortedNames(m) {
			sb, labels := SplitSeries(series)
			if sb != base || len(labels) == 0 {
				continue
			}
			var b strings.Builder
			writeLabelSet(&b, labels)
			render(w, pn, b.String(), m[series])
		}
	}
}

// groupBases returns the sorted distinct base names of a metric map.
func groupBases[V any](m map[string]V) []string {
	seen := make(map[string]bool, len(m))
	var out []string
	for series := range m {
		base, _ := SplitSeries(series)
		if !seen[base] {
			seen[base] = true
			out = append(out, base)
		}
	}
	sort.Strings(out)
	return out
}

// mergeLE appends the le label to an already-rendered label set.
func mergeLE(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", strings.TrimSuffix(labels, "}"), le)
}

func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
