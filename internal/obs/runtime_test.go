package obs

import (
	"runtime"
	"testing"
)

// TestRuntimeSampler: one sample populates every gauge; forcing GC
// cycles between samples moves the cycle counter and bills pauses into
// the histogram exactly once per cycle.
func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	s.Sample()

	snap := reg.Snapshot()
	for _, g := range []string{"go.heap.alloc_bytes", "go.heap.sys_bytes", "go.heap.objects", "go.goroutines"} {
		if snap.Gauges[g] <= 0 {
			t.Errorf("%s = %v, want > 0", g, snap.Gauges[g])
		}
	}

	// Two forced GCs: the counter must advance by exactly 2 and the pause
	// histogram must record exactly 2 observations.
	before := reg.Counter("go.gc.total").Value()
	runtime.GC()
	runtime.GC()
	s.Sample()
	if d := reg.Counter("go.gc.total").Value() - before; d != 2 {
		t.Errorf("go.gc.total advanced by %d after 2 forced GCs, want 2", d)
	}
	hist := reg.Snapshot().Histograms["go.gc.pause.seconds"]
	if hist.Count != 2 {
		t.Errorf("pause histogram holds %d observations, want 2", hist.Count)
	}

	// No GC between samples: nothing double-billed.
	s.Sample()
	if hist = reg.Snapshot().Histograms["go.gc.pause.seconds"]; hist.Count != 2 {
		t.Errorf("idle sample re-billed pauses: count %d, want 2", hist.Count)
	}
}

// TestRuntimeSamplerInert: nil registries and nil samplers are no-ops.
func TestRuntimeSamplerInert(t *testing.T) {
	if s := NewRuntimeSampler(nil); s != nil {
		t.Errorf("NewRuntimeSampler(nil) = %v, want nil", s)
	}
	var s *RuntimeSampler
	s.Sample() // must not panic
}
