package symbolic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/liberation"
)

// TestOptimalEncodeProven machine-checks, for every (k, p) in the sweep,
// that Algorithm 1's compiled plan computes exactly the Liberation
// generator map — a proof over GF(2), independent of test data.
func TestOptimalEncodeProven(t *testing.T) {
	for _, p := range []int{3, 5, 7, 11, 13, 17, 19} {
		for k := 1; k <= p; k++ {
			c, err := liberation.New(k, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyEncode(k, p, c.Generator(), c.EncodeSchedule()); err != nil {
				t.Errorf("k=%d p=%d: %v", k, p, err)
			}
		}
	}
}

// TestOptimalDecodeProven machine-checks Algorithms 2-4 for every
// two-data-column erasure of every (k, p) in the sweep.
func TestOptimalDecodeProven(t *testing.T) {
	for _, p := range []int{3, 5, 7, 11, 13, 17} {
		for k := 2; k <= p; k++ {
			c, err := liberation.New(k, p)
			if err != nil {
				t.Fatal(err)
			}
			gen := c.Generator()
			for _, pat := range core.DataErasurePairs(k) {
				sch, err := c.DataPairSchedule(pat[0], pat[1])
				if err != nil {
					t.Fatalf("k=%d p=%d %v: %v", k, p, pat, err)
				}
				if err := VerifyDecode(k, p, gen, pat[:], sch); err != nil {
					t.Errorf("k=%d p=%d erased=%v: %v", k, p, pat, err)
				}
			}
		}
	}
}

// TestOriginalDecodeProven machine-checks the bit-matrix (Jerasure-style)
// decode schedules the original implementation uses, for every erasure
// pattern including parity strips.
func TestOriginalDecodeProven(t *testing.T) {
	for _, sh := range [][2]int{{3, 5}, {5, 5}, {7, 7}, {6, 11}} {
		k, p := sh[0], sh[1]
		oc, err := liberation.NewOriginal(k, p)
		if err != nil {
			t.Fatal(err)
		}
		gen := oc.Generator()
		for _, pat := range core.ErasurePairs(k + 2) {
			sch, err := oc.DecodeSchedule(pat[:])
			if err != nil {
				t.Fatalf("k=%d p=%d %v: %v", k, p, pat, err)
			}
			if err := VerifyDecode(k, p, gen, pat[:], sch); err != nil {
				t.Errorf("k=%d p=%d erased=%v: %v", k, p, pat, err)
			}
		}
	}
}

// TestCRSProven machine-checks the Cauchy Reed-Solomon schedules.
func TestCRSProven(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		c, err := crs.New(k)
		if err != nil {
			t.Fatal(err)
		}
		gen := c.Generator()
		for _, pat := range core.ErasurePairs(k + 2) {
			sch, err := c.DecodeSchedule(pat[:])
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyDecode(k, crs.W, gen, pat[:], sch); err != nil {
				t.Errorf("k=%d erased=%v: %v", k, pat, err)
			}
		}
	}
}

// TestVerifyCatchesWrongSchedules ensures the checker is not vacuous: a
// truncated schedule and a corrupted schedule must both be rejected.
func TestVerifyCatchesWrongSchedules(t *testing.T) {
	c, _ := liberation.New(5, 5)
	gen := c.Generator()
	sch := c.EncodeSchedule()
	if err := VerifyEncode(5, 5, gen, sch[:len(sch)-3]); err == nil {
		t.Error("truncated schedule accepted")
	}
	mangled := append(sch[:0:0], sch...)
	mangled[4].SrcRow = (mangled[4].SrcRow + 1) % 5
	if err := VerifyEncode(5, 5, gen, mangled); err == nil {
		t.Error("mangled schedule accepted")
	}
	dec, _ := c.DataPairSchedule(1, 3)
	if err := VerifyDecode(5, 5, gen, []int{1, 3}, dec[:len(dec)-2]); err == nil {
		t.Error("truncated decode schedule accepted")
	}
}
