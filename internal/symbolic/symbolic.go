// Package symbolic verifies coding algorithms exactly, not statistically:
// it executes element-operation schedules over symbolic stripes in which
// every element is a GF(2) linear combination of the kw data bits. After
// a symbolic encode, each parity element must equal the corresponding
// generator row; after a symbolic decode of an erased stripe, every strip
// must equal its defining combination again. A successful check is a
// machine-checked proof that a schedule computes the intended linear map
// for that (k, w) and erasure pattern — independent of any test data.
package symbolic

import (
	"fmt"

	"repro/internal/bitmatrix"
)

// Stripe is a symbolic stripe: element (col, row) holds a bit vector over
// the kw data bits, stored as one row of a bit matrix.
type Stripe struct {
	K, M, W int
	// vecs has (K+M)*W rows of kw columns; element (col,row) is row
	// col*W+row.
	vecs *bitmatrix.Matrix
}

// NewStripe returns the symbolic stripe of a freshly encoded array: data
// element (j, i) is the unit vector e_{j*w+i}, and the parity elements
// hold the generator rows (P bits first, then Q bits for the RAID-6
// generators). The parity count m is taken from the generator's height,
// which must be a multiple of w.
func NewStripe(k, w int, gen *bitmatrix.Matrix) (*Stripe, error) {
	if gen.R < w || gen.R%w != 0 || gen.C != k*w {
		return nil, fmt.Errorf("symbolic: generator is %dx%d, want m*%d x %d",
			gen.R, gen.C, w, k*w)
	}
	m := gen.R / w
	s := &Stripe{K: k, M: m, W: w, vecs: bitmatrix.New((k+m)*w, k*w)}
	for j := 0; j < k; j++ {
		for i := 0; i < w; i++ {
			s.vecs.Set(j*w+i, j*w+i, true)
		}
	}
	for b := 0; b < m*w; b++ {
		s.vecs.CopyRowFrom((k+b/w)*w+b%w, gen, b)
	}
	return s, nil
}

// row returns the matrix row index of element (col, row).
func (s *Stripe) row(col, row int) int { return col*s.W + row }

// Erase zeroes the symbolic contents of a strip (models losing the disk).
func (s *Stripe) Erase(col int) {
	zero := bitmatrix.New(1, s.K*s.W)
	for i := 0; i < s.W; i++ {
		s.vecs.CopyRowFrom(s.row(col, i), zero, 0)
	}
}

// Run executes a schedule symbolically.
func (s *Stripe) Run(sch bitmatrix.Schedule) {
	zero := bitmatrix.New(1, s.K*s.W)
	for _, op := range sch {
		dst := s.row(op.DstCol, op.DstRow)
		switch op.Kind {
		case bitmatrix.OpCopy:
			s.vecs.CopyRowFrom(dst, s.vecs, s.row(op.SrcCol, op.SrcRow))
		case bitmatrix.OpXor:
			s.vecs.XorRows(dst, s.row(op.SrcCol, op.SrcRow))
		case bitmatrix.OpZero:
			s.vecs.CopyRowFrom(dst, zero, 0)
		}
	}
}

// CheckIntact verifies that every strip holds its defining combination:
// unit vectors in the data strips, generator rows in the parities.
func (s *Stripe) CheckIntact(gen *bitmatrix.Matrix) error {
	want, err := NewStripe(s.K, s.W, gen)
	if err != nil {
		return err
	}
	for col := 0; col < s.K+s.M; col++ {
		for i := 0; i < s.W; i++ {
			r := s.row(col, i)
			if bitmatrix.RowDistance(s.vecs, r, want.vecs, r) != 0 {
				return fmt.Errorf("symbolic: element (%d,%d) computes the wrong combination", col, i)
			}
		}
	}
	return nil
}

// VerifyEncode proves that sch, run on a data-only stripe, computes
// exactly the parities described by gen.
func VerifyEncode(k, w int, gen *bitmatrix.Matrix, sch bitmatrix.Schedule) error {
	s, err := NewStripe(k, w, gen)
	if err != nil {
		return err
	}
	// Scrub the parities: encode must rebuild them from data alone.
	for t := 0; t < s.M; t++ {
		s.Erase(k + t)
	}
	s.Run(sch)
	return s.CheckIntact(gen)
}

// VerifyDecode proves that sch, run on a stripe with the given strips
// erased, restores every strip's defining combination.
func VerifyDecode(k, w int, gen *bitmatrix.Matrix, erased []int, sch bitmatrix.Schedule) error {
	s, err := NewStripe(k, w, gen)
	if err != nil {
		return err
	}
	for _, e := range erased {
		s.Erase(e)
	}
	s.Run(sch)
	return s.CheckIntact(gen)
}
