package evenodd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xorblk"
)

// Update applies a small write at (col, row) with incremental parity
// maintenance. An ordinary element touches its row parity and one
// diagonal parity; an element on the missing diagonal changes S and
// therefore touches the row parity plus every Q element — which is why
// EVENODD's average update complexity is ~3 (Table I) rather than the
// lower bound of 2.
func (c *Code) Update(s *core.Stripe, col, row int, oldElem []byte, ops *core.Ops) (int, error) {
	if c.obs == nil {
		return c.update(s, col, row, oldElem, ops)
	}
	sp := obs.StartSpan(c.obs, "evenodd.update")
	var local core.Ops
	touched, err := c.update(s, col, row, oldElem, &local)
	ops.Add(local)
	sp.Bytes(s.ElemSize).Units(touched).Ops(local).End(err)
	return touched, err
}

func (c *Code) update(s *core.Stripe, col, row int, oldElem []byte, ops *core.Ops) (int, error) {
	if err := s.CheckShape(c.k, 2, c.p-1); err != nil {
		return 0, err
	}
	if col < 0 || col >= c.k || row < 0 || row >= c.p-1 {
		return 0, fmt.Errorf("%w: update at (%d,%d)", core.ErrParams, col, row)
	}
	delta := make([]byte, s.ElemSize)
	ops.Xor(delta, oldElem, s.Elem(col, row))
	if xorblk.IsZero(delta) {
		return 0, nil
	}
	touched := 0
	ops.XorInto(s.Elem(c.k, row), delta)
	touched++
	if d := c.mod(row + col); d == c.p-1 {
		// The element lies on the missing diagonal: S changes, so every
		// Q element changes.
		for i := 0; i < c.p-1; i++ {
			ops.XorInto(s.Elem(c.k+1, i), delta)
			touched++
		}
	} else {
		ops.XorInto(s.Elem(c.k+1, d), delta)
		touched++
	}
	return touched, nil
}

var _ core.Updater = (*Code)(nil)
