package evenodd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// Decode reconstructs up to two erased strips using the published EVENODD
// reconstruction: S is recovered from the parity identity
// S = XOR_i P[i] ^ XOR_i Q[i], and two erased data strips are rebuilt by
// the classic two-sided zigzag that alternates diagonal and row
// constraints, starting from the diagonals whose cell in the peer column
// is the imaginary row.
func (c *Code) Decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	return obs.Observed(c.obs, "evenodd.decode", s.DataSize(), len(erased)*(c.p-1), ops,
		func(o *core.Ops) error { return c.decode(s, erased, o) })
}

func (c *Code) decode(s *core.Stripe, erased []int, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.p-1); err != nil {
		return err
	}
	switch len(erased) {
	case 0:
		return nil
	case 1:
		return c.decodeOne(s, erased[0], ops)
	case 2:
		a, b := erased[0], erased[1]
		if a > b {
			a, b = b, a
		}
		if a < 0 || b > c.k+1 {
			return fmt.Errorf("%w: erased=%v", core.ErrParams, erased)
		}
		if a == b {
			return c.decodeOne(s, a, ops)
		}
		switch {
		case a >= c.k: // P and Q
			return c.encode(s, ops)
		case b == c.k: // data + P
			if err := c.recoverDataViaQ(s, a, ops); err != nil {
				return err
			}
			return c.encodeP(s, ops)
		case b == c.k+1: // data + Q
			c.recoverDataViaP(s, a, ops)
			return c.encodeQ(s, ops)
		default:
			return c.decodeDataPair(s, a, b, ops)
		}
	default:
		return core.ErrTooManyErasures
	}
}

func (c *Code) decodeOne(s *core.Stripe, e int, ops *core.Ops) error {
	switch {
	case e == c.k:
		return c.encodeP(s, ops)
	case e == c.k+1:
		return c.encodeQ(s, ops)
	case e >= 0 && e < c.k:
		c.recoverDataViaP(s, e, ops)
		return nil
	default:
		return fmt.Errorf("%w: erased=%d", core.ErrParams, e)
	}
}

func (c *Code) encodeP(s *core.Stripe, ops *core.Ops) error {
	for i := 0; i < c.p-1; i++ {
		pe := s.Elem(c.k, i)
		ops.Copy(pe, s.Elem(0, i))
		for j := 1; j < c.k; j++ {
			ops.XorInto(pe, s.Elem(j, i))
		}
	}
	return nil
}

// encodeQ recomputes the Q strip alone (diagonal sums plus S).
func (c *Code) encodeQ(s *core.Stripe, ops *core.Ops) error {
	p, k := c.p, c.k
	accQ := make([]bool, p-1)
	sElem := make([]byte, s.ElemSize)
	accS := false
	for j := 0; j < k; j++ {
		for i := 0; i < p-1; i++ {
			d := c.mod(i + j)
			if d == p-1 {
				if accS {
					ops.XorInto(sElem, s.Elem(j, i))
				} else {
					ops.Copy(sElem, s.Elem(j, i))
					accS = true
				}
				continue
			}
			if accQ[d] {
				ops.XorInto(s.Elem(k+1, d), s.Elem(j, i))
			} else {
				ops.Copy(s.Elem(k+1, d), s.Elem(j, i))
				accQ[d] = true
			}
		}
	}
	for i := 0; i < p-1; i++ {
		qe := s.Elem(k+1, i)
		switch {
		case accQ[i] && accS:
			ops.XorInto(qe, sElem)
		case !accQ[i] && accS:
			ops.Copy(qe, sElem)
		case !accQ[i] && !accS:
			ops.Zero(qe)
		}
	}
	return nil
}

func (c *Code) recoverDataViaP(s *core.Stripe, d int, ops *core.Ops) {
	for i := 0; i < c.p-1; i++ {
		de := s.Elem(d, i)
		ops.Copy(de, s.Elem(c.k, i))
		for j := 0; j < c.k; j++ {
			if j != d {
				ops.XorInto(de, s.Elem(j, i))
			}
		}
	}
}

// recoverDataViaQ rebuilds data strip d from the Q column alone (P is also
// lost). With U_i = Q[i] ^ (known cells of diagonal i), every U_i equals
// S_known ^ b[<p-1-d>][d] ^ b[<i-d>][d] (the column-d cell of diagonal i
// plus, through S, the column-d cell of the missing diagonal). The
// constraint i0 = <d-1>, whose column-d diagonal cell is imaginary, pins
// b[<p-1-d>][d]; the rest follow as U_i ^ U_i0.
func (c *Code) recoverDataViaQ(s *core.Stripe, d int, ops *core.Ops) error {
	p, k := c.p, c.k
	elemSize := s.ElemSize
	// U_i per constraint.
	u := make([][]byte, p-1)
	backing := make([]byte, (p-1)*elemSize)
	for i := range u {
		u[i], backing = backing[:elemSize:elemSize], backing[elemSize:]
		ops.Copy(u[i], s.Elem(k+1, i))
		for j := 0; j < k; j++ {
			if j == d {
				continue
			}
			row := c.mod(i - j)
			if row != p-1 {
				ops.XorInto(u[i], s.Elem(j, row))
			}
		}
	}
	if d == 0 {
		// S is fully known (diagonal p-1 has no column-0 cell).
		sKnown := make([]byte, elemSize)
		acc := false
		for j := 1; j < k; j++ {
			if acc {
				ops.XorInto(sKnown, s.Elem(j, p-1-j))
			} else {
				ops.Copy(sKnown, s.Elem(j, p-1-j))
				acc = true
			}
		}
		for i := 0; i < p-1; i++ {
			de := s.Elem(0, i)
			ops.Copy(de, u[i])
			if acc {
				ops.XorInto(de, sKnown)
			}
		}
		return nil
	}
	// S_known: missing-diagonal cells outside column d.
	sKnown := make([]byte, elemSize)
	acc := false
	for j := 1; j < k; j++ {
		if j == d {
			continue
		}
		if acc {
			ops.XorInto(sKnown, s.Elem(j, p-1-j))
		} else {
			ops.Copy(sKnown, s.Elem(j, p-1-j))
			acc = true
		}
	}
	i0 := c.mod(d - 1)
	pin := s.Elem(d, p-1-d) // b[<p-1-d>][d], the column-d cell of diagonal p-1
	ops.Copy(pin, u[i0])
	if acc {
		ops.XorInto(pin, sKnown)
	}
	for i := 0; i < p-1; i++ {
		if i == i0 {
			continue
		}
		row := c.mod(i - d)
		de := s.Elem(d, row)
		ops.Copy(de, u[i])
		ops.XorInto(de, u[i0])
	}
	return nil
}

// decodeDataPair rebuilds two erased data strips l < r with the two-sided
// zigzag reconstruction.
func (c *Code) decodeDataPair(s *core.Stripe, l, r int, ops *core.Ops) error {
	p, k := c.p, c.k
	elemSize := s.ElemSize

	// S = XOR of all P elements XOR all Q elements.
	sElem := make([]byte, elemSize)
	ops.Copy(sElem, s.Elem(k, 0))
	for i := 1; i < p-1; i++ {
		ops.XorInto(sElem, s.Elem(k, i))
	}
	for i := 0; i < p-1; i++ {
		ops.XorInto(sElem, s.Elem(k+1, i))
	}

	// Row syndromes into strip l.
	for i := 0; i < p-1; i++ {
		le := s.Elem(l, i)
		ops.Copy(le, s.Elem(k, i))
		for j := 0; j < k; j++ {
			if j != l && j != r {
				ops.XorInto(le, s.Elem(j, i))
			}
		}
	}
	// Diagonal syndromes, indexed by constraint.
	qsyn := make([][]byte, p-1)
	backing := make([]byte, (p-1)*elemSize)
	for d := range qsyn {
		qsyn[d], backing = backing[:elemSize:elemSize], backing[elemSize:]
		ops.Copy(qsyn[d], s.Elem(k+1, d))
		ops.XorInto(qsyn[d], sElem)
		for j := 0; j < k; j++ {
			if j == l || j == r {
				continue
			}
			row := c.mod(d - j)
			if row != p-1 {
				ops.XorInto(qsyn[d], s.Elem(j, row))
			}
		}
	}

	// Chain 1: start at the diagonal whose column-r cell is imaginary;
	// recover the column-l cell from the diagonal, then the column-r cell
	// from the row, then fold it into the next diagonal.
	for d := c.mod(r - 1); d != p-1; {
		rowL := c.mod(d - l)
		if rowL == p-1 {
			break
		}
		re := s.Elem(r, rowL)
		ops.Xor(re, s.Elem(l, rowL), qsyn[d]) // row syndrome ^ L value
		ops.Copy(s.Elem(l, rowL), qsyn[d])
		d2 := c.mod(rowL + r)
		if d2 == p-1 {
			break
		}
		ops.XorInto(qsyn[d2], re)
		d = d2
	}
	// Chain 2: symmetric, starting from the diagonal whose column-l cell
	// is imaginary, recovering column-r cells first.
	for d := c.mod(l - 1); d != p-1; {
		rowR := c.mod(d - r)
		if rowR == p-1 {
			break
		}
		ops.Copy(s.Elem(r, rowR), qsyn[d])
		ops.XorInto(s.Elem(l, rowR), s.Elem(r, rowR)) // syndrome -> L value
		d2 := c.mod(rowR + l)
		if d2 == p-1 {
			break
		}
		ops.XorInto(qsyn[d2], s.Elem(l, rowR))
		d = d2
	}
	return nil
}
