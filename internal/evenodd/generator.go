package evenodd

import (
	"fmt"

	"repro/internal/bitmatrix"
)

// Generator returns the EVENODD generator bit-matrix (2(p-1) x k(p-1)):
// row i < p-1 describes P[i], row (p-1)+i describes Q[i]; matrix column
// j*(p-1)+b refers to bit b of data strip j. Bits on the missing diagonal
// appear in every Q row (through S), XOR-cancelling where they also lie on
// the row's own diagonal.
func (c *Code) Generator() *bitmatrix.Matrix {
	p, k := c.p, c.k
	w := p - 1
	m := bitmatrix.New(2*w, k*w)
	for i := 0; i < w; i++ {
		for j := 0; j < k; j++ {
			m.Set(i, j*w+i, true)
		}
	}
	for i := 0; i < w; i++ {
		// Diagonal i cells.
		for j := 0; j < k; j++ {
			row := c.mod(i - j)
			if row != p-1 {
				m.Flip(w+i, j*w+row)
			}
		}
		// S cells (diagonal p-1): columns 1..k-1, row p-1-j.
		for j := 1; j < k; j++ {
			m.Flip(w+i, j*w+(p-1-j))
		}
	}
	return m
}

// NewBitmatrix returns a schedule-driven implementation of the same code,
// used as a correctness oracle in tests.
func NewBitmatrix(k, p int) (*bitmatrix.Code, error) {
	c, err := New(k, p)
	if err != nil {
		return nil, err
	}
	return bitmatrix.NewCode(
		fmt.Sprintf("evenodd-bitmatrix(k=%d,p=%d)", k, p),
		k, p-1, c.Generator(), bitmatrix.Dumb, bitmatrix.Smart)
}
