package evenodd

import "repro/internal/obs"

// Instrument attaches a metrics registry to the code: from then on every
// Encode, Decode and Update records a span — latency, bytes processed,
// work units, and the exact core.Ops element counts — under the span
// names evenodd.encode, evenodd.decode and evenodd.update. A nil
// registry detaches.
func (c *Code) Instrument(reg *obs.Registry) { c.obs = reg }

// Registry returns the attached metrics registry (nil when detached).
func (c *Code) Registry() *obs.Registry { return c.obs }
