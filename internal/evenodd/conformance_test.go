package evenodd_test

import (
	"testing"

	"repro/internal/codetest"
	"repro/internal/evenodd"
)

func TestConformance(t *testing.T) {
	for _, sh := range [][2]int{{1, 3}, {3, 5}, {5, 5}, {7, 7}, {6, 11}} {
		c, err := evenodd.New(sh[0], sh[1])
		if err != nil {
			t.Fatal(err)
		}
		t.Run(c.Name(), func(t *testing.T) { codetest.Run(t, c) })
	}
}
