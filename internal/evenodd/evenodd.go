// Package evenodd implements the EVENODD codes (Blaum, Brady, Bruck,
// Menon, IEEE ToC 1995), one of the two baseline RAID-6 array codes the
// paper compares XOR complexities against (Figures 5-8, Table I).
//
// An EVENODD codeword is a (p-1) x (p+2) array of bits, p an odd prime,
// with an imaginary all-zero row p-1. The P column holds plain row
// parities. The Q column holds diagonal parities adjusted by the
// "missing diagonal" sum S:
//
//	P[i] = XOR_j b[i][j]
//	S    = XOR of the bits on diagonal p-1 ({(x,y): x+y = p-1 mod p})
//	Q[i] = S ^ XOR of the bits on diagonal i
//
// Every data bit lies on one row and one diagonal; bits on the missing
// diagonal additionally appear (through S) in every Q bit, which is what
// drives EVENODD's ~3 update complexity and its ~k-1/2 encoding cost.
package evenodd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// Code is an EVENODD code instance with k data strips over a
// (p-1) x (p+2) array.
type Code struct {
	k int
	p int

	obs *obs.Registry // optional metrics sink (see Instrument)
}

// New returns the EVENODD code with k data strips and prime parameter p.
// Requires p an odd prime and 1 <= k <= p.
func New(k, p int) (*Code, error) {
	if !core.IsPrime(p) || p == 2 {
		return nil, fmt.Errorf("%w: p=%d is not an odd prime", core.ErrParams, p)
	}
	if k < 1 || k > p {
		return nil, fmt.Errorf("%w: need 1 <= k <= p, got k=%d p=%d", core.ErrParams, k, p)
	}
	return &Code{k: k, p: p}, nil
}

// NewAuto returns the EVENODD code with the smallest usable prime >= k.
func NewAuto(k int) (*Code, error) {
	return New(k, core.NextOddPrime(maxInt(k, 2)))
}

func (c *Code) Name() string { return fmt.Sprintf("evenodd(k=%d,p=%d)", c.k, c.p) }
func (c *Code) K() int       { return c.k }

// M returns 2: EVENODD is a RAID-6 (two-parity) code.
func (c *Code) M() int { return 2 }

// P returns the prime parameter.
func (c *Code) P() int { return c.p }

// W returns the column height, p-1 for EVENODD.
func (c *Code) W() int { return c.p - 1 }

// ElemwiseEncode marks the code for stripe-sharded encoding: Encode
// addresses the stripe only through Elem (see core.ElemwiseEncoder).
func (c *Code) ElemwiseEncode() {}

func (c *Code) mod(x int) int { return core.Mod(x, c.p) }

// elem returns the element at (row, col), or nil for the imaginary row.
func (c *Code) elem(s *core.Stripe, col, row int) []byte {
	if row == c.p-1 {
		return nil
	}
	return s.Elem(col, row)
}

// Encode computes P and Q. The diagonal sums are accumulated per
// constraint and S is folded into each Q element, which reproduces the
// ~(2k-1)/2 XORs-per-parity-bit cost of the published construction.
func (c *Code) Encode(s *core.Stripe, ops *core.Ops) error {
	return obs.Observed(c.obs, "evenodd.encode", s.DataSize(), 2*(c.p-1), ops,
		func(o *core.Ops) error { return c.encode(s, o) })
}

func (c *Code) encode(s *core.Stripe, ops *core.Ops) error {
	if err := s.CheckShape(c.k, 2, c.p-1); err != nil {
		return err
	}
	p, k := c.p, c.k
	// Row parities, batched through the fused kernels (same XOR count,
	// one pass over pe per four sources).
	for i := 0; i < p-1; i++ {
		pe := s.Elem(k, i)
		ops.Copy(pe, s.Elem(0, i))
		j := 1
		for ; j+4 <= k; j += 4 {
			ops.XorInto4(pe, s.Elem(j, i), s.Elem(j+1, i), s.Elem(j+2, i), s.Elem(j+3, i))
		}
		switch k - j {
		case 3:
			ops.XorInto3(pe, s.Elem(j, i), s.Elem(j+1, i), s.Elem(j+2, i))
		case 2:
			ops.XorInto2(pe, s.Elem(j, i), s.Elem(j+1, i))
		case 1:
			ops.XorInto(pe, s.Elem(j, i))
		}
	}
	// Diagonal sums D[d] accumulated into the Q strip (D[d] at row d for
	// d <= p-2) and S = D[p-1] into scratch.
	accQ := make([]bool, p-1)
	sElem := make([]byte, s.ElemSize)
	accS := false
	for j := 0; j < k; j++ {
		for i := 0; i < p-1; i++ {
			d := c.mod(i + j)
			if d == p-1 {
				if accS {
					ops.XorInto(sElem, s.Elem(j, i))
				} else {
					ops.Copy(sElem, s.Elem(j, i))
					accS = true
				}
				continue
			}
			if accQ[d] {
				ops.XorInto(s.Elem(k+1, d), s.Elem(j, i))
			} else {
				ops.Copy(s.Elem(k+1, d), s.Elem(j, i))
				accQ[d] = true
			}
		}
	}
	// Q[i] = D[i] ^ S. (S is zero when k == 1: diagonal p-1 then has no
	// real cells, and neither do some D[d]; handle the degenerate cases.)
	for i := 0; i < p-1; i++ {
		qe := s.Elem(k+1, i)
		switch {
		case accQ[i] && accS:
			ops.XorInto(qe, sElem)
		case !accQ[i] && accS:
			ops.Copy(qe, sElem)
		case !accQ[i] && !accS:
			ops.Zero(qe)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
