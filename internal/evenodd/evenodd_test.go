package evenodd

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func shapes() [][2]int {
	var out [][2]int
	for _, p := range []int{3, 5, 7, 11, 13} {
		for k := 1; k <= p; k++ {
			out = append(out, [2]int{k, p})
		}
	}
	out = append(out, [2]int{4, 17}, [2]int{2, 17})
	return out
}

func TestEncodeMatchesBitmatrix(t *testing.T) {
	for _, sh := range shapes() {
		k, p := sh[0], sh[1]
		c, err := New(k, p)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := NewBitmatrix(k, p)
		if err != nil {
			t.Fatal(err)
		}
		s := core.NewStripe(k, p-1, 16)
		s.FillRandom(rand.New(rand.NewSource(int64(k + 100*p))))
		want := s.Clone()
		if err := bm.Encode(want, nil); err != nil {
			t.Fatal(err)
		}
		if err := c.Encode(s, nil); err != nil {
			t.Fatal(err)
		}
		if !s.Equal(want) {
			t.Errorf("k=%d p=%d: direct encode disagrees with bitmatrix oracle", k, p)
		}
	}
}

func TestIsMDS(t *testing.T) {
	for _, sh := range shapes() {
		k, p := sh[0], sh[1]
		if p > 11 {
			continue
		}
		bm, _ := NewBitmatrix(k, p)
		if err := bm.CheckMDS(); err != nil {
			t.Errorf("k=%d p=%d: %v", k, p, err)
		}
	}
}

func TestDecodeAllPatterns(t *testing.T) {
	for _, sh := range shapes() {
		k, p := sh[0], sh[1]
		c, _ := New(k, p)
		orig := core.NewStripe(k, p-1, 16)
		orig.FillRandom(rand.New(rand.NewSource(int64(3*k + p))))
		if err := c.Encode(orig, nil); err != nil {
			t.Fatal(err)
		}
		patterns := core.ErasurePairs(k + 2)
		for e := 0; e < k+2; e++ {
			patterns = append(patterns, [2]int{e, e})
		}
		for _, pat := range patterns {
			s := orig.Clone()
			erased := []int{pat[0], pat[1]}
			if pat[0] == pat[1] {
				erased = erased[:1]
			}
			for _, e := range erased {
				rand.New(rand.NewSource(5)).Read(s.Strips[e])
			}
			if err := c.Decode(s, erased, nil); err != nil {
				t.Fatalf("k=%d p=%d erased=%v: %v", k, p, erased, err)
			}
			if !s.Equal(orig) {
				t.Errorf("k=%d p=%d erased=%v: decode failed", k, p, erased)
			}
		}
	}
}

func TestEncodingComplexity(t *testing.T) {
	// Table I: EVENODD encoding costs about k - 1/2 XORs per parity bit
	// (the S term is spread over the p-1 Q bits). Check the exact count
	// stays within the published band for k = p.
	for _, p := range []int{5, 7, 11, 13, 17} {
		c, _ := New(p, p)
		s := core.NewStripe(p, p-1, 8)
		s.FillRandom(rand.New(rand.NewSource(9)))
		var ops core.Ops
		if err := c.Encode(s, &ops); err != nil {
			t.Fatal(err)
		}
		// Exact count: P costs (p-1)(k-1); the Q side costs k(p-1)-p
		// accumulation XORs plus p-1 S-fold XORs. With k=p that totals
		// (2p-1)(p-1) - 1.
		want := uint64((2*p-1)*(p-1) - 1)
		if ops.XORs != want {
			t.Errorf("p=%d: encode XORs = %d, want %d", p, ops.XORs, want)
		}
	}
}

func TestDecodeComplexityBand(t *testing.T) {
	// Figure 7: EVENODD decoding sits roughly k/(k-1) above optimal for
	// p ~ k (it degrades as k shrinks at fixed p, Figure 8).
	for _, p := range []int{7, 11, 13} {
		c, _ := New(p, p)
		total, cnt := 0, 0
		for _, pat := range core.DataErasurePairs(p) {
			s := core.NewStripe(p, p-1, 8)
			s.FillRandom(rand.New(rand.NewSource(11)))
			if err := c.Encode(s, nil); err != nil {
				t.Fatal(err)
			}
			var ops core.Ops
			if err := c.Decode(s, pat[:], &ops); err != nil {
				t.Fatal(err)
			}
			total += int(ops.XORs)
			cnt++
		}
		norm := float64(total) / float64(cnt) / float64(2*(p-1)*(p-1))
		if norm < 1.0 || norm > 1.35 {
			t.Errorf("p=%d: EVENODD data-data decode complexity %.4f outside [1.0,1.35]", p, norm)
		}
	}
}

// TestEmpiricalGeneratorMatches rebuilds the generator matrix empirically
// by encoding every unit stripe (one data bit set at a time, one-byte
// elements). Together with the linearity conformance check this proves
// the direct encoder computes exactly the Generator() map.
func TestEmpiricalGeneratorMatches(t *testing.T) {
	for _, sh := range [][2]int{{3, 5}, {5, 5}, {4, 7}} {
		k, p := sh[0], sh[1]
		c, _ := New(k, p)
		gen := c.Generator()
		w := p - 1
		for j := 0; j < k; j++ {
			for i := 0; i < w; i++ {
				s := core.NewStripe(k, w, 1)
				s.Elem(j, i)[0] = 1
				if err := c.Encode(s, nil); err != nil {
					t.Fatal(err)
				}
				for b := 0; b < 2*w; b++ {
					got := s.Elem(k+b/w, b%w)[0] == 1
					want := gen.Get(b, j*w+i)
					if got != want {
						t.Fatalf("k=%d p=%d: generator bit (row %d, data %d,%d): got %v want %v",
							k, p, b, j, i, got, want)
					}
				}
			}
		}
	}
}
