package gf

import (
	"errors"
	"math/rand"
	"testing"
)

func TestMulMatrixIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 5
	a := make([][]byte, n)
	id := make([][]byte, n)
	for i := range a {
		a[i] = make([]byte, n)
		rng.Read(a[i])
		id[i] = make([]byte, n)
		id[i][i] = 1
	}
	got := MulMatrix(a, id)
	for i := range a {
		for j := range a[i] {
			if got[i][j] != a[i][j] {
				t.Fatalf("a*I differs from a at (%d,%d)", i, j)
			}
		}
	}
	if MulMatrix(nil, a) != nil || MulMatrix(a, nil) != nil {
		t.Error("empty operand should give a nil product")
	}
}

func TestInvertMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 8, 16} {
		// Random matrices over GF(2^8) are overwhelmingly invertible;
		// retry the rare singular draw.
		var a, inv [][]byte
		for {
			a = make([][]byte, n)
			for i := range a {
				a[i] = make([]byte, n)
				rng.Read(a[i])
			}
			var err error
			if inv, err = InvertMatrix(a); err == nil {
				break
			}
		}
		prod := MulMatrix(a, inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := byte(0)
				if i == j {
					want = 1
				}
				if prod[i][j] != want {
					t.Fatalf("n=%d: a*inv(a) not identity at (%d,%d): %d", n, i, j, prod[i][j])
				}
			}
		}
	}
}

func TestInvertMatrixSingular(t *testing.T) {
	// Two identical rows: singular by construction.
	a := [][]byte{{1, 2}, {1, 2}}
	if _, err := InvertMatrix(a); !errors.Is(err, ErrSingular) {
		t.Errorf("singular matrix error = %v, want ErrSingular", err)
	}
	// The zero matrix too.
	z := [][]byte{{0, 0}, {0, 0}}
	if _, err := InvertMatrix(z); !errors.Is(err, ErrSingular) {
		t.Errorf("zero matrix error = %v, want ErrSingular", err)
	}
	// Ragged input is a shape error, not a panic.
	if _, err := InvertMatrix([][]byte{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

// TestRSParityMatrixMDS checks the property the whole construction
// exists for: with the systematic generator [I; P], EVERY square
// submatrix formed by k of the k+m generator rows is invertible, so any
// k surviving strips determine the data.
func TestRSParityMatrixMDS(t *testing.T) {
	for _, sh := range [][2]int{{2, 2}, {3, 3}, {4, 3}, {5, 4}, {6, 3}} {
		k, m := sh[0], sh[1]
		p, err := RSParityMatrix(k, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != m || len(p[0]) != k {
			t.Fatalf("k=%d m=%d: parity matrix is %dx%d", k, m, len(p), len(p[0]))
		}
		n := k + m
		// Enumerate all C(n, k) row subsets via a k-combination counter.
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		for {
			rows := make([][]byte, k)
			for r, i := range idx {
				if i < k {
					rows[r] = make([]byte, k)
					rows[r][i] = 1
				} else {
					rows[r] = p[i-k]
				}
			}
			if _, err := InvertMatrix(rows); err != nil {
				t.Fatalf("k=%d m=%d: row subset %v not invertible: %v", k, m, idx, err)
			}
			// Advance the combination.
			i := k - 1
			for i >= 0 && idx[i] == n-k+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
}

func TestRSParityMatrixBounds(t *testing.T) {
	for _, sh := range [][2]int{{0, 2}, {2, 0}, {255, 2}, {-1, 1}} {
		if _, err := RSParityMatrix(sh[0], sh[1]); err == nil {
			t.Errorf("RSParityMatrix(%d, %d) accepted", sh[0], sh[1])
		}
	}
	if _, err := RSParityMatrix(253, 3); err != nil {
		t.Errorf("RSParityMatrix(253, 3) at the field limit: %v", err)
	}
}
