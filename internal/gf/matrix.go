package gf

import (
	"errors"
	"fmt"
)

// ErrSingular is returned by InvertMatrix for a non-invertible input.
var ErrSingular = errors.New("gf: matrix is singular")

// MulMatrix returns the matrix product a*b over GF(2^8). a is r×n, b is
// n×c; the result is r×c. It panics on mismatched inner dimensions.
func MulMatrix(a, b [][]byte) [][]byte {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n, c := len(b), len(b[0])
	out := make([][]byte, len(a))
	for i, row := range a {
		if len(row) != n {
			panic(fmt.Sprintf("gf: %d-wide row against %d-tall matrix", len(row), n))
		}
		out[i] = make([]byte, c)
		for j := 0; j < c; j++ {
			var acc byte
			for t := 0; t < n; t++ {
				acc ^= Mul(row[t], b[t][j])
			}
			out[i][j] = acc
		}
	}
	return out
}

// InvertMatrix returns the inverse of the square matrix a over GF(2^8)
// by Gauss-Jordan elimination with partial pivoting (any nonzero pivot
// works in a field of characteristic 2). The input is not modified.
func InvertMatrix(a [][]byte) ([][]byte, error) {
	n := len(a)
	// Augmented matrix [a | I], reduced in place.
	work := make([][]byte, n)
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("gf: inverting a %dx%d matrix", n, len(row))
		}
		work[i] = make([]byte, 2*n)
		copy(work[i], row)
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		work[col], work[pivot] = work[pivot], work[col]
		if inv := Inv(work[col][col]); inv != 1 {
			for j := col; j < 2*n; j++ {
				work[col][j] = Mul(work[col][j], inv)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			for j := col; j < 2*n; j++ {
				work[r][j] ^= Mul(f, work[col][j])
			}
		}
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = work[i][n:]
	}
	return out, nil
}

// RSParityMatrix builds the m×k parity submatrix of a systematic MDS
// generator for k data symbols and m parities over GF(2^8). The full
// (k+m)×k generator starts as a Vandermonde matrix on the distinct
// evaluation points 0..k+m-1 (every k×k row subset of which is
// invertible); right-multiplying by the inverse of its top k×k block
// turns the top into the identity without disturbing that property — the
// standard systematic construction (Jerasure, klauspost/reedsolomon use
// the same trick, because naively overwriting the top rows with I breaks
// the MDS guarantee). The returned rows are the bottom m rows: parity i
// is the data dotted with row i.
func RSParityMatrix(k, m int) ([][]byte, error) {
	n := k + m
	if k < 1 || m < 1 || n > 256 {
		return nil, fmt.Errorf("gf: need k >= 1, m >= 1, k+m <= 256, got k=%d m=%d", k, m)
	}
	// Vandermonde rows over points 0..n-1 with the 0^0 = 1 convention.
	vand := make([][]byte, n)
	for i := range vand {
		vand[i] = make([]byte, k)
		acc := byte(1)
		for j := 0; j < k; j++ {
			vand[i][j] = acc
			acc = Mul(acc, byte(i))
		}
	}
	top, err := InvertMatrix(vand[:k])
	if err != nil {
		// Unreachable: the top block is Vandermonde on distinct points.
		return nil, err
	}
	return MulMatrix(vand[k:], top), nil
}
