package gf

import (
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	if err := quick.Check(func(a, b, c byte) bool {
		// Commutativity and associativity of multiplication.
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// Distributivity over addition.
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInverses(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
		if got := Div(byte(a), byte(a)); got != 1 {
			t.Fatalf("a / a = %d for a=%d", got, a)
		}
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	if err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorOrder(t *testing.T) {
	// g = 2 must generate the full multiplicative group: g^i distinct for
	// i in 0..254 and g^255 = 1.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if v == 0 || seen[v] {
			t.Fatalf("g^%d = %d repeats or is zero", i, v)
		}
		seen[v] = true
	}
	if Exp(255) != 1 {
		t.Fatalf("g^255 = %d, want 1", Exp(255))
	}
	if Exp(-1) != Exp(254) {
		t.Fatalf("negative exponents must wrap")
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("exp(log(%d)) != %d", a, a)
		}
	}
}

func TestMul2SliceMatchesMul(t *testing.T) {
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 256)
	Mul2Slice(dst, src)
	for i := range src {
		if dst[i] != Mul(src[i], 2) {
			t.Fatalf("Mul2Slice(%d) = %d, want %d", src[i], dst[i], Mul(src[i], 2))
		}
	}
}

func TestMulSliceVariants(t *testing.T) {
	src := []byte{0, 1, 2, 3, 0x80, 0xff, 0x1d, 77}
	for c := 0; c < 256; c++ {
		dst := make([]byte, len(src))
		MulSlice(dst, src, byte(c))
		for i := range src {
			if dst[i] != Mul(src[i], byte(c)) {
				t.Fatalf("MulSlice c=%d src=%d: got %d", c, src[i], dst[i])
			}
		}
		acc := make([]byte, len(src))
		copy(acc, src)
		MulXorSlice(acc, src, byte(c))
		for i := range src {
			if acc[i] != src[i]^Mul(src[i], byte(c)) {
				t.Fatalf("MulXorSlice c=%d src=%d: got %d", c, src[i], acc[i])
			}
		}
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Div(1, 0) },
		func() { Inv(0) },
		func() { Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
