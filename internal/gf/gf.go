// Package gf implements arithmetic in the finite field GF(2^8) with the
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d) — the same field
// the Linux RAID-6 driver and Jerasure's Reed-Solomon path use. It is the
// substrate for the Reed-Solomon P+Q baseline (package rs), which the
// paper's introduction cites as the conventional, finite-field-arithmetic
// RAID-6 solution that the XOR-based array codes outperform.
package gf

// Poly is the primitive polynomial used for GF(2^8), in binary
// representation (x^8 + x^4 + x^3 + x^2 + 1).
const Poly = 0x11d

var (
	expTable [512]byte // exp[i] = g^i, doubled to avoid mod 255 in Mul
	logTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a + b (= a - b) in GF(2^8).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: zero has no inverse")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns g^n for the field generator g = 2.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Log returns log_g(a). It panics if a is zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(logTable[a])
}

// MulSlice sets dst[i] = c * src[i] for all i.
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf: length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		lc := int(logTable[c])
		for i, v := range src {
			if v == 0 {
				dst[i] = 0
			} else {
				dst[i] = expTable[lc+int(logTable[v])]
			}
		}
	}
}

// MulXorSlice sets dst[i] ^= c * src[i] for all i.
func MulXorSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf: length mismatch")
	}
	switch c {
	case 0:
	case 1:
		for i, v := range src {
			dst[i] ^= v
		}
	default:
		lc := int(logTable[c])
		for i, v := range src {
			if v != 0 {
				dst[i] ^= expTable[lc+int(logTable[v])]
			}
		}
	}
}

// Mul2Slice sets dst[i] = 2 * src[i], the Horner step of the RAID-6 Q
// computation. It is written without table lookups, mirroring the
// SIMD-friendly formulation the Linux kernel uses.
func Mul2Slice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: length mismatch")
	}
	for i, v := range src {
		d := v << 1
		if v&0x80 != 0 {
			d ^= byte(Poly & 0xff)
		}
		dst[i] = d
	}
}
