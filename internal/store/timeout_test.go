package store

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// scriptedStore hands out one scripted File for every path.
type scriptedStore struct{ f File }

func (s scriptedStore) Open(string) (File, error)   { return s.f, nil }
func (s scriptedStore) Create(string) (File, error) { return s.f, nil }
func (s scriptedStore) Rename(_, _ string) error    { return nil }
func (s scriptedStore) Remove(string) error         { return nil }

// hangFile hangs its first ReadAt on a channel forever (until the test
// releases it) and serves data on every later call — a device that went
// dark mid-read and came back.
type hangFile struct {
	mu      sync.Mutex
	reads   int
	release chan struct{}
	data    []byte
}

func (f *hangFile) ReadAt(b []byte, _ int64) (int, error) {
	f.mu.Lock()
	f.reads++
	first := f.reads == 1
	f.mu.Unlock()
	if first {
		<-f.release
		// Late completion: scribble over the buffer we were handed. With
		// AttemptTimeout this is the retry layer's private per-attempt
		// buffer, so the caller's accepted data must stay intact (the
		// race detector patrols this).
		for i := range b {
			b[i] = 0xEE
		}
		return len(b), nil
	}
	return copy(b, f.data), nil
}

func (f *hangFile) WriteAt(b []byte, _ int64) (int, error) { return len(b), nil }
func (f *hangFile) Size() (int64, error)                   { return int64(len(f.data)), nil }
func (f *hangFile) Sync() error                            { return nil }
func (f *hangFile) Close() error                           { return nil }

// TestAttemptTimeoutAbandonsHungRead is the deadline contract end to
// end: a ReadAt that hangs past AttemptTimeout is abandoned, billed as
// one retry, and the retried attempt's data is returned — then the
// abandoned call's late completion lands in its own private buffer, not
// in the caller's.
func TestAttemptTimeoutAbandonsHungRead(t *testing.T) {
	release := make(chan struct{})
	f := &hangFile{release: release, data: []byte("recovered")}
	reg := obs.NewRegistry()
	const deadline = 50 * time.Millisecond
	p := RetryPolicy{
		MaxAttempts:    3,
		BaseBackoff:    time.Millisecond,
		Jitter:         -1,
		AttemptTimeout: deadline,
		Registry:       reg,
		// Backoff waits are instant; the deadline timer takes a short
		// real beat so a prompt attempt always beats it to the select.
		Sleep: func(ctx context.Context, d time.Duration) error {
			if d >= deadline {
				time.Sleep(10 * time.Millisecond)
			}
			return ctx.Err()
		},
	}
	st := WithRetry(scriptedStore{f}, context.Background(), p)
	h, err := st.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, len(f.data))
	n, err := h.ReadAt(b, 0)
	if err != nil || n != len(f.data) || string(b) != "recovered" {
		t.Fatalf("ReadAt = %d, %v, %q; want full clean read after the timeout retry", n, err, b)
	}
	f.mu.Lock()
	reads := f.reads
	f.mu.Unlock()
	if reads != 2 {
		t.Errorf("reads = %d, want 2 (hung attempt + retried attempt)", reads)
	}
	if got := reg.Snapshot().Counters["shard.retry.total"]; got != 1 {
		t.Errorf("shard.retry.total = %d, want 1 (the abandoned attempt)", got)
	}
	// Release the hung attempt and give its late completion a moment:
	// the accepted buffer must be untouched by the 0xEE scribble.
	close(release)
	time.Sleep(20 * time.Millisecond)
	if string(b) != "recovered" {
		t.Errorf("caller's buffer corrupted by the abandoned attempt: %q", b)
	}
}

// TestAttemptTimeoutFaultKind pins the classification: an exhausted
// deadline surfaces as a transient KindTimeout fault attributed to the
// operation, so breakers and the ladder can tell slowness from
// flakiness.
func TestAttemptTimeoutFaultKind(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	p := RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, Jitter: -1,
		AttemptTimeout: time.Millisecond}
	_, err := doValue(p, context.Background(), "read", "shard.d00", func() (int, error) {
		<-block
		return 0, nil
	})
	if !IsKind(err, KindTimeout) {
		t.Fatalf("err = %v, want KindTimeout", err)
	}
	if !IsTransient(err) {
		t.Errorf("timeout fault must be transient (retryable), got %v", err)
	}
	var fa *Fault
	if !errors.As(err, &fa) || fa.Op != "read" || fa.Path != "shard.d00" {
		t.Errorf("fault attribution = %+v, want op=read path=shard.d00", fa)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want to unwrap to context.DeadlineExceeded", err)
	}
}

// TestAttemptTimeoutZeroSpawnsNothing checks the historical path is
// untouched: without AttemptTimeout the attempt runs on the calling
// goroutine (a scripted panic would otherwise be recovered elsewhere).
func TestAttemptTimeoutZeroSpawnsNothing(t *testing.T) {
	var p RetryPolicy
	calls := 0
	v, err := attemptOnce(p, context.Background(), "read", "x", func() (string, error) {
		calls++
		return "direct", nil
	})
	if v != "direct" || err != nil || calls != 1 {
		t.Errorf("attemptOnce = %q, %v (%d calls); want direct inline call", v, err, calls)
	}
}
