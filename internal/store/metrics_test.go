package store_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/store/faultstore"
)

// TestWithMetricsCounts: every operation and every byte moved is billed.
func TestWithMetricsCounts(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st := store.WithMetrics(store.OS{}, reg)

	path := filepath.Join(dir, "f")
	f, err := st.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 28), 100); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := st.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if size, err := g.Size(); err != nil || size != 128 {
		t.Fatalf("Size = %d, %v, want 128", size, err)
	}
	if _, err := g.ReadAt(make([]byte, 128), 0); err != nil {
		t.Fatal(err)
	}
	g.Close()

	if err := st.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}

	want := map[string]uint64{
		"store.bytes_written": 128,
		"store.bytes_read":    128,
		"store.writes":        2,
		"store.reads":         1,
		"store.opens":         1,
		"store.creates":       1,
		"store.syncs":         1,
	}
	for name, v := range want {
		if got := reg.Counter(name).Value(); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

// TestWithMetricsNilRegistry: a nil registry adds no wrapper.
func TestWithMetricsNilRegistry(t *testing.T) {
	base := store.OS{}
	if st := store.WithMetrics(base, nil); st != store.Store(base) {
		t.Errorf("WithMetrics(base, nil) = %T, want the base store unwrapped", st)
	}
}

// TestWithMetricsUnderRetry: with the metrics layer below the retry
// layer, a read that fails transiently twice before succeeding bills
// three read attempts — the true I/O amplification — while only the
// final success moves the byte counter (the injected failures return no
// data).
func TestWithMetricsUnderRetry(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()

	path := filepath.Join(dir, "f")
	f, err := (store.OS{}).Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	flaky := faultstore.New(store.OS{}, faultstore.Config{
		Seed:  1,
		Rules: []faultstore.Rule{{Op: faultstore.OpRead, Kind: faultstore.Transient, Prob: 1, Count: 2}},
	})
	st := store.WithRetry(store.WithMetrics(flaky, reg), context.Background(), store.RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: time.Nanosecond,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		Registry:    reg,
	})

	g, err := st.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.ReadAt(make([]byte, 64), 0); err != nil {
		t.Fatalf("read through retry layer: %v", err)
	}

	if got := reg.Counter("store.reads").Value(); got != 3 {
		t.Errorf("store.reads = %d, want 3 (two injected failures + success)", got)
	}
	if got := reg.Counter("store.bytes_read").Value(); got != 64 {
		t.Errorf("store.bytes_read = %d, want 64", got)
	}
	if got := reg.Counter("shard.retry.total").Value(); got != 2 {
		t.Errorf("shard.retry.total = %d, want 2", got)
	}
}

// TestWithMetricsErrorPaths: failed opens bill nothing.
func TestWithMetricsErrorPaths(t *testing.T) {
	reg := obs.NewRegistry()
	st := store.WithMetrics(store.OS{}, reg)
	if _, err := st.Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("open of missing file succeeded")
	} else if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
	if got := reg.Counter("store.opens").Value(); got != 0 {
		t.Errorf("failed open billed store.opens = %d, want 0", got)
	}
}
