package store

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// TestOSRoundTrip exercises the os-backed store end to end: create,
// positional writes through OffsetWriter, size, sync, rename, positional
// reads through SectionReader, remove.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := OS{}
	path := filepath.Join(dir, "a.bin")

	f, err := st.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("hello positional world")
	w := &OffsetWriter{F: f}
	for _, chunk := range [][]byte{content[:5], content[5:]} {
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if size, err := f.Size(); err != nil || size != int64(len(content)) {
		t.Fatalf("Size = %d, %v; want %d", size, err, len(content))
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	moved := filepath.Join(dir, "b.bin")
	if err := st.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	f, err = st.Open(moved)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(SectionReader(f, int64(len(content))))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("read back %q, want %q", got, content)
	}
	f.Close()

	if err := st.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(moved); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("file still present after Remove: %v", err)
	}
}

// TestOSOpenMissing checks the not-exist path surfaces fs.ErrNotExist so
// the shard probe can classify it as StateMissing.
func TestOSOpenMissing(t *testing.T) {
	_, err := OS{}.Open(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Open missing = %v, want fs.ErrNotExist", err)
	}
}

// TestOffsetWriterIdempotentRewrite pins the property the retry layer
// depends on: rewriting the same offset range (as a retried WriteAt
// does after a torn write) leaves exactly the intended bytes.
func TestOffsetWriterIdempotentRewrite(t *testing.T) {
	dir := t.TempDir()
	st := OS{}
	path := filepath.Join(dir, "torn.bin")
	f, err := st.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	full := []byte("0123456789")
	// Simulate a torn write: half the buffer lands...
	if _, err := f.WriteAt(full[:5], 0); err != nil {
		t.Fatal(err)
	}
	// ...then the retry rewrites the whole range at the same offset.
	if _, err := f.WriteAt(full, 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatalf("after rewrite: %q, want %q", got, full)
	}
}

// TestFaultClassification checks the transient/permanent split that the
// retry loop keys on, including errors.Is/As plumbing.
func TestFaultClassification(t *testing.T) {
	tr := NewTransient("read", "p", ErrInjected)
	pe := NewPermanent("write", "q", ErrInjected)
	if !IsTransient(tr) {
		t.Error("transient fault not recognized")
	}
	if IsTransient(pe) {
		t.Error("permanent fault misclassified as transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error misclassified as transient")
	}
	if !errors.Is(tr, ErrInjected) {
		t.Error("fault does not unwrap to its cause")
	}
	var f *Fault
	if !errors.As(tr, &f) || f.Op != "read" || f.Path != "p" {
		t.Errorf("errors.As fault = %+v", f)
	}
	// Wrapped transients stay transient.
	if !IsTransient(NewTransient("sync", "r", tr)) {
		t.Error("wrapped transient fault not recognized")
	}
}
