package store

import (
	"errors"
	"fmt"
)

// ErrInjected is the sentinel wrapped by every fault the faultstore
// injects, so tests can tell injected failures from real ones.
var ErrInjected = errors.New("store: injected fault")

// A Fault is a classified I/O failure: it names the operation and path
// it struck and says whether retrying can help. The retry layer treats
// any error that does not carry a Fault (or another Transient() bool
// implementation) as permanent — real filesystem errors fail fast, and
// only explicitly classified failures burn backoff budget.
type Fault struct {
	Op        string // "read", "write", "open", ...
	Path      string
	Transient bool
	Err       error
}

func (f *Fault) Error() string {
	kind := "permanent"
	if f.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("store: %s %s %s: %v", kind, f.Op, f.Path, f.Err)
}

func (f *Fault) Unwrap() error { return f.Err }

// NewTransient wraps err as a retryable fault.
func NewTransient(op, path string, err error) *Fault {
	return &Fault{Op: op, Path: path, Transient: true, Err: err}
}

// NewPermanent wraps err as a non-retryable fault.
func NewPermanent(op, path string, err error) *Fault {
	return &Fault{Op: op, Path: path, Transient: false, Err: err}
}

// transienter is the interface any error can implement to opt into
// retries.
type transienter interface{ IsTransient() bool }

// IsTransient reports whether err is worth retrying: a *Fault marked
// transient, or any error implementing IsTransient() bool.
func IsTransient(err error) bool {
	var f *Fault
	if errors.As(err, &f) {
		return f.Transient
	}
	var t transienter
	if errors.As(err, &t) {
		return t.IsTransient()
	}
	return false
}
