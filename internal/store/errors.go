package store

import (
	"errors"
	"fmt"
)

// ErrInjected is the sentinel wrapped by every fault the faultstore
// injects, so tests can tell injected failures from real ones.
var ErrInjected = errors.New("store: injected fault")

// FaultKind refines a Fault beyond transient/permanent: what class of
// failure struck, so the layers above can react differently to a slow
// node (hedge, breaker) than to a flaky disk (retry).
type FaultKind int

const (
	// KindIO is an ordinary I/O failure (the zero value — every fault
	// predating the node layer is one).
	KindIO FaultKind = iota
	// KindTimeout marks an attempt abandoned at its deadline
	// (RetryPolicy.AttemptTimeout or a node-level op budget). Transient
	// by construction: the next attempt may land on a faster path.
	KindTimeout
	// KindNodeDown marks an operation refused because the node holding
	// the path is out (whole-node outage or a flap's down phase).
	KindNodeDown
	// KindBreakerOpen marks a fast-fail from an open per-node circuit
	// breaker: the node was already judged unhealthy, so the operation
	// was refused without touching it. Permanent by construction — the
	// caller should treat the node's shards as erased, not retry.
	KindBreakerOpen
)

func (k FaultKind) String() string {
	switch k {
	case KindIO:
		return "io"
	case KindTimeout:
		return "timeout"
	case KindNodeDown:
		return "node-down"
	case KindBreakerOpen:
		return "breaker-open"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// A Fault is a classified I/O failure: it names the operation and path
// it struck, says whether retrying can help, and carries the failure
// class (Kind). The retry layer treats any error that does not carry a
// Fault (or another Transient() bool implementation) as permanent —
// real filesystem errors fail fast, and only explicitly classified
// failures burn backoff budget.
type Fault struct {
	Op        string // "read", "write", "open", ...
	Path      string
	Kind      FaultKind
	Transient bool
	Err       error
}

func (f *Fault) Error() string {
	kind := "permanent"
	if f.Transient {
		kind = "transient"
	}
	if f.Kind != KindIO {
		kind += " " + f.Kind.String()
	}
	return fmt.Sprintf("store: %s %s %s: %v", kind, f.Op, f.Path, f.Err)
}

func (f *Fault) Unwrap() error { return f.Err }

// NewTransient wraps err as a retryable fault.
func NewTransient(op, path string, err error) *Fault {
	return &Fault{Op: op, Path: path, Transient: true, Err: err}
}

// NewPermanent wraps err as a non-retryable fault.
func NewPermanent(op, path string, err error) *Fault {
	return &Fault{Op: op, Path: path, Transient: false, Err: err}
}

// NewTimeout wraps err as a deadline fault: transient (the retry layer
// may re-issue the attempt) and classified KindTimeout so breakers and
// the degradation ladder can count slowness separately from flakiness.
func NewTimeout(op, path string, err error) *Fault {
	return &Fault{Op: op, Path: path, Kind: KindTimeout, Transient: true, Err: err}
}

// transienter is the interface any error can implement to opt into
// retries.
type transienter interface{ IsTransient() bool }

// IsTransient reports whether err is worth retrying: a *Fault marked
// transient, or any error implementing IsTransient() bool.
func IsTransient(err error) bool {
	var f *Fault
	if errors.As(err, &f) {
		return f.Transient
	}
	var t transienter
	if errors.As(err, &t) {
		return t.IsTransient()
	}
	return false
}

// IsKind reports whether err carries a Fault of the given kind.
func IsKind(err error, kind FaultKind) bool {
	var f *Fault
	return errors.As(err, &f) && f.Kind == kind
}
