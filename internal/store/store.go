// Package store abstracts the filesystem under the shard data path so
// that fault tolerance can be engineered — and tested — instead of
// assumed. The shard package performs every byte of I/O through the
// Store interface: the OS implementation is a thin veneer over the os
// package, the faultstore subpackage wraps any Store with deterministic
// seeded fault injection (transient errors, latency, read bit-flips,
// torn writes, vanished files), and WithRetry layers capped-exponential-
// backoff retries with jitter over any Store's transient failures.
//
// File access is positional (ReadAt/WriteAt) rather than streaming on
// purpose: a positional operation is idempotent, so a transient failure
// — including a torn write that persisted a partial buffer — can be
// retried by simply re-issuing the same call, with no seek state to
// repair.
package store

import (
	"context"
	"io"
	"os"
)

// File is one open file of a Store. Reads and writes are positional
// (idempotent under retry); Size replaces Stat for the one attribute the
// data path needs.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Size returns the current byte length of the file.
	Size() (int64, error)
	// Sync flushes the file's contents to stable storage.
	Sync() error
}

// Store is a minimal filesystem: exactly the operations the shard data
// path performs. Paths are ordinary operating-system paths; wrappers
// match on them to scope fault schedules to particular shards.
type Store interface {
	// Open opens an existing file for reading.
	Open(path string) (File, error)
	// Create creates (or truncates) a file for writing.
	Create(path string) (File, error)
	// Rename atomically replaces newPath with oldPath's file.
	Rename(oldPath, newPath string) error
	// Remove deletes a file.
	Remove(path string) error
}

// ContextBinder is implemented by stores whose side effects deserve
// causal attribution (the faultstore, the nodestore): Bind returns a
// view of the store whose events are recorded into the trace carried by
// ctx. The shard data path binds its per-operation context before
// wrapping the store with the retry layer, so injected faults and the
// retries they trigger land in the same trace.
type ContextBinder interface {
	Bind(ctx context.Context) Store
}

// NodeMapper is implemented by stores that place paths across simulated
// fault domains (the nodestore). The shard encoder uses it to record
// where each shard landed in the manifest (v3 placement block), and the
// recovery probe uses it to attribute per-shard health to nodes.
type NodeMapper interface {
	// NodeFor returns the node index the path lives on (assigning one
	// by the placement policy on first sight).
	NodeFor(path string) int
	// NodeCount is the number of simulated nodes.
	NodeCount() int
	// PlacementPolicy names the policy ("round-robin", "spread") for
	// the manifest record.
	PlacementPolicy() string
}

// OS is the real-filesystem Store.
type OS struct{}

func (OS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OS) Create(path string) (File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (OS) Remove(path string) error { return os.Remove(path) }

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// SectionReader adapts a File to an io.Reader over [0, size), for the
// streaming read paths (wrap it in a bufio.Reader for throughput).
func SectionReader(f File, size int64) *io.SectionReader {
	return io.NewSectionReader(f, 0, size)
}

// OffsetWriter adapts a File to an io.Writer that appends at a tracked
// offset through positional WriteAt calls, so a retried write lands at
// the same place it tore.
type OffsetWriter struct {
	F   File
	Off int64
}

func (w *OffsetWriter) Write(p []byte) (int, error) {
	n, err := w.F.WriteAt(p, w.Off)
	w.Off += int64(n)
	return n, err
}
