package faultstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// TestLatencyCancelledMidSleep is the regression for injected latency
// ignoring its context: a caller cancelled mid-delay must get a
// transient store.Fault back promptly instead of serving out the full
// injected sleep.
func TestLatencyCancelledMidSleep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.bin")
	if err := os.WriteFile(path, []byte("abcd"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New(store.OS{}, Config{Seed: 1, Rules: []Rule{
		{Op: OpRead, Kind: Latency, Prob: 1, Delay: time.Minute},
	}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f, err := fs.Bind(ctx).Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = f.ReadAt(make([]byte, 4), 0)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled read took %v, want well under the 1-minute injected delay", elapsed)
	}
	if !store.IsTransient(err) {
		t.Fatalf("err = %v, want a transient store.Fault", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want to unwrap to context.Canceled", err)
	}
	var fa *store.Fault
	if !errors.As(err, &fa) || fa.Op != OpRead.String() {
		t.Errorf("fault attribution = %+v, want op=read", fa)
	}
}

// TestLatencyInjectedSleep checks Config.Sleep replaces the real wait:
// the soaks run thousand-schedule latency chaos on a fake clock.
func TestLatencyInjectedSleep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.bin")
	if err := os.WriteFile(path, []byte("abcd"), 0o644); err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	fs := New(store.OS{}, Config{
		Seed:  1,
		Rules: []Rule{{Op: OpRead, Kind: Latency, Prob: 1, Delay: time.Minute}},
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		},
	})
	f, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if _, err := f.ReadAt(make([]byte, 4), 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fake-clock read took %v of wall clock", elapsed)
	}
	if len(slept) != 1 || slept[0] != time.Minute {
		t.Errorf("fake clock saw sleeps %v, want exactly the injected 1m delay", slept)
	}
}
