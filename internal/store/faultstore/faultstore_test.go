package faultstore

import (
	"bytes"
	"context"
	"errors"
	"io/fs"
	"math/bits"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

func writeFile(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicSchedule checks the core chaos property: the same
// seed and the same operation sequence produce the same fault schedule,
// error for error.
func TestDeterministicSchedule(t *testing.T) {
	run := func() []string {
		dir := t.TempDir()
		path := filepath.Join(dir, "f.bin")
		writeFile(t, path, make([]byte, 4096))
		st := New(store.OS{}, Config{Seed: 99, Rules: []Rule{
			{Op: OpRead, Kind: Transient, Prob: 0.5},
		}})
		f, err := st.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var outcomes []string
		buf := make([]byte, 64)
		for i := 0; i < 50; i++ {
			if _, err := f.ReadAt(buf, 0); err != nil {
				outcomes = append(outcomes, "err")
			} else {
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d: %v vs %v", i, a, b)
		}
	}
	// Sanity: a 50% rule over 50 ops should have fired at least once.
	fired := false
	for _, o := range a {
		if o == "err" {
			fired = true
		}
	}
	if !fired {
		t.Error("transient rule never fired over 50 reads")
	}
}

// TestBitFlipExactlyOneBit checks the bitrot fault: one read returns the
// data with exactly one flipped bit, and later reads are clean again
// (the file itself is untouched).
func TestBitFlipExactlyOneBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	content := bytes.Repeat([]byte{0xA5}, 1024)
	writeFile(t, path, content)

	reg := obs.NewRegistry()
	st := New(store.OS{}, Config{Seed: 3, Registry: reg, Rules: []Rule{
		{Op: OpRead, Kind: BitFlip, Prob: 1, Count: 1},
	}})
	f, err := st.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	got := make([]byte, len(content))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range got {
		diffBits += bits.OnesCount8(got[i] ^ content[i])
	}
	if diffBits != 1 {
		t.Errorf("first read differs by %d bits, want exactly 1", diffBits)
	}
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("second read still corrupt; bit-flip should be read-path only")
	}
	snap := reg.Snapshot()
	if snap.Counters["faultstore.injected.bitflip"] != 1 || snap.Counters["faultstore.injected.total"] != 1 {
		t.Errorf("injection counters = %v, want one bitflip", snap.Counters)
	}
}

// TestTornWriteHealedByRetry checks the idempotence story end to end: a
// torn write persists half the buffer and fails transiently; the retry
// layer rewrites the same range and the final bytes are whole.
func TestTornWriteHealedByRetry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	reg := obs.NewRegistry()
	faulty := New(store.OS{}, Config{Seed: 1, Registry: reg, Rules: []Rule{
		{Op: OpWrite, Kind: TornWrite, Prob: 1, Count: 1},
	}})
	st := store.WithRetry(faulty, context.Background(), store.RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})

	f, err := st.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("all of this must survive the torn write")
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatalf("retried WriteAt: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("file = %q, want %q", got, content)
	}
	if got := reg.Snapshot().Counters["faultstore.injected.torn"]; got != 1 {
		t.Errorf("faultstore.injected.torn = %d, want 1", got)
	}
}

// TestTornWriteWithoutRetryLeavesPartial pins what the fault actually
// does when nothing retries: half the buffer on disk, transient error
// returned.
func TestTornWriteWithoutRetryLeavesPartial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	st := New(store.OS{}, Config{Seed: 1, Rules: []Rule{
		{Op: OpWrite, Kind: TornWrite, Prob: 1, Count: 1},
	}})
	f, err := st.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	content := []byte("0123456789")
	n, err := f.WriteAt(content, 0)
	if !store.IsTransient(err) {
		t.Fatalf("torn write err = %v, want transient", err)
	}
	if n != len(content)/2 {
		t.Errorf("torn write persisted %d bytes, want %d", n, len(content)/2)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, content[:len(content)/2]) {
		t.Errorf("on disk: %q, want the first half %q", got, content[:len(content)/2])
	}
}

// TestVanish checks the disappearing-file fault: the victim read fails
// with fs.ErrNotExist, the file is gone from disk, and every later
// operation on the path agrees it does not exist.
func TestVanish(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	writeFile(t, path, make([]byte, 128))
	st := New(store.OS{}, Config{Seed: 5, Rules: []Rule{
		{Op: OpRead, Kind: Vanish, Prob: 1, Count: 1},
	}})
	f, err := st.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ReadAt(make([]byte, 16), 0); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("vanished read err = %v, want fs.ErrNotExist", err)
	}
	if store.IsTransient(err) {
		t.Error("vanish must be permanent, not retryable")
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Error("file still on disk after vanish")
	}
	if _, err := st.Open(path); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("reopening vanished path = %v, want fs.ErrNotExist", err)
	}
	// Recreating the path brings it back.
	nf, err := st.Create(path)
	if err != nil {
		t.Fatalf("recreate after vanish: %v", err)
	}
	nf.Close()
}

// TestRuleAfterAndCount checks the scheduling knobs: After skips early
// matches, Count caps total firings.
func TestRuleAfterAndCount(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	writeFile(t, path, make([]byte, 128))
	st := New(store.OS{}, Config{Seed: 1, Rules: []Rule{
		{Op: OpRead, Kind: Transient, Prob: 1, Count: 2, After: 1},
	}})
	f, err := st.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 16)
	var errs []bool
	for i := 0; i < 5; i++ {
		_, err := f.ReadAt(buf, 0)
		errs = append(errs, err != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("read outcomes = %v, want %v (After=1 skips one, Count=2 caps)", errs, want)
		}
	}
}

// TestProfiles checks every advertised profile parses and an unknown
// name is rejected.
func TestProfiles(t *testing.T) {
	for _, name := range Profiles() {
		cfg, err := Profile(name, 7)
		if err != nil {
			t.Errorf("Profile(%q) = %v", name, err)
		}
		if len(cfg.Rules) == 0 {
			t.Errorf("Profile(%q) has no rules", name)
		}
		if cfg.Seed != 7 {
			t.Errorf("Profile(%q) seed = %d, want 7", name, cfg.Seed)
		}
	}
	if _, err := Profile("nope", 1); err == nil {
		t.Error("unknown profile accepted")
	}
}
