// Package faultstore wraps any store.Store with deterministic, seeded
// fault injection: transient and permanent I/O errors, added latency,
// read-path bit-flips (bitrot), torn writes that persist a partial
// buffer before failing, and files that vanish mid-use. Every decision
// is drawn from a single seeded PRNG, so a fault schedule is a pure
// function of (seed, rules, operation sequence) — the chaos suite
// replays thousands of schedules and every failure reproduces from its
// seed alone.
package faultstore

import (
	"context"
	"fmt"
	"io/fs"
	"log/slog"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"

	"math/rand"
)

// Op names a store operation class for rule matching.
type Op int

const (
	OpAny Op = iota
	OpOpen
	OpCreate
	OpRead
	OpWrite
	OpSync
	OpRename
	OpRemove
)

func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Kind is the fault to inject when a rule fires.
type Kind int

const (
	// Transient fails the call with a retryable store.Fault.
	Transient Kind = iota
	// Permanent fails the call with a non-retryable store.Fault.
	Permanent
	// BitFlip lets a read succeed but flips one bit of the returned
	// buffer — silent corruption on the read path.
	BitFlip
	// TornWrite persists roughly half the buffer, then fails the call
	// with a transient fault (a retry rewrites the full range).
	TornWrite
	// Latency delays the call by the rule's Delay, then lets it through.
	Latency
	// Vanish removes the file from the underlying store; the failing
	// call and everything after it see fs.ErrNotExist (permanent).
	Vanish
)

func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case BitFlip:
		return "bitflip"
	case TornWrite:
		return "torn"
	case Latency:
		return "latency"
	case Vanish:
		return "vanish"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// A Rule arms one fault: when a matching operation occurs, it fires with
// probability Prob, at most Count times (0 = unlimited), skipping the
// first After matching calls.
type Rule struct {
	// Path is a substring the operation's path must contain ("" matches
	// every path).
	Path string
	// Op restricts the rule to one operation class (OpAny matches all).
	Op Op
	// Kind is the fault injected when the rule fires.
	Kind Kind
	// Prob is the per-call firing probability (<=0 never fires, >=1
	// fires on every eligible call).
	Prob float64
	// Count caps total firings (0 = unlimited).
	Count int
	// After skips the first After matching calls before the rule is
	// eligible.
	After int
	// Delay is the added latency for Kind == Latency.
	Delay time.Duration
}

// Config arms a fault store.
type Config struct {
	// Seed drives every probabilistic decision; equal seeds give equal
	// schedules for equal operation sequences.
	Seed int64
	// Rules are evaluated in order; the first that fires wins.
	Rules []Rule
	// Registry, when non-nil, receives faultstore.inject spans and
	// faultstore.injected.* counters.
	Registry *obs.Registry
	// Sleep, when non-nil, replaces the real latency wait (tests and
	// soaks inject an instant fake clock here). It must honor ctx
	// cancellation like store.SleepContext does.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Store is a fault-injecting store.Store. Bind attaches a request
// context so injections are recorded into its active trace; the unbound
// store injects silently into the registry only.
type Store struct {
	base  store.Store
	reg   *obs.Registry
	seed  int64
	sleep func(ctx context.Context, d time.Duration) error

	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	gone  map[string]bool // vanished paths
}

type ruleState struct {
	Rule
	seen  int
	fired int
}

// New wraps base with the configured fault schedule.
func New(base store.Store, cfg Config) *Store {
	s := &Store{
		base:  base,
		reg:   cfg.Registry,
		seed:  cfg.Seed,
		sleep: cfg.Sleep,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		gone:  make(map[string]bool),
	}
	if s.sleep == nil {
		s.sleep = store.SleepContext
	}
	for _, r := range cfg.Rules {
		s.rules = append(s.rules, &ruleState{Rule: r})
	}
	return s
}

// injection is one fired fault, resolved under the store lock.
type injection struct {
	kind  Kind
	op    Op
	path  string
	rule  int // index of the rule that fired
	delay time.Duration
	flip  int64 // PRNG draw for BitFlip placement
}

// decide scans the rules for op/path and returns the fault to inject,
// if any. It also reports whether the path has vanished.
func (s *Store) decide(op Op, path string) (*injection, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone[path] {
		return nil, true
	}
	for i, r := range s.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob < 1 && s.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		inj := &injection{kind: r.Kind, op: op, path: path, rule: i, delay: r.Delay, flip: s.rng.Int63()}
		if r.Kind == Vanish {
			s.gone[path] = true
		}
		return inj, false
	}
	return nil, false
}

// record bills one injection to the registry and — when ctx carries an
// active trace — emits a faultstore.inject event naming the seed, the
// rule that fired, and the struck operation, so a chaos failure report
// is reproducible from the flight-recorder dump alone.
func (s *Store) record(ctx context.Context, inj *injection) {
	obs.Emit(ctx, slog.LevelWarn, "faultstore.inject",
		slog.String("kind", inj.kind.String()),
		slog.String("op", inj.op.String()),
		slog.String("path", inj.path),
		slog.Int64("seed", s.seed),
		slog.Int("rule", inj.rule))
	if s.reg == nil {
		return
	}
	sp := obs.StartSpan(s.reg, "faultstore.inject")
	s.reg.Count("faultstore.injected.total", 1)
	s.reg.Count("faultstore.injected."+inj.kind.String(), 1)
	sp.End(nil)
}

// notExist builds the permanent error a vanished path produces.
func notExist(op Op, path string) error {
	return store.NewPermanent(op.String(), path, fs.ErrNotExist)
}

// apply resolves an injection into an error for call-level faults
// (Transient/Permanent/Vanish/Latency); BitFlip and TornWrite are
// handled by the callers that own the buffers.
func (s *Store) apply(ctx context.Context, inj *injection) error {
	if inj == nil {
		return nil
	}
	s.record(ctx, inj)
	switch inj.kind {
	case Transient:
		return store.NewTransient(inj.op.String(), inj.path, store.ErrInjected)
	case Permanent:
		return store.NewPermanent(inj.op.String(), inj.path, store.ErrInjected)
	case Vanish:
		s.base.Remove(inj.path)
		return notExist(inj.op, inj.path)
	case Latency:
		// Injected latency is cancellable: a caller whose deadline (or
		// whole operation) is cancelled mid-sleep gets a transient fault
		// back instead of serving out the delay — exactly what a real
		// slow device looks like to a deadline-bounded read.
		if err := s.sleep(ctx, inj.delay); err != nil {
			return store.NewTransient(inj.op.String(), inj.path, err)
		}
		return nil
	}
	return nil
}

// Bind implements store.ContextBinder: the returned view injects the
// same schedule (shared rule state and PRNG) but records every fired
// fault into the trace carried by ctx.
func (s *Store) Bind(ctx context.Context) store.Store {
	if ctx == nil {
		ctx = context.Background()
	}
	return &bound{s: s, ctx: ctx}
}

// bound is a context-carrying view of a Store.
type bound struct {
	s   *Store
	ctx context.Context
}

func (b *bound) Open(path string) (store.File, error)   { return b.s.open(b.ctx, path) }
func (b *bound) Create(path string) (store.File, error) { return b.s.create(b.ctx, path) }
func (b *bound) Rename(oldPath, newPath string) error   { return b.s.rename(b.ctx, oldPath, newPath) }
func (b *bound) Remove(path string) error               { return b.s.remove(b.ctx, path) }

func (s *Store) Open(path string) (store.File, error) {
	return s.open(context.Background(), path)
}

func (s *Store) open(ctx context.Context, path string) (store.File, error) {
	inj, gone := s.decide(OpOpen, path)
	if gone {
		return nil, notExist(OpOpen, path)
	}
	if err := s.apply(ctx, inj); err != nil {
		return nil, err
	}
	if inj != nil && (inj.kind == BitFlip || inj.kind == TornWrite) {
		// Data faults make no sense on open; treat as transient.
		return nil, store.NewTransient(OpOpen.String(), path, store.ErrInjected)
	}
	f, err := s.base.Open(path)
	if err != nil {
		return nil, err
	}
	return &file{s: s, ctx: ctx, f: f, path: path}, nil
}

func (s *Store) Create(path string) (store.File, error) {
	return s.create(context.Background(), path)
}

func (s *Store) create(ctx context.Context, path string) (store.File, error) {
	inj, _ := s.decide(OpCreate, path)
	// Creating a vanished path brings it back.
	s.mu.Lock()
	delete(s.gone, path)
	s.mu.Unlock()
	if err := s.apply(ctx, inj); err != nil {
		return nil, err
	}
	if inj != nil && (inj.kind == BitFlip || inj.kind == TornWrite) {
		return nil, store.NewTransient(OpCreate.String(), path, store.ErrInjected)
	}
	f, err := s.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{s: s, ctx: ctx, f: f, path: path}, nil
}

func (s *Store) Rename(oldPath, newPath string) error {
	return s.rename(context.Background(), oldPath, newPath)
}

func (s *Store) rename(ctx context.Context, oldPath, newPath string) error {
	inj, gone := s.decide(OpRename, oldPath)
	if gone {
		return notExist(OpRename, oldPath)
	}
	if err := s.apply(ctx, inj); err != nil {
		return err
	}
	if err := s.base.Rename(oldPath, newPath); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.gone, newPath)
	s.mu.Unlock()
	return nil
}

func (s *Store) Remove(path string) error {
	return s.remove(context.Background(), path)
}

func (s *Store) remove(ctx context.Context, path string) error {
	inj, gone := s.decide(OpRemove, path)
	if gone {
		// Removing a vanished file: make it true and succeed.
		s.base.Remove(path)
		return nil
	}
	if err := s.apply(ctx, inj); err != nil {
		return err
	}
	return s.base.Remove(path)
}

// file wraps one open file with the store's fault schedule, attributing
// injections to the context it was opened under.
type file struct {
	s    *Store
	ctx  context.Context
	f    store.File
	path string
}

func (f *file) ReadAt(b []byte, off int64) (int, error) {
	inj, gone := f.s.decide(OpRead, f.path)
	if gone {
		return 0, notExist(OpRead, f.path)
	}
	if inj != nil {
		switch inj.kind {
		case BitFlip:
			n, err := f.f.ReadAt(b, off)
			if n > 0 {
				f.s.record(f.ctx, inj)
				bit := inj.flip % int64(n*8)
				b[bit/8] ^= 1 << (bit % 8)
			}
			return n, err
		case TornWrite:
			// Torn faults only apply to writes; pass reads through.
		default:
			if err := f.s.apply(f.ctx, inj); err != nil {
				return 0, err
			}
		}
	}
	return f.f.ReadAt(b, off)
}

func (f *file) WriteAt(b []byte, off int64) (int, error) {
	inj, gone := f.s.decide(OpWrite, f.path)
	if gone {
		return 0, notExist(OpWrite, f.path)
	}
	if inj != nil {
		switch inj.kind {
		case TornWrite:
			f.s.record(f.ctx, inj)
			n := len(b) / 2
			if n > 0 {
				if wn, err := f.f.WriteAt(b[:n], off); err != nil {
					return wn, err
				}
			}
			return n, store.NewTransient(OpWrite.String(), f.path, store.ErrInjected)
		case BitFlip:
			// Bit-flips only apply to reads; pass writes through.
		default:
			if err := f.s.apply(f.ctx, inj); err != nil {
				return 0, err
			}
		}
	}
	return f.f.WriteAt(b, off)
}

func (f *file) Size() (int64, error) { return f.f.Size() }

func (f *file) Sync() error {
	inj, gone := f.s.decide(OpSync, f.path)
	if gone {
		return notExist(OpSync, f.path)
	}
	if err := f.s.apply(f.ctx, inj); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *file) Close() error { return f.f.Close() }

// Profile returns a named ready-made fault schedule. Profiles:
//
//	transient — 10% retryable read/write errors
//	latency   — 1ms delay on 20% of reads
//	bitrot    — a couple of read bit-flips over the run
//	torn      — 10% torn writes (retry heals them)
//	vanish    — one file disappears mid-run
//	chaos     — all of the above at lower rates
func Profile(name string, seed int64) (Config, error) {
	cfg := Config{Seed: seed}
	switch name {
	case "transient":
		cfg.Rules = []Rule{
			{Op: OpRead, Kind: Transient, Prob: 0.10},
			{Op: OpWrite, Kind: Transient, Prob: 0.10},
		}
	case "latency":
		cfg.Rules = []Rule{{Op: OpRead, Kind: Latency, Prob: 0.20, Delay: time.Millisecond}}
	case "bitrot":
		cfg.Rules = []Rule{{Op: OpRead, Kind: BitFlip, Prob: 0.05, Count: 2}}
	case "torn":
		cfg.Rules = []Rule{{Op: OpWrite, Kind: TornWrite, Prob: 0.10}}
	case "vanish":
		cfg.Rules = []Rule{{Op: OpRead, Kind: Vanish, Prob: 0.02, Count: 1}}
	case "chaos":
		cfg.Rules = []Rule{
			{Op: OpRead, Kind: Transient, Prob: 0.05},
			{Op: OpWrite, Kind: Transient, Prob: 0.05},
			{Op: OpWrite, Kind: TornWrite, Prob: 0.05},
			{Op: OpRead, Kind: BitFlip, Prob: 0.02, Count: 1},
			{Op: OpRead, Kind: Vanish, Prob: 0.005, Count: 1},
			{Op: OpRead, Kind: Latency, Prob: 0.05, Delay: 100 * time.Microsecond},
		}
	default:
		return Config{}, fmt.Errorf("faultstore: unknown profile %q", name)
	}
	return cfg, nil
}

// Profiles lists the names Profile accepts.
func Profiles() []string {
	return []string{"transient", "latency", "bitrot", "torn", "vanish", "chaos"}
}
