package nodestore

import "time"

// BreakerConfig arms the per-node circuit breakers. The zero value
// disables them.
type BreakerConfig struct {
	// Threshold is the number of consecutive node-level failures
	// (down refusals or op-budget timeouts) that trips a node's breaker
	// open. <= 0 disables the breaker.
	Threshold int
	// Cooldown is how long an open breaker fast-fails before admitting
	// one half-open probe (default 1s). Measured on the store's Now
	// clock, so tests drive it with a fake.
	Cooldown time.Duration
}

func (c BreakerConfig) enabled() bool { return c.Threshold > 0 }

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return time.Second
	}
	return c.Cooldown
}

type breakerState int

const (
	bClosed breakerState = iota
	bOpen
	bHalfOpen
)

// breaker is one node's circuit breaker: closed → open after Threshold
// consecutive node-level failures, open → half-open after Cooldown on
// the injected clock, half-open → closed on a successful probe (or back
// to open on a failed one). While open, every operation fast-fails with
// a permanent KindBreakerOpen fault — the degradation ladder reads that
// as "this node's shards are erased" and reaches for parity instead of
// burning its retry budget against a node already judged unhealthy.
// All methods are called under the store lock.
type breaker struct {
	state       breakerState
	consecutive int
	openedAt    time.Time
}

// allow reports whether an operation may proceed, transitioning an open
// breaker to half-open (the caller's operation becomes the probe) once
// the cooldown has elapsed.
func (b *breaker) allow(cfg BreakerConfig, now time.Time) bool {
	if !cfg.enabled() {
		return true
	}
	switch b.state {
	case bOpen:
		if now.Sub(b.openedAt) >= cfg.cooldown() {
			b.state = bHalfOpen
			return true
		}
		return false
	default:
		return true
	}
}

// wouldAllow is allow without the half-open transition — for spare-node
// selection, which must not consume the probe slot.
func (b *breaker) wouldAllow(cfg BreakerConfig, now time.Time) bool {
	if !cfg.enabled() || b.state != bOpen {
		return true
	}
	return now.Sub(b.openedAt) >= cfg.cooldown()
}

// fail records a node-level failure, reporting whether it tripped the
// breaker open (including a failed half-open probe re-opening it).
func (b *breaker) fail(cfg BreakerConfig, now time.Time) bool {
	if !cfg.enabled() {
		return false
	}
	if b.state == bHalfOpen {
		b.state = bOpen
		b.openedAt = now
		return true
	}
	b.consecutive++
	if b.state == bClosed && b.consecutive >= cfg.Threshold {
		b.state = bOpen
		b.openedAt = now
		return true
	}
	return false
}

// ok records a node-level success, reporting whether it closed a
// half-open breaker.
func (b *breaker) ok(cfg BreakerConfig) bool {
	if !cfg.enabled() {
		return false
	}
	was := b.state
	b.state = bClosed
	b.consecutive = 0
	return was == bHalfOpen
}
