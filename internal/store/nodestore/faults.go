package nodestore

import (
	"fmt"
	"math/rand"
	"time"
)

// NodeFaultKind classifies a node-level fault.
type NodeFaultKind int

const (
	// Outage takes the whole node down: every operation is refused with
	// a permanent KindNodeDown fault, so the shard probe hard-erases the
	// node's shards and the ladder reaches for parity immediately.
	Outage NodeFaultKind = iota
	// Flap cycles the node's membership: Period ops down, Period ops
	// up, repeating. Down-phase refusals are transient KindNodeDown
	// faults — the retry layer's backoff can ride out a short flap.
	Flap
	// LatencyFault injects Delay (± Jitter) of per-op latency on the
	// node, feeding the hedge quantile and the op-budget timeout path.
	LatencyFault
)

func (k NodeFaultKind) String() string {
	switch k {
	case Outage:
		return "outage"
	case Flap:
		return "flap"
	case LatencyFault:
		return "latency"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NodeFault is one rule of a node's deterministic fault schedule. Time
// is counted in gated operations charged to the node (not wall clock),
// so a schedule replays identically for an identical op sequence.
type NodeFault struct {
	// Node the rule applies to.
	Node int
	// Kind of fault.
	Kind NodeFaultKind
	// After arms the rule once the node has served this many ops.
	After int
	// For bounds the rule's life in ops once armed; 0 means forever.
	// For a Flap, the bound covers the whole up/down cycling.
	For int
	// Period is a Flap's half-cycle in ops (default 8): the node is
	// down for Period ops, up for Period, down again, …
	Period int
	// Delay is a LatencyFault's injected per-op latency.
	Delay time.Duration
	// Jitter widens Delay uniformly to [Delay, Delay+Jitter) per op.
	Jitter time.Duration
	// Prob gates a LatencyFault per op (0 or 1 mean always).
	Prob float64
}

func (f NodeFault) period() int {
	if f.Period <= 0 {
		return 8
	}
	return f.Period
}

// active reports whether the rule covers 0-based op index idx.
func (f NodeFault) active(idx int) bool {
	if idx < f.After {
		return false
	}
	return f.For <= 0 || idx < f.After+f.For
}

// availAt evaluates the schedule's availability rules for node at op
// index idx: down, and whether the refusal is permanent (an Outage) or
// transient (a Flap's down phase).
func availAt(faults []NodeFault, node, idx int) (down, perm bool) {
	for _, f := range faults {
		if f.Node != node || !f.active(idx) {
			continue
		}
		switch f.Kind {
		case Outage:
			down, perm = true, true
		case Flap:
			if ((idx-f.After)/f.period())%2 == 0 {
				down = true
			}
		}
	}
	return down, perm
}

// latencyAt evaluates the schedule's latency rules for node at op index
// idx, consuming rng draws for probability gates and jitter. Callers
// that hedge call it twice: the second draw is the hedged request's
// independent sample.
func latencyAt(faults []NodeFault, node, idx int, rng *rand.Rand) time.Duration {
	var total time.Duration
	for _, f := range faults {
		if f.Node != node || f.Kind != LatencyFault || !f.active(idx) {
			continue
		}
		if f.Prob > 0 && f.Prob < 1 && rng.Float64() >= f.Prob {
			continue
		}
		d := f.Delay
		if f.Jitter > 0 {
			d += time.Duration(rng.Int63n(int64(f.Jitter)))
		}
		total += d
	}
	return total
}

// Profile returns a named node fault schedule scaled to the node count,
// for the CLI's -node-fault-profile flag and the chaos soaks. The seed
// picks which nodes the faults strike, so a soak sweeping seeds covers
// the placement space. Known profiles:
//
//	off      — no faults
//	outage   — one node out for good after a few ops
//	outage2  — two distinct nodes out (the RAID-6 design point)
//	flap     — one node cycling membership
//	slow     — one node with heavy per-op latency (hedge/breaker bait)
//	chaos    — outage + flap + slow across three distinct nodes
func Profile(name string, seed int64, nodes int) ([]NodeFault, error) {
	if nodes < 1 {
		nodes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	pick := rng.Perm(nodes)
	at := func(i int) int { return pick[i%len(pick)] }
	switch name {
	case "", "off":
		return nil, nil
	case "outage":
		return []NodeFault{{Node: at(0), Kind: Outage, After: 2 + rng.Intn(6)}}, nil
	case "outage2":
		return []NodeFault{
			{Node: at(0), Kind: Outage, After: 2 + rng.Intn(6)},
			{Node: at(1), Kind: Outage, After: 2 + rng.Intn(6)},
		}, nil
	case "flap":
		return []NodeFault{{Node: at(0), Kind: Flap, After: 1 + rng.Intn(4), Period: 2 + rng.Intn(6)}}, nil
	case "slow":
		return []NodeFault{{Node: at(0), Kind: LatencyFault, Delay: 40 * time.Millisecond,
			Jitter: 20 * time.Millisecond}}, nil
	case "chaos":
		return []NodeFault{
			{Node: at(0), Kind: Outage, After: 4 + rng.Intn(8)},
			{Node: at(1), Kind: Flap, After: 2 + rng.Intn(4), Period: 2 + rng.Intn(6)},
			{Node: at(2), Kind: LatencyFault, Delay: 10 * time.Millisecond,
				Jitter: 30 * time.Millisecond, Prob: 0.5},
		}, nil
	default:
		return nil, fmt.Errorf("nodestore: unknown fault profile %q", name)
	}
}

// Profiles lists the names Profile accepts, for CLI usage errors.
func Profiles() []string {
	return []string{"off", "outage", "outage2", "flap", "slow", "chaos"}
}
