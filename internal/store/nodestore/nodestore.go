// Package nodestore maps every path of a store.Store onto one of N
// simulated nodes — independent fault domains with their own inner
// Store, availability, latency distribution, and circuit breaker — so
// the erasure unit that matters at array scale (a whole node) can be
// injected, observed, and decoded around.
//
// Placement is pluggable ("round-robin" or "spread", see placement.go)
// and deterministic, so the shard encoder can record where every shard
// landed in the manifest (v3 placement block) and a later decode session
// reconstructs the same map. On top of the per-node fault model
// (faults.go: whole-node outage, flapping membership, injected per-op
// latency) the store adds the robustness machinery a multi-node path
// needs:
//
//   - per-op latency budgets (Config.OpTimeout): an op whose injected
//     delay exceeds the budget costs the caller only the budget and
//     fails with a transient store.Fault{Kind: KindTimeout};
//   - hedged reads: when a read's delay exceeds the node's recent
//     latency quantile, a second request is fired and the faster of the
//     two wins (store.hedge.* metrics);
//   - a per-node circuit breaker (closed → open → half-open on an
//     injectable clock): consecutive node-level failures trip it, and
//     while open every op fails fast with a permanent
//     store.Fault{Kind: KindBreakerOpen} — the degradation ladder then
//     treats the node's shards as erased instead of burning its retry
//     budget against a black hole.
//
// By default every node shares one backing store (virtual fault
// domains over one directory — shard paths keep working unchanged);
// Config.Backing gives each node an independent inner store, composable
// with faultstore for per-node byte-level chaos.
package nodestore

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Sentinel causes carried by the node-level faults.
var (
	// ErrNodeDown is wrapped by every operation refused because its
	// node is out (outage or a flap's down phase).
	ErrNodeDown = errors.New("nodestore: node down")
	// ErrBreakerOpen is wrapped by fast-fails from an open breaker.
	ErrBreakerOpen = errors.New("nodestore: circuit breaker open")
	// ErrOpBudget is wrapped by ops abandoned at the per-op latency
	// budget (Config.OpTimeout).
	ErrOpBudget = errors.New("nodestore: op exceeded its latency budget")
)

// HedgeConfig arms hedged reads. The zero value disables hedging.
type HedgeConfig struct {
	// Quantile of the node's recent read latencies above which a hedge
	// fires (e.g. 0.9). <= 0 disables hedging.
	Quantile float64
	// Min floors the hedge trigger so ordinary jitter never hedges
	// (default 1ms when hedging is enabled).
	Min time.Duration
	// Window is the per-node latency sample ring size (default 64).
	// Hedging stays off until a node has at least 8 samples.
	Window int
}

func (h HedgeConfig) enabled() bool { return h.Quantile > 0 }

func (h HedgeConfig) min() time.Duration {
	if h.Min <= 0 {
		return time.Millisecond
	}
	return h.Min
}

func (h HedgeConfig) window() int {
	if h.Window <= 0 {
		return 64
	}
	return h.Window
}

// Config arms a node-mapped store.
type Config struct {
	// Nodes is the number of simulated nodes (values below 1 mean 1).
	Nodes int
	// Base is the inner store every node shares when Backing is nil
	// (nil = the real filesystem). Virtual fault domains: all nodes see
	// the same files, only availability and latency differ.
	Base store.Store
	// Backing, when non-nil, gives node i an independent inner store —
	// compose with faultstore.New for per-node byte-level chaos.
	Backing func(node int) store.Store
	// Placement selects the policy mapping new paths to nodes:
	// PolicyRoundRobin (default) or PolicySpread.
	Placement string
	// Seed drives the latency jitter and probability draws; equal seeds
	// give equal schedules for equal operation sequences.
	Seed int64
	// Faults is the node-level fault schedule (see NodeFault).
	Faults []NodeFault
	// OpTimeout, when positive, is the per-op latency budget: an op
	// whose injected delay exceeds it costs only OpTimeout of wall
	// clock and fails with a transient KindTimeout fault (which also
	// counts against the node's breaker).
	OpTimeout time.Duration
	// Hedge arms hedged reads.
	Hedge HedgeConfig
	// Breaker arms the per-node circuit breakers.
	Breaker BreakerConfig
	// Registry, when non-nil, receives the nodestore.*, store.hedge.*,
	// and store.breaker.* metrics.
	Registry *obs.Registry
	// Sleep, when non-nil, replaces the real latency wait; tests and
	// soaks inject an instant (or accumulating) fake clock here.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now, when non-nil, replaces the real clock driving the breaker
	// cooldown; tests inject a seeded fake clock here.
	Now func() time.Time
}

func (c Config) nodes() int {
	if c.Nodes < 1 {
		return 1
	}
	return c.Nodes
}

// Store is the node-mapped store.Store. It implements
// store.ContextBinder (injected faults land in the bound trace) and
// store.NodeMapper (the shard encoder records placement from it).
type Store struct {
	cfg   Config
	reg   *obs.Registry
	sleep func(ctx context.Context, d time.Duration) error
	now   func() time.Time
	inner []store.Store

	mu     sync.Mutex
	rng    *rand.Rand
	assign map[string]int
	seq    int // round-robin cursor
	nodes  []*node
}

// node is one simulated fault domain's live state.
type node struct {
	ops     int // gated operations seen (drives the fault schedule)
	down    bool
	breaker breaker
	lat     *latWindow
	met     nodeMetrics
}

// nodeMetrics holds one node's interned labeled metric children —
// resolved once at construction, so the per-op hot path is a plain
// atomic add. Every handle is nil (a valid no-op) when the store is
// unregistered. The snapshot layer renders the per-node children
// (nodestore.down.total{node="1"}), the family aggregates under the
// pre-label flat names (nodestore.down.total), and the dotted aliases.
type nodeMetrics struct {
	ops          *obs.Counter   // nodestore.ops.total{node}
	down         *obs.Counter   // nodestore.down.total{node}
	refused      *obs.Counter   // nodestore.refused.total{node}
	fastfail     *obs.Counter   // store.breaker.fastfail.total{node}
	timeout      *obs.Counter   // nodestore.timeout.total{node}
	replaced     *obs.Counter   // nodestore.replaced.total{node}
	outages      *obs.Counter   // nodestore.outage.transitions{node}
	injected     *obs.Counter   // nodestore.latency.injected.total{node}
	hedgeFired   *obs.Counter   // store.hedge.fired{node}
	hedgeWins    *obs.Counter   // store.hedge.wins{node}
	breakerOpen  *obs.Counter   // store.breaker.open.total{node}
	breakerClose *obs.Counter   // store.breaker.close.total{node}
	seconds      *obs.Histogram // store.node.seconds{node}: injected per-op latency
}

func newNodeMetrics(reg *obs.Registry, nodeID int) nodeMetrics {
	l := obs.Li("node", nodeID)
	return nodeMetrics{
		ops:          reg.CounterWith("nodestore.ops.total", l),
		down:         reg.CounterWith("nodestore.down.total", l),
		refused:      reg.CounterWith("nodestore.refused.total", l),
		fastfail:     reg.CounterWith("store.breaker.fastfail.total", l),
		timeout:      reg.CounterWith("nodestore.timeout.total", l),
		replaced:     reg.CounterWith("nodestore.replaced.total", l),
		outages:      reg.CounterWith("nodestore.outage.transitions", l),
		injected:     reg.CounterWith("nodestore.latency.injected.total", l),
		hedgeFired:   reg.CounterWith("store.hedge.fired", l),
		hedgeWins:    reg.CounterWith("store.hedge.wins", l),
		breakerOpen:  reg.CounterWith("store.breaker.open.total", l),
		breakerClose: reg.CounterWith("store.breaker.close.total", l),
		seconds:      reg.HistogramWith("store.node.seconds", obs.LatencyBuckets, l),
	}
}

// New wraps the configured backing store(s) behind n simulated nodes.
func New(cfg Config) *Store {
	s := &Store{
		cfg:    cfg,
		reg:    cfg.Registry,
		sleep:  cfg.Sleep,
		now:    cfg.Now,
		assign: make(map[string]int),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if s.sleep == nil {
		s.sleep = store.SleepContext
	}
	if s.now == nil {
		s.now = time.Now
	}
	base := cfg.Base
	if base == nil {
		base = store.OS{}
	}
	n := cfg.nodes()
	s.inner = make([]store.Store, n)
	s.nodes = make([]*node, n)
	for i := 0; i < n; i++ {
		if cfg.Backing != nil {
			s.inner[i] = cfg.Backing(i)
		} else {
			s.inner[i] = base
		}
		s.nodes[i] = &node{lat: newLatWindow(cfg.Hedge.window()), met: newNodeMetrics(s.reg, i)}
	}
	return s
}

// NodeFor implements store.NodeMapper: the node index path lives on,
// assigned by the placement policy on first sight.
func (s *Store) NodeFor(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodeForLocked(path)
}

// NodeCount implements store.NodeMapper.
func (s *Store) NodeCount() int { return s.cfg.nodes() }

// PlacementPolicy implements store.NodeMapper.
func (s *Store) PlacementPolicy() string { return policyName(s.cfg.Placement) }

// Assign pins path to a node, overriding the placement policy — tests
// and operators use it to reproduce a recorded manifest placement.
func (s *Store) Assign(path string, nodeID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.assign[path] = clampNode(nodeID, s.cfg.nodes())
}

func clampNode(n, total int) int {
	if n < 0 || n >= total {
		return 0
	}
	return n
}

// verdict is one gated operation's resolved outcome, decided under the
// store lock and applied (sleeps, events, errors) outside it.
type verdict struct {
	node     int
	op       string
	path     string
	refuse   *store.Fault // refusal (node down / breaker open)
	sleepFor time.Duration
	timeout  bool // sleepFor was capped at the op budget; fail after sleeping
	hedged   bool
	hedgeWon bool
	// transitions observed while deciding, for events outside the lock
	wentDown, cameUp bool
	breakerOpened    bool // tripped (or re-tripped from half-open)
	breakerGaugeUp   bool // first trip since last close: gauge moves
	breakerClosed    bool
	replacedFrom     int // >= 0: create was re-placed from this node
}

// decide resolves one gated operation under the lock: placement, the
// breaker, the availability schedule, and the latency budget.
func (s *Store) decide(op, path string, read, create bool) verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := verdict{op: op, path: path, replacedFrom: -1}
	v.node = s.nodeForLocked(path)
	s.gateLocked(&v, read)
	if v.refuse != nil && create {
		// A create refused by an unavailable node re-places the path
		// onto a healthy spare: repair writes its healed shard where it
		// can actually land, and the live assignment follows the data.
		if spare, ok := s.spareLocked(v.node); ok {
			v.replacedFrom = v.node
			v.node = spare
			s.assign[path] = spare
			v.refuse = nil
			s.gateLocked(&v, read)
		}
	}
	return v
}

// gateLocked runs the breaker + fault schedule for v.node, filling in
// the verdict. Caller holds the lock.
func (s *Store) gateLocked(v *verdict, read bool) {
	n := s.nodes[v.node]
	n.ops++
	idx := n.ops - 1
	now := s.now()

	if !n.breaker.allow(s.cfg.Breaker, now) {
		v.refuse = &store.Fault{Op: v.op, Path: v.path, Kind: store.KindBreakerOpen,
			Transient: false, Err: fmt.Errorf("%w: node %d", ErrBreakerOpen, v.node)}
		return
	}

	down, perm := availAt(s.cfg.Faults, v.node, idx)
	if down != n.down {
		n.down = down
		if down {
			v.wentDown = true
		} else {
			v.cameUp = true
		}
	}
	if down {
		wasTripped := n.breaker.state != bClosed
		v.breakerOpened = n.breaker.fail(s.cfg.Breaker, now)
		v.breakerGaugeUp = v.breakerOpened && !wasTripped
		v.refuse = &store.Fault{Op: v.op, Path: v.path, Kind: store.KindNodeDown,
			Transient: !perm, Err: fmt.Errorf("%w: node %d", ErrNodeDown, v.node)}
		return
	}

	delay := latencyAt(s.cfg.Faults, v.node, idx, s.rng)
	if delay > 0 && read && s.cfg.Hedge.enabled() {
		if thr, ok := n.lat.threshold(s.cfg.Hedge); ok && delay > thr {
			// Hedge: fire a second request at the threshold; the faster
			// of (primary, threshold + hedge) wins the race.
			v.hedged = true
			hedge := thr + latencyAt(s.cfg.Faults, v.node, idx, s.rng)
			if hedge < delay {
				v.hedgeWon = true
				delay = hedge
			}
		}
	}
	if s.cfg.OpTimeout > 0 && delay > s.cfg.OpTimeout {
		// The op would outlive its budget: the caller waits only the
		// budget, the breaker counts a node-level failure.
		v.timeout = true
		v.sleepFor = s.cfg.OpTimeout
		wasTripped := n.breaker.state != bClosed
		v.breakerOpened = n.breaker.fail(s.cfg.Breaker, now)
		v.breakerGaugeUp = v.breakerOpened && !wasTripped
		n.lat.add(s.cfg.OpTimeout.Seconds())
		return
	}
	v.sleepFor = delay
	n.lat.add(delay.Seconds())
	v.breakerClosed = n.breaker.ok(s.cfg.Breaker)
}

// spareLocked finds a healthy node other than home: currently up per
// the schedule (without charging an op) and with a non-open breaker.
func (s *Store) spareLocked(home int) (int, bool) {
	total := s.cfg.nodes()
	now := s.now()
	for d := 1; d < total; d++ {
		cand := (home + d) % total
		n := s.nodes[cand]
		if down, _ := availAt(s.cfg.Faults, cand, n.ops); down {
			continue
		}
		if !n.breaker.wouldAllow(s.cfg.Breaker, now) {
			continue
		}
		return cand, true
	}
	return 0, false
}

// report bills the verdict's metrics — per-node labeled children; the
// snapshot aggregates preserve the pre-label flat names — and emits its
// events into ctx's trace. Called outside the lock (node metrics are
// immutable after New). The verdict's replacement counter is billed to
// the node the create was moved OFF of: that is the node whose failure
// the re-placement evidences.
func (s *Store) report(ctx context.Context, v verdict) {
	m := &s.nodes[v.node].met
	m.ops.Inc()
	if v.wentDown {
		s.addGauge("nodestore.nodes_down", 1)
		m.outages.Inc()
		obs.Emit(ctx, slog.LevelWarn, "nodestore.node_down", slog.Int("node", v.node))
	}
	if v.cameUp {
		s.addGauge("nodestore.nodes_down", -1)
		obs.Emit(ctx, slog.LevelInfo, "nodestore.node_up", slog.Int("node", v.node))
	}
	if v.breakerOpened {
		m.breakerOpen.Inc()
		if v.breakerGaugeUp {
			s.addGauge("store.breaker.open", 1)
		}
		obs.Emit(ctx, slog.LevelWarn, "store.breaker",
			slog.String("state", "open"), slog.Int("node", v.node))
	}
	if v.breakerClosed {
		m.breakerClose.Inc()
		s.addGauge("store.breaker.open", -1)
		obs.Emit(ctx, slog.LevelInfo, "store.breaker",
			slog.String("state", "closed"), slog.Int("node", v.node))
	}
	if v.replacedFrom >= 0 {
		s.nodes[v.replacedFrom].met.replaced.Inc()
		obs.Emit(ctx, slog.LevelWarn, "nodestore.replace",
			slog.String("path", v.path), slog.Int("from", v.replacedFrom), slog.Int("to", v.node))
	}
	if v.hedged {
		m.hedgeFired.Inc()
		if v.hedgeWon {
			m.hedgeWins.Inc()
		}
		obs.Emit(ctx, slog.LevelInfo, "store.hedge",
			slog.Int("node", v.node), slog.String("op", v.op), slog.Bool("won", v.hedgeWon))
	}
	if v.sleepFor > 0 {
		m.injected.Inc()
	}
	m.seconds.Observe(v.sleepFor.Seconds())
	if v.timeout {
		m.timeout.Inc()
		obs.Emit(ctx, slog.LevelWarn, "nodestore.timeout",
			slog.Int("node", v.node), slog.String("op", v.op), slog.String("path", v.path))
	}
	if v.refuse != nil {
		m.refused.Inc()
		if v.refuse.Kind == store.KindNodeDown {
			m.down.Inc()
		} else {
			m.fastfail.Inc()
		}
		obs.EmitErr(ctx, slog.LevelWarn, "nodestore.refuse", v.refuse.Err,
			slog.Int("node", v.node), slog.String("op", v.op),
			slog.String("path", v.path), slog.String("kind", v.refuse.Kind.String()))
	}
}

func (s *Store) addGauge(name string, delta float64) {
	if s.reg != nil {
		s.reg.Gauge(name).Add(delta)
	}
}

// gate runs one operation through the node's fault model: decide under
// the lock, then sleep/refuse outside it. Returns the node the op was
// charged to.
func (s *Store) gate(ctx context.Context, op, path string, read, create bool) (int, error) {
	v := s.decide(op, path, read, create)
	s.report(ctx, v)
	if v.sleepFor > 0 {
		if err := s.sleep(ctx, v.sleepFor); err != nil {
			return v.node, store.NewTransient(op, path, err)
		}
	}
	if v.timeout {
		return v.node, &store.Fault{Op: op, Path: path, Kind: store.KindTimeout,
			Transient: true, Err: fmt.Errorf("%w: node %d", ErrOpBudget, v.node)}
	}
	if v.refuse != nil {
		return v.node, v.refuse
	}
	return v.node, nil
}

// innerFor resolves node's inner store, bound to ctx when it supports
// causal attribution.
func (s *Store) innerFor(node int, ctx context.Context) store.Store {
	in := s.inner[node]
	if b, ok := in.(store.ContextBinder); ok && ctx != nil {
		return b.Bind(ctx)
	}
	return in
}

// Bind implements store.ContextBinder: the returned view shares all
// node state (schedules, breakers, assignments) but records events into
// the trace carried by ctx.
func (s *Store) Bind(ctx context.Context) store.Store {
	if ctx == nil {
		ctx = context.Background()
	}
	return &bound{s: s, ctx: ctx}
}

type bound struct {
	s   *Store
	ctx context.Context
}

func (b *bound) Open(path string) (store.File, error)   { return b.s.open(b.ctx, path) }
func (b *bound) Create(path string) (store.File, error) { return b.s.create(b.ctx, path) }
func (b *bound) Rename(oldPath, newPath string) error   { return b.s.rename(b.ctx, oldPath, newPath) }
func (b *bound) Remove(path string) error               { return b.s.remove(b.ctx, path) }

func (s *Store) Open(path string) (store.File, error) { return s.open(context.Background(), path) }

func (s *Store) open(ctx context.Context, path string) (store.File, error) {
	node, err := s.gate(ctx, "open", path, false, false)
	if err != nil {
		return nil, err
	}
	f, err := s.innerFor(node, ctx).Open(path)
	if err != nil {
		return nil, err
	}
	return &file{s: s, ctx: ctx, f: f, path: path, node: node}, nil
}

func (s *Store) Create(path string) (store.File, error) { return s.create(context.Background(), path) }

func (s *Store) create(ctx context.Context, path string) (store.File, error) {
	node, err := s.gate(ctx, "create", path, false, true)
	if err != nil {
		return nil, err
	}
	f, err := s.innerFor(node, ctx).Create(path)
	if err != nil {
		return nil, err
	}
	return &file{s: s, ctx: ctx, f: f, path: path, node: node}, nil
}

func (s *Store) Rename(oldPath, newPath string) error {
	return s.rename(context.Background(), oldPath, newPath)
}

func (s *Store) rename(ctx context.Context, oldPath, newPath string) error {
	node, err := s.gate(ctx, "rename", oldPath, false, false)
	if err != nil {
		return err
	}
	if err := s.innerFor(node, ctx).Rename(oldPath, newPath); err != nil {
		return err
	}
	// The renamed file lives where oldPath was written: the assignment
	// follows the data, which is how a repaired shard ends up placed on
	// the spare node its temp file landed on.
	s.mu.Lock()
	s.assign[newPath] = node
	delete(s.assign, oldPath)
	s.mu.Unlock()
	return nil
}

func (s *Store) Remove(path string) error { return s.remove(context.Background(), path) }

func (s *Store) remove(ctx context.Context, path string) error {
	node, err := s.gate(ctx, "remove", path, false, false)
	if err != nil {
		return err
	}
	return s.innerFor(node, ctx).Remove(path)
}

// file wraps one open file with its node's fault model: reads, writes,
// and syncs are gated (and latency-shaped); Size and Close pass
// through.
type file struct {
	s    *Store
	ctx  context.Context
	f    store.File
	path string
	node int
}

func (f *file) ReadAt(b []byte, off int64) (int, error) {
	if _, err := f.s.gate(f.ctx, "read", f.path, true, false); err != nil {
		return 0, err
	}
	return f.f.ReadAt(b, off)
}

func (f *file) WriteAt(b []byte, off int64) (int, error) {
	if _, err := f.s.gate(f.ctx, "write", f.path, false, false); err != nil {
		return 0, err
	}
	return f.f.WriteAt(b, off)
}

func (f *file) Sync() error {
	if _, err := f.s.gate(f.ctx, "sync", f.path, false, false); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *file) Size() (int64, error) { return f.f.Size() }

func (f *file) Close() error { return f.f.Close() }

// latWindow is a fixed ring of recent per-op latencies (seconds) backing
// the hedge trigger quantile.
type latWindow struct {
	ring  []float64
	n     int
	total int
}

func newLatWindow(size int) *latWindow { return &latWindow{ring: make([]float64, size)} }

func (w *latWindow) add(v float64) {
	w.ring[w.n] = v
	w.n = (w.n + 1) % len(w.ring)
	w.total++
}

// threshold returns the hedge trigger: the configured quantile of the
// recent samples, floored at Min. Hedging stays off until 8 samples.
func (w *latWindow) threshold(cfg HedgeConfig) (time.Duration, bool) {
	have := w.total
	if have > len(w.ring) {
		have = len(w.ring)
	}
	if have < 8 {
		return 0, false
	}
	sorted := append([]float64(nil), w.ring[:have]...)
	insertionSort(sorted)
	i := int(cfg.Quantile * float64(have))
	if i >= have {
		i = have - 1
	}
	thr := time.Duration(sorted[i] * float64(time.Second))
	if min := cfg.min(); thr < min {
		thr = min
	}
	return thr, true
}

func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
