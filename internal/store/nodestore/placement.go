package nodestore

import (
	"hash/fnv"
	"path/filepath"
	"strconv"
	"strings"
)

// Placement policies. Both are pure functions of the operation sequence
// (round-robin) or of the path itself (spread), so an encode session and
// a later decode session reconstruct the same path → node map — which is
// what lets the manifest's placement record stay truthful without any
// central directory.
const (
	// PolicyRoundRobin deals paths to nodes in first-sight order.
	PolicyRoundRobin = "round-robin"
	// PolicySpread places the shards of one stripe set on consecutive
	// nodes starting at a hash of the base name, so with Nodes ≥ k+m no
	// two shards of a file share a fault domain — each node outage costs
	// at most one shard of the set.
	PolicySpread = "spread"
)

func policyName(p string) string {
	if p == PolicySpread {
		return PolicySpread
	}
	return PolicyRoundRobin
}

// nodeForLocked resolves (assigning on first sight) the node for path.
// Caller holds the lock.
func (s *Store) nodeForLocked(path string) int {
	if n, ok := s.assign[path]; ok {
		return n
	}
	total := s.cfg.nodes()
	var n int
	switch policyName(s.cfg.Placement) {
	case PolicySpread:
		n = spreadNode(path, total)
	default:
		n = s.seq % total
		s.seq++
	}
	s.assign[path] = n
	return n
}

// spreadNode hashes the shard's stripe-set name and offsets by the
// shard's ordinal within the set, so sibling shards land on distinct
// consecutive nodes (mod the node count).
func spreadNode(path string, total int) int {
	set, ord := splitShardName(filepath.Base(path))
	h := fnv.New32a()
	h.Write([]byte(set))
	return (int(h.Sum32()%uint32(total)) + ord) % total
}

// splitShardName splits a shard file name into its stripe-set name and
// an ordinal: data shards count from 2 ("x.shard.d0" → 2), parity P and
// Q take 0 and 1, extra parities of an m>2 code continue where the data
// shards stop ("x.shard.rN" → 2+N, and the shard layer numbers them
// from k so the ordinals 0..k+m-1 of one set are all distinct), and
// anything else (the manifest, temp files) sticks with ordinal 0 under
// its full name.
func splitShardName(base string) (string, int) {
	// A repair temp file must place like the shard it will be renamed
	// to, or the heal would migrate the shard to a colliding node.
	base = strings.TrimSuffix(base, ".repair")
	if i := strings.LastIndex(base, ".shard."); i >= 0 {
		set, suffix := base[:i], base[i+len(".shard."):]
		switch {
		case suffix == "p":
			return set, 0
		case suffix == "q":
			return set, 1
		case strings.HasPrefix(suffix, "d") || strings.HasPrefix(suffix, "r"):
			if v, err := strconv.Atoi(suffix[1:]); err == nil && v >= 0 {
				return set, 2 + v
			}
		}
	}
	return base, 0
}
