package nodestore

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// nullStore succeeds at everything without touching a filesystem, so
// the gate tests exercise only the node fault model.
type nullStore struct{}

func (nullStore) Open(string) (store.File, error)   { return nullFile{}, nil }
func (nullStore) Create(string) (store.File, error) { return nullFile{}, nil }
func (nullStore) Rename(_, _ string) error          { return nil }
func (nullStore) Remove(string) error               { return nil }

type nullFile struct{}

func (nullFile) ReadAt(b []byte, _ int64) (int, error)  { return len(b), nil }
func (nullFile) WriteAt(b []byte, _ int64) (int, error) { return len(b), nil }
func (nullFile) Size() (int64, error)                   { return 0, nil }
func (nullFile) Sync() error                            { return nil }
func (nullFile) Close() error                           { return nil }

// instantSleep records requested waits without sleeping.
type instantSleep struct {
	mu    sync.Mutex
	total time.Duration
	n     int
}

func (c *instantSleep) sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.total += d
	c.n++
	c.mu.Unlock()
	return ctx.Err()
}

// TestSpreadPlacementDistinctNodes checks the fault-domain guarantee:
// with Nodes ≥ k+2 under the spread policy, no two shards of one file
// share a node — and a repair temp file places exactly like the shard
// it will be renamed to.
func TestSpreadPlacementDistinctNodes(t *testing.T) {
	s := New(Config{Nodes: 5, Base: nullStore{}, Placement: PolicySpread})
	names := []string{"x.shard.d00", "x.shard.d01", "x.shard.d02", "x.shard.p", "x.shard.q"}
	seen := map[int]string{}
	for _, name := range names {
		n := s.NodeFor("/data/" + name)
		if prev, dup := seen[n]; dup {
			t.Errorf("%s and %s share node %d", prev, name, n)
		}
		seen[n] = name
	}
	if got, want := s.NodeFor("/data/x.shard.d01.repair"), s.NodeFor("/data/x.shard.d01"); got != want {
		t.Errorf("repair temp placed on node %d, its shard on %d", got, want)
	}
	if s.PlacementPolicy() != PolicySpread || s.NodeCount() != 5 {
		t.Errorf("mapper reports %q/%d nodes", s.PlacementPolicy(), s.NodeCount())
	}
}

// TestRoundRobinDeterministic checks two stores seeing the same path
// sequence assign identically.
func TestRoundRobinDeterministic(t *testing.T) {
	paths := []string{"a", "b", "c", "d", "a", "e"}
	assign := func() []int {
		s := New(Config{Nodes: 3, Base: nullStore{}})
		var got []int
		for _, p := range paths {
			got = append(got, s.NodeFor(p))
		}
		return got
	}
	a := assign()
	if !reflect.DeepEqual(a, assign()) {
		t.Errorf("same path sequence, different assignments: %v", a)
	}
	if a[0] != a[4] {
		t.Errorf("re-seen path moved nodes: %v", a)
	}
}

// TestOutageRefusesPermanently checks a whole-node outage: every op on
// the node fails fast with a permanent KindNodeDown fault (the ladder's
// cue to hard-erase), and the down transition is billed once.
func TestOutageRefusesPermanently(t *testing.T) {
	reg := obs.NewRegistry()
	clock := &instantSleep{}
	s := New(Config{Nodes: 2, Base: nullStore{}, Registry: reg, Sleep: clock.sleep,
		Faults: []NodeFault{{Node: 0, Kind: Outage}}})
	s.Assign("dead", 0)
	s.Assign("alive", 1)
	for i := 0; i < 3; i++ {
		_, err := s.Open("dead")
		if !store.IsKind(err, store.KindNodeDown) {
			t.Fatalf("open on outage node: err = %v, want KindNodeDown", err)
		}
		if store.IsTransient(err) {
			t.Fatalf("outage refusal must be permanent, got %v", err)
		}
		if !errors.Is(err, ErrNodeDown) {
			t.Fatalf("err = %v, want to unwrap to ErrNodeDown", err)
		}
	}
	if _, err := s.Open("alive"); err != nil {
		t.Fatalf("healthy node refused: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["nodestore.down.total"]; got != 3 {
		t.Errorf("nodestore.down.total = %d, want 3", got)
	}
	if got := snap.Gauges["nodestore.nodes_down"]; got != 1 {
		t.Errorf("nodestore.nodes_down = %v, want 1", got)
	}
}

// TestFlapTransientAndRecovers checks flapping membership: down-phase
// refusals are transient (retries can ride them out) and the node
// serves again in the up phase.
func TestFlapTransientAndRecovers(t *testing.T) {
	s := New(Config{Nodes: 1, Base: nullStore{},
		Faults: []NodeFault{{Node: 0, Kind: Flap, Period: 2}}})
	var results []bool // true = refused
	for i := 0; i < 8; i++ {
		_, err := s.Open("x")
		if err != nil {
			if !store.IsKind(err, store.KindNodeDown) || !store.IsTransient(err) {
				t.Fatalf("op %d: err = %v, want transient KindNodeDown", i, err)
			}
			results = append(results, true)
		} else {
			results = append(results, false)
		}
	}
	want := []bool{true, true, false, false, true, true, false, false}
	if !reflect.DeepEqual(results, want) {
		t.Errorf("flap pattern = %v, want %v", results, want)
	}
}

// TestOpTimeoutBudget checks the per-op latency budget: an injected
// delay beyond OpTimeout costs the caller only the budget and fails
// with a transient KindTimeout fault.
func TestOpTimeoutBudget(t *testing.T) {
	clock := &instantSleep{}
	reg := obs.NewRegistry()
	s := New(Config{Nodes: 1, Base: nullStore{}, Registry: reg, Sleep: clock.sleep,
		OpTimeout: 10 * time.Millisecond,
		Faults:    []NodeFault{{Node: 0, Kind: LatencyFault, Delay: 30 * time.Second}}})
	_, err := s.Open("x")
	if !store.IsKind(err, store.KindTimeout) || !store.IsTransient(err) {
		t.Fatalf("err = %v, want transient KindTimeout", err)
	}
	if !errors.Is(err, ErrOpBudget) {
		t.Errorf("err = %v, want to unwrap to ErrOpBudget", err)
	}
	if clock.total != 10*time.Millisecond {
		t.Errorf("slept %v, want exactly the 10ms budget", clock.total)
	}
	if got := reg.Snapshot().Counters["nodestore.timeout.total"]; got != 1 {
		t.Errorf("nodestore.timeout.total = %d, want 1", got)
	}
}

// TestHedgedReadCutsTailLatency compares the same seeded heavy-tail
// schedule with and without hedging: hedged reads can only shorten the
// effective wait, and on this seed they strictly do, with the wins
// billed to store.hedge.*.
func TestHedgedReadCutsTailLatency(t *testing.T) {
	run := func(hedge HedgeConfig) (time.Duration, uint64, uint64) {
		clock := &instantSleep{}
		reg := obs.NewRegistry()
		s := New(Config{Nodes: 1, Base: nullStore{}, Registry: reg, Sleep: clock.sleep,
			Seed: 7, Hedge: hedge,
			Faults: []NodeFault{{Node: 0, Kind: LatencyFault,
				Delay: time.Millisecond, Jitter: 200 * time.Millisecond}}})
		f, err := s.Open("x")
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 8)
		for i := 0; i < 64; i++ {
			if _, err := f.ReadAt(b, 0); err != nil {
				t.Fatal(err)
			}
		}
		snap := reg.Snapshot()
		return clock.total, snap.Counters["store.hedge.fired"], snap.Counters["store.hedge.wins"]
	}
	plain, fired0, _ := run(HedgeConfig{})
	if fired0 != 0 {
		t.Fatalf("hedging disabled but fired %d times", fired0)
	}
	hedged, fired, wins := run(HedgeConfig{Quantile: 0.5, Min: time.Millisecond})
	if fired == 0 || wins == 0 {
		t.Fatalf("hedge fired %d / won %d on a heavy-tail schedule, want both > 0", fired, wins)
	}
	if hedged >= plain {
		t.Errorf("hedged total wait %v, unhedged %v; hedging must cut the tail", hedged, plain)
	}
}

// TestBreakerLifecycle walks the full state machine on a fake clock:
// consecutive node-level failures trip it open, while open every op
// fast-fails with a permanent KindBreakerOpen fault, after Cooldown one
// probe goes through (re-opening on failure), and a successful probe
// closes it again.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	reg := obs.NewRegistry()
	s := New(Config{Nodes: 1, Base: nullStore{}, Registry: reg,
		Now:     func() time.Time { return now },
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Second},
		// ops 0..3 down, up from op 4 on
		Faults: []NodeFault{{Node: 0, Kind: Outage, For: 4}}})

	// Two down refusals trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := s.Open("x"); !store.IsKind(err, store.KindNodeDown) {
			t.Fatalf("op %d: err = %v, want KindNodeDown", i, err)
		}
	}
	// Open breaker, cooldown not elapsed: fast-fail, permanent.
	_, err := s.Open("x")
	if !store.IsKind(err, store.KindBreakerOpen) || store.IsTransient(err) {
		t.Fatalf("err = %v, want permanent KindBreakerOpen fast-fail", err)
	}
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want to unwrap to ErrBreakerOpen", err)
	}
	// Cooldown elapses; the probe hits op index 3 — still down — and
	// re-opens the breaker.
	now = now.Add(2 * time.Second)
	if _, err := s.Open("x"); !store.IsKind(err, store.KindNodeDown) {
		t.Fatalf("probe: err = %v, want KindNodeDown (schedule still down)", err)
	}
	if _, err := s.Open("x"); !store.IsKind(err, store.KindBreakerOpen) {
		t.Fatalf("after failed probe: err = %v, want KindBreakerOpen", err)
	}
	// Second cooldown; op index 5 is up, the probe succeeds and closes.
	now = now.Add(2 * time.Second)
	if _, err := s.Open("x"); err != nil {
		t.Fatalf("successful probe: %v", err)
	}
	if _, err := s.Open("x"); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["store.breaker.open.total"]; got != 2 {
		t.Errorf("store.breaker.open.total = %d, want 2 (trip + re-open)", got)
	}
	if got := snap.Counters["store.breaker.close.total"]; got != 1 {
		t.Errorf("store.breaker.close.total = %d, want 1", got)
	}
	if got := snap.Counters["store.breaker.fastfail.total"]; got != 2 {
		t.Errorf("store.breaker.fastfail.total = %d, want 2", got)
	}
	if got := snap.Gauges["store.breaker.open"]; got != 0 {
		t.Errorf("store.breaker.open gauge = %v, want 0 after close", got)
	}
}

// TestCreateReplacedOntoSpare checks repair re-placement: a create
// refused by a down node lands on a healthy spare, the assignment
// moves, and the replacement is billed.
func TestCreateReplacedOntoSpare(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := New(Config{Nodes: 3, Base: store.OS{}, Registry: reg,
		Faults: []NodeFault{{Node: 0, Kind: Outage}}})
	path := filepath.Join(dir, "healed.shard.d00")
	s.Assign(path, 0)
	f, err := s.Create(path)
	if err != nil {
		t.Fatalf("create on down home node: %v (want re-placement onto a spare)", err)
	}
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.NodeFor(path); got == 0 {
		t.Errorf("path still assigned to the down node")
	}
	if got := reg.Snapshot().Counters["nodestore.replaced.total"]; got != 1 {
		t.Errorf("nodestore.replaced.total = %d, want 1", got)
	}
	// Reads now hit the spare node, not the dead one.
	g, err := s.Open(path)
	if err != nil {
		t.Fatalf("open after re-placement: %v", err)
	}
	g.Close()
}

// TestRenameMovesAssignment checks the heal hand-off: the renamed path
// inherits the node its temp file was written on.
func TestRenameMovesAssignment(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Nodes: 4, Base: store.OS{}})
	tmp := filepath.Join(dir, "y.shard.q.repair")
	final := filepath.Join(dir, "y.shard.q")
	s.Assign(tmp, 2)
	s.Assign(final, 3)
	f, err := s.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := s.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	if got := s.NodeFor(final); got != 2 {
		t.Errorf("renamed shard on node %d, want the temp file's node 2", got)
	}
}

// TestProfileDeterministic checks named profiles reproduce from their
// seed and reject unknown names.
func TestProfileDeterministic(t *testing.T) {
	a, err := Profile("chaos", 42, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Profile("chaos", 42, 6)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different schedules:\n%v\n%v", a, b)
	}
	nodes := map[int]bool{}
	for _, f := range a {
		nodes[f.Node] = true
	}
	if len(nodes) != 3 {
		t.Errorf("chaos profile struck %d distinct nodes, want 3", len(nodes))
	}
	if _, err := Profile("nope", 1, 4); err == nil {
		t.Error("unknown profile accepted")
	}
	if off, err := Profile("off", 1, 4); err != nil || off != nil {
		t.Errorf("off profile = %v, %v; want empty schedule", off, err)
	}
}

// TestConcurrentNodeGate hammers one store from many goroutines under
// mixed faults — the race detector patrols the gate's lock discipline.
func TestConcurrentNodeGate(t *testing.T) {
	clock := &instantSleep{}
	faults, err := Profile("chaos", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Nodes: 4, Base: nullStore{}, Registry: obs.NewRegistry(),
		Sleep: clock.sleep, Seed: 3, Faults: faults,
		OpTimeout: 20 * time.Millisecond,
		Hedge:     HedgeConfig{Quantile: 0.9},
		Breaker:   BreakerConfig{Threshold: 3, Cooldown: time.Millisecond}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := make([]byte, 4)
			for i := 0; i < 200; i++ {
				path := fmt.Sprintf("p%d", (g+i)%16)
				f, err := s.Open(path)
				if err != nil {
					continue
				}
				f.ReadAt(b, 0)
				f.WriteAt(b, 0)
				f.Close()
			}
		}(g)
	}
	wg.Wait()
}
