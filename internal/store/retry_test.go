package store

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock records requested sleeps without actually sleeping, so the
// retry tests pin exact backoff sequences with no wall-clock dependence.
type fakeClock struct {
	slept []time.Duration
}

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	c.slept = append(c.slept, d)
	return ctx.Err()
}

// TestRetryBoundedBackoff pins the whole retry contract at once: a
// persistently transient failure consumes exactly MaxAttempts calls, the
// inter-attempt delays follow capped exponential doubling, and the
// exhaustion is billed to the registry.
func TestRetryBoundedBackoff(t *testing.T) {
	clock := &fakeClock{}
	reg := obs.NewRegistry()
	p := RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Jitter:      -1, // exact delays
		Sleep:       clock.sleep,
		Registry:    reg,
	}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return NewTransient("read", "x", ErrInjected)
	})
	if !IsTransient(err) {
		t.Fatalf("err = %v, want the last transient failure", err)
	}
	if calls != 5 {
		t.Errorf("calls = %d, want MaxAttempts = 5", calls)
	}
	want := []time.Duration{10, 20, 40, 40} // doubling, capped at 40ms
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clock.slept, want)
	}
	for i := range want {
		if clock.slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, clock.slept[i], want[i])
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["shard.retry.total"]; got != 4 {
		t.Errorf("shard.retry.total = %d, want 4", got)
	}
	if got := snap.Counters["shard.retry.exhausted"]; got != 1 {
		t.Errorf("shard.retry.exhausted = %d, want 1", got)
	}
}

// TestRetryStopsOnPermanent checks that non-transient errors never burn
// the retry budget: one call, no sleeps.
func TestRetryStopsOnPermanent(t *testing.T) {
	clock := &fakeClock{}
	p := RetryPolicy{MaxAttempts: 5, Sleep: clock.sleep}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return NewPermanent("read", "x", ErrInjected)
	})
	if calls != 1 || len(clock.slept) != 0 {
		t.Errorf("calls = %d, sleeps = %d; want 1 call, 0 sleeps", calls, len(clock.slept))
	}
	if err == nil || IsTransient(err) {
		t.Errorf("err = %v, want the permanent failure back", err)
	}
}

// TestRetrySucceedsMidway checks that a success short-circuits the
// remaining budget.
func TestRetrySucceedsMidway(t *testing.T) {
	clock := &fakeClock{}
	p := RetryPolicy{MaxAttempts: 5, Sleep: clock.sleep}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return NewTransient("write", "x", ErrInjected)
		}
		return nil
	})
	if err != nil || calls != 3 || len(clock.slept) != 2 {
		t.Errorf("err = %v, calls = %d, sleeps = %d; want nil, 3, 2", err, calls, len(clock.slept))
	}
}

// TestRetryJitterDeterministic checks that equal seeds give identical
// backoff schedules and different seeds do not — chaos runs must
// reproduce from their seed alone.
func TestRetryJitterDeterministic(t *testing.T) {
	run := func(seed int64) []time.Duration {
		clock := &fakeClock{}
		p := RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, Seed: seed, Sleep: clock.sleep}
		p.Do(context.Background(), func() error { return NewTransient("read", "x", ErrInjected) })
		return clock.slept
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule: %v vs %v", a, b)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter schedules")
	}
}

// TestRetryCancelMidBackoff checks cancellability: a context cancelled
// during a (real) backoff sleep stops the loop promptly with the
// context's error, not after the full delay.
func TestRetryCancelMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Minute} // real SleepContext
	calls := 0
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- p.Do(ctx, func() error {
			calls++
			return NewTransient("read", "x", ErrInjected)
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want well under the 1-minute backoff", elapsed)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cancelled before the retry)", calls)
	}
}

// TestSleepContextZero checks the degenerate delays return immediately.
func TestSleepContextZero(t *testing.T) {
	if err := SleepContext(context.Background(), 0); err != nil {
		t.Errorf("SleepContext(0) = %v, want nil", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepContext(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("SleepContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestZeroPolicySingleAttempt checks the zero value means "no retries":
// exactly one call, error passed straight through.
func TestZeroPolicySingleAttempt(t *testing.T) {
	var p RetryPolicy
	calls := 0
	err := p.Do(nil, func() error {
		calls++
		return NewTransient("read", "x", ErrInjected)
	})
	if calls != 1 || err == nil {
		t.Errorf("calls = %d, err = %v; want 1 call and the error back", calls, err)
	}
}
