package store

import (
	"context"
	"errors"
	"log/slog"
	"math/rand"
	"time"

	"repro/internal/obs"
)

// RetryPolicy bounds and paces the retrying of transient store failures:
// capped exponential backoff with multiplicative jitter, cancellable
// between attempts through a context. The zero value retries nothing
// (one attempt); DefaultRetry is the data path's default.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// Values below 1 mean 1 (no retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it up to MaxBackoff. Zero means 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry delay. Zero means 64 × BaseBackoff.
	MaxBackoff time.Duration
	// Jitter is the fraction of random extension added to each delay
	// (0.5 → delays are uniform in [d, 1.5d]). Negative disables jitter;
	// zero means 0.5.
	Jitter float64
	// Seed makes the jitter sequence deterministic (0 uses a fixed
	// default seed — retries are reproducible unless the caller opts
	// into variety).
	Seed int64
	// Sleep, when non-nil, replaces the real inter-attempt wait; tests
	// inject a fake clock here. It must honor ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Registry, when non-nil, receives shard.retry.total /
	// shard.retry.exhausted counters and the shard.retry.backoff
	// latency histogram.
	Registry *obs.Registry
}

// DefaultRetry is the policy the shard data path uses when none is
// given: 4 attempts, 1ms → 64ms backoff.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseBackoff <= 0 {
		return time.Millisecond
	}
	return p.BaseBackoff
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxBackoff <= 0 {
		return 64 * p.base()
	}
	return p.MaxBackoff
}

func (p RetryPolicy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.5
	default:
		return p.Jitter
	}
}

func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	return SleepContext(ctx, d)
}

// SleepContext waits for d or until ctx is cancelled, whichever comes
// first, returning ctx.Err() on cancellation.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn until it succeeds, returns a non-transient error, exhausts
// the attempt budget, or ctx is cancelled mid-backoff. The returned
// error is fn's last error (or the context's). When ctx carries an
// active trace, every retry (and the exhaustion of the budget) is
// emitted as a store.retry event attributed to the failing operation.
func (p RetryPolicy) Do(ctx context.Context, fn func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := p.attempts()
	var rng *rand.Rand
	backoff := p.base()
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= attempts {
			if attempts > 1 {
				p.Registry.Count("shard.retry.exhausted", 1)
				obs.EmitErr(ctx, slog.LevelError, "store.retry.exhausted", err,
					append(faultAttrs(err), slog.Int("attempts", attempts))...)
			}
			return err
		}
		d := backoff
		if j := p.jitter(); j > 0 {
			if rng == nil {
				seed := p.Seed
				if seed == 0 {
					seed = 0x5eed
				}
				rng = rand.New(rand.NewSource(seed))
			}
			d += time.Duration(j * rng.Float64() * float64(backoff))
		}
		p.Registry.Count("shard.retry.total", 1)
		p.Registry.Observe("shard.retry.backoff", obs.LatencyBuckets, d.Seconds())
		obs.EmitErr(ctx, slog.LevelWarn, "store.retry", err,
			append(faultAttrs(err),
				slog.Int("attempt", attempt),
				slog.Duration("backoff", d))...)
		if serr := p.sleep(ctx, d); serr != nil {
			return serr
		}
		if backoff < p.cap() {
			backoff *= 2
			if backoff > p.cap() {
				backoff = p.cap()
			}
		}
	}
}

// faultAttrs extracts the op/path attribution a classified *Fault
// carries, for retry events.
func faultAttrs(err error) []obs.Attr {
	var f *Fault
	if !errors.As(err, &f) {
		return nil
	}
	return []obs.Attr{slog.String("op", f.Op), slog.String("path", f.Path)}
}

// WithRetry wraps base so that every operation — including positional
// reads and writes on the files it opens — retries transient failures
// under the policy. Positional I/O makes the retries idempotent: a
// retried WriteAt overwrites whatever a torn write left behind.
func WithRetry(base Store, ctx context.Context, p RetryPolicy) Store {
	if ctx == nil {
		ctx = context.Background()
	}
	return &retryStore{base: base, ctx: ctx, p: p}
}

type retryStore struct {
	base Store
	ctx  context.Context
	p    RetryPolicy
}

func (s *retryStore) Open(path string) (File, error) {
	var f File
	err := s.p.Do(s.ctx, func() (e error) {
		f, e = s.base.Open(path)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{f: f, ctx: s.ctx, p: s.p}, nil
}

func (s *retryStore) Create(path string) (File, error) {
	var f File
	err := s.p.Do(s.ctx, func() (e error) {
		f, e = s.base.Create(path)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{f: f, ctx: s.ctx, p: s.p}, nil
}

func (s *retryStore) Rename(oldPath, newPath string) error {
	return s.p.Do(s.ctx, func() error { return s.base.Rename(oldPath, newPath) })
}

func (s *retryStore) Remove(path string) error {
	return s.p.Do(s.ctx, func() error { return s.base.Remove(path) })
}

type retryFile struct {
	f   File
	ctx context.Context
	p   RetryPolicy
}

func (f *retryFile) ReadAt(b []byte, off int64) (int, error) {
	var n int
	err := f.p.Do(f.ctx, func() (e error) {
		n, e = f.f.ReadAt(b, off)
		return e
	})
	return n, err
}

func (f *retryFile) WriteAt(b []byte, off int64) (int, error) {
	var n int
	err := f.p.Do(f.ctx, func() (e error) {
		n, e = f.f.WriteAt(b, off)
		return e
	})
	return n, err
}

func (f *retryFile) Size() (int64, error) {
	var n int64
	err := f.p.Do(f.ctx, func() (e error) {
		n, e = f.f.Size()
		return e
	})
	return n, err
}

func (f *retryFile) Sync() error {
	return f.p.Do(f.ctx, func() error { return f.f.Sync() })
}

func (f *retryFile) Close() error { return f.f.Close() }
