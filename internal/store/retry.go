package store

import (
	"context"
	"errors"
	"log/slog"
	"math/rand"
	"time"

	"repro/internal/obs"
)

// RetryPolicy bounds and paces the retrying of transient store failures:
// capped exponential backoff with multiplicative jitter, cancellable
// between attempts through a context, and — when AttemptTimeout is set —
// a per-attempt deadline that abandons a hung call instead of waiting on
// it forever. The zero value retries nothing (one attempt);
// DefaultRetry is the data path's default.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// Values below 1 mean 1 (no retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it up to MaxBackoff. Zero means 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry delay. Zero means 64 × BaseBackoff.
	MaxBackoff time.Duration
	// AttemptTimeout, when positive, bounds each attempt: a call that
	// has not returned by the deadline is abandoned and counted as a
	// transient KindTimeout fault (retried like any other transient
	// failure). The abandoned call keeps running in its own goroutine
	// until the underlying store returns; reads go through a private
	// buffer so a late completion can never scribble over a retried
	// one. Zero disables per-attempt deadlines (no goroutine is spawned
	// and behavior is identical to the historical policy).
	AttemptTimeout time.Duration
	// Jitter is the fraction of random extension added to each delay
	// (0.5 → delays are uniform in [d, 1.5d]). Negative disables jitter;
	// zero means 0.5.
	Jitter float64
	// Seed makes the jitter sequence deterministic (0 uses a fixed
	// default seed — retries are reproducible unless the caller opts
	// into variety).
	Seed int64
	// Sleep, when non-nil, replaces the real inter-attempt wait (and the
	// AttemptTimeout timer); tests inject a fake clock here. It must
	// honor ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Registry, when non-nil, receives shard.retry.total /
	// shard.retry.exhausted counters and the shard.retry.backoff
	// latency histogram.
	Registry *obs.Registry
}

// DefaultRetry is the policy the shard data path uses when none is
// given: 4 attempts, 1ms → 64ms backoff.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseBackoff <= 0 {
		return time.Millisecond
	}
	return p.BaseBackoff
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxBackoff <= 0 {
		return 64 * p.base()
	}
	return p.MaxBackoff
}

func (p RetryPolicy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.5
	default:
		return p.Jitter
	}
}

func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	return SleepContext(ctx, d)
}

// SleepContext waits for d or until ctx is cancelled, whichever comes
// first, returning ctx.Err() on cancellation.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn until it succeeds, returns a non-transient error, exhausts
// the attempt budget, or ctx is cancelled mid-backoff. The returned
// error is fn's last error (or the context's). When ctx carries an
// active trace, every retry (and the exhaustion of the budget) is
// emitted as a store.retry event attributed to the failing operation.
func (p RetryPolicy) Do(ctx context.Context, fn func() error) error {
	_, err := doValue(p, ctx, "", "", func() (struct{}, error) {
		return struct{}{}, fn()
	})
	return err
}

// outcome carries one attempt's result out of its goroutine; the
// accepted attempt's value is applied by the caller, so an abandoned
// attempt completing late has nowhere to leak its result into.
type outcome[T any] struct {
	v   T
	err error
}

// attemptOnce runs one attempt of fn, bounded by AttemptTimeout when the
// policy sets one. On timeout the attempt's goroutine is abandoned (it
// drains into its own buffered channel) and a transient KindTimeout
// fault attributed to op/path is returned instead.
func attemptOnce[T any](p RetryPolicy, ctx context.Context, op, path string, fn func() (T, error)) (T, error) {
	if p.AttemptTimeout <= 0 {
		return fn()
	}
	done := make(chan outcome[T], 1)
	go func() {
		v, err := fn()
		done <- outcome[T]{v, err}
	}()
	timer := make(chan error, 1)
	go func() { timer <- p.sleep(ctx, p.AttemptTimeout) }()
	select {
	case out := <-done:
		return out.v, out.err
	case serr := <-timer:
		// The deadline and the attempt raced: prefer a result that is
		// already in hand over declaring a timeout.
		select {
		case out := <-done:
			return out.v, out.err
		default:
		}
		var zero T
		if serr != nil {
			return zero, serr // cancelled mid-wait: surface the context error
		}
		return zero, NewTimeout(op, path, context.DeadlineExceeded)
	}
}

// doValue is the generic retry loop behind Do and the wrapped store
// operations: op/path attribute the store.retry events (and any timeout
// faults) to the operation being retried.
func doValue[T any](p RetryPolicy, ctx context.Context, op, path string, fn func() (T, error)) (T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := p.attempts()
	var rng *rand.Rand
	backoff := p.base()
	for attempt := 1; ; attempt++ {
		v, err := attemptOnce(p, ctx, op, path, fn)
		if err == nil || !IsTransient(err) {
			return v, err
		}
		if attempt >= attempts {
			if attempts > 1 {
				p.Registry.Count("shard.retry.exhausted", 1)
				obs.EmitErr(ctx, slog.LevelError, "store.retry.exhausted", err,
					append(faultAttrs(err), slog.Int("attempts", attempts))...)
			}
			return v, err
		}
		d := backoff
		if j := p.jitter(); j > 0 {
			if rng == nil {
				seed := p.Seed
				if seed == 0 {
					seed = 0x5eed
				}
				rng = rand.New(rand.NewSource(seed))
			}
			d += time.Duration(j * rng.Float64() * float64(backoff))
		}
		p.Registry.Count("shard.retry.total", 1)
		p.Registry.Observe("shard.retry.backoff", obs.LatencyBuckets, d.Seconds())
		obs.EmitErr(ctx, slog.LevelWarn, "store.retry", err,
			append(faultAttrs(err),
				slog.Int("attempt", attempt),
				slog.Duration("backoff", d))...)
		if serr := p.sleep(ctx, d); serr != nil {
			return v, serr
		}
		if backoff < p.cap() {
			backoff *= 2
			if backoff > p.cap() {
				backoff = p.cap()
			}
		}
	}
}

// faultAttrs extracts the op/path/kind attribution a classified *Fault
// carries, for retry events.
func faultAttrs(err error) []obs.Attr {
	var f *Fault
	if !errors.As(err, &f) {
		return nil
	}
	attrs := []obs.Attr{slog.String("op", f.Op), slog.String("path", f.Path)}
	if f.Kind != KindIO {
		attrs = append(attrs, slog.String("kind", f.Kind.String()))
	}
	return attrs
}

// WithRetry wraps base so that every operation — including positional
// reads and writes on the files it opens — retries transient failures
// under the policy. Positional I/O makes the retries idempotent: a
// retried WriteAt overwrites whatever a torn write left behind, and a
// retried post-timeout read lands in a fresh private buffer so an
// abandoned attempt can never corrupt an accepted one.
func WithRetry(base Store, ctx context.Context, p RetryPolicy) Store {
	if ctx == nil {
		ctx = context.Background()
	}
	return &retryStore{base: base, ctx: ctx, p: p}
}

type retryStore struct {
	base Store
	ctx  context.Context
	p    RetryPolicy
}

func (s *retryStore) Open(path string) (File, error) {
	f, err := doValue(s.p, s.ctx, "open", path, func() (File, error) {
		return s.base.Open(path)
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{f: f, path: path, ctx: s.ctx, p: s.p}, nil
}

func (s *retryStore) Create(path string) (File, error) {
	f, err := doValue(s.p, s.ctx, "create", path, func() (File, error) {
		return s.base.Create(path)
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{f: f, path: path, ctx: s.ctx, p: s.p}, nil
}

func (s *retryStore) Rename(oldPath, newPath string) error {
	_, err := doValue(s.p, s.ctx, "rename", oldPath, func() (struct{}, error) {
		return struct{}{}, s.base.Rename(oldPath, newPath)
	})
	return err
}

func (s *retryStore) Remove(path string) error {
	_, err := doValue(s.p, s.ctx, "remove", path, func() (struct{}, error) {
		return struct{}{}, s.base.Remove(path)
	})
	return err
}

type retryFile struct {
	f    File
	path string
	ctx  context.Context
	p    RetryPolicy
}

// readResult is one bounded read attempt's private landing zone.
type readResult struct {
	n   int
	buf []byte
}

func (f *retryFile) ReadAt(b []byte, off int64) (int, error) {
	if f.p.AttemptTimeout <= 0 {
		var n int
		err := f.p.Do(f.ctx, func() (e error) {
			n, e = f.f.ReadAt(b, off)
			return e
		})
		return n, err
	}
	// Deadline-bounded reads land in a per-attempt buffer: an abandoned
	// attempt that completes late writes into memory nobody else holds,
	// never into b while a retry is filling it.
	out, err := doValue(f.p, f.ctx, "read", f.path, func() (readResult, error) {
		buf := make([]byte, len(b))
		n, e := f.f.ReadAt(buf, off)
		return readResult{n: n, buf: buf}, e
	})
	if out.buf != nil && out.n > 0 {
		copy(b, out.buf[:out.n])
	}
	return out.n, err
}

func (f *retryFile) WriteAt(b []byte, off int64) (int, error) {
	if f.p.AttemptTimeout <= 0 {
		var n int
		err := f.p.Do(f.ctx, func() (e error) {
			n, e = f.f.WriteAt(b, off)
			return e
		})
		return n, err
	}
	// Deadline-bounded writes snapshot b per attempt: the caller may
	// reuse its buffer the moment we return, but an abandoned attempt
	// keeps reading its own copy.
	out, err := doValue(f.p, f.ctx, "write", f.path, func() (int, error) {
		buf := append([]byte(nil), b...)
		return f.f.WriteAt(buf, off)
	})
	return out, err
}

func (f *retryFile) Size() (int64, error) {
	return doValue(f.p, f.ctx, "size", f.path, func() (int64, error) {
		return f.f.Size()
	})
}

func (f *retryFile) Sync() error {
	_, err := doValue(f.p, f.ctx, "sync", f.path, func() (struct{}, error) {
		return struct{}{}, f.f.Sync()
	})
	return err
}

func (f *retryFile) Close() error { return f.f.Close() }
