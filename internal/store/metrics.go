package store

import (
	"repro/internal/obs"
)

// WithMetrics wraps a Store so every byte moved and every operation
// issued is billed into reg. Each operation feeds two labeled families,
//
//	store.io{op="read|write|open|create|sync"}        counter  calls
//	store.io.bytes{op="read|write"}                   counter  bytes moved
//
// plus the legacy flat counters existing dashboards scrape:
//
//	store.bytes_read       counter  bytes actually returned by ReadAt
//	store.bytes_written    counter  bytes actually accepted by WriteAt
//	store.reads            counter  ReadAt calls
//	store.writes           counter  WriteAt calls
//	store.opens            counter  Open calls
//	store.creates          counter  Create calls
//	store.syncs            counter  Sync calls
//
// Partial transfers bill the partial count — the bytes moved, not the
// bytes requested — so under the retry layer the counters reflect the
// true I/O amplification of a flaky device, including every re-issued
// attempt. Wrap the metrics layer below WithRetry for that reason.
//
// A nil registry returns the base store unwrapped.
func WithMetrics(base Store, reg *obs.Registry) Store {
	if reg == nil {
		return base
	}
	return &meteredStore{base: base, reg: reg, ops: newOpMetrics(reg)}
}

// opMetrics holds the interned labeled children plus the legacy flat
// counters, resolved once so the I/O path is a plain atomic add.
type opMetrics struct {
	opens, creates, syncs       *obs.Counter // store.io{op=...}
	reads, writes               *obs.Counter
	readBytes, writeBytes       *obs.Counter // store.io.bytes{op=...}
	flatOpens, flatCreates      *obs.Counter // legacy flat spellings
	flatSyncs                   *obs.Counter
	flatReads, flatWrites       *obs.Counter
	flatBytesRead, flatBytesOut *obs.Counter
}

func newOpMetrics(reg *obs.Registry) opMetrics {
	return opMetrics{
		opens:         reg.CounterWith("store.io", obs.L("op", "open")),
		creates:       reg.CounterWith("store.io", obs.L("op", "create")),
		syncs:         reg.CounterWith("store.io", obs.L("op", "sync")),
		reads:         reg.CounterWith("store.io", obs.L("op", "read")),
		writes:        reg.CounterWith("store.io", obs.L("op", "write")),
		readBytes:     reg.CounterWith("store.io.bytes", obs.L("op", "read")),
		writeBytes:    reg.CounterWith("store.io.bytes", obs.L("op", "write")),
		flatOpens:     reg.Counter("store.opens"),
		flatCreates:   reg.Counter("store.creates"),
		flatSyncs:     reg.Counter("store.syncs"),
		flatReads:     reg.Counter("store.reads"),
		flatWrites:    reg.Counter("store.writes"),
		flatBytesRead: reg.Counter("store.bytes_read"),
		flatBytesOut:  reg.Counter("store.bytes_written"),
	}
}

type meteredStore struct {
	base Store
	reg  *obs.Registry
	ops  opMetrics
}

func (s *meteredStore) Open(path string) (File, error) {
	f, err := s.base.Open(path)
	if err != nil {
		return nil, err
	}
	s.ops.opens.Inc()
	s.ops.flatOpens.Inc()
	return &meteredFile{base: f, ops: &s.ops}, nil
}

func (s *meteredStore) Create(path string) (File, error) {
	f, err := s.base.Create(path)
	if err != nil {
		return nil, err
	}
	s.ops.creates.Inc()
	s.ops.flatCreates.Inc()
	return &meteredFile{base: f, ops: &s.ops}, nil
}

func (s *meteredStore) Rename(oldPath, newPath string) error { return s.base.Rename(oldPath, newPath) }
func (s *meteredStore) Remove(path string) error             { return s.base.Remove(path) }

type meteredFile struct {
	base File
	ops  *opMetrics
}

func (f *meteredFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.base.ReadAt(p, off)
	f.ops.reads.Inc()
	f.ops.flatReads.Inc()
	if n > 0 {
		f.ops.readBytes.Add(uint64(n))
		f.ops.flatBytesRead.Add(uint64(n))
	}
	return n, err
}

func (f *meteredFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.base.WriteAt(p, off)
	f.ops.writes.Inc()
	f.ops.flatWrites.Inc()
	if n > 0 {
		f.ops.writeBytes.Add(uint64(n))
		f.ops.flatBytesOut.Add(uint64(n))
	}
	return n, err
}

func (f *meteredFile) Close() error { return f.base.Close() }

func (f *meteredFile) Size() (int64, error) { return f.base.Size() }

func (f *meteredFile) Sync() error {
	f.ops.syncs.Inc()
	f.ops.flatSyncs.Inc()
	return f.base.Sync()
}
