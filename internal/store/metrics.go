package store

import (
	"repro/internal/obs"
)

// WithMetrics wraps a Store so every byte moved and every operation
// issued is billed into reg:
//
//	store.bytes_read       counter  bytes actually returned by ReadAt
//	store.bytes_written    counter  bytes actually accepted by WriteAt
//	store.reads            counter  ReadAt calls
//	store.writes           counter  WriteAt calls
//	store.opens            counter  Open calls
//	store.creates          counter  Create calls
//	store.syncs            counter  Sync calls
//
// Partial transfers bill the partial count — the bytes moved, not the
// bytes requested — so under the retry layer the counters reflect the
// true I/O amplification of a flaky device, including every re-issued
// attempt. Wrap the metrics layer below WithRetry for that reason.
//
// A nil registry returns the base store unwrapped.
func WithMetrics(base Store, reg *obs.Registry) Store {
	if reg == nil {
		return base
	}
	return &meteredStore{base: base, reg: reg}
}

type meteredStore struct {
	base Store
	reg  *obs.Registry
}

func (s *meteredStore) Open(path string) (File, error) {
	f, err := s.base.Open(path)
	if err != nil {
		return nil, err
	}
	s.reg.Count("store.opens", 1)
	return &meteredFile{base: f, reg: s.reg}, nil
}

func (s *meteredStore) Create(path string) (File, error) {
	f, err := s.base.Create(path)
	if err != nil {
		return nil, err
	}
	s.reg.Count("store.creates", 1)
	return &meteredFile{base: f, reg: s.reg}, nil
}

func (s *meteredStore) Rename(oldPath, newPath string) error { return s.base.Rename(oldPath, newPath) }
func (s *meteredStore) Remove(path string) error             { return s.base.Remove(path) }

type meteredFile struct {
	base File
	reg  *obs.Registry
}

func (f *meteredFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.base.ReadAt(p, off)
	f.reg.Count("store.reads", 1)
	if n > 0 {
		f.reg.Count("store.bytes_read", uint64(n))
	}
	return n, err
}

func (f *meteredFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.base.WriteAt(p, off)
	f.reg.Count("store.writes", 1)
	if n > 0 {
		f.reg.Count("store.bytes_written", uint64(n))
	}
	return n, err
}

func (f *meteredFile) Close() error { return f.base.Close() }

func (f *meteredFile) Size() (int64, error) { return f.base.Size() }

func (f *meteredFile) Sync() error {
	f.reg.Count("store.syncs", 1)
	return f.base.Sync()
}
