package shard

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// Encode splits the contents of r (size bytes) into k+m shards written
// to outDir (m being the code's parity count, 2 for the default
// liberation code), returning the manifest (also written to outDir).
// p = 0 selects the smallest usable prime automatically.
func Encode(r io.Reader, size int64, fileName string, k, p, elemSize int, outDir string) (*Manifest, error) {
	return EncodeOpts(r, size, fileName, k, p, elemSize, outDir, Options{})
}

// EncodeObserved is Encode with a metrics registry attached to the
// underlying code: the per-algorithm spans (liberation.encode) and a
// shard.encode span covering the whole file land in reg. A nil registry
// makes it identical to Encode.
func EncodeObserved(r io.Reader, size int64, fileName string, k, p, elemSize int,
	outDir string, reg *obs.Registry) (*Manifest, error) {
	return EncodeOpts(r, size, fileName, k, p, elemSize, outDir, Options{Registry: reg})
}

// EncodeParallel is Encode with the stripe encoding fanned out over a
// worker pool (workers <= 0 uses all cores): stripes are read in
// batches, encoded concurrently (each stripe is independent), and
// written out in order so shard files and checksums are byte-identical
// to the sequential path.
func EncodeParallel(r io.Reader, size int64, fileName string, k, p, elemSize int,
	outDir string, workers int) (*Manifest, error) {
	return EncodeParallelObserved(r, size, fileName, k, p, elemSize, outDir, workers, nil)
}

// EncodeParallelObserved is EncodeParallel with a metrics registry
// attached to both the code (liberation.encode spans) and the worker
// pool (pipeline.encode spans and queue-wait histograms). A nil
// registry makes it identical to EncodeParallel.
func EncodeParallelObserved(r io.Reader, size int64, fileName string, k, p, elemSize int,
	outDir string, workers int, reg *obs.Registry) (*Manifest, error) {
	if workers <= 0 {
		workers = -1 // historical EncodeParallel semantics: 0 = all cores
	}
	return EncodeOpts(r, size, fileName, k, p, elemSize, outDir,
		Options{Workers: workers, Registry: reg})
}

// encBatch is one unit of the encode pipeline: up to cap(stripes)
// stripes owned by exactly one stage at a time.
type encBatch struct {
	stripes []*core.Stripe
	n       int // stripes filled
}

// EncodeOpts is the streaming encoder behind Encode and EncodeParallel.
//
// Three stages run concurrently, handing batches of stripes around a
// fixed ring: a reader goroutine fills batch N+1 from r, the coding
// stage encodes batch N (in-line, or over a pipeline worker pool when
// opt.Workers > 1), and the writer drains batch N-1 into the shard
// files in order, so the output is byte-identical to a sequential
// encode no matter the worker count. Stripes come from the shared
// stripe pool and are returned on completion; resident memory is
// O(BatchStripes × stripe), independent of size.
//
// On any error every created shard file is removed: a failed encode
// leaves no partial shard set (and no manifest) behind.
func EncodeOpts(r io.Reader, size int64, fileName string, k, p, elemSize int,
	outDir string, opt Options) (_ *Manifest, err error) {
	if size < 0 {
		return nil, fmt.Errorf("%w: negative size", core.ErrParams)
	}
	reg := opt.Registry
	codeName := opt.codeName()
	code, err := newCode(codeName, k, p, reg)
	if err != nil {
		return nil, err
	}
	countShardOp(reg, "encode", codeName)
	ctx, sp := obs.StartOp(opt.context(), opt.Tracer, reg, "shard.encode",
		slog.String("file", filepath.Base(fileName)), slog.Int("k", k))
	defer func() {
		sp.Bytes(int(size)).End(err)
		stampFlight(ctx, err)
	}()
	w := code.W()
	parities := code.M()
	perStripe := int64(k) * int64(w) * int64(elemSize)
	stripes := int((size + perStripe - 1) / perStripe)
	if stripes == 0 {
		stripes = 1
	}
	// Record the resolved prime when the code exposes one (so an auto-
	// selected p survives into the manifest); otherwise keep the request
	// (0 for the non-prime codes), which reconstructs identically.
	mp := p
	if resolved, ok := codes.Prime(code); ok {
		mp = resolved
	}
	m := &Manifest{
		Version:  FormatVersion,
		Code:     codeName,
		K:        k,
		P:        mp,
		M:        parities,
		W:        w,
		ElemSize: elemSize,
		FileName: filepath.Base(fileName),
		FileSize: size,
		Stripes:  stripes,
	}

	// Create the outputs up front — through the store, so creation is
	// retried on transient faults; on any error, remove everything we
	// created so a failed encode leaves no partial shard set behind.
	st := opt.store(ctx)
	var created []string
	files := make([]store.File, k+parities)
	writers := make([]*bufio.Writer, k+parities)
	defer func() {
		if err == nil {
			return
		}
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
		for _, path := range created {
			st.Remove(path)
		}
	}()
	for i := range files {
		path := filepath.Join(outDir, m.ShardName(i))
		f, createErr := st.Create(path)
		if createErr != nil {
			err = createErr
			return nil, err
		}
		created = append(created, path)
		files[i] = f
		writers[i] = bufio.NewWriterSize(&store.OffsetWriter{F: f}, 256<<10)
	}

	// The batch ring: 3 batches so reading, encoding, and writing each
	// own one at steady state (double buffering on both hand-offs).
	const ringBatches = 3
	batchN := opt.batch()
	if batchN > stripes {
		batchN = stripes
	}
	pool := core.SharedStripePool(k, parities, w, elemSize)
	all := make([]*encBatch, 0, ringBatches)
	free := make(chan *encBatch, ringBatches)
	filled := make(chan *encBatch, 1)
	encoded := make(chan *encBatch, 1)
	for i := 0; i < ringBatches; i++ {
		b := &encBatch{stripes: make([]*core.Stripe, batchN)}
		for j := range b.stripes {
			b.stripes[j] = pool.Get()
		}
		all = append(all, b)
		free <- b
	}
	defer func() {
		for _, b := range all {
			for _, s := range b.stripes {
				pool.Put(s)
			}
		}
	}()

	abort := make(chan struct{})
	var failOnce sync.Once
	var stageErr error
	fail := func(e error) {
		failOnce.Do(func() {
			stageErr = e
			close(abort)
		})
	}
	now := func() time.Time {
		if reg == nil {
			return time.Time{}
		}
		return time.Now()
	}
	since := func(name string, t0 time.Time) {
		if reg != nil {
			observeWait(reg, name, time.Since(t0))
		}
	}

	var consumed int64 // owned by the reader; read after wg.Wait
	var wg sync.WaitGroup

	// Stage 1: reader. Fills batches from r, zero-padding the tail.
	wg.Add(1)
	go func() {
		defer wg.Done()
		remaining := stripes
		for remaining > 0 {
			t0 := now()
			var b *encBatch
			select {
			case b = <-free:
			case <-abort:
				return
			}
			since("shard.encode.read.wait.seconds", t0)
			n := batchN
			if n > remaining {
				n = remaining
			}
			t1 := now()
			for j := 0; j < n; j++ {
				got, readErr := fillStripe(r, b.stripes[j], k)
				consumed += got
				if readErr != nil {
					fail(readErr)
					return
				}
			}
			since("shard.encode.read.seconds", t1)
			b.n = n
			select {
			case filled <- b:
				addGauge(reg, "shard.encode.queue_depth", 1)
			case <-abort:
				return
			}
			remaining -= n
		}
		close(filled)
	}()

	// Stage 2: coding. In-line for the serial path (keeping the span
	// profile of a sequential encode), a pipeline pool otherwise.
	workers := opt.workerCount()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			t0 := now()
			var b *encBatch
			var ok bool
			select {
			case b, ok = <-filled:
			case <-abort:
				return
			}
			if !ok {
				close(encoded)
				return
			}
			since("shard.encode.encode.wait.seconds", t0)
			t1 := now()
			var encErr error
			if workers > 1 {
				encErr = pipeline.EncodeAll(code, b.stripes[:b.n], nil,
					pipeline.Config{Workers: workers, Registry: reg, Context: ctx})
			} else {
				for _, s := range b.stripes[:b.n] {
					if encErr = code.Encode(s, nil); encErr != nil {
						break
					}
				}
			}
			if encErr != nil {
				fail(encErr)
				return
			}
			since("shard.encode.encode.seconds", t1)
			select {
			case encoded <- b:
			case <-abort:
				return
			}
		}
	}()

	// Stage 3: writer (this goroutine). Drains batches in order, so
	// shard bytes and checksums match the sequential path exactly.
	sums := make([]uint32, k+parities)
writeLoop:
	for {
		t0 := now()
		var b *encBatch
		var ok bool
		select {
		case b, ok = <-encoded:
		case <-abort:
			break writeLoop
		}
		if !ok {
			break
		}
		since("shard.encode.write.wait.seconds", t0)
		t1 := now()
		for j := 0; j < b.n; j++ {
			for i := 0; i < k+parities; i++ {
				strip := b.stripes[j].Strips[i]
				if _, writeErr := writers[i].Write(strip); writeErr != nil {
					fail(writeErr)
					break writeLoop
				}
				sums[i] = crc32.Update(sums[i], crc32.IEEETable, strip)
			}
		}
		since("shard.encode.write.seconds", t1)
		addGauge(reg, "shard.encode.queue_depth", -1)
		free <- b // ring capacity guarantees room
	}
	wg.Wait()
	if stageErr != nil {
		err = stageErr
		return nil, err
	}
	if consumed != size {
		err = fmt.Errorf("shard: read %d bytes, expected %d", consumed, size)
		return nil, err
	}
	for i := range writers {
		if err = writers[i].Flush(); err != nil {
			return nil, err
		}
		if err = files[i].Sync(); err != nil {
			return nil, err
		}
		if err = files[i].Close(); err != nil {
			files[i] = nil
			return nil, err
		}
		files[i] = nil
	}
	m.Checksums = sums

	// A node-mapped store knows where every shard landed: record the
	// placement (v3 block) so decode sessions and operators can reason
	// about which node outages this shard set survives.
	if mapper, ok := opt.Store.(store.NodeMapper); ok {
		pl := &Placement{Policy: mapper.PlacementPolicy(), Nodes: mapper.NodeCount(),
			Shards: make([]int, k+parities)}
		for i := range pl.Shards {
			pl.Shards[i] = mapper.NodeFor(filepath.Join(outDir, m.ShardName(i)))
		}
		m.Placement = pl
	}

	manifestPath := filepath.Join(outDir, ManifestName(m.FileName))
	created = append(created, manifestPath)
	if err = writeManifest(st, m, manifestPath); err != nil {
		return nil, err
	}
	return m, nil
}

// fillStripe reads one stripe's worth of data strips from r, returning
// the byte count actually read. Hitting EOF is not an error: the
// remainder of the stripe is zero-padded (the caller reconciles the
// total consumed count against the declared size).
func fillStripe(r io.Reader, s *core.Stripe, k int) (int64, error) {
	var total int64
	for t := 0; t < k; t++ {
		strip := s.Strips[t]
		n, err := io.ReadFull(r, strip)
		total += int64(n)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			for i := n; i < len(strip); i++ {
				strip[i] = 0
			}
			for t++; t < k; t++ {
				strip = s.Strips[t]
				for i := range strip {
					strip[i] = 0
				}
			}
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
