package shard

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// EncodeParallel is Encode with the stripe encoding fanned out over a
// worker pool: stripes are read in batches, encoded concurrently (each
// stripe is independent), and written out in order so shard files and
// checksums are byte-identical to the sequential path.
func EncodeParallel(r io.Reader, size int64, fileName string, k, p, elemSize int,
	outDir string, workers int) (*Manifest, error) {
	return EncodeParallelObserved(r, size, fileName, k, p, elemSize, outDir, workers, nil)
}

// EncodeParallelObserved is EncodeParallel with a metrics registry
// attached to both the code (liberation.encode spans) and the worker
// pool (pipeline.encode spans and queue-wait histograms). A nil
// registry makes it identical to EncodeParallel.
func EncodeParallelObserved(r io.Reader, size int64, fileName string, k, p, elemSize int,
	outDir string, workers int, reg *obs.Registry) (_ *Manifest, err error) {
	if size < 0 {
		return nil, fmt.Errorf("%w: negative size", core.ErrParams)
	}
	code, err := newCode(k, p, reg)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(reg, "shard.encode")
	defer func() { sp.Bytes(int(size)).End(err) }()
	w := code.W()
	perStripe := int64(k) * int64(w) * int64(elemSize)
	stripes := int((size + perStripe - 1) / perStripe)
	if stripes == 0 {
		stripes = 1
	}
	m := &Manifest{
		Version:  FormatVersion,
		Code:     "liberation",
		K:        k,
		P:        code.P(),
		ElemSize: elemSize,
		FileName: filepath.Base(fileName),
		FileSize: size,
		Stripes:  stripes,
	}

	files := make([]*os.File, k+2)
	sums := make([]uint32, k+2)
	for i := range files {
		f, err := os.Create(filepath.Join(outDir, m.ShardName(i)))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		files[i] = f
	}

	const batchStripes = 32
	batch := make([]*core.Stripe, 0, batchStripes)
	for i := 0; i < batchStripes; i++ {
		batch = append(batch, core.NewStripe(k, w, elemSize))
	}
	buf := make([]byte, perStripe)
	var consumed int64
	for done := 0; done < stripes; {
		n := batchStripes
		if rem := stripes - done; n > rem {
			n = rem
		}
		for b := 0; b < n; b++ {
			s := batch[b]
			got, err := io.ReadFull(r, buf)
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				for i := got; i < len(buf); i++ {
					buf[i] = 0
				}
			} else if err != nil {
				return nil, err
			}
			consumed += int64(got)
			for t := 0; t < k; t++ {
				copy(s.Strips[t], buf[t*w*elemSize:])
			}
		}
		if err := pipeline.EncodeAll(code, batch[:n], nil,
			pipeline.Config{Workers: workers, Registry: reg}); err != nil {
			return nil, err
		}
		for b := 0; b < n; b++ {
			for i := 0; i < k+2; i++ {
				if _, err := files[i].Write(batch[b].Strips[i]); err != nil {
					return nil, err
				}
				sums[i] = crc32.Update(sums[i], crc32.IEEETable, batch[b].Strips[i])
			}
		}
		done += n
	}
	if consumed != size {
		return nil, fmt.Errorf("shard: read %d bytes, expected %d", consumed, size)
	}
	m.Checksums = sums

	mf, err := os.Create(filepath.Join(outDir, ManifestName(m.FileName)))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, err
	}
	return m, nil
}
