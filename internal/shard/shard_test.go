package shard

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func encodeTestFile(t *testing.T, size int64, k, p, elem int) (dir string, content []byte, m *Manifest) {
	t.Helper()
	dir = t.TempDir()
	content = make([]byte, size)
	rand.New(rand.NewSource(size + int64(k))).Read(content)
	m, err := Encode(bytes.NewReader(content), size, "blob.bin", k, p, elem, dir)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return dir, content, m
}

func decodeAndCompare(t *testing.T, dir string, m *Manifest, want []byte) []ShardStatus {
	t.Helper()
	var out bytes.Buffer
	status, err := Decode(filepath.Join(dir, ManifestName(m.FileName)), &out)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("decoded %d bytes, mismatch with original %d bytes", out.Len(), len(want))
	}
	return status
}

func TestRoundTripSizes(t *testing.T) {
	// Exercise padding edge cases: empty file, sub-element, sub-stripe,
	// exact multiple, and multi-stripe.
	for _, size := range []int64{0, 1, 100, 4 * 5 * 64, 4*5*64*3 + 17} {
		dir, content, m := encodeTestFile(t, size, 4, 0, 64)
		status := decodeAndCompare(t, dir, m, content)
		for _, st := range status {
			if !st.Present || !st.Valid {
				t.Errorf("size=%d: shard %d unhealthy on clean decode", size, st.Index)
			}
		}
	}
}

func TestRecoverFromMissingShards(t *testing.T) {
	dir, content, m := encodeTestFile(t, 10000, 5, 0, 128)
	// Remove one data shard and the Q shard.
	for _, i := range []int{2, m.K + 1} {
		if err := os.Remove(filepath.Join(dir, m.ShardName(i))); err != nil {
			t.Fatal(err)
		}
	}
	status := decodeAndCompare(t, dir, m, content)
	if status[2].Present || status[m.K+1].Present {
		t.Error("missing shards reported as present")
	}
}

func TestRecoverFromCorruptShards(t *testing.T) {
	dir, content, m := encodeTestFile(t, 5000, 4, 5, 64)
	// Corrupt two shards (checksums catch it; treated as erasures).
	for _, i := range []int{0, 4} {
		path := filepath.Join(dir, m.ShardName(i))
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	status := decodeAndCompare(t, dir, m, content)
	if status[0].Valid || status[4].Valid {
		t.Error("corrupt shards reported valid")
	}
}

func TestTooManyLosses(t *testing.T) {
	dir, _, m := encodeTestFile(t, 3000, 4, 0, 64)
	for _, i := range []int{0, 1, 2} {
		if err := os.Remove(filepath.Join(dir, m.ShardName(i))); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if _, err := Decode(filepath.Join(dir, ManifestName(m.FileName)), &out); err == nil {
		t.Error("decode with 3 missing shards succeeded")
	}
}

func TestRepair(t *testing.T) {
	dir, content, m := encodeTestFile(t, 9999, 6, 7, 32)
	manifest := filepath.Join(dir, ManifestName(m.FileName))
	if err := os.Remove(filepath.Join(dir, m.ShardName(3))); err != nil {
		t.Fatal(err)
	}
	// Corrupt P as well.
	pPath := filepath.Join(dir, m.ShardName(m.K))
	b, _ := os.ReadFile(pPath)
	b[0] ^= 1
	if err := os.WriteFile(pPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	repaired, err := Repair(manifest)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if len(repaired) != 2 {
		t.Fatalf("repaired %v, want 2 shards", repaired)
	}
	// After repair, everything must be healthy and decodable.
	status := decodeAndCompare(t, dir, m, content)
	for _, st := range status {
		if !st.Valid {
			t.Errorf("shard %d still invalid after repair", st.Index)
		}
	}
	// Repairing a healthy set is a no-op.
	repaired, err = Repair(manifest)
	if err != nil || repaired != nil {
		t.Errorf("no-op repair gave %v, %v", repaired, err)
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"code":"liberation"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Error("accepted wrong version")
	}
	if err := os.WriteFile(path, []byte(`{"version":1,"code":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Error("accepted wrong code")
	}
	if _, err := LoadManifest(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("accepted missing manifest")
	}
}

func TestShardNames(t *testing.T) {
	m := &Manifest{K: 3, FileName: "x"}
	if m.ShardName(0) != "x.shard.d00" || m.ShardName(3) != "x.shard.p" || m.ShardName(4) != "x.shard.q" {
		t.Errorf("shard names: %s %s %s", m.ShardName(0), m.ShardName(3), m.ShardName(4))
	}
}

func TestEncodeParallelMatchesSequential(t *testing.T) {
	content := make([]byte, 123456)
	rand.New(rand.NewSource(5)).Read(content)
	dirSeq := t.TempDir()
	dirPar := t.TempDir()
	mSeq, err := Encode(bytes.NewReader(content), int64(len(content)), "f.bin", 5, 7, 64, dirSeq)
	if err != nil {
		t.Fatal(err)
	}
	mPar, err := EncodeParallel(bytes.NewReader(content), int64(len(content)), "f.bin", 5, 7, 64, dirPar, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Shard files and checksums must be byte-identical.
	for i := 0; i < mSeq.K+2; i++ {
		if mSeq.Checksums[i] != mPar.Checksums[i] {
			t.Fatalf("shard %d checksum differs", i)
		}
		a, err := os.ReadFile(filepath.Join(dirSeq, mSeq.ShardName(i)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirPar, mPar.ShardName(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("shard %d contents differ", i)
		}
	}
	// And the parallel set decodes.
	var out bytes.Buffer
	if _, err := Decode(filepath.Join(dirPar, ManifestName("f.bin")), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), content) {
		t.Fatal("parallel-encoded set decodes wrong")
	}
}
