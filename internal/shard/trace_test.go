package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/store/faultstore"
)

// TestDecodeCausalTrace is the tracing acceptance scenario: a seeded
// chaos schedule (transient read faults on shard 0) plus persistent
// on-disk corruption of shard 1 drive a degraded decode, and the
// resulting trace must be complete — every injected fault, retry,
// quarantine, rung choice, and CorrectColumn heal is a child event of
// one trace, with typed attributes, in both the flight recorder and the
// JSON event log.
func TestDecodeCausalTrace(t *testing.T) {
	dir, content, m := encodeTestFile(t, 4*5*64*8, 4, 0, 64)

	// Shard 1: persistent corruption in stripe 0 — CRC soft quarantine,
	// healed in stream by CorrectColumn.
	path := filepath.Join(dir, m.ShardName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// Shard 0: two seeded transient read faults, absorbed by the retry
	// layer — they must surface as faultstore.inject + store.retry
	// events, not as failures.
	faulty := faultstore.New(store.OS{}, faultstore.Config{Seed: 7, Rules: []faultstore.Rule{
		{Path: m.ShardName(0), Op: faultstore.OpRead, Kind: faultstore.Transient, Prob: 1, Count: 2},
	}})

	flight := obs.NewFlightRecorder(1024)
	var logBuf bytes.Buffer
	tracer := obs.NewTracer(flight, obs.NewEventLog(&logBuf, slog.LevelInfo))
	tracer.Seed(42)
	reg := obs.NewRegistry()
	opt := Options{
		Store: faulty, Registry: reg, Tracer: tracer,
		Retry: store.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Sleep: instantSleep},
	}

	out, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	rep, err := DecodeReport(filepath.Join(dir, ManifestName(m.FileName)), out, opt)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	got, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("degraded decode produced wrong bytes")
	}
	if rep.Corrections == 0 || len(rep.Quarantined) != 1 || rep.Quarantined[0] != 1 {
		t.Fatalf("report = %+v, want shard 1 quarantined and healed", rep)
	}

	events := flight.Snapshot()
	if len(events) == 0 {
		t.Fatal("flight recorder is empty")
	}

	// One trace end to end.
	trace := events[0].Trace
	if trace == "" {
		t.Fatal("events carry no trace ID")
	}
	for _, ev := range events {
		if ev.Trace != trace {
			t.Fatalf("event %q in trace %q, want %q", ev.Name, ev.Trace, trace)
		}
	}

	// Causal closure: every event's parent is a span that completed in
	// the same trace, except the root (shard.decode), whose parent is
	// empty.
	spans := make(map[string]string) // span id -> name
	for _, ev := range events {
		spans[ev.Span] = ev.Name
	}
	for _, ev := range events {
		if ev.Parent == "" {
			if ev.Name != "shard.decode" {
				t.Errorf("parentless event %q, only the root span may be", ev.Name)
			}
			continue
		}
		if _, ok := spans[ev.Parent]; !ok {
			t.Errorf("event %q has dangling parent span %q", ev.Name, ev.Parent)
		}
	}

	// Every decision of the recovery must be in the trace, with its
	// typed attributes.
	count := make(map[string]int)
	for _, ev := range events {
		count[ev.Name]++
		switch ev.Name {
		case "faultstore.inject":
			if ev.Attrs["seed"] != int64(7) || ev.Attrs["rule"] != int64(0) || ev.Attrs["op"] != "read" {
				t.Errorf("faultstore.inject attrs = %v, want seed=7 rule=0 op=read", ev.Attrs)
			}
		case "store.retry":
			if ev.Attrs["op"] != "read" || ev.Err == "" {
				t.Errorf("store.retry attrs = %v err=%q, want op=read and a cause", ev.Attrs, ev.Err)
			}
		case "shard.unhealthy":
			if ev.Attrs["shard"] != int64(1) || ev.Attrs["state"] != "corrupt" {
				t.Errorf("shard.unhealthy attrs = %v, want shard=1 state=corrupt", ev.Attrs)
			}
		case "shard.quarantine":
			if ev.Attrs["shard"] != int64(1) {
				t.Errorf("shard.quarantine attrs = %v, want shard=1", ev.Attrs)
			}
		case "shard.rung":
			if ev.Attrs["rung"] != "correction" {
				t.Errorf("shard.rung attrs = %v, want rung=correction", ev.Attrs)
			}
		case "shard.correct_column":
			if ev.Attrs["stripe"] != int64(0) || ev.Attrs["col"] != int64(1) {
				t.Errorf("shard.correct_column attrs = %v, want stripe=0 col=1", ev.Attrs)
			}
		}
	}
	for _, name := range []string{
		"shard.decode", "shard.attempt", "shard.probe", "shard.unhealthy",
		"shard.quarantine", "shard.rung", "shard.correct_column",
		"faultstore.inject", "store.retry",
	} {
		if count[name] == 0 {
			t.Errorf("trace is missing %q events (have %v)", name, count)
		}
	}
	if count["faultstore.inject"] != 2 || count["store.retry"] != 2 {
		t.Errorf("injections/retries = %d/%d, want 2/2",
			count["faultstore.inject"], count["store.retry"])
	}

	// The same events must be in the JSON event log, trace-correlated.
	logged := make(map[string]int)
	dec := json.NewDecoder(&logBuf)
	for dec.More() {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("event log is not JSON lines: %v", err)
		}
		if line["trace"] != trace {
			t.Errorf("log line %v in trace %v, want %v", line["msg"], line["trace"], trace)
		}
		logged[line["msg"].(string)]++
	}
	for name, n := range count {
		if logged[name] != n {
			t.Errorf("event log has %d %q lines, flight recorder %d", logged[name], name, n)
		}
	}
}

// TestUnrecoverableCarriesFlight pins the post-mortem contract: when
// recovery is impossible, the typed error carries the trace's flight-
// recorder tail — what the operation saw and tried — without any live
// process or external pipeline.
func TestUnrecoverableCarriesFlight(t *testing.T) {
	dir, _, m := encodeTestFile(t, 6000, 4, 0, 64)
	for _, i := range []int{0, 2, 4} {
		if err := os.Remove(filepath.Join(dir, m.ShardName(i))); err != nil {
			t.Fatal(err)
		}
	}

	tracer := obs.NewTracer(obs.NewFlightRecorder(256))
	tracer.Seed(43)
	var out bytes.Buffer
	_, err := DecodeReport(filepath.Join(dir, ManifestName(m.FileName)), &out,
		Options{Tracer: tracer})
	var ue *UnrecoverableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnrecoverableError", err)
	}
	if len(ue.Flight) == 0 {
		t.Fatal("UnrecoverableError carries no flight events")
	}
	var unhealthy int
	var rootEnd bool
	for _, ev := range ue.Flight {
		if ev.Name == "shard.unhealthy" {
			unhealthy++
		}
		if ev.Name == "shard.decode" && ev.Err != "" {
			rootEnd = true
		}
	}
	if unhealthy != 3 {
		t.Errorf("flight records %d shard.unhealthy events, want 3", unhealthy)
	}
	if !rootEnd {
		t.Error("flight tail lacks the root span's failing completion event")
	}
}

// TestVerifyDegradedFlight checks that Verify roots its own trace and
// stamps the flight tail onto the DegradedError it returns.
func TestVerifyDegradedFlight(t *testing.T) {
	dir, _, m := encodeTestFile(t, 6000, 4, 0, 64)
	if err := os.Remove(filepath.Join(dir, m.ShardName(2))); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(obs.NewFlightRecorder(256))
	tracer.Seed(44)
	err := Verify(filepath.Join(dir, ManifestName(m.FileName)), Options{Tracer: tracer})
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DegradedError", err)
	}
	if len(de.Flight) == 0 {
		t.Fatal("DegradedError carries no flight events")
	}
	last := de.Flight[len(de.Flight)-1]
	if last.Name != "shard.verify" || last.Err == "" {
		t.Errorf("flight tail ends with %q (err %q), want the shard.verify completion", last.Name, last.Err)
	}
}
