package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/store/nodestore"
)

// TestChaosTripleSoak is the triple-fault acceptance soak: seeded
// schedules mixing whole-node outages with disk-level faults (shard
// files deleted or silently corrupted) against the m=3 family on spread
// placement over k+3 nodes. Every schedule injects at most three
// distinct shard failures — within the rs3 parity budget — so the
// contract is strict: decode MUST return byte-identical data, repair
// MUST heal the set, and a plain-store verify afterwards MUST be clean.
// Every failure reproduces from the seed printed in the test log.
func TestChaosTripleSoak(t *testing.T) {
	schedules := 100
	if testing.Short() {
		schedules = 25
	}
	if env := os.Getenv("CHAOS_TRIPLE_SCHEDULES"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("CHAOS_TRIPLE_SCHEDULES=%q: %v", env, err)
		}
		schedules = n
	}

	const codeName = "rs3"
	root := t.TempDir()
	var outages, deletions, corruptions int
	for i := 0; i < schedules; i++ {
		seed := int64(i + 1)
		rng := rand.New(rand.NewSource(seed))
		k := []int{3, 6}[i%2]
		const m = 3
		nodes := k + m

		dir := filepath.Join(root, fmt.Sprintf("s%04d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := make([]byte, 3*k*32+int(seed%251))
		rng.Read(content)
		enc := nodestore.New(nodestore.Config{Nodes: nodes, Placement: nodestore.PolicySpread})
		man, err := EncodeOpts(bytes.NewReader(content), int64(len(content)), "blob.bin",
			k, 0, 32, dir, Options{Store: enc, Code: codeName})
		if err != nil {
			t.Fatalf("seed=%d: clean encode failed: %v", seed, err)
		}
		manifestPath := filepath.Join(dir, ManifestName(man.FileName))
		manifestNode := enc.NodeFor(manifestPath)

		// Budget: up to three failures total, split between whole-node
		// outages and disk faults on shards whose nodes stay up.
		budget := rng.Intn(m) + 1 // 1..3
		nodesDown := rng.Intn(budget + 1)
		victims := map[int]bool{}
		for n := 0; len(victims) < nodesDown; n++ {
			cand := rng.Intn(nodes)
			if cand != manifestNode {
				victims[cand] = true
			}
			if n > 100*nodes {
				t.Fatalf("seed=%d: could not pick %d victim nodes", seed, nodesDown)
			}
		}
		// Disk faults land on shards hosted by surviving nodes.
		var survivors []int
		for s, node := range man.Placement.Shards {
			if !victims[node] {
				survivors = append(survivors, s)
			}
		}
		rng.Shuffle(len(survivors), func(a, b int) { survivors[a], survivors[b] = survivors[b], survivors[a] })
		diskFaults := survivors[:budget-nodesDown]
		for _, s := range diskFaults {
			path := filepath.Join(dir, man.ShardName(s))
			if rng.Intn(2) == 0 {
				if err := os.Remove(path); err != nil {
					t.Fatal(err)
				}
				deletions++
			} else {
				b, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
				if err := os.WriteFile(path, b, 0o644); err != nil {
					t.Fatal(err)
				}
				corruptions++
			}
		}
		outages += nodesDown

		var faults []nodestore.NodeFault
		for n := range victims {
			faults = append(faults, nodestore.NodeFault{Node: n, Kind: nodestore.Outage})
		}
		newChaos := func() *nodestore.Store {
			return nodestore.New(nodestore.Config{
				Nodes: nodes, Placement: nodestore.PolicySpread, Seed: seed,
				Faults: faults,
				Sleep:  instantSleep,
				Now:    func() time.Time { return time.Unix(0, 0) },
			})
		}
		opts := func() Options {
			return Options{Store: newChaos(), Retry: store.RetryPolicy{
				MaxAttempts: 4, BaseBackoff: time.Millisecond, Seed: seed, Sleep: instantSleep}}
		}

		out, err := os.Create(filepath.Join(dir, "out.tmp"))
		if err != nil {
			t.Fatal(err)
		}
		rep, derr := DecodeReport(manifestPath, out, opts())
		out.Close()
		if derr != nil {
			t.Fatalf("seed=%d (%d nodes down, %d disk faults): decode failed within the m=3 budget: %v",
				seed, nodesDown, len(diskFaults), derr)
		}
		got, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("seed=%d: decode returned wrong bytes under %d failures", seed, budget)
		}
		if budget > 0 && !rep.Degraded {
			t.Errorf("seed=%d: %d injected failures but decode not reported degraded", seed, budget)
		}
		os.Remove(out.Name())

		// Repair under the same schedule must heal everything the
		// surviving nodes can hold; the set must then verify clean on a
		// plain store and round-trip byte-identically.
		if _, rerr := RepairOpts(manifestPath, opts()); rerr != nil {
			t.Fatalf("seed=%d: repair failed within the m=3 budget: %v", seed, rerr)
		}
		if verr := Verify(manifestPath, Options{}); verr != nil {
			t.Fatalf("seed=%d: Verify after repair = %v", seed, verr)
		}
		decodeAndCompare(t, dir, man, content)
		assertNoRepairTemps(t, dir)
		os.RemoveAll(dir)
	}
	t.Logf("%d schedules: %d node outages, %d shard deletions, %d silent corruptions — all recovered byte-identically",
		schedules, outages, deletions, corruptions)
}
