// Package shard applies the Liberation codes to whole files: a file is
// striped into k data shards plus P and Q shards, any two of which may be
// lost (or silently corrupted — detected via per-shard checksums) while
// the file remains recoverable. It is the library behind the raidcli
// tool and doubles as an end-to-end exercise of the public coding API.
//
// The data path is streaming in both directions. Encoding overlaps
// read → encode → write through a double-buffered batch pipeline (a
// reader goroutine fills batch N+1 while the worker pool encodes batch N
// and a writer goroutine drains batch N-1), and decoding/repair read all
// k+2 shards stripe-by-stripe through per-shard file readers. Peak
// memory is O(batch × stripe) regardless of file size; shard health is
// decided up front by a cheap stat+checksum probe and re-verified
// incrementally by rolling CRCs while the stripes stream through.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/liberation"
	"repro/internal/obs"
)

// newCode builds the liberation code (p = 0 selects the smallest usable
// prime) and attaches the optional metrics registry.
func newCode(k, p int, reg *obs.Registry) (*liberation.Code, error) {
	var code *liberation.Code
	var err error
	if p == 0 {
		code, err = liberation.NewAuto(k)
	} else {
		code, err = liberation.New(k, p)
	}
	if err != nil {
		return nil, err
	}
	code.Instrument(reg)
	return code, nil
}

// FormatVersion identifies the manifest/shard layout.
const FormatVersion = 1

// DefaultBatchStripes is the pipeline batch size used when
// Options.BatchStripes is zero. It bounds the streaming paths' resident
// memory at O(DefaultBatchStripes × stripe) while keeping the worker
// pool fed.
const DefaultBatchStripes = 32

// Options tunes the streaming data path. The zero value is valid:
// serial coding, default batch size, no metrics.
type Options struct {
	// Workers sets the stripe-coding pool size: 0 or 1 encode/decode
	// in-line on the pipeline's coding stage, >1 fans stripes of each
	// batch out over a pipeline worker pool, and <0 uses all cores.
	Workers int
	// BatchStripes is the number of stripes per pipeline batch
	// (0 = DefaultBatchStripes). Peak memory scales with it.
	BatchStripes int
	// Registry, when non-nil, receives shard.* spans, the pipeline
	// stage-wait histograms, and the queue-depth gauge, and is attached
	// to the underlying code (liberation.* spans) and worker pool.
	Registry *obs.Registry
}

func (o Options) batch() int {
	if o.BatchStripes > 0 {
		return o.BatchStripes
	}
	return DefaultBatchStripes
}

func (o Options) workerCount() int {
	switch {
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers == 0:
		return 1
	default:
		return o.Workers
	}
}

// observeWait is a nil-safe latency-histogram observation for the
// pipeline stage metrics.
func observeWait(reg *obs.Registry, name string, d time.Duration) {
	if reg != nil {
		reg.Observe(name, obs.LatencyBuckets, d.Seconds())
	}
}

// addGauge is a nil-safe gauge increment.
func addGauge(reg *obs.Registry, name string, delta float64) {
	if reg != nil {
		reg.Gauge(name).Add(delta)
	}
}

// Manifest describes an encoded shard set. It is stored as JSON next to
// the shards.
type Manifest struct {
	Version  int    `json:"version"`
	Code     string `json:"code"` // always "liberation"
	K        int    `json:"k"`
	P        int    `json:"p"`
	ElemSize int    `json:"elem_size"`
	FileName string `json:"file_name"`
	FileSize int64  `json:"file_size"`
	Stripes  int    `json:"stripes"`
	// Checksums holds one CRC-32 (IEEE) per shard, indexed by strip
	// (0..k-1 data, k = P, k+1 = Q).
	Checksums []uint32 `json:"checksums"`
}

// ShardName returns the file name of strip i's shard.
func (m *Manifest) ShardName(i int) string {
	switch {
	case i == m.K:
		return fmt.Sprintf("%s.shard.p", m.FileName)
	case i == m.K+1:
		return fmt.Sprintf("%s.shard.q", m.FileName)
	default:
		return fmt.Sprintf("%s.shard.d%02d", m.FileName, i)
	}
}

// ManifestName returns the manifest file name for a given input name.
func ManifestName(fileName string) string { return fileName + ".manifest.json" }

// LoadManifest reads and validates a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %w", err)
	}
	if m.Version != FormatVersion {
		return nil, fmt.Errorf("shard: unsupported manifest version %d", m.Version)
	}
	if m.Code != "liberation" {
		return nil, fmt.Errorf("shard: unsupported code %q", m.Code)
	}
	if len(m.Checksums) != m.K+2 {
		return nil, fmt.Errorf("shard: manifest has %d checksums, want %d",
			len(m.Checksums), m.K+2)
	}
	return &m, nil
}

// ShardStatus describes one shard's health during recovery.
type ShardStatus struct {
	Index   int
	Name    string
	Present bool
	Valid   bool // checksum matched
}

// probeBufSize is the scratch-buffer size of the streaming checksum
// probe: the probe reads each shard once in probeBufSize chunks, so its
// resident memory is O(1) regardless of shard size.
const probeBufSize = 128 << 10

// probeShards makes the up-front erasure decision for every shard of m:
// a missing file, a wrong size (cheap stat), or a CRC-32 mismatch
// (streamed in O(1) memory) marks the shard erased. Usable shards come
// back as open files positioned at offset 0; the caller owns them. The
// work is recorded as a shard.probe span.
func probeShards(m *Manifest, dir string, reg *obs.Registry) (files []*os.File, status []ShardStatus, erased []int, err error) {
	sp := obs.StartSpan(reg, "shard.probe")
	defer func() { sp.End(err) }()
	_, shardSize := m.shardShape()
	buf := make([]byte, probeBufSize)
	files = make([]*os.File, m.K+2)
	status = make([]ShardStatus, m.K+2)
	closeAll := func() {
		for i, f := range files {
			if f != nil {
				f.Close()
				files[i] = nil
			}
		}
	}
	for i := range status {
		status[i] = ShardStatus{Index: i, Name: m.ShardName(i)}
		f, openErr := os.Open(filepath.Join(dir, m.ShardName(i)))
		if openErr != nil {
			erased = append(erased, i)
			continue
		}
		status[i].Present = true
		st, statErr := f.Stat()
		if statErr != nil || st.Size() != shardSize {
			erased = append(erased, i)
			f.Close()
			continue
		}
		sum, crcErr := streamCRC(f, buf)
		if crcErr != nil || sum != m.Checksums[i] {
			erased = append(erased, i)
			f.Close()
			continue
		}
		if _, seekErr := f.Seek(0, io.SeekStart); seekErr != nil {
			closeAll()
			return nil, status, nil, seekErr
		}
		status[i].Valid = true
		files[i] = f
	}
	if len(erased) > 2 {
		closeAll()
		return nil, status, erased,
			fmt.Errorf("shard: %d shards unusable, can recover at most 2", len(erased))
	}
	return files, status, erased, nil
}

// streamCRC computes the CRC-32 (IEEE) of r's remaining contents using
// the supplied scratch buffer.
func streamCRC(r io.Reader, buf []byte) (uint32, error) {
	var sum uint32
	for {
		n, err := r.Read(buf)
		sum = crc32.Update(sum, crc32.IEEETable, buf[:n])
		if err == io.EOF {
			return sum, nil
		}
		if err != nil {
			return sum, err
		}
	}
}

// shardShape returns the strip size in bytes and the byte size every
// shard file must have.
func (m *Manifest) shardShape() (stripBytes int, shardSize int64) {
	stripBytes = m.widthElems() * m.ElemSize
	return stripBytes, int64(m.Stripes) * int64(stripBytes)
}

// widthElems returns W (elements per strip) for the manifest's code: p
// for the Liberation codes.
func (m *Manifest) widthElems() int { return m.P }

// writeManifest stores m as indented JSON at path.
func writeManifest(m *Manifest, path string) error {
	mf, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		mf.Close()
		return err
	}
	return mf.Close()
}
