// Package shard applies the registry's erasure codes to whole files: a
// file is striped into k data shards plus the code's m parity shards
// (P and Q for the RAID-6 families), any m of which may be lost (or
// silently corrupted — detected via per-shard checksums) while the file
// remains recoverable. It is the library behind the raidcli tool and
// doubles as an end-to-end exercise of the public coding API.
//
// The data path is streaming in both directions. Encoding overlaps
// read → encode → write through a double-buffered batch pipeline (a
// reader goroutine fills batch N+1 while the worker pool encodes batch N
// and a writer goroutine drains batch N-1), and decoding/repair read all
// k+m shards stripe-by-stripe through per-shard file readers. Peak
// memory is O(batch × stripe) regardless of file size; shard health is
// decided up front by a cheap stat+checksum probe and re-verified
// incrementally by rolling CRCs while the stripes stream through.
//
// Every byte of I/O goes through a store.Store (see Options.Store), so
// the path is testable under injected faults, and it is self-healing:
// transient I/O errors are retried with capped exponential backoff,
// shards that fail mid-stream are quarantined and the decode restarts
// without them, and silent single-column corruption is repaired in
// stream with the paper's CorrectColumn — the degradation ladder is CRC
// quarantine → CorrectColumn → erasure decode → typed failure (see
// docs/ROBUSTNESS.md).
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"log/slog"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

// newCode resolves a code by registry name (p = 0 selects the smallest
// usable prime for the array codes) and attaches the optional metrics
// registry to codes that support instrumentation.
func newCode(name string, k, p int, reg *obs.Registry) (core.Code, error) {
	return codes.NewObserved(name, k, p, reg)
}

// manifestCode constructs the code a manifest was encoded with and
// cross-checks the manifest's recorded strip width against it, so a
// manifest that lies about its geometry fails before any shard I/O.
func manifestCode(m *Manifest, reg *obs.Registry) (core.Code, error) {
	code, err := newCode(m.Code, m.K, m.P, reg)
	if err != nil {
		return nil, err
	}
	if code.W() != m.widthElems() {
		return nil, fmt.Errorf("%w: code %q has %d elements per strip, manifest says %d",
			ErrManifest, m.Code, code.W(), m.widthElems())
	}
	if code.M() != m.M {
		return nil, fmt.Errorf("%w: code %q has %d parity shards, manifest says %d",
			ErrManifest, m.Code, code.M(), m.M)
	}
	return code, nil
}

// FormatVersion identifies the manifest/shard layout. Version 4 records
// the code's parity count m (earlier versions are implicitly m = 2);
// version 3 adds an optional placement block recording which simulated
// node each shard landed on; version 2 records the erasure code by
// registry name together with its strip width; version 1 manifests
// (implicitly Liberation) still load, as do version 2 and 3 manifests.
const FormatVersion = 4

// DefaultBatchStripes is the pipeline batch size used when
// Options.BatchStripes is zero. It bounds the streaming paths' resident
// memory at O(DefaultBatchStripes × stripe) while keeping the worker
// pool fed.
const DefaultBatchStripes = 32

// Options tunes the streaming data path. The zero value is valid:
// serial coding, default batch size, no metrics, the real filesystem
// with the default retry policy.
type Options struct {
	// Workers sets the stripe-coding pool size: 0 or 1 encode/decode
	// in-line on the pipeline's coding stage, >1 fans stripes of each
	// batch out over a pipeline worker pool, and <0 uses all cores.
	Workers int
	// BatchStripes is the number of stripes per pipeline batch
	// (0 = DefaultBatchStripes). Peak memory scales with it.
	BatchStripes int
	// Registry, when non-nil, receives shard.* spans, the pipeline
	// stage-wait histograms, and the queue-depth gauge, and is attached
	// to the underlying code (liberation.* spans) and worker pool.
	Registry *obs.Registry
	// Tracer, when non-nil, roots a causal trace per operation: every
	// retry, quarantine, CorrectColumn heal, and erasure fallback is a
	// child span/event with typed attributes, fanned out to the
	// tracer's sinks (event log, flight recorder). When Context already
	// carries an active trace the operation chains onto it instead.
	Tracer *obs.Tracer
	// Store is the filesystem the shards live on (nil = the real one).
	// Wrap it with faultstore.New to inject faults.
	Store store.Store
	// Retry bounds the retrying of transient store failures. The zero
	// value selects store.DefaultRetry; set MaxAttempts to 1 to disable
	// retries. Retry.AttemptTimeout is the per-op deadline: a store call
	// that hangs past it is abandoned and retried as a transient
	// KindTimeout fault instead of stalling the data path forever.
	Retry store.RetryPolicy
	// Context cancels in-flight I/O (including backoff sleeps between
	// retries). Nil means context.Background().
	Context context.Context
	// Heal makes decode scan every stripe with the paper's single-column
	// error correction even when the up-front probe found all shards
	// clean, catching read-path bit-flips at the cost of one extra
	// parity computation per stripe. (When the probe quarantines
	// checksum-corrupt shards, the correction path engages regardless.)
	// Codes without the core.ColumnCorrector capability skip this rung
	// and fall straight to erasure decode.
	Heal bool
	// Code selects the erasure code by registry name for Encode (empty =
	// codes.Default, i.e. "liberation"). Decode, repair and verify take
	// the code from the manifest instead.
	Code string
}

func (o Options) codeName() string {
	if o.Code != "" {
		return o.Code
	}
	return codes.Default
}

func (o Options) batch() int {
	if o.BatchStripes > 0 {
		return o.BatchStripes
	}
	return DefaultBatchStripes
}

func (o Options) workerCount() int {
	switch {
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers == 0:
		return 1
	default:
		return o.Workers
	}
}

func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) retryPolicy() store.RetryPolicy {
	p := o.Retry
	if p.MaxAttempts == 0 {
		p = store.DefaultRetry
	}
	if p.Registry == nil {
		p.Registry = o.Registry
	}
	return p
}

// store returns the effective store: the configured (or OS) backend
// wrapped with the retry layer, so every open/read/write/rename/remove
// in the data path retries transient faults under the policy. Backends
// that can attribute their side effects causally (store.ContextBinder,
// i.e. the faultstore) are bound to ctx first, so injected faults and
// the retries they trigger land in the same trace.
func (o Options) store(ctx context.Context) store.Store {
	base := o.Store
	if base == nil {
		base = store.OS{}
	}
	if b, ok := base.(store.ContextBinder); ok {
		base = b.Bind(ctx)
	}
	// Byte accounting sits below the retry layer so re-issued attempts
	// bill their actual I/O — the counters show the true amplification of
	// a flaky device, not the logical transfer size.
	base = store.WithMetrics(base, o.Registry)
	return store.WithRetry(base, ctx, o.retryPolicy())
}

// observeWait is a nil-safe latency-histogram observation for the
// pipeline stage metrics.
func observeWait(reg *obs.Registry, name string, d time.Duration) {
	if reg != nil {
		reg.Observe(name, obs.LatencyBuckets, d.Seconds())
	}
}

// addGauge is a nil-safe gauge increment.
func addGauge(reg *obs.Registry, name string, delta float64) {
	if reg != nil {
		reg.Gauge(name).Add(delta)
	}
}

// Manifest describes an encoded shard set. It is stored as JSON next to
// the shards. Version 4 records the parity count M (earlier versions
// imply M = 2); version 2 names the erasure code (a codes registry
// name) and its strip width W; version 1 predates the registry and
// implies the Liberation code with W = P.
type Manifest struct {
	Version int    `json:"version"`
	Code    string `json:"code"` // codes registry name, e.g. "liberation"
	K       int    `json:"k"`
	// P is the prime parameter of the array codes (0 for codes without
	// one, or when it was auto-selected at encode time).
	P int `json:"p"`
	// M is the number of parity shards. Absent before version 4, where
	// every code was RAID-6 and it equals 2.
	M int `json:"m,omitempty"`
	// W is the number of elements per strip. Absent in version 1
	// manifests, where it equals P.
	W        int    `json:"w,omitempty"`
	ElemSize int    `json:"elem_size"`
	FileName string `json:"file_name"`
	FileSize int64  `json:"file_size"`
	Stripes  int    `json:"stripes"`
	// Checksums holds one CRC-32 (IEEE) per shard, indexed by strip
	// (0..k-1 data, then the m parity shards: k = P, k+1 = Q, ...).
	Checksums []uint32 `json:"checksums"`
	// Placement, when present (version 3, encoded through a node-mapped
	// store), records which simulated node each shard landed on.
	Placement *Placement `json:"placement,omitempty"`
}

// Placement is the manifest's record of how shards were spread across
// simulated fault domains: the policy that placed them, the node count,
// and one node index per shard (same order as Checksums). It is
// advisory — decode works without it — but it lets operators and the
// chaos harness reason about which outages a shard set survives.
type Placement struct {
	Policy string `json:"policy"`
	Nodes  int    `json:"nodes"`
	Shards []int  `json:"shards"`
}

// ShardName returns the file name of strip i's shard. Data strips are
// dNN, the first two parities keep their RAID-6 names p and q, and
// parities beyond the second are rNN (numbered so that every shard of a
// set has a distinct placement ordinal; see the nodestore spread policy).
func (m *Manifest) ShardName(i int) string {
	switch {
	case i == m.K:
		return fmt.Sprintf("%s.shard.p", m.FileName)
	case i == m.K+1:
		return fmt.Sprintf("%s.shard.q", m.FileName)
	case i > m.K+1:
		return fmt.Sprintf("%s.shard.r%02d", m.FileName, i-2)
	default:
		return fmt.Sprintf("%s.shard.d%02d", m.FileName, i)
	}
}

// NumShards returns the total shard count, k + m.
func (m *Manifest) NumShards() int { return m.K + m.M }

// ManifestName returns the manifest file name for a given input name.
func ManifestName(fileName string) string { return fileName + ".manifest.json" }

// LoadManifest reads and validates a manifest file from the real
// filesystem.
func LoadManifest(path string) (*Manifest, error) {
	return loadManifest(store.OS{}, path)
}

// loadManifest reads and validates a manifest through a store.
func loadManifest(st store.Store, path string) (*Manifest, error) {
	f, err := st.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(store.SectionReader(f, size), data); err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	switch m.Version {
	case 1:
		// Pre-registry layout: implicitly Liberation, strip width = p.
		if m.Code != "liberation" {
			return nil, fmt.Errorf("%w: version 1 supports only the liberation code, got %q",
				ErrManifest, m.Code)
		}
		m.W = m.P
		m.M = 2
	case 2, 3, FormatVersion:
		if !codes.Known(m.Code) {
			return nil, fmt.Errorf("%w: unknown code %q (registered: %s)",
				ErrManifest, m.Code, strings.Join(codes.Names(), ", "))
		}
		if m.W <= 0 {
			return nil, fmt.Errorf("%w: missing strip width", ErrManifest)
		}
		if m.Version < FormatVersion {
			// Every pre-v4 code was RAID-6.
			m.M = 2
		} else if m.M < 1 {
			return nil, fmt.Errorf("%w: missing parity count", ErrManifest)
		}
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrManifest, m.Version)
	}
	if len(m.Checksums) != m.NumShards() {
		return nil, fmt.Errorf("%w: %d checksums, want %d",
			ErrManifest, len(m.Checksums), m.NumShards())
	}
	if pl := m.Placement; pl != nil {
		if pl.Nodes < 1 {
			return nil, fmt.Errorf("%w: placement with %d nodes", ErrManifest, pl.Nodes)
		}
		if len(pl.Shards) != m.NumShards() {
			return nil, fmt.Errorf("%w: placement maps %d shards, want %d",
				ErrManifest, len(pl.Shards), m.NumShards())
		}
		for i, n := range pl.Shards {
			if n < 0 || n >= pl.Nodes {
				return nil, fmt.Errorf("%w: shard %d placed on node %d of %d",
					ErrManifest, i, n, pl.Nodes)
			}
		}
	}
	return &m, nil
}

// nodeMapperOf extracts the node-placement view of a configured store,
// nil when the store does not map paths to fault domains.
func nodeMapperOf(st store.Store) store.NodeMapper {
	m, _ := st.(store.NodeMapper)
	return m
}

// nodeFault reports whether err is a node-level store fault — a down
// node, an open circuit breaker, or an exhausted per-op deadline. These
// are the failures a restarted attempt can route around by re-placing
// its work onto other nodes.
func nodeFault(err error) bool {
	return store.IsKind(err, store.KindNodeDown) ||
		store.IsKind(err, store.KindBreakerOpen) ||
		store.IsKind(err, store.KindTimeout)
}

// probeBufSize is the scratch-buffer size of the streaming checksum
// probe: the probe reads each shard once in probeBufSize chunks, so its
// resident memory is O(1) regardless of shard size.
const probeBufSize = 128 << 10

// probeShards makes the up-front health decision for every shard of m.
// Shards are classified into three tiers:
//
//   - clean (StateOK): present, right-sized, CRC matches — returned open;
//   - soft-quarantined (StateCorrupt): present and readable but the CRC
//     mismatches — returned open too, because the correction path can
//     still stream them and repair single-column corruption in stream;
//   - hard-erased (missing, truncated, unreadable, or force-quarantined
//     from a previous attempt): cannot be streamed at all.
//
// The caller owns every non-nil file. The work is recorded as a
// shard.probe span (a child of ctx's trace when one is active), and
// every unhealthy shard as a shard.unhealthy event naming the shard and
// its state. When mapper is non-nil (a node-mapped store) each status is
// attributed to the node holding the shard, so a whole-node outage reads
// as such in the report instead of as unrelated per-shard failures.
func probeShards(ctx context.Context, m *Manifest, dir string, st store.Store,
	mapper store.NodeMapper, reg *obs.Registry,
	forced map[int]error) (files []store.File, status []ShardStatus, hard, soft []int) {
	pctx, sp := obs.StartSpanCtx(ctx, reg, "shard.probe")
	defer func() {
		sp.Attr(slog.Int("hard", len(hard)), slog.Int("soft", len(soft))).End(nil)
	}()
	note := func(i int) {
		attrs := []obs.Attr{slog.Int("shard", i), slog.String("name", status[i].Name),
			slog.String("state", status[i].State.String())}
		if status[i].Node >= 0 {
			attrs = append(attrs, slog.Int("node", status[i].Node))
		}
		obs.EmitErr(pctx, slog.LevelWarn, "shard.unhealthy", status[i].Err, attrs...)
	}
	_, shardSize := m.shardShape()
	buf := make([]byte, probeBufSize)
	files = make([]store.File, m.NumShards())
	status = make([]ShardStatus, m.NumShards())
	for i := range status {
		status[i] = ShardStatus{Index: i, Name: m.ShardName(i), State: StateOK, Node: -1}
		if mapper != nil {
			status[i].Node = mapper.NodeFor(filepath.Join(dir, m.ShardName(i)))
		}
		if cause, ok := forced[i]; ok {
			status[i].Present = true
			status[i].State = StateQuarantined
			status[i].Err = cause
			hard = append(hard, i)
			note(i)
			continue
		}
		f, openErr := st.Open(filepath.Join(dir, m.ShardName(i)))
		if openErr != nil {
			if errors.Is(openErr, fs.ErrNotExist) {
				status[i].State = StateMissing
			} else {
				status[i].Present = true
				status[i].State = StateIOError
			}
			status[i].Err = openErr
			hard = append(hard, i)
			note(i)
			continue
		}
		status[i].Present = true
		size, sizeErr := f.Size()
		if sizeErr != nil {
			status[i].State = StateIOError
			status[i].Err = sizeErr
			hard = append(hard, i)
			note(i)
			f.Close()
			continue
		}
		if size != shardSize {
			status[i].State = StateTruncated
			hard = append(hard, i)
			note(i)
			f.Close()
			continue
		}
		sum, crcErr := streamCRC(store.SectionReader(f, size), buf)
		if crcErr != nil {
			status[i].State = StateIOError
			status[i].Err = crcErr
			hard = append(hard, i)
			note(i)
			f.Close()
			continue
		}
		if sum != m.Checksums[i] {
			status[i].State = StateCorrupt
			soft = append(soft, i)
			note(i)
			files[i] = f // kept open: the correction path streams it
			continue
		}
		status[i].Valid = true
		files[i] = f
	}
	return files, status, hard, soft
}

// countShardOp bills one top-level shard operation into the
// shard.ops{op,code} family; the snapshot aggregate keeps the bare
// shard.ops total. No-op without a registry.
func countShardOp(reg *obs.Registry, op, code string) {
	reg.CountWith("shard.ops", 1, obs.L("op", op), obs.L("code", code))
}

// Verify probes the shard set's health without decoding anything. It
// returns nil when every shard is clean, a *DegradedError when at most
// m shards are unusable (recovery would succeed), and an
// *UnrecoverableError when the set is lost. Checksum-corrupt-but-present
// shards beyond the m-erasure budget still count as recoverable: the
// correction path can heal per-stripe single-column corruption.
func Verify(manifestPath string, opt Options) (err error) {
	ctx, sp := obs.StartOp(opt.context(), opt.Tracer, opt.Registry, "shard.verify",
		slog.String("manifest", filepath.Base(manifestPath)))
	defer func() {
		sp.End(err)
		stampFlight(ctx, err)
	}()
	st := opt.store(ctx)
	m, err := loadManifest(st, manifestPath)
	if err != nil {
		return err
	}
	countShardOp(opt.Registry, "verify", m.Code)
	files, status, hard, soft := probeShards(ctx, m, filepath.Dir(manifestPath), st,
		nodeMapperOf(opt.Store), opt.Registry, nil)
	for _, f := range files {
		if f != nil {
			f.Close()
		}
	}
	switch {
	case len(hard) == 0 && len(soft) == 0:
		return nil
	case len(hard) > m.M:
		return &UnrecoverableError{Status: status,
			Reason: fmt.Sprintf("%d shards beyond repair, can tolerate %d", len(hard), m.M)}
	case len(hard) > 0 && len(hard)+len(soft) > m.M:
		return &UnrecoverableError{Status: status,
			Reason: fmt.Sprintf("%d shards unusable, can tolerate %d", len(hard)+len(soft), m.M)}
	default:
		return &DegradedError{Status: status}
	}
}

// streamCRC computes the CRC-32 (IEEE) of r's remaining contents using
// the supplied scratch buffer.
func streamCRC(r io.Reader, buf []byte) (uint32, error) {
	var sum uint32
	for {
		n, err := r.Read(buf)
		sum = crc32.Update(sum, crc32.IEEETable, buf[:n])
		if err == io.EOF {
			return sum, nil
		}
		if err != nil {
			return sum, err
		}
	}
}

// shardShape returns the strip size in bytes and the byte size every
// shard file must have.
func (m *Manifest) shardShape() (stripBytes int, shardSize int64) {
	stripBytes = m.widthElems() * m.ElemSize
	return stripBytes, int64(m.Stripes) * int64(stripBytes)
}

// widthElems returns W (elements per strip) for the manifest's code
// (version 1 manifests had it fixed up to P at load time).
func (m *Manifest) widthElems() int { return m.W }

// writeManifest stores m as indented JSON at path through the store.
func writeManifest(st store.Store, m *Manifest, path string) error {
	mf, err := st.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(&store.OffsetWriter{F: mf})
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		mf.Close()
		return err
	}
	if err := mf.Sync(); err != nil {
		mf.Close()
		return err
	}
	return mf.Close()
}
