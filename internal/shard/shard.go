// Package shard applies the Liberation codes to whole files: a file is
// striped into k data shards plus P and Q shards, any two of which may be
// lost (or silently corrupted — detected via per-shard checksums) while
// the file remains recoverable. It is the library behind the raidcli
// tool and doubles as an end-to-end exercise of the public coding API.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/liberation"
	"repro/internal/obs"
)

// newCode builds the liberation code (p = 0 selects the smallest usable
// prime) and attaches the optional metrics registry.
func newCode(k, p int, reg *obs.Registry) (*liberation.Code, error) {
	var code *liberation.Code
	var err error
	if p == 0 {
		code, err = liberation.NewAuto(k)
	} else {
		code, err = liberation.New(k, p)
	}
	if err != nil {
		return nil, err
	}
	code.Instrument(reg)
	return code, nil
}

// FormatVersion identifies the manifest/shard layout.
const FormatVersion = 1

// Manifest describes an encoded shard set. It is stored as JSON next to
// the shards.
type Manifest struct {
	Version  int    `json:"version"`
	Code     string `json:"code"` // always "liberation"
	K        int    `json:"k"`
	P        int    `json:"p"`
	ElemSize int    `json:"elem_size"`
	FileName string `json:"file_name"`
	FileSize int64  `json:"file_size"`
	Stripes  int    `json:"stripes"`
	// Checksums holds one CRC-32 (IEEE) per shard, indexed by strip
	// (0..k-1 data, k = P, k+1 = Q).
	Checksums []uint32 `json:"checksums"`
}

// ShardName returns the file name of strip i's shard.
func (m *Manifest) ShardName(i int) string {
	switch {
	case i == m.K:
		return fmt.Sprintf("%s.shard.p", m.FileName)
	case i == m.K+1:
		return fmt.Sprintf("%s.shard.q", m.FileName)
	default:
		return fmt.Sprintf("%s.shard.d%02d", m.FileName, i)
	}
}

// ManifestName returns the manifest file name for a given input name.
func ManifestName(fileName string) string { return fileName + ".manifest.json" }

// Encode splits the contents of r (size bytes) into k+2 shards written to
// outDir, returning the manifest (also written to outDir). p = 0 selects
// the smallest usable prime automatically.
func Encode(r io.Reader, size int64, fileName string, k, p, elemSize int, outDir string) (*Manifest, error) {
	return EncodeObserved(r, size, fileName, k, p, elemSize, outDir, nil)
}

// EncodeObserved is Encode with a metrics registry attached to the
// underlying code: the per-algorithm spans (liberation.encode) and a
// shard.encode span covering the whole file land in reg. A nil registry
// makes it identical to Encode.
func EncodeObserved(r io.Reader, size int64, fileName string, k, p, elemSize int,
	outDir string, reg *obs.Registry) (_ *Manifest, err error) {
	if size < 0 {
		return nil, fmt.Errorf("%w: negative size", core.ErrParams)
	}
	code, err := newCode(k, p, reg)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(reg, "shard.encode")
	defer func() { sp.Bytes(int(size)).End(err) }()
	w := code.W()
	perStripe := int64(k) * int64(w) * int64(elemSize)
	stripes := int((size + perStripe - 1) / perStripe)
	if stripes == 0 {
		stripes = 1
	}
	m := &Manifest{
		Version:  FormatVersion,
		Code:     "liberation",
		K:        k,
		P:        code.P(),
		ElemSize: elemSize,
		FileName: filepath.Base(fileName),
		FileSize: size,
		Stripes:  stripes,
	}

	files := make([]*os.File, k+2)
	sums := make([]uint32, k+2)
	for i := range files {
		f, err := os.Create(filepath.Join(outDir, m.ShardName(i)))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		files[i] = f
	}

	stripe := core.NewStripe(k, w, elemSize)
	buf := make([]byte, perStripe)
	var consumed int64
	for s := 0; s < stripes; s++ {
		n, err := io.ReadFull(r, buf)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			for i := n; i < len(buf); i++ {
				buf[i] = 0
			}
		} else if err != nil {
			return nil, err
		}
		consumed += int64(n)
		for t := 0; t < k; t++ {
			copy(stripe.Strips[t], buf[t*w*elemSize:])
		}
		if err := code.Encode(stripe, nil); err != nil {
			return nil, err
		}
		for i := 0; i < k+2; i++ {
			if _, err := files[i].Write(stripe.Strips[i]); err != nil {
				return nil, err
			}
			sums[i] = crc32.Update(sums[i], crc32.IEEETable, stripe.Strips[i])
		}
	}
	if consumed != size {
		return nil, fmt.Errorf("shard: read %d bytes, expected %d", consumed, size)
	}
	m.Checksums = sums

	mf, err := os.Create(filepath.Join(outDir, ManifestName(m.FileName)))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadManifest reads and validates a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: bad manifest: %w", err)
	}
	if m.Version != FormatVersion {
		return nil, fmt.Errorf("shard: unsupported manifest version %d", m.Version)
	}
	if m.Code != "liberation" {
		return nil, fmt.Errorf("shard: unsupported code %q", m.Code)
	}
	if len(m.Checksums) != m.K+2 {
		return nil, fmt.Errorf("shard: manifest has %d checksums, want %d",
			len(m.Checksums), m.K+2)
	}
	return &m, nil
}

// ShardStatus describes one shard's health during recovery.
type ShardStatus struct {
	Index   int
	Name    string
	Present bool
	Valid   bool // checksum matched
}

// Decode reconstructs the original file from the shard set described by
// the manifest at manifestPath (shards are looked up in the same
// directory) and writes it to w. Missing or checksum-corrupt shards are
// treated as erasures; up to two are tolerated. It returns the per-shard
// status that recovery observed.
func Decode(manifestPath string, w io.Writer) ([]ShardStatus, error) {
	return DecodeObserved(manifestPath, w, nil)
}

// DecodeObserved is Decode with a metrics registry attached (see
// EncodeObserved); recovery work shows up as liberation.decode spans
// under a shard.decode span.
func DecodeObserved(manifestPath string, w io.Writer, reg *obs.Registry) (_ []ShardStatus, err error) {
	m, err := LoadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(manifestPath)
	code, err := newCode(m.K, m.P, reg)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(reg, "shard.decode")
	defer func() { sp.Bytes(int(m.FileSize)).End(err) }()
	width := code.W()
	stripBytes := width * m.ElemSize
	shardSize := int64(m.Stripes) * int64(stripBytes)

	status := make([]ShardStatus, m.K+2)
	data := make([][]byte, m.K+2)
	var erased []int
	for i := range status {
		status[i] = ShardStatus{Index: i, Name: m.ShardName(i)}
		b, err := os.ReadFile(filepath.Join(dir, m.ShardName(i)))
		switch {
		case err != nil:
			erased = append(erased, i)
		case int64(len(b)) != shardSize:
			erased = append(erased, i)
			status[i].Present = true
		case crc32.ChecksumIEEE(b) != m.Checksums[i]:
			erased = append(erased, i)
			status[i].Present = true
		default:
			status[i].Present, status[i].Valid = true, true
			data[i] = b
		}
	}
	if len(erased) > 2 {
		return status, fmt.Errorf("shard: %d shards unusable, can recover at most 2", len(erased))
	}
	for _, e := range erased {
		data[e] = make([]byte, shardSize)
	}

	stripe := core.NewStripe(m.K, width, m.ElemSize)
	remaining := m.FileSize
	for s := 0; s < m.Stripes; s++ {
		off := s * stripBytes
		for i := 0; i < m.K+2; i++ {
			copy(stripe.Strips[i], data[i][off:off+stripBytes])
		}
		if len(erased) > 0 {
			if err := code.Decode(stripe, erased, nil); err != nil {
				return status, err
			}
		}
		for t := 0; t < m.K && remaining > 0; t++ {
			n := int64(stripBytes)
			if n > remaining {
				n = remaining
			}
			if _, err := w.Write(stripe.Strips[t][:n]); err != nil {
				return status, err
			}
			remaining -= n
		}
	}
	if remaining != 0 {
		return status, fmt.Errorf("shard: %d bytes unaccounted for", remaining)
	}
	return status, nil
}

// Repair reconstructs missing/corrupt shards in place (writing repaired
// shard files back into the manifest's directory) and returns the indices
// repaired.
func Repair(manifestPath string) ([]int, error) {
	return RepairObserved(manifestPath, nil)
}

// RepairObserved is Repair with a metrics registry attached (see
// EncodeObserved).
func RepairObserved(manifestPath string, reg *obs.Registry) (_ []int, err error) {
	m, err := LoadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(manifestPath)
	code, err := newCode(m.K, m.P, reg)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(reg, "shard.repair")
	defer func() { sp.Bytes(int(m.FileSize)).End(err) }()
	width := code.W()
	stripBytes := width * m.ElemSize
	shardSize := int64(m.Stripes) * int64(stripBytes)

	data := make([][]byte, m.K+2)
	var erased []int
	for i := range data {
		b, err := os.ReadFile(filepath.Join(dir, m.ShardName(i)))
		if err != nil || int64(len(b)) != shardSize || crc32.ChecksumIEEE(b) != m.Checksums[i] {
			erased = append(erased, i)
			data[i] = make([]byte, shardSize)
			continue
		}
		data[i] = b
	}
	if len(erased) == 0 {
		return nil, nil
	}
	if len(erased) > 2 {
		return nil, fmt.Errorf("shard: %d shards unusable, can repair at most 2", len(erased))
	}
	stripe := core.NewStripe(m.K, width, m.ElemSize)
	for s := 0; s < m.Stripes; s++ {
		off := s * stripBytes
		for i := range data {
			copy(stripe.Strips[i], data[i][off:off+stripBytes])
		}
		if err := code.Decode(stripe, erased, nil); err != nil {
			return nil, err
		}
		for _, e := range erased {
			copy(data[e][off:off+stripBytes], stripe.Strips[e])
		}
	}
	for _, e := range erased {
		if crc32.ChecksumIEEE(data[e]) != m.Checksums[e] {
			return nil, fmt.Errorf("shard: repaired shard %d fails its checksum", e)
		}
		if err := os.WriteFile(filepath.Join(dir, m.ShardName(e)), data[e], 0o644); err != nil {
			return nil, err
		}
	}
	return erased, nil
}
