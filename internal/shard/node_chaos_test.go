package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/codes"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/store/faultstore"
	"repro/internal/store/nodestore"
)

// nodeChaosAccepted extends the typed-failure acceptance with the
// degraded outcome: under node faults a decode may succeed degraded,
// fail unrecoverable, or fail with a classified store fault — never
// anything untyped.
func nodeChaosAccepted(err error) bool {
	var d *DegradedError
	return chaosAccepted(err) || errors.As(err, &d)
}

// encodeOnNodes encodes content through a clean node-mapped store so
// the manifest records the spread placement, returning the manifest.
func encodeOnNodes(t *testing.T, dir string, content []byte, k, p, nodes int) (*Manifest, *nodestore.Store) {
	t.Helper()
	enc := nodestore.New(nodestore.Config{Nodes: nodes, Placement: nodestore.PolicySpread})
	m, err := EncodeOpts(bytes.NewReader(content), int64(len(content)), "blob.bin",
		k, p, 32, dir, Options{Store: enc, Code: ""})
	if err != nil {
		t.Fatalf("clean encode on %d nodes: %v", nodes, err)
	}
	return m, enc
}

// TestManifestRecordsPlacement pins the v3 manifest block: an encode
// through a node-mapped store writes policy, node count, and one
// distinct node per shard (spread, nodes = k+2); the manifest loads
// back, and a plain store decodes it byte-identically (placement is
// advisory).
func TestManifestRecordsPlacement(t *testing.T) {
	dir := t.TempDir()
	content := make([]byte, 6000)
	rand.New(rand.NewSource(99)).Read(content)
	m, _ := encodeOnNodes(t, dir, content, 3, 0, 5)
	if m.Version != FormatVersion {
		t.Errorf("manifest version = %d, want %d", m.Version, FormatVersion)
	}
	loaded, err := LoadManifest(filepath.Join(dir, ManifestName(m.FileName)))
	if err != nil {
		t.Fatal(err)
	}
	pl := loaded.Placement
	if pl == nil {
		t.Fatal("manifest has no placement block")
	}
	if pl.Policy != nodestore.PolicySpread || pl.Nodes != 5 || len(pl.Shards) != 5 {
		t.Fatalf("placement = %+v, want spread over 5 nodes, 5 shards", pl)
	}
	seen := map[int]bool{}
	for _, n := range pl.Shards {
		if seen[n] {
			t.Fatalf("placement %v reuses a node; spread with nodes = k+2 must not", pl.Shards)
		}
		seen[n] = true
	}
	decodeAndCompare(t, dir, m, content)
}

// TestManifestPlacementValidation checks a corrupt placement block is
// rejected at load, not at decode.
func TestManifestPlacementValidation(t *testing.T) {
	dir := t.TempDir()
	content := make([]byte, 3000)
	rand.New(rand.NewSource(7)).Read(content)
	m, _ := encodeOnNodes(t, dir, content, 3, 0, 5)
	path := filepath.Join(dir, ManifestName(m.FileName))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(b, []byte(`"nodes": 5`), []byte(`"nodes": 1`), 1)
	if bytes.Equal(bad, b) {
		t.Fatal("fixture edit did not take; manifest JSON layout changed?")
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); !errors.Is(err, ErrManifest) {
		t.Errorf("out-of-range placement loaded: err = %v, want ErrManifest", err)
	}
}

// TestTwoNodeOutageDecodesByteIdentical is the RAID-6 design point at
// node granularity: with spread placement over k+2 nodes, two whole-node
// outages erase exactly two shards, and decode reproduces the original
// bytes through the erasure rung.
func TestTwoNodeOutageDecodesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	content := make([]byte, 3*5*32*4+17)
	rand.New(rand.NewSource(42)).Read(content)
	m, enc := encodeOnNodes(t, dir, content, 3, 0, 5)
	manifestPath := filepath.Join(dir, ManifestName(m.FileName))
	manifestNode := enc.NodeFor(manifestPath)

	// Take down two shard-holding nodes that do not hold the manifest
	// (metadata is not parity-protected; losing it is a different
	// failure class).
	var victims []int
	for _, n := range m.Placement.Shards {
		if n != manifestNode && len(victims) < 2 {
			victims = append(victims, n)
		}
	}
	reg := obs.NewRegistry()
	chaos := nodestore.New(nodestore.Config{
		Nodes: 5, Placement: nodestore.PolicySpread, Registry: reg,
		Faults: []nodestore.NodeFault{
			{Node: victims[0], Kind: nodestore.Outage},
			{Node: victims[1], Kind: nodestore.Outage},
		},
	})
	out, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	rep, err := DecodeReport(manifestPath, out, Options{Store: chaos})
	if err != nil {
		t.Fatalf("decode under two node outages: %v", err)
	}
	got, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("decode under two node outages produced wrong bytes")
	}
	if !rep.Degraded {
		t.Error("two-node-outage decode not reported degraded")
	}
	// Exactly the two victims' shards were unusable, attributed to their
	// nodes.
	for i, st := range rep.Status {
		onVictim := m.Placement.Shards[i] == victims[0] || m.Placement.Shards[i] == victims[1]
		if onVictim == (st.State == StateOK) {
			t.Errorf("shard %d on node %d: state = %v", i, st.Node, st.State)
		}
		if st.Node != m.Placement.Shards[i] {
			t.Errorf("shard %d attributed to node %d, placement says %d", i, st.Node, m.Placement.Shards[i])
		}
	}
	if got := reg.Snapshot().Gauges["nodestore.nodes_down"]; got != 2 {
		t.Errorf("nodestore.nodes_down = %v, want 2", got)
	}
}

// TestRepairReplacesOntoSpareNode checks the heal-and-re-place loop: a
// repair under a whole-node outage reconstructs the lost shard, its
// temp file is re-placed onto a healthy spare node (billed to
// nodestore.replaced.total), and the healed set verifies clean.
func TestRepairReplacesOntoSpareNode(t *testing.T) {
	dir := t.TempDir()
	content := make([]byte, 3*5*32*4+9)
	rand.New(rand.NewSource(13)).Read(content)
	m, enc := encodeOnNodes(t, dir, content, 3, 0, 5)
	manifestPath := filepath.Join(dir, ManifestName(m.FileName))
	manifestNode := enc.NodeFor(manifestPath)
	victim := -1
	for i, n := range m.Placement.Shards {
		if n != manifestNode {
			victim = i
			break
		}
	}
	// The outage node's shard file also has to be gone from the shared
	// backing, or the healed bytes would just land over a live copy.
	if err := os.Remove(filepath.Join(dir, m.ShardName(victim))); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	chaos := nodestore.New(nodestore.Config{
		Nodes: 5, Placement: nodestore.PolicySpread, Registry: reg,
		Faults: []nodestore.NodeFault{{Node: m.Placement.Shards[victim], Kind: nodestore.Outage}},
	})
	repaired, err := RepairOpts(manifestPath, Options{Store: chaos, Registry: reg})
	if err != nil {
		t.Fatalf("repair under node outage: %v", err)
	}
	found := false
	for _, i := range repaired {
		if i == victim {
			found = true
		}
	}
	if !found {
		t.Errorf("repaired = %v, want shard %d rebuilt", repaired, victim)
	}
	snap := reg.Snapshot()
	if snap.Counters["nodestore.replaced.total"] == 0 {
		t.Error("nodestore.replaced.total = 0, want the healed shard re-placed onto a spare")
	}
	if got := chaos.NodeFor(filepath.Join(dir, m.ShardName(victim))); got == m.Placement.Shards[victim] {
		t.Errorf("healed shard still assigned to the down node %d", got)
	}
	// The healed set is clean on a plain store, byte for byte.
	if err := Verify(manifestPath, Options{}); err != nil {
		t.Errorf("Verify after repair = %v, want nil", err)
	}
	decodeAndCompare(t, dir, m, content)
	assertNoRepairTemps(t, dir)
}

// TestBreakerTreatsHungNodeAsErased is the breaker acceptance proof on
// a fake clock: decoding with a node that hangs every op (injected
// latency far beyond the op budget), the per-node breaker erases the
// node after Threshold timeouts and fast-fails the rest, while the
// plain retry path burns its full per-op budget — strictly more
// simulated waiting for the same byte-identical output.
func TestBreakerTreatsHungNodeAsErased(t *testing.T) {
	content := make([]byte, 3*5*32*4+5)
	rand.New(rand.NewSource(8)).Read(content)

	run := func(breaker nodestore.BreakerConfig) (time.Duration, obs.Snapshot) {
		dir := t.TempDir()
		m, err := EncodeOpts(bytes.NewReader(content), int64(len(content)), "blob.bin",
			3, 0, 32, dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		manifestPath := filepath.Join(dir, ManifestName(m.FileName))

		clock := &waitClock{}
		reg := obs.NewRegistry()
		s := nodestore.New(nodestore.Config{
			Nodes: 3, Registry: reg, Sleep: clock.sleep,
			Now:       func() time.Time { return time.Unix(0, 0) }, // cooldown never elapses
			OpTimeout: 50 * time.Millisecond,
			Breaker:   breaker,
			Faults:    []nodestore.NodeFault{{Node: 0, Kind: nodestore.LatencyFault, Delay: 10 * time.Second}},
		})
		// Pin two shards to the hung node, everything else elsewhere.
		s.Assign(filepath.Join(dir, m.ShardName(0)), 0)
		s.Assign(filepath.Join(dir, m.ShardName(3)), 0)
		for _, i := range []int{1, 2, 4} {
			s.Assign(filepath.Join(dir, m.ShardName(i)), 1+i%2)
		}
		s.Assign(manifestPath, 1)

		out, err := os.Create(filepath.Join(dir, "out"))
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		_, err = DecodeReport(manifestPath, out, Options{
			Store: s,
			Retry: store.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond,
				Jitter: -1, Sleep: clock.sleep},
		})
		if err != nil {
			t.Fatalf("decode with hung node: %v", err)
		}
		got, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("decode with hung node produced wrong bytes")
		}
		return clock.total(), reg.Snapshot()
	}

	retryWait, _ := run(nodestore.BreakerConfig{}) // breaker off: retry exhaustion per op
	breakerWait, snap := run(nodestore.BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	if breakerWait >= retryWait {
		t.Errorf("breaker path waited %v, retry-exhaustion path %v; breaker-as-erasure must be faster",
			breakerWait, retryWait)
	}
	if snap.Counters["store.breaker.open.total"] == 0 {
		t.Error("breaker never opened on the hung node")
	}
	if snap.Counters["store.breaker.fastfail.total"] == 0 {
		t.Error("no fast-fails billed; ops kept waiting on the hung node")
	}
	t.Logf("simulated wait: retry-exhaustion %v, breaker %v", retryWait, breakerWait)
}

// waitClock accumulates requested sleeps without sleeping, safely
// across goroutines.
type waitClock struct {
	mu  sync.Mutex
	sum time.Duration
}

func (c *waitClock) sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.sum += d
	c.mu.Unlock()
	return ctx.Err()
}

func (c *waitClock) total() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sum
}

// TestMixedFaultLadderTrace is the composed-chaos scenario: one seeded
// schedule with a whole-node outage, a flapping node, and a read-path
// bit-flip on a surviving node, decoded under a causal trace. The
// decode must reproduce the original bytes, and the trace must show the
// ladder's rungs in order: probe first, the per-shard health verdicts
// (node-attributed) next, the rung choice after, with the node-level
// refusals feeding the probe.
func TestMixedFaultLadderTrace(t *testing.T) {
	dir := t.TempDir()
	content := make([]byte, 3*5*32*6+29)
	rand.New(rand.NewSource(77)).Read(content)
	m, enc := encodeOnNodes(t, dir, content, 3, 0, 5)
	manifestPath := filepath.Join(dir, ManifestName(m.FileName))
	manifestNode := enc.NodeFor(manifestPath)

	// Cast the three roles on distinct nodes, none holding the manifest
	// (for the outage; the flap is retry-absorbed but kept clean too).
	var cast []int // shard indices
	for i, n := range m.Placement.Shards {
		if n != manifestNode && len(cast) < 2 {
			cast = append(cast, i)
		}
	}
	outageShard, flapShard := cast[0], cast[1]
	bitflipShard := -1
	for i := range m.Placement.Shards {
		if i != outageShard && i != flapShard && m.Placement.Shards[i] != manifestNode {
			bitflipShard = i
			break
		}
	}
	if bitflipShard < 0 {
		// Fall back to the manifest's node for the flip victim — the
		// flip strikes the shard file, not the manifest.
		for i := range m.Placement.Shards {
			if i != outageShard && i != flapShard {
				bitflipShard = i
				break
			}
		}
	}

	inner := faultstore.New(store.OS{}, faultstore.Config{Seed: 5, Rules: []faultstore.Rule{
		{Path: m.ShardName(bitflipShard), Op: faultstore.OpRead, Kind: faultstore.BitFlip, Prob: 1, Count: 1},
	}})
	chaos := nodestore.New(nodestore.Config{
		Nodes: 5, Placement: nodestore.PolicySpread, Base: inner, Seed: 5,
		Faults: []nodestore.NodeFault{
			{Node: m.Placement.Shards[outageShard], Kind: nodestore.Outage},
			{Node: m.Placement.Shards[flapShard], Kind: nodestore.Flap, Period: 1},
		},
	})

	flight := obs.NewFlightRecorder(2048)
	tracer := obs.NewTracer(flight)
	tracer.Seed(99)
	out, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	rep, err := DecodeReport(manifestPath, out, Options{
		Store: chaos, Tracer: tracer,
		Retry: store.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Sleep: instantSleep},
	})
	if err != nil {
		t.Fatalf("mixed-fault decode: %v", err)
	}
	got, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("mixed-fault decode produced wrong bytes")
	}
	if !rep.Degraded {
		t.Error("mixed-fault decode not reported degraded")
	}

	events := flight.Snapshot()
	first := map[string]int{}
	count := map[string]int{}
	for i, ev := range events {
		if _, ok := first[ev.Name]; !ok {
			first[ev.Name] = i
		}
		count[ev.Name]++
		if ev.Name == "shard.unhealthy" && ev.Attrs["shard"] == int64(outageShard) {
			if ev.Attrs["node"] != int64(m.Placement.Shards[outageShard]) {
				t.Errorf("outage shard health not attributed to its node: %v", ev.Attrs)
			}
			if ev.Attrs["state"] == "ok" {
				t.Errorf("outage shard classified ok: %v", ev.Attrs)
			}
		}
	}
	for _, name := range []string{
		"shard.probe", "shard.unhealthy", "shard.rung",
		"nodestore.node_down", "nodestore.refuse", "store.retry",
	} {
		if count[name] == 0 {
			t.Errorf("trace is missing %q events (have %v)", name, count)
		}
	}
	// Rung ordering via the causal trace. Spans land in the recorder on
	// End, so the shard.probe completion event follows its children:
	// per-shard health verdicts first, then the probe span closing over
	// them, then the rung choice; and at least one node-level refusal
	// precedes the rung decision (the refusal is WHY the rung was
	// needed).
	if !(first["shard.unhealthy"] < first["shard.probe"] &&
		first["shard.probe"] < first["shard.rung"]) {
		t.Errorf("ladder out of order: probe@%d unhealthy@%d rung@%d",
			first["shard.probe"], first["shard.unhealthy"], first["shard.rung"])
	}
	if first["nodestore.refuse"] > first["shard.rung"] {
		t.Errorf("first node refusal @%d after the rung choice @%d",
			first["nodestore.refuse"], first["shard.rung"])
	}
}

// TestChaosNodesSoak replays seeded node-level fault schedules — whole-
// node outages (one and two at once), flapping membership, and hung-node
// latency — over every registered code. Encode runs clean on spread
// placement (nodes = k+m); decode and repair then run under the
// schedule. The invariant: byte-identical output or a typed error,
// every run, every seed; and for outage-only schedules that spare the
// manifest's node, decode and repair MUST succeed byte-identically (at
// most two shards are lost, within every family's parity budget — the
// erasure contract at node granularity).
func TestChaosNodesSoak(t *testing.T) {
	schedules := 120
	if testing.Short() {
		schedules = 30
	}
	if env := os.Getenv("CHAOS_NODE_SCHEDULES"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("CHAOS_NODE_SCHEDULES=%q: %v", env, err)
		}
		schedules = n
	}
	infos := codes.All()
	profiles := []string{"outage", "outage2", "flap", "slow", "chaos"}
	root := t.TempDir()

	var strict, relaxed, failedTyped int
	for i := 0; i < schedules; i++ {
		seed := int64(i + 1)
		info := infos[i%len(infos)]
		shape := info.TestShapes[(i/len(infos))%len(info.TestShapes)]
		profile := profiles[i%len(profiles)]
		nodes := shape.K + info.M
		faults, err := nodestore.Profile(profile, seed, nodes)
		if err != nil {
			t.Fatal(err)
		}

		dir := filepath.Join(root, fmt.Sprintf("s%04d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := make([]byte, 4096+int(seed%257))
		rand.New(rand.NewSource(seed)).Read(content)
		enc := nodestore.New(nodestore.Config{Nodes: nodes, Placement: nodestore.PolicySpread})
		m, err := EncodeOpts(bytes.NewReader(content), int64(len(content)), "blob.bin",
			shape.K, shape.P, 32, dir, Options{Store: enc, Code: info.Name})
		if err != nil {
			t.Fatalf("code=%s seed=%d: clean encode failed: %v", info.Name, seed, err)
		}
		manifestPath := filepath.Join(dir, ManifestName(m.FileName))

		// An outage-only schedule that spares the manifest's node loses
		// at most two shards (spread placement, nodes = k+m, one shard
		// per node): within every family's parity budget, so the strict
		// byte-identical guarantee applies.
		outageNodes := map[int]bool{}
		for _, f := range faults {
			if f.Kind == nodestore.Outage {
				outageNodes[f.Node] = true
			}
		}
		mustSucceed := (profile == "outage" || profile == "outage2") &&
			!outageNodes[enc.NodeFor(manifestPath)]

		newChaos := func(reg *obs.Registry) *nodestore.Store {
			return nodestore.New(nodestore.Config{
				Nodes: nodes, Placement: nodestore.PolicySpread, Seed: seed,
				Faults: faults, Registry: reg,
				Sleep:     instantSleep,
				Now:       func() time.Time { return time.Unix(0, 0) },
				OpTimeout: 50 * time.Millisecond,
				Hedge:     nodestore.HedgeConfig{Quantile: 0.9},
				Breaker:   nodestore.BreakerConfig{Threshold: 3, Cooldown: time.Hour},
			})
		}
		opts := func(st *nodestore.Store) Options {
			return Options{Store: st, Retry: store.RetryPolicy{
				MaxAttempts: 4, BaseBackoff: time.Millisecond, Seed: seed, Sleep: instantSleep}}
		}

		out, err := os.Create(filepath.Join(dir, "out.tmp"))
		if err != nil {
			t.Fatal(err)
		}
		_, derr := DecodeReport(manifestPath, out, opts(newChaos(nil)))
		out.Close()
		if derr == nil {
			got, rdErr := os.ReadFile(out.Name())
			if rdErr != nil {
				t.Fatal(rdErr)
			}
			if !bytes.Equal(got, content) {
				t.Fatalf("code=%s profile=%s seed=%d: decode succeeded with wrong bytes",
					info.Name, profile, seed)
			}
		} else {
			if mustSucceed {
				t.Fatalf("code=%s profile=%s seed=%d: decode failed under ≤2 node outages: %v",
					info.Name, profile, seed, derr)
			}
			if !nodeChaosAccepted(derr) {
				t.Fatalf("code=%s profile=%s seed=%d: decode failed untyped: %v",
					info.Name, profile, seed, derr)
			}
			failedTyped++
		}
		os.Remove(out.Name())

		// Repair under a fresh instance of the same schedule.
		_, rerr := RepairOpts(manifestPath, opts(newChaos(nil)))
		if rerr != nil {
			if mustSucceed {
				t.Fatalf("code=%s profile=%s seed=%d: repair failed under ≤2 node outages: %v",
					info.Name, profile, seed, rerr)
			}
			if !nodeChaosAccepted(rerr) {
				t.Fatalf("code=%s profile=%s seed=%d: repair failed untyped: %v",
					info.Name, profile, seed, rerr)
			}
		} else {
			if mustSucceed {
				// The healed set must verify clean on a plain store.
				if verr := Verify(manifestPath, Options{}); verr != nil {
					t.Fatalf("code=%s profile=%s seed=%d: Verify after repair = %v",
						info.Name, profile, seed, verr)
				}
			}
			// A successful repair renamed every temp into place. (A
			// FAILED repair may legitimately strand a temp on a dead
			// node — its Remove is refused like any other op there.)
			assertNoRepairTemps(t, dir)
		}
		if mustSucceed {
			strict++
		} else {
			relaxed++
		}
		os.RemoveAll(dir)
	}
	if strict == 0 {
		t.Error("no schedule exercised the strict ≤2-outage guarantee")
	}
	t.Logf("%d schedules: %d strict (byte-identical required), %d relaxed, %d typed decode failures",
		schedules, strict, relaxed, failedTyped)
}
