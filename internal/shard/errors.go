package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/obs"
)

// ErrManifest marks a manifest that could not be read or validated
// (unparsable JSON, wrong version or code, checksum count mismatch) —
// distinct from shard-content failures, which recovery can work around.
var ErrManifest = errors.New("shard: bad manifest")

// ShardState classifies one shard's health as recovery saw it.
type ShardState int

const (
	// StateOK: present and its probe checksum matched.
	StateOK ShardState = iota
	// StateMissing: the shard file does not exist.
	StateMissing
	// StateTruncated: present but the wrong size.
	StateTruncated
	// StateCorrupt: present and readable, but its CRC-32 does not match
	// the manifest — quarantined; its content is only used through the
	// single-column correction path.
	StateCorrupt
	// StateIOError: the shard could not be read (open/read failure that
	// survived the retry budget).
	StateIOError
	// StateQuarantined: the shard failed mid-stream (permanent read
	// error or rolling-CRC mismatch) and was excluded on a later
	// attempt.
	StateQuarantined
)

func (s ShardState) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateMissing:
		return "missing"
	case StateTruncated:
		return "truncated"
	case StateCorrupt:
		return "corrupt"
	case StateIOError:
		return "io-error"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ShardStatus describes one shard's health during recovery.
type ShardStatus struct {
	Index   int
	Name    string
	Present bool
	Valid   bool // checksum matched
	// State refines Present/Valid into the full fault taxonomy.
	State ShardState
	// Err is the underlying cause for io-error and quarantined states.
	Err error
	// Node is the simulated node holding the shard when the store maps
	// paths to fault domains (store.NodeMapper), -1 otherwise.
	Node int
}

// unusable reports whether the shard cannot contribute clean data.
func (s ShardStatus) unusable() bool { return s.State != StateOK }

// problems renders the unhealthy entries of a status slice.
func problems(status []ShardStatus) string {
	var parts []string
	for _, st := range status {
		if st.unusable() {
			parts = append(parts, fmt.Sprintf("%s(%s)", st.Name, st.State))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

// countUnusable returns the number of shards that cannot contribute
// clean data.
func countUnusable(status []ShardStatus) int {
	n := 0
	for _, st := range status {
		if st.unusable() {
			n++
		}
	}
	return n
}

// DegradedError reports that a shard set has lost redundancy but remains
// recoverable (at most m shards unusable). Verify returns it so
// callers can distinguish "clean", "recoverable but degraded", and
// "lost"; it carries the per-shard status so tests and operators can see
// exactly which shards failed and why.
type DegradedError struct {
	Status []ShardStatus
	// Flight is the tail of the operation's trace from the flight
	// recorder — the causal record (probe findings, retries,
	// quarantines) behind the degradation. Empty unless the operation
	// ran with a Tracer that has a FlightRecorder sink.
	Flight []obs.Event
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("shard: degraded (%d of %d shards unusable): %s",
		countUnusable(e.Status), len(e.Status), problems(e.Status))
}

// Unusable returns the indices of the shards that failed.
func (e *DegradedError) Unusable() []int {
	var out []int
	for _, st := range e.Status {
		if st.unusable() {
			out = append(out, st.Index)
		}
	}
	return out
}

// UnrecoverableError reports that recovery is impossible: more shards
// are lost than the code tolerates, or corruption could not be
// attributed. It replaces the old untyped "N shards unusable" error and
// carries the full per-shard report.
type UnrecoverableError struct {
	Status []ShardStatus
	Reason string
	// Flight is the tail of the operation's trace from the flight
	// recorder (see DegradedError.Flight): what recovery tried — every
	// rung, retry, and quarantine — before giving up.
	Flight []obs.Event
}

func (e *UnrecoverableError) Error() string {
	return fmt.Sprintf("shard: unrecoverable: %s (shards: %s)", e.Reason, problems(e.Status))
}

// Failed returns the indices of the shards that failed.
func (e *UnrecoverableError) Failed() []int {
	var out []int
	for _, st := range e.Status {
		if st.unusable() {
			out = append(out, st.Index)
		}
	}
	return out
}

// stampFlight attaches the trace's flight-recorder tail to the typed
// recovery errors, so the error a caller holds carries the causal
// record of the failure. Called after the operation's root span has
// ended, so the tail includes the root completion event.
func stampFlight(ctx context.Context, err error) {
	rec := obs.ContextFlight(ctx)
	if rec == nil || err == nil {
		return
	}
	var de *DegradedError
	if errors.As(err, &de) {
		de.Flight = rec.Tail(obs.ContextTraceID(ctx), 0)
		return
	}
	var ue *UnrecoverableError
	if errors.As(err, &ue) {
		ue.Flight = rec.Tail(obs.ContextTraceID(ctx), 0)
	}
}

// quarantineError is the internal restart signal: column col proved
// untrustworthy mid-stream (permanent read failure or rolling-CRC
// mismatch) and the attempt must be retried with it erased.
type quarantineError struct {
	col   int
	cause error
}

func (e *quarantineError) Error() string {
	return fmt.Sprintf("shard: shard %d quarantined mid-stream: %v", e.col, e.cause)
}

func (e *quarantineError) Unwrap() error { return e.cause }
