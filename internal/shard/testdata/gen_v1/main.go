// Command gen_v1 regenerates the committed version 1 shard fixture used
// by TestManifestV1Fixture: a small deterministic file encoded with the
// liberation code (k=3, p=5, 32-byte elements), whose manifest is then
// rewritten to the pre-registry version 1 layout — no "w" field, and the
// code named only by the historical constant "liberation".
//
// Run from the repository root:
//
//	go run ./internal/shard/testdata/gen_v1
package main

import (
	"bytes"
	"encoding/json"
	"log"
	"os"
	"path/filepath"

	"repro/internal/shard"
)

func main() {
	dir := filepath.Join("internal", "shard", "testdata", "v1")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	// Deterministic payload: 1000 bytes, not a multiple of the 480-byte
	// stripe, so the fixture also pins the padding behavior.
	content := make([]byte, 1000)
	for i := range content {
		content[i] = byte(i % 251)
	}
	if err := os.WriteFile(filepath.Join(dir, "blob.bin"), content, 0o644); err != nil {
		log.Fatal(err)
	}
	if _, err := shard.Encode(bytes.NewReader(content), int64(len(content)),
		"blob.bin", 3, 5, 32, dir); err != nil {
		log.Fatal(err)
	}

	// Downgrade the manifest to the version 1 schema.
	mpath := filepath.Join(dir, shard.ManifestName("blob.bin"))
	raw, err := os.ReadFile(mpath)
	if err != nil {
		log.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		log.Fatal(err)
	}
	m["version"] = 1
	delete(m, "w")
	out, err := json.Marshal(m)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(mpath, append(out, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
}
