package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/store/faultstore"
)

// instantSleep replaces real backoff waits in chaos runs: retries stay
// bounded and ordered but the soak spends no wall clock sleeping.
func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// chaosAccepted reports whether a chaos-run failure is one of the typed,
// documented outcomes: an *UnrecoverableError naming the failed shards,
// or a classified store fault (including a vanished file).
func chaosAccepted(err error) bool {
	var u *UnrecoverableError
	var f *store.Fault
	return errors.As(err, &u) || errors.As(err, &f) ||
		errors.Is(err, fs.ErrNotExist) || errors.Is(err, ErrManifest)
}

// assertNoRepairTemps fails the test if an unfinished repair left its
// temporary files behind.
func assertNoRepairTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".repair") {
			t.Errorf("leaked repair temp file %q", e.Name())
		}
	}
}

// TestChaosSoak replays seeded fault schedules over the full
// encode → decode → repair path: every named profile, hundreds (or, via
// CHAOS_SCHEDULES, thousands) of seeds. The invariant is absolute — each
// operation either round-trips byte-identical data or fails with a clean
// typed error, and never panics, leaves a partial shard set, or leaks a
// repair temp file. Any failure reproduces from its seed alone.
func TestChaosSoak(t *testing.T) {
	schedules := 400
	if testing.Short() {
		schedules = 64
	}
	if env := os.Getenv("CHAOS_SCHEDULES"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("CHAOS_SCHEDULES=%q: %v", env, err)
		}
		schedules = n
	}

	const size = 3*5*32*6 + 41 // k=3, w=5, elem=32: six stripes and change
	content := make([]byte, size)
	rand.New(rand.NewSource(2026)).Read(content)
	profiles := faultstore.Profiles()
	root := t.TempDir()

	var encodeFailed, decodeFailed, degraded int
	for i := 0; i < schedules; i++ {
		seed := int64(i + 1)
		profile := profiles[i%len(profiles)]
		cfg, err := faultstore.Profile(profile, seed)
		if err != nil {
			t.Fatal(err)
		}
		faulty := faultstore.New(store.OS{}, cfg)
		opt := Options{
			Store: faulty,
			Retry: store.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Seed: seed, Sleep: instantSleep},
		}
		dir := filepath.Join(root, fmt.Sprintf("s%04d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}

		m, err := EncodeOpts(bytes.NewReader(content), size, "blob.bin", 3, 0, 32, dir, opt)
		if err != nil {
			if !chaosAccepted(err) {
				t.Fatalf("profile=%s seed=%d: encode failed untyped: %v", profile, seed, err)
			}
			entries, rdErr := os.ReadDir(dir)
			if rdErr != nil {
				t.Fatal(rdErr)
			}
			for _, e := range entries {
				t.Fatalf("profile=%s seed=%d: failed encode left %q behind", profile, seed, e.Name())
			}
			encodeFailed++
			continue
		}

		out, err := os.Create(filepath.Join(dir, "out.tmp"))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := DecodeReport(filepath.Join(dir, ManifestName(m.FileName)), out, opt)
		out.Close()
		if err != nil {
			if !chaosAccepted(err) {
				t.Fatalf("profile=%s seed=%d: decode failed untyped: %v", profile, seed, err)
			}
			decodeFailed++
		} else {
			got, rdErr := os.ReadFile(out.Name())
			if rdErr != nil {
				t.Fatal(rdErr)
			}
			if !bytes.Equal(got, content) {
				t.Fatalf("profile=%s seed=%d: decode succeeded with wrong bytes", profile, seed)
			}
			if rep.Degraded {
				degraded++
			}
		}
		os.Remove(out.Name())

		// Repair under the same schedule: it must either heal the set or
		// fail typed, and its temp files must never survive.
		if _, err := RepairOpts(filepath.Join(dir, ManifestName(m.FileName)), opt); err != nil && !chaosAccepted(err) {
			t.Fatalf("profile=%s seed=%d: repair failed untyped: %v", profile, seed, err)
		}
		assertNoRepairTemps(t, dir)
		os.RemoveAll(dir)
	}
	t.Logf("%d schedules: %d encode failures, %d decode failures, %d degraded decodes",
		schedules, encodeFailed, decodeFailed, degraded)
}

// TestDegradedHealMetrics pins the headline acceptance scenario: one
// shard CRC-quarantined on disk, a silent bit-flip injected on another
// column's streaming read. The decode must recover the original bytes
// and both shard.quarantine.total and shard.correct_column.total must be
// observable in the registry.
func TestDegradedHealMetrics(t *testing.T) {
	dir, content, m := encodeTestFile(t, 4*5*64*8, 4, 0, 64)

	// Shard 1: persistent on-disk corruption in stripe 0 — the probe
	// quarantines it (CRC mismatch) but keeps it streaming.
	path := filepath.Join(dir, m.ShardName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// Shard 3: a one-off read-path bit-flip, injected after the probe's
	// single read so it lands on the streaming pass.
	faulty := faultstore.New(store.OS{}, faultstore.Config{Seed: 3, Rules: []faultstore.Rule{
		{Path: m.ShardName(3), Op: faultstore.OpRead, Kind: faultstore.BitFlip, Prob: 1, Count: 1, After: 1},
	}})

	reg := obs.NewRegistry()
	out, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	rep, err := DecodeReport(filepath.Join(dir, ManifestName(m.FileName)), out,
		Options{Store: faulty, Registry: reg})
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	got, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("degraded decode produced wrong bytes")
	}
	if !rep.Degraded {
		t.Error("report not marked degraded")
	}
	if len(rep.Quarantined) == 0 || rep.Quarantined[0] != 1 {
		t.Errorf("quarantined = %v, want shard 1 listed", rep.Quarantined)
	}
	snap := reg.Snapshot()
	if snap.Counters["shard.quarantine.total"] == 0 {
		t.Error("shard.quarantine.total not incremented")
	}
	if snap.Counters["shard.correct_column.total"] == 0 {
		t.Errorf("shard.correct_column.total not incremented (corrections = %d)", rep.Corrections)
	}
	if rep.Corrections == 0 {
		t.Error("report shows no corrections")
	}
}

// TestHealBeyondErasureBudget shows the correction rung recovering what
// classic RAID-6 cannot: three shards with silent single-column
// corruption in different stripes — one more than the erasure budget —
// all healed by per-stripe CorrectColumn.
func TestHealBeyondErasureBudget(t *testing.T) {
	dir, content, m := encodeTestFile(t, 4*5*64*8, 4, 0, 64)
	stripBytes := 5 * 64
	for i, victim := range []int{0, 2, 5} { // two data columns and Q
		path := filepath.Join(dir, m.ShardName(victim))
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[(i*2+1)*stripBytes] ^= 0x01 // stripes 1, 3, 5: never the same stripe
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	rep, err := DecodeReport(filepath.Join(dir, ManifestName(m.FileName)), &out, Options{})
	if err != nil {
		t.Fatalf("DecodeReport with 3 corrupt shards: %v", err)
	}
	if !bytes.Equal(out.Bytes(), content) {
		t.Fatal("healed decode produced wrong bytes")
	}
	if rep.Corrections != 3 {
		t.Errorf("corrections = %d, want 3 (one per corrupted stripe)", rep.Corrections)
	}
	if len(rep.Quarantined) != 3 {
		t.Errorf("quarantined = %v, want the three corrupt shards", rep.Quarantined)
	}
}

// TestVerifyLadder pins Verify's three outcomes: nil when clean, a
// *DegradedError while recovery is still possible, an
// *UnrecoverableError once it is not.
func TestVerifyLadder(t *testing.T) {
	dir, _, m := encodeTestFile(t, 6000, 4, 0, 64)
	manifest := filepath.Join(dir, ManifestName(m.FileName))

	if err := Verify(manifest, Options{}); err != nil {
		t.Fatalf("clean Verify = %v, want nil", err)
	}

	if err := os.Remove(filepath.Join(dir, m.ShardName(2))); err != nil {
		t.Fatal(err)
	}
	err := Verify(manifest, Options{})
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("one missing shard: Verify = %v, want *DegradedError", err)
	}
	if got := deg.Unusable(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Unusable = %v, want [2]", got)
	}
	if deg.Status[2].State != StateMissing {
		t.Errorf("shard 2 state = %v, want missing", deg.Status[2].State)
	}

	for _, i := range []int{0, 1} {
		if err := os.Remove(filepath.Join(dir, m.ShardName(i))); err != nil {
			t.Fatal(err)
		}
	}
	err = Verify(manifest, Options{})
	var unrec *UnrecoverableError
	if !errors.As(err, &unrec) {
		t.Fatalf("three missing shards: Verify = %v, want *UnrecoverableError", err)
	}
	if got := unrec.Failed(); len(got) != 3 {
		t.Errorf("Failed = %v, want three shards", got)
	}
}

// TestDecodeContextCancelled checks the cancellation plumbing: a decode
// whose context is already cancelled and whose store only ever fails
// transiently must stop promptly with the context error instead of
// burning the whole retry budget per read.
func TestDecodeContextCancelled(t *testing.T) {
	dir, _, m := encodeTestFile(t, 6000, 4, 0, 64)
	faulty := faultstore.New(store.OS{}, faultstore.Config{Seed: 1, Rules: []faultstore.Rule{
		{Op: faultstore.OpRead, Kind: faultstore.Transient, Prob: 1},
	}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	var out bytes.Buffer
	_, err := DecodeReport(filepath.Join(dir, ManifestName(m.FileName)), &out, Options{
		Store:   faulty,
		Context: ctx,
		Retry:   store.RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Second},
	})
	if err == nil {
		t.Fatal("decode with always-failing store succeeded")
	}
	if !errors.Is(err, context.Canceled) && !chaosAccepted(err) {
		t.Errorf("err = %v, want context cancellation or a typed fault", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled decode took %v, want prompt return", elapsed)
	}
}
